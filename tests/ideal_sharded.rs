//! Plan/apply sharding of the ideal world, pinned bit-identical.
//!
//! `IdealSbcWorld::tick_sharded` shards the delivery round (the only
//! round with per-party parallel work: cloning the finalized vector for
//! each of `n` parties) and must be **bit-identical** to the serial
//! reference — same leak order, same outputs, same adversary responses,
//! same abort flag — under adaptive corruption and adversarial wire
//! injection. A whole-round world cannot be driven through `DualRun`'s
//! per-party `advance` recording, so the serial-vs-sharded comparison runs
//! a round-granular script against both worlds and compares the full
//! drained event logs; the sharded-vs-sharded pairs (where both sides step
//! whole rounds) go through `DualRun` at `CompareLevel::Exact`.

use sbc_core::protocol::sbc_wire;
use sbc_core::worlds::{IdealSbcWorld, RealSbcWorld, SbcBackend, SbcParams};
use sbc_primitives::drbg::Drbg;
use sbc_uc::exec::{CompareLevel, DualRun, SbcWorld, ScopedShards, ShardRunner};
use sbc_uc::ids::PartyId;
use sbc_uc::value::{Command, Value};
use sbc_uc::world::{AdvCommand, Leak, World};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A [`ShardRunner`] that counts how often the sharded fan-out actually
/// runs — distinguishing rounds where `tick_sharded` engaged its parallel
/// plan phase from rounds where it fell back to the serial tick.
#[derive(Debug)]
struct CountingShards {
    inner: ScopedShards,
    runs: AtomicUsize,
}

impl CountingShards {
    fn new(width: usize) -> Self {
        CountingShards {
            inner: ScopedShards(width),
            runs: AtomicUsize::new(0),
        }
    }
}

impl ShardRunner for CountingShards {
    fn run_boxed(&self, jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
        self.runs.fetch_add(1, Ordering::SeqCst);
        self.inner.run_boxed(jobs);
    }
    fn width(&self) -> usize {
        self.inner.width()
    }
}

/// Round-granular exact driver: every action drains outputs and leaks into
/// a log (debug-formatted, order-preserving), so two worlds driven by the
/// same script are bit-identical iff their logs are equal.
struct RoundScript<'w> {
    world: &'w mut dyn SbcWorld,
    shards: Option<&'w CountingShards>,
    log: Vec<String>,
}

impl<'w> RoundScript<'w> {
    fn new(world: &'w mut dyn SbcWorld, shards: Option<&'w CountingShards>) -> Self {
        RoundScript {
            world,
            shards,
            log: Vec::new(),
        }
    }

    fn sync(&mut self) {
        let t = self.world.time();
        let leaks: Vec<Leak> = self.world.drain_leaks();
        for l in leaks {
            self.log.push(format!("[{t}] leak {l:?}"));
        }
        let outs: Vec<(PartyId, Command)> = self.world.drain_outputs();
        for (p, c) in outs {
            self.log.push(format!("[{t}] out {p:?} {c:?}"));
        }
    }

    fn submit(&mut self, party: u32, msg: &[u8]) {
        self.world
            .input(PartyId(party), Command::new("Broadcast", Value::bytes(msg)));
        self.sync();
    }

    fn round(&mut self) {
        match self.shards {
            Some(s) => self.world.tick_sharded(s),
            None => self.world.tick(),
        }
        self.sync();
    }

    fn rounds(&mut self, k: u64) {
        for _ in 0..k {
            self.round();
        }
    }

    fn adversary(&mut self, cmd: AdvCommand) -> Value {
        let resp = self.world.adversary(cmd.clone());
        let t = self.world.time();
        self.log.push(format!("[{t}] adv {cmd:?} -> {resp:?}"));
        self.sync();
        resp
    }

    fn finish_epoch(&mut self) {
        self.log.push(format!(
            "epoch-end t={} tau_rel={:?} abort={}",
            self.world.time(),
            self.world.release_round(),
            self.world.would_abort()
        ));
        self.world.begin_new_period();
        self.sync();
    }
}

/// The adversarial-broadcast recipe of `SbcSession::inject_message`,
/// replayed identically in each world (same DRBG seed per run).
fn inject(s: &mut RoundScript<'_>, rng: &mut Drbg, party: u32, message: &[u8]) {
    let tau_rel = s.world.release_round().expect("period open");
    let ct = Value::bytes(rng.gen_bytes(64));
    let rho = rng.gen_bytes(32);
    s.adversary(AdvCommand::Control {
        target: "F_TLE".into(),
        cmd: Command::new(
            "Insert",
            Value::list([ct.clone(), Value::bytes(&rho), Value::U64(tau_rel)]),
        ),
    });
    let m_bytes = Value::bytes(message).encode();
    let eta = s
        .adversary(AdvCommand::Control {
            target: "F_RO".into(),
            cmd: Command::new(
                "QueryBytes",
                Value::list([Value::bytes(&rho), Value::U64(m_bytes.len() as u64)]),
            ),
        })
        .as_bytes()
        .expect("mask is bytes")
        .to_vec();
    let y: Vec<u8> = m_bytes.iter().zip(eta.iter()).map(|(a, b)| a ^ b).collect();
    s.adversary(AdvCommand::SendAs {
        party: PartyId(party),
        cmd: Command::new("Broadcast", sbc_wire(&ct, tau_rel, &y)),
    });
}

/// The shared two-epoch scenario: 64 parties, adaptive mid-period
/// corruption in epoch 0, a leakage probe plus an adversarial injection
/// plus a garbage wire in epoch 1, late drains throughout. Each epoch
/// submits from enough parties that the real world's deferred delivery
/// batch clears its serial-fallback floor (`PAR_DELIVERY_MIN`) and the
/// recipient fan-out genuinely engages.
fn two_epoch_script(s: &mut RoundScript<'_>) {
    let mut adv_rng = Drbg::from_seed(b"ideal-sharded/adversary");
    for p in [0u32, 5, 7, 13, 22, 31, 40, 51, 63] {
        s.submit(p, format!("e0/p{p}").as_bytes());
    }
    s.round();
    s.adversary(AdvCommand::Corrupt(PartyId(63)));
    s.rounds(9); // τ_rel = 5: drain late
    s.finish_epoch();

    for p in [1u32, 4, 8, 17, 26, 30, 44, 58] {
        s.submit(p, format!("e1/p{p}").as_bytes());
    }
    s.round();
    s.adversary(AdvCommand::Control {
        target: "F_TLE".into(),
        cmd: Command::new("Leakage", Value::Unit),
    });
    inject(s, &mut adv_rng, 63, b"e1/evil");
    s.adversary(AdvCommand::SendAs {
        party: PartyId(63),
        cmd: Command::new("Broadcast", Value::bytes(b"not a wire")),
    });
    s.rounds(10);
    s.finish_epoch();
}

fn backend<W: SbcBackend>(n: usize, seed: &[u8]) -> W {
    W::from_params(SbcParams::default_for(n), seed).expect("valid default params")
}

/// Acceptance gate for ideal-world sharding at world scope: the serial
/// tick vs `tick_sharded` on identically seeded `IdealSbcWorld`s must
/// produce bit-identical event logs (leak order included) across two
/// epochs with corruption and injection — and the sharded fan-out must
/// have actually engaged on each epoch's delivery round.
#[test]
fn ideal_sharded_matches_serial_exact_world_scope() {
    let mut serial: IdealSbcWorld = backend(64, b"ideal-sharded");
    let mut serial_script = RoundScript::new(&mut serial, None);
    two_epoch_script(&mut serial_script);
    let serial_log = serial_script.log;

    let counter = CountingShards::new(3);
    let mut sharded: IdealSbcWorld = backend(64, b"ideal-sharded");
    let mut sharded_script = RoundScript::new(&mut sharded, Some(&counter));
    two_epoch_script(&mut sharded_script);
    let sharded_log = sharded_script.log;

    assert_eq!(serial_log, sharded_log, "bit-identical event logs");
    assert_eq!(
        counter.runs.load(Ordering::SeqCst),
        2,
        "the parallel plan phase ran on exactly each epoch's delivery round"
    );
    // The delivery rounds actually delivered: 63 honest parties per epoch.
    let outs = serial_log.iter().filter(|l| l.contains("] out ")).count();
    assert_eq!(outs, 2 * 63, "both epochs released to every honest party");
}

/// The same gate for the rewritten real-world pipeline: the reusable
/// plan-slot `tick_sharded` stays bit-identical to the serial tick at
/// world scope under the same adversarial script. Release rounds are
/// expected to be covered by the shared-plan fast path (broadcast makes
/// every honest wire log identical, so no parallel plan phase runs); the
/// fan-out asserted here is the recipient-sharded delivery batch, which
/// engages once per epoch's broadcast round.
#[test]
fn real_sharded_matches_serial_exact_world_scope() {
    let mut serial: RealSbcWorld = backend(64, b"real-sharded");
    let mut serial_script = RoundScript::new(&mut serial, None);
    two_epoch_script(&mut serial_script);
    let serial_log = serial_script.log;

    let counter = CountingShards::new(3);
    let mut sharded: RealSbcWorld = backend(64, b"real-sharded");
    let mut sharded_script = RoundScript::new(&mut sharded, Some(&counter));
    two_epoch_script(&mut sharded_script);

    assert_eq!(serial_log, sharded_script.log, "bit-identical event logs");
    assert!(counter.runs.load(Ordering::SeqCst) >= 2, "fan-out engaged");
}

/// A backend wrapper that routes every round through
/// [`SbcWorld::tick_sharded`]: the first honest `advance` of a round runs
/// the whole sharded round on the inner world (which advances every honest
/// party), and the remaining per-party `advance` calls of that round are
/// no-ops. Two such wrappers step at identical whole-round granularity, so
/// a `DualRun` over a pair of them compares cleanly at
/// `CompareLevel::Exact`.
#[derive(Debug)]
struct ShardedRounds<W: SbcWorld> {
    inner: W,
    width: usize,
    /// Remaining no-op `advance` calls before the next round runs.
    skip: usize,
}

impl<W: SbcWorld> ShardedRounds<W> {
    fn new(inner: W, width: usize) -> Self {
        ShardedRounds {
            inner,
            width,
            skip: 0,
        }
    }
}

impl<W: SbcWorld> World for ShardedRounds<W> {
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn time(&self) -> u64 {
        self.inner.time()
    }
    fn input(&mut self, party: PartyId, cmd: Command) {
        self.inner.input(party, cmd);
    }
    fn advance(&mut self, _party: PartyId) {
        if self.skip > 0 {
            self.skip -= 1;
            return;
        }
        // Corruption only changes between rounds, so the honest count at
        // the first advance of a round is the number of advance calls the
        // driver will issue for it.
        let honest = (0..self.inner.n())
            .filter(|&i| !self.inner.is_corrupted(PartyId(i as u32)))
            .count();
        self.skip = honest.saturating_sub(1);
        self.inner.tick_sharded(&ScopedShards(self.width));
    }
    fn adversary(&mut self, cmd: AdvCommand) -> Value {
        self.inner.adversary(cmd)
    }
    fn drain_outputs(&mut self) -> Vec<(PartyId, Command)> {
        self.inner.drain_outputs()
    }
    fn drain_leaks(&mut self) -> Vec<Leak> {
        self.inner.drain_leaks()
    }
    fn is_corrupted(&self, party: PartyId) -> bool {
        self.inner.is_corrupted(party)
    }
}

impl<W: SbcWorld> SbcWorld for ShardedRounds<W> {
    fn begin_new_period(&mut self) {
        self.inner.begin_new_period();
    }
    fn release_round(&self) -> Option<u64> {
        self.inner.release_round()
    }
    fn period_end(&self) -> Option<u64> {
        self.inner.period_end()
    }
    fn would_abort(&self) -> bool {
        self.inner.would_abort()
    }
}

/// The dual-run scenario mirroring [`two_epoch_script`], expressed in
/// harness actions.
fn drive_two_epochs<R: SbcWorld, I: SbcWorld>(dual: &mut DualRun<R, I>) {
    let mut adv_rng = Drbg::from_seed(b"ideal-sharded/adversary");
    for p in [0u32, 7, 31, 63] {
        dual.submit(PartyId(p), format!("e0/p{p}").as_bytes());
    }
    dual.advance_all();
    dual.corrupt(PartyId(63));
    dual.idle_rounds(9);
    assert_eq!(dual.finish_epoch().expect("epoch 0 aligned"), 0);

    for p in [1u32, 8, 30] {
        dual.submit(PartyId(p), format!("e1/p{p}").as_bytes());
    }
    dual.advance_all();
    dual.adversary(AdvCommand::Control {
        target: "F_TLE".into(),
        cmd: Command::new("Leakage", Value::Unit),
    });
    let tau_rel = dual.release_round().expect("period open");
    let ct = Value::bytes(adv_rng.gen_bytes(64));
    let rho = adv_rng.gen_bytes(32);
    dual.adversary(AdvCommand::Control {
        target: "F_TLE".into(),
        cmd: Command::new(
            "Insert",
            Value::list([ct.clone(), Value::bytes(&rho), Value::U64(tau_rel)]),
        ),
    });
    let m_bytes = Value::bytes(b"e1/evil").encode();
    let (eta_a, eta_b) = dual.adversary(AdvCommand::Control {
        target: "F_RO".into(),
        cmd: Command::new(
            "QueryBytes",
            Value::list([Value::bytes(&rho), Value::U64(m_bytes.len() as u64)]),
        ),
    });
    assert_eq!(eta_a, eta_b, "same seed, same oracle point");
    let eta = eta_a.as_bytes().expect("mask is bytes").to_vec();
    let y: Vec<u8> = m_bytes.iter().zip(eta.iter()).map(|(a, b)| a ^ b).collect();
    dual.adversary(AdvCommand::SendAs {
        party: PartyId(63),
        cmd: Command::new("Broadcast", sbc_wire(&ct, tau_rel, &y)),
    });
    dual.adversary(AdvCommand::SendAs {
        party: PartyId(63),
        cmd: Command::new("Broadcast", Value::bytes(b"not a wire")),
    });
    dual.idle_rounds(10);
    assert_eq!(dual.finish_epoch().expect("epoch 1 aligned"), 1);
}

/// Shard-width invariance: a `DualRun` where *both* worlds run sharded —
/// with different widths — stays `Exact`. Covers the ideal pair and the
/// real pair (the latter pinning the reusable plan-slot pipeline against
/// itself under a different shard split).
#[test]
fn both_worlds_sharded_stays_exact() {
    let mut ideal: DualRun<ShardedRounds<IdealSbcWorld>, ShardedRounds<IdealSbcWorld>> =
        DualRun::new(
            ShardedRounds::new(backend(64, b"both-sharded"), 2),
            ShardedRounds::new(backend(64, b"both-sharded"), 7),
            CompareLevel::Exact,
        );
    drive_two_epochs(&mut ideal);
    let (t_a, t_b) = ideal.into_transcripts();
    assert_eq!(t_a.digest(), t_b.digest());
    assert!(!t_a.outputs().is_empty(), "epochs released");

    let mut real: DualRun<ShardedRounds<RealSbcWorld>, ShardedRounds<RealSbcWorld>> = DualRun::new(
        ShardedRounds::new(backend(64, b"both-sharded/real"), 2),
        ShardedRounds::new(backend(64, b"both-sharded/real"), 5),
        CompareLevel::Exact,
    );
    drive_two_epochs(&mut real);
}
