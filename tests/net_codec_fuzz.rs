//! Fuzz-style property tests for the `sbc-net` wire codec.
//!
//! The decoder's contract is that it treats its input as hostile: for
//! *any* byte string, `Frame::decode` either returns a frame or a typed
//! [`CodecError`] — it never panics, never overflows, never allocates
//! unboundedly. These tests drive that contract with seeded
//! deterministic randomness (the repo's own `Drbg`, no external fuzzing
//! deps):
//!
//! * random well-formed frames of every kind round-trip byte-exactly;
//! * every strict prefix of a valid frame is a typed error;
//! * every single-bit flip of a valid frame either decodes (flips in
//!   payload bytes can still be canonical) or errors — never panics;
//! * frames whose length prefix lies (short, long, oversize) are typed
//!   errors;
//! * adversarially deep-nested list payloads are rejected instead of
//!   recursing the stack away;
//! * snapshot *streams* (header ‖ chunks ‖ digest trailer) inherit the
//!   same contract: truncations, bit flips, lying chunk counts, and
//!   duplicated or reordered chunks all come back as typed
//!   [`SnapshotStreamError`]s, never panics.

use sbc_net::{
    decode_snapshot_stream, encode_snapshot_stream, CodecError, Endpoint, Frame, FrameKind,
    SnapshotStreamError, SNAPSHOT_CHUNK_BYTES, SNAPSHOT_STREAM_VERSION,
};
use sbc_primitives::drbg::Drbg;
use sbc_uc::value::Value;

/// A random `Value` of bounded depth/width, for frame payloads.
fn rand_value(rng: &mut Drbg, depth: usize) -> Value {
    match rng.gen_bytes(1)[0] % if depth == 0 { 5 } else { 7 } {
        0 => Value::Unit,
        1 => Value::Bool(rng.gen_bytes(1)[0] & 1 == 1),
        2 => Value::U64(u64::from_be_bytes(
            rng.gen_bytes(8).try_into().expect("8 bytes"),
        )),
        3 => {
            let len = (rng.gen_bytes(1)[0] % 40) as usize;
            Value::bytes(rng.gen_bytes(len))
        }
        4 => Value::Str(format!("s{}", rng.gen_bytes(1)[0])),
        _ => {
            let len = (rng.gen_bytes(1)[0] % 4) as usize;
            Value::List((0..len).map(|_| rand_value(rng, depth - 1)).collect())
        }
    }
}

/// A random endpoint.
fn rand_endpoint(rng: &mut Drbg) -> Endpoint {
    match rng.gen_bytes(1)[0] % 3 {
        0 => Endpoint::Env,
        1 => Endpoint::Host,
        _ => Endpoint::Party(u32::from(rng.gen_bytes(1)[0])),
    }
}

/// A random frame covering every kind with random payloads.
fn rand_frame(rng: &mut Drbg) -> Frame {
    let kind = match rng.gen_bytes(1)[0] % 16 {
        0 => FrameKind::Submit(rand_value(rng, 2)),
        1 => FrameKind::Tick,
        2 => FrameKind::Cast(rand_value(rng, 2)),
        3 => FrameKind::Deliver {
            origin: u32::from(rng.gen_bytes(1)[0]),
            payload: rand_value(rng, 2),
        },
        4 => FrameKind::TleEnc {
            rho: Value::bytes(rng.gen_bytes(32)),
            tau: u64::from(rng.gen_bytes(1)[0]),
        },
        5 => FrameKind::TleRetrieve,
        6 => FrameKind::TleTriples(rand_value(rng, 2)),
        7 => FrameKind::TleDec {
            ct: rand_value(rng, 1),
            tau: u64::from(rng.gen_bytes(1)[0]),
        },
        8 => FrameKind::TleDecResp(rand_value(rng, 2)),
        9 => {
            let xlen = (rng.gen_bytes(1)[0] % 48) as usize;
            FrameKind::RoQuery {
                x: rng.gen_bytes(xlen),
                len: u64::from(rng.gen_bytes(1)[0]),
            }
        }
        10 => {
            let len = (rng.gen_bytes(1)[0] % 48) as usize;
            FrameKind::RoAnswer(rng.gen_bytes(len))
        }
        11 => FrameKind::Output(rand_value(rng, 2)),
        12 => FrameKind::Snapshot(rand_value(rng, 2)),
        13 => FrameKind::SnapshotHeader {
            version: u64::from(rng.gen_bytes(1)[0]),
            era: u64::from(rng.gen_bytes(1)[0]),
            chunks: u64::from(rng.gen_bytes(1)[0]),
        },
        14 => {
            let len = (rng.gen_bytes(1)[0] % 48) as usize;
            FrameKind::SnapshotChunk {
                index: u64::from(rng.gen_bytes(1)[0]),
                data: rng.gen_bytes(len),
            }
        }
        _ => FrameKind::SnapshotTrailer {
            digest: rng.gen_bytes(32).try_into().expect("32 bytes"),
        },
    };
    Frame {
        from: rand_endpoint(rng),
        to: rand_endpoint(rng),
        sent_at: u64::from(rng.gen_bytes(1)[0]),
        kind,
    }
}

#[test]
fn seeded_random_frames_round_trip_exactly() {
    let mut rng = Drbg::from_seed(b"codec-fuzz/round-trip");
    for i in 0..500 {
        let frame = rand_frame(&mut rng);
        let bytes = frame.encode();
        let back = Frame::decode(&bytes)
            .unwrap_or_else(|e| panic!("iteration {i}: {frame:?} failed to decode: {e}"));
        assert_eq!(back, frame, "iteration {i}: round trip not exact");
        // Re-encoding is byte-identical (canonical encoding).
        assert_eq!(back.encode(), bytes, "iteration {i}: re-encode differs");
    }
}

#[test]
fn every_strict_prefix_is_a_typed_error_never_a_panic() {
    let mut rng = Drbg::from_seed(b"codec-fuzz/truncate");
    for _ in 0..50 {
        let bytes = rand_frame(&mut rng).encode();
        for cut in 0..bytes.len() {
            let err = Frame::decode(&bytes[..cut]).expect_err("prefix must not decode");
            // Truncation surfaces as a typed error; which one depends on
            // where the cut lands (length prefix, header, or body).
            let rendered = err.to_string();
            assert!(!rendered.is_empty(), "error renders: {err:?}");
        }
    }
}

#[test]
fn single_bit_flips_never_panic() {
    let mut rng = Drbg::from_seed(b"codec-fuzz/bitflip");
    let mut decoded = 0u32;
    let mut rejected = 0u32;
    for _ in 0..40 {
        let bytes = rand_frame(&mut rng).encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[byte] ^= 1 << bit;
                // The only property: this call returns. Both outcomes are
                // legal (a flip inside e.g. a Bytes payload can still be
                // canonical).
                match Frame::decode(&mutated) {
                    Ok(_) => decoded += 1,
                    Err(_) => rejected += 1,
                }
            }
        }
    }
    // Non-vacuity: the corpus produced both outcomes.
    assert!(rejected > 0, "some flips must corrupt framing");
    assert!(decoded > 0, "some payload flips stay canonical");
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = Drbg::from_seed(b"codec-fuzz/garbage");
    for _ in 0..2000 {
        let len =
            (u16::from_be_bytes(rng.gen_bytes(2).try_into().expect("2 bytes")) % 300) as usize;
        let garbage = rng.gen_bytes(len);
        let _ = Frame::decode(&garbage); // must return, not panic
    }
}

#[test]
fn lying_length_prefixes_are_typed_errors() {
    let frame = Frame {
        from: Endpoint::Party(1),
        to: Endpoint::Party(2),
        sent_at: 7,
        kind: FrameKind::RoAnswer(vec![0xAB; 16]),
    };
    let bytes = frame.encode();

    // Prefix claims one byte more than the frame carries.
    let mut long = bytes.clone();
    let declared = u32::from_be_bytes(long[0..4].try_into().expect("4 bytes")) + 1;
    long[0..4].copy_from_slice(&declared.to_be_bytes());
    assert!(matches!(
        Frame::decode(&long),
        Err(CodecError::Truncated { .. } | CodecError::LengthMismatch { .. })
    ));

    // Prefix claims one byte fewer.
    let mut short = bytes.clone();
    let declared = u32::from_be_bytes(short[0..4].try_into().expect("4 bytes")) - 1;
    short[0..4].copy_from_slice(&declared.to_be_bytes());
    assert!(Frame::decode(&short).is_err(), "short claim rejected");

    // Prefix claims more than the hard cap: rejected up front without
    // allocating the claimed amount.
    let mut oversize = bytes;
    oversize[0..4].copy_from_slice(&u32::MAX.to_be_bytes());
    assert!(matches!(
        Frame::decode(&oversize),
        Err(CodecError::Oversize { .. })
    ));
}

#[test]
fn snapshot_streams_round_trip_across_chunk_boundaries() {
    let mut rng = Drbg::from_seed(b"codec-fuzz/stream-sizes");
    // Sizes straddling every interesting boundary: empty, tiny, exactly
    // one chunk, one byte either side, and a multi-chunk payload.
    for len in [
        0,
        1,
        37,
        SNAPSHOT_CHUNK_BYTES - 1,
        SNAPSHOT_CHUNK_BYTES,
        SNAPSHOT_CHUNK_BYTES + 1,
        2 * SNAPSHOT_CHUNK_BYTES + 7,
    ] {
        let payload = rng.gen_bytes(len);
        let bytes = encode_snapshot_stream(3, 11, &payload);
        let stream = decode_snapshot_stream(&bytes).expect("well-formed stream decodes");
        assert_eq!(stream.era, 3);
        assert_eq!(stream.sent_at, 11);
        assert_eq!(
            stream.payload, payload,
            "payload of {len} bytes round-trips"
        );
    }
}

#[test]
fn snapshot_stream_truncations_and_bit_flips_never_panic() {
    let mut rng = Drbg::from_seed(b"codec-fuzz/stream-mutate");
    let payload = rng.gen_bytes(200);
    let bytes = encode_snapshot_stream(1, 5, &payload);

    // Every strict prefix is a typed error.
    for cut in 0..bytes.len() {
        let err = decode_snapshot_stream(&bytes[..cut]).expect_err("prefix must not decode");
        assert!(!err.to_string().is_empty(), "error renders: {err:?}");
    }

    // Every single-bit flip returns — and since the whole stream is
    // digest-protected, a flip can corrupt framing or trip the digest,
    // but it can never decode to a *different* payload.
    let mut digest_caught = 0u32;
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[byte] ^= 1 << bit;
            match decode_snapshot_stream(&mutated) {
                Ok(stream) => assert_eq!(
                    stream.payload, payload,
                    "a decoding flip (byte {byte} bit {bit}) must not alter the payload"
                ),
                Err(SnapshotStreamError::DigestMismatch) => digest_caught += 1,
                Err(_) => {}
            }
        }
    }
    assert!(digest_caught > 0, "payload flips must trip the digest");
}

#[test]
fn snapshot_stream_garbage_never_panics() {
    let mut rng = Drbg::from_seed(b"codec-fuzz/stream-garbage");
    for _ in 0..500 {
        let len =
            (u16::from_be_bytes(rng.gen_bytes(2).try_into().expect("2 bytes")) % 400) as usize;
        let garbage = rng.gen_bytes(len);
        let _ = decode_snapshot_stream(&garbage); // must return, not panic
    }
}

#[test]
fn hostile_snapshot_stream_shapes_are_typed_errors() {
    let at = |kind| Frame {
        from: Endpoint::Env,
        to: Endpoint::Env,
        sent_at: 4,
        kind,
    };
    let header = |chunks| {
        at(FrameKind::SnapshotHeader {
            version: SNAPSHOT_STREAM_VERSION,
            era: 0,
            chunks,
        })
        .encode()
    };
    let chunk = |index: u64| {
        at(FrameKind::SnapshotChunk {
            index,
            data: vec![index as u8; 10],
        })
        .encode()
    };
    let trailer = at(FrameKind::SnapshotTrailer { digest: [0; 32] }).encode();
    let splice = |frames: &[&[u8]]| frames.concat();

    // Reordered chunks are caught positionally, before the digest runs.
    assert!(matches!(
        decode_snapshot_stream(&splice(&[&header(2), &chunk(1), &chunk(0), &trailer])),
        Err(SnapshotStreamError::ChunkOutOfOrder {
            expected: 0,
            found: 1
        })
    ));

    // A duplicated chunk is an out-of-order chunk at the next slot.
    assert!(matches!(
        decode_snapshot_stream(&splice(&[&header(2), &chunk(0), &chunk(0), &trailer])),
        Err(SnapshotStreamError::ChunkOutOfOrder {
            expected: 1,
            found: 0
        })
    ));

    // A header that promises more chunks than arrive: the trailer shows
    // up where a chunk belongs.
    assert!(matches!(
        decode_snapshot_stream(&splice(&[&header(2), &chunk(0), &trailer])),
        Err(SnapshotStreamError::UnexpectedFrame {
            expected: "SnapshotChunk",
            found: "SnapshotTrailer"
        })
    ));

    // A header that promises fewer: the leftover chunk trails the stream.
    assert!(matches!(
        decode_snapshot_stream(&splice(&[&header(0), &chunk(0), &trailer])),
        Err(SnapshotStreamError::UnexpectedFrame {
            expected: "SnapshotTrailer",
            found: "SnapshotChunk"
        })
    ));

    // An unknown stream version is refused before any chunk is read.
    let future = at(FrameKind::SnapshotHeader {
        version: SNAPSHOT_STREAM_VERSION + 1,
        era: 0,
        chunks: 0,
    })
    .encode();
    assert!(matches!(
        decode_snapshot_stream(&splice(&[&future, &trailer])),
        Err(SnapshotStreamError::UnsupportedVersion { .. })
    ));

    // A forged (all-zero) digest over otherwise well-formed frames.
    assert!(matches!(
        decode_snapshot_stream(&splice(&[&header(1), &chunk(0), &trailer])),
        Err(SnapshotStreamError::DigestMismatch)
    ));

    // Bytes past the trailer are trailing data, not a second stream.
    let mut padded = encode_snapshot_stream(0, 0, b"ok");
    padded.extend_from_slice(&[0xEE; 3]);
    assert!(matches!(
        decode_snapshot_stream(&padded),
        Err(SnapshotStreamError::TrailingData { extra: 3 })
    ));
}

#[test]
fn adversarial_deep_nesting_is_rejected_not_recursed() {
    // A body that is 2000 nested single-element lists: 9 bytes per level,
    // far deeper than any protocol value. Splice it into an otherwise
    // valid Submit frame. The decoder must reject it (malformed payload)
    // rather than recurse once per level.
    let depth = 2000usize;
    let mut body = Vec::with_capacity(depth * 9 + 1);
    for _ in 0..depth {
        body.push(6u8); // List tag
        body.extend_from_slice(&1u64.to_be_bytes());
    }
    body.push(0u8); // innermost Unit

    let template = Frame {
        from: Endpoint::Env,
        to: Endpoint::Party(0),
        sent_at: 0,
        kind: FrameKind::Submit(Value::Unit),
    }
    .encode();
    // Header layout: [0..4) outer length, [4..) header with trailing
    // body-length u32, then the 1-byte Unit body. Rebuild with our body.
    let header = &template[4..template.len() - 1 - 4];
    let mut evil = Vec::new();
    evil.extend_from_slice(&((header.len() + 4 + body.len()) as u32).to_be_bytes());
    evil.extend_from_slice(header);
    evil.extend_from_slice(&(body.len() as u32).to_be_bytes());
    evil.extend_from_slice(&body);

    assert!(matches!(
        Frame::decode(&evil),
        Err(CodecError::BadPayload { .. })
    ));
}
