//! Randomized real-vs-ideal experiments: many seeded environments per
//! lemma/theorem, beyond the targeted unit scenarios.

use sbc_broadcast::ubc::worlds::{IdealUbcWorld, RealUbcWorld};
use sbc_core::worlds::{IdealSbcWorld, RealSbcWorld, SbcParams};
use sbc_primitives::drbg::Drbg;
use sbc_uc::exec::{assert_indistinguishable, CompareLevel};
use sbc_uc::ids::PartyId;
use sbc_uc::trace::EventKind;
use sbc_uc::value::{Command, Value};
use sbc_uc::world::{run_env, AdvCommand, EnvDriver};

/// Lemma 1 under randomized multi-sender schedules with substitutions.
#[test]
fn lemma1_randomized_schedules() {
    for trial in 0u8..10 {
        let seed = [b'l', b'1', trial];
        let mut plan = Drbg::from_seed(&seed);
        let n = 3 + plan.gen_range(2) as usize;
        let rounds = 3 + plan.gen_range(3);
        let corrupt = plan.gen_range(n as u64) as u32;
        let script = move |env: &mut EnvDriver<'_>| {
            let mut plan = Drbg::from_seed(&[b'p', b'1', trial]);
            for r in 0..rounds {
                let sender = PartyId(plan.gen_range(n as u64) as u32);
                if !env.is_corrupted(sender) {
                    env.input(
                        sender,
                        Command::new("Broadcast", Value::U64(plan.gen_u64() % 100)),
                    );
                }
                if r == 1 {
                    env.adversary(AdvCommand::Corrupt(PartyId(corrupt)));
                }
                env.advance_all();
            }
        };
        assert_indistinguishable(
            RealUbcWorld::new(n, &seed),
            IdealUbcWorld::new(n, &seed),
            CompareLevel::Exact,
            script,
        );
    }
}

/// Theorem 2 under randomized input schedules: shape + exact outputs.
#[test]
fn theorem2_randomized_schedules() {
    for trial in 0u8..6 {
        let seed = [b't', b'2', trial];
        let mut plan = Drbg::from_seed(&seed);
        let n = 2 + plan.gen_range(3) as usize;
        let params = SbcParams::default_for(n);
        let script = move |env: &mut EnvDriver<'_>| {
            let mut plan = Drbg::from_seed(&[b'q', b'2', trial]);
            // Random submissions over the first two rounds.
            for _ in 0..(1 + plan.gen_range(3)) {
                let p = PartyId(plan.gen_range(n as u64) as u32);
                let len = 1 + plan.gen_range(40) as usize;
                env.input(
                    p,
                    Command::new("Broadcast", Value::Bytes(plan.gen_bytes(len))),
                );
            }
            env.advance_all();
            for _ in 0..plan.gen_range(3) {
                let p = PartyId(plan.gen_range(n as u64) as u32);
                env.input(
                    p,
                    Command::new("Broadcast", Value::Bytes(plan.gen_bytes(16))),
                );
            }
            env.idle_rounds(8);
        };
        assert_indistinguishable(
            RealSbcWorld::new(params, &seed),
            IdealSbcWorld::new(params, &seed),
            CompareLevel::ShapeAndOutputs,
            script,
        );
    }
}

/// Simultaneity as a distribution test: with messages m0 vs m1, the
/// adversary's period view (all leaks up to t_end) has identical shape, so
/// no environment decision function over the view can depend on the message.
#[test]
fn simultaneity_view_independence() {
    let run = |msg: &'static [u8]| {
        let mut world = RealSbcWorld::new(SbcParams::default_for(3), b"view-indep");
        run_env(&mut world, move |env| {
            env.input(PartyId(0), Command::new("Broadcast", Value::bytes(msg)));
            env.idle_rounds(3); // exactly the broadcast period
        })
    };
    let t0 = run(b"AAAAAAAAAAAA");
    let t1 = run(b"BBBBBBBBBBBB");
    // Shapes identical; the only difference is inside ciphertext bytes.
    let strip_inputs = |t: &sbc_uc::trace::Transcript| {
        let mut c = t.clone();
        c.events
            .retain(|e| !matches!(e.kind, EventKind::Input { .. }));
        c
    };
    assert_eq!(
        strip_inputs(&t0).shape_digest(),
        strip_inputs(&t1).shape_digest(),
        "the adversary's in-period view shape is message-independent"
    );
}
