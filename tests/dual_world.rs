//! Multi-epoch Theorem 2 coverage through the unified dual-world API.
//!
//! Everything here drives a real/ideal pair exclusively through the shared
//! `sbc_uc::exec::SbcWorld` trait (via [`DualRun`]): the test bodies never
//! touch `RealSbcWorld`/`IdealSbcWorld` directly — construction goes
//! through the generic [`SbcBackend`] entry point, actions through the
//! harness. That is the point of the redesign: the same code path a
//! session or a future backend uses is the one the security experiments
//! exercise.

use sbc_core::protocol::sbc_wire;
use sbc_core::worlds::{IdealSbcWorld, RealSbcWorld, SbcBackend, SbcParams};
use sbc_primitives::drbg::Drbg;
use sbc_uc::exec::{CompareLevel, DualRun};
use sbc_uc::ids::PartyId;
use sbc_uc::value::{Command, Value};
use sbc_uc::world::AdvCommand;

/// Builds a real/ideal pair through the backend trait — the only place a
/// concrete world type is named.
fn theorem2_pair(n: usize, seed: &[u8]) -> DualRun<RealSbcWorld, IdealSbcWorld> {
    fn backend<W: SbcBackend>(n: usize, seed: &[u8]) -> W {
        W::from_params(SbcParams::default_for(n), seed).expect("valid default params")
    }
    DualRun::new(
        backend(n, seed),
        backend(n, seed),
        CompareLevel::ShapeAndOutputs,
    )
}

/// The full adversarial-broadcast recipe, expressed purely in dual-world
/// driver actions: `Insert` a fabricated time-lock ciphertext, derive the
/// mask from `F_RO`, and `SendAs` the `(c, τ_rel, y)` wire on behalf of
/// the corrupted `party`. Mirrors `SbcSession::inject_message`.
fn inject(
    dual: &mut DualRun<RealSbcWorld, IdealSbcWorld>,
    rng: &mut Drbg,
    party: PartyId,
    message: &[u8],
) {
    let tau_rel = dual.release_round().expect("period open");
    let ct = Value::bytes(rng.gen_bytes(64));
    let rho = rng.gen_bytes(32);
    dual.adversary(AdvCommand::Control {
        target: "F_TLE".into(),
        cmd: Command::new(
            "Insert",
            Value::list([ct.clone(), Value::bytes(&rho), Value::U64(tau_rel)]),
        ),
    });
    let m_bytes = Value::bytes(message).encode();
    let (eta_real, eta_ideal) = dual.adversary(AdvCommand::Control {
        target: "F_RO".into(),
        cmd: Command::new(
            "QueryBytes",
            Value::list([Value::bytes(&rho), Value::U64(m_bytes.len() as u64)]),
        ),
    });
    assert_eq!(eta_real, eta_ideal, "same seed, same oracle point");
    let eta = eta_real.as_bytes().expect("mask is bytes").to_vec();
    let y: Vec<u8> = m_bytes.iter().zip(eta.iter()).map(|(a, b)| a ^ b).collect();
    dual.adversary(AdvCommand::SendAs {
        party,
        cmd: Command::new("Broadcast", sbc_wire(&ct, tau_rel, &y)),
    });
}

/// The headline scenario: four epochs over one dual world, with an
/// adaptive corruption in epoch 0, adversarial wire injections in every
/// later epoch, `F_TLE` leakage probes, a garbage `SendAs`, and late
/// drains (rounds idled well past `τ_rel` before the epoch turns over).
/// Transcript shape and every party output must agree in every epoch.
#[test]
fn theorem2_multi_epoch_active_adversary() {
    let mut dual = theorem2_pair(4, b"dual-epochs");
    let mut adv_rng = Drbg::from_seed(b"dual-epochs/adversary");
    // Epoch 0: honest traffic, then corrupt P3 mid-period.
    dual.submit(PartyId(0), b"epoch0/a");
    dual.advance_all();
    dual.submit(PartyId(1), b"epoch0/b");
    dual.corrupt(PartyId(3));
    dual.idle_rounds(9); // τ_rel = 5: drain late
    assert_eq!(dual.finish_epoch().expect("epoch 0 aligned"), 0);

    for epoch in 1u64..4 {
        // Honest submissions open the period; P3 stays corrupted.
        dual.submit(PartyId(0), format!("epoch{epoch}/a").as_bytes());
        dual.submit(PartyId(2), format!("epoch{epoch}/c").as_bytes());
        dual.advance_all();
        // The adversary probes its F_TLE leakage view...
        dual.adversary(AdvCommand::Control {
            target: "F_TLE".into(),
            cmd: Command::new("Leakage", Value::Unit),
        });
        // ...injects a committed message on behalf of the corrupted party…
        inject(
            &mut dual,
            &mut adv_rng,
            PartyId(3),
            format!("epoch{epoch}/evil").as_bytes(),
        );
        // …and also sends garbage, which honest parties ignore uniformly.
        dual.adversary(AdvCommand::SendAs {
            party: PartyId(3),
            cmd: Command::new("Broadcast", Value::bytes(b"not a wire")),
        });
        dual.idle_rounds(10 + epoch); // increasingly late drains
        assert_eq!(dual.finish_epoch().expect("epoch aligned"), epoch);
    }
    assert_eq!(dual.epoch(), 4);

    // The injected messages were delivered (they appear in party outputs).
    let (t_real, _) = dual.into_transcripts();
    let outs = t_real.outputs();
    assert!(!outs.is_empty());
    let delivered: Vec<u8> = outs
        .iter()
        .flat_map(|(_, _, cmd)| cmd.value.encode())
        .collect();
    for epoch in 1u64..4 {
        let needle = format!("epoch{epoch}/evil").into_bytes();
        assert!(
            delivered
                .windows(needle.len())
                .any(|w| w == needle.as_slice()),
            "epoch {epoch} injection delivered"
        );
    }
}

/// Satellite: seeded adversary-schedule sweep. Random corrupt / send_as /
/// inject / leakage-probe schedules over random epoch counts; transcript
/// equality is asserted at **every** epoch boundary. Each failure
/// reproduces exactly from the trial's fixed seed.
#[test]
fn adversary_schedule_sweep_every_epoch_aligned() {
    for trial in 0u8..8 {
        let seed = [b'd', b'w', trial];
        let mut plan = Drbg::from_seed(&seed);
        let n = 2 + plan.gen_range(3) as usize; // 2..=4 parties
        let epochs = 2 + plan.gen_range(3); // 2..=4 epochs
        let mut dual = theorem2_pair(n, &seed);
        let mut adv_rng = Drbg::from_seed(&[b'a', b'v', trial]);
        let mut corrupted: Vec<PartyId> = Vec::new();
        for epoch in 0..epochs {
            // 1–2 honest submissions from honest parties open the period.
            let honest: Vec<u32> = (0..n as u32)
                .filter(|p| !corrupted.contains(&PartyId(*p)))
                .collect();
            for s in 0..(1 + plan.gen_range(2)) {
                let p = honest[plan.gen_range(honest.len() as u64) as usize];
                let len = 1 + plan.gen_range(24) as usize;
                let mut msg = plan.gen_bytes(len);
                msg.push(s as u8);
                dual.submit(PartyId(p), &msg);
            }
            dual.advance_all();
            // Maybe corrupt one more party (dishonest-majority budget:
            // keep at least one honest submitter).
            if corrupted.len() + 2 < n && plan.gen_bool() {
                let target = honest[plan.gen_range(honest.len() as u64) as usize];
                let p = PartyId(target);
                dual.corrupt(p);
                corrupted.push(p);
            }
            // Random adversarial actions while the period is open.
            for _ in 0..plan.gen_range(3) {
                match (plan.gen_range(3), corrupted.first().copied()) {
                    (0, _) => {
                        dual.adversary(AdvCommand::Control {
                            target: "F_TLE".into(),
                            cmd: Command::new("Leakage", Value::Unit),
                        });
                    }
                    (1, Some(p)) => {
                        let len = 1 + plan.gen_range(16) as usize;
                        let msg = adv_rng.gen_bytes(len);
                        if dual.release_round().is_some() {
                            inject(&mut dual, &mut adv_rng, p, &msg);
                        }
                    }
                    (2, Some(p)) => {
                        dual.adversary(AdvCommand::SendAs {
                            party: p,
                            cmd: Command::new("Broadcast", Value::bytes(plan.gen_bytes(8))),
                        });
                    }
                    _ => {}
                }
            }
            // Random (possibly late) drain, then the epoch boundary check.
            dual.idle_rounds(9 + plan.gen_range(4));
            dual.finish_epoch()
                .unwrap_or_else(|d| panic!("trial {trial} epoch {epoch} diverged: {d}"));
        }
    }
}

/// A no-traffic epoch between two active ones: the period simply never
/// opens, and both worlds idle identically through it.
#[test]
fn empty_epoch_between_active_epochs() {
    let mut dual = theorem2_pair(2, b"dual-empty");
    dual.submit(PartyId(0), b"before");
    dual.idle_rounds(8);
    dual.finish_epoch().expect("epoch 0");
    dual.idle_rounds(4); // nobody broadcasts
    assert_eq!(dual.release_round(), None, "period never opened");
    dual.finish_epoch().expect("empty epoch");
    dual.submit(PartyId(1), b"after");
    dual.idle_rounds(8);
    dual.finish_epoch().expect("epoch 2");
}
