//! End-to-end application integration: DURS and self-tallying voting over
//! the full SBC stack (Theorems 3 and 4 at the system level).

use sbc_apps::durs::{DursSession, URS_LEN};
use sbc_apps::voting::{self_tally, Ballot, Election, ElectionSetup};
use sbc_primitives::drbg::Drbg;
use sbc_primitives::group::SchnorrGroup;

#[test]
fn durs_outputs_have_full_entropy_contribution() {
    // Flipping any single party's seed changes the output (XOR combines
    // all contributions).
    let base = {
        let mut s = DursSession::new(3, b"entropy-base");
        for p in 0..3 {
            s.contribute(p);
        }
        s.finish().urs
    };
    let with_chosen = {
        let mut s = DursSession::new(3, b"entropy-base");
        s.contribute(0);
        s.contribute(1);
        s.contribute_chosen(2, &[0u8; URS_LEN]);
        s.finish().urs
    };
    assert_ne!(base, with_chosen);
}

#[test]
fn durs_uniformity_chi_square() {
    // χ² over byte nibbles pooled from independent runs.
    let mut counts = [0u64; 16];
    let mut total = 0u64;
    for i in 0..16u8 {
        let mut s = DursSession::new(2, &[b'x', i]);
        s.contribute(0);
        s.contribute(1);
        for byte in s.finish().urs {
            counts[(byte >> 4) as usize] += 1;
            counts[(byte & 0xf) as usize] += 1;
            total += 2;
        }
    }
    let expected = total as f64 / 16.0;
    let chi2: f64 =
        counts.iter().map(|&c| (c as f64 - expected).powi(2) / expected).sum();
    // 15 degrees of freedom; p=0.001 critical value ≈ 37.7.
    assert!(chi2 < 37.7, "χ² = {chi2} over {total} nibbles");
}

#[test]
fn election_large_boardroom() {
    let n = 11;
    let mut e = Election::new(SchnorrGroup::tiny(), n, 2, b"large");
    let mut expected = [0u64; 2];
    for v in 0..n {
        let c = (v * 7 + 1) % 2;
        expected[c] += 1;
        e.vote(v, c);
    }
    let r = e.finish().unwrap();
    assert_eq!(r.counts, expected.to_vec());
    assert_eq!(r.ballots_accepted, n);
}

#[test]
fn election_three_candidates_production_group() {
    let mut e = Election::new(SchnorrGroup::default_256(), 4, 3, b"prod-grp");
    e.vote(0, 2);
    e.vote(1, 2);
    e.vote(2, 0);
    e.vote(3, 1);
    let r = e.finish().unwrap();
    assert_eq!(r.counts, vec![1, 1, 2]);
}

#[test]
fn ballots_survive_the_wire() {
    // Ballot → Value → bytes → Value → Ballot, through the same encoding
    // the SBC channel applies.
    let mut rng = Drbg::from_seed(b"wire");
    let setup = ElectionSetup::generate(SchnorrGroup::tiny(), 3, 2, 2, &mut rng);
    let b = Ballot::cast(&setup, 2, 1, &mut rng);
    let bytes = b.to_value().encode();
    let parsed = Ballot::from_value(&sbc_uc::value::Value::decode(&bytes).unwrap()).unwrap();
    assert_eq!(parsed, b);
    assert!(parsed.verify(&setup));
    assert_eq!(self_tally(&setup, &[parsed]).unwrap(), vec![0, 1]);
}

#[test]
fn election_tally_matches_direct_tally() {
    // The SBC-channel election agrees with tallying the same ballots
    // locally (the channel neither loses nor fabricates ballots).
    let mut e = Election::new(SchnorrGroup::tiny(), 5, 2, b"match");
    let votes = [1usize, 0, 1, 1, 0];
    for (v, &c) in votes.iter().enumerate() {
        e.vote(v, c);
    }
    let via_sbc = e.finish().unwrap().counts;
    assert_eq!(via_sbc, vec![2, 3]);
}
