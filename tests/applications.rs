//! End-to-end application integration: DURS and self-tallying voting over
//! the full SBC stack (Theorems 3 and 4 at the system level), including the
//! multi-epoch beacon service on the v2 session API.

use sbc_apps::durs::{DursSession, URS_LEN};
use sbc_apps::voting::{self_tally, Ballot, Election, ElectionSetup};
use sbc_primitives::drbg::Drbg;
use sbc_primitives::group::SchnorrGroup;

#[test]
fn durs_outputs_have_full_entropy_contribution() {
    // Flipping any single party's seed changes the output (XOR combines
    // all contributions).
    let base = {
        let mut s = DursSession::new(3, b"entropy-base").unwrap();
        for p in 0..3 {
            s.contribute(p).unwrap();
        }
        s.finish().unwrap().urs
    };
    let with_chosen = {
        let mut s = DursSession::new(3, b"entropy-base").unwrap();
        s.contribute(0).unwrap();
        s.contribute(1).unwrap();
        s.contribute_chosen(2, &[0u8; URS_LEN]).unwrap();
        s.finish().unwrap().urs
    };
    assert_ne!(base, with_chosen);
}

#[test]
fn durs_uniformity_chi_square() {
    // χ² over byte nibbles pooled from independent runs.
    let mut counts = [0u64; 16];
    let mut total = 0u64;
    for i in 0..16u8 {
        let mut s = DursSession::new(2, &[b'x', i]).unwrap();
        s.contribute(0).unwrap();
        s.contribute(1).unwrap();
        for byte in s.finish().unwrap().urs {
            counts[(byte >> 4) as usize] += 1;
            counts[(byte & 0xf) as usize] += 1;
            total += 2;
        }
    }
    let expected = total as f64 / 16.0;
    let chi2: f64 = counts
        .iter()
        .map(|&c| (c as f64 - expected).powi(2) / expected)
        .sum();
    // 15 degrees of freedom; p=0.001 critical value ≈ 37.7.
    assert!(chi2 < 37.7, "χ² = {chi2} over {total} nibbles");
}

/// The acceptance scenario for the multi-epoch session API: one beacon
/// session runs three epochs with known shares; each epoch's output must
/// equal that of an independently-seeded single-shot session fed the same
/// shares. Epochs are perfectly isolated — nothing bleeds across periods.
#[test]
fn multi_epoch_beacon_matches_single_shot_sessions() {
    const EPOCHS: u64 = 3;
    let share = |epoch: u64, p: u8| -> [u8; URS_LEN] { [epoch as u8 * 16 + p + 1; URS_LEN] };

    let mut service = DursSession::new(3, b"beacon-service").unwrap();
    for epoch in 0..EPOCHS {
        for p in 0..3u8 {
            service
                .contribute_chosen(p as u32, &share(epoch, p))
                .unwrap();
        }
        let epoch_result = service.run_epoch().unwrap();

        // An independently-seeded single-shot session with the same shares.
        let mut single = DursSession::new(3, format!("single-shot-{epoch}").as_bytes()).unwrap();
        for p in 0..3u8 {
            single
                .contribute_chosen(p as u32, &share(epoch, p))
                .unwrap();
        }
        let single_result = single.finish().unwrap();

        assert_eq!(
            epoch_result.urs, single_result.urs,
            "epoch {epoch}: multi-epoch output diverges from single-shot"
        );
        assert_eq!(epoch_result.contributions, single_result.contributions);
        // Same world ⇒ later release rounds; fresh world ⇒ round Φ + ∆.
        assert!(epoch_result.release_round > single_result.release_round || epoch == 0);
    }
    assert_eq!(service.epoch(), EPOCHS);
}

#[test]
fn election_large_boardroom() {
    let n = 11;
    let mut e = Election::new(SchnorrGroup::tiny(), n, 2, b"large").unwrap();
    let mut expected = [0u64; 2];
    for v in 0..n {
        let c = (v * 7 + 1) % 2;
        expected[c] += 1;
        e.vote(v, c).unwrap();
    }
    let r = e.finish().unwrap();
    assert_eq!(r.counts, expected.to_vec());
    assert_eq!(r.ballots_accepted, n);
}

#[test]
fn election_three_candidates_production_group() {
    let mut e = Election::new(SchnorrGroup::default_256(), 4, 3, b"prod-grp").unwrap();
    e.vote(0, 2).unwrap();
    e.vote(1, 2).unwrap();
    e.vote(2, 0).unwrap();
    e.vote(3, 1).unwrap();
    let r = e.finish().unwrap();
    assert_eq!(r.counts, vec![1, 1, 2]);
}

#[test]
fn repeated_elections_share_one_world() {
    // Three motions on one electorate, one SBC stack — the repeated-
    // invocation workload the multi-epoch API exists for.
    let mut e = Election::new(SchnorrGroup::tiny(), 3, 2, b"motions").unwrap();
    let schedule: [[usize; 3]; 3] = [[1, 1, 0], [0, 0, 1], [1, 0, 0]];
    let mut last_round = 0;
    for (m, votes) in schedule.iter().enumerate() {
        let mut expected = [0u64; 2];
        for (v, &c) in votes.iter().enumerate() {
            expected[c] += 1;
            e.vote(v, c).unwrap();
        }
        let r = e.finish_epoch().unwrap();
        assert_eq!(r.counts, expected.to_vec(), "motion {m}");
        assert!(r.tally_round > last_round, "motions share one global clock");
        last_round = r.tally_round;
    }
}

#[test]
fn ballots_survive_the_wire() {
    // Ballot → Value → bytes → Value → Ballot, through the same encoding
    // the SBC channel applies.
    let mut rng = Drbg::from_seed(b"wire");
    let setup = ElectionSetup::generate(SchnorrGroup::tiny(), 3, 2, 2, &mut rng);
    let b = Ballot::cast(&setup, 2, 1, &mut rng);
    let bytes = b.to_value().encode();
    let parsed = Ballot::from_value(&sbc_uc::value::Value::decode(&bytes).unwrap()).unwrap();
    assert_eq!(parsed, b);
    assert!(parsed.verify(&setup));
    assert_eq!(self_tally(&setup, &[parsed]).unwrap(), vec![0, 1]);
}

#[test]
fn election_tally_matches_direct_tally() {
    // The SBC-channel election agrees with tallying the same ballots
    // locally (the channel neither loses nor fabricates ballots).
    let mut e = Election::new(SchnorrGroup::tiny(), 5, 2, b"match").unwrap();
    let votes = [1usize, 0, 1, 1, 0];
    for (v, &c) in votes.iter().enumerate() {
        e.vote(v, c).unwrap();
    }
    let via_sbc = e.finish().unwrap().counts;
    assert_eq!(via_sbc, vec![2, 3]);
}
