//! Property-based tests (proptest) over the public APIs of the stack.

use proptest::prelude::*;
use sbc_primitives::astrolabous::{ast_enc, ast_solve_and_dec, xor_mask};
use sbc_primitives::bigint::U256;
use sbc_primitives::drbg::Drbg;
use sbc_primitives::group::SchnorrGroup;
use sbc_primitives::hashchain::{chain_encode, chain_solve, payload_from_witness};
use sbc_primitives::sha256::Sha256;
use sbc_uc::value::Value;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<u64>().prop_map(Value::U64),
        any::<i64>().prop_map(Value::I64),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
        "[a-z]{0,12}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(3, 32, 6, |inner| {
        proptest::collection::vec(inner, 0..6).prop_map(Value::List)
    })
}

proptest! {
    #[test]
    fn value_codec_round_trip(v in arb_value()) {
        prop_assert_eq!(Value::decode(&v.encode()), Some(v));
    }

    #[test]
    fn value_ordering_consistent_with_encoding_identity(a in arb_value(), b in arb_value()) {
        // Equal values have equal encodings; distinct values distinct ones.
        prop_assert_eq!(a == b, a.encode() == b.encode());
    }

    #[test]
    fn u256_add_sub_round_trip(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let x = U256::from_be_bytes(&a);
        let y = U256::from_be_bytes(&b);
        let (sum, carry) = x.overflowing_add(&y);
        let (back, borrow) = sum.overflowing_sub(&y);
        prop_assert_eq!(back, x);
        prop_assert_eq!(carry, borrow);
    }

    #[test]
    fn u256_mulmod_commutative(a in any::<[u8; 32]>(), b in any::<[u8; 32]>(), m in 2u64..u64::MAX) {
        let x = U256::from_be_bytes(&a);
        let y = U256::from_be_bytes(&b);
        let m = U256::from_u64(m);
        prop_assert_eq!(x.mulmod(&y, &m), y.mulmod(&x, &m));
    }

    #[test]
    fn group_exponent_laws(e1 in 1u64..1000, e2 in 1u64..1000) {
        let grp = SchnorrGroup::tiny();
        let g = grp.generator();
        let a = grp.exp(&g, &grp.scalar_from_u64(e1));
        let b = grp.exp(&g, &grp.scalar_from_u64(e2));
        prop_assert_eq!(grp.mul(&a, &b), grp.exp(&g, &grp.scalar_from_u64(e1 + e2)));
    }

    #[test]
    fn hashchain_round_trip(len in 1usize..24, payload in any::<[u8; 32]>(), seed in any::<[u8; 16]>()) {
        let h = |x: &[u8]| Sha256::digest(x);
        let mut rng = Drbg::from_seed(&seed);
        let rs: Vec<[u8; 32]> = (0..len).map(|_| {
            let b = rng.gen_bytes(32);
            let mut e = [0u8; 32]; e.copy_from_slice(&b); e
        }).collect();
        let chain = chain_encode(&h, &rs, &payload);
        let (p, w) = chain_solve(&h, &chain).unwrap();
        prop_assert_eq!(p, payload);
        prop_assert_eq!(payload_from_witness(&chain, &w).unwrap(), payload);
    }

    #[test]
    fn astrolabous_round_trip(msg in proptest::collection::vec(any::<u8>(), 0..128),
                              tau in 1u64..4, q in 1u32..5, seed in any::<[u8; 16]>()) {
        let h = |x: &[u8]| Sha256::digest(x);
        let mut rng = Drbg::from_seed(&seed);
        let ct = ast_enc(&h, &msg, tau, q, &mut rng);
        prop_assert_eq!(ast_solve_and_dec(&h, &ct).unwrap(), msg);
    }

    #[test]
    fn xor_mask_involution(data in proptest::collection::vec(any::<u8>(), 0..200), seed in any::<[u8; 32]>()) {
        prop_assert_eq!(xor_mask(&seed, &xor_mask(&seed, &data)), data);
    }

    #[test]
    fn drbg_fork_independence(label_a in "[a-z]{1,8}", label_b in "[a-z]{1,8}") {
        prop_assume!(label_a != label_b);
        let mut root = Drbg::from_seed(b"prop");
        let mut a = root.fork(label_a.as_bytes());
        let mut b = root.fork(label_b.as_bytes());
        prop_assert_ne!(a.gen_bytes(16), b.gen_bytes(16));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Dolev–Strong agreement holds under random Byzantine strategies.
    #[test]
    fn dolev_strong_agreement_random_byzantine(seed in any::<[u8; 8]>()) {
        use sbc_broadcast::rbc::dolev_strong::{ChainLink, DolevStrong};
        use sbc_uc::cert::IdealCert;
        use sbc_uc::ids::PartyId;

        let mut plan = Drbg::from_seed(&seed);
        let n = 4usize;
        let t = 2usize;
        let mut rng = Drbg::from_seed(b"ds-prop");
        let certs: Vec<IdealCert> = (0..n as u32)
            .map(|i| IdealCert::new(PartyId(i), rng.fork(&i.to_be_bytes())))
            .collect();
        let mut ds = DolevStrong::new(b"prop".to_vec(), t, PartyId(0), certs);
        ds.corrupt(PartyId(0));
        ds.corrupt(PartyId(1));
        // Random adversarial schedule: signed sends of random values to
        // random recipients in random rounds.
        for round in 0..=t as u64 {
            for _ in 0..plan.gen_range(3) {
                let m = Value::U64(plan.gen_range(3));
                let from = PartyId(plan.gen_range(2) as u32);
                let to = PartyId(2 + plan.gen_range(2) as u32);
                let mut chain = vec![];
                if let Some(sig) = ds.adversary_sign(PartyId(0), m.clone()) {
                    chain.push(ChainLink { signer: PartyId(0), signature: sig });
                }
                if plan.gen_bool() {
                    if let Some(sig) = ds.adversary_sign(PartyId(1), m.clone()) {
                        chain.push(ChainLink { signer: PartyId(1), signature: sig });
                    }
                }
                ds.adversary_send(from, to, m, chain);
            }
            ds.step_round();
            let _ = round;
        }
        let outs = ds.outputs();
        prop_assert_eq!(&outs[2], &outs[3], "honest agreement");
    }
}
