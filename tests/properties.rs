//! Property-style tests over the public APIs of the stack.
//!
//! The build container has no crates.io access, so instead of proptest
//! these are deterministic randomized sweeps: a seeded [`Drbg`] drives a
//! generator and each property is checked over a few hundred cases. Every
//! failure reproduces exactly from the fixed seeds.

use sbc_primitives::astrolabous::{ast_enc, ast_solve_and_dec, xor_mask};
use sbc_primitives::bigint::U256;
use sbc_primitives::drbg::Drbg;
use sbc_primitives::group::SchnorrGroup;
use sbc_primitives::hashchain::{chain_encode, chain_solve, payload_from_witness};
use sbc_primitives::sha256::Sha256;
use sbc_uc::value::Value;

/// Generates an arbitrary `Value` tree of bounded depth.
fn arb_value(rng: &mut Drbg, depth: usize) -> Value {
    let n_variants = if depth == 0 { 6 } else { 7 };
    match rng.gen_range(n_variants) {
        0 => Value::Unit,
        1 => Value::Bool(rng.gen_bool()),
        2 => Value::U64(rng.gen_u64()),
        3 => Value::I64(rng.gen_u64() as i64),
        4 => {
            let len = rng.gen_range(64) as usize;
            Value::Bytes(rng.gen_bytes(len))
        }
        5 => {
            let len = rng.gen_range(12) as usize;
            let s: String = (0..len)
                .map(|_| (b'a' + rng.gen_range(26) as u8) as char)
                .collect();
            Value::Str(s)
        }
        _ => {
            let len = rng.gen_range(6) as usize;
            Value::List((0..len).map(|_| arb_value(rng, depth - 1)).collect())
        }
    }
}

#[test]
fn value_codec_round_trip() {
    let mut rng = Drbg::from_seed(b"prop-codec");
    for case in 0..300 {
        let v = arb_value(&mut rng, 3);
        assert_eq!(
            Value::decode(&v.encode()),
            Some(v.clone()),
            "case {case}: {v:?}"
        );
    }
}

#[test]
fn value_ordering_consistent_with_encoding_identity() {
    // Equal values have equal encodings; distinct values distinct ones.
    let mut rng = Drbg::from_seed(b"prop-order");
    for case in 0..300 {
        let a = arb_value(&mut rng, 3);
        let b = arb_value(&mut rng, 3);
        assert_eq!(
            a == b,
            a.encode() == b.encode(),
            "case {case}: {a:?} vs {b:?}"
        );
    }
}

#[test]
fn u256_add_sub_round_trip() {
    let mut rng = Drbg::from_seed(b"prop-u256");
    for case in 0..300 {
        let x = U256::from_be_bytes(&rng.gen_bytes(32).try_into().unwrap());
        let y = U256::from_be_bytes(&rng.gen_bytes(32).try_into().unwrap());
        let (sum, carry) = x.overflowing_add(&y);
        let (back, borrow) = sum.overflowing_sub(&y);
        assert_eq!(back, x, "case {case}");
        assert_eq!(carry, borrow, "case {case}");
    }
}

#[test]
fn u256_mulmod_commutative() {
    let mut rng = Drbg::from_seed(b"prop-mulmod");
    for case in 0..200 {
        let x = U256::from_be_bytes(&rng.gen_bytes(32).try_into().unwrap());
        let y = U256::from_be_bytes(&rng.gen_bytes(32).try_into().unwrap());
        let m = U256::from_u64(2 + rng.gen_u64() % (u64::MAX - 2));
        assert_eq!(x.mulmod(&y, &m), y.mulmod(&x, &m), "case {case}");
    }
}

#[test]
fn group_exponent_laws() {
    let grp = SchnorrGroup::tiny();
    let g = grp.generator();
    let mut rng = Drbg::from_seed(b"prop-group");
    for case in 0..100 {
        let e1 = 1 + rng.gen_range(999);
        let e2 = 1 + rng.gen_range(999);
        let a = grp.exp(&g, &grp.scalar_from_u64(e1));
        let b = grp.exp(&g, &grp.scalar_from_u64(e2));
        assert_eq!(
            grp.mul(&a, &b),
            grp.exp(&g, &grp.scalar_from_u64(e1 + e2)),
            "case {case}: e1={e1} e2={e2}"
        );
    }
}

#[test]
fn hashchain_round_trip() {
    let h = |x: &[u8]| Sha256::digest(x);
    let mut plan = Drbg::from_seed(b"prop-chain");
    for case in 0..40 {
        let len = 1 + plan.gen_range(23) as usize;
        let payload: [u8; 32] = plan.gen_bytes(32).try_into().unwrap();
        let mut rng = plan.fork(format!("chain/{case}").as_bytes());
        let rs: Vec<[u8; 32]> = (0..len)
            .map(|_| rng.gen_bytes(32).try_into().unwrap())
            .collect();
        let chain = chain_encode(&h, &rs, &payload);
        let (p, w) = chain_solve(&h, &chain).unwrap();
        assert_eq!(p, payload, "case {case}");
        assert_eq!(
            payload_from_witness(&chain, &w).unwrap(),
            payload,
            "case {case}"
        );
    }
}

#[test]
fn astrolabous_round_trip() {
    let h = |x: &[u8]| Sha256::digest(x);
    let mut plan = Drbg::from_seed(b"prop-ast");
    for case in 0..40 {
        let msg_len = plan.gen_range(128) as usize;
        let msg = plan.gen_bytes(msg_len);
        let tau = 1 + plan.gen_range(3);
        let q = 1 + plan.gen_range(4) as u32;
        let mut rng = plan.fork(format!("ast/{case}").as_bytes());
        let ct = ast_enc(&h, &msg, tau, q, &mut rng);
        assert_eq!(
            ast_solve_and_dec(&h, &ct).unwrap(),
            msg,
            "case {case}: tau={tau} q={q}"
        );
    }
}

#[test]
fn xor_mask_involution() {
    let mut rng = Drbg::from_seed(b"prop-xor");
    for case in 0..200 {
        let data_len = rng.gen_range(200) as usize;
        let data = rng.gen_bytes(data_len);
        let seed: [u8; 32] = rng.gen_bytes(32).try_into().unwrap();
        assert_eq!(
            xor_mask(&seed, &xor_mask(&seed, &data)),
            data,
            "case {case}"
        );
    }
}

#[test]
fn drbg_fork_independence() {
    let mut plan = Drbg::from_seed(b"prop-fork-labels");
    for case in 0..100 {
        let la: Vec<u8> = (0..1 + plan.gen_range(8))
            .map(|_| b'a' + plan.gen_range(26) as u8)
            .collect();
        let lb: Vec<u8> = (0..1 + plan.gen_range(8))
            .map(|_| b'a' + plan.gen_range(26) as u8)
            .collect();
        if la == lb {
            continue;
        }
        let mut root = Drbg::from_seed(b"prop");
        let mut a = root.fork(&la);
        let mut b = root.fork(&lb);
        assert_ne!(a.gen_bytes(16), b.gen_bytes(16), "case {case}");
    }
}

/// Dolev–Strong agreement holds under random Byzantine strategies.
#[test]
fn dolev_strong_agreement_random_byzantine() {
    use sbc_broadcast::rbc::dolev_strong::{ChainLink, DolevStrong};
    use sbc_uc::cert::IdealCert;
    use sbc_uc::ids::PartyId;

    for trial in 0u8..12 {
        let mut plan = Drbg::from_seed(&[b'd', b's', trial]);
        let n = 4usize;
        let t = 2usize;
        let mut rng = Drbg::from_seed(b"ds-prop");
        let certs: Vec<IdealCert> = (0..n as u32)
            .map(|i| IdealCert::new(PartyId(i), rng.fork(&i.to_be_bytes())))
            .collect();
        let mut ds = DolevStrong::new(b"prop".to_vec(), t, PartyId(0), certs);
        ds.corrupt(PartyId(0));
        ds.corrupt(PartyId(1));
        // Random adversarial schedule: signed sends of random values to
        // random recipients in random rounds.
        for _round in 0..=t as u64 {
            for _ in 0..plan.gen_range(3) {
                let m = Value::U64(plan.gen_range(3));
                let from = PartyId(plan.gen_range(2) as u32);
                let to = PartyId(2 + plan.gen_range(2) as u32);
                let mut chain = vec![];
                if let Some(sig) = ds.adversary_sign(PartyId(0), m.clone()) {
                    chain.push(ChainLink {
                        signer: PartyId(0),
                        signature: sig,
                    });
                }
                if plan.gen_bool() {
                    if let Some(sig) = ds.adversary_sign(PartyId(1), m.clone()) {
                        chain.push(ChainLink {
                            signer: PartyId(1),
                            signature: sig,
                        });
                    }
                }
                ds.adversary_send(from, to, m, chain);
            }
            ds.step_round();
        }
        let outs = ds.outputs();
        assert_eq!(&outs[2], &outs[3], "trial {trial}: honest agreement");
    }
}
