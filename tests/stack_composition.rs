//! Cross-crate integration: the Corollary 1 composition and the round/cost
//! accounting of every layer of the stack.

use sbc_broadcast::fbc::worlds::{IdealFbcWorld, RealFbcWorld};
use sbc_broadcast::rbc::dolev_strong::DolevStrong;
use sbc_core::api::SbcSession;
use sbc_core::worlds::{RealSbcWorld, SbcParams};
use sbc_primitives::drbg::Drbg;
use sbc_uc::cert::{IdealCert, RealCert};
use sbc_uc::ids::PartyId;
use sbc_uc::value::{Command, Value};
use sbc_uc::world::run_env;

/// Fact 1 over *real* WOTS signatures instead of the ideal F_cert: the
/// Dolev–Strong realization is certifier-agnostic.
#[test]
fn dolev_strong_over_real_signatures() {
    let mut rng = Drbg::from_seed(b"ds-real-certs");
    let certs: Vec<RealCert> = (0..4u32)
        .map(|i| RealCert::new(PartyId(i), 4, &mut rng))
        .collect();
    let mut ds = DolevStrong::new(b"sid".to_vec(), 2, PartyId(0), certs);
    ds.start_honest(Value::bytes(b"over real PKI"));
    ds.run_to_completion();
    for out in ds.outputs() {
        assert_eq!(out, Value::bytes(b"over real PKI"));
    }
}

/// Dolev–Strong round complexity: always exactly t + 1 rounds.
#[test]
fn dolev_strong_round_complexity_sweep() {
    for n in [3usize, 5, 8] {
        for t in [1usize, n / 2, n - 1] {
            let mut rng = Drbg::from_seed(b"sweep");
            let certs: Vec<IdealCert> = (0..n as u32)
                .map(|i| IdealCert::new(PartyId(i), rng.fork(&i.to_be_bytes())))
                .collect();
            let mut ds = DolevStrong::new(b"s".to_vec(), t, PartyId(0), certs);
            ds.start_honest(Value::U64(1));
            ds.run_to_completion();
            assert_eq!(ds.round(), t as u64 + 1, "n={n} t={t}");
        }
    }
}

/// Corollary 1 parameters: the composed stack runs with Φ > 3, ∆ > 2.
#[test]
fn corollary1_parameter_regime() {
    let mut s = SbcSession::builder(4)
        .phi(4)
        .delta(3)
        .seed(b"cor1")
        .build()
        .unwrap();
    s.submit(0, b"a").unwrap();
    s.submit(1, b"b").unwrap();
    s.submit(2, b"c").unwrap();
    let r = s.run_to_completion().unwrap();
    assert_eq!(r.messages.len(), 3);
    assert_eq!(r.release_round, 4 + 3, "t_end + ∆ with Φ=4, ∆=3");
}

/// Corollary 1, repeated: successive Φ > 3, ∆ > 2 periods on one composed
/// stack via the multi-epoch session API.
#[test]
fn corollary1_regime_multi_epoch() {
    let mut s = SbcSession::builder(4)
        .phi(4)
        .delta(3)
        .seed(b"cor1-epochs")
        .build()
        .unwrap();
    let mut last_release = 0;
    for epoch in 0u64..3 {
        for i in 0..3u32 {
            s.submit(i, format!("e{epoch}-m{i}").as_bytes()).unwrap();
        }
        let r = s.run_epoch().unwrap();
        assert_eq!(r.epoch, epoch);
        assert_eq!(r.messages.len(), 3);
        assert!(r.release_round > last_release);
        last_release = r.release_round;
    }
}

/// FBC delivery delay is exactly ∆ = 2 for every sender and round offset.
#[test]
fn fbc_delta_invariant_across_offsets() {
    for offset in 0u64..3 {
        let mut real = RealFbcWorld::new(3, 3, b"offsets");
        let t = run_env(&mut real, |env| {
            env.idle_rounds(offset);
            env.input(PartyId(1), Command::new("Broadcast", Value::bytes(b"m")));
            env.idle_rounds(4);
        });
        for (round, _, _) in t.outputs() {
            assert_eq!(round, offset + 2, "offset {offset}");
        }
    }
}

/// The full SBC stack delivers identical vectors to every party, for a
/// range of n and message loads.
#[test]
fn sbc_agreement_sweep() {
    for n in [2usize, 3, 5, 8] {
        let params = SbcParams::default_for(n);
        let mut world = RealSbcWorld::new(params, format!("sweep-{n}").as_bytes());
        let t = run_env(&mut world, |env| {
            for i in 0..n {
                env.input(
                    PartyId(i as u32),
                    Command::new("Broadcast", Value::bytes(format!("msg-{i}").as_bytes())),
                );
                env.advance_all();
            }
            env.idle_rounds(params.phi + params.delta + 2);
        });
        let outs = t.outputs();
        let delivered: Vec<&Command> = outs.iter().map(|(_, _, c)| *c).collect();
        assert!(!delivered.is_empty(), "n={n}");
        for w in delivered.windows(2) {
            assert_eq!(w[0].value, w[1].value, "agreement n={n}");
        }
    }
}

/// Late joiners (inputs after the period closes) never corrupt agreement.
#[test]
fn sbc_rejects_late_messages_consistently() {
    let params = SbcParams::default_for(3);
    let mut world = RealSbcWorld::new(params, b"late");
    let t = run_env(&mut world, |env| {
        env.input(
            PartyId(0),
            Command::new("Broadcast", Value::bytes(b"early")),
        );
        env.idle_rounds(3); // period [0,3) closes
        env.input(PartyId(1), Command::new("Broadcast", Value::bytes(b"late")));
        env.idle_rounds(5);
    });
    for (_, _, cmd) in t.outputs() {
        assert_eq!(cmd.value.as_list().unwrap(), &[Value::bytes(b"early")]);
    }
}

/// Byzantine smoke across layers: corruption mid-run at each layer keeps
/// the real and ideal FBC worlds indistinguishable.
#[test]
fn fbc_indistinguishable_under_randomized_corruption_schedules() {
    for seed_idx in 0u8..5 {
        let seed = [b's', b'c', seed_idx];
        let mut drv = Drbg::from_seed(&seed);
        let corrupt_at = drv.gen_range(3);
        let victim = drv.gen_range(2) as u32 + 1;
        let script = move |env: &mut sbc_uc::world::EnvDriver<'_>| {
            env.input(
                PartyId(0),
                Command::new("Broadcast", Value::bytes(b"payload")),
            );
            for r in 0..5u64 {
                if r == corrupt_at {
                    env.adversary(sbc_uc::world::AdvCommand::Corrupt(PartyId(victim)));
                }
                env.advance_all();
            }
        };
        let mut real = RealFbcWorld::new(3, 3, &seed);
        let mut ideal = IdealFbcWorld::new(3, 3, &seed);
        let tr = run_env(&mut real, script);
        let ti = run_env(&mut ideal, script);
        assert_eq!(tr.digest(), ti.digest(), "seed {seed_idx}");
    }
}
