//! Error-path coverage for the fallible session API: every public misuse
//! of `SbcSession` returns the right `SbcError` variant — no panics.
//! Includes an exhaustive variant round-trip (`exhaustive_sbc_error_...`)
//! that fails to compile when a variant is added without coverage.

use sbc_core::api::{AdversaryConfig, SbcError, SbcSession};

#[test]
fn invalid_params_rejected_at_build() {
    // Φ ≤ delay (Theorem 2 violated).
    assert!(matches!(
        SbcSession::builder(3)
            .phi(1)
            .tle_delay(2)
            .seed(b"p1")
            .build(),
        Err(SbcError::InvalidParams { .. })
    ));
    // ∆ ≤ α_TLE (Theorem 2 violated).
    assert!(matches!(
        SbcSession::builder(3).delta(0).seed(b"p2").build(),
        Err(SbcError::InvalidParams { .. })
    ));
    // Degenerate party count.
    assert!(matches!(
        SbcSession::builder(0).seed(b"p3").build(),
        Err(SbcError::InvalidParams { .. })
    ));
    // Adversary config referencing a non-existent party.
    assert!(matches!(
        SbcSession::builder(2)
            .adversary(AdversaryConfig::new().corrupt(&[5]))
            .seed(b"p4")
            .build(),
        Err(SbcError::PartyOutOfRange { party: 5, n: 2 })
    ));
}

#[test]
fn out_of_range_party_rejected_at_submit() {
    let mut s = SbcSession::builder(3).seed(b"range").build().unwrap();
    assert_eq!(
        s.submit(3, b"x"),
        Err(SbcError::PartyOutOfRange { party: 3, n: 3 })
    );
    // The session is still usable after the error.
    s.submit(0, b"ok").unwrap();
    assert_eq!(
        s.run_to_completion().unwrap().messages,
        vec![b"ok".to_vec()]
    );
}

#[test]
fn submit_after_period_close_rejected() {
    let mut s = SbcSession::builder(2).seed(b"close").build().unwrap();
    s.submit(0, b"opens the period").unwrap();
    // Period = [0, Φ); a submission whose ciphertext cannot be ready
    // before t_end is rejected with the closing round in the error.
    for _ in 0..2 {
        s.step_round().unwrap();
    }
    assert_eq!(
        s.submit(1, b"too late"),
        Err(SbcError::SubmitAfterClose { round: 2, t_end: 3 })
    );
    // After release (no epoch turnover) the period stays closed.
    let r = s.run_to_completion().unwrap();
    assert_eq!(r.messages.len(), 1);
    assert!(matches!(
        s.submit(1, b"still closed"),
        Err(SbcError::SubmitAfterClose { .. })
    ));
}

#[test]
fn empty_epoch_is_no_input() {
    let mut s = SbcSession::builder(2).seed(b"noinput").build().unwrap();
    assert_eq!(s.run_to_completion(), Err(SbcError::NoInput));
    assert_eq!(s.run_epoch().unwrap_err(), SbcError::NoInput);
    // An epoch that did run resets the submission counter: the next
    // run_epoch without submissions is NoInput again.
    s.submit(0, b"m").unwrap();
    s.run_epoch().unwrap();
    assert_eq!(s.run_epoch().unwrap_err(), SbcError::NoInput);
}

#[test]
fn wake_up_suppressed_by_corruption_times_out() {
    // The only submitter is corrupted before its wake-up flushes: the
    // period never opens, and the session reports Timeout instead of
    // spinning or panicking.
    let mut s = SbcSession::builder(3).seed(b"timeout").build().unwrap();
    s.submit(0, b"never flushed").unwrap();
    s.corrupt(0).unwrap();
    let err = s.run_to_completion().unwrap_err();
    assert!(
        matches!(err, SbcError::Timeout { budget } if budget == 3 + 2 + 4),
        "{err:?}"
    );
}

#[test]
fn corrupted_party_cannot_submit_honestly() {
    let mut s = SbcSession::builder(3).seed(b"corr").build().unwrap();
    s.corrupt(2).unwrap();
    assert_eq!(
        s.submit(2, b"m"),
        Err(SbcError::CorruptedParty { party: 2 })
    );
    // Double corruption is also a typed error.
    assert_eq!(s.corrupt(2), Err(SbcError::CorruptedParty { party: 2 }));
}

#[test]
fn adversarial_ops_require_corruption() {
    let mut s = SbcSession::builder(2).seed(b"adv").build().unwrap();
    assert_eq!(
        s.inject_message(0, b"m"),
        Err(SbcError::HonestParty { party: 0 })
    );
    s.corrupt(0).unwrap();
    // Before any wake-up there is no agreed τ_rel to inject towards.
    assert_eq!(s.inject_message(0, b"m"), Err(SbcError::PeriodNotOpen));
}

#[test]
fn errors_display_and_propagate() {
    // SbcError implements Display + Error and survives the `?` operator
    // through app-level error enums.
    let err = SbcSession::builder(0).build().unwrap_err();
    assert!(err.to_string().contains("invalid SBC parameters"));
    let as_voting: sbc_apps::voting::VotingError = err.into();
    assert!(matches!(
        as_voting,
        sbc_apps::voting::VotingError::Sbc(SbcError::InvalidParams { .. })
    ));
}

/// Every `SbcError` variant, round-tripped through clone/eq/Display. The
/// match in `expected_needle` is deliberately without a `_` arm: adding a
/// variant to `SbcError` without extending this test is a compile error.
#[test]
fn exhaustive_sbc_error_variant_round_trips() {
    fn expected_needle(e: &SbcError) -> &'static str {
        match e {
            SbcError::InvalidParams { .. } => "invalid SBC parameters",
            SbcError::PartyOutOfRange { .. } => "out of range",
            SbcError::CorruptedParty { .. } => "corrupted",
            SbcError::CorruptionBudgetExceeded { .. } => "no honest party",
            SbcError::HonestParty { .. } => "honest",
            SbcError::SubmitAfterClose { .. } => "t_end",
            SbcError::PeriodNotOpen => "τ_rel",
            SbcError::UnknownInstance { .. } => "never opened",
            SbcError::InstanceFinished { .. } => "already finished",
            SbcError::InstanceLive { .. } => "still live",
            SbcError::NotFresh { .. } => "not fresh",
            SbcError::NoInput => "nothing submitted",
            SbcError::Timeout { .. } => "rounds",
            SbcError::Internal { .. } => "internal",
            SbcError::Backend { .. } => "bring-up",
        }
    }
    let all = vec![
        SbcError::InvalidParams {
            reason: "need Φ > delay",
        },
        SbcError::PartyOutOfRange { party: 9, n: 3 },
        SbcError::CorruptedParty { party: 1 },
        SbcError::CorruptionBudgetExceeded { party: 2 },
        SbcError::HonestParty { party: 0 },
        SbcError::SubmitAfterClose { round: 4, t_end: 3 },
        SbcError::PeriodNotOpen,
        SbcError::UnknownInstance { instance: 11 },
        SbcError::InstanceFinished { instance: 5 },
        SbcError::InstanceLive { instance: 6 },
        SbcError::NotFresh {
            round: 7,
            opened: 2,
        },
        SbcError::NoInput,
        SbcError::Timeout { budget: 9 },
        SbcError::Internal {
            detail: "boom".into(),
        },
        SbcError::Backend {
            detail: "bind refused".into(),
        },
    ];
    for err in &all {
        // Clone/PartialEq round-trip.
        assert_eq!(&err.clone(), err);
        // Display names the failure and is stable under `to_string`.
        let rendered = err.to_string();
        assert!(
            rendered.contains(expected_needle(err)),
            "{err:?} rendered as {rendered:?}"
        );
        // std::error::Error is implemented (source-free leaf errors).
        let dyn_err: &dyn std::error::Error = err;
        assert!(dyn_err.source().is_none());
    }
    // Distinct variants never compare equal (catches copy-paste Display/Eq
    // mistakes when variants are added).
    for (i, a) in all.iter().enumerate() {
        for (j, b) in all.iter().enumerate() {
            assert_eq!(a == b, i == j, "{a:?} vs {b:?}");
        }
    }
}

#[test]
fn pool_error_paths_through_the_session_surface() {
    // The session is the single-instance special case of the pool: its
    // surface never produces the pool-only variants, while the pool's
    // typed instance errors are covered in tests/pool.rs.
    let mut s = SbcSession::builder(2).seed(b"pool-compat").build().unwrap();
    s.submit(0, b"m").unwrap();
    let r = s.run_epoch().unwrap();
    assert_eq!(r.epoch, 0);
    let err = s.run_epoch().unwrap_err();
    assert!(
        !matches!(
            err,
            SbcError::UnknownInstance { .. } | SbcError::InstanceFinished { .. }
        ),
        "session misuse stays NoInput, not an instance error: {err:?}"
    );
    assert_eq!(err, SbcError::NoInput);
}

#[test]
fn multi_epoch_with_mid_session_corruption() {
    // Corruption persists across epochs: a party corrupted in epoch 0
    // cannot submit in epoch 1, but the rest of the electorate continues.
    let mut s = SbcSession::builder(3).seed(b"epochs-corr").build().unwrap();
    s.submit(0, b"e0-a").unwrap();
    s.submit(1, b"e0-b").unwrap();
    s.corrupt(2).unwrap();
    let r = s.run_epoch().unwrap();
    assert_eq!(r.messages.len(), 2);
    assert_eq!(
        s.submit(2, b"e1-c"),
        Err(SbcError::CorruptedParty { party: 2 })
    );
    s.submit(0, b"e1-a").unwrap();
    let r = s.run_epoch().unwrap();
    assert_eq!(r.messages, vec![b"e1-a".to_vec()]);
}

/// Every `sbc-net` error variant, round-tripped like `SbcError` above:
/// `Display` needles, clone/eq, `std::error::Error` with the
/// `NetError::Codec` → `CodecError` source chain, pairwise distinctness.
/// The needle matches are deliberately without `_` arms: adding a codec
/// or net variant without extending this test is a compile error.
#[test]
fn exhaustive_net_error_variant_round_trips() {
    use sbc_net::{CodecError, NetError};

    fn codec_needle(e: &CodecError) -> &'static str {
        match e {
            CodecError::Truncated { .. } => "truncated frame",
            CodecError::BadMagic { .. } => "bad magic",
            CodecError::UnsupportedVersion { .. } => "unsupported wire version",
            CodecError::UnknownKind { .. } => "unknown frame kind",
            CodecError::UnknownEndpoint { .. } => "unknown endpoint",
            CodecError::LengthMismatch { .. } => "length prefix mismatch",
            CodecError::Oversize { .. } => "cap is",
            CodecError::BadPayload { .. } => "malformed payload",
            CodecError::TrailingBytes { .. } => "trailing bytes",
        }
    }
    let all_codec = vec![
        CodecError::Truncated {
            needed: 26,
            have: 3,
        },
        CodecError::BadMagic {
            found: [0x00, 0xFF],
        },
        CodecError::UnsupportedVersion { found: 9 },
        CodecError::UnknownKind { tag: 42 },
        CodecError::UnknownEndpoint { tag: 7 },
        CodecError::LengthMismatch {
            declared: 10,
            actual: 30,
        },
        CodecError::Oversize {
            len: 1 << 30,
            max: 1 << 24,
        },
        CodecError::BadPayload { kind: "TleEnc" },
        CodecError::TrailingBytes { extra: 4 },
    ];
    for err in &all_codec {
        assert_eq!(&err.clone(), err);
        let rendered = err.to_string();
        assert!(
            rendered.contains(codec_needle(err)),
            "{err:?} rendered as {rendered:?}"
        );
        // Codec errors are leaf errors: no source.
        let dyn_err: &dyn std::error::Error = err;
        assert!(dyn_err.source().is_none());
    }
    for (i, a) in all_codec.iter().enumerate() {
        for (j, b) in all_codec.iter().enumerate() {
            assert_eq!(a == b, i == j, "{a:?} vs {b:?}");
        }
    }

    fn net_needle(e: &NetError) -> &'static str {
        match e {
            NetError::Codec(_) => "undecodable frame",
            NetError::UnknownParty { .. } => "experiment has",
            NetError::Io { .. } => "socket",
            NetError::Timeout { .. } => "deadline expired",
            NetError::LinkDown { .. } => "reconnect attempts",
        }
    }
    let all_net = vec![
        NetError::Codec(CodecError::BadMagic { found: [1, 2] }),
        NetError::UnknownParty { party: 9, n: 4 },
        NetError::Io {
            op: "connect",
            detail: "connection refused".into(),
        },
        NetError::Timeout {
            op: "recv",
            millis: 400,
        },
        NetError::LinkDown {
            lane: "data:2".into(),
            attempts: 5,
        },
    ];
    for err in &all_net {
        assert_eq!(&err.clone(), err);
        let rendered = err.to_string();
        assert!(
            rendered.contains(net_needle(err)),
            "{err:?} rendered as {rendered:?}"
        );
    }
    for (i, a) in all_net.iter().enumerate() {
        for (j, b) in all_net.iter().enumerate() {
            assert_eq!(a == b, i == j, "{a:?} vs {b:?}");
        }
    }

    // The source chain: NetError::Codec exposes the codec failure through
    // std::error::Error::source; UnknownParty is a leaf.
    let chained: &dyn std::error::Error = &all_net[0];
    let source = chained.source().expect("Codec carries its source");
    assert!(source.to_string().contains("bad magic"));
    assert!(source.source().is_none(), "chain terminates at the codec");
    for leaf_err in &all_net[1..] {
        let leaf: &dyn std::error::Error = leaf_err;
        assert!(leaf.source().is_none(), "{leaf_err:?} is a leaf");
    }

    // From<CodecError> wraps into the chained variant.
    let wrapped: NetError = CodecError::UnknownKind { tag: 3 }.into();
    assert_eq!(wrapped, NetError::Codec(CodecError::UnknownKind { tag: 3 }));
}
