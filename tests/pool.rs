//! Pool-level Theorem 2 coverage and pool error paths.
//!
//! The headline test drives a real/ideal **pool** pair — 4+ concurrent SBC
//! instances over one shared clock and one global corruption state —
//! through the extended dual-world harness (`PoolDualRun`), asserting
//! transcript equality *keyed by instance* across 2+ epochs per instance
//! with adaptive corruption, adversarial injection, leakage probes, and a
//! staggered late-opened instance. The error-path tests pin down the typed
//! `SbcError` surface of the session-level `SbcPool`.
//!
//! The scheduling tests assert the pool's two performance paths are
//! observation-equivalent to their references: parallel `tick_all` vs the
//! serial loop (bit-identical keyed transcripts under adaptive corruption)
//! and the O(1) `join_at` offset join vs the literal idle-round replay.
//! The lifecycle regression tests cover the retire-drops-drains and
//! panicking-`open_instance` bugs.

use sbc_core::api::{SbcError, SbcResult};
use sbc_core::pool::{InstanceId, PartyShard, PooledSbcWorld, SbcPool, TickMode};
use sbc_core::protocol::sbc_wire;
use sbc_core::worlds::{IdealSbcWorld, RealSbcWorld, SbcBackend, SbcParams};
use sbc_primitives::drbg::Drbg;
use sbc_uc::exec::{CompareLevel, PoolDualRun, PoolWorld, SbcWorld};
use sbc_uc::ids::PartyId;
use sbc_uc::value::{Command, Value};
use sbc_uc::world::{AdvCommand, Leak, World};
use std::sync::atomic::{AtomicBool, Ordering};

type Pair = PoolDualRun<PooledSbcWorld<RealSbcWorld>, PooledSbcWorld<IdealSbcWorld>>;

/// Builds a real/ideal pool pair through the backend trait.
fn pool_pair(n: usize, seed: &[u8]) -> Pair {
    fn backend<W: SbcBackend>(n: usize, seed: &[u8]) -> PooledSbcWorld<W> {
        PooledSbcWorld::new(SbcParams::default_for(n), seed).expect("valid default params")
    }
    PoolDualRun::new(
        backend(n, seed),
        backend(n, seed),
        CompareLevel::ShapeAndOutputs,
    )
}

/// The adversarial-broadcast recipe of `SbcSession::inject_message`,
/// expressed in instance-scoped dual-pool driver actions (generic over the
/// pool pair under comparison).
fn inject<A: PoolWorld, B: PoolWorld>(
    dual: &mut PoolDualRun<A, B>,
    rng: &mut Drbg,
    instance: InstanceId,
    party: PartyId,
    message: &[u8],
) {
    let tau_rel = dual.release_round(instance).expect("period open");
    let ct = Value::bytes(rng.gen_bytes(64));
    let rho = rng.gen_bytes(32);
    dual.adversary(
        instance,
        AdvCommand::Control {
            target: "F_TLE".into(),
            cmd: Command::new(
                "Insert",
                Value::list([ct.clone(), Value::bytes(&rho), Value::U64(tau_rel)]),
            ),
        },
    );
    let m_bytes = Value::bytes(message).encode();
    let (eta_real, eta_ideal) = dual.adversary(
        instance,
        AdvCommand::Control {
            target: "F_RO".into(),
            cmd: Command::new(
                "QueryBytes",
                Value::list([Value::bytes(&rho), Value::U64(m_bytes.len() as u64)]),
            ),
        },
    );
    assert_eq!(eta_real, eta_ideal, "same instance seed, same oracle point");
    let eta = eta_real.as_bytes().expect("mask is bytes").to_vec();
    let y: Vec<u8> = m_bytes.iter().zip(eta.iter()).map(|(a, b)| a ^ b).collect();
    dual.adversary(
        instance,
        AdvCommand::SendAs {
            party,
            cmd: Command::new("Broadcast", sbc_wire(&ct, tau_rel, &y)),
        },
    );
}

/// Acceptance scenario: a pool of 4 concurrent instances (plus a fifth
/// opened mid-run on the shared clock) running 2 epochs each, with an
/// adaptive global corruption in epoch 0, per-instance adversarial
/// injections and leakage probes in epoch 1, and late drains. Real and
/// ideal pools must produce instance-for-instance identical transcripts at
/// every epoch boundary.
#[test]
fn pool_theorem2_multi_instance_multi_epoch_active_adversary() {
    let n = 4;
    let mut dual = pool_pair(n, b"pool-t2");
    let mut adv_rng = Drbg::from_seed(b"pool-t2/adversary");
    let instances: Vec<InstanceId> = (0..4).map(|_| dual.open_instance()).collect();

    // ---- epoch 0: honest traffic on all four instances, staggered ----
    for (k, &id) in instances.iter().enumerate() {
        dual.submit(id, PartyId((k % 2) as u32), format!("e0/i{k}/a").as_bytes());
    }
    dual.step_round();
    // Adaptive corruption mid-period: P3 falls in *every* instance at once.
    let (cr, ci) = dual.corrupt(PartyId(3));
    assert!(cr && ci, "corruption accepted in both worlds");
    // A second submission on two of the instances.
    dual.submit(instances[0], PartyId(1), b"e0/i0/b");
    dual.submit(instances[2], PartyId(2), b"e0/i2/b");
    dual.idle_rounds(9); // all release at τ_rel = 5; drain late
    for &id in &instances {
        assert_eq!(dual.finish_epoch(id).expect("epoch 0 aligned"), 0);
    }

    // ---- a fifth instance opens mid-run, joining the shared clock ----
    let late = dual.open_instance();
    assert_eq!(dual.epoch(late), 0);

    // ---- epoch 1: injections + leakage probes per instance ----
    for (k, &id) in instances.iter().enumerate() {
        dual.submit(id, PartyId((k % 2) as u32), format!("e1/i{k}").as_bytes());
    }
    dual.submit(late, PartyId(0), b"e1/late");
    dual.step_round();
    for (k, &id) in instances.iter().enumerate() {
        // The adversary probes its F_TLE leakage view of this instance...
        dual.adversary(
            id,
            AdvCommand::Control {
                target: "F_TLE".into(),
                cmd: Command::new("Leakage", Value::Unit),
            },
        );
        // ...and commits an injected message on behalf of corrupted P3.
        inject(
            &mut dual,
            &mut adv_rng,
            id,
            PartyId(3),
            format!("e1/i{k}/evil").as_bytes(),
        );
    }
    // Garbage wire on one instance: ignored uniformly in both worlds.
    dual.adversary(
        instances[1],
        AdvCommand::SendAs {
            party: PartyId(3),
            cmd: Command::new("Broadcast", Value::bytes(b"not a wire")),
        },
    );
    dual.idle_rounds(12);
    for &id in &instances {
        assert_eq!(dual.finish_epoch(id).expect("epoch 1 aligned"), 1);
        assert_eq!(dual.epoch(id), 2, "two epochs per instance");
    }
    dual.finish_epoch(late).expect("late instance aligned");

    // Instance 0's transcript contains its injected message; instance 1's
    // contains its own, not instance 0's — outputs stayed keyed.
    let (t_real, _) = dual.into_transcripts();
    assert_eq!(t_real.len(), 5);
    for (k, &id) in instances.iter().enumerate() {
        let bytes: Vec<u8> = t_real[&id]
            .outputs()
            .iter()
            .flat_map(|(_, _, cmd)| cmd.value.encode())
            .collect();
        let own = format!("e1/i{k}/evil").into_bytes();
        let other = format!("e1/i{}/evil", (k + 1) % 4).into_bytes();
        let contains = |needle: &[u8]| bytes.windows(needle.len()).any(|w| w == needle);
        assert!(contains(&own), "instance {k}: own injection delivered");
        assert!(!contains(&other), "instance {k}: no cross-instance bleed");
    }
}

/// Closing an instance mid-run keeps the rest of the pool aligned, and the
/// closed instance's transcript stays part of the comparison.
#[test]
fn pool_theorem2_close_instance_mid_run() {
    let mut dual = pool_pair(2, b"pool-close");
    let a = dual.open_instance();
    let b = dual.open_instance();
    dual.submit(a, PartyId(0), b"a-only");
    dual.submit(b, PartyId(1), b"b-only");
    dual.idle_rounds(8);
    dual.finish_epoch(a).expect("aligned");
    dual.close_instance(b);
    // A keeps running epochs after B is gone.
    dual.submit(a, PartyId(0), b"a-epoch1");
    dual.idle_rounds(8);
    dual.finish_epoch(a).expect("aligned after close");
    let (t_real, t_ideal) = dual.into_transcripts();
    assert_eq!(t_real.len(), 2, "closed instance's transcript retained");
    assert_eq!(t_real[&b].outputs().len(), t_ideal[&b].outputs().len());
}

// ---------------------------------------------------------------------------
// Session-level pool error paths
// ---------------------------------------------------------------------------

#[test]
fn unknown_instance_is_a_typed_error_everywhere() {
    let mut pool = SbcPool::builder(2).seed(b"unknown").build().unwrap();
    let ghost = InstanceId(7);
    let err = SbcError::UnknownInstance { instance: 7 };
    assert_eq!(pool.submit(ghost, 0, b"x").unwrap_err(), err);
    assert_eq!(pool.check_submittable(ghost, 0).unwrap_err(), err);
    assert_eq!(pool.run_to_completion(ghost).unwrap_err(), err);
    assert_eq!(pool.run_epoch(ghost).unwrap_err(), err);
    assert_eq!(pool.finish(ghost).unwrap_err(), err);
    assert_eq!(pool.epoch(ghost).unwrap_err(), err);
    assert_eq!(pool.send_as(ghost, 0, Value::Unit).unwrap_err(), err);
    assert_eq!(pool.inject_message(ghost, 0, b"m").unwrap_err(), err);
    assert_eq!(
        pool.control(ghost, "F_TLE", Command::new("Leakage", Value::Unit))
            .unwrap_err(),
        err
    );
    assert_eq!(pool.tle_leakage(ghost).unwrap_err(), err);
    assert_eq!(pool.leaks(ghost).unwrap_err(), err);
    assert_eq!(pool.take_leaks(ghost).unwrap_err(), err);
}

#[test]
fn finished_instance_refuses_further_traffic() {
    let mut pool = SbcPool::builder(2).seed(b"finished").build().unwrap();
    let id = pool.open_instance().unwrap();
    pool.submit(id, 0, b"final").unwrap();
    let result = pool.finish(id).unwrap();
    assert_eq!(result.messages, vec![b"final".to_vec()]);
    let err = SbcError::InstanceFinished { instance: id.0 };
    assert_eq!(pool.submit(id, 0, b"late"), Err(err.clone()));
    assert_eq!(pool.run_epoch(id).unwrap_err(), err.clone());
    assert_eq!(pool.finish(id).unwrap_err(), err.clone());
    assert_eq!(pool.epoch(id).unwrap_err(), err.clone());
    assert_eq!(pool.tle_leakage(id).unwrap_err(), err);
    // The pool itself keeps working: new instances get fresh ids.
    let next = pool.open_instance().unwrap();
    assert_ne!(next, id, "ids are never reused");
    pool.submit(next, 1, b"still-open").unwrap();
    assert_eq!(pool.finish(next).unwrap().messages.len(), 1);
}

#[test]
fn cross_instance_corruption_visibility() {
    // Corrupting a party through the pool is visible in every instance —
    // those already open, and those opened afterwards.
    let mut pool = SbcPool::builder(3).seed(b"x-corr").build().unwrap();
    let a = pool.open_instance().unwrap();
    let b = pool.open_instance().unwrap();
    pool.submit(a, 1, b"pending-in-a").unwrap();
    let views = pool.corrupt(1).unwrap();
    assert_eq!(views.len(), 2, "per-instance corruption views");
    assert_eq!(
        views[0],
        (a, vec![Value::bytes(b"pending-in-a")]),
        "instance a reveals the pending message"
    );
    assert_eq!(views[1], (b, vec![]), "instance b had nothing pending");
    assert!(pool.is_corrupted(1));
    for id in [a, b] {
        assert_eq!(
            pool.submit(id, 1, b"no"),
            Err(SbcError::CorruptedParty { party: 1 })
        );
        assert_eq!(
            pool.inject_message(id, 0, b"m"),
            Err(SbcError::HonestParty { party: 0 }),
            "other parties stay honest in every instance"
        );
    }
    let c = pool.open_instance().unwrap();
    assert_eq!(
        pool.submit(c, 1, b"no"),
        Err(SbcError::CorruptedParty { party: 1 }),
        "later instances inherit the corruption"
    );
    // The corrupted party can act adversarially in any instance.
    pool.submit(c, 0, b"honest-c").unwrap();
    pool.step_round().unwrap();
    pool.inject_message(c, 1, b"evil-c").unwrap();
    let rc = pool.finish(c).unwrap();
    assert!(rc.messages.contains(&b"evil-c".to_vec()));
}

#[test]
fn pool_close_semantics_match_session_close_semantics() {
    // After release (without epoch turnover) the period stays closed: a
    // pool instance behaves exactly like a session would.
    let mut pool = SbcPool::builder(2).seed(b"close-sem").build().unwrap();
    let id = pool.open_instance().unwrap();
    pool.submit(id, 0, b"on-time").unwrap();
    pool.run_to_completion(id).unwrap();
    assert!(matches!(
        pool.submit(id, 1, b"too-late"),
        Err(SbcError::SubmitAfterClose { .. })
    ));
    // But the instance is not *finished*: run_epoch turns it over.
    pool.run_epoch(id).unwrap();
    pool.submit(id, 1, b"next-epoch").unwrap();
    assert_eq!(
        pool.run_epoch(id).unwrap().messages,
        vec![b"next-epoch".to_vec()]
    );
}

#[test]
fn empty_pool_and_empty_instances_behave() {
    let mut pool = SbcPool::builder(2).seed(b"empty").build().unwrap();
    // Stepping an empty pool just advances the shared clock.
    assert!(pool.step_round().unwrap().is_empty());
    assert_eq!(pool.round(), 1);
    assert!(pool.live_instances().is_empty());
    let id = pool.open_instance().unwrap();
    assert_eq!(pool.run_epoch(id).unwrap_err(), SbcError::NoInput);
    assert_eq!(pool.finish(id).unwrap_err(), SbcError::NoInput);
    assert_eq!(pool.epoch(id).unwrap(), 0, "failed runs do not turn epochs");
}

// ---------------------------------------------------------------------------
// Parallel stepping: observation-equivalence to the serial reference
// ---------------------------------------------------------------------------

/// Acceptance test for parallel `tick_all`: a 16-instance pool stepped by
/// the forced-parallel scheduler must produce **bit-identical** keyed
/// transcripts — inputs, outputs, and leak order per instance — to the
/// serial reference loop, including across an adaptive mid-period
/// corruption and late drains. `PoolDualRun` at `CompareLevel::Exact` is
/// the strictest comparator in the workspace, so any merge-order slip in
/// the parallel path fails loudly here.
#[test]
fn parallel_tick_all_is_bit_identical_to_serial() {
    fn world(mode: TickMode) -> PooledSbcWorld<RealSbcWorld> {
        let mut w =
            PooledSbcWorld::new(SbcParams::default_for(3), b"par-vs-ser").expect("valid params");
        w.set_tick_mode(mode);
        w
    }
    let mut dual = PoolDualRun::new(
        world(TickMode::Serial),
        world(TickMode::Parallel),
        CompareLevel::Exact,
    );
    let ids: Vec<InstanceId> = (0..16).map(|_| dual.open_instance()).collect();
    for (k, &id) in ids.iter().enumerate() {
        dual.submit(id, PartyId((k % 2) as u32), format!("m{k}").as_bytes());
    }
    dual.step_round();
    // Adaptive corruption mid-period hits every instance in both pools.
    let (cr, ci) = dual.corrupt(PartyId(2));
    assert!(cr && ci);
    dual.submit(ids[5], PartyId(0), b"post-corruption");
    dual.idle_rounds(9); // all release at τ_rel = 5; drain late
    dual.check()
        .unwrap_or_else(|d| panic!("parallel diverged from serial: {d}"));
    assert_eq!(dual.round(), 10);
}

/// Acceptance test for the two-level executor: a 16-instance × 64-party
/// pool stepped by the fully parallel schedule — instances fanned across
/// the persistent executor AND every instance's party loop sharded
/// (`PartyShard::Sharded` forced on) — must produce **bit-identical** keyed
/// transcripts to the all-serial reference schedule, across ≥ 2 epochs per
/// instance, under adaptive mid-period corruption and adversarial wire
/// injection. `CompareLevel::Exact` compares full transcripts (leak order
/// included), so any slip in the plan/merge split, the recipient-sharded
/// delivery, or the drain merge fails loudly here.
#[test]
fn two_level_sharded_schedule_is_bit_identical_to_serial() {
    const N: usize = 64;
    const INSTANCES: usize = 16;
    fn world(mode: TickMode, shard: PartyShard) -> PooledSbcWorld<RealSbcWorld> {
        let mut w =
            PooledSbcWorld::new(SbcParams::default_for(N), b"two-level").expect("valid params");
        w.set_tick_mode(mode);
        w.set_party_shard(shard);
        w
    }
    let mut dual = PoolDualRun::new(
        world(TickMode::Serial, PartyShard::Serial),
        world(TickMode::Parallel, PartyShard::Sharded),
        CompareLevel::Exact,
    );
    let mut adv_rng = Drbg::from_seed(b"two-level/adversary");
    let ids: Vec<InstanceId> = (0..INSTANCES).map(|_| dual.open_instance()).collect();
    for epoch in 0..2u64 {
        for (k, &id) in ids.iter().enumerate() {
            dual.submit(
                id,
                PartyId((k % 7) as u32),
                format!("e{epoch}/i{k}/a").as_bytes(),
            );
            dual.submit(
                id,
                PartyId((k % 7 + 8) as u32),
                format!("e{epoch}/i{k}/b").as_bytes(),
            );
        }
        dual.step_round(); // periods open: τ_rel agreed everywhere
        if epoch == 0 {
            // Adaptive mid-period corruption hits every instance in both
            // pools (and the sharded schedule must keep ignoring the
            // corrupted party identically from here on).
            let (cr, ci) = dual.corrupt(PartyId(63));
            assert!(cr && ci);
        }
        // Adversarial wire injection on behalf of the corrupted party, on a
        // quarter of the instances, plus a garbage wire on one.
        for (_, &id) in ids.iter().enumerate().filter(|(k, _)| k % 4 == 0) {
            let real_inject = sbc_wire(
                &Value::bytes(adv_rng.gen_bytes(64)),
                dual.release_round(id).expect("period open"),
                &adv_rng.gen_bytes(16),
            );
            dual.adversary(
                id,
                AdvCommand::SendAs {
                    party: PartyId(63),
                    cmd: Command::new("Broadcast", real_inject),
                },
            );
        }
        dual.adversary(
            ids[3],
            AdvCommand::SendAs {
                party: PartyId(63),
                cmd: Command::new("Broadcast", Value::bytes(b"not a wire")),
            },
        );
        dual.idle_rounds(8); // release at τ_rel; drain late
        for &id in &ids {
            assert_eq!(
                dual.finish_epoch(id).unwrap_or_else(|d| panic!("{d}")),
                epoch,
                "epoch {epoch} aligned"
            );
        }
    }
    let (t_serial, t_sharded) = dual.into_transcripts();
    assert_eq!(t_serial.len(), INSTANCES);
    for id in ids {
        assert_eq!(t_serial[&id].digest(), t_sharded[&id].digest());
        assert!(!t_serial[&id].outputs().is_empty(), "{id} released");
    }
}

/// Acceptance test for ideal-world sharding at pool scope: a 16-instance ×
/// 64-party pool of **ideal** backends stepped by the fully parallel
/// schedule — instances fanned across the persistent executor AND every
/// instance's delivery round sharded through
/// `IdealSbcWorld::tick_sharded` (`PartyShard::Sharded` forced on) — must
/// produce **bit-identical** keyed transcripts to the all-serial reference
/// schedule, across 2 epochs per instance, under adaptive mid-period
/// corruption and committed adversarial injection (`F_TLE` Insert +
/// `F_RO`-derived mask + `SendAs` wire). `CompareLevel::Exact` compares
/// full transcripts, so any slip in the quiescence gate or the plan/merge
/// split of the simulator's mirror fails loudly here.
#[test]
fn pool_of_ideal_sharded_schedule_is_bit_identical_to_serial() {
    const N: usize = 64;
    const INSTANCES: usize = 16;
    fn world(mode: TickMode, shard: PartyShard) -> PooledSbcWorld<IdealSbcWorld> {
        let mut w =
            PooledSbcWorld::new(SbcParams::default_for(N), b"ideal-pool").expect("valid params");
        w.set_tick_mode(mode);
        w.set_party_shard(shard);
        w
    }
    let mut dual = PoolDualRun::new(
        world(TickMode::Serial, PartyShard::Serial),
        world(TickMode::Parallel, PartyShard::Sharded),
        CompareLevel::Exact,
    );
    let mut adv_rng = Drbg::from_seed(b"ideal-pool/adversary");
    let ids: Vec<InstanceId> = (0..INSTANCES).map(|_| dual.open_instance()).collect();
    for epoch in 0..2u64 {
        for (k, &id) in ids.iter().enumerate() {
            dual.submit(
                id,
                PartyId((k % 7) as u32),
                format!("e{epoch}/i{k}/a").as_bytes(),
            );
            dual.submit(
                id,
                PartyId((k % 7 + 8) as u32),
                format!("e{epoch}/i{k}/b").as_bytes(),
            );
        }
        dual.step_round(); // periods open: τ_rel agreed everywhere
        if epoch == 0 {
            let (cr, ci) = dual.corrupt(PartyId(63));
            assert!(cr && ci);
        }
        // Committed injections on a quarter of the instances, plus a
        // garbage wire on one — the sharded delivery round must carry the
        // injected messages identically.
        for (k, &id) in ids.iter().enumerate().filter(|(k, _)| k % 4 == 0) {
            inject(
                &mut dual,
                &mut adv_rng,
                id,
                PartyId(63),
                format!("e{epoch}/i{k}/evil").as_bytes(),
            );
        }
        dual.adversary(
            ids[3],
            AdvCommand::SendAs {
                party: PartyId(63),
                cmd: Command::new("Broadcast", Value::bytes(b"not a wire")),
            },
        );
        dual.idle_rounds(8); // release at τ_rel; drain late
        for &id in &ids {
            assert_eq!(
                dual.finish_epoch(id).unwrap_or_else(|d| panic!("{d}")),
                epoch,
                "epoch {epoch} aligned"
            );
        }
    }
    let (t_serial, t_sharded) = dual.into_transcripts();
    assert_eq!(t_serial.len(), INSTANCES);
    for id in ids {
        assert_eq!(t_serial[&id].digest(), t_sharded[&id].digest());
        assert!(!t_serial[&id].outputs().is_empty(), "{id} released");
    }
}

/// Theorem 2 with *both* pools on the fully sharded schedule: the real
/// pool and the ideal pool each run `tick_sharded` on the persistent
/// executor, and the real/ideal comparison still holds at the usual
/// pool level (transcript shape + exact outputs, keyed by instance) under
/// corruption and injection.
#[test]
fn pool_theorem2_holds_with_both_pools_sharded() {
    fn world<W: SbcBackend>() -> PooledSbcWorld<W> {
        let mut w = PooledSbcWorld::new(SbcParams::default_for(64), b"both-sharded-pools")
            .expect("valid params");
        w.set_tick_mode(TickMode::Parallel);
        w.set_party_shard(PartyShard::Sharded);
        w
    }
    let mut dual: PoolDualRun<PooledSbcWorld<RealSbcWorld>, PooledSbcWorld<IdealSbcWorld>> =
        PoolDualRun::new(world(), world(), CompareLevel::ShapeAndOutputs);
    let mut adv_rng = Drbg::from_seed(b"both-sharded-pools/adversary");
    let ids: Vec<InstanceId> = (0..4).map(|_| dual.open_instance()).collect();
    for (k, &id) in ids.iter().enumerate() {
        dual.submit(id, PartyId((k % 5) as u32), format!("i{k}").as_bytes());
    }
    dual.step_round();
    let (cr, ci) = dual.corrupt(PartyId(63));
    assert!(cr && ci);
    inject(&mut dual, &mut adv_rng, ids[0], PartyId(63), b"i0/evil");
    dual.idle_rounds(9);
    for &id in &ids {
        assert_eq!(dual.finish_epoch(id).unwrap_or_else(|d| panic!("{d}")), 0);
    }
}

/// The same invariant one layer up: the session-level release stream
/// (`step_round`'s return values, in order) is tick-mode invariant.
#[test]
fn pool_release_stream_is_tick_mode_invariant() {
    fn run(mode: TickMode) -> Vec<(InstanceId, SbcResult)> {
        let mut pool = SbcPool::builder(3)
            .seed(b"mode-invariant")
            .tick_mode(mode)
            .build()
            .expect("valid params");
        let ids: Vec<InstanceId> = (0..12).map(|_| pool.open_instance().unwrap()).collect();
        for (k, &id) in ids.iter().enumerate() {
            pool.submit(id, (k % 3) as u32, format!("lot-{k}").as_bytes())
                .unwrap();
        }
        let mut releases = Vec::new();
        for _ in 0..8 {
            releases.extend(pool.step_round().unwrap());
        }
        assert_eq!(releases.len(), ids.len(), "all released");
        releases
    }
    assert_eq!(run(TickMode::Serial), run(TickMode::Parallel));
    assert_eq!(run(TickMode::Serial), run(TickMode::Auto));
}

// ---------------------------------------------------------------------------
// O(1) offset join: observation-equivalence to the idle-round replay
// ---------------------------------------------------------------------------

/// A backend wrapper that pins `join_at` to the trait's default idle-round
/// replay — the reference the O(1) offset join must match bit for bit.
#[derive(Debug)]
struct ReplayJoin<W: SbcWorld>(W);

impl<W: SbcWorld> World for ReplayJoin<W> {
    fn n(&self) -> usize {
        self.0.n()
    }
    fn time(&self) -> u64 {
        self.0.time()
    }
    fn input(&mut self, party: PartyId, cmd: Command) {
        self.0.input(party, cmd);
    }
    fn advance(&mut self, party: PartyId) {
        self.0.advance(party);
    }
    fn adversary(&mut self, cmd: AdvCommand) -> Value {
        self.0.adversary(cmd)
    }
    fn drain_outputs(&mut self) -> Vec<(PartyId, Command)> {
        self.0.drain_outputs()
    }
    fn drain_leaks(&mut self) -> Vec<Leak> {
        self.0.drain_leaks()
    }
    fn is_corrupted(&self, party: PartyId) -> bool {
        self.0.is_corrupted(party)
    }
}

impl<W: SbcWorld> SbcWorld for ReplayJoin<W> {
    fn begin_new_period(&mut self) {
        self.0.begin_new_period();
    }
    fn release_round(&self) -> Option<u64> {
        self.0.release_round()
    }
    fn period_end(&self) -> Option<u64> {
        self.0.period_end()
    }
    fn would_abort(&self) -> bool {
        self.0.would_abort()
    }
    // `join_at` deliberately NOT forwarded: the default replay runs.
}

impl<W: SbcBackend> SbcBackend for ReplayJoin<W> {
    fn from_params(params: SbcParams, seed: &[u8]) -> Result<Self, SbcError> {
        Ok(ReplayJoin(W::from_params(params, seed)?))
    }
}

/// Acceptance test for the clock-offset join: an instance opened at pool
/// round `T = 32` through the O(1) `join_at` fast path is bit-identical —
/// same transcripts, same `τ_rel`, same outputs — to one opened through
/// the literal `O(T·n)` idle-round replay, for the real and the ideal
/// backend, including a pre-join global corruption.
#[test]
fn offset_join_is_bit_identical_to_idle_replay() {
    fn drive<W: SbcBackend>(seed: &[u8]) {
        let mut dual: PoolDualRun<PooledSbcWorld<ReplayJoin<W>>, PooledSbcWorld<W>> =
            PoolDualRun::new(
                PooledSbcWorld::new(SbcParams::default_for(3), seed).expect("valid params"),
                PooledSbcWorld::new(SbcParams::default_for(3), seed).expect("valid params"),
                CompareLevel::Exact,
            );
        let early = dual.open_instance();
        dual.submit(early, PartyId(0), b"early-traffic");
        dual.idle_rounds(32); // long-lived pool: the clock is at T = 32
        let (cr, ci) = dual.corrupt(PartyId(2)); // replayed into late joiners
        assert!(cr && ci);
        let late = dual.open_instance(); // replay join vs O(1) clock jump
        assert_eq!(dual.round(), 32);
        dual.submit(late, PartyId(1), b"late-joiner");
        dual.idle_rounds(9);
        dual.check()
            .unwrap_or_else(|d| panic!("offset join diverged from replay: {d}"));
        // Woken at T = 32: τ_rel = T + Φ + ∆ in both pools.
        assert_eq!(dual.release_round(late), Some(32 + 3 + 2));
    }
    drive::<RealSbcWorld>(b"join-real");
    drive::<IdealSbcWorld>(b"join-ideal");
}

// ---------------------------------------------------------------------------
// Lifecycle bugfix regressions
// ---------------------------------------------------------------------------

/// A minimal backend whose period turnover buffers an audit leak (as a
/// networked backend logging dropped wires would) — the kind of
/// late-buffered drain `retire` must surface rather than drop.
#[derive(Debug)]
struct AuditWorld {
    n: usize,
    time: u64,
    advanced: usize,
    corrupted: Vec<bool>,
    leaks: Vec<Leak>,
}

impl World for AuditWorld {
    fn n(&self) -> usize {
        self.n
    }
    fn time(&self) -> u64 {
        self.time
    }
    fn input(&mut self, _party: PartyId, _cmd: Command) {}
    fn advance(&mut self, _party: PartyId) {
        self.advanced += 1;
        if self.advanced >= self.n {
            self.advanced = 0;
            self.time += 1;
        }
    }
    fn adversary(&mut self, cmd: AdvCommand) -> Value {
        if let AdvCommand::Corrupt(p) = cmd {
            self.corrupted[p.index()] = true;
            return Value::List(Vec::new());
        }
        Value::Unit
    }
    fn drain_outputs(&mut self) -> Vec<(PartyId, Command)> {
        Vec::new()
    }
    fn drain_leaks(&mut self) -> Vec<Leak> {
        std::mem::take(&mut self.leaks)
    }
    fn is_corrupted(&self, party: PartyId) -> bool {
        self.corrupted[party.index()]
    }
}

impl SbcWorld for AuditWorld {
    fn begin_new_period(&mut self) {
        self.leaks.push(Leak {
            source: "audit".into(),
            cmd: Command::new("PeriodClosed", Value::U64(self.time)),
        });
    }
    fn release_round(&self) -> Option<u64> {
        None
    }
    fn period_end(&self) -> Option<u64> {
        None
    }
}

impl SbcBackend for AuditWorld {
    fn from_params(params: SbcParams, _seed: &[u8]) -> Result<Self, SbcError> {
        Ok(AuditWorld {
            n: params.n,
            time: 0,
            advanced: 0,
            corrupted: vec![false; params.n],
            leaks: Vec::new(),
        })
    }
}

/// Regression for the retire-drops-drains bug: `retire` removed the
/// instance world without a final drain, silently discarding leaks (and
/// outputs) still buffered inside it. Retirement must be a final drain.
#[test]
fn retire_surfaces_late_buffered_drains() {
    let mut w =
        PooledSbcWorld::<AuditWorld>::new(SbcParams::default_for(2), b"audit").expect("valid");
    let id = w.open_instance().unwrap();
    assert!(w.take_leaks().is_empty());
    // The backend buffers an audit leak at period turnover; nothing has
    // pulled it into the pool buffers yet.
    w.begin_new_period_of(id);
    w.retire(id);
    let leaks = w.take_leaks();
    assert_eq!(leaks.len(), 1, "late-buffered leak surfaced by retire");
    assert_eq!(leaks[0].0, id);
    assert_eq!(leaks[0].1.source, "audit");
    assert!(w.is_retired(id));
}

/// The session-level face of the same guarantee: leaks captured for an
/// instance stay readable after `finish` retires it (they used to be
/// dropped with the per-instance state, breaking the PR 2 late-drain
/// contract at the pool layer).
#[test]
fn finished_instance_keeps_captured_leaks_readable() {
    let mut pool = SbcPool::builder(3)
        .seed(b"late-leaks")
        .capture_leaks()
        .build()
        .unwrap();
    let id = pool.open_instance().unwrap();
    pool.submit(id, 0, b"watched").unwrap();
    pool.finish(id).unwrap();
    // Traffic still refuses with the typed error...
    assert!(matches!(
        pool.submit(id, 0, b"late"),
        Err(SbcError::InstanceFinished { .. })
    ));
    // ...but the captured leaks survive retirement and drain exactly once.
    let leaks = pool.take_leaks(id).unwrap();
    assert!(!leaks.is_empty(), "captured leaks readable after finish");
    assert!(pool.take_leaks(id).unwrap().is_empty());
    assert_eq!(
        pool.leaks(InstanceId(99)).unwrap_err(),
        SbcError::UnknownInstance { instance: 99 }
    );
}

static FLAKY_FAIL_NEXT_OPEN: AtomicBool = AtomicBool::new(false);

/// A backend whose construction fails on demand — exercises the
/// `open_instance` error path that used to be a
/// `.expect("params validated at pool construction")` panic.
#[derive(Debug)]
struct FlakyBackend(RealSbcWorld);

impl World for FlakyBackend {
    fn n(&self) -> usize {
        self.0.n()
    }
    fn time(&self) -> u64 {
        self.0.time()
    }
    fn input(&mut self, party: PartyId, cmd: Command) {
        self.0.input(party, cmd);
    }
    fn advance(&mut self, party: PartyId) {
        self.0.advance(party);
    }
    fn adversary(&mut self, cmd: AdvCommand) -> Value {
        self.0.adversary(cmd)
    }
    fn drain_outputs(&mut self) -> Vec<(PartyId, Command)> {
        self.0.drain_outputs()
    }
    fn drain_leaks(&mut self) -> Vec<Leak> {
        self.0.drain_leaks()
    }
    fn is_corrupted(&self, party: PartyId) -> bool {
        self.0.is_corrupted(party)
    }
}

impl SbcWorld for FlakyBackend {
    fn begin_new_period(&mut self) {
        self.0.begin_new_period();
    }
    fn release_round(&self) -> Option<u64> {
        self.0.release_round()
    }
    fn period_end(&self) -> Option<u64> {
        self.0.period_end()
    }
    fn join_at(&mut self, round: u64) {
        self.0.join_at(round);
    }
}

impl SbcBackend for FlakyBackend {
    fn from_params(params: SbcParams, seed: &[u8]) -> Result<Self, SbcError> {
        if FLAKY_FAIL_NEXT_OPEN.swap(false, Ordering::SeqCst) {
            return Err(SbcError::Internal {
                detail: "transient backend failure".into(),
            });
        }
        Ok(FlakyBackend(RealSbcWorld::from_params(params, seed)?))
    }
}

/// Regression for the panicking `open_instance`: a backend construction
/// failure surfaces as a typed `SbcError`, consumes no instance id, and
/// leaves the pool fully usable.
#[test]
fn open_instance_failure_is_a_typed_error_not_a_panic() {
    let mut pool = SbcPool::builder(2)
        .seed(b"flaky")
        .build_backend::<FlakyBackend>()
        .unwrap();
    let first = pool.open_instance().unwrap();
    FLAKY_FAIL_NEXT_OPEN.store(true, Ordering::SeqCst);
    let err = pool.open_instance().unwrap_err();
    assert!(matches!(err, SbcError::Internal { .. }), "typed: {err}");
    assert_eq!(pool.live_instances(), vec![first], "pool unchanged");
    // The failed open burned no id: the next open gets the successor id.
    let second = pool.open_instance().unwrap();
    assert_eq!(second.0, first.0 + 1, "no id gap after a failed open");
    pool.submit(second, 0, b"still-works").unwrap();
    assert_eq!(pool.finish(second).unwrap().messages.len(), 1);
}

/// Churn-under-prune regression: a pool cycling instances for many epochs
/// — several opening, finishing, and being pruned while others run —
/// must return its retired-instance bookkeeping (state-map sizes,
/// buffered drains, captured leaks) to the steady-state baseline after
/// every reclamation sweep. This is the memory-flatness contract the
/// long-lived service layer builds on.
#[test]
fn churn_under_prune_returns_to_steady_state_baseline() {
    use sbc_core::pool::PoolFootprint;

    let mut pool = SbcPool::builder(3)
        .seed(b"churn")
        .capture_leaks()
        .build()
        .unwrap();
    let baseline = pool.footprint();
    assert_eq!(baseline, PoolFootprint::default());

    let mut staggered: Option<InstanceId> = None;
    for epoch in 0..10u64 {
        // Two short-lived instances per epoch, plus a staggered one that
        // overlaps epoch boundaries — churn, not lockstep.
        let a = pool.open_instance().unwrap();
        let b = pool.open_instance().unwrap();
        pool.submit(a, 0, format!("a{epoch}").as_bytes()).unwrap();
        pool.submit(b, 1, format!("b{epoch}").as_bytes()).unwrap();
        if epoch % 2 == 0 {
            let s = pool.open_instance().unwrap();
            pool.submit(s, 2, format!("s{epoch}").as_bytes()).unwrap();
            staggered = Some(s);
        }
        pool.finish(a).unwrap();
        pool.finish(b).unwrap();
        let closed_stagger = if epoch % 2 == 1 {
            let s = staggered.take().unwrap();
            pool.finish(s).unwrap();
            Some(s)
        } else {
            None
        };
        // Drain what the epoch produced, then reclaim.
        for id in [Some(a), Some(b), closed_stagger].into_iter().flatten() {
            let _ = pool.take_leaks(id);
        }
        let swept = pool.prune_finished();
        assert!(swept >= 2, "epoch {epoch}: sweep reclaims the finished");

        let fp = pool.footprint();
        let live_now = usize::from(staggered.is_some());
        assert_eq!(fp.retired, 0, "epoch {epoch}: no retired residue");
        assert_eq!(fp.buffered_outputs, 0, "epoch {epoch}: outputs drained");
        assert_eq!(fp.buffered_leaks, 0, "epoch {epoch}: leaks routed");
        assert_eq!(fp.live, live_now, "epoch {epoch}: only the stagger");
        assert_eq!(fp.tracked, live_now, "epoch {epoch}: state map flat");
    }

    // Wind down the last stagger: the pool lands exactly on baseline.
    if let Some(s) = staggered {
        pool.finish(s).unwrap();
        let _ = pool.take_leaks(s);
        pool.prune_finished();
    }
    assert_eq!(pool.footprint(), baseline, "back to the empty baseline");
}
