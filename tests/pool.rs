//! Pool-level Theorem 2 coverage and pool error paths.
//!
//! The headline test drives a real/ideal **pool** pair — 4+ concurrent SBC
//! instances over one shared clock and one global corruption state —
//! through the extended dual-world harness (`PoolDualRun`), asserting
//! transcript equality *keyed by instance* across 2+ epochs per instance
//! with adaptive corruption, adversarial injection, leakage probes, and a
//! staggered late-opened instance. The error-path tests pin down the typed
//! `SbcError` surface of the session-level `SbcPool`.

use sbc_core::api::SbcError;
use sbc_core::pool::{InstanceId, PooledSbcWorld, SbcPool};
use sbc_core::protocol::sbc_wire;
use sbc_core::worlds::{IdealSbcWorld, RealSbcWorld, SbcBackend, SbcParams};
use sbc_primitives::drbg::Drbg;
use sbc_uc::exec::{CompareLevel, PoolDualRun};
use sbc_uc::ids::PartyId;
use sbc_uc::value::{Command, Value};
use sbc_uc::world::AdvCommand;

type Pair = PoolDualRun<PooledSbcWorld<RealSbcWorld>, PooledSbcWorld<IdealSbcWorld>>;

/// Builds a real/ideal pool pair through the backend trait.
fn pool_pair(n: usize, seed: &[u8]) -> Pair {
    fn backend<W: SbcBackend>(n: usize, seed: &[u8]) -> PooledSbcWorld<W> {
        PooledSbcWorld::new(SbcParams::default_for(n), seed).expect("valid default params")
    }
    PoolDualRun::new(
        backend(n, seed),
        backend(n, seed),
        CompareLevel::ShapeAndOutputs,
    )
}

/// The adversarial-broadcast recipe of `SbcSession::inject_message`,
/// expressed in instance-scoped dual-pool driver actions.
fn inject(dual: &mut Pair, rng: &mut Drbg, instance: InstanceId, party: PartyId, message: &[u8]) {
    let tau_rel = dual.release_round(instance).expect("period open");
    let ct = Value::bytes(rng.gen_bytes(64));
    let rho = rng.gen_bytes(32);
    dual.adversary(
        instance,
        AdvCommand::Control {
            target: "F_TLE".into(),
            cmd: Command::new(
                "Insert",
                Value::list([ct.clone(), Value::bytes(&rho), Value::U64(tau_rel)]),
            ),
        },
    );
    let m_bytes = Value::bytes(message).encode();
    let (eta_real, eta_ideal) = dual.adversary(
        instance,
        AdvCommand::Control {
            target: "F_RO".into(),
            cmd: Command::new(
                "QueryBytes",
                Value::list([Value::bytes(&rho), Value::U64(m_bytes.len() as u64)]),
            ),
        },
    );
    assert_eq!(eta_real, eta_ideal, "same instance seed, same oracle point");
    let eta = eta_real.as_bytes().expect("mask is bytes").to_vec();
    let y: Vec<u8> = m_bytes.iter().zip(eta.iter()).map(|(a, b)| a ^ b).collect();
    dual.adversary(
        instance,
        AdvCommand::SendAs {
            party,
            cmd: Command::new("Broadcast", sbc_wire(&ct, tau_rel, &y)),
        },
    );
}

/// Acceptance scenario: a pool of 4 concurrent instances (plus a fifth
/// opened mid-run on the shared clock) running 2 epochs each, with an
/// adaptive global corruption in epoch 0, per-instance adversarial
/// injections and leakage probes in epoch 1, and late drains. Real and
/// ideal pools must produce instance-for-instance identical transcripts at
/// every epoch boundary.
#[test]
fn pool_theorem2_multi_instance_multi_epoch_active_adversary() {
    let n = 4;
    let mut dual = pool_pair(n, b"pool-t2");
    let mut adv_rng = Drbg::from_seed(b"pool-t2/adversary");
    let instances: Vec<InstanceId> = (0..4).map(|_| dual.open_instance()).collect();

    // ---- epoch 0: honest traffic on all four instances, staggered ----
    for (k, &id) in instances.iter().enumerate() {
        dual.submit(id, PartyId((k % 2) as u32), format!("e0/i{k}/a").as_bytes());
    }
    dual.step_round();
    // Adaptive corruption mid-period: P3 falls in *every* instance at once.
    let (cr, ci) = dual.corrupt(PartyId(3));
    assert!(cr && ci, "corruption accepted in both worlds");
    // A second submission on two of the instances.
    dual.submit(instances[0], PartyId(1), b"e0/i0/b");
    dual.submit(instances[2], PartyId(2), b"e0/i2/b");
    dual.idle_rounds(9); // all release at τ_rel = 5; drain late
    for &id in &instances {
        assert_eq!(dual.finish_epoch(id).expect("epoch 0 aligned"), 0);
    }

    // ---- a fifth instance opens mid-run, joining the shared clock ----
    let late = dual.open_instance();
    assert_eq!(dual.epoch(late), 0);

    // ---- epoch 1: injections + leakage probes per instance ----
    for (k, &id) in instances.iter().enumerate() {
        dual.submit(id, PartyId((k % 2) as u32), format!("e1/i{k}").as_bytes());
    }
    dual.submit(late, PartyId(0), b"e1/late");
    dual.step_round();
    for (k, &id) in instances.iter().enumerate() {
        // The adversary probes its F_TLE leakage view of this instance...
        dual.adversary(
            id,
            AdvCommand::Control {
                target: "F_TLE".into(),
                cmd: Command::new("Leakage", Value::Unit),
            },
        );
        // ...and commits an injected message on behalf of corrupted P3.
        inject(
            &mut dual,
            &mut adv_rng,
            id,
            PartyId(3),
            format!("e1/i{k}/evil").as_bytes(),
        );
    }
    // Garbage wire on one instance: ignored uniformly in both worlds.
    dual.adversary(
        instances[1],
        AdvCommand::SendAs {
            party: PartyId(3),
            cmd: Command::new("Broadcast", Value::bytes(b"not a wire")),
        },
    );
    dual.idle_rounds(12);
    for &id in &instances {
        assert_eq!(dual.finish_epoch(id).expect("epoch 1 aligned"), 1);
        assert_eq!(dual.epoch(id), 2, "two epochs per instance");
    }
    dual.finish_epoch(late).expect("late instance aligned");

    // Instance 0's transcript contains its injected message; instance 1's
    // contains its own, not instance 0's — outputs stayed keyed.
    let (t_real, _) = dual.into_transcripts();
    assert_eq!(t_real.len(), 5);
    for (k, &id) in instances.iter().enumerate() {
        let bytes: Vec<u8> = t_real[&id]
            .outputs()
            .iter()
            .flat_map(|(_, _, cmd)| cmd.value.encode())
            .collect();
        let own = format!("e1/i{k}/evil").into_bytes();
        let other = format!("e1/i{}/evil", (k + 1) % 4).into_bytes();
        let contains = |needle: &[u8]| bytes.windows(needle.len()).any(|w| w == needle);
        assert!(contains(&own), "instance {k}: own injection delivered");
        assert!(!contains(&other), "instance {k}: no cross-instance bleed");
    }
}

/// Closing an instance mid-run keeps the rest of the pool aligned, and the
/// closed instance's transcript stays part of the comparison.
#[test]
fn pool_theorem2_close_instance_mid_run() {
    let mut dual = pool_pair(2, b"pool-close");
    let a = dual.open_instance();
    let b = dual.open_instance();
    dual.submit(a, PartyId(0), b"a-only");
    dual.submit(b, PartyId(1), b"b-only");
    dual.idle_rounds(8);
    dual.finish_epoch(a).expect("aligned");
    dual.close_instance(b);
    // A keeps running epochs after B is gone.
    dual.submit(a, PartyId(0), b"a-epoch1");
    dual.idle_rounds(8);
    dual.finish_epoch(a).expect("aligned after close");
    let (t_real, t_ideal) = dual.into_transcripts();
    assert_eq!(t_real.len(), 2, "closed instance's transcript retained");
    assert_eq!(t_real[&b].outputs().len(), t_ideal[&b].outputs().len());
}

// ---------------------------------------------------------------------------
// Session-level pool error paths
// ---------------------------------------------------------------------------

#[test]
fn unknown_instance_is_a_typed_error_everywhere() {
    let mut pool = SbcPool::builder(2).seed(b"unknown").build().unwrap();
    let ghost = InstanceId(7);
    let err = SbcError::UnknownInstance { instance: 7 };
    assert_eq!(pool.submit(ghost, 0, b"x").unwrap_err(), err);
    assert_eq!(pool.check_submittable(ghost, 0).unwrap_err(), err);
    assert_eq!(pool.run_to_completion(ghost).unwrap_err(), err);
    assert_eq!(pool.run_epoch(ghost).unwrap_err(), err);
    assert_eq!(pool.finish(ghost).unwrap_err(), err);
    assert_eq!(pool.epoch(ghost).unwrap_err(), err);
    assert_eq!(pool.send_as(ghost, 0, Value::Unit).unwrap_err(), err);
    assert_eq!(pool.inject_message(ghost, 0, b"m").unwrap_err(), err);
    assert_eq!(
        pool.control(ghost, "F_TLE", Command::new("Leakage", Value::Unit))
            .unwrap_err(),
        err
    );
    assert_eq!(pool.tle_leakage(ghost).unwrap_err(), err);
    assert_eq!(pool.leaks(ghost).unwrap_err(), err);
    assert_eq!(pool.take_leaks(ghost).unwrap_err(), err);
}

#[test]
fn finished_instance_refuses_further_traffic() {
    let mut pool = SbcPool::builder(2).seed(b"finished").build().unwrap();
    let id = pool.open_instance();
    pool.submit(id, 0, b"final").unwrap();
    let result = pool.finish(id).unwrap();
    assert_eq!(result.messages, vec![b"final".to_vec()]);
    let err = SbcError::InstanceFinished { instance: id.0 };
    assert_eq!(pool.submit(id, 0, b"late"), Err(err.clone()));
    assert_eq!(pool.run_epoch(id).unwrap_err(), err.clone());
    assert_eq!(pool.finish(id).unwrap_err(), err.clone());
    assert_eq!(pool.epoch(id).unwrap_err(), err.clone());
    assert_eq!(pool.tle_leakage(id).unwrap_err(), err);
    // The pool itself keeps working: new instances get fresh ids.
    let next = pool.open_instance();
    assert_ne!(next, id, "ids are never reused");
    pool.submit(next, 1, b"still-open").unwrap();
    assert_eq!(pool.finish(next).unwrap().messages.len(), 1);
}

#[test]
fn cross_instance_corruption_visibility() {
    // Corrupting a party through the pool is visible in every instance —
    // those already open, and those opened afterwards.
    let mut pool = SbcPool::builder(3).seed(b"x-corr").build().unwrap();
    let a = pool.open_instance();
    let b = pool.open_instance();
    pool.submit(a, 1, b"pending-in-a").unwrap();
    let views = pool.corrupt(1).unwrap();
    assert_eq!(views.len(), 2, "per-instance corruption views");
    assert_eq!(
        views[0],
        (a, vec![Value::bytes(b"pending-in-a")]),
        "instance a reveals the pending message"
    );
    assert_eq!(views[1], (b, vec![]), "instance b had nothing pending");
    assert!(pool.is_corrupted(1));
    for id in [a, b] {
        assert_eq!(
            pool.submit(id, 1, b"no"),
            Err(SbcError::CorruptedParty { party: 1 })
        );
        assert_eq!(
            pool.inject_message(id, 0, b"m"),
            Err(SbcError::HonestParty { party: 0 }),
            "other parties stay honest in every instance"
        );
    }
    let c = pool.open_instance();
    assert_eq!(
        pool.submit(c, 1, b"no"),
        Err(SbcError::CorruptedParty { party: 1 }),
        "later instances inherit the corruption"
    );
    // The corrupted party can act adversarially in any instance.
    pool.submit(c, 0, b"honest-c").unwrap();
    pool.step_round().unwrap();
    pool.inject_message(c, 1, b"evil-c").unwrap();
    let rc = pool.finish(c).unwrap();
    assert!(rc.messages.contains(&b"evil-c".to_vec()));
}

#[test]
fn pool_close_semantics_match_session_close_semantics() {
    // After release (without epoch turnover) the period stays closed: a
    // pool instance behaves exactly like a session would.
    let mut pool = SbcPool::builder(2).seed(b"close-sem").build().unwrap();
    let id = pool.open_instance();
    pool.submit(id, 0, b"on-time").unwrap();
    pool.run_to_completion(id).unwrap();
    assert!(matches!(
        pool.submit(id, 1, b"too-late"),
        Err(SbcError::SubmitAfterClose { .. })
    ));
    // But the instance is not *finished*: run_epoch turns it over.
    pool.run_epoch(id).unwrap();
    pool.submit(id, 1, b"next-epoch").unwrap();
    assert_eq!(
        pool.run_epoch(id).unwrap().messages,
        vec![b"next-epoch".to_vec()]
    );
}

#[test]
fn empty_pool_and_empty_instances_behave() {
    let mut pool = SbcPool::builder(2).seed(b"empty").build().unwrap();
    // Stepping an empty pool just advances the shared clock.
    assert!(pool.step_round().unwrap().is_empty());
    assert_eq!(pool.round(), 1);
    assert!(pool.live_instances().is_empty());
    let id = pool.open_instance();
    assert_eq!(pool.run_epoch(id).unwrap_err(), SbcError::NoInput);
    assert_eq!(pool.finish(id).unwrap_err(), SbcError::NoInput);
    assert_eq!(pool.epoch(id).unwrap(), 0, "failed runs do not turn epochs");
}
