//! Conformance gate for the networked backend (`sbc-net`).
//!
//! The headline claim of the `NetSbcWorld` design is **transcript
//! equality at `CompareLevel::Exact`** against the in-process
//! `RealSbcWorld` — same seed, same driver schedule, byte-identical
//! leaks and outputs — even when every party-to-party wire crosses a
//! deterministic adversarial network ([`SimNet`]) injecting per-link
//! latency, reorder, duplication, and transient partitions. The tests
//! here are that gate, at three scopes:
//!
//! * single world pair, multi-epoch, adaptive corruption + injection
//!   (loopback and adversarial `SimNet`);
//! * pool pair (`PooledSbcWorld<RealSbcWorld>` vs
//!   `PooledSbcWorld<SimNetSbcWorld>`) with concurrent instances, a
//!   staggered late open, and two epochs per instance;
//! * the out-of-envelope knob — dropping a corrupted sender's wires —
//!   which deliberately *changes* received sets and therefore gets a
//!   liveness/suppression test instead of an `Exact` comparison;
//! * **real sockets** ([`TcpSbcWorld`]): the same `Exact` gate at world
//!   and pool scope with every frame crossing the OS loopback stack —
//!   including a run where every link is killed mid-epoch and the
//!   transport reconnects, still byte-identical.
//!
//! Every chaos test also asserts **non-vacuity** through
//! [`TransportStats`]: a conformance pass on a network that never
//! delayed anything would prove nothing.

use sbc_core::pool::PooledSbcWorld;
use sbc_core::protocol::sbc_wire;
use sbc_core::worlds::{RealSbcWorld, SbcBackend, SbcParams};
use sbc_net::world::{LoopbackSbcWorld, NetSbcWorld, SimNetSbcWorld};
use sbc_net::{SimConfig, SimNet, TcpConfig, TcpSbcWorld, TcpTransport, TransportStats};
use sbc_primitives::drbg::Drbg;
use sbc_uc::exec::{CompareLevel, DualRun, PoolDualRun, SbcWorld};
use sbc_uc::ids::PartyId;
use sbc_uc::value::{Command, Value};
use sbc_uc::world::{AdvCommand, World};

/// Builds a real/networked pair through the backend trait at `Exact`.
fn net_pair<W: SbcBackend + SbcWorld>(n: usize, seed: &[u8]) -> DualRun<RealSbcWorld, W> {
    fn backend<W: SbcBackend>(n: usize, seed: &[u8]) -> W {
        W::from_params(SbcParams::default_for(n), seed).expect("valid default params")
    }
    DualRun::new(backend(n, seed), backend(n, seed), CompareLevel::Exact)
}

/// The adversarial-broadcast recipe (`F_TLE` Insert + `F_RO` mask +
/// `SendAs` wire), expressed in dual-world driver actions.
fn inject<W: SbcWorld>(
    dual: &mut DualRun<RealSbcWorld, W>,
    rng: &mut Drbg,
    party: PartyId,
    message: &[u8],
) {
    let tau_rel = dual.release_round().expect("period open");
    let ct = Value::bytes(rng.gen_bytes(64));
    let rho = rng.gen_bytes(32);
    dual.adversary(AdvCommand::Control {
        target: "F_TLE".into(),
        cmd: Command::new(
            "Insert",
            Value::list([ct.clone(), Value::bytes(&rho), Value::U64(tau_rel)]),
        ),
    });
    let m_bytes = Value::bytes(message).encode();
    let (eta_real, eta_net) = dual.adversary(AdvCommand::Control {
        target: "F_RO".into(),
        cmd: Command::new(
            "QueryBytes",
            Value::list([Value::bytes(&rho), Value::U64(m_bytes.len() as u64)]),
        ),
    });
    assert_eq!(eta_real, eta_net, "same seed, same oracle point");
    let eta = eta_real.as_bytes().expect("mask is bytes").to_vec();
    let y: Vec<u8> = m_bytes.iter().zip(eta.iter()).map(|(a, b)| a ^ b).collect();
    dual.adversary(AdvCommand::SendAs {
        party,
        cmd: Command::new("Broadcast", sbc_wire(&ct, tau_rel, &y)),
    });
}

/// The shared multi-epoch adversarial scenario: honest traffic, an
/// adaptive mid-period corruption in epoch 0, then per-epoch injections,
/// leakage probes, garbage wires, and late drains.
fn drive_multi_epoch<W: SbcWorld>(dual: &mut DualRun<RealSbcWorld, W>, tag: &str) {
    let mut adv_rng = Drbg::from_seed(format!("{tag}/adversary").as_bytes());
    dual.submit(PartyId(0), b"epoch0/a");
    dual.advance_all();
    dual.submit(PartyId(1), b"epoch0/b");
    dual.corrupt(PartyId(3));
    dual.idle_rounds(9);
    assert_eq!(dual.finish_epoch().expect("epoch 0 exact"), 0);

    for epoch in 1u64..3 {
        dual.submit(PartyId(0), format!("{tag}/e{epoch}/a").as_bytes());
        dual.submit(PartyId(2), format!("{tag}/e{epoch}/c").as_bytes());
        dual.advance_all();
        dual.adversary(AdvCommand::Control {
            target: "F_TLE".into(),
            cmd: Command::new("Leakage", Value::Unit),
        });
        inject(
            dual,
            &mut adv_rng,
            PartyId(3),
            format!("{tag}/e{epoch}/evil").as_bytes(),
        );
        dual.adversary(AdvCommand::SendAs {
            party: PartyId(3),
            cmd: Command::new("Broadcast", Value::bytes(b"not a wire")),
        });
        dual.idle_rounds(10 + epoch);
        assert_eq!(dual.finish_epoch().expect("epoch exact"), epoch);
    }
}

/// `RealSbcWorld` vs the loopback networked world: the wire codec and the
/// frame-driven party machines are bit-compatible with the in-process
/// path — byte-identical transcripts across three adversarial epochs.
#[test]
fn exact_real_vs_loopback_multi_epoch() {
    let mut dual = net_pair::<LoopbackSbcWorld>(4, b"net-exact-loopback");
    drive_multi_epoch(&mut dual, "lo");
    let stats = dual.worlds().1.transport_stats();
    assert!(
        stats.sent > 0 && stats.delivered > 0,
        "frames moved: {stats:?}"
    );
    assert_eq!(stats.decode_errors, 0, "no malformed frames on this path");
}

/// The headline gate: `RealSbcWorld` vs the networked world over the
/// seeded adversarial `SimNet` schedule — latency, reorder, duplication
/// and transient partitions — still **`Exact`** across three epochs with
/// adaptive corruption and adversarial injection. The stats assertions
/// prove the schedule actually fired.
#[test]
fn exact_real_vs_simnet_adversarial_schedule() {
    let mut dual = net_pair::<SimNetSbcWorld>(4, b"net-exact-simnet");
    drive_multi_epoch(&mut dual, "sim");
    let stats = dual.worlds().1.transport_stats();
    assert!(stats.delayed > 0, "latency injected: {stats:?}");
    assert!(stats.duplicated > 0, "duplication injected: {stats:?}");
    assert!(
        stats.partition_deferrals > 0,
        "partitions exercised: {stats:?}"
    );
    assert_eq!(stats.dropped, 0, "drops stay outside the Exact envelope");
}

/// Exact conformance under a *harsher* hand-built schedule than the
/// default adversarial profile: maximum latency at the ∆ bound and
/// near-permanent partitions that only heal at the delivery deadline.
#[test]
fn exact_under_harsh_partitions_healing_at_deadline() {
    let params = SbcParams::default_for(3);
    let cfg = SimConfig {
        delta: params.delta,
        max_latency: params.delta,
        reorder: true,
        duplicate_every: 2,
        drop_from_corrupted: false,
        partition_period: 3,
        partition_len: 2,
    };
    let real = RealSbcWorld::from_params(params, b"net-harsh").expect("valid");
    let net = NetSbcWorld::<sbc_net::world::LoopbackProfile>::with_transport(
        params,
        b"net-harsh",
        Box::new(SimNet::new(params.n, cfg, b"net-harsh/schedule")),
    )
    .expect("valid");
    let mut dual = DualRun::new(real, net, CompareLevel::Exact);
    dual.submit(PartyId(0), b"harsh/a");
    dual.advance_all();
    dual.submit(PartyId(1), b"harsh/b");
    dual.submit(PartyId(2), b"harsh/c");
    dual.idle_rounds(9);
    assert_eq!(dual.finish_epoch().expect("exact under partitions"), 0);
    // Second epoch over the same (already partition-stressed) transport.
    dual.submit(PartyId(2), b"harsh/e1");
    dual.idle_rounds(9);
    assert_eq!(dual.finish_epoch().expect("exact in epoch 1"), 1);
    let stats = dual.worlds().1.transport_stats();
    assert!(
        stats.partition_deferrals > 0 && stats.delayed > 0,
        "harsh schedule fired: {stats:?}"
    );
}

/// Pool-scope acceptance gate: a real pool vs a pool of networked
/// instances over adversarial `SimNet` schedules — two-plus instances
/// (one opened mid-run on the shared clock), two epochs each, adaptive
/// global corruption, per-instance injection, `Exact` keyed transcripts
/// at every boundary.
#[test]
fn pool_exact_real_vs_simnet_multi_instance_multi_epoch() {
    type Pair = PoolDualRun<PooledSbcWorld<RealSbcWorld>, PooledSbcWorld<SimNetSbcWorld>>;
    fn backend<W: SbcBackend>(n: usize, seed: &[u8]) -> PooledSbcWorld<W> {
        PooledSbcWorld::new(SbcParams::default_for(n), seed).expect("valid default params")
    }
    let n = 4;
    let seed = b"pool-net-exact";
    let mut dual: Pair = PoolDualRun::new(backend(n, seed), backend(n, seed), CompareLevel::Exact);
    let mut adv_rng = Drbg::from_seed(b"pool-net-exact/adversary");

    let a = dual.open_instance();
    let b = dual.open_instance();

    // ---- epoch 0: honest traffic, adaptive global corruption ----
    dual.submit(a, PartyId(0), b"e0/a");
    dual.submit(b, PartyId(1), b"e0/b");
    dual.step_round();
    let (cr, ci) = dual.corrupt(PartyId(3));
    assert!(cr && ci, "corruption accepted in both pools");
    dual.submit(a, PartyId(1), b"e0/a2");
    dual.idle_rounds(9);
    assert_eq!(dual.finish_epoch(a).expect("instance a epoch 0 exact"), 0);
    assert_eq!(dual.finish_epoch(b).expect("instance b epoch 0 exact"), 0);

    // ---- a third instance opens mid-run on the shared clock ----
    let late = dual.open_instance();

    // ---- epoch 1: injections on both original instances ----
    dual.submit(a, PartyId(0), b"e1/a");
    dual.submit(b, PartyId(2), b"e1/b");
    dual.submit(late, PartyId(0), b"e1/late");
    dual.step_round();
    for (k, &id) in [a, b].iter().enumerate() {
        dual.adversary(
            id,
            AdvCommand::Control {
                target: "F_TLE".into(),
                cmd: Command::new("Leakage", Value::Unit),
            },
        );
        let tau_rel = dual.release_round(id).expect("period open");
        let ct = Value::bytes(adv_rng.gen_bytes(64));
        let rho = adv_rng.gen_bytes(32);
        dual.adversary(
            id,
            AdvCommand::Control {
                target: "F_TLE".into(),
                cmd: Command::new(
                    "Insert",
                    Value::list([ct.clone(), Value::bytes(&rho), Value::U64(tau_rel)]),
                ),
            },
        );
        let m_bytes = Value::bytes(format!("e1/i{k}/evil").as_bytes()).encode();
        let (eta_real, eta_net) = dual.adversary(
            id,
            AdvCommand::Control {
                target: "F_RO".into(),
                cmd: Command::new(
                    "QueryBytes",
                    Value::list([Value::bytes(&rho), Value::U64(m_bytes.len() as u64)]),
                ),
            },
        );
        assert_eq!(eta_real, eta_net, "same instance seed, same oracle point");
        let eta = eta_real.as_bytes().expect("mask is bytes").to_vec();
        let y: Vec<u8> = m_bytes.iter().zip(eta.iter()).map(|(p, q)| p ^ q).collect();
        dual.adversary(
            id,
            AdvCommand::SendAs {
                party: PartyId(3),
                cmd: Command::new("Broadcast", sbc_wire(&ct, tau_rel, &y)),
            },
        );
    }
    dual.idle_rounds(12);
    assert_eq!(dual.finish_epoch(a).expect("instance a epoch 1 exact"), 1);
    assert_eq!(dual.finish_epoch(b).expect("instance b epoch 1 exact"), 1);
    dual.finish_epoch(late).expect("late instance exact");

    // Non-vacuity: every networked instance saw chaos.
    let (_, net_pool) = dual.worlds();
    let mut total = TransportStats::default();
    for id in [a, b, late] {
        let w = net_pool.instance_world(id).expect("instance live");
        let s = w.transport_stats();
        total.delayed += s.delayed;
        total.duplicated += s.duplicated;
        total.partition_deferrals += s.partition_deferrals;
        assert_eq!(s.dropped, 0, "no drops inside the Exact envelope");
    }
    assert!(
        total.delayed > 0,
        "latency fired across the pool: {total:?}"
    );
    assert!(total.duplicated > 0, "duplication fired: {total:?}");
}

/// Real sockets, same gate: `RealSbcWorld` vs the networked world over
/// [`TcpTransport`] — every frame crossing the OS loopback socket stack —
/// still **`Exact`** across three epochs with adaptive corruption and
/// adversarial injection. The stats prove real traffic moved and that no
/// deadline or reconnect path fired (a quiet network is byte-perfect).
#[test]
fn exact_real_vs_tcp_multi_epoch() {
    let mut dual = net_pair::<TcpSbcWorld>(4, b"net-exact-tcp");
    drive_multi_epoch(&mut dual, "tcp");
    let stats = dual.worlds().1.transport_stats();
    assert!(
        stats.sent > 0 && stats.delivered > 0 && stats.bytes > 0,
        "frames crossed the sockets: {stats:?}"
    );
    assert_eq!(stats.decode_errors, 0, "no torn frames on this path");
    assert_eq!(stats.timeouts, 0, "no deadline fired on loopback");
    assert_eq!(stats.dropped, 0, "no loss inside the Exact envelope");
}

/// The reconnect path inside the `Exact` envelope: every TCP link is
/// killed mid-frame, mid-epoch (twice, in different epochs), the
/// transport reconnects and retransmits — and the transcript is still
/// byte-identical to the in-process world.
#[test]
fn exact_real_vs_tcp_with_links_killed_mid_epoch() {
    let params = SbcParams::default_for(4);
    let transport =
        TcpTransport::local(params.n, params.delta, TcpConfig::from_delta(params.delta))
            .expect("loopback bind");
    let faults = transport.fault_handle();
    let real = RealSbcWorld::from_params(params, b"net-tcp-kill").expect("valid");
    let net = NetSbcWorld::<sbc_net::world::LoopbackProfile>::with_transport(
        params,
        b"net-tcp-kill",
        Box::new(transport),
    )
    .expect("valid");
    let mut dual = DualRun::new(real, net, CompareLevel::Exact);

    dual.submit(PartyId(0), b"kill/a");
    dual.advance_all();
    // Every link dies mid-frame on its next write; the transport must
    // reconnect and retransmit without the protocol noticing.
    faults.break_all_links();
    dual.submit(PartyId(1), b"kill/b");
    dual.submit(PartyId(2), b"kill/c");
    dual.idle_rounds(9);
    assert_eq!(dual.finish_epoch().expect("exact across link kills"), 0);

    // Epoch 1 over the already-reconnected links, with a second wave.
    dual.submit(PartyId(3), b"kill/e1");
    dual.advance_all();
    faults.break_all_links();
    dual.submit(PartyId(0), b"kill/e1b");
    dual.idle_rounds(9);
    assert_eq!(dual.finish_epoch().expect("exact in epoch 1"), 1);

    let stats = dual.worlds().1.transport_stats();
    assert!(stats.reconnects > 0, "links really died: {stats:?}");
    assert_eq!(stats.decode_errors, 0, "no torn frame decoded: {stats:?}");
    assert_eq!(stats.timeouts, 0, "reconnects, not deadlines: {stats:?}");
    assert_eq!(stats.dropped, 0, "nothing lost: {stats:?}");
}

/// Pool-scope gate over real sockets: a real pool vs a pool of TCP
/// instances — every instance its own listener and socket set — with a
/// staggered late open, adaptive global corruption, per-instance
/// injection, `Exact` keyed transcripts at every boundary.
#[test]
fn pool_exact_real_vs_tcp_multi_instance() {
    type Pair = PoolDualRun<PooledSbcWorld<RealSbcWorld>, PooledSbcWorld<TcpSbcWorld>>;
    fn backend<W: SbcBackend>(n: usize, seed: &[u8]) -> PooledSbcWorld<W> {
        PooledSbcWorld::new(SbcParams::default_for(n), seed).expect("valid default params")
    }
    let n = 4;
    let seed = b"pool-tcp-exact";
    let mut dual: Pair = PoolDualRun::new(backend(n, seed), backend(n, seed), CompareLevel::Exact);
    let mut adv_rng = Drbg::from_seed(b"pool-tcp-exact/adversary");

    let a = dual.open_instance();
    let b = dual.open_instance();

    dual.submit(a, PartyId(0), b"e0/a");
    dual.submit(b, PartyId(1), b"e0/b");
    dual.step_round();
    let (cr, ci) = dual.corrupt(PartyId(3));
    assert!(cr && ci, "corruption accepted in both pools");
    let late = dual.open_instance();
    dual.submit(late, PartyId(2), b"e0/late");
    dual.idle_rounds(9);

    // One adversarial injection against instance `a` over the sockets.
    {
        let tau_rel = dual.release_round(a);
        if let Some(tau_rel) = tau_rel {
            let ct = Value::bytes(adv_rng.gen_bytes(64));
            let rho = adv_rng.gen_bytes(32);
            dual.adversary(
                a,
                AdvCommand::Control {
                    target: "F_TLE".into(),
                    cmd: Command::new(
                        "Insert",
                        Value::list([ct.clone(), Value::bytes(&rho), Value::U64(tau_rel)]),
                    ),
                },
            );
            let m_bytes = Value::bytes(b"e0/evil").encode();
            let (eta_real, eta_net) = dual.adversary(
                a,
                AdvCommand::Control {
                    target: "F_RO".into(),
                    cmd: Command::new(
                        "QueryBytes",
                        Value::list([Value::bytes(&rho), Value::U64(m_bytes.len() as u64)]),
                    ),
                },
            );
            assert_eq!(eta_real, eta_net, "same instance seed, same oracle point");
            let eta = eta_real.as_bytes().expect("mask is bytes").to_vec();
            let y: Vec<u8> = m_bytes.iter().zip(eta.iter()).map(|(p, q)| p ^ q).collect();
            dual.adversary(
                a,
                AdvCommand::SendAs {
                    party: PartyId(3),
                    cmd: Command::new("Broadcast", sbc_wire(&ct, tau_rel, &y)),
                },
            );
            dual.idle_rounds(3);
        }
    }
    assert_eq!(dual.finish_epoch(a).expect("instance a exact"), 0);
    assert_eq!(dual.finish_epoch(b).expect("instance b exact"), 0);
    dual.finish_epoch(late).expect("late instance exact");

    // Epoch 1 on one surviving instance, still over the same sockets.
    dual.submit(a, PartyId(0), b"e1/a");
    dual.idle_rounds(10);
    assert_eq!(dual.finish_epoch(a).expect("instance a epoch 1 exact"), 1);

    // Non-vacuity: every TCP instance really moved frames, cleanly.
    let (_, net_pool) = dual.worlds();
    for id in [a, b, late] {
        let w = net_pool.instance_world(id).expect("instance live");
        let s = w.transport_stats();
        assert!(s.sent > 0 && s.bytes > 0, "instance {id:?} moved: {s:?}");
        assert_eq!(s.decode_errors, 0, "no torn frames: {s:?}");
        assert_eq!(s.timeouts, 0, "no deadline fired: {s:?}");
    }
}

/// The out-of-envelope knob: `drop_from_corrupted` suppresses the data
/// plane of corrupted senders. An adversarial wire sent via a corrupted
/// party never reaches honest `rec` sets (the injected message is
/// missing from outputs), while honest traffic keeps full liveness.
#[test]
fn drop_from_corrupted_suppresses_adversarial_wires_only() {
    let params = SbcParams::default_for(3);
    let cfg = SimConfig {
        drop_from_corrupted: true,
        ..SimConfig::quiet(params.delta)
    };
    let mut w = NetSbcWorld::<sbc_net::world::LoopbackProfile>::with_transport(
        params,
        b"net-drop",
        Box::new(SimNet::new(params.n, cfg, b"net-drop/schedule")),
    )
    .expect("valid");

    w.input(
        PartyId(0),
        Command::new("Broadcast", Value::bytes(b"honest")),
    );
    w.tick();
    w.adversary(AdvCommand::Corrupt(PartyId(2)));

    // Full injection recipe against the single world.
    let tau_rel = w.release_round().expect("period open");
    let mut adv_rng = Drbg::from_seed(b"net-drop/adversary");
    let ct = Value::bytes(adv_rng.gen_bytes(64));
    let rho = adv_rng.gen_bytes(32);
    w.adversary(AdvCommand::Control {
        target: "F_TLE".into(),
        cmd: Command::new(
            "Insert",
            Value::list([ct.clone(), Value::bytes(&rho), Value::U64(tau_rel)]),
        ),
    });
    let m_bytes = Value::bytes(b"evil").encode();
    let eta = w
        .adversary(AdvCommand::Control {
            target: "F_RO".into(),
            cmd: Command::new(
                "QueryBytes",
                Value::list([Value::bytes(&rho), Value::U64(m_bytes.len() as u64)]),
            ),
        })
        .as_bytes()
        .expect("mask is bytes")
        .to_vec();
    let y: Vec<u8> = m_bytes.iter().zip(eta.iter()).map(|(p, q)| p ^ q).collect();
    w.adversary(AdvCommand::SendAs {
        party: PartyId(2),
        cmd: Command::new("Broadcast", sbc_wire(&ct, tau_rel, &y)),
    });

    for _ in 0..(params.phi + params.delta + 2) {
        w.tick();
    }
    let outs = w.drain_outputs();
    assert_eq!(outs.len(), 2, "both honest parties still release");
    for (_, cmd) in &outs {
        let list = cmd.value.as_list().expect("release vector");
        assert_eq!(list, &[Value::bytes(b"honest")], "evil wire suppressed");
    }
    let stats = w.transport_stats();
    assert!(stats.dropped > 0, "the drop knob actually fired: {stats:?}");
}

/// The builder seam: the networked backends plug into the session/pool
/// API exactly like `RealSbcWorld` — `build_backend::<SimNetSbcWorld>()`
/// — and a full epoch over the adversarial network agrees with the
/// in-process result.
#[test]
fn session_builder_seam_runs_networked_backend() {
    use sbc_core::api::SbcSession;
    let mut over_real = SbcSession::builder(3)
        .seed(b"seam")
        .build()
        .expect("real session");
    let mut over_net = SbcSession::builder(3)
        .seed(b"seam")
        .build_backend::<SimNetSbcWorld>()
        .expect("networked session");
    let mut over_tcp = SbcSession::builder(3)
        .seed(b"seam")
        .build_backend::<TcpSbcWorld>()
        .expect("socket session");
    let drive = |s: &mut dyn FnMut(u32, &[u8])| {
        s(0, b"seam/a");
        s(2, b"seam/b");
    };
    drive(&mut |p, m| over_real.submit(p, m).expect("submit"));
    drive(&mut |p, m| over_net.submit(p, m).expect("submit"));
    drive(&mut |p, m| over_tcp.submit(p, m).expect("submit"));
    let r = over_real.run_epoch().expect("real epoch");
    let n = over_net.run_epoch().expect("networked epoch");
    let t = over_tcp.run_epoch().expect("socket epoch");
    assert_eq!(r.messages, n.messages);
    assert_eq!(r.release_round, n.release_round);
    assert_eq!(r.messages, t.messages);
    assert_eq!(r.release_round, t.release_round);
    assert_eq!(r.messages, vec![b"seam/a".to_vec(), b"seam/b".to_vec()]);
}
