//! Integration tests for `sbc-service`: the long-lived submission-serving
//! layer over `SbcPool`.
//!
//! The heart of the file is the kill-and-restore conformance gate: a
//! service killed mid-epoch (snapshot while an instance is live) and
//! restored from its image must produce release transcripts
//! **bit-identical** to the uninterrupted run — over the in-process
//! backend, the networked loopback backend, *and* the real-socket TCP
//! backend. The era matrix extends the gate to checkpointed services:
//! folding the journal at era boundaries must not change a single
//! released bit relative to a never-checkpointing twin, while shrinking
//! the image, and corrupted or truncated snapshot streams must fail with
//! typed errors. The rest pins the service-layer semantics: typed
//! backpressure, late-arrival deferral, deliver-before-reclaim on
//! shutdown, and bounded leak capture with a typed overflow counter.

use sbc_core::pool::PoolFootprint;
use sbc_core::worlds::{RealSbcWorld, SbcBackend};
use sbc_net::{LoopbackSbcWorld, TcpSbcWorld};
use sbc_service::{
    DeadlineClass, LoadGen, LoadProfile, ReleaseRecord, ReleaseSink, SbcService, ServiceConfig,
    ServiceError, ServiceMode, ServiceStats,
};

fn config(seed: &[u8]) -> ServiceConfig {
    ServiceConfig::new(3, ServiceMode::Beacon)
        .seed(seed)
        .batch_size(4)
        .queue_cap(256)
        .flush_after(2)
}

/// `ServiceStats` with the observational image-size field masked:
/// `snapshot_bytes` records what was serialized (or restored), which
/// legitimately differs between a live service and its restored twin.
/// Every other field must survive kill-and-restore bit-identically.
fn replayable(stats: &ServiceStats) -> ServiceStats {
    ServiceStats {
        snapshot_bytes: 0,
        ..stats.clone()
    }
}

/// Feeds `gen` into `svc` for `ticks` driver steps, draining records as
/// a consumer would. Returns the drained records in release order.
fn drive<W: SbcBackend>(
    svc: &mut SbcService<W>,
    gen: &mut LoadGen,
    ticks: usize,
) -> Vec<ReleaseRecord> {
    let mut records = Vec::new();
    for _ in 0..ticks {
        for s in gen.next_tick() {
            // Backpressure: drop on QueueFull (the generator is sized to
            // avoid it; losing a submission would desync the two runs).
            svc.submit(s.client, s.payload, s.class)
                .expect("sized load");
        }
        svc.tick().expect("tick");
        records.extend(svc.drain_releases());
    }
    records
}

/// The kill-and-restore experiment over any backend: run a seeded load,
/// snapshot strictly mid-epoch, then continue the original and the
/// restored service through the identical remaining schedule and demand
/// bit-identical release transcripts.
fn kill_and_restore_bit_identical<W: SbcBackend>() {
    let profile = LoadProfile {
        total: 40,
        per_tick: 3,
        payload_len: 16,
        clients: 1_000,
        interactive_pct: 10,
        batch_pct: 30,
    };

    // Uninterrupted reference run.
    let mut gen_a = LoadGen::new(profile.clone(), b"kill-restore");
    let mut a: SbcService<W> = SbcService::new(config(b"kill-restore")).unwrap();
    let mut records_a = drive(&mut a, &mut gen_a, 10);

    // Interrupted run: identical prefix, killed mid-epoch, restored.
    let mut gen_b = LoadGen::new(profile, b"kill-restore");
    let mut b: SbcService<W> = SbcService::new(config(b"kill-restore")).unwrap();
    let mut records_b = drive(&mut b, &mut gen_b, 10);
    assert!(b.live() > 0, "snapshot point must be mid-epoch");
    let image = b.snapshot().unwrap();
    drop(b); // the kill
    let mut b: SbcService<W> = SbcService::restore(&image).unwrap();

    assert_eq!(a.round(), b.round(), "restored clock matches");
    assert_eq!(
        replayable(&a.stats()),
        replayable(&b.stats()),
        "restored stats match"
    );

    // Identical remaining schedule on both.
    records_a.extend(drive(&mut a, &mut gen_a, 30));
    records_b.extend(drive(&mut b, &mut gen_b, 30));
    records_a.extend(a.shutdown().unwrap());
    records_b.extend(b.shutdown().unwrap());

    assert!(!records_a.is_empty(), "load produced releases");
    assert_eq!(
        records_a, records_b,
        "kill-and-restore must be bit-identical to the uninterrupted run"
    );
    assert_eq!(replayable(&a.stats()), replayable(&b.stats()));
    assert_eq!(a.footprint(), PoolFootprint::default(), "drained clean");
    assert_eq!(b.footprint(), PoolFootprint::default(), "drained clean");
}

#[test]
fn kill_and_restore_bit_identical_in_process() {
    kill_and_restore_bit_identical::<RealSbcWorld>();
}

#[test]
fn kill_and_restore_bit_identical_over_loopback() {
    kill_and_restore_bit_identical::<LoopbackSbcWorld>();
}

#[test]
fn kill_and_restore_bit_identical_over_tcp() {
    // The same gate over OS loopback sockets: the journal replay brings
    // up fresh TCP lanes, and the release transcripts must still match
    // the uninterrupted run bit-for-bit.
    kill_and_restore_bit_identical::<TcpSbcWorld>();
}

/// Drives one "wave" on a service: submit `batch` payloads, tick until
/// everything released and drained. Identical calls produce identical
/// schedules, so a checkpointing service and its never-checkpointing
/// twin stay step-for-step comparable.
fn wave<W: SbcBackend>(svc: &mut SbcService<W>, era: u64, batch: usize) -> Vec<ReleaseRecord> {
    for i in 0..batch as u64 {
        svc.submit(
            era * 100 + i,
            vec![era as u8, i as u8, 7, 7],
            DeadlineClass::Standard,
        )
        .expect("sized load");
    }
    let mut records = Vec::new();
    for _ in 0..200 {
        if svc.queued() == 0 && svc.live() == 0 {
            break;
        }
        svc.tick().expect("tick");
        records.extend(svc.drain_releases());
    }
    assert_eq!(svc.live(), 0, "wave must drain within its tick budget");
    records
}

/// The era matrix: a checkpointing service vs a never-checkpointing twin
/// on identical schedules. Checkpoints must be release-invisible, the
/// checkpointed image must undercut the full-journal one, and both
/// images must restore to services that finish the run bit-identically.
fn era_checkpoint_restore_matches_full_journal<W: SbcBackend>() {
    let mut a: SbcService<W> = SbcService::new(config(b"eras")).unwrap();
    let mut b: SbcService<W> = SbcService::new(config(b"eras")).unwrap();
    let mut records_a = Vec::new();
    let mut records_b = Vec::new();

    for era in 0..3u64 {
        records_a.extend(wave(&mut a, era, 4));
        records_b.extend(wave(&mut b, era, 4));
        // A straggler queued at the boundary on both: queued submissions
        // never block a checkpoint — they fold into it.
        a.submit(900 + era, vec![9; 4], DeadlineClass::Batch)
            .unwrap();
        b.submit(900 + era, vec![9; 4], DeadlineClass::Batch)
            .unwrap();
        assert!(a.at_boundary(), "drained service is at a boundary");
        a.checkpoint().expect("boundary checkpoint");
        assert_eq!(a.era(), era + 1);
        assert_eq!(a.stats().journal_ops, 0, "fold truncates the journal");
    }
    assert_eq!(b.era(), 0, "the twin never folded");

    // Mid-era image point: a live epoch on both.
    for svc in [&mut a, &mut b] {
        svc.submit(999, vec![1; 4], DeadlineClass::Interactive)
            .unwrap();
        svc.tick().expect("tick");
        svc.tick().expect("tick");
        assert!(svc.live() > 0, "image point must be mid-epoch");
    }

    let image_a = a.snapshot().unwrap();
    let image_b = b.snapshot().unwrap();
    assert!(
        image_a.len() < image_b.len(),
        "checkpointed image ({}B) must undercut the full-journal one ({}B)",
        image_a.len(),
        image_b.len()
    );
    assert!(
        a.stats().journal_ops < b.stats().journal_ops,
        "the tail is shorter than the lifetime journal"
    );

    let mut ra: SbcService<W> = SbcService::restore(&image_a).unwrap();
    let mut rb: SbcService<W> = SbcService::restore(&image_b).unwrap();
    assert_eq!(ra.era(), 3, "restore lands in the captured era");
    assert_eq!(rb.era(), 0);
    assert_eq!(replayable(&a.stats()), replayable(&ra.stats()));
    assert_eq!(replayable(&b.stats()), replayable(&rb.stats()));

    // All four finish the identical remaining schedule.
    let tail_a = a.shutdown().unwrap();
    let tail_b = b.shutdown().unwrap();
    let tail_ra = ra.shutdown().unwrap();
    let tail_rb = rb.shutdown().unwrap();
    assert!(!tail_a.is_empty(), "the tail epoch releases");
    assert_eq!(tail_a, tail_b, "checkpointing is release-invisible");
    assert_eq!(tail_a, tail_ra, "checkpoint-restore is bit-identical");
    assert_eq!(tail_b, tail_rb, "full-journal restore is bit-identical");
    assert_eq!(records_a, records_b);
    assert_eq!(replayable(&a.stats()), replayable(&ra.stats()));
    assert_eq!(replayable(&b.stats()), replayable(&rb.stats()));
    for svc in [&a, &b, &ra, &rb] {
        assert_eq!(svc.footprint(), PoolFootprint::default(), "drained clean");
    }
}

#[test]
fn era_checkpoint_restore_in_process() {
    era_checkpoint_restore_matches_full_journal::<RealSbcWorld>();
}

#[test]
fn era_checkpoint_restore_over_loopback() {
    era_checkpoint_restore_matches_full_journal::<LoopbackSbcWorld>();
}

#[test]
fn era_checkpoint_restore_over_tcp() {
    era_checkpoint_restore_matches_full_journal::<TcpSbcWorld>();
}

#[test]
fn checkpoint_mid_epoch_is_refused_typed() {
    let mut svc: SbcService<RealSbcWorld> = SbcService::new(config(b"mid-era")).unwrap();
    svc.submit(1, vec![1; 4], DeadlineClass::Interactive)
        .unwrap();
    svc.tick().unwrap();
    assert!(svc.live() > 0);
    assert!(!svc.at_boundary());
    match svc.checkpoint() {
        Err(ServiceError::NotAtBoundary { live, .. }) => assert!(live > 0),
        other => panic!("mid-epoch checkpoint must be refused typed, got {other:?}"),
    }
    assert!(!svc.try_checkpoint());
    assert_eq!(svc.era(), 0, "refusal leaves the service unchanged");

    // An undelivered release record blocks the boundary too: delivery
    // strictly precedes folding.
    while svc.live() > 0 {
        svc.tick().unwrap();
    }
    match svc.checkpoint() {
        Err(ServiceError::NotAtBoundary { parked, .. }) => assert!(parked > 0),
        other => panic!("undelivered records must block the boundary, got {other:?}"),
    }
    svc.drain_releases();
    assert!(svc.try_checkpoint(), "drained service folds fine");
    assert_eq!(svc.era(), 1);
}

/// Splits a snapshot stream image into its length-prefixed frames.
fn split_frames(image: &[u8]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    let mut off = 0;
    while off < image.len() {
        let len = u32::from_be_bytes(image[off..off + 4].try_into().unwrap()) as usize;
        frames.push(image[off..off + 4 + len].to_vec());
        off += 4 + len;
    }
    frames
}

#[test]
fn corrupted_and_truncated_snapshot_streams_fail_typed() {
    let mut svc: SbcService<RealSbcWorld> = SbcService::new(config(b"corrupt")).unwrap();
    svc.submit(1, vec![5; 32], DeadlineClass::Standard).unwrap();
    svc.tick().unwrap();
    let image = svc.snapshot().unwrap();
    let frames = split_frames(&image);
    assert!(frames.len() >= 3, "header + chunk(s) + trailer");

    // Digest corruption: flip a payload byte at the tail of the first
    // chunk frame (chunk data sits last in the frame body).
    let mut corrupt = image.clone();
    let flip_at = frames[0].len() + frames[1].len() - 2;
    corrupt[flip_at] ^= 0x01;
    match SbcService::<RealSbcWorld>::restore(&corrupt) {
        Err(ServiceError::BadSnapshot { detail }) => {
            assert!(
                detail.contains("digest"),
                "wanted the digest error: {detail}"
            )
        }
        Err(e) => panic!("wrong error: {e}"),
        Ok(_) => panic!("corrupted stream must fail restore"),
    }

    // A dropped chunk frame: the trailer shows up where the chunk
    // belongs.
    let mut dropped = Vec::new();
    for (i, f) in frames.iter().enumerate() {
        if i != 1 {
            dropped.extend_from_slice(f);
        }
    }
    match SbcService::<RealSbcWorld>::restore(&dropped) {
        Err(ServiceError::BadSnapshot { detail }) => assert!(
            detail.contains("SnapshotChunk"),
            "wanted the missing-chunk error: {detail}"
        ),
        Err(e) => panic!("wrong error: {e}"),
        Ok(_) => panic!("chunk-dropped stream must fail restore"),
    }

    // Truncation mid-stream is typed, never a panic.
    for cut in [3, frames[0].len() + 1, image.len() - 1] {
        assert!(
            matches!(
                SbcService::<RealSbcWorld>::restore(&image[..cut]),
                Err(ServiceError::BadSnapshot { .. })
            ),
            "truncation at {cut} must fail typed"
        );
    }
}

#[test]
fn idle_ticks_journal_in_constant_space() {
    // The RLE regression: 10k idle driver ticks must collapse to a
    // single journal entry, so an idle service's snapshot stops growing
    // with wall time.
    let mut svc: SbcService<RealSbcWorld> = SbcService::new(config(b"idle")).unwrap();
    for _ in 0..10_000 {
        svc.tick().unwrap();
    }
    let stats = svc.stats();
    assert_eq!(stats.ticks, 10_000);
    assert_eq!(stats.journal_ops, 1, "one RLE entry for the whole stretch");
    let idle_image = svc.snapshot().unwrap();

    // The run restores exactly: the tick run-length replays to the same
    // round.
    let restored = SbcService::<RealSbcWorld>::restore(&idle_image).unwrap();
    assert_eq!(restored.round(), svc.round());
    assert_eq!(replayable(&restored.stats()), replayable(&svc.stats()));

    // A submission breaks the run; further ticks start one new entry.
    svc.submit(1, vec![1; 4], DeadlineClass::Standard).unwrap();
    svc.tick().unwrap();
    svc.tick().unwrap();
    assert_eq!(svc.stats().journal_ops, 3, "run ‖ submit ‖ run");
}

#[test]
fn backends_agree_on_release_transcripts() {
    // The same service schedule over the in-process and the networked
    // loopback backend releases identical records — the service layer
    // preserves the Exact-conformance property of the worlds beneath it.
    let run = |records: &mut Vec<ReleaseRecord>, svc: &mut dyn FnMut() -> Vec<ReleaseRecord>| {
        records.extend(svc());
    };
    let mut real_records = Vec::new();
    let mut loop_records = Vec::new();
    let profile = LoadProfile::beacon(30, 3);
    {
        let mut gen = LoadGen::new(profile.clone(), b"agree");
        let mut svc: SbcService<RealSbcWorld> = SbcService::new(config(b"agree")).unwrap();
        run(&mut real_records, &mut || {
            let mut r = drive(&mut svc, &mut gen, 20);
            r.extend(svc.shutdown().unwrap());
            r
        });
    }
    {
        let mut gen = LoadGen::new(profile, b"agree");
        let mut svc: SbcService<LoopbackSbcWorld> = SbcService::new(config(b"agree")).unwrap();
        run(&mut loop_records, &mut || {
            let mut r = drive(&mut svc, &mut gen, 20);
            r.extend(svc.shutdown().unwrap());
            r
        });
    }
    assert!(!real_records.is_empty());
    assert_eq!(real_records, loop_records);
}

#[test]
fn queue_full_backpressure_recovers_after_ticks() {
    let mut svc: SbcService<RealSbcWorld> =
        SbcService::new(config(b"backpressure").queue_cap(6)).unwrap();
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for i in 0..20u64 {
        match svc.submit(i, vec![i as u8; 8], DeadlineClass::Standard) {
            Ok(_) => accepted += 1,
            Err(ServiceError::QueueFull { cap }) => {
                assert_eq!(cap, 6);
                rejected += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(accepted, 6);
    assert_eq!(rejected, 14);
    // Ticks drain the queue; the service accepts again.
    svc.tick().unwrap();
    svc.tick().unwrap();
    svc.submit(99, vec![9; 8], DeadlineClass::Standard)
        .expect("queue drained by admission");
    let stats = svc.stats();
    assert_eq!(stats.rejected, 14);
    assert_eq!(stats.accepted, 7);
    svc.shutdown().unwrap();
}

#[test]
fn late_arrivals_defer_into_the_next_instance() {
    // batch_size 8 keeps the first instance's window collecting; by the
    // time the late submission arrives the period has closed, so it must
    // defer into a fresh instance rather than error.
    let mut svc: SbcService<RealSbcWorld> = SbcService::new(config(b"late").batch_size(8)).unwrap();
    let early = svc
        .submit(1, b"early".to_vec(), DeadlineClass::Interactive)
        .unwrap();
    svc.tick().unwrap(); // opens instance 0, admits `early`
    svc.tick().unwrap();
    svc.tick().unwrap(); // period now too far along for new ciphertexts
    let late = svc
        .submit(2, b"late".to_vec(), DeadlineClass::Interactive)
        .unwrap();
    let records = svc.shutdown().unwrap();
    let stats = svc.stats();
    assert!(stats.deferred >= 1, "late arrival took the deferral path");
    assert_eq!(stats.opened, 2, "deferral opened a second instance");
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].tickets, vec![early]);
    assert_eq!(records[1].tickets, vec![late]);
    assert!(records[0].messages.iter().any(|m| m == b"early"));
    assert!(records[1].messages.iter().any(|m| m == b"late"));
}

/// A sink that records what it saw, for the deliver-before-reclaim
/// regression.
struct Recorder(std::rc::Rc<std::cell::RefCell<Vec<ReleaseRecord>>>);

impl ReleaseSink for Recorder {
    fn on_release(&mut self, record: &ReleaseRecord) {
        self.0.borrow_mut().push(record.clone());
    }
}

#[test]
fn shutdown_delivers_to_sinks_before_reclaiming() {
    // Regression for the service-layer mirror of the PR 4 retire-drains
    // fix: finish-then-prune must never reclaim an instance whose release
    // record has not been delivered.
    let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let mut svc: SbcService<RealSbcWorld> = SbcService::new(config(b"drain")).unwrap();
    svc.register_sink(Box::new(Recorder(seen.clone())));
    for i in 0..10u64 {
        svc.submit(i, vec![i as u8; 4], DeadlineClass::Standard)
            .unwrap();
    }
    let leftovers = svc.shutdown().unwrap();
    assert!(leftovers.is_empty(), "sink consumed everything");
    let stats = svc.stats();
    assert_eq!(stats.accepted, 10);
    assert_eq!(stats.finished, stats.delivered, "every finish delivered");
    assert_eq!(stats.finished, stats.pruned, "every delivery reclaimed");
    let delivered_tickets: usize = seen.borrow().iter().map(|r| r.tickets.len()).sum();
    assert_eq!(delivered_tickets, 10, "no submission lost at shutdown");
    assert_eq!(svc.footprint(), PoolFootprint::default());
}

#[test]
fn undelivered_records_block_reclamation_until_drained() {
    // Without a sink, a finished instance's bookkeeping must survive
    // until the caller drains its record — reclaiming earlier would drop
    // the release on the floor.
    let mut svc: SbcService<RealSbcWorld> = SbcService::new(config(b"undelivered")).unwrap();
    svc.submit(1, b"kept".to_vec(), DeadlineClass::Interactive)
        .unwrap();
    while svc.stats().finished == 0 {
        svc.tick().unwrap();
    }
    let parked = svc.footprint();
    assert_eq!(parked.retired, 1, "undelivered instance stays tracked");
    assert_eq!(svc.stats().pruned, 0);
    let records = svc.drain_releases();
    assert_eq!(records.len(), 1);
    assert!(records[0].messages.iter().any(|m| m == b"kept"));
    assert_eq!(svc.stats().pruned, 1);
    assert_eq!(svc.footprint(), PoolFootprint::default());
}

#[test]
fn leak_cap_bounds_capture_with_typed_overflow() {
    let run = |leak_cap| {
        let mut svc: SbcService<RealSbcWorld> =
            SbcService::new(config(b"leaks").leak_cap(leak_cap)).unwrap();
        let mut gen = LoadGen::new(LoadProfile::beacon(24, 4), b"leaks");
        let mut records = drive(&mut svc, &mut gen, 12);
        records.extend(svc.shutdown().unwrap());
        (records, svc.stats().leak_overflow)
    };
    let (uncapped_records, uncapped_overflow) = run(None);
    assert_eq!(uncapped_overflow, 0, "uncapped capture never drops");
    let (capped_records, capped_overflow) = run(Some(1));
    assert!(capped_overflow > 0, "a 1-entry cap must evict");
    // The cap bounds *observability state*, never the protocol: release
    // transcripts are unchanged.
    assert_eq!(uncapped_records, capped_records);
}

#[test]
fn service_stats_track_the_load() {
    let mut svc: SbcService<RealSbcWorld> = SbcService::new(config(b"stats")).unwrap();
    let mut gen = LoadGen::new(LoadProfile::beacon(50, 5), b"stats");
    let mut records = drive(&mut svc, &mut gen, 20);
    records.extend(svc.shutdown().unwrap());
    let stats = svc.stats();
    assert_eq!(stats.accepted, 50);
    assert_eq!(stats.delivered, records.len() as u64);
    assert_eq!(stats.opened, stats.finished);
    assert_eq!(stats.finished, stats.pruned);
    let released: usize = records.iter().map(|r| r.tickets.len()).sum();
    assert_eq!(released, 50, "every accepted submission released");
    assert_eq!(stats.latency.count, 50);
    assert!(stats.latency.p50 > 0);
    assert!(stats.latency.p99 >= stats.latency.p50);
    assert!(stats.peak_live >= 1);
    assert!(stats.peak_queue >= 1);
}
