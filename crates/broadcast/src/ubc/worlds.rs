//! Real and ideal worlds for unfair broadcast, and the Lemma 1 simulator.
//!
//! * [`RealUbcWorld`] — parties run `Π_UBC` (Fig. 9) over `F_RBC` instances.
//! * [`IdealUbcWorld`] — dummy parties talk to `F_UBC` (Fig. 8); the
//!   simulator [`SimUbc`] (Appendix A of the paper) re-shapes every
//!   functionality leak into exactly the `F_RBC`-instance leakage the real
//!   adversary would see, and translates adversarial commands addressed to
//!   `F_RBC` instances back into `F_UBC` interface calls.
//!
//! Under any environment, the two worlds produce byte-identical transcripts
//! (the simulation in Appendix A is perfect) — asserted by the Lemma 1
//! tests.

use crate::ubc::func::UbcFunc;
use crate::ubc::protocol::{rbc_instance_label, UbcProtocol};
use crate::ubc::UbcLayer;
use sbc_uc::exec::SbcWorld;
use sbc_uc::ids::{PartyId, Tag};
use sbc_uc::value::{Command, Value};
use sbc_uc::world::{AdvCommand, Leak, World, WorldCore};
use std::collections::HashMap;

/// The real world: `Π_UBC` over `F_RBC` + `G_clock`.
#[derive(Debug)]
pub struct RealUbcWorld {
    core: WorldCore,
    proto: UbcProtocol,
}

impl RealUbcWorld {
    /// Creates the world for `n` parties from an experiment seed.
    pub fn new(n: usize, seed: &[u8]) -> Self {
        RealUbcWorld {
            core: WorldCore::new(n, seed),
            proto: UbcProtocol::new(n),
        }
    }
}

impl World for RealUbcWorld {
    fn n(&self) -> usize {
        self.core.n()
    }

    fn time(&self) -> u64 {
        self.core.clock.read()
    }

    fn input(&mut self, party: PartyId, cmd: Command) {
        if cmd.name == "Broadcast" && !self.core.corr.is_corrupted(party) {
            let msg = cmd.value;
            let mut ctx = self.core.ctx();
            self.proto.broadcast(party, msg, &mut ctx);
        }
    }

    fn advance(&mut self, party: PartyId) {
        if self.core.corr.is_corrupted(party) {
            return;
        }
        let ds = {
            let mut ctx = self.core.ctx();
            self.proto.advance(party, &mut ctx)
        };
        self.core.push_outputs(ds);
        self.core.clock.advance_party(party);
    }

    fn adversary(&mut self, cmd: AdvCommand) -> Value {
        match cmd {
            AdvCommand::Corrupt(p) => Value::Bool(self.core.corrupt(p)),
            AdvCommand::SendAs { party, cmd } if cmd.name == "Broadcast" => {
                let ds = {
                    let mut ctx = self.core.ctx();
                    self.proto.adv_broadcast(party, cmd.value, &mut ctx)
                };
                self.core.push_outputs(ds);
                Value::Unit
            }
            AdvCommand::Control { target, cmd } if cmd.name == "Allow" => {
                let ds = {
                    let mut ctx = self.core.ctx();
                    self.proto
                        .adv_allow(&Value::str(target), cmd.value, &mut ctx)
                };
                self.core.push_outputs(ds);
                Value::Unit
            }
            _ => Value::Unit,
        }
    }

    fn drain_outputs(&mut self) -> Vec<(PartyId, Command)> {
        std::mem::take(&mut self.core.outputs)
    }

    fn drain_leaks(&mut self) -> Vec<Leak> {
        std::mem::take(&mut self.core.leaks)
    }

    fn is_corrupted(&self, party: PartyId) -> bool {
        self.core.corr.is_corrupted(party)
    }
}

impl SbcWorld for RealUbcWorld {
    /// Drops `F_RBC` instances opened but not yet delivered. Plain
    /// broadcast has no period notion of its own, so
    /// [`release_round`](SbcWorld::release_round) /
    /// [`period_end`](SbcWorld::period_end) stay `None`.
    ///
    /// `tick_sharded` keeps the trait's serial default on purpose: a
    /// `Π_UBC` round is pure `F_RBC` delivery bookkeeping — no hashing, no
    /// proof generation — so there is no compute phase worth fanning out,
    /// and the fbc/sbc stacks (which *do* shard) already cover the net
    /// layer's parallel delivery path.
    fn begin_new_period(&mut self) {
        self.proto.clear_pending();
    }

    fn release_round(&self) -> Option<u64> {
        None
    }

    fn period_end(&self) -> Option<u64> {
        None
    }
}

/// The simulator `S_UBC` from the proof of Lemma 1 (Appendix A).
///
/// It mirrors the per-sender instance counters of `Π_UBC`, maps each
/// functionality tag to the `F_RBC` instance label the real execution would
/// use, and re-emits functionality leakage in real-world shape.
#[derive(Debug, Default)]
pub struct SimUbc {
    totals: HashMap<PartyId, u64>,
    tag_label: HashMap<Tag, String>,
    label_tag: HashMap<String, Tag>,
}

impl SimUbc {
    /// Creates the simulator.
    pub fn new() -> Self {
        SimUbc::default()
    }

    fn fresh_label(&mut self, sender: PartyId) -> String {
        let t = self.totals.entry(sender).or_insert(0);
        *t += 1;
        rbc_instance_label(sender, *t)
    }

    /// Translates one `F_UBC` leak into the real-world `F_RBC` leak shape.
    pub fn translate_leak(&mut self, leak: Leak) -> Leak {
        let items = leak.cmd.value.as_list().unwrap_or(&[]).to_vec();
        match items.len() {
            // (tag, M, P): honest broadcast, substitution, or flush.
            3 => {
                let tag = Tag::from_bytes(items[0].as_bytes().unwrap_or(&[]))
                    .expect("F_UBC leaks well-formed tags");
                let msg = items[1].clone();
                let sender = items[2].clone();
                let label = match self.tag_label.get(&tag) {
                    Some(l) => l.clone(),
                    None => {
                        let sender_id =
                            PartyId(u32::try_from(sender.as_u64().unwrap_or(0)).unwrap_or(0));
                        let l = self.fresh_label(sender_id);
                        self.tag_label.insert(tag, l.clone());
                        self.label_tag.insert(l.clone(), tag);
                        l
                    }
                };
                Leak {
                    source: label,
                    cmd: Command::new("Broadcast", Value::pair(msg, sender)),
                }
            }
            // (M, P): adversarial broadcast through a fresh instance.
            2 => {
                let sender_id = PartyId(u32::try_from(items[1].as_u64().unwrap_or(0)).unwrap_or(0));
                let label = self.fresh_label(sender_id);
                Leak {
                    source: label,
                    cmd: leak.cmd,
                }
            }
            _ => leak,
        }
    }

    /// Resolves a real-world instance label to the functionality tag.
    pub fn tag_for_label(&self, label: &str) -> Option<Tag> {
        self.label_tag.get(label).copied()
    }
}

/// The ideal world: `F_UBC` + `S_UBC`.
#[derive(Debug)]
pub struct IdealUbcWorld {
    core: WorldCore,
    func: UbcFunc,
    sim: SimUbc,
}

impl IdealUbcWorld {
    /// Creates the world for `n` parties from an experiment seed.
    ///
    /// The functionality's tag stream is forked under the same label as in
    /// the real world so that transcripts align bit-for-bit.
    pub fn new(n: usize, seed: &[u8]) -> Self {
        let mut core = WorldCore::new(n, seed);
        let tag_rng = core.rng.fork(b"tags/F_UBC");
        IdealUbcWorld {
            core,
            func: UbcFunc::new(n, tag_rng),
            sim: SimUbc::new(),
        }
    }

    fn translate_pending_leaks(&mut self) {
        let raw = std::mem::take(&mut self.core.leaks);
        for leak in raw {
            let translated = self.sim.translate_leak(leak);
            self.core.leaks.push(translated);
        }
    }
}

impl World for IdealUbcWorld {
    fn n(&self) -> usize {
        self.core.n()
    }

    fn time(&self) -> u64 {
        self.core.clock.read()
    }

    fn input(&mut self, party: PartyId, cmd: Command) {
        if cmd.name == "Broadcast" && !self.core.corr.is_corrupted(party) {
            let msg = cmd.value;
            let mut ctx = self.core.ctx();
            self.func.broadcast_honest(party, msg, &mut ctx);
            self.translate_pending_leaks();
        }
    }

    fn advance(&mut self, party: PartyId) {
        if self.core.corr.is_corrupted(party) {
            return;
        }
        let ds = {
            let mut ctx = self.core.ctx();
            self.func.advance_clock(party, &mut ctx)
        };
        self.translate_pending_leaks();
        self.core.push_outputs(ds);
        self.core.clock.advance_party(party);
    }

    fn adversary(&mut self, cmd: AdvCommand) -> Value {
        match cmd {
            AdvCommand::Corrupt(p) => Value::Bool(self.core.corrupt(p)),
            AdvCommand::SendAs { party, cmd } if cmd.name == "Broadcast" => {
                let ds = {
                    let mut ctx = self.core.ctx();
                    self.func.broadcast_corrupted(party, cmd.value, &mut ctx)
                };
                self.translate_pending_leaks();
                self.core.push_outputs(ds);
                Value::Unit
            }
            AdvCommand::Control { target, cmd } if cmd.name == "Allow" => {
                if let Some(tag) = self.sim.tag_for_label(&target) {
                    let ds = {
                        let mut ctx = self.core.ctx();
                        self.func.allow(tag, cmd.value, &mut ctx)
                    };
                    self.translate_pending_leaks();
                    self.core.push_outputs(ds);
                }
                Value::Unit
            }
            _ => Value::Unit,
        }
    }

    fn drain_outputs(&mut self) -> Vec<(PartyId, Command)> {
        std::mem::take(&mut self.core.outputs)
    }

    fn drain_leaks(&mut self) -> Vec<Leak> {
        std::mem::take(&mut self.core.leaks)
    }

    fn is_corrupted(&self, party: PartyId) -> bool {
        self.core.corr.is_corrupted(party)
    }
}

impl SbcWorld for IdealUbcWorld {
    /// Drops queued-but-undelivered `F_UBC` messages — the functionality
    /// mirror of [`RealUbcWorld::begin_new_period`].
    fn begin_new_period(&mut self) {
        self.func.clear_pending();
    }

    fn release_round(&self) -> Option<u64> {
        None
    }

    fn period_end(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_uc::exec::CompareLevel;
    use sbc_uc::world::{run_env, EnvDriver};

    fn both_worlds(n: usize, seed: &[u8]) -> (RealUbcWorld, IdealUbcWorld) {
        (RealUbcWorld::new(n, seed), IdealUbcWorld::new(n, seed))
    }

    fn assert_indistinguishable<F>(n: usize, seed: &[u8], script: F)
    where
        F: Fn(&mut EnvDriver<'_>) + Copy,
    {
        let (real, ideal) = both_worlds(n, seed);
        // Lemma 1's simulation is perfect: byte-identical transcripts.
        sbc_uc::exec::assert_indistinguishable(real, ideal, CompareLevel::Exact, script);
    }

    #[test]
    fn lemma1_honest_single_broadcast() {
        assert_indistinguishable(3, b"l1-a", |env| {
            env.input(
                PartyId(0),
                Command::new("Broadcast", Value::bytes(b"hello")),
            );
            env.advance_all();
            env.idle_rounds(1);
        });
    }

    #[test]
    fn lemma1_multi_sender_multi_message() {
        assert_indistinguishable(4, b"l1-b", |env| {
            env.input(PartyId(0), Command::new("Broadcast", Value::U64(1)));
            env.input(PartyId(2), Command::new("Broadcast", Value::U64(2)));
            env.input(PartyId(0), Command::new("Broadcast", Value::U64(3)));
            env.advance_all();
            env.input(PartyId(1), Command::new("Broadcast", Value::U64(4)));
            env.advance_all();
        });
    }

    #[test]
    fn lemma1_adaptive_corruption_substitution() {
        // Corrupt the sender after seeing its message (non-atomic model),
        // substitute, and deliver.
        assert_indistinguishable(3, b"l1-c", |env| {
            env.input(
                PartyId(1),
                Command::new("Broadcast", Value::bytes(b"original")),
            );
            env.adversary(AdvCommand::Corrupt(PartyId(1)));
            env.adversary(AdvCommand::Control {
                target: "F_RBC[P1,1]".into(),
                cmd: Command::new("Allow", Value::bytes(b"substituted")),
            });
            env.advance_all();
        });
    }

    #[test]
    fn lemma1_adversarial_injection() {
        assert_indistinguishable(3, b"l1-d", |env| {
            env.adversary(AdvCommand::Corrupt(PartyId(2)));
            env.adversary(AdvCommand::SendAs {
                party: PartyId(2),
                cmd: Command::new("Broadcast", Value::bytes(b"injected")),
            });
            env.advance_all();
        });
    }

    #[test]
    fn lemma1_holds_across_period_turnover() {
        use sbc_uc::exec::DualRun;
        let (real, ideal) = both_worlds(3, b"l1-epochs");
        let mut dual = DualRun::new(real, ideal, CompareLevel::Exact);
        // Epoch 0: a delivered broadcast plus one left undelivered at the
        // boundary — the turnover must drop it in both worlds.
        dual.submit(PartyId(0), b"delivered");
        dual.advance_all();
        dual.submit(PartyId(1), b"stale");
        dual.finish_epoch().unwrap_or_else(|d| panic!("{d}"));
        // Epoch 1: fresh traffic still aligns byte-for-byte.
        dual.submit(PartyId(2), b"fresh");
        dual.idle_rounds(2);
        dual.finish_epoch().unwrap_or_else(|d| panic!("{d}"));
        let (tr, _) = dual.into_transcripts();
        let delivered: Vec<_> = tr.outputs();
        assert_eq!(delivered.len(), 6, "2 broadcasts × 3 parties");
        assert!(delivered
            .iter()
            .all(|(_, _, cmd)| cmd.value != Value::bytes(b"stale")));
    }

    #[test]
    fn turnover_after_adversarial_broadcast_drops_the_right_instance() {
        // Regression: an adversarial broadcast bumps `total_P` without
        // entering the pending set. The turnover must drop the stale
        // honest instance (not the delivered adversarial one), so an
        // `Allow` addressed to the dead period's instance is a no-op in
        // both worlds.
        use sbc_uc::exec::DualRun;
        let (real, ideal) = both_worlds(3, b"l1-adv-turnover");
        let mut dual = DualRun::new(real, ideal, CompareLevel::Exact);
        dual.submit(PartyId(0), b"stale-honest");
        dual.corrupt(PartyId(0)); // pending, never delivered
        dual.adversary(AdvCommand::SendAs {
            party: PartyId(0),
            cmd: Command::new("Broadcast", Value::bytes(b"adversarial")),
        });
        dual.finish_epoch().unwrap_or_else(|d| panic!("{d}"));
        // The dead period's instance label must be gone in the real world
        // exactly as F_UBC's pending entry is gone in the ideal one.
        dual.adversary(AdvCommand::Control {
            target: "F_RBC[P0,1]".into(),
            cmd: Command::new("Allow", Value::bytes(b"necromancy")),
        });
        dual.idle_rounds(2);
        dual.check().unwrap_or_else(|d| panic!("{d}"));
        let (tr, _) = dual.into_transcripts();
        assert_eq!(tr.outputs().len(), 3, "only the adversarial broadcast");
        assert!(tr
            .outputs()
            .iter()
            .all(|(_, _, cmd)| cmd.value == Value::bytes(b"adversarial")));
    }

    #[test]
    fn substituted_message_delivered_to_all() {
        let (mut real, _) = both_worlds(3, b"deliver");
        let t = run_env(&mut real, |env| {
            env.input(PartyId(1), Command::new("Broadcast", Value::bytes(b"m")));
            env.adversary(AdvCommand::Corrupt(PartyId(1)));
            env.adversary(AdvCommand::Control {
                target: "F_RBC[P1,1]".into(),
                cmd: Command::new("Allow", Value::bytes(b"evil")),
            });
            env.advance_all();
        });
        let outs = t.outputs();
        assert_eq!(outs.len(), 3);
        for (_, _, cmd) in outs {
            assert_eq!(cmd.value, Value::bytes(b"evil"));
        }
    }

    #[test]
    fn unsubstituted_corrupted_message_stays_pending() {
        // Corrupted sender whose message the adversary neither allows nor
        // drops: nothing is delivered (unfair broadcast has no delivery
        // guarantee for corrupted senders).
        let (mut real, mut ideal) = both_worlds(3, b"pending");
        let script = |env: &mut EnvDriver<'_>| {
            env.input(PartyId(1), Command::new("Broadcast", Value::bytes(b"m")));
            env.adversary(AdvCommand::Corrupt(PartyId(1)));
            env.idle_rounds(3);
        };
        let t_real = run_env(&mut real, script);
        let t_ideal = run_env(&mut ideal, script);
        assert_eq!(t_real.digest(), t_ideal.digest());
        assert!(t_real.outputs().is_empty());
    }
}
