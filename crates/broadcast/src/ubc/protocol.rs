//! The unfair broadcast protocol `Π_UBC` (paper Fig. 9): concurrent unfair
//! broadcast from per-sender counters over fresh `F_RBC` instances.
//!
//! Party `P`'s `j`-th broadcast of a round goes to instance
//! `F_RBC[P, total_P]`; on `Advance_Clock`, `P` instructs each of this
//! round's instances to deliver, in order, then resets her counter.

use crate::rbc::func::{parse_rbc_delivery, RbcFunc};
use crate::ubc::UbcLayer;
use sbc_uc::hybrid::{Delivery, HybridCtx};
use sbc_uc::ids::PartyId;
use sbc_uc::value::{Command, Value};
use std::collections::BTreeMap;

/// Leak-source label for the `i`-th `F_RBC` instance of `sender`.
pub fn rbc_instance_label(sender: PartyId, index: u64) -> String {
    format!("F_RBC[{sender},{index}]")
}

/// Parses an instance label back into `(sender, index)`.
pub fn parse_instance_label(label: &str) -> Option<(PartyId, u64)> {
    let inner = label.strip_prefix("F_RBC[")?.strip_suffix(']')?;
    let (p, i) = inner.split_once(',')?;
    let party = p.strip_prefix('P')?.parse().ok()?;
    Some((PartyId(party), i.parse().ok()?))
}

/// The protocol `Π_UBC(F_RBC, P)`.
#[derive(Clone, Debug)]
pub struct UbcProtocol {
    n: usize,
    /// `total_P` counters.
    totals: Vec<u64>,
    /// Per-sender indices of instances opened but not yet delivered (the
    /// paper's `count_P`, kept as explicit indices: adversarial broadcasts
    /// also bump `total_P`, so the pending set cannot be reconstructed
    /// from a plain counter).
    pending: Vec<Vec<u64>>,
    instances: BTreeMap<(u32, u64), RbcFunc>,
    last_advance: Vec<Option<u64>>,
}

impl UbcProtocol {
    /// Creates the protocol state for `n` parties.
    pub fn new(n: usize) -> Self {
        UbcProtocol {
            n,
            totals: vec![0; n],
            pending: vec![Vec::new(); n],
            instances: BTreeMap::new(),
            last_advance: vec![None; n],
        }
    }

    /// Number of `F_RBC` instances created so far (cost accounting).
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Drops every `F_RBC` instance opened but not yet delivered
    /// (multi-epoch turnover: stale wires from an ended broadcast period
    /// must not bleed into the next one). The `total_P` counters carry
    /// over so instance labels stay globally fresh.
    pub fn clear_pending(&mut self) {
        for (i, pend) in self.pending.iter_mut().enumerate() {
            for idx in pend.drain(..) {
                self.instances.remove(&(i as u32, idx));
            }
        }
    }

    fn strip(deliveries: Vec<Delivery>) -> Vec<Delivery> {
        // Parties forward (Broadcast, M) to Z, dropping the sender identity.
        deliveries
            .into_iter()
            .filter_map(|d| {
                let (msg, _sender) = parse_rbc_delivery(&d.cmd)?;
                Some(Delivery::new(d.to, Command::new("Broadcast", msg)))
            })
            .collect()
    }
}

impl UbcLayer for UbcProtocol {
    fn broadcast(&mut self, sender: PartyId, msg: Value, ctx: &mut HybridCtx<'_>) {
        if ctx.is_corrupted(sender) {
            return;
        }
        self.totals[sender.index()] += 1;
        let idx = self.totals[sender.index()];
        self.pending[sender.index()].push(idx);
        let mut inst = RbcFunc::new(self.n, rbc_instance_label(sender, idx));
        inst.broadcast_honest(sender, msg, ctx);
        self.instances.insert((sender.0, idx), inst);
    }

    fn adv_broadcast(
        &mut self,
        sender: PartyId,
        msg: Value,
        ctx: &mut HybridCtx<'_>,
    ) -> Vec<Delivery> {
        if !ctx.is_corrupted(sender) {
            return Vec::new();
        }
        self.totals[sender.index()] += 1;
        let idx = self.totals[sender.index()];
        let mut inst = RbcFunc::new(self.n, rbc_instance_label(sender, idx));
        let ds = inst.broadcast_corrupted(sender, msg, ctx);
        self.instances.insert((sender.0, idx), inst);
        Self::strip(ds)
    }

    fn adv_allow(&mut self, handle: &Value, msg: Value, ctx: &mut HybridCtx<'_>) -> Vec<Delivery> {
        let Some(label) = handle.as_str() else {
            return Vec::new();
        };
        let Some((party, idx)) = parse_instance_label(label) else {
            return Vec::new();
        };
        let Some(inst) = self.instances.get_mut(&(party.0, idx)) else {
            return Vec::new();
        };
        Self::strip(inst.allow(msg, ctx))
    }

    fn advance(&mut self, party: PartyId, ctx: &mut HybridCtx<'_>) -> Vec<Delivery> {
        if ctx.is_corrupted(party) {
            return Vec::new();
        }
        let now = ctx.time();
        if self.last_advance[party.index()] == Some(now) {
            return Vec::new();
        }
        self.last_advance[party.index()] = Some(now);
        let pend = std::mem::take(&mut self.pending[party.index()]);
        let mut out = Vec::new();
        for idx in pend {
            if let Some(inst) = self.instances.get_mut(&(party.0, idx)) {
                out.extend(Self::strip(inst.advance_clock(party, ctx)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_primitives::drbg::Drbg;
    use sbc_uc::clock::GlobalClock;
    use sbc_uc::corruption::CorruptionTracker;

    struct Fx {
        clock: GlobalClock,
        rng: Drbg,
        leaks: Vec<sbc_uc::world::Leak>,
        corr: CorruptionTracker,
    }

    impl Fx {
        fn new(n: usize) -> Self {
            Fx {
                clock: GlobalClock::new(PartyId::all(n)),
                rng: Drbg::from_seed(b"ubcp"),
                leaks: Vec::new(),
                corr: CorruptionTracker::new(n),
            }
        }
        fn ctx(&mut self) -> HybridCtx<'_> {
            HybridCtx {
                clock: &mut self.clock,
                rng: &mut self.rng,
                leaks: &mut self.leaks,
                corr: &mut self.corr,
            }
        }
    }

    #[test]
    fn label_round_trip() {
        let l = rbc_instance_label(PartyId(3), 7);
        assert_eq!(l, "F_RBC[P3,7]");
        assert_eq!(parse_instance_label(&l), Some((PartyId(3), 7)));
        assert_eq!(parse_instance_label("garbage"), None);
    }

    #[test]
    fn multi_message_round_ordering() {
        let mut fx = Fx::new(2);
        let mut p = UbcProtocol::new(2);
        p.broadcast(PartyId(0), Value::U64(10), &mut fx.ctx());
        p.broadcast(PartyId(0), Value::U64(20), &mut fx.ctx());
        let ds = p.advance(PartyId(0), &mut fx.ctx());
        assert_eq!(ds.len(), 4);
        assert_eq!(ds[0].cmd.value, Value::U64(10));
        assert_eq!(ds[2].cmd.value, Value::U64(20));
        assert_eq!(p.instance_count(), 2);
    }

    #[test]
    fn counter_reset_across_rounds() {
        let mut fx = Fx::new(2);
        let mut p = UbcProtocol::new(2);
        p.broadcast(PartyId(0), Value::U64(1), &mut fx.ctx());
        p.advance(PartyId(0), &mut fx.ctx());
        fx.clock.advance_party(PartyId(0));
        fx.clock.advance_party(PartyId(1));
        p.broadcast(PartyId(0), Value::U64(2), &mut fx.ctx());
        let ds = p.advance(PartyId(0), &mut fx.ctx());
        assert_eq!(ds.len(), 2, "only the new round's message");
        assert_eq!(ds[0].cmd.value, Value::U64(2));
    }

    #[test]
    fn adversarial_broadcast_immediate() {
        let mut fx = Fx::new(3);
        fx.corr.corrupt(PartyId(1), 0).unwrap();
        let mut p = UbcProtocol::new(3);
        let ds = p.adv_broadcast(PartyId(1), Value::U64(66), &mut fx.ctx());
        assert_eq!(ds.len(), 3);
        assert_eq!(ds[0].cmd.value, Value::U64(66));
    }

    #[test]
    fn allow_substitution_after_mid_round_corruption() {
        let mut fx = Fx::new(2);
        let mut p = UbcProtocol::new(2);
        p.broadcast(PartyId(0), Value::U64(1), &mut fx.ctx());
        fx.corr.corrupt(PartyId(0), 0).unwrap();
        let handle = Value::str(rbc_instance_label(PartyId(0), 1));
        let ds = p.adv_allow(&handle, Value::U64(2), &mut fx.ctx());
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].cmd.value, Value::U64(2));
        // After corruption the party's advance is ignored.
        assert!(p.advance(PartyId(0), &mut fx.ctx()).is_empty());
    }

    #[test]
    fn leaks_at_input_time() {
        let mut fx = Fx::new(2);
        let mut p = UbcProtocol::new(2);
        p.broadcast(PartyId(0), Value::bytes(b"m"), &mut fx.ctx());
        assert_eq!(fx.leaks.len(), 1);
        assert_eq!(fx.leaks[0].source, "F_RBC[P0,1]");
    }
}
