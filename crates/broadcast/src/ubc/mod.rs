//! Unfair broadcast (UBC): the functionality `F_UBC` (Fig. 8), the protocol
//! `Π_UBC` over `F_RBC` instances (Fig. 9), the Lemma 1 simulator, and the
//! real/ideal worlds for the indistinguishability experiments.

pub mod func;
pub mod protocol;
pub mod worlds;

use sbc_uc::hybrid::{Delivery, HybridCtx};
use sbc_uc::ids::{PartyId, Tag};
use sbc_uc::value::Value;

/// A broadcast channel with unfair-broadcast semantics: the interface that
/// higher protocols (`Π_FBC`, `Π_SBC`) program against, implemented both by
/// the ideal [`func::UbcFunc`] and the real [`protocol::UbcProtocol`].
pub trait UbcLayer {
    /// Honest broadcast input from `sender`.
    fn broadcast(&mut self, sender: PartyId, msg: Value, ctx: &mut HybridCtx<'_>);

    /// Adversarial broadcast on behalf of a corrupted `sender` (immediate
    /// delivery).
    fn adv_broadcast(
        &mut self,
        sender: PartyId,
        msg: Value,
        ctx: &mut HybridCtx<'_>,
    ) -> Vec<Delivery>;

    /// Adversarial substitution of an in-flight message. The `handle` is
    /// layer-specific: a tag (ideal) or an instance label (real).
    fn adv_allow(&mut self, handle: &Value, msg: Value, ctx: &mut HybridCtx<'_>) -> Vec<Delivery>;

    /// `Advance_Clock` pass-through from `party`; returns deliveries.
    fn advance(&mut self, party: PartyId, ctx: &mut HybridCtx<'_>) -> Vec<Delivery>;
}

impl UbcLayer for func::UbcFunc {
    fn broadcast(&mut self, sender: PartyId, msg: Value, ctx: &mut HybridCtx<'_>) {
        self.broadcast_honest(sender, msg, ctx);
    }

    fn adv_broadcast(
        &mut self,
        sender: PartyId,
        msg: Value,
        ctx: &mut HybridCtx<'_>,
    ) -> Vec<Delivery> {
        self.broadcast_corrupted(sender, msg, ctx)
    }

    fn adv_allow(&mut self, handle: &Value, msg: Value, ctx: &mut HybridCtx<'_>) -> Vec<Delivery> {
        let Some(bytes) = handle.as_bytes() else {
            return Vec::new();
        };
        let Some(tag) = Tag::from_bytes(bytes) else {
            return Vec::new();
        };
        self.allow(tag, msg, ctx)
    }

    fn advance(&mut self, party: PartyId, ctx: &mut HybridCtx<'_>) -> Vec<Delivery> {
        self.advance_clock(party, ctx)
    }
}
