//! The unfair broadcast functionality `F_UBC` (paper Fig. 8).
//!
//! Multi-sender, multi-message-per-round broadcast where the adversary sees
//! every honest message *before* delivery and — if it corrupts the sender
//! before her round completes — may substitute it (`Allow`). Delivery of an
//! honest sender's pending messages happens when that sender first forwards
//! `Advance_Clock` in a round.

use sbc_primitives::drbg::Drbg;
use sbc_uc::hybrid::{Delivery, HybridCtx};
use sbc_uc::ids::{PartyId, Tag};
use sbc_uc::value::{Command, Value};
use std::collections::HashMap;

/// Leak source label for `F_UBC`.
pub const UBC_SOURCE: &str = "F_UBC";

/// The functionality `F_UBC(P)`.
#[derive(Clone, Debug)]
pub struct UbcFunc {
    n: usize,
    /// `L_pend`: (tag, message, sender) in arrival order.
    pending: Vec<(Tag, Value, PartyId)>,
    /// Round of each party's last processed `Advance_Clock`.
    last_advance: HashMap<PartyId, u64>,
    /// Dedicated tag stream (forked per functionality so that a simulator
    /// mirroring this functionality reproduces identical tags).
    tag_rng: Drbg,
}

impl UbcFunc {
    /// Creates the functionality for `n` parties with its own tag stream.
    pub fn new(n: usize, tag_rng: Drbg) -> Self {
        UbcFunc {
            n,
            pending: Vec::new(),
            last_advance: HashMap::new(),
            tag_rng,
        }
    }

    /// Pending entries (for simulators / corruption requests).
    pub fn pending(&self) -> &[(Tag, Value, PartyId)] {
        &self.pending
    }

    /// Drops every queued-but-undelivered message. Used by multi-epoch
    /// drivers when a broadcast period closes: stale wires from the ended
    /// period must not bleed into the next one.
    pub fn clear_pending(&mut self) {
        self.pending.clear();
    }

    /// `Broadcast` from an honest party: queues the message and leaks
    /// `(tag, M, P)` to the adversary. Returns the tag.
    pub fn broadcast_honest(
        &mut self,
        sender: PartyId,
        msg: Value,
        ctx: &mut HybridCtx<'_>,
    ) -> Option<Tag> {
        if ctx.is_corrupted(sender) {
            return None;
        }
        let tag = Tag::random(&mut self.tag_rng);
        self.pending.push((tag, msg.clone(), sender));
        ctx.leak(
            UBC_SOURCE,
            Command::new(
                "Broadcast",
                Value::list([
                    Value::bytes(tag.as_bytes()),
                    msg,
                    Value::U64(sender.0 as u64),
                ]),
            ),
        );
        Some(tag)
    }

    /// `Broadcast` from the adversary on behalf of a corrupted party:
    /// immediate delivery to all parties.
    pub fn broadcast_corrupted(
        &mut self,
        sender: PartyId,
        msg: Value,
        ctx: &mut HybridCtx<'_>,
    ) -> Vec<Delivery> {
        if !ctx.is_corrupted(sender) {
            return Vec::new();
        }
        ctx.leak(
            UBC_SOURCE,
            Command::new(
                "Broadcast",
                Value::pair(msg.clone(), Value::U64(sender.0 as u64)),
            ),
        );
        Delivery::to_all(self.n, Command::new("Broadcast", msg))
    }

    /// `Allow` from the adversary: releases a pending message of a (now)
    /// corrupted sender with a substituted value.
    pub fn allow(&mut self, tag: Tag, msg: Value, ctx: &mut HybridCtx<'_>) -> Vec<Delivery> {
        let Some(idx) = self.pending.iter().position(|(t, _, _)| *t == tag) else {
            return Vec::new();
        };
        let sender = self.pending[idx].2;
        if !ctx.is_corrupted(sender) {
            return Vec::new();
        }
        self.pending.remove(idx);
        ctx.leak(
            UBC_SOURCE,
            Command::new(
                "Broadcast",
                Value::list([
                    Value::bytes(tag.as_bytes()),
                    msg.clone(),
                    Value::U64(sender.0 as u64),
                ]),
            ),
        );
        Delivery::to_all(self.n, Command::new("Broadcast", msg))
    }

    /// `Advance_Clock` from an honest party: first time per round, flushes
    /// that party's pending messages (in broadcast order) to all parties.
    pub fn advance_clock(&mut self, party: PartyId, ctx: &mut HybridCtx<'_>) -> Vec<Delivery> {
        let mut deliveries = Vec::new();
        for msg in self.take_flush(party, ctx) {
            deliveries.extend(Delivery::to_all(self.n, Command::new("Broadcast", msg)));
        }
        deliveries
    }

    /// The allocation-lean form of [`advance_clock`](UbcFunc::advance_clock):
    /// identical once-per-round / corruption semantics and identical leak
    /// emission, but each flushed message is returned **once** (moved out
    /// of the pending queue) instead of cloned into `n` per-recipient
    /// [`Delivery`] records. Every returned message is addressed to all of
    /// `0..n`, in order — the caller owns the fan-out, which lets the
    /// world deliver a broadcast by reference to every recipient instead
    /// of paying `messages × n` wire clones per delivery round.
    pub fn take_flush(&mut self, party: PartyId, ctx: &mut HybridCtx<'_>) -> Vec<Value> {
        if ctx.is_corrupted(party) {
            return Vec::new();
        }
        let now = ctx.time();
        if self.last_advance.get(&party) == Some(&now) {
            return Vec::new();
        }
        self.last_advance.insert(party, now);
        let mut flushed = Vec::new();
        let mut remaining = Vec::new();
        for (tag, msg, sender) in std::mem::take(&mut self.pending) {
            if sender == party {
                ctx.leak(
                    UBC_SOURCE,
                    Command::new(
                        "Broadcast",
                        Value::list([
                            Value::bytes(tag.as_bytes()),
                            msg.clone(),
                            Value::U64(sender.0 as u64),
                        ]),
                    ),
                );
                flushed.push(msg);
            } else {
                remaining.push((tag, msg, sender));
            }
        }
        self.pending = remaining;
        flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_primitives::drbg::Drbg;
    use sbc_uc::clock::GlobalClock;
    use sbc_uc::corruption::CorruptionTracker;

    struct Fx {
        clock: GlobalClock,
        rng: Drbg,
        leaks: Vec<sbc_uc::world::Leak>,
        corr: CorruptionTracker,
    }

    impl Fx {
        fn new(n: usize) -> Self {
            Fx {
                clock: GlobalClock::new(PartyId::all(n)),
                rng: Drbg::from_seed(b"ubc"),
                leaks: Vec::new(),
                corr: CorruptionTracker::new(n),
            }
        }
        fn ctx(&mut self) -> HybridCtx<'_> {
            HybridCtx {
                clock: &mut self.clock,
                rng: &mut self.rng,
                leaks: &mut self.leaks,
                corr: &mut self.corr,
            }
        }
    }

    #[test]
    fn honest_flow_flush_on_advance() {
        let mut fx = Fx::new(3);
        let mut f = UbcFunc::new(3, Drbg::from_seed(b"ubc-tags"));
        f.broadcast_honest(PartyId(0), Value::U64(1), &mut fx.ctx());
        f.broadcast_honest(PartyId(0), Value::U64(2), &mut fx.ctx());
        assert_eq!(f.pending().len(), 2);
        let ds = f.advance_clock(PartyId(0), &mut fx.ctx());
        // Two messages × three recipients, in broadcast order.
        assert_eq!(ds.len(), 6);
        assert_eq!(ds[0].cmd.value, Value::U64(1));
        assert_eq!(ds[3].cmd.value, Value::U64(2));
        assert!(f.pending().is_empty());
    }

    #[test]
    fn adversary_sees_message_before_delivery() {
        let mut fx = Fx::new(2);
        let mut f = UbcFunc::new(2, Drbg::from_seed(b"ubc-tags"));
        f.broadcast_honest(PartyId(1), Value::bytes(b"secret"), &mut fx.ctx());
        assert_eq!(fx.leaks.len(), 1);
        let leaked = &fx.leaks[0].cmd.value;
        assert_eq!(leaked.as_list().unwrap()[1], Value::bytes(b"secret"));
    }

    #[test]
    fn other_parties_advance_does_not_flush() {
        let mut fx = Fx::new(2);
        let mut f = UbcFunc::new(2, Drbg::from_seed(b"ubc-tags"));
        f.broadcast_honest(PartyId(0), Value::U64(1), &mut fx.ctx());
        assert!(f.advance_clock(PartyId(1), &mut fx.ctx()).is_empty());
        assert_eq!(f.pending().len(), 1);
    }

    #[test]
    fn second_advance_same_round_no_double_flush() {
        let mut fx = Fx::new(2);
        let mut f = UbcFunc::new(2, Drbg::from_seed(b"ubc-tags"));
        f.broadcast_honest(PartyId(0), Value::U64(1), &mut fx.ctx());
        let first = f.advance_clock(PartyId(0), &mut fx.ctx());
        assert_eq!(first.len(), 2);
        f.broadcast_honest(PartyId(0), Value::U64(2), &mut fx.ctx());
        // Same round: no flush of the new message.
        assert!(f.advance_clock(PartyId(0), &mut fx.ctx()).is_empty());
        assert_eq!(f.pending().len(), 1);
    }

    #[test]
    fn allow_substitutes_for_corrupted_sender() {
        let mut fx = Fx::new(2);
        let mut f = UbcFunc::new(2, Drbg::from_seed(b"ubc-tags"));
        let tag = f
            .broadcast_honest(PartyId(0), Value::U64(1), &mut fx.ctx())
            .unwrap();
        // Honest: Allow ignored.
        assert!(f.allow(tag, Value::U64(99), &mut fx.ctx()).is_empty());
        // Adaptive corruption mid-round → substitution succeeds (unfairness).
        fx.corr.corrupt(PartyId(0), 0).unwrap();
        let ds = f.allow(tag, Value::U64(99), &mut fx.ctx());
        assert_eq!(ds.len(), 2);
        assert_eq!(ds[0].cmd.value, Value::U64(99));
        assert!(f.pending().is_empty());
    }

    #[test]
    fn corrupted_broadcast_immediate() {
        let mut fx = Fx::new(3);
        fx.corr.corrupt(PartyId(2), 0).unwrap();
        let mut f = UbcFunc::new(3, Drbg::from_seed(b"ubc-tags"));
        let ds = f.broadcast_corrupted(PartyId(2), Value::U64(7), &mut fx.ctx());
        assert_eq!(ds.len(), 3);
    }

    #[test]
    fn corrupted_sender_pending_not_flushed() {
        let mut fx = Fx::new(2);
        let mut f = UbcFunc::new(2, Drbg::from_seed(b"ubc-tags"));
        f.broadcast_honest(PartyId(0), Value::U64(1), &mut fx.ctx());
        fx.corr.corrupt(PartyId(0), 0).unwrap();
        // Corrupted party's advance is ignored by the functionality.
        assert!(f.advance_clock(PartyId(0), &mut fx.ctx()).is_empty());
        assert_eq!(f.pending().len(), 1);
    }

    #[test]
    fn honest_broadcast_from_corrupted_rejected() {
        let mut fx = Fx::new(2);
        fx.corr.corrupt(PartyId(0), 0).unwrap();
        let mut f = UbcFunc::new(2, Drbg::from_seed(b"ubc-tags"));
        assert!(f
            .broadcast_honest(PartyId(0), Value::U64(1), &mut fx.ctx())
            .is_none());
    }
}
