//! The Dolev–Strong broadcast protocol `Π_RBC` (\[DS82], paper Fact 1).
//!
//! Realizes `F_RBC` over `F_cert` + synchronous channels against `t < n`
//! adaptive corruptions in `t + 1` rounds, using signature chains: a message
//! accepted in round `r` must carry `r` signatures from *distinct* signers
//! beginning with the sender's. Honest parties relay newly extracted values
//! with their own signature appended; after round `t + 1` a party outputs
//! the unique extracted value, or the default `⊥` if it extracted zero or
//! several values.
//!
//! The driver exposes per-round stepping plus raw injection hooks so the
//! experiment harness can run Byzantine strategies (equivocation, silence,
//! last-round chain injection).

use sbc_uc::cert::Certifier;
use sbc_uc::ids::PartyId;
use sbc_uc::net::SyncNet;
use sbc_uc::value::Value;
use std::collections::BTreeSet;

/// The default output `⊥` produced on equivocation or silence.
pub fn bottom() -> Value {
    Value::str("\u{22a5}")
}

/// One link of a signature chain: `(signer, signature)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainLink {
    /// The signing party.
    pub signer: PartyId,
    /// The signature over `(sid, message)`.
    pub signature: Vec<u8>,
}

fn chain_to_value(msg: &Value, chain: &[ChainLink]) -> Value {
    let links: Vec<Value> = chain
        .iter()
        .map(|l| Value::pair(Value::U64(l.signer.0 as u64), Value::bytes(&l.signature)))
        .collect();
    Value::pair(msg.clone(), Value::List(links))
}

fn value_to_chain(v: &Value) -> Option<(Value, Vec<ChainLink>)> {
    let items = v.as_list()?;
    if items.len() != 2 {
        return None;
    }
    let msg = items[0].clone();
    let mut chain = Vec::new();
    for link in items[1].as_list()? {
        let pair = link.as_list()?;
        if pair.len() != 2 {
            return None;
        }
        chain.push(ChainLink {
            signer: PartyId(u32::try_from(pair[0].as_u64()?).ok()?),
            signature: pair[1].as_bytes()?.to_vec(),
        });
    }
    Some((msg, chain))
}

/// A single Dolev–Strong broadcast instance.
#[derive(Debug)]
pub struct DolevStrong<C: Certifier> {
    sid: Vec<u8>,
    n: usize,
    t: usize,
    sender: PartyId,
    certs: Vec<C>,
    net: SyncNet,
    /// Completed protocol rounds (0 = pre-start).
    round: u64,
    corrupted: Vec<bool>,
    extracted: Vec<BTreeSet<Value>>,
    sigs_verified: u64,
}

impl<C: Certifier> DolevStrong<C> {
    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics unless `certs.len() == n`, `sender < n` and `t < n`.
    pub fn new(sid: impl Into<Vec<u8>>, t: usize, sender: PartyId, certs: Vec<C>) -> Self {
        let n = certs.len();
        assert!(n > 0 && sender.index() < n, "sender out of range");
        assert!(t < n, "need t < n");
        DolevStrong {
            sid: sid.into(),
            n,
            t,
            sender,
            certs,
            net: SyncNet::new(n),
            round: 0,
            corrupted: vec![false; n],
            extracted: vec![BTreeSet::new(); n],
            sigs_verified: 0,
        }
    }

    fn payload(&self, msg: &Value) -> Vec<u8> {
        let mut p = self.sid.clone();
        p.extend_from_slice(&msg.encode());
        p
    }

    /// Number of protocol rounds required: `t + 1`.
    pub fn rounds_required(&self) -> u64 {
        self.t as u64 + 1
    }

    /// Completed rounds so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Marks a party corrupted: it stops auto-relaying and its certifier
    /// accepts adversarial authorization.
    pub fn corrupt(&mut self, party: PartyId) {
        self.corrupted[party.index()] = true;
        self.certs[party.index()].set_corrupted();
    }

    /// Whether `party` is corrupted.
    pub fn is_corrupted(&self, party: PartyId) -> bool {
        self.corrupted[party.index()]
    }

    /// The sender starts an honest broadcast of `value` (round 0).
    pub fn start_honest(&mut self, value: Value) {
        let payload = self.payload(&value);
        let sig = self.certs[self.sender.index()].sign(&payload);
        let chain = vec![ChainLink {
            signer: self.sender,
            signature: sig,
        }];
        let wire = chain_to_value(&value, &chain);
        self.net.send_all(self.sender, wire);
        self.extracted[self.sender.index()].insert(value);
    }

    /// Adversary: signs `value` as a corrupted party (needed to build
    /// Byzantine chains). Returns `None` if the party is honest.
    pub fn adversary_sign(&mut self, party: PartyId, value: Value) -> Option<Vec<u8>> {
        if !self.corrupted[party.index()] {
            return None;
        }
        let payload = self.payload(&value);
        Some(self.certs[party.index()].sign(&payload))
    }

    /// Adversary: sends a raw `(message, chain)` from a corrupted party to a
    /// specific recipient (delivered next round). No-op for honest senders.
    pub fn adversary_send(
        &mut self,
        from: PartyId,
        to: PartyId,
        msg: Value,
        chain: Vec<ChainLink>,
    ) {
        if !self.corrupted[from.index()] {
            return;
        }
        self.net.send(from, to, chain_to_value(&msg, &chain));
    }

    fn chain_valid(&mut self, msg: &Value, chain: &[ChainLink], round: u64) -> bool {
        if chain.is_empty() || chain[0].signer != self.sender {
            return false;
        }
        if (chain.len() as u64) < round {
            return false;
        }
        let mut signers = BTreeSet::new();
        for link in chain {
            if !signers.insert(link.signer) || link.signer.index() >= self.n {
                return false;
            }
        }
        let payload = self.payload(msg);
        for link in chain {
            self.sigs_verified += 1;
            if !self.certs[link.signer.index()].verify(&payload, &link.signature) {
                return false;
            }
        }
        true
    }

    /// Runs one protocol round: delivers last round's messages, lets honest
    /// parties extract and relay. Returns the new completed-round count.
    pub fn step_round(&mut self) -> u64 {
        self.round += 1;
        let round = self.round;
        self.net.deliver_round();
        let mut relays: Vec<(PartyId, Value, Vec<ChainLink>)> = Vec::new();
        for i in 0..self.n {
            let p = PartyId(i as u32);
            let inbox = self.net.take_inbox(p);
            if self.corrupted[i] {
                continue; // Byzantine parties are driven by the adversary.
            }
            for net_msg in inbox {
                let Some((msg, chain)) = value_to_chain(&net_msg.payload) else {
                    continue;
                };
                if self.extracted[i].contains(&msg) || self.extracted[i].len() >= 2 {
                    continue; // two extracted values already force ⊥
                }
                if !self.chain_valid(&msg, &chain, round) {
                    continue;
                }
                self.extracted[i].insert(msg.clone());
                if round <= self.t as u64 && !chain.iter().any(|l| l.signer == p) {
                    let payload = self.payload(&msg);
                    let sig = self.certs[i].sign(&payload);
                    let mut new_chain = chain.clone();
                    new_chain.push(ChainLink {
                        signer: p,
                        signature: sig,
                    });
                    relays.push((p, msg.clone(), new_chain));
                }
            }
        }
        for (p, msg, chain) in relays {
            let wire = chain_to_value(&msg, &chain);
            self.net.send_all(p, wire);
        }
        self.round
    }

    /// Whether all `t + 1` rounds have completed.
    pub fn is_complete(&self) -> bool {
        self.round >= self.rounds_required()
    }

    /// Runs all remaining rounds with no adversarial interference.
    pub fn run_to_completion(&mut self) {
        while !self.is_complete() {
            self.step_round();
        }
    }

    /// Party outputs after completion: the unique extracted value, else `⊥`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`is_complete`](Self::is_complete).
    pub fn outputs(&self) -> Vec<Value> {
        assert!(self.is_complete(), "protocol still running");
        self.extracted
            .iter()
            .map(|set| {
                if set.len() == 1 {
                    set.iter().next().expect("len 1").clone()
                } else {
                    bottom()
                }
            })
            .collect()
    }

    /// `(messages sent, payload bytes, signatures verified)` cost counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.net.sent_total(),
            self.net.bytes_total(),
            self.sigs_verified,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_primitives::drbg::Drbg;
    use sbc_uc::cert::IdealCert;

    fn instance(n: usize, t: usize, sender: u32) -> DolevStrong<IdealCert> {
        let mut rng = Drbg::from_seed(b"ds-tests");
        let certs = (0..n as u32)
            .map(|i| IdealCert::new(PartyId(i), rng.fork(&i.to_be_bytes())))
            .collect();
        DolevStrong::new(b"sid-1".to_vec(), t, PartyId(sender), certs)
    }

    fn honest_outputs(ds: &DolevStrong<IdealCert>) -> Vec<Value> {
        ds.outputs()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !ds.is_corrupted(PartyId(*i as u32)))
            .map(|(_, v)| v)
            .collect()
    }

    #[test]
    fn honest_sender_validity() {
        for (n, t) in [(3, 1), (4, 3), (5, 2)] {
            let mut ds = instance(n, t, 0);
            ds.start_honest(Value::bytes(b"hello"));
            ds.run_to_completion();
            for out in ds.outputs() {
                assert_eq!(out, Value::bytes(b"hello"), "n={n} t={t}");
            }
            assert_eq!(ds.round(), t as u64 + 1);
        }
    }

    #[test]
    fn silent_sender_outputs_bottom() {
        let mut ds = instance(4, 2, 1);
        ds.run_to_completion();
        for out in ds.outputs() {
            assert_eq!(out, bottom());
        }
    }

    #[test]
    fn equivocating_sender_agreement() {
        // Corrupted sender signs two values and sends different ones to
        // different parties. All honest parties must still agree.
        let mut ds = instance(4, 2, 0);
        ds.corrupt(PartyId(0));
        let m1 = Value::bytes(b"one");
        let m2 = Value::bytes(b"two");
        let s1 = ds.adversary_sign(PartyId(0), m1.clone()).unwrap();
        let s2 = ds.adversary_sign(PartyId(0), m2.clone()).unwrap();
        ds.adversary_send(
            PartyId(0),
            PartyId(1),
            m1.clone(),
            vec![ChainLink {
                signer: PartyId(0),
                signature: s1,
            }],
        );
        ds.adversary_send(
            PartyId(0),
            PartyId(2),
            m2.clone(),
            vec![ChainLink {
                signer: PartyId(0),
                signature: s2,
            }],
        );
        ds.run_to_completion();
        let outs = honest_outputs(&ds);
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "agreement: {outs:?}");
        // Relaying guarantees both values reach everyone → all output ⊥.
        assert_eq!(outs[0], bottom());
    }

    #[test]
    fn one_sided_send_still_agrees() {
        // Corrupted sender sends (validly signed) value to only one party;
        // relaying must spread it so all honest parties output it.
        let mut ds = instance(4, 2, 0);
        ds.corrupt(PartyId(0));
        let m = Value::bytes(b"partial");
        let s = ds.adversary_sign(PartyId(0), m.clone()).unwrap();
        ds.adversary_send(
            PartyId(0),
            PartyId(2),
            m.clone(),
            vec![ChainLink {
                signer: PartyId(0),
                signature: s,
            }],
        );
        ds.run_to_completion();
        let outs = honest_outputs(&ds);
        for o in &outs {
            assert_eq!(o, &m);
        }
    }

    #[test]
    fn last_round_injection_rejected() {
        // A chain with too few signatures arriving in the last round is
        // rejected, preserving agreement.
        let mut ds = instance(4, 2, 0);
        ds.corrupt(PartyId(0));
        ds.corrupt(PartyId(1));
        let m_main = Value::bytes(b"main");
        let s_main = ds.adversary_sign(PartyId(0), m_main.clone()).unwrap();
        ds.adversary_send(
            PartyId(0),
            PartyId(2),
            m_main.clone(),
            vec![ChainLink {
                signer: PartyId(0),
                signature: s_main.clone(),
            }],
        );
        ds.adversary_send(
            PartyId(0),
            PartyId(3),
            m_main.clone(),
            vec![ChainLink {
                signer: PartyId(0),
                signature: s_main,
            }],
        );
        ds.step_round(); // round 1
        ds.step_round(); // round 2
                         // Now inject a fresh value with a 1-link chain into P2 only, for
                         // delivery in round 3 = t+1 (needs 3 signatures; has 1) → rejected.
        let m_late = Value::bytes(b"late");
        let s_late = ds.adversary_sign(PartyId(0), m_late.clone()).unwrap();
        ds.adversary_send(
            PartyId(0),
            PartyId(2),
            m_late,
            vec![ChainLink {
                signer: PartyId(0),
                signature: s_late,
            }],
        );
        ds.step_round();
        assert!(ds.is_complete());
        let outs = honest_outputs(&ds);
        assert_eq!(outs[0], outs[1], "agreement despite late injection");
        assert_eq!(outs[0], m_main);
    }

    #[test]
    fn valid_last_round_chain_accepted_with_honest_signer() {
        // A chain containing an honest signature got relayed by that honest
        // party — both honest parties converge. Here we build a full t+1
        // chain where the honest P2's signature is simulated by having P2
        // extract in an earlier round via normal operation. This test checks
        // that a full-length corrupted-only chain (t+1 = 3 > t = 2 distinct
        // corrupted signers impossible) cannot exist: only 2 corrupted
        // parties → max chain of corrupted-only links is 2 < 3.
        let mut ds = instance(4, 2, 0);
        ds.corrupt(PartyId(0));
        ds.corrupt(PartyId(1));
        let m = Value::bytes(b"sneak");
        let s0 = ds.adversary_sign(PartyId(0), m.clone()).unwrap();
        let s1 = ds.adversary_sign(PartyId(1), m.clone()).unwrap();
        ds.step_round();
        ds.step_round();
        // Chain of 2 corrupted sigs delivered in round 3: too short.
        ds.adversary_send(
            PartyId(0),
            PartyId(2),
            m,
            vec![
                ChainLink {
                    signer: PartyId(0),
                    signature: s0,
                },
                ChainLink {
                    signer: PartyId(1),
                    signature: s1,
                },
            ],
        );
        ds.step_round();
        let outs = honest_outputs(&ds);
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0], bottom(), "no value was properly broadcast");
    }

    #[test]
    fn forged_signature_rejected() {
        let mut ds = instance(3, 1, 0);
        ds.corrupt(PartyId(1));
        // P1 (corrupted, not sender) fabricates a chain with a bogus sender
        // signature.
        ds.adversary_send(
            PartyId(1),
            PartyId(2),
            Value::bytes(b"forged"),
            vec![ChainLink {
                signer: PartyId(0),
                signature: b"not-a-real-sig".to_vec(),
            }],
        );
        ds.run_to_completion();
        assert_eq!(honest_outputs(&ds)[1], bottom());
    }

    #[test]
    fn duplicate_signers_rejected() {
        let mut ds = instance(3, 1, 0);
        ds.corrupt(PartyId(0));
        let m = Value::bytes(b"dup");
        let s = ds.adversary_sign(PartyId(0), m.clone()).unwrap();
        ds.step_round();
        // Round-2 delivery needs 2 distinct signers; duplicate is invalid.
        ds.adversary_send(
            PartyId(0),
            PartyId(1),
            m,
            vec![
                ChainLink {
                    signer: PartyId(0),
                    signature: s.clone(),
                },
                ChainLink {
                    signer: PartyId(0),
                    signature: s,
                },
            ],
        );
        ds.step_round();
        assert_eq!(honest_outputs(&ds)[0], bottom());
    }

    #[test]
    fn message_complexity_all_honest() {
        let mut ds = instance(4, 1, 0);
        ds.start_honest(Value::U64(1));
        ds.run_to_completion();
        let (msgs, _, _) = ds.stats();
        // Round 0: sender → n. Round 1: 3 non-sender extractors relay → 3n.
        assert_eq!(msgs, 4 + 3 * 4);
    }

    #[test]
    #[should_panic(expected = "still running")]
    fn outputs_before_completion_panics() {
        let ds = instance(3, 1, 0);
        ds.outputs();
    }
}
