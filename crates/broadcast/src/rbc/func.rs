//! The relaxed broadcast functionality `F_RBC` (paper Fig. 6).
//!
//! One instance broadcasts a *single* message. It guarantees agreement and
//! termination, but only weak validity: if the sender is honest *throughout*
//! and completes her round, every honest party outputs her message; if the
//! sender is (or becomes) corrupted, the adversary may substitute the value
//! via `Allow` before delivery.

use sbc_uc::hybrid::{Delivery, HybridCtx};
use sbc_uc::ids::PartyId;
use sbc_uc::value::{Command, Value};

/// State of one `F_RBC` instance.
#[derive(Clone, Debug, Default)]
pub struct RbcFunc {
    /// `(Output, Sender)` — set on the first honest broadcast.
    pending: Option<(Value, PartyId)>,
    halted: bool,
    n: usize,
    /// Label used in leakage (`F_RBC[P,i]` for the i-th instance of P).
    label: String,
}

impl RbcFunc {
    /// Creates an instance for `n` parties with a leakage `label`.
    pub fn new(n: usize, label: impl Into<String>) -> Self {
        RbcFunc {
            pending: None,
            halted: false,
            n,
            label: label.into(),
        }
    }

    /// Whether the instance has delivered and halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The recorded (pending) output and sender, if any.
    pub fn pending(&self) -> Option<&(Value, PartyId)> {
        self.pending.as_ref()
    }

    /// `Broadcast` from an honest party: records the output/sender pair and
    /// leaks `(Broadcast, M, P)` to the adversary.
    pub fn broadcast_honest(&mut self, sender: PartyId, msg: Value, ctx: &mut HybridCtx<'_>) {
        if self.halted || self.pending.is_some() || ctx.is_corrupted(sender) {
            return;
        }
        self.pending = Some((msg.clone(), sender));
        ctx.leak(
            self.label.clone(),
            Command::new("Broadcast", Value::pair(msg, Value::U64(sender.0 as u64))),
        );
    }

    /// `Broadcast` from the adversary on behalf of a corrupted party:
    /// delivers immediately to all parties and halts.
    pub fn broadcast_corrupted(
        &mut self,
        sender: PartyId,
        msg: Value,
        ctx: &mut HybridCtx<'_>,
    ) -> Vec<Delivery> {
        if self.halted || self.pending.is_some() || !ctx.is_corrupted(sender) {
            return Vec::new();
        }
        self.halted = true;
        let cmd = Command::new(
            "Broadcast",
            Value::pair(msg.clone(), Value::U64(sender.0 as u64)),
        );
        ctx.leak(self.label.clone(), cmd.clone());
        Delivery::to_all(self.n, cmd)
    }

    /// `Allow` from the adversary: if the recorded sender is corrupted,
    /// substitutes the message and delivers to all parties.
    pub fn allow(&mut self, msg: Value, ctx: &mut HybridCtx<'_>) -> Vec<Delivery> {
        if self.halted {
            return Vec::new();
        }
        let Some((_, sender)) = self.pending else {
            return Vec::new();
        };
        if !ctx.is_corrupted(sender) {
            return Vec::new();
        }
        self.halted = true;
        let cmd = Command::new(
            "Broadcast",
            Value::pair(msg.clone(), Value::U64(sender.0 as u64)),
        );
        ctx.leak(self.label.clone(), cmd.clone());
        Delivery::to_all(self.n, cmd)
    }

    /// `Advance_Clock` from an honest party: if it is the recorded sender,
    /// the instance delivers her output to all parties and halts.
    pub fn advance_clock(&mut self, party: PartyId, ctx: &mut HybridCtx<'_>) -> Vec<Delivery> {
        if self.halted || ctx.is_corrupted(party) {
            return Vec::new();
        }
        match &self.pending {
            Some((output, sender)) if *sender == party => {
                self.halted = true;
                let cmd = Command::new(
                    "Broadcast",
                    Value::pair(output.clone(), Value::U64(sender.0 as u64)),
                );
                ctx.leak(self.label.clone(), cmd.clone());
                Delivery::to_all(self.n, cmd)
            }
            _ => Vec::new(),
        }
    }
}

/// Parses an `F_RBC` delivery back into `(message, sender)`.
pub fn parse_rbc_delivery(cmd: &Command) -> Option<(Value, PartyId)> {
    if cmd.name != "Broadcast" {
        return None;
    }
    let items = cmd.value.as_list()?;
    if items.len() != 2 {
        return None;
    }
    let sender = PartyId(u32::try_from(items[1].as_u64()?).ok()?);
    Some((items[0].clone(), sender))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_primitives::drbg::Drbg;
    use sbc_uc::clock::GlobalClock;
    use sbc_uc::corruption::CorruptionTracker;

    struct Fixture {
        clock: GlobalClock,
        rng: Drbg,
        leaks: Vec<sbc_uc::world::Leak>,
        corr: CorruptionTracker,
    }

    impl Fixture {
        fn new(n: usize) -> Self {
            Fixture {
                clock: GlobalClock::new(PartyId::all(n)),
                rng: Drbg::from_seed(b"rbc"),
                leaks: Vec::new(),
                corr: CorruptionTracker::new(n),
            }
        }
        fn ctx(&mut self) -> HybridCtx<'_> {
            HybridCtx {
                clock: &mut self.clock,
                rng: &mut self.rng,
                leaks: &mut self.leaks,
                corr: &mut self.corr,
            }
        }
    }

    #[test]
    fn honest_broadcast_delivers_on_sender_advance() {
        let mut fx = Fixture::new(3);
        let mut f = RbcFunc::new(3, "F_RBC[P0,1]");
        f.broadcast_honest(PartyId(0), Value::bytes(b"m"), &mut fx.ctx());
        assert!(!f.is_halted());
        // Another party advancing does nothing.
        assert!(f.advance_clock(PartyId(1), &mut fx.ctx()).is_empty());
        let deliveries = f.advance_clock(PartyId(0), &mut fx.ctx());
        assert_eq!(deliveries.len(), 3);
        assert!(f.is_halted());
        let (m, s) = parse_rbc_delivery(&deliveries[0].cmd).unwrap();
        assert_eq!(m, Value::bytes(b"m"));
        assert_eq!(s, PartyId(0));
    }

    #[test]
    fn leak_precedes_delivery() {
        let mut fx = Fixture::new(2);
        let mut f = RbcFunc::new(2, "F_RBC[P0,1]");
        f.broadcast_honest(PartyId(0), Value::U64(9), &mut fx.ctx());
        assert_eq!(fx.leaks.len(), 1, "adversary sees message before delivery");
    }

    #[test]
    fn allow_only_for_corrupted_sender() {
        let mut fx = Fixture::new(2);
        let mut f = RbcFunc::new(2, "l");
        f.broadcast_honest(PartyId(0), Value::U64(1), &mut fx.ctx());
        // Honest sender: Allow ignored (fairness of RBC's weak validity).
        assert!(f.allow(Value::U64(2), &mut fx.ctx()).is_empty());
        // Corrupt mid-round, now Allow substitutes.
        fx.corr.corrupt(PartyId(0), 0).unwrap();
        let ds = f.allow(Value::U64(2), &mut fx.ctx());
        assert_eq!(ds.len(), 2);
        assert_eq!(parse_rbc_delivery(&ds[0].cmd).unwrap().0, Value::U64(2));
    }

    #[test]
    fn corrupted_broadcast_immediate() {
        let mut fx = Fixture::new(2);
        fx.corr.corrupt(PartyId(1), 0).unwrap();
        let mut f = RbcFunc::new(2, "l");
        let ds = f.broadcast_corrupted(PartyId(1), Value::U64(5), &mut fx.ctx());
        assert_eq!(ds.len(), 2);
        assert!(f.is_halted());
    }

    #[test]
    fn single_shot_semantics() {
        let mut fx = Fixture::new(2);
        let mut f = RbcFunc::new(2, "l");
        f.broadcast_honest(PartyId(0), Value::U64(1), &mut fx.ctx());
        f.broadcast_honest(PartyId(1), Value::U64(2), &mut fx.ctx()); // ignored
        let ds = f.advance_clock(PartyId(0), &mut fx.ctx());
        assert_eq!(parse_rbc_delivery(&ds[0].cmd).unwrap().0, Value::U64(1));
        // After halt everything is inert.
        assert!(f.advance_clock(PartyId(0), &mut fx.ctx()).is_empty());
        assert!(f.allow(Value::U64(9), &mut fx.ctx()).is_empty());
    }

    #[test]
    fn corrupted_party_cannot_broadcast_as_honest() {
        let mut fx = Fixture::new(2);
        fx.corr.corrupt(PartyId(0), 0).unwrap();
        let mut f = RbcFunc::new(2, "l");
        f.broadcast_honest(PartyId(0), Value::U64(1), &mut fx.ctx());
        assert!(f.pending().is_none());
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_rbc_delivery(&Command::new("Other", Value::Unit)).is_none());
        assert!(parse_rbc_delivery(&Command::new("Broadcast", Value::U64(1))).is_none());
    }
}
