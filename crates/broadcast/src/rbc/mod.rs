//! Relaxed broadcast (RBC): the single-message functionality `F_RBC`
//! (Fig. 6) and the Dolev–Strong protocol realizing it (Fact 1).

pub mod dolev_strong;
pub mod func;
