//! Real and ideal worlds for fair broadcast, and the Lemma 2 simulator.
//!
//! * [`RealFbcWorld`] — parties run `Π_FBC` (Fig. 11) over the ideal
//!   `F_UBC`, the wrapped oracle `W_q(F*_RO)`, the programmable `F_RO` and
//!   `G_clock` — exactly the hybrid model of Lemma 2.
//! * [`IdealFbcWorld`] — dummy parties talk to `F_FBC(∆=2, α=2)`; the
//!   simulator [`SimFbc`] (Appendix B) fabricates time-lock ciphertexts of
//!   random values, uses its α-advantage (`Output_Request` at the broadcast
//!   round itself) to learn each message just in time to equivocate the
//!   random oracle, and solves adversarial ciphertexts itself to extract
//!   the values it feeds back to the functionality.
//!
//! Corrupted parties follow the protocol by default (matching the
//! functionality's guaranteed delivery of requested broadcasts); the
//! adversary deviates through explicit commands: `Substitute` (pre-lock
//! message replacement — Fig. 10's `Allow`), `SendAs` (ciphertext
//! injection), `W_q`/`F_RO` queries (its own hashing budget).

use crate::fbc::func::{FbcFunc, FbcRecord};
use crate::fbc::protocol::{
    decode_masked, draw_chain_randomness, encrypt_with_randomness, fbc_wire, parse_fbc_wire,
    FbcParty,
};
use crate::ubc::func::{UbcFunc, UBC_SOURCE};
use sbc_primitives::drbg::Drbg;
use sbc_primitives::hashchain::{ChainSolver, Element};
use sbc_uc::clock::ClockEntity;
use sbc_uc::exec::SbcWorld;
use sbc_uc::ids::{PartyId, Tag};
use sbc_uc::ro::{Caller, RandomOracle};
use sbc_uc::value::{Command, Value};
use sbc_uc::world::{AdvCommand, Leak, World, WorldCore};
use sbc_uc::wrapper::{QueryWrapper, WrapperClient};

/// The fair-broadcast delay realized by `Π_FBC`.
pub const FBC_DELTA: u64 = 2;
/// The simulator advantage realized by `Π_FBC`.
pub const FBC_ALPHA: u64 = 2;

fn fork_streams(core: &mut WorldCore) -> (Drbg, Drbg, Drbg, Drbg, Vec<Drbg>) {
    // Both worlds fork the same labels in the same order so every stream
    // matches bit-for-bit across real and ideal executions.
    let ro_star = core.rng.fork(b"ro/star");
    let ro = core.rng.fork(b"ro/fro");
    let ubc_tags = core.rng.fork(b"tags/F_UBC");
    let fbc_tags = core.rng.fork(b"tags/F_FBC");
    let parties = (0..core.n())
        .map(|i| core.rng.fork(format!("party/{i}").as_bytes()))
        .collect();
    (ro_star, ro, ubc_tags, fbc_tags, parties)
}

fn is_last_honest_advance(core: &WorldCore, party: PartyId) -> bool {
    core.clock.waiting_on() == vec![ClockEntity::Party(party)]
}

fn shared_adversary_control(
    target: &str,
    cmd: &Command,
    wrapper: &mut QueryWrapper,
    ro_star: &mut RandomOracle,
    ro: &mut RandomOracle,
    now: u64,
) -> Option<Value> {
    match (target, cmd.name.as_str()) {
        ("F_RO", "Query") => {
            let x = cmd.value.as_bytes()?;
            Some(Value::bytes(ro.query(Caller::Adversary, x)))
        }
        ("W_q", "Evaluate") => {
            let batch: Vec<Vec<u8>> = cmd
                .value
                .as_list()?
                .iter()
                .filter_map(|v| v.as_bytes().map(|b| b.to_vec()))
                .collect();
            match wrapper.evaluate(ro_star, now, WrapperClient::Corrupted, &batch) {
                Ok(resp) => Some(Value::List(resp.iter().map(Value::bytes).collect())),
                Err(_) => Some(Value::str("exhausted")),
            }
        }
        _ => None,
    }
}

/// The real world: `Π_FBC` over `F_UBC` + `W_q(F*_RO)` + `F_RO` + `G_clock`.
#[derive(Debug)]
pub struct RealFbcWorld {
    core: WorldCore,
    parties: Vec<FbcParty>,
    ubc: UbcFunc,
    wrapper: QueryWrapper,
    ro_star: RandomOracle,
    ro: RandomOracle,
}

impl RealFbcWorld {
    /// Creates the world (`q` wrapper batches per round).
    pub fn new(n: usize, q: u32, seed: &[u8]) -> Self {
        let mut core = WorldCore::new(n, seed);
        let (ro_star_rng, ro_rng, ubc_tags, _fbc_tags, party_rngs) = fork_streams(&mut core);
        let parties = party_rngs
            .into_iter()
            .enumerate()
            .map(|(i, rng)| FbcParty::new(PartyId(i as u32), q, rng))
            .collect();
        RealFbcWorld {
            core,
            parties,
            ubc: UbcFunc::new(n, ubc_tags),
            wrapper: QueryWrapper::new(q),
            ro_star: RandomOracle::new(ro_star_rng),
            ro: RandomOracle::new(ro_rng),
        }
    }

    fn distribute(&mut self, deliveries: Vec<sbc_uc::hybrid::Delivery>) {
        let now = self.core.clock.read();
        for d in deliveries {
            self.parties[d.to.index()].on_ubc_deliver(&d.cmd.value, now);
        }
    }

    fn run_corrupted_steps(&mut self) {
        let now = self.core.clock.read();
        let corrupted: Vec<PartyId> = self.core.corr.corrupted().collect();
        for c in corrupted {
            let bs = self.parties[c.index()].corrupted_step(
                now,
                &mut self.wrapper,
                &mut self.ro_star,
                &mut self.ro,
            );
            for b in bs {
                let ds = {
                    let mut ctx = self.core.ctx();
                    self.ubc.broadcast_corrupted(c, b, &mut ctx)
                };
                self.distribute(ds);
            }
        }
    }
}

impl World for RealFbcWorld {
    fn n(&self) -> usize {
        self.core.n()
    }

    fn time(&self) -> u64 {
        self.core.clock.read()
    }

    fn input(&mut self, party: PartyId, cmd: Command) {
        if cmd.name == "Broadcast" && !self.core.corr.is_corrupted(party) {
            self.parties[party.index()].on_input(cmd.value);
        }
    }

    fn advance(&mut self, party: PartyId) {
        if self.core.corr.is_corrupted(party) {
            return;
        }
        if is_last_honest_advance(&self.core, party) {
            self.run_corrupted_steps();
        }
        let now = self.core.clock.read();
        let res = self.parties[party.index()].advance_step(
            now,
            &mut self.wrapper,
            &mut self.ro_star,
            &mut self.ro,
        );
        for b in res.broadcasts {
            let mut ctx = self.core.ctx();
            self.ubc.broadcast_honest(party, b, &mut ctx);
        }
        for m in res.outputs {
            self.core
                .outputs
                .push((party, Command::new("Broadcast", m)));
        }
        let ds = {
            let mut ctx = self.core.ctx();
            self.ubc.advance_clock(party, &mut ctx)
        };
        self.distribute(ds);
        self.core.clock.advance_party(party);
    }

    fn adversary(&mut self, cmd: AdvCommand) -> Value {
        let now = self.core.clock.read();
        match cmd {
            AdvCommand::Corrupt(p) => {
                if !self.core.corrupt(p) {
                    return Value::Bool(false);
                }
                Value::List(self.parties[p.index()].pending().to_vec())
            }
            AdvCommand::SendAs { party, cmd } if cmd.name == "Broadcast" => {
                let ds = {
                    let mut ctx = self.core.ctx();
                    self.ubc.broadcast_corrupted(party, cmd.value, &mut ctx)
                };
                self.distribute(ds);
                Value::Unit
            }
            AdvCommand::Control { target, cmd } => {
                if let Some(resp) = shared_adversary_control(
                    &target,
                    &cmd,
                    &mut self.wrapper,
                    &mut self.ro_star,
                    &mut self.ro,
                    now,
                ) {
                    return resp;
                }
                if cmd.name == "Substitute" {
                    if let Some((p, idx, msg)) = parse_substitute(&target, &cmd.value) {
                        if self.core.corr.is_corrupted(p) {
                            return Value::Bool(self.parties[p.index()].substitute(idx, msg));
                        }
                    }
                }
                Value::Unit
            }
            _ => Value::Unit,
        }
    }

    fn drain_outputs(&mut self) -> Vec<(PartyId, Command)> {
        std::mem::take(&mut self.core.outputs)
    }

    fn drain_leaks(&mut self) -> Vec<Leak> {
        std::mem::take(&mut self.core.leaks)
    }

    fn is_corrupted(&self, party: PartyId) -> bool {
        self.core.corr.is_corrupted(party)
    }
}

impl SbcWorld for RealFbcWorld {
    /// Drops queued and in-flight broadcasts at every party plus
    /// undelivered `F_UBC` wires. Fair broadcast has no period notion of
    /// its own, so [`release_round`](SbcWorld::release_round) /
    /// [`period_end`](SbcWorld::period_end) stay `None`.
    fn begin_new_period(&mut self) {
        for p in &mut self.parties {
            p.reset_period();
        }
        self.ubc.clear_pending();
    }

    fn release_round(&self) -> Option<u64> {
        None
    }

    fn period_end(&self) -> Option<u64> {
        None
    }

    /// Party-sharded round for the fair-broadcast stack, in the
    /// **warm-cache** variant of the compute/merge split: `Π_FBC`'s round
    /// cost is dominated by sequential hash-chain evaluation (every
    /// wrapper batch is `F*_RO` queries — one HMAC per chain link per
    /// in-flight ciphertext), and both oracles are input-addressed, so the
    /// values are order-independent.
    ///
    /// * **Parallel compute phase:** each honest party's round step runs
    ///   on *clones* of its state and of the shared wrapper/oracles (an
    ///   immutable round snapshot — parties interact only through
    ///   deliveries, which take effect next round), with the cloned
    ///   oracles journaling every freshly computed point.
    /// * **Serial merge phase:** the journaled points
    ///   [`warm`](RandomOracle::warm) the live oracles — a pure cache
    ///   operation, unobservable in a world where nobody programs the
    ///   oracle — and then the **unchanged serial reference loop** runs,
    ///   hitting the warm memo tables instead of recomputing HMAC chains.
    ///
    /// Because the merge is literally [`tick`](SbcWorld::tick), transcript
    /// equality with the serial schedule holds unconditionally: a
    /// mispredicted plan can only warm extra (still PRF-consistent) cache
    /// entries, never change an observable.
    fn tick_sharded(&mut self, shards: &dyn sbc_uc::exec::ShardRunner) {
        if self.core.n() <= 1 || self.core.clock.mid_round() {
            return self.tick();
        }
        let now = self.core.clock.read();
        type PointPair = (Vec<sbc_uc::ro::RoPoint>, Vec<sbc_uc::ro::RoPoint>);
        let points: Vec<PointPair> = {
            let parties = &self.parties;
            let wrapper = &self.wrapper;
            let ro_star = &self.ro_star;
            let ro = &self.ro;
            let corr = &self.core.corr;
            let jobs: Vec<_> = sbc_uc::exec::shard_ranges(parties.len(), shards.width())
                .into_iter()
                .map(|range| {
                    move || {
                        // One snapshot clone per shard job, not per party:
                        // the memo tables grow with the whole execution
                        // history, so per-party deep clones would cost more
                        // than the hashing they save. Sharing the clones
                        // across the range's parties only changes which
                        // points get journaled (later parties cache-hit
                        // what earlier ones computed — already journaled),
                        // never their values; a cross-party interaction the
                        // shared clone mispredicts can at worst warm extra
                        // PRF-consistent entries, which the merge phase's
                        // warm-only semantics make unobservable.
                        let mut w = wrapper.clone();
                        let mut rs = ro_star.clone();
                        let mut r = ro.clone();
                        rs.record_fresh_points();
                        r.record_fresh_points();
                        for i in range {
                            if corr.is_corrupted(PartyId(i as u32)) {
                                continue;
                            }
                            let _ = parties[i]
                                .clone()
                                .advance_step(now, &mut w, &mut rs, &mut r);
                        }
                        (rs.take_recorded(), r.take_recorded())
                    }
                })
                .collect();
            sbc_uc::exec::run_shards(shards, jobs)
        };
        for (star, plain) in points {
            self.ro_star.warm(&star);
            self.ro.warm(&plain);
        }
        self.tick();
    }
}

fn parse_substitute(target: &str, value: &Value) -> Option<(PartyId, usize, Value)> {
    let p = target.strip_prefix('P')?.parse().ok()?;
    let items = value.as_list()?;
    if items.len() != 2 {
        return None;
    }
    Some((PartyId(p), items[0].as_u64()? as usize, items[1].clone()))
}

/// One simulated pending broadcast: the functionality tag plus any
/// adversarial substitution the simulator has already forwarded.
#[derive(Clone, Debug)]
struct SimEntry {
    tag: Tag,
    override_msg: Option<Value>,
}

/// The simulator `S_FBC` from the proof of Lemma 2 (Appendix B).
#[derive(Debug)]
pub struct SimFbc {
    q: u32,
    party_rngs: Vec<Drbg>,
    ubc_tag_rng: Drbg,
    queues: Vec<Vec<SimEntry>>,
    corrupted_last_step: Vec<Option<u64>>,
    would_abort: bool,
}

impl SimFbc {
    fn new(q: u32, party_rngs: Vec<Drbg>, ubc_tag_rng: Drbg) -> Self {
        let n = party_rngs.len();
        SimFbc {
            q,
            party_rngs,
            ubc_tag_rng,
            queues: vec![Vec::new(); n],
            corrupted_last_step: vec![None; n],
            would_abort: false,
        }
    }

    /// Whether a paper-abort event (adversary pre-querying a hidden point)
    /// occurred. Happens with probability 2^{-λ} against real adversaries;
    /// asserted `false` by the experiments.
    pub fn would_abort(&self) -> bool {
        self.would_abort
    }

    /// Forgets the shadow queues of an ended period. The mirrored party
    /// randomness streams carry over, and the sticky abort flag survives.
    fn begin_new_period(&mut self) {
        for q in &mut self.queues {
            q.clear();
        }
    }

    fn on_broadcast_leak(&mut self, tag: Tag, sender: PartyId) {
        self.queues[sender.index()].push(SimEntry {
            tag,
            override_msg: None,
        });
    }

    /// Simulates an honest party's round step: fabricate `(c, y)` per queued
    /// tag, learn the message via `Output_Request` (the α-advantage),
    /// equivocate `F_RO`, and emit the two `F_UBC` leaks the real adversary
    /// would see.
    #[allow(clippy::too_many_arguments)]
    fn honest_advance(
        &mut self,
        party: PartyId,
        now: u64,
        ffbc: &mut FbcFunc,
        ro_star: &mut RandomOracle,
        ro: &mut RandomOracle,
        ctx: &mut sbc_uc::hybrid::HybridCtx<'_>,
        leaks_out: &mut Vec<Leak>,
    ) {
        let entries = std::mem::take(&mut self.queues[party.index()]);
        if entries.is_empty() {
            return;
        }
        // Mirror protocol step 1: all chain randomness first.
        let rand_sets: Vec<Vec<Element>> = entries
            .iter()
            .map(|_| draw_chain_randomness(&mut self.party_rngs[party.index()], self.q))
            .collect();
        let mut input_leaks = Vec::new();
        for (entry, rs) in entries.iter().zip(rand_sets.iter()) {
            let hashes: Vec<Element> = rs
                .iter()
                .map(|r| ro_star.query(Caller::Simulator, r))
                .collect();
            let (rho, ct) =
                encrypt_with_randomness(&mut self.party_rngs[party.index()], rs, &hashes);
            let rec: FbcRecord = ffbc
                .output_request(entry.tag, ctx)
                .expect("environment must deliver inputs within the sender's round");
            if ro.adversary_queried(&rho) {
                self.would_abort = true;
            }
            let eta = ro.query(Caller::Simulator, &rho);
            let y = xor_mask_msg(&eta, &rec.msg);
            let wire = fbc_wire(&ct, &y);
            let ubc_tag = Tag::random(&mut self.ubc_tag_rng);
            input_leaks.push(Leak {
                source: UBC_SOURCE.into(),
                cmd: Command::new(
                    "Broadcast",
                    Value::list([
                        Value::bytes(ubc_tag.as_bytes()),
                        wire,
                        Value::U64(party.0 as u64),
                    ]),
                ),
            });
        }
        let _ = now;
        // Real order: all UBC-input leaks (step 4e), then all flush leaks
        // (step 9).
        let flush_leaks = input_leaks.clone();
        leaks_out.extend(input_leaks);
        leaks_out.extend(flush_leaks);
    }

    /// Mirrors a corrupted party's semi-honest step on the shared budget.
    #[allow(clippy::too_many_arguments)]
    fn corrupted_step(
        &mut self,
        party: PartyId,
        now: u64,
        ffbc: &mut FbcFunc,
        wrapper: &mut QueryWrapper,
        ro_star: &mut RandomOracle,
        ro: &mut RandomOracle,
        ctx: &mut sbc_uc::hybrid::HybridCtx<'_>,
        leaks_out: &mut Vec<Leak>,
    ) {
        if self.corrupted_last_step[party.index()] == Some(now) {
            return;
        }
        let entries = std::mem::take(&mut self.queues[party.index()]);
        if entries.is_empty() {
            return;
        }
        self.corrupted_last_step[party.index()] = Some(now);
        let rand_sets: Vec<Vec<Element>> = entries
            .iter()
            .map(|_| draw_chain_randomness(&mut self.party_rngs[party.index()], self.q))
            .collect();
        let batch: Vec<Vec<u8>> = rand_sets
            .iter()
            .flat_map(|rs| rs.iter().map(|r| r.to_vec()))
            .collect();
        let Ok(flat) = wrapper.evaluate(ro_star, now, WrapperClient::Corrupted, &batch) else {
            return;
        };
        // Recover the original messages of non-substituted records.
        let pending = ffbc.corruption_request(ctx);
        let mut off = 0usize;
        for (entry, rs) in entries.iter().zip(rand_sets.iter()) {
            let hashes = &flat[off..off + rs.len()];
            off += rs.len();
            let (rho, ct) =
                encrypt_with_randomness(&mut self.party_rngs[party.index()], rs, hashes);
            let msg = entry.override_msg.clone().or_else(|| {
                pending
                    .iter()
                    .find(|r| r.tag == entry.tag)
                    .map(|r| r.msg.clone())
            });
            let Some(msg) = msg else { continue };
            let eta = ro.query(Caller::Simulator, &rho);
            let y = xor_mask_msg(&eta, &msg);
            leaks_out.push(Leak {
                source: UBC_SOURCE.into(),
                cmd: Command::new(
                    "Broadcast",
                    Value::pair(fbc_wire(&ct, &y), Value::U64(party.0 as u64)),
                ),
            });
        }
    }

    /// Handles an adversarial ciphertext injection: solve, extract, feed to
    /// the functionality on the corrupted sender's behalf.
    #[allow(clippy::too_many_arguments)] // mirrors the full hybrid interface
    fn on_injection(
        &mut self,
        party: PartyId,
        wire: &Value,
        ffbc: &mut FbcFunc,
        ro_star: &mut RandomOracle,
        ro: &mut RandomOracle,
        ctx: &mut sbc_uc::hybrid::HybridCtx<'_>,
        leaks_out: &mut Vec<Leak>,
    ) {
        leaks_out.push(Leak {
            source: UBC_SOURCE.into(),
            cmd: Command::new(
                "Broadcast",
                Value::pair(wire.clone(), Value::U64(party.0 as u64)),
            ),
        });
        let Some((ct, y)) = parse_fbc_wire(wire, self.q) else {
            return; // malformed: real honest parties ignore it
        };
        let Ok(mut solver) = ChainSolver::new(&ct.chain) else {
            return;
        };
        while let Some(qr) = solver.next_query() {
            let h = ro_star.query(Caller::Simulator, &qr);
            solver.feed(h);
        }
        let Ok(rho) = sbc_primitives::astrolabous::ast_dec(&ct, solver.witness()) else {
            return; // fails authentication: ignored at decryption time too
        };
        let eta = ro.query(Caller::Simulator, &rho);
        let msg = decode_masked(&eta, &y);
        // Scratch leak buffer: F_FBC's (tag, sender) leak goes to S only.
        let mut scratch = Vec::new();
        let mut sub_ctx = sbc_uc::hybrid::HybridCtx {
            clock: ctx.clock,
            rng: ctx.rng,
            leaks: &mut scratch,
            corr: ctx.corr,
        };
        ffbc.broadcast(party, msg, &mut sub_ctx);
    }
}

fn xor_mask_msg(eta: &[u8; 32], msg: &Value) -> Vec<u8> {
    sbc_primitives::astrolabous::xor_mask(eta, &msg.encode())
}

/// The ideal world: `F_FBC(2, 2)` + `S_FBC`.
#[derive(Debug)]
pub struct IdealFbcWorld {
    core: WorldCore,
    ffbc: FbcFunc,
    sim: SimFbc,
    wrapper: QueryWrapper,
    ro_star: RandomOracle,
    ro: RandomOracle,
}

impl IdealFbcWorld {
    /// Creates the world (`q` wrapper batches per round).
    pub fn new(n: usize, q: u32, seed: &[u8]) -> Self {
        let mut core = WorldCore::new(n, seed);
        let (ro_star_rng, ro_rng, ubc_tags, fbc_tags, party_rngs) = fork_streams(&mut core);
        IdealFbcWorld {
            core,
            ffbc: FbcFunc::new(n, FBC_DELTA, FBC_ALPHA, fbc_tags),
            sim: SimFbc::new(q, party_rngs, ubc_tags),
            wrapper: QueryWrapper::new(q),
            ro_star: RandomOracle::new(ro_star_rng),
            ro: RandomOracle::new(ro_rng),
        }
    }

    /// Whether the simulator hit a paper-abort event.
    pub fn simulator_would_abort(&self) -> bool {
        self.sim.would_abort()
    }

    fn run_corrupted_steps(&mut self) {
        let now = self.core.clock.read();
        let corrupted: Vec<PartyId> = self.core.corr.corrupted().collect();
        let mut leaks = Vec::new();
        let mut scratch = Vec::new();
        for c in corrupted {
            let mut ctx = sbc_uc::hybrid::HybridCtx {
                clock: &mut self.core.clock,
                rng: &mut self.core.rng,
                leaks: &mut scratch,
                corr: &mut self.core.corr,
            };
            self.sim.corrupted_step(
                c,
                now,
                &mut self.ffbc,
                &mut self.wrapper,
                &mut self.ro_star,
                &mut self.ro,
                &mut ctx,
                &mut leaks,
            );
        }
        self.core.leaks.extend(leaks);
    }
}

impl World for IdealFbcWorld {
    fn n(&self) -> usize {
        self.core.n()
    }

    fn time(&self) -> u64 {
        self.core.clock.read()
    }

    fn input(&mut self, party: PartyId, cmd: Command) {
        if cmd.name == "Broadcast" && !self.core.corr.is_corrupted(party) {
            let mut scratch = Vec::new();
            let tag = {
                let mut ctx = sbc_uc::hybrid::HybridCtx {
                    clock: &mut self.core.clock,
                    rng: &mut self.core.rng,
                    leaks: &mut scratch,
                    corr: &mut self.core.corr,
                };
                self.ffbc.broadcast(party, cmd.value, &mut ctx)
            };
            // F_FBC's (tag, sender) leak is addressed to the simulator.
            self.sim.on_broadcast_leak(tag, party);
        }
    }

    fn advance(&mut self, party: PartyId) {
        if self.core.corr.is_corrupted(party) {
            return;
        }
        if is_last_honest_advance(&self.core, party) {
            self.run_corrupted_steps();
        }
        let now = self.core.clock.read();
        let mut leaks = Vec::new();
        {
            let mut ctx = sbc_uc::hybrid::HybridCtx {
                clock: &mut self.core.clock,
                rng: &mut self.core.rng,
                leaks: &mut Vec::new(),
                corr: &mut self.core.corr,
            };
            self.sim.honest_advance(
                party,
                now,
                &mut self.ffbc,
                &mut self.ro_star,
                &mut self.ro,
                &mut ctx,
                &mut leaks,
            );
        }
        self.core.leaks.extend(leaks);
        let ds = {
            let mut ctx = self.core.ctx();
            self.ffbc.advance_clock(party, &mut ctx)
        };
        self.core.push_outputs(ds);
        self.core.clock.advance_party(party);
    }

    fn adversary(&mut self, cmd: AdvCommand) -> Value {
        let now = self.core.clock.read();
        match cmd {
            AdvCommand::Corrupt(p) => {
                if !self.core.corrupt(p) {
                    return Value::Bool(false);
                }
                // Reveal the party's pending messages (Corruption_Request).
                let pending = {
                    let ctx = self.core.ctx();
                    self.ffbc.corruption_request(&ctx)
                };
                let msgs: Vec<Value> = self.sim.queues[p.index()]
                    .iter()
                    .filter_map(|e| {
                        e.override_msg.clone().or_else(|| {
                            pending
                                .iter()
                                .find(|r| r.tag == e.tag)
                                .map(|r| r.msg.clone())
                        })
                    })
                    .collect();
                Value::List(msgs)
            }
            AdvCommand::SendAs { party, cmd } if cmd.name == "Broadcast" => {
                if !self.core.corr.is_corrupted(party) {
                    return Value::Unit;
                }
                let mut leaks = Vec::new();
                {
                    let mut ctx = sbc_uc::hybrid::HybridCtx {
                        clock: &mut self.core.clock,
                        rng: &mut self.core.rng,
                        leaks: &mut Vec::new(),
                        corr: &mut self.core.corr,
                    };
                    self.sim.on_injection(
                        party,
                        &cmd.value,
                        &mut self.ffbc,
                        &mut self.ro_star,
                        &mut self.ro,
                        &mut ctx,
                        &mut leaks,
                    );
                }
                self.core.leaks.extend(leaks);
                Value::Unit
            }
            AdvCommand::Control { target, cmd } => {
                if let Some(resp) = shared_adversary_control(
                    &target,
                    &cmd,
                    &mut self.wrapper,
                    &mut self.ro_star,
                    &mut self.ro,
                    now,
                ) {
                    return resp;
                }
                if cmd.name == "Substitute" {
                    if let Some((p, idx, msg)) = parse_substitute(&target, &cmd.value) {
                        if self.core.corr.is_corrupted(p) {
                            if idx >= self.sim.queues[p.index()].len() {
                                return Value::Bool(false);
                            }
                            let tag = self.sim.queues[p.index()][idx].tag;
                            let ok = {
                                let mut ctx = self.core.ctx();
                                self.ffbc.allow(tag, msg.clone(), p, &mut ctx)
                            };
                            if ok {
                                self.sim.queues[p.index()][idx].override_msg = Some(msg);
                            }
                            return Value::Bool(ok);
                        }
                    }
                }
                Value::Unit
            }
            _ => Value::Unit,
        }
    }

    fn drain_outputs(&mut self) -> Vec<(PartyId, Command)> {
        std::mem::take(&mut self.core.outputs)
    }

    fn drain_leaks(&mut self) -> Vec<Leak> {
        std::mem::take(&mut self.core.leaks)
    }

    fn is_corrupted(&self, party: PartyId) -> bool {
        self.core.corr.is_corrupted(party)
    }
}

impl SbcWorld for IdealFbcWorld {
    /// The functionality/simulator mirror of
    /// [`RealFbcWorld::begin_new_period`]: `F_FBC` forgets undelivered
    /// records, the simulator its shadow queues. The sticky abort flag
    /// survives.
    fn begin_new_period(&mut self) {
        self.ffbc.begin_new_period();
        self.sim.begin_new_period();
    }

    fn release_round(&self) -> Option<u64> {
        None
    }

    fn period_end(&self) -> Option<u64> {
        None
    }

    fn would_abort(&self) -> bool {
        self.sim.would_abort()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_uc::exec::CompareLevel;
    use sbc_uc::world::{run_env, EnvDriver};

    const Q: u32 = 3;

    fn assert_indistinguishable<F>(n: usize, seed: &[u8], script: F)
    where
        F: Fn(&mut EnvDriver<'_>) + Copy,
    {
        // Lemma 2's simulation is perfect (modulo the abort event, which
        // the harness checks): byte-identical transcripts.
        sbc_uc::exec::assert_indistinguishable(
            RealFbcWorld::new(n, Q, seed),
            IdealFbcWorld::new(n, Q, seed),
            CompareLevel::Exact,
            script,
        );
    }

    #[test]
    fn lemma2_single_honest_broadcast() {
        assert_indistinguishable(3, b"l2-a", |env| {
            env.input(
                PartyId(0),
                Command::new("Broadcast", Value::bytes(b"fair hello")),
            );
            env.idle_rounds(4);
        });
    }

    #[test]
    fn lemma2_multi_sender_concurrent() {
        assert_indistinguishable(3, b"l2-b", |env| {
            env.input(
                PartyId(0),
                Command::new("Broadcast", Value::bytes(b"alpha")),
            );
            env.input(PartyId(1), Command::new("Broadcast", Value::bytes(b"beta")));
            env.advance_all();
            env.input(
                PartyId(2),
                Command::new("Broadcast", Value::bytes(b"gamma")),
            );
            env.idle_rounds(4);
        });
    }

    #[test]
    fn lemma2_substitution_before_lock() {
        // Corrupt the sender right after input (before her round completes)
        // and substitute the pending message — the one window Fig. 10
        // allows.
        assert_indistinguishable(3, b"l2-c", |env| {
            env.input(
                PartyId(1),
                Command::new("Broadcast", Value::bytes(b"original")),
            );
            env.adversary(AdvCommand::Corrupt(PartyId(1)));
            env.adversary(AdvCommand::Control {
                target: "P1".into(),
                cmd: Command::new(
                    "Substitute",
                    Value::pair(Value::U64(0), Value::bytes(b"substituted")),
                ),
            });
            env.idle_rounds(4);
        });
    }

    #[test]
    fn lemma2_adversarial_injection() {
        assert_indistinguishable(3, b"l2-d", |env| {
            env.adversary(AdvCommand::Corrupt(PartyId(2)));
            // The adversary crafts a valid ciphertext itself (it can run the
            // encryption algorithm): easiest via replaying what an honest
            // run would produce — here it simply injects garbage plus a
            // well-formed-but-unauthentic wire; both are ignored uniformly.
            env.adversary(AdvCommand::SendAs {
                party: PartyId(2),
                cmd: Command::new("Broadcast", Value::bytes(b"not a wire")),
            });
            env.idle_rounds(4);
        });
    }

    #[test]
    fn lemma2_replay_injection() {
        // The adversary replays an honest (c, y) it observed: both worlds
        // deliver the message twice.
        let seed = b"l2-e";
        let script = |env: &mut EnvDriver<'_>| {
            env.input(
                PartyId(0),
                Command::new("Broadcast", Value::bytes(b"replayable")),
            );
            env.adversary(AdvCommand::Corrupt(PartyId(2)));
            env.advance_all();
            // Leak index 0 is the UBC broadcast leak containing the wire.
            env.idle_rounds(3);
        };
        let mut real = RealFbcWorld::new(3, Q, seed);
        let mut ideal = IdealFbcWorld::new(3, Q, seed);
        let t_real = run_env(&mut real, script);
        let t_ideal = run_env(&mut ideal, script);
        assert_eq!(t_real.digest(), t_ideal.digest());
    }

    #[test]
    fn lemma2_holds_across_period_turnover() {
        use sbc_uc::exec::DualRun;
        let mut dual = DualRun::new(
            RealFbcWorld::new(3, Q, b"l2-epochs"),
            IdealFbcWorld::new(3, Q, b"l2-epochs"),
            CompareLevel::Exact,
        );
        // Epoch 0: a fully delivered fair broadcast.
        dual.submit(PartyId(0), b"first-period");
        dual.idle_rounds(4);
        dual.finish_epoch().unwrap_or_else(|d| panic!("{d}"));
        // Epoch 1: a broadcast queued right at the boundary of epoch 0
        // would be stale; here fresh traffic after the turnover still
        // aligns byte-for-byte (randomness streams carried over equally).
        dual.submit(PartyId(1), b"second-period");
        dual.idle_rounds(4);
        dual.finish_epoch().unwrap_or_else(|d| panic!("{d}"));
        let (tr, _) = dual.into_transcripts();
        assert_eq!(tr.outputs().len(), 6, "2 broadcasts × 3 parties");
    }

    #[test]
    fn turnover_drops_in_flight_fair_broadcasts() {
        use sbc_uc::exec::DualRun;
        let mut dual = DualRun::new(
            RealFbcWorld::new(2, Q, b"l2-stale"),
            IdealFbcWorld::new(2, Q, b"l2-stale"),
            CompareLevel::Exact,
        );
        // Ciphertext goes out (1 round) but delivery needs ∆ = 2: turning
        // over mid-flight must drop it identically in both worlds.
        dual.submit(PartyId(0), b"mid-flight");
        dual.advance_all();
        dual.finish_epoch().unwrap_or_else(|d| panic!("{d}"));
        dual.idle_rounds(3);
        dual.check().unwrap_or_else(|d| panic!("{d}"));
        let (tr, _) = dual.into_transcripts();
        assert!(tr.outputs().is_empty(), "stale broadcast never delivered");
    }

    #[test]
    fn delivery_at_exactly_delta() {
        let mut real = RealFbcWorld::new(2, Q, b"delta");
        let t = run_env(&mut real, |env| {
            env.input(PartyId(0), Command::new("Broadcast", Value::bytes(b"m")));
            env.idle_rounds(4);
        });
        let outs = t.outputs();
        assert_eq!(outs.len(), 2, "both parties deliver");
        for (round, _, cmd) in outs {
            assert_eq!(
                round, FBC_DELTA,
                "delivered exactly ∆ = 2 rounds after request"
            );
            assert_eq!(cmd.value, Value::bytes(b"m"));
        }
    }

    #[test]
    fn fairness_post_broadcast_corruption_cannot_change_message() {
        // The adversary corrupts the sender AFTER the ciphertext went out
        // and tries to substitute: too late in both worlds.
        assert_indistinguishable(3, b"l2-f", |env| {
            env.input(
                PartyId(0),
                Command::new("Broadcast", Value::bytes(b"locked-in")),
            );
            env.advance_all(); // ciphertext broadcast; message locked
            env.adversary(AdvCommand::Corrupt(PartyId(0)));
            env.adversary(AdvCommand::Control {
                target: "P0".into(),
                cmd: Command::new(
                    "Substitute",
                    Value::pair(Value::U64(0), Value::bytes(b"too-late")),
                ),
            });
            env.idle_rounds(3);
        });
        // And the delivered value is the original:
        let mut real = RealFbcWorld::new(3, Q, b"l2-f2");
        let t = run_env(&mut real, |env| {
            env.input(
                PartyId(0),
                Command::new("Broadcast", Value::bytes(b"locked-in")),
            );
            env.advance_all();
            env.adversary(AdvCommand::Corrupt(PartyId(0)));
            env.adversary(AdvCommand::Control {
                target: "P0".into(),
                cmd: Command::new(
                    "Substitute",
                    Value::pair(Value::U64(0), Value::bytes(b"too-late")),
                ),
            });
            env.idle_rounds(3);
        });
        for (_, _, cmd) in t.outputs() {
            assert_eq!(cmd.value, Value::bytes(b"locked-in"));
        }
    }

    #[test]
    fn sharded_round_is_bit_identical_to_serial_round() {
        use sbc_uc::exec::{ScopedShards, SerialShards, ShardRunner};
        // Drive two identical real worlds round for round — one on the
        // serial reference tick, one on the sharded (warm-cache) round —
        // through honest traffic, a corruption, a substitution, and an
        // injection. Outputs, leaks, and oracle query counts must match
        // bit for bit at every round.
        fn drive(world: &mut RealFbcWorld, sharded: Option<&dyn ShardRunner>) -> Vec<String> {
            let mut log = Vec::new();
            let round = |w: &mut RealFbcWorld| match sharded {
                Some(runner) => w.tick_sharded(runner),
                None => w.tick(),
            };
            world.input(
                PartyId(0),
                Command::new("Broadcast", Value::bytes(b"fair-a")),
            );
            world.input(
                PartyId(1),
                Command::new("Broadcast", Value::bytes(b"fair-b")),
            );
            round(world);
            world.adversary(AdvCommand::Corrupt(PartyId(2)));
            world.input(
                PartyId(2),
                Command::new("Broadcast", Value::bytes(b"corrupted-pending")),
            );
            world.adversary(AdvCommand::Control {
                target: "P2".into(),
                cmd: Command::new(
                    "Substitute",
                    Value::pair(Value::U64(0), Value::bytes(b"substituted")),
                ),
            });
            world.adversary(AdvCommand::SendAs {
                party: PartyId(2),
                cmd: Command::new("Broadcast", Value::bytes(b"injected-garbage")),
            });
            for _ in 0..5 {
                round(world);
                for (p, cmd) in world.drain_outputs() {
                    log.push(format!("out {} {:?}", p.0, cmd));
                }
                for leak in world.drain_leaks() {
                    log.push(format!("leak {} {:?}", leak.source, leak.cmd));
                }
                log.push(format!("t={}", world.time()));
            }
            log
        }
        let mut serial = RealFbcWorld::new(3, Q, b"l2-sharded");
        let mut scoped = RealFbcWorld::new(3, Q, b"l2-sharded");
        let mut inline = RealFbcWorld::new(3, Q, b"l2-sharded");
        let log_serial = drive(&mut serial, None);
        let log_scoped = drive(&mut scoped, Some(&ScopedShards(3)));
        let log_inline = drive(&mut inline, Some(&SerialShards));
        assert_eq!(log_serial, log_scoped, "sharded round diverged");
        assert_eq!(log_serial, log_inline, "serial-runner shard diverged");
        assert!(
            log_serial.iter().any(|l| l.contains("out")),
            "the scenario actually delivered messages"
        );
        assert_eq!(serial.ro.query_count(), scoped.ro.query_count());
        assert_eq!(serial.ro_star.query_count(), scoped.ro_star.query_count());
    }

    #[test]
    fn adversary_wrapper_budget_shared_and_metered() {
        let mut real = RealFbcWorld::new(2, Q, b"budget");
        run_env(&mut real, |env| {
            env.adversary(AdvCommand::Corrupt(PartyId(1)));
            for i in 0..Q {
                let resp = env.adversary(AdvCommand::Control {
                    target: "W_q".into(),
                    cmd: Command::new("Evaluate", Value::list([Value::bytes([i as u8])])),
                });
                assert!(matches!(resp, Value::List(_)), "within budget");
            }
            let resp = env.adversary(AdvCommand::Control {
                target: "W_q".into(),
                cmd: Command::new("Evaluate", Value::list([Value::bytes(b"over")])),
            });
            assert_eq!(resp, Value::str("exhausted"));
        });
    }
}
