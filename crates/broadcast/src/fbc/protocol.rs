//! The fair broadcast protocol `Π_FBC` (paper Fig. 11).
//!
//! To broadcast `M` fairly, a sender draws randomness `ρ`, time-lock
//! encrypts `ρ` with difficulty **2 rounds** (an Astrolabous chain of
//! `2q` links), queries the unwrapped RO for `η = H(ρ)` and UBC-broadcasts
//! `(c, y = M ⊕ η)`. Nobody — the adversary included — can open `c` in
//! fewer than 2 rounds because the wrapper `W_q` grants only `q` sequential
//! hash batches per round. Recipients start solving the round *after*
//! reception (so everyone finishes in the same round) and deliver all
//! messages of a round sorted lexicographically: delay ∆ = 2, simulator
//! advantage α = 2 (Lemma 2).
//!
//! The q-batch round orchestration (protocol step 3) is the subtle part:
//! batch `Q_0` carries every *parallel* puzzle-generation hash plus the
//! first chain step of every live solver; batches `Q_1 … Q_{q-1}` carry one
//! further sequential step of every live solver each.

use sbc_primitives::astrolabous::{ast_enc_with_hashes, xor_mask, AstCiphertext};
use sbc_primitives::drbg::Drbg;
use sbc_primitives::hashchain::{ChainSolver, Element};
use sbc_uc::ids::PartyId;
use sbc_uc::ro::{Caller, RandomOracle};
use sbc_uc::value::Value;
use sbc_uc::wrapper::{QueryWrapper, WrapperClient};

/// The fixed time-lock difficulty of Π_FBC ciphertexts (2 rounds — one
/// round would let a rushing adversary solve within the reception round,
/// breaking the simulation; see the paper's discussion, item 4 of §3.2).
pub const FBC_DIFFICULTY: u64 = 2;

/// Encodes a `(c, y)` pair for the UBC wire.
pub fn fbc_wire(ct: &AstCiphertext, y: &[u8]) -> Value {
    Value::pair(Value::bytes(ct.to_bytes()), Value::bytes(y))
}

/// Parses a `(c, y)` pair off the UBC wire, enforcing the Π_FBC ciphertext
/// format (difficulty 2, chain length `2q + 1`).
pub fn parse_fbc_wire(v: &Value, q: u32) -> Option<(AstCiphertext, Vec<u8>)> {
    let items = v.as_list()?;
    if items.len() != 2 {
        return None;
    }
    let ct = AstCiphertext::from_bytes(items[0].as_bytes()?)?;
    if ct.tau_dec != FBC_DIFFICULTY || ct.chain.len() != (2 * q as usize) + 1 {
        return None;
    }
    Some((ct, items[1].as_bytes()?.to_vec()))
}

/// Unmasks `y` with `η` and decodes the message (raw bytes if the canonical
/// decoding fails — adversarial senders may mask arbitrary strings).
pub fn decode_masked(eta: &[u8; 32], y: &[u8]) -> Value {
    let bytes = xor_mask(eta, y);
    Value::decode(&bytes).unwrap_or(Value::Bytes(bytes))
}

/// Draws the per-message chain randomness (protocol step 1): `2q` elements.
pub fn draw_chain_randomness(rng: &mut Drbg, q: u32) -> Vec<Element> {
    (0..2 * q as usize)
        .map(|_| {
            let b = rng.gen_bytes(32);
            let mut e = [0u8; 32];
            e.copy_from_slice(&b);
            e
        })
        .collect()
}

/// Performs the per-message encryption draws (protocol step 4a–4b) in the
/// canonical order `ρ, k, nonce` — the order simulators mirror.
pub fn encrypt_with_randomness(
    rng: &mut Drbg,
    rs: &[Element],
    hashes: &[Element],
) -> (Vec<u8>, AstCiphertext) {
    let rho = rng.gen_bytes(32);
    let ct = ast_enc_with_hashes(&rho, FBC_DIFFICULTY, rs, hashes, rng);
    (rho, ct)
}

/// A received ciphertext awaiting decryption (an `L_wait` entry).
#[derive(Clone, Debug)]
pub struct WaitEntry {
    ct: AstCiphertext,
    y: Vec<u8>,
    recv_round: u64,
    solver: ChainSolver,
}

/// What an advancing party hands back to the world for routing.
#[derive(Clone, Debug, Default)]
pub struct AdvanceResult {
    /// `(c, y)` wires to hand to the UBC layer (protocol step 4e).
    pub broadcasts: Vec<Value>,
    /// Messages ready for the environment, already sorted (steps 5–7).
    pub outputs: Vec<Value>,
}

/// Per-party state of `Π_FBC`.
#[derive(Clone, Debug)]
pub struct FbcParty {
    id: PartyId,
    q: u32,
    rng: Drbg,
    /// `L_pend`.
    pend: Vec<Value>,
    /// `L_wait`.
    wait: Vec<WaitEntry>,
    last_advance: Option<u64>,
}

impl FbcParty {
    /// Creates party state; `rng` is the party's private randomness stream.
    pub fn new(id: PartyId, q: u32, rng: Drbg) -> Self {
        FbcParty {
            id,
            q,
            rng,
            pend: Vec::new(),
            wait: Vec::new(),
            last_advance: None,
        }
    }

    /// The party identity.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// Forgets queued (`L_pend`) and in-flight (`L_wait`) broadcasts so the
    /// party can take part in a fresh period (multi-epoch turnover). The
    /// private randomness stream and the round-dedup guard carry over.
    pub fn reset_period(&mut self) {
        self.pend.clear();
        self.wait.clear();
    }

    /// `(sid, Broadcast, M)` input from the environment.
    pub fn on_input(&mut self, msg: Value) {
        self.pend.push(msg);
    }

    /// The pending (not yet encrypted) messages — revealed on corruption.
    pub fn pending(&self) -> &[Value] {
        &self.pend
    }

    /// Adversarial substitution of a pending message (sender corrupted).
    pub fn substitute(&mut self, index: usize, msg: Value) -> bool {
        match self.pend.get_mut(index) {
            Some(slot) => {
                *slot = msg;
                true
            }
            None => false,
        }
    }

    /// Records a `(c, y)` delivery from the UBC layer.
    pub fn on_ubc_deliver(&mut self, payload: &Value, now: u64) {
        if let Some((ct, y)) = parse_fbc_wire(payload, self.q) {
            if let Ok(solver) = ChainSolver::new(&ct.chain) {
                self.wait.push(WaitEntry {
                    ct,
                    y,
                    recv_round: now,
                    solver,
                });
            }
        }
    }

    /// Ciphertexts currently waiting for decryption (introspection).
    pub fn waiting(&self) -> usize {
        self.wait.len()
    }

    /// The honest `Advance_Clock` round step (protocol steps 1–8). The
    /// caller routes `broadcasts` into the UBC layer and `outputs` to the
    /// environment, then forwards `Advance_Clock` (step 9).
    pub fn advance_step(
        &mut self,
        now: u64,
        wrapper: &mut QueryWrapper,
        ro_star: &mut RandomOracle,
        ro: &mut RandomOracle,
    ) -> AdvanceResult {
        if self.last_advance == Some(now) {
            return AdvanceResult::default();
        }
        self.last_advance = Some(now);

        // Step 1: chain randomness for every pending message.
        let enc_rands: Vec<Vec<Element>> = self
            .pend
            .iter()
            .map(|_| draw_chain_randomness(&mut self.rng, self.q))
            .collect();
        let mut enc_hashes: Vec<Vec<Element>> = vec![Vec::new(); self.pend.len()];

        // Steps 2–3: the q wrapper batches.
        enum Slot {
            Enc(usize),
            Solve(usize),
        }
        for j in 0..self.q {
            let mut batch: Vec<Vec<u8>> = Vec::new();
            let mut slots: Vec<Slot> = Vec::new();
            if j == 0 {
                for (mi, rands) in enc_rands.iter().enumerate() {
                    for r in rands {
                        batch.push(r.to_vec());
                        slots.push(Slot::Enc(mi));
                    }
                }
            }
            for (wi, entry) in self.wait.iter().enumerate() {
                if entry.recv_round < now && !entry.solver.is_done() {
                    if let Some(qr) = entry.solver.next_query() {
                        batch.push(qr.to_vec());
                        slots.push(Slot::Solve(wi));
                    }
                }
            }
            if batch.is_empty() {
                continue;
            }
            let responses =
                match wrapper.evaluate(ro_star, now, WrapperClient::Party(self.id), &batch) {
                    Ok(r) => r,
                    // Unreachable for honest parties: the protocol issues at
                    // most q batches per round by construction.
                    Err(_) => return AdvanceResult::default(),
                };
            for (slot, resp) in slots.into_iter().zip(responses) {
                match slot {
                    Slot::Enc(mi) => enc_hashes[mi].push(resp),
                    Slot::Solve(wi) => {
                        self.wait[wi].solver.feed(resp);
                    }
                }
            }
        }

        // Step 4: encrypt and emit every pending message.
        let mut broadcasts = Vec::new();
        for (mi, msg) in std::mem::take(&mut self.pend).into_iter().enumerate() {
            let (rho, ct) = encrypt_with_randomness(&mut self.rng, &enc_rands[mi], &enc_hashes[mi]);
            let eta = ro.query(Caller::Party(self.id), &rho);
            let y = xor_mask(&eta, &msg.encode());
            broadcasts.push(fbc_wire(&ct, &y));
        }

        // Step 5: deliver messages whose puzzles finished this round.
        let mut outputs = Vec::new();
        self.wait.retain(|entry| {
            if !entry.solver.is_done() {
                return true;
            }
            if let Ok(rho) = sbc_primitives::astrolabous::ast_dec(&entry.ct, entry.solver.witness())
            {
                let eta = ro.query(Caller::Party(self.id), &rho);
                outputs.push(decode_masked(&eta, &entry.y));
            }
            false
        });

        // Step 6: lexicographic delivery order.
        outputs.sort();
        AdvanceResult {
            broadcasts,
            outputs,
        }
    }

    /// The corrupted semi-honest round step: encrypt and emit pending
    /// messages (possibly substituted by the adversary) on the shared
    /// corrupted wrapper budget; no solving, no environment outputs.
    pub fn corrupted_step(
        &mut self,
        now: u64,
        wrapper: &mut QueryWrapper,
        ro_star: &mut RandomOracle,
        ro: &mut RandomOracle,
    ) -> Vec<Value> {
        if self.last_advance == Some(now) || self.pend.is_empty() {
            return Vec::new();
        }
        self.last_advance = Some(now);
        let enc_rands: Vec<Vec<Element>> = self
            .pend
            .iter()
            .map(|_| draw_chain_randomness(&mut self.rng, self.q))
            .collect();
        let batch: Vec<Vec<u8>> = enc_rands
            .iter()
            .flat_map(|rs| rs.iter().map(|r| r.to_vec()))
            .collect();
        let Ok(flat) = wrapper.evaluate(ro_star, now, WrapperClient::Corrupted, &batch) else {
            // Shared corrupted budget exhausted: the whole step is dropped.
            self.pend.clear();
            return Vec::new();
        };
        let mut broadcasts = Vec::new();
        let mut off = 0usize;
        for (mi, msg) in std::mem::take(&mut self.pend).into_iter().enumerate() {
            let hashes = &flat[off..off + enc_rands[mi].len()];
            off += enc_rands[mi].len();
            let (rho, ct) = encrypt_with_randomness(&mut self.rng, &enc_rands[mi], hashes);
            let eta = ro.query(Caller::Adversary, &rho);
            let y = xor_mask(&eta, &msg.encode());
            broadcasts.push(fbc_wire(&ct, &y));
        }
        broadcasts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_primitives::astrolabous::ast_solve_and_dec;
    use sbc_primitives::sha256::Sha256;

    fn setup(q: u32) -> (FbcParty, QueryWrapper, RandomOracle, RandomOracle) {
        (
            FbcParty::new(PartyId(0), q, Drbg::from_seed(b"party/0")),
            QueryWrapper::new(q),
            RandomOracle::new(Drbg::from_seed(b"ro-star")),
            RandomOracle::new(Drbg::from_seed(b"ro")),
        )
    }

    #[test]
    fn broadcast_produces_wire_pair() {
        let (mut p, mut w, mut rs, mut ro) = setup(3);
        p.on_input(Value::bytes(b"hello"));
        let res = p.advance_step(0, &mut w, &mut rs, &mut ro);
        assert_eq!(res.broadcasts.len(), 1);
        assert!(res.outputs.is_empty());
        let (ct, _y) = parse_fbc_wire(&res.broadcasts[0], 3).unwrap();
        assert_eq!(ct.tau_dec, FBC_DIFFICULTY);
        assert_eq!(ct.chain.len(), 7);
    }

    #[test]
    fn end_to_end_two_round_delivery() {
        let q = 3;
        let (mut sender, mut w, mut rs, mut ro) = setup(q);
        let mut receiver = FbcParty::new(PartyId(1), q, Drbg::from_seed(b"party/1"));
        sender.on_input(Value::bytes(b"fair message"));
        let res = sender.advance_step(0, &mut w, &mut rs, &mut ro);
        receiver.on_ubc_deliver(&res.broadcasts[0], 0);
        // Round 1: solving starts; nothing delivered.
        let r1 = receiver.advance_step(1, &mut w, &mut rs, &mut ro);
        assert!(r1.outputs.is_empty());
        // Round 2: delivered.
        let r2 = receiver.advance_step(2, &mut w, &mut rs, &mut ro);
        assert_eq!(r2.outputs, vec![Value::bytes(b"fair message")]);
        assert_eq!(receiver.waiting(), 0);
    }

    #[test]
    fn sender_also_receives_own_message() {
        let q = 2;
        let (mut p, mut w, mut rs, mut ro) = setup(q);
        p.on_input(Value::U64(42));
        let res = p.advance_step(0, &mut w, &mut rs, &mut ro);
        p.on_ubc_deliver(&res.broadcasts[0], 0);
        p.advance_step(1, &mut w, &mut rs, &mut ro);
        let r2 = p.advance_step(2, &mut w, &mut rs, &mut ro);
        assert_eq!(r2.outputs, vec![Value::U64(42)]);
    }

    #[test]
    fn outputs_sorted_lexicographically() {
        let q = 4;
        let (mut sender, mut w, mut rs, mut ro) = setup(q);
        let mut receiver = FbcParty::new(PartyId(1), q, Drbg::from_seed(b"party/1"));
        sender.on_input(Value::bytes(b"zebra"));
        sender.on_input(Value::bytes(b"apple"));
        let res = sender.advance_step(0, &mut w, &mut rs, &mut ro);
        for b in &res.broadcasts {
            receiver.on_ubc_deliver(b, 0);
        }
        receiver.advance_step(1, &mut w, &mut rs, &mut ro);
        let r2 = receiver.advance_step(2, &mut w, &mut rs, &mut ro);
        assert_eq!(
            r2.outputs,
            vec![Value::bytes(b"apple"), Value::bytes(b"zebra")]
        );
    }

    #[test]
    fn concurrent_streams_from_consecutive_rounds() {
        // Messages received in rounds 0 and 1 must both deliver on schedule
        // (rounds 2 and 3) — the overlapping-solvers case of step 3.
        let q = 3;
        let (mut sender, mut w, mut rs, mut ro) = setup(q);
        let mut receiver = FbcParty::new(PartyId(1), q, Drbg::from_seed(b"party/1"));
        sender.on_input(Value::bytes(b"first"));
        let r0 = sender.advance_step(0, &mut w, &mut rs, &mut ro);
        receiver.on_ubc_deliver(&r0.broadcasts[0], 0);
        sender.on_input(Value::bytes(b"second"));
        let r1 = sender.advance_step(1, &mut w, &mut rs, &mut ro);
        receiver.on_ubc_deliver(&r1.broadcasts[0], 1);
        let out1 = receiver.advance_step(1, &mut w, &mut rs, &mut ro);
        assert!(out1.outputs.is_empty());
        let out2 = receiver.advance_step(2, &mut w, &mut rs, &mut ro);
        assert_eq!(out2.outputs, vec![Value::bytes(b"first")]);
        let out3 = receiver.advance_step(3, &mut w, &mut rs, &mut ro);
        assert_eq!(out3.outputs, vec![Value::bytes(b"second")]);
    }

    #[test]
    fn ciphertext_semantically_hides_before_two_rounds() {
        // The (c, y) pair reveals nothing about M without 2q sequential
        // queries: check y differs from M's encoding and chain hides ρ.
        let (mut p, mut w, mut rs, mut ro) = setup(3);
        let m = Value::bytes(b"top secret ballot");
        p.on_input(m.clone());
        let res = p.advance_step(0, &mut w, &mut rs, &mut ro);
        let (ct, y) = parse_fbc_wire(&res.broadcasts[0], 3).unwrap();
        assert_ne!(y, m.encode());
        // With unbounded hashing (outside the wrapper) the adversary CAN
        // open it — sequentiality, not secrecy, is the protection:
        let h = |x: &[u8]| Sha256::digest(x);
        let rho = ast_solve_and_dec(&h, &ct);
        // ... but only if it uses the same oracle; the protocol's oracle is
        // the wrapped one, so direct SHA-256 solving fails.
        assert!(rho.is_err() || rho.unwrap() != m.encode());
    }

    #[test]
    fn malformed_wire_ignored() {
        let (mut p, _, _, _) = setup(3);
        p.on_ubc_deliver(&Value::U64(9), 0);
        p.on_ubc_deliver(&Value::pair(Value::bytes(b"junk"), Value::bytes(b"y")), 0);
        // Wrong difficulty: craft a τ=1 ciphertext.
        let h = |x: &[u8]| Sha256::digest(x);
        let mut rng = Drbg::from_seed(b"adv");
        let ct = sbc_primitives::astrolabous::ast_enc(&h, b"x", 1, 3, &mut rng);
        p.on_ubc_deliver(&fbc_wire(&ct, b"mask"), 0);
        assert_eq!(p.waiting(), 0);
    }

    #[test]
    fn substitution_changes_pending() {
        let (mut p, mut w, mut rs, mut ro) = setup(2);
        p.on_input(Value::bytes(b"original"));
        assert!(p.substitute(0, Value::bytes(b"evil")));
        assert!(!p.substitute(5, Value::Unit));
        let bs = p.corrupted_step(0, &mut w, &mut rs, &mut ro);
        assert_eq!(bs.len(), 1);
        // Decrypt (as the eventual receivers would) to confirm substitution.
        let mut recv = FbcParty::new(PartyId(1), 2, Drbg::from_seed(b"party/1"));
        recv.on_ubc_deliver(&bs[0], 0);
        recv.advance_step(1, &mut w, &mut rs, &mut ro);
        let out = recv.advance_step(2, &mut w, &mut rs, &mut ro);
        assert_eq!(out.outputs, vec![Value::bytes(b"evil")]);
    }

    #[test]
    fn idempotent_advance_within_round() {
        let (mut p, mut w, mut rs, mut ro) = setup(2);
        p.on_input(Value::U64(1));
        let r1 = p.advance_step(0, &mut w, &mut rs, &mut ro);
        assert_eq!(r1.broadcasts.len(), 1);
        let r2 = p.advance_step(0, &mut w, &mut rs, &mut ro);
        assert!(r2.broadcasts.is_empty() && r2.outputs.is_empty());
    }
}
