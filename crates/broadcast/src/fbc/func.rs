//! The fair broadcast functionality `F_FBC(∆, α)` (paper Fig. 10).
//!
//! Unlike `F_UBC`, the adversary learns only a *tag* and the sender's
//! identity when a message enters the system. After `∆ − α` rounds it may
//! retrieve the message via `Output_Request` — at which point the message
//! becomes **locked** and can no longer be substituted, even if the sender
//! is adaptively corrupted. Parties receive messages exactly `∆` rounds
//! after the broadcast request, sorted lexicographically.

use sbc_primitives::drbg::Drbg;
use sbc_uc::hybrid::{Delivery, HybridCtx};
use sbc_uc::ids::{PartyId, Tag};
use sbc_uc::value::{Command, Value};
use std::collections::HashMap;

/// Leak source label for `F_FBC`.
pub const FBC_SOURCE: &str = "F_FBC";

/// A broadcast record `(tag, M, P, Cl*)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FbcRecord {
    /// The unique tag.
    pub tag: Tag,
    /// The (current) message.
    pub msg: Value,
    /// The sender.
    pub sender: PartyId,
    /// The round of the broadcast request.
    pub requested_at: u64,
}

/// The functionality `F_FBC^{∆,α}(P)`.
#[derive(Clone, Debug)]
pub struct FbcFunc {
    n: usize,
    delta: u64,
    alpha: u64,
    /// `L_pend`: unlocked records.
    pending: Vec<FbcRecord>,
    /// `L_lock`: locked records (substitution impossible).
    locked: Vec<FbcRecord>,
    last_advance: HashMap<PartyId, u64>,
    tag_rng: Drbg,
}

impl FbcFunc {
    /// Creates the functionality.
    ///
    /// # Panics
    ///
    /// Panics unless `∆ ≥ α`.
    pub fn new(n: usize, delta: u64, alpha: u64, tag_rng: Drbg) -> Self {
        assert!(delta >= alpha, "need ∆ ≥ α");
        FbcFunc {
            n,
            delta,
            alpha,
            pending: Vec::new(),
            locked: Vec::new(),
            last_advance: HashMap::new(),
            tag_rng,
        }
    }

    /// The delivery delay ∆.
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// The simulator advantage α.
    pub fn alpha(&self) -> u64 {
        self.alpha
    }

    /// Number of parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Drops every unlocked (`L_pend`) and undelivered locked (`L_lock`)
    /// record (multi-epoch turnover: requests from an ended period must not
    /// deliver into the next one). The tag stream carries over so tags stay
    /// globally fresh across epochs.
    pub fn begin_new_period(&mut self) {
        self.pending.clear();
        self.locked.clear();
    }

    /// `Broadcast` from an honest party, or from the simulator on behalf of
    /// a corrupted one. Leaks only `(tag, P)`. Returns the tag.
    pub fn broadcast(&mut self, sender: PartyId, msg: Value, ctx: &mut HybridCtx<'_>) -> Tag {
        let tag = Tag::random(&mut self.tag_rng);
        self.pending.push(FbcRecord {
            tag,
            msg,
            sender,
            requested_at: ctx.time(),
        });
        ctx.leak(
            FBC_SOURCE,
            Command::new(
                "Broadcast",
                Value::pair(Value::bytes(tag.as_bytes()), Value::U64(sender.0 as u64)),
            ),
        );
        tag
    }

    /// `Output_Request` from the simulator: at exactly `Cl − Cl* = ∆ − α`,
    /// reveals and **locks** the record.
    pub fn output_request(&mut self, tag: Tag, ctx: &mut HybridCtx<'_>) -> Option<FbcRecord> {
        let now = ctx.time();
        let idx = self.pending.iter().position(|r| {
            r.tag == tag && now.wrapping_sub(r.requested_at) == self.delta - self.alpha
        })?;
        let rec = self.pending.remove(idx);
        self.locked.push(rec.clone());
        Some(rec)
    }

    /// `Corruption_Request` from the simulator: the pending (unlocked)
    /// records of corrupted senders.
    pub fn corruption_request(&self, ctx: &HybridCtx<'_>) -> Vec<FbcRecord> {
        self.pending
            .iter()
            .filter(|r| ctx.is_corrupted(r.sender))
            .cloned()
            .collect()
    }

    /// `Allow` from the simulator: substitutes a *pending* record of a
    /// corrupted sender, locking the substituted value. Returns success.
    pub fn allow(
        &mut self,
        tag: Tag,
        msg: Value,
        sender: PartyId,
        ctx: &mut HybridCtx<'_>,
    ) -> bool {
        if !ctx.is_corrupted(sender) {
            return false;
        }
        if self.locked.iter().any(|r| r.tag == tag) {
            return false; // locked records are immutable — fairness
        }
        let Some(idx) = self
            .pending
            .iter()
            .position(|r| r.tag == tag && r.sender == sender)
        else {
            return false;
        };
        let mut rec = self.pending.remove(idx);
        rec.msg = msg;
        self.locked.push(rec);
        true
    }

    /// `Advance_Clock` from an honest party: delivers to *that party* every
    /// record that is exactly `∆` rounds old, sorted lexicographically by
    /// message.
    pub fn advance_clock(&mut self, party: PartyId, ctx: &mut HybridCtx<'_>) -> Vec<Delivery> {
        if ctx.is_corrupted(party) {
            return Vec::new();
        }
        let now = ctx.time();
        if self.last_advance.get(&party) == Some(&now) {
            return Vec::new();
        }
        self.last_advance.insert(party, now);
        let mut due: Vec<&FbcRecord> = self
            .pending
            .iter()
            .chain(self.locked.iter())
            .filter(|r| now.wrapping_sub(r.requested_at) == self.delta)
            .collect();
        due.sort_by(|a, b| a.msg.cmp(&b.msg));
        due.into_iter()
            .map(|r| Delivery::new(party, Command::new("Broadcast", r.msg.clone())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_uc::clock::GlobalClock;
    use sbc_uc::corruption::CorruptionTracker;

    struct Fx {
        clock: GlobalClock,
        rng: Drbg,
        leaks: Vec<sbc_uc::world::Leak>,
        corr: CorruptionTracker,
    }

    impl Fx {
        fn new(n: usize) -> Self {
            Fx {
                clock: GlobalClock::new(PartyId::all(n)),
                rng: Drbg::from_seed(b"fbc"),
                leaks: Vec::new(),
                corr: CorruptionTracker::new(n),
            }
        }
        fn ctx(&mut self) -> HybridCtx<'_> {
            HybridCtx {
                clock: &mut self.clock,
                rng: &mut self.rng,
                leaks: &mut self.leaks,
                corr: &mut self.corr,
            }
        }
        fn tick(&mut self, n: usize) {
            for i in 0..n {
                self.clock.advance_party(PartyId(i as u32));
            }
        }
    }

    fn func(n: usize) -> FbcFunc {
        FbcFunc::new(n, 2, 2, Drbg::from_seed(b"fbc-tags"))
    }

    #[test]
    fn leak_hides_message() {
        let mut fx = Fx::new(2);
        let mut f = func(2);
        f.broadcast(PartyId(0), Value::bytes(b"secret"), &mut fx.ctx());
        assert_eq!(fx.leaks.len(), 1);
        let leaked = fx.leaks[0].cmd.value.encode();
        let needle = b"secret";
        let found = leaked.windows(needle.len()).any(|w| w == needle);
        assert!(
            !found,
            "FBC must not leak message content at broadcast time"
        );
    }

    #[test]
    fn delivery_after_exactly_delta_rounds() {
        let mut fx = Fx::new(2);
        let mut f = func(2);
        f.broadcast(PartyId(0), Value::U64(7), &mut fx.ctx());
        assert!(f.advance_clock(PartyId(0), &mut fx.ctx()).is_empty());
        fx.tick(2);
        assert!(f.advance_clock(PartyId(0), &mut fx.ctx()).is_empty());
        fx.tick(2);
        let ds = f.advance_clock(PartyId(0), &mut fx.ctx());
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].to, PartyId(0));
        assert_eq!(ds[0].cmd.value, Value::U64(7));
        let ds1 = f.advance_clock(PartyId(1), &mut fx.ctx());
        assert_eq!(ds1.len(), 1);
        assert_eq!(ds1[0].to, PartyId(1));
    }

    #[test]
    fn deliveries_sorted_by_message() {
        let mut fx = Fx::new(1);
        let mut f = func(1);
        f.broadcast(PartyId(0), Value::bytes(b"zebra"), &mut fx.ctx());
        f.broadcast(PartyId(0), Value::bytes(b"apple"), &mut fx.ctx());
        fx.tick(1);
        fx.tick(1);
        let ds = f.advance_clock(PartyId(0), &mut fx.ctx());
        assert_eq!(ds[0].cmd.value, Value::bytes(b"apple"));
        assert_eq!(ds[1].cmd.value, Value::bytes(b"zebra"));
    }

    #[test]
    fn output_request_locks_and_blocks_substitution() {
        let mut fx = Fx::new(2);
        let mut f = func(2); // ∆ - α = 0: lockable immediately
        let tag = f.broadcast(PartyId(0), Value::U64(1), &mut fx.ctx());
        let rec = f.output_request(tag, &mut fx.ctx()).unwrap();
        assert_eq!(rec.msg, Value::U64(1));
        fx.corr.corrupt(PartyId(0), 0).unwrap();
        assert!(!f.allow(tag, Value::U64(99), PartyId(0), &mut fx.ctx()));
        fx.tick(2);
        fx.tick(2);
        let ds = f.advance_clock(PartyId(1), &mut fx.ctx());
        assert_eq!(
            ds[0].cmd.value,
            Value::U64(1),
            "locked value survives corruption"
        );
    }

    #[test]
    fn output_request_wrong_round_fails() {
        let mut fx = Fx::new(2);
        let mut f = FbcFunc::new(2, 3, 1, Drbg::from_seed(b"t")); // ∆-α = 2
        let tag = f.broadcast(PartyId(0), Value::U64(1), &mut fx.ctx());
        assert!(f.output_request(tag, &mut fx.ctx()).is_none(), "too early");
        fx.tick(2);
        assert!(
            f.output_request(tag, &mut fx.ctx()).is_none(),
            "still too early"
        );
        fx.tick(2);
        assert!(
            f.output_request(tag, &mut fx.ctx()).is_some(),
            "exactly ∆-α"
        );
    }

    #[test]
    fn allow_substitutes_unlocked_pending_of_corrupted() {
        let mut fx = Fx::new(2);
        let mut f = func(2);
        let tag = f.broadcast(PartyId(0), Value::U64(1), &mut fx.ctx());
        assert!(
            !f.allow(tag, Value::U64(2), PartyId(0), &mut fx.ctx()),
            "honest: refused"
        );
        fx.corr.corrupt(PartyId(0), 0).unwrap();
        assert!(f.allow(tag, Value::U64(2), PartyId(0), &mut fx.ctx()));
        fx.tick(2);
        fx.tick(2);
        let ds = f.advance_clock(PartyId(1), &mut fx.ctx());
        assert_eq!(ds[0].cmd.value, Value::U64(2));
    }

    #[test]
    fn corruption_request_filters() {
        let mut fx = Fx::new(3);
        let mut f = func(3);
        f.broadcast(PartyId(0), Value::U64(1), &mut fx.ctx());
        f.broadcast(PartyId(1), Value::U64(2), &mut fx.ctx());
        fx.corr.corrupt(PartyId(1), 0).unwrap();
        let ctx = fx.ctx();
        let recs = f.corruption_request(&ctx);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].sender, PartyId(1));
    }

    #[test]
    fn no_double_delivery_same_round() {
        let mut fx = Fx::new(1);
        let mut f = func(1);
        f.broadcast(PartyId(0), Value::U64(1), &mut fx.ctx());
        fx.tick(1);
        fx.tick(1);
        assert_eq!(f.advance_clock(PartyId(0), &mut fx.ctx()).len(), 1);
        assert!(f.advance_clock(PartyId(0), &mut fx.ctx()).is_empty());
    }

    #[test]
    #[should_panic(expected = "∆ ≥ α")]
    fn invalid_parameters_panic() {
        FbcFunc::new(2, 1, 2, Drbg::from_seed(b"x"));
    }
}
