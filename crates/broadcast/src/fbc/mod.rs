//! Fair broadcast (FBC): the functionality `F_FBC(∆,α)` (Fig. 10), the
//! time-lock based protocol `Π_FBC` (Fig. 11), the Lemma 2 simulator and
//! the real/ideal experiment worlds.

pub mod func;
pub mod protocol;
pub mod worlds;
