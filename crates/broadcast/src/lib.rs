//! # sbc-broadcast
//!
//! The broadcast stack of *"Universally Composable Simultaneous Broadcast
//! against a Dishonest Majority"* (PODC 2023):
//!
//! * [`rbc`] — relaxed broadcast: the single-message functionality `F_RBC`
//!   (Fig. 6) and the Dolev–Strong protocol (Fact 1) realizing it over
//!   `F_cert` + synchronous channels in `t + 1` rounds, `t < n`.
//! * [`ubc`] — unfair broadcast: `F_UBC` (Fig. 8), the protocol `Π_UBC`
//!   over `F_RBC` instances (Fig. 9), the Lemma 1 simulator and the
//!   real/ideal experiment worlds.
//! * [`fbc`] — fair broadcast: `F_FBC(∆,α)` (Fig. 10) and the time-lock
//!   based protocol `Π_FBC` (Fig. 11) achieving ∆ = 2, α = 2 (Lemma 2),
//!   with its equivocation simulator.
//!
//! Fairness is the crux: in UBC the adversary can corrupt a sender *after
//! seeing her message* and replace it; in FBC the message is locked the
//! moment it leaves the sender, because what is broadcast is a time-lock
//! encryption that nobody — adversary included — can open before the
//! honest parties do.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fbc;
pub mod rbc;
pub mod ubc;
