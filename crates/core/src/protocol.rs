//! The simultaneous broadcast protocol `Π_SBC` (paper Fig. 14).
//!
//! The first sender wakes everyone up with a `Wake_Up` unfair broadcast;
//! all parties then agree on the period `[t_awake, t_end = t_awake + Φ)`
//! and the release time `τ_rel = t_end + ∆`. To broadcast `M`, a sender
//! draws `ρ`, time-lock encrypts `ρ` towards `τ_rel` via `F_TLE`, and once
//! the ciphertext is ready UBC-broadcasts `(c, τ_rel, M ⊕ H(ρ))`.
//! Simultaneity is exactly the semantic security of the TLE until `τ_rel`;
//! at `τ_rel` everyone decrypts everything and outputs the message vector.

use sbc_broadcast::ubc::UbcLayer;
use sbc_tle::func::{DecResponse, TleFunc};
use sbc_uc::hybrid::HybridCtx;
use sbc_uc::ids::PartyId;
use sbc_uc::ro::{Caller, RandomOracle};
use sbc_uc::value::{Command, Value};

/// The `Wake_Up` sentinel (not in the broadcast message space).
pub fn wake_up() -> Value {
    Value::str("Wake_Up")
}

/// Encodes the `(c, τ_rel, y)` triple for the UBC wire.
pub fn sbc_wire(ct: &Value, tau_rel: u64, y: &[u8]) -> Value {
    Value::list([ct.clone(), Value::U64(tau_rel), Value::bytes(y)])
}

/// Parses a `(c, τ_rel, y)` triple off the UBC wire.
pub fn parse_sbc_wire(v: &Value) -> Option<(Value, u64, Vec<u8>)> {
    let items = v.as_list()?;
    if items.len() != 3 {
        return None;
    }
    items[0].as_bytes()?;
    Some((
        items[0].clone(),
        items[1].as_u64()?,
        items[2].as_bytes()?.to_vec(),
    ))
}

#[derive(Clone, Debug)]
struct PendEntry {
    rho: Vec<u8>,
    msg: Value,
    encrypted: bool,
    broadcast: bool,
}

/// Per-party state of `Π_SBC`.
#[derive(Clone, Debug)]
pub struct SbcParty {
    id: PartyId,
    phi: u64,
    delta: u64,
    tle_delay: u64,
    rng: sbc_primitives::drbg::Drbg,
    pend: Vec<PendEntry>,
    rec: Vec<(Value, Vec<u8>)>,
    t_awake: Option<u64>,
    t_end: Option<u64>,
    tau_rel: Option<u64>,
    last_advance: Option<u64>,
    woke_up_sent: bool,
}

impl SbcParty {
    /// Creates party state for period span `phi`, delivery delay `delta`,
    /// over an `F_TLE` with ciphertext-generation delay `tle_delay`.
    pub fn new(
        id: PartyId,
        phi: u64,
        delta: u64,
        tle_delay: u64,
        rng: sbc_primitives::drbg::Drbg,
    ) -> Self {
        SbcParty {
            id,
            phi,
            delta,
            tle_delay,
            rng,
            pend: Vec::new(),
            rec: Vec::new(),
            t_awake: None,
            t_end: None,
            tau_rel: None,
            last_advance: None,
            woke_up_sent: false,
        }
    }

    /// The party identity.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// The agreed release time, once awake.
    pub fn tau_rel(&self) -> Option<u64> {
        self.tau_rel
    }

    /// The end of the broadcast period, once awake.
    pub fn t_end(&self) -> Option<u64> {
        self.t_end
    }

    /// Forgets the closed broadcast period so the party can take part in a
    /// fresh one (multi-epoch sessions). Queued, received and timing state
    /// is dropped; the party's randomness stream and round-dedup guard
    /// carry over, so successive epochs draw fresh `ρ` values.
    pub fn reset_period(&mut self) {
        self.pend.clear();
        self.rec.clear();
        self.t_awake = None;
        self.t_end = None;
        self.tau_rel = None;
        self.woke_up_sent = false;
    }

    /// Whether the party holds no period state at all: asleep, nothing
    /// queued, nothing received. An idle party's `on_advance` is a pure
    /// clock step (no randomness drawn, no messages, no outputs) — the
    /// precondition for the O(1) fast path of `SbcWorld::join_at`.
    pub fn is_idle(&self) -> bool {
        self.t_awake.is_none() && self.pend.is_empty() && self.rec.is_empty()
    }

    /// Pending (not yet broadcast) messages — revealed on corruption.
    pub fn pending_messages(&self) -> Vec<Value> {
        self.pend
            .iter()
            .filter(|e| !e.broadcast)
            .map(|e| e.msg.clone())
            .collect()
    }

    /// `(sid, Broadcast, M)` input.
    pub fn on_input<U: UbcLayer>(
        &mut self,
        msg: Value,
        ubc: &mut U,
        ftle: &mut TleFunc,
        ctx: &mut HybridCtx<'_>,
    ) {
        match self.t_awake {
            None => {
                // First activity: queue the message and wake everyone up.
                let rho = self.rng.gen_bytes(32);
                self.pend.push(PendEntry {
                    rho,
                    msg,
                    encrypted: false,
                    broadcast: false,
                });
                if !self.woke_up_sent {
                    self.woke_up_sent = true;
                    ubc.broadcast(self.id, wake_up(), ctx);
                }
            }
            Some(_) => {
                let now = ctx.time();
                let end = self.t_end.expect("awake implies t_end");
                if now + self.tle_delay >= end {
                    return; // cannot be ready before the period closes
                }
                let rho = self.rng.gen_bytes(32);
                let tau_rel = self.tau_rel.expect("awake implies tau_rel");
                ftle.enc(self.id, Value::bytes(&rho), tau_rel as i64, ctx);
                self.pend.push(PendEntry {
                    rho,
                    msg,
                    encrypted: true,
                    broadcast: false,
                });
            }
        }
    }

    /// A UBC delivery: either a `Wake_Up` or a `(c, τ_rel, y)` triple.
    pub fn on_ubc_deliver(&mut self, payload: &Value, ftle: &mut TleFunc, ctx: &mut HybridCtx<'_>) {
        if payload == &wake_up() {
            if self.t_awake.is_none() {
                let now = ctx.time();
                self.t_awake = Some(now);
                self.t_end = Some(now + self.phi);
                self.tau_rel = Some(now + self.phi + self.delta);
                // Encrypt everything queued while asleep.
                let tau_rel = now + self.phi + self.delta;
                for e in self.pend.iter_mut().filter(|e| !e.encrypted) {
                    e.encrypted = true;
                    ftle.enc(self.id, Value::bytes(&e.rho), tau_rel as i64, ctx);
                }
            }
            return;
        }
        let Some((ct, tau, y)) = parse_sbc_wire(payload) else {
            return;
        };
        let now = ctx.time();
        let (Some(tau_rel), Some(end)) = (self.tau_rel, self.t_end) else {
            return;
        };
        // Receptions outside the broadcast period are discarded (§5: "all
        // broadcast operations outside the period are discarded").
        if tau != tau_rel || now >= end {
            return;
        }
        if self.rec.iter().any(|(c, yy)| c == &ct || yy == &y) {
            return; // replay protection
        }
        self.rec.push((ct, y));
    }

    /// The round step: publish ready ciphertexts during the period, decrypt
    /// and output everything at `τ_rel`. Returns the (sorted) message
    /// vector at the release round.
    pub fn on_advance<U: UbcLayer>(
        &mut self,
        ubc: &mut U,
        ftle: &mut TleFunc,
        ro: &mut RandomOracle,
        ctx: &mut HybridCtx<'_>,
    ) -> Option<Command> {
        let now = ctx.time();
        if self.last_advance == Some(now) {
            return None;
        }
        self.last_advance = Some(now);
        let (Some(awake), Some(end), Some(tau_rel)) = (self.t_awake, self.t_end, self.tau_rel)
        else {
            return None;
        };
        if awake <= now && now < end {
            // Fetch ciphertexts that became ready and broadcast them.
            let triples = ftle.retrieve(self.id, ctx);
            for (rho_v, ct, _tau) in triples {
                let Some(rho) = rho_v.as_bytes() else {
                    continue;
                };
                let Some(entry) = self.pend.iter_mut().find(|e| e.rho == rho && !e.broadcast)
                else {
                    continue;
                };
                entry.broadcast = true;
                let m_bytes = entry.msg.encode();
                let eta = ro.query_bytes(Caller::Party(self.id), &entry.rho, m_bytes.len());
                let y: Vec<u8> = m_bytes.iter().zip(eta.iter()).map(|(a, b)| a ^ b).collect();
                let wire = sbc_wire(&ct, tau_rel, &y);
                ubc.broadcast(self.id, wire, ctx);
            }
        }
        if now == tau_rel {
            let mut out = Vec::new();
            for (ct, y) in &self.rec {
                let resp = match ftle.dec(ct, tau_rel as i64, ctx) {
                    Some(r) => r,
                    None => continue, // unknown ciphertext: ⊥, skipped
                };
                let DecResponse::Message(rho_v) = resp else {
                    continue;
                };
                let Some(rho) = rho_v.as_bytes() else {
                    continue;
                };
                let eta = ro.query_bytes(Caller::Party(self.id), rho, y.len());
                let m_bytes: Vec<u8> = y.iter().zip(eta.iter()).map(|(a, b)| a ^ b).collect();
                out.push(Value::decode(&m_bytes).unwrap_or(Value::Bytes(m_bytes)));
            }
            out.sort();
            return Some(Command::new("Broadcast", Value::List(out)));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_broadcast::ubc::func::UbcFunc;
    use sbc_primitives::drbg::Drbg;
    use sbc_uc::clock::GlobalClock;
    use sbc_uc::corruption::CorruptionTracker;

    const PHI: u64 = 3;
    const DELTA: u64 = 2;
    const TLE_DELAY: u64 = 1;

    struct Fx {
        clock: GlobalClock,
        rng: Drbg,
        leaks: Vec<sbc_uc::world::Leak>,
        corr: CorruptionTracker,
    }

    impl Fx {
        fn new(n: usize) -> Self {
            Fx {
                clock: GlobalClock::new(PartyId::all(n)),
                rng: Drbg::from_seed(b"sbcp"),
                leaks: Vec::new(),
                corr: CorruptionTracker::new(n),
            }
        }
        fn ctx(&mut self) -> HybridCtx<'_> {
            HybridCtx {
                clock: &mut self.clock,
                rng: &mut self.rng,
                leaks: &mut self.leaks,
                corr: &mut self.corr,
            }
        }
    }

    struct Stack {
        fx: Fx,
        parties: Vec<SbcParty>,
        ubc: UbcFunc,
        ftle: TleFunc,
        ro: RandomOracle,
    }

    impl Stack {
        fn new(n: usize) -> Self {
            Stack {
                fx: Fx::new(n),
                parties: (0..n as u32)
                    .map(|i| {
                        SbcParty::new(
                            PartyId(i),
                            PHI,
                            DELTA,
                            TLE_DELAY,
                            Drbg::from_seed(format!("p{i}").as_bytes()),
                        )
                    })
                    .collect(),
                ubc: UbcFunc::new(n, Drbg::from_seed(b"ubc-tags")),
                ftle: TleFunc::new(1, TLE_DELAY, Drbg::from_seed(b"tle-tags")),
                ro: RandomOracle::new(Drbg::from_seed(b"fro")),
            }
        }

        fn input(&mut self, p: u32, msg: Value) {
            let mut ctx = self.fx.ctx();
            self.parties[p as usize].on_input(msg, &mut self.ubc, &mut self.ftle, &mut ctx);
        }

        /// Advances every party once and ticks the clock; returns outputs.
        fn round(&mut self) -> Vec<(u32, Command)> {
            let n = self.parties.len();
            let mut outputs = Vec::new();
            for i in 0..n {
                let out = {
                    let mut ctx = self.fx.ctx();
                    self.parties[i].on_advance(
                        &mut self.ubc,
                        &mut self.ftle,
                        &mut self.ro,
                        &mut ctx,
                    )
                };
                if let Some(cmd) = out {
                    outputs.push((i as u32, cmd));
                }
                let ds = {
                    let mut ctx = self.fx.ctx();
                    self.ubc.advance_clock(PartyId(i as u32), &mut ctx)
                };
                for d in ds {
                    let mut ctx = self.fx.ctx();
                    self.parties[d.to.index()].on_ubc_deliver(
                        &d.cmd.value,
                        &mut self.ftle,
                        &mut ctx,
                    );
                }
                self.fx.clock.advance_party(PartyId(i as u32));
            }
            outputs
        }
    }

    #[test]
    fn end_to_end_single_sender() {
        let mut s = Stack::new(3);
        s.input(0, Value::bytes(b"simultaneous"));
        let mut all = Vec::new();
        for _ in 0..(PHI + DELTA + 2) {
            all.extend(s.round());
        }
        // Every party outputs the same singleton vector at τ_rel.
        assert_eq!(all.len(), 3);
        for (_, cmd) in &all {
            assert_eq!(
                cmd.value.as_list().unwrap(),
                &[Value::bytes(b"simultaneous")]
            );
        }
    }

    #[test]
    fn all_parties_agree_on_times() {
        let mut s = Stack::new(3);
        s.input(1, Value::U64(5));
        s.round();
        for p in &s.parties {
            assert_eq!(p.tau_rel(), Some(PHI + DELTA), "woken in round 0");
        }
    }

    #[test]
    fn multi_sender_all_messages_delivered_sorted() {
        let mut s = Stack::new(3);
        s.input(0, Value::bytes(b"zulu"));
        s.round(); // wake-up spreads; period = [0, 3)
        s.input(1, Value::bytes(b"alpha"));
        s.input(2, Value::bytes(b"mike"));
        let mut all = Vec::new();
        for _ in 0..(PHI + DELTA + 2) {
            all.extend(s.round());
        }
        assert_eq!(all.len(), 3);
        for (_, cmd) in &all {
            let msgs = cmd.value.as_list().unwrap();
            assert_eq!(
                msgs,
                &[
                    Value::bytes(b"alpha"),
                    Value::bytes(b"mike"),
                    Value::bytes(b"zulu")
                ],
                "lexicographic order"
            );
        }
    }

    #[test]
    fn late_input_ignored() {
        let mut s = Stack::new(2);
        s.input(0, Value::bytes(b"on-time"));
        // Rounds 0,1: wake-up + broadcast. t_end = 3, tle_delay = 1 →
        // inputs from round 2 on cannot complete.
        s.round();
        s.round();
        s.input(1, Value::bytes(b"too-late"));
        let mut all = Vec::new();
        for _ in 0..(PHI + DELTA + 2) {
            all.extend(s.round());
        }
        for (_, cmd) in &all {
            assert_eq!(cmd.value.as_list().unwrap(), &[Value::bytes(b"on-time")]);
        }
    }

    #[test]
    fn replayed_wire_not_duplicated() {
        // Feed the same (c, τ, y) twice into a recipient: one output.
        let mut s = Stack::new(2);
        s.input(0, Value::bytes(b"once"));
        s.round(); // round 0: wake-up flush, enc
                   // Extract the wire from the UBC leak after broadcast (round 1).
        s.round();
        let wire =
            s.fx.leaks
                .iter()
                .rev()
                .find_map(|l| {
                    let items = l.cmd.value.as_list()?;
                    if items.len() == 3 && items[1].as_list().map(|w| w.len()) == Some(3) {
                        Some(items[1].clone())
                    } else {
                        None
                    }
                })
                .expect("broadcast wire leaked");
        {
            let mut ctx = s.fx.ctx();
            s.parties[1].on_ubc_deliver(&wire, &mut s.ftle, &mut ctx);
        }
        let mut all = Vec::new();
        for _ in 0..(PHI + DELTA) {
            all.extend(s.round());
        }
        let p1_out = all.iter().find(|(p, _)| *p == 1).unwrap();
        assert_eq!(p1_out.1.value.as_list().unwrap().len(), 1, "replay dropped");
    }

    #[test]
    fn no_output_before_tau_rel() {
        let mut s = Stack::new(2);
        s.input(0, Value::U64(1));
        for round in 0..(PHI + DELTA) {
            let outs = s.round();
            assert!(outs.is_empty(), "round {round}: nothing before τ_rel");
        }
        let outs = s.round();
        assert_eq!(outs.len(), 2);
    }
}
