//! The simultaneous broadcast protocol `Π_SBC` (paper Fig. 14).
//!
//! The first sender wakes everyone up with a `Wake_Up` unfair broadcast;
//! all parties then agree on the period `[t_awake, t_end = t_awake + Φ)`
//! and the release time `τ_rel = t_end + ∆`. To broadcast `M`, a sender
//! draws `ρ`, time-lock encrypts `ρ` towards `τ_rel` via `F_TLE`, and once
//! the ciphertext is ready UBC-broadcasts `(c, τ_rel, M ⊕ H(ρ))`.
//! Simultaneity is exactly the semantic security of the TLE until `τ_rel`;
//! at `τ_rel` everyone decrypts everything and outputs the message vector.

use sbc_broadcast::ubc::UbcLayer;
use sbc_primitives::sha256::Sha256;
use sbc_tle::func::{DecResponse, TleFunc};
use sbc_uc::hybrid::HybridCtx;
use sbc_uc::ids::PartyId;
use sbc_uc::ro::{Caller, RandomOracle};
use sbc_uc::value::{Command, Value};
use std::collections::HashSet;

/// The `Wake_Up` sentinel (not in the broadcast message space).
pub fn wake_up() -> Value {
    Value::str("Wake_Up")
}

/// Encodes the `(c, τ_rel, y)` triple for the UBC wire.
pub fn sbc_wire(ct: &Value, tau_rel: u64, y: &[u8]) -> Value {
    Value::list([ct.clone(), Value::U64(tau_rel), Value::bytes(y)])
}

/// Parses a `(c, τ_rel, y)` triple off the UBC wire.
pub fn parse_sbc_wire(v: &Value) -> Option<(Value, u64, Vec<u8>)> {
    let items = v.as_list()?;
    if items.len() != 3 {
        return None;
    }
    items[0].as_bytes()?;
    Some((
        items[0].clone(),
        items[1].as_u64()?,
        items[2].as_bytes()?.to_vec(),
    ))
}

/// One broadcast wire, parsed and preprocessed **once** for delivery to
/// many recipients: the decoded `(c, τ_rel, y)` components, the canonical
/// ciphertext encoding (the `F_TLE` probe key), and the replay-dedup
/// fingerprints shared by every recipient's [`WireLog`].
///
/// A UBC broadcast reaches all `n` parties identically, so everything
/// about the wire that does not depend on the recipient — the parse, the
/// encode, the two dedup fingerprints — is computed here, per message,
/// and borrowed by each per-recipient [`SbcParty::on_wire_deliver_parsed`]
/// call. At n = 1000 this turns `messages × n` parse/encode/hash passes
/// into `messages` of them.
#[derive(Clone, Debug)]
pub struct ParsedWire {
    /// The time-lock ciphertext `c`.
    pub ct: Value,
    /// `c`'s canonical encoding — the replay-dedup and `F_TLE` probe key.
    pub ct_enc: Vec<u8>,
    /// The release time `τ_rel` the wire claims.
    pub tau: u64,
    /// The masked message `y = M ⊕ H(ρ)`.
    pub y: Vec<u8>,
    ct_fp: u128,
    y_fp: u128,
}

impl ParsedWire {
    /// Parses and preprocesses a wire payload; `None` on anything that is
    /// not a `(c, τ_rel, y)` triple (exactly [`parse_sbc_wire`]'s
    /// acceptance).
    pub fn parse(v: &Value) -> Option<ParsedWire> {
        let (ct, tau, y) = parse_sbc_wire(v)?;
        let ct_enc = ct.encode();
        let ct_fp = fingerprint(b"sbc-rec/ct", &ct_enc);
        let y_fp = fingerprint(b"sbc-rec/y", &y);
        Some(ParsedWire {
            ct,
            ct_enc,
            tau,
            y,
            ct_fp,
            y_fp,
        })
    }
}

/// 128-bit truncated SHA-256 replay-dedup fingerprint, domain-separated
/// per key space. Fingerprint equality stands in for byte equality of the
/// keys: producing a divergence takes a 2^64-work truncated-SHA-256
/// collision, far beyond the security budget of the surrounding protocol
/// primitives — while shrinking the dedup sets to fixed-width integers
/// whose growth rehashes are branchless word hashes instead of re-hashing
/// every stored ciphertext encoding.
fn fingerprint(domain: &[u8], key: &[u8]) -> u128 {
    let d = Sha256::digest_parts(&[domain, key]);
    u128::from_le_bytes(d[..16].try_into().expect("digest is 32 bytes"))
}

/// Hasher for the fingerprint sets. The keys are 128-bit truncated SHA-256
/// outputs — already uniform, already collision-resistant against
/// adversarial inputs — so the low word *is* the hash: probes and growth
/// rehashes cost a move instead of a SipHash pass (which showed up as
/// simultaneous multi-millisecond rehash spikes across all `n` recipient
/// logs in a broadcast round).
#[derive(Clone, Debug, Default)]
struct FpHasher(u64);

impl std::hash::Hasher for FpHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Unused by `u128::hash`, which calls `write_u128`; folded anyway
        // so the hasher stays correct for any caller.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u128(&mut self, v: u128) {
        self.0 = v as u64;
    }
}

type FpSet = HashSet<u128, std::hash::BuildHasherDefault<FpHasher>>;

/// The received-wire log of one party: insertion-ordered `(c, y)` entries
/// with O(1) replay dedup.
///
/// The protocol discards a reception when *either* component matches
/// something already recorded — a replayed ciphertext under a fresh mask,
/// or a replayed mask under a fresh ciphertext, are both replays — so the
/// log keeps one hash set per key next to the ordered entry list the
/// release round iterates. This replaces the per-reception linear scan
/// (the `O(s²)` half of the release-phase scans at large sender counts);
/// the accept/reject decisions, and hence the release transcript, are
/// unchanged.
///
/// The dedup sets store 128-bit truncated SHA-256 fingerprints of the
/// keys rather than the keys themselves: equality of fingerprints stands
/// in for byte equality (a divergence needs a 2^64-work collision), the
/// per-probe hashing cost is a fixed-width word instead of a full
/// ciphertext encoding, and — the part that showed up as multi-millisecond
/// spikes at large `n` — a set growth rehash moves integers instead of
/// re-hashing every stored encoding across all `n` recipient logs at once.
///
/// Each entry's canonical ciphertext encoding is computed **once**, at
/// insertion, and cached next to the entry: it is both the replay-dedup
/// key (canonical encodings are injective, so encoding equality is value
/// equality) and the borrowed probe key the release round hands to
/// `TleFunc::dec_peek_encoded` — one encode per reception instead of one
/// per (party, sender) probe per release round.
#[derive(Clone, Debug, Default)]
pub struct WireLog {
    entries: Vec<StoredWire>,
    seen_cts: FpSet,
    seen_ys: FpSet,
}

/// One recorded wire entry: owned when it arrived through the per-party
/// [`WireLog::insert`] path, shared when a broadcast fan-out handed every
/// recipient the same preprocessed [`ParsedWire`] — recording the latter
/// is a refcount bump, not a copy, so `n` recipients of one broadcast
/// store its ciphertext once.
#[derive(Clone, Debug)]
enum StoredWire {
    Owned {
        ct: Value,
        ct_enc: Vec<u8>,
        y: Vec<u8>,
    },
    Shared(std::sync::Arc<ParsedWire>),
}

impl StoredWire {
    fn ct(&self) -> &Value {
        match self {
            StoredWire::Owned { ct, .. } => ct,
            StoredWire::Shared(w) => &w.ct,
        }
    }

    fn ct_enc(&self) -> &[u8] {
        match self {
            StoredWire::Owned { ct_enc, .. } => ct_enc,
            StoredWire::Shared(w) => &w.ct_enc,
        }
    }

    fn y(&self) -> &[u8] {
        match self {
            StoredWire::Owned { y, .. } => y,
            StoredWire::Shared(w) => &w.y,
        }
    }

    /// Whether two recorded entries are the same reception. Two `Shared`
    /// entries from one broadcast fan-out are the same `Arc` — a pointer
    /// compare; anything else falls back to byte equality of the canonical
    /// encoding and the mask (exact, since canonical encodings are
    /// injective).
    fn same_wire(&self, other: &StoredWire) -> bool {
        if let (StoredWire::Shared(a), StoredWire::Shared(b)) = (self, other) {
            if std::sync::Arc::ptr_eq(a, b) {
                return true;
            }
        }
        self.ct_enc() == other.ct_enc() && self.y() == other.y()
    }
}

impl WireLog {
    /// An empty log.
    pub fn new() -> Self {
        WireLog::default()
    }

    /// Records `(ct, y)` unless either key was seen before; returns whether
    /// the entry was fresh.
    pub fn insert(&mut self, ct: Value, y: Vec<u8>) -> bool {
        let ct_enc = ct.encode();
        let ct_fp = fingerprint(b"sbc-rec/ct", &ct_enc);
        let y_fp = fingerprint(b"sbc-rec/y", &y);
        if self.seen_cts.contains(&ct_fp) || self.seen_ys.contains(&y_fp) {
            return false;
        }
        self.seen_cts.insert(ct_fp);
        self.seen_ys.insert(y_fp);
        self.entries.push(StoredWire::Owned { ct, ct_enc, y });
        true
    }

    /// [`insert`](WireLog::insert) with the parse, the canonical encoding
    /// and the dedup fingerprints already computed — and shared — by the
    /// caller: the broadcast fan-out path, where one wire reaches every
    /// recipient and all recipient-independent work is hoisted to once
    /// per message. Replays pay two integer set probes; a fresh entry is
    /// recorded as a refcount bump on the shared wire, so the fan-out
    /// allocates nothing per recipient.
    pub fn insert_parsed(&mut self, wire: &std::sync::Arc<ParsedWire>) -> bool {
        if self.seen_cts.contains(&wire.ct_fp) || self.seen_ys.contains(&wire.y_fp) {
            return false;
        }
        self.seen_cts.insert(wire.ct_fp);
        self.seen_ys.insert(wire.y_fp);
        self.entries.push(StoredWire::Shared(wire.clone()));
        true
    }

    /// The recorded `(c, y)` entries, in arrival order.
    pub fn entries(&self) -> impl Iterator<Item = (&Value, &[u8])> {
        self.entries.iter().map(|e| (e.ct(), e.y()))
    }

    /// The recorded entries with their cached canonical ciphertext
    /// encodings, in arrival order, as `(ct_enc, y)` — the release round's
    /// iteration view (it probes `F_TLE` by encoding and never needs the
    /// decoded `Value`).
    pub fn entries_encoded(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.entries.iter().map(|e| (e.ct_enc(), e.y()))
    }

    /// How many entries have been recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Forgets everything (period turnover).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.seen_cts.clear();
        self.seen_ys.clear();
    }

    /// Whether `other` records exactly the same receptions in the same
    /// order. In a broadcast execution every wire reaches every recipient,
    /// so recipient logs are normally identical — and identical logs mean
    /// identical release computations, which is what lets a round scheduler
    /// compute one [`ReleasePlan`] and [`reissue`](ReleasePlan::reissue) it
    /// to every party that passes this check. Entries recorded from one
    /// fan-out share their `Arc`, so the common case is a pointer compare
    /// per entry; mixed origins fall back to exact byte comparison.
    pub fn same_receptions(&self, other: &WireLog) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .zip(&other.entries)
                .all(|(a, b)| a.same_wire(b))
    }
}

#[derive(Clone, Debug)]
struct PendEntry {
    rho: Vec<u8>,
    msg: Value,
    encrypted: bool,
    broadcast: bool,
}

/// The precomputed release-round step of one party — the output of the
/// **parallel compute phase** of a sharded round
/// (`RealSbcWorld::tick_sharded`).
///
/// At `τ_rel` a party's step is pure given the round snapshot: its received
/// wire list is frozen (receptions at `Cl ≥ t_end` are discarded), `F_TLE.Dec`
/// never mutates the record set, and `F_RO` is input-addressed — so the
/// whole decrypt/unmask/sort pipeline can run read-only on a worker thread.
/// The serial merge phase then replays the observable effects in party-id
/// order: [`SbcParty::on_advance_planned`] absorbs the party's oracle
/// queries and emits the precomputed output command, bit-identical to the
/// inline computation.
#[derive(Clone, Debug)]
pub struct ReleasePlan {
    /// The round the plan was computed for (stale plans are ignored).
    round: u64,
    /// The party's release output (the sorted message vector).
    cmd: Command,
    /// The `F_RO` queries the inline step would have issued, in order —
    /// `(ρ, η)` pairs replayed via `RandomOracle::absorb_party_queries`.
    /// Shared so a reissued plan is a refcount bump, not a deep copy of
    /// every mask.
    ro_queries: std::sync::Arc<Vec<(Vec<u8>, Vec<u8>)>>,
    /// Set on reissued plans: the points are already in the oracle's memo
    /// tables (the original plan warmed them), so the merge replays only
    /// the query counter instead of re-probing every point.
    warmed: bool,
}

impl ReleasePlan {
    /// Warms `ro`'s memo cache with this plan's oracle points (a pure
    /// cache operation — see [`RandomOracle::warm`]). Broadcast reaches
    /// every party, so all honest parties derive the *same* mask set at
    /// release: warming from the first computed plan turns the remaining
    /// parties' plan-phase [`RandomOracle::peek_bytes`] calls into cache
    /// hits instead of `n` redundant mask expansions.
    pub fn warm_oracle(&self, ro: &mut RandomOracle) {
        let points: Vec<sbc_uc::ro::RoPoint> = self
            .ro_queries
            .iter()
            .map(|(x, y)| sbc_uc::ro::RoPoint::Var {
                x: x.clone(),
                y: y.clone(),
            })
            .collect();
        ro.warm(&points);
    }

    /// A copy of this plan for another party with the **same release
    /// view** — broadcast reaches everyone, so every party whose wire log
    /// passes [`WireLog::same_receptions`] computes bit-for-bit this same
    /// plan, and recomputing it `n − 1` times was the dominant cost of a
    /// large-`n` release round. The reissue shares the oracle-query list
    /// (refcount bump) and marks it warmed: callers must have called
    /// [`warm_oracle`](ReleasePlan::warm_oracle) on the original first, so
    /// the merge's replay degenerates to a query-count bump
    /// ([`RandomOracle::replay_warmed_queries`]). Only the output command
    /// is cloned — each party owns its output.
    pub fn reissue(&self) -> ReleasePlan {
        ReleasePlan {
            round: self.round,
            cmd: self.cmd.clone(),
            ro_queries: std::sync::Arc::clone(&self.ro_queries),
            warmed: true,
        }
    }
}

/// Per-party state of `Π_SBC`.
#[derive(Clone, Debug)]
pub struct SbcParty {
    id: PartyId,
    phi: u64,
    delta: u64,
    tle_delay: u64,
    rng: sbc_primitives::drbg::Drbg,
    pend: Vec<PendEntry>,
    rec: WireLog,
    t_awake: Option<u64>,
    t_end: Option<u64>,
    tau_rel: Option<u64>,
    last_advance: Option<u64>,
    woke_up_sent: bool,
}

impl SbcParty {
    /// Creates party state for period span `phi`, delivery delay `delta`,
    /// over an `F_TLE` with ciphertext-generation delay `tle_delay`.
    pub fn new(
        id: PartyId,
        phi: u64,
        delta: u64,
        tle_delay: u64,
        rng: sbc_primitives::drbg::Drbg,
    ) -> Self {
        SbcParty {
            id,
            phi,
            delta,
            tle_delay,
            rng,
            pend: Vec::new(),
            rec: WireLog::new(),
            t_awake: None,
            t_end: None,
            tau_rel: None,
            last_advance: None,
            woke_up_sent: false,
        }
    }

    /// The party identity.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// The agreed release time, once awake.
    pub fn tau_rel(&self) -> Option<u64> {
        self.tau_rel
    }

    /// The end of the broadcast period, once awake.
    pub fn t_end(&self) -> Option<u64> {
        self.t_end
    }

    /// Forgets the closed broadcast period so the party can take part in a
    /// fresh one (multi-epoch sessions). Queued, received and timing state
    /// is dropped; the party's randomness stream and round-dedup guard
    /// carry over, so successive epochs draw fresh `ρ` values.
    pub fn reset_period(&mut self) {
        self.pend.clear();
        self.rec.clear();
        self.t_awake = None;
        self.t_end = None;
        self.tau_rel = None;
        self.woke_up_sent = false;
    }

    /// Whether the party holds no period state at all: asleep, nothing
    /// queued, nothing received. An idle party's `on_advance` is a pure
    /// clock step (no randomness drawn, no messages, no outputs) — the
    /// precondition for the O(1) fast path of `SbcWorld::join_at`.
    pub fn is_idle(&self) -> bool {
        self.t_awake.is_none() && self.pend.is_empty() && self.rec.is_empty()
    }

    /// Pending (not yet broadcast) messages — revealed on corruption.
    pub fn pending_messages(&self) -> Vec<Value> {
        self.pend
            .iter()
            .filter(|e| !e.broadcast)
            .map(|e| e.msg.clone())
            .collect()
    }

    /// `(sid, Broadcast, M)` input.
    pub fn on_input<U: UbcLayer>(
        &mut self,
        msg: Value,
        ubc: &mut U,
        ftle: &mut TleFunc,
        ctx: &mut HybridCtx<'_>,
    ) {
        match self.t_awake {
            None => {
                // First activity: queue the message and wake everyone up.
                let rho = self.rng.gen_bytes(32);
                self.pend.push(PendEntry {
                    rho,
                    msg,
                    encrypted: false,
                    broadcast: false,
                });
                if !self.woke_up_sent {
                    self.woke_up_sent = true;
                    ubc.broadcast(self.id, wake_up(), ctx);
                }
            }
            Some(_) => {
                let now = ctx.time();
                let end = self.t_end.expect("awake implies t_end");
                if now + self.tle_delay >= end {
                    return; // cannot be ready before the period closes
                }
                let rho = self.rng.gen_bytes(32);
                let tau_rel = self.tau_rel.expect("awake implies tau_rel");
                ftle.enc(self.id, Value::bytes(&rho), tau_rel as i64, ctx);
                self.pend.push(PendEntry {
                    rho,
                    msg,
                    encrypted: true,
                    broadcast: false,
                });
            }
        }
    }

    /// A UBC delivery: either a `Wake_Up` or a `(c, τ_rel, y)` triple.
    pub fn on_ubc_deliver(&mut self, payload: &Value, ftle: &mut TleFunc, ctx: &mut HybridCtx<'_>) {
        if payload == &wake_up() {
            if self.t_awake.is_none() {
                let now = ctx.time();
                self.t_awake = Some(now);
                self.t_end = Some(now + self.phi);
                self.tau_rel = Some(now + self.phi + self.delta);
                // Encrypt everything queued while asleep.
                let tau_rel = now + self.phi + self.delta;
                for e in self.pend.iter_mut().filter(|e| !e.encrypted) {
                    e.encrypted = true;
                    ftle.enc(self.id, Value::bytes(&e.rho), tau_rel as i64, ctx);
                }
            }
            return;
        }
        self.on_wire_deliver(payload, ctx.time());
    }

    /// The non-wake-up half of [`on_ubc_deliver`](SbcParty::on_ubc_deliver):
    /// records a `(c, τ_rel, y)` wire. Touches only this party's own state
    /// (no functionality, no randomness, no leaks), which is what lets the
    /// world fan a broadcast's deliveries out across recipient shards —
    /// recipients are independent, and per-recipient arrival order is all
    /// that matters.
    pub fn on_wire_deliver(&mut self, payload: &Value, now: u64) {
        let Some((ct, tau, y)) = parse_sbc_wire(payload) else {
            return;
        };
        let (Some(tau_rel), Some(end)) = (self.tau_rel, self.t_end) else {
            return;
        };
        // Receptions outside the broadcast period are discarded (§5: "all
        // broadcast operations outside the period are discarded").
        if tau != tau_rel || now >= end {
            return;
        }
        self.rec.insert(ct, y); // replay protection: dedup on either key
    }

    /// [`on_wire_deliver`](SbcParty::on_wire_deliver) with the wire already
    /// parsed, encoded and fingerprinted by the caller ([`ParsedWire`]
    /// documents what is hoisted), shared across recipients. A broadcast
    /// wire reaches every recipient identically, so the per-recipient work
    /// shrinks to the period check plus the replay-dedup probes, and a
    /// fresh reception is recorded by reference. The accept/reject
    /// decision is identical to the unparsed path.
    pub fn on_wire_deliver_parsed(&mut self, wire: &std::sync::Arc<ParsedWire>, now: u64) {
        let (Some(tau_rel), Some(end)) = (self.tau_rel, self.t_end) else {
            return;
        };
        if wire.tau != tau_rel || now >= end {
            return;
        }
        self.rec.insert_parsed(wire);
    }

    /// The parallel compute phase of a sharded release round: precomputes
    /// this party's `τ_rel` step against an immutable snapshot of the round
    /// (`F_TLE` records, `F_RO` view, the party's frozen wire list).
    /// Returns `None` whenever the party would not release this round — in
    /// particular in every non-release round, where the serial step is the
    /// right (and cheap) path.
    ///
    /// The computation mirrors the release branch of
    /// [`on_advance`](SbcParty::on_advance) statement for statement:
    /// `Dec` via the read-only `TleFunc::dec_peek`, masks via the
    /// order-independent `RandomOracle::peek_bytes`. Stability of the
    /// snapshot across the round is a protocol invariant: at `τ_rel` no
    /// honest party broadcasts (`Cl ≥ t_end`), receptions are discarded,
    /// and `Dec` inserts nothing — so a plan computed before the round's
    /// serial merge equals the inline computation bit for bit (pinned by
    /// the `CompareLevel::Exact` scheduling tests).
    pub fn plan_release(&self, now: u64, ftle: &TleFunc, ro: &RandomOracle) -> Option<ReleasePlan> {
        if self.last_advance == Some(now) || self.tau_rel != Some(now) {
            return None;
        }
        let tau_rel = now;
        let mut ro_queries = Vec::new();
        let mut out = Vec::new();
        for (ct_enc, y) in self.rec.entries_encoded() {
            let resp = match ftle.dec_peek_encoded(ct_enc, tau_rel as i64, now) {
                Some(r) => r,
                None => continue, // unknown ciphertext: ⊥, skipped
            };
            let DecResponse::Message(rho_v) = resp else {
                continue;
            };
            let Some(rho) = rho_v.as_bytes() else {
                continue;
            };
            let eta = ro.peek_bytes(rho, y.len());
            let m_bytes: Vec<u8> = y.iter().zip(eta.iter()).map(|(a, b)| a ^ b).collect();
            ro_queries.push((rho.to_vec(), eta));
            out.push(Value::decode(&m_bytes).unwrap_or(Value::Bytes(m_bytes)));
        }
        out.sort();
        Some(ReleasePlan {
            round: now,
            cmd: Command::new("Broadcast", Value::List(out)),
            ro_queries: std::sync::Arc::new(ro_queries),
            warmed: false,
        })
    }

    /// Whether this party's release step at round `now` is guaranteed to
    /// compute the same [`ReleasePlan`] as `other`'s: both are at their
    /// release round, this party has not advanced yet this round, and the
    /// two wire logs record identical receptions
    /// ([`WireLog::same_receptions`]). `plan_release` reads nothing else
    /// of per-party state, so a positive check licenses
    /// [`ReleasePlan::reissue`] in place of a recomputation.
    pub fn shares_release_view(&self, other: &SbcParty, now: u64) -> bool {
        self.last_advance != Some(now)
            && self.tau_rel == Some(now)
            && other.tau_rel == Some(now)
            && self.rec.same_receptions(&other.rec)
    }

    /// The round step: publish ready ciphertexts during the period, decrypt
    /// and output everything at `τ_rel`. Returns the (sorted) message
    /// vector at the release round.
    pub fn on_advance<U: UbcLayer>(
        &mut self,
        ubc: &mut U,
        ftle: &mut TleFunc,
        ro: &mut RandomOracle,
        ctx: &mut HybridCtx<'_>,
    ) -> Option<Command> {
        self.on_advance_planned(ubc, ftle, ro, ctx, None)
    }

    /// [`on_advance`](SbcParty::on_advance) with an optional precomputed
    /// release step — the serial merge phase of a sharded round. With
    /// `plan = None` this *is* the serial reference step. With a plan for
    /// the current round, the release branch replays the plan's oracle
    /// queries ([`RandomOracle::absorb_party_queries`]) and returns the
    /// precomputed output (consumed, not cloned — at `n = 1000` parties ×
    /// hundreds of messages the clone alone is measurable); a stale plan
    /// (wrong round, or the party turned out not to release) is ignored
    /// and the inline path runs.
    pub fn on_advance_planned<U: UbcLayer>(
        &mut self,
        ubc: &mut U,
        ftle: &mut TleFunc,
        ro: &mut RandomOracle,
        ctx: &mut HybridCtx<'_>,
        plan: Option<ReleasePlan>,
    ) -> Option<Command> {
        let now = ctx.time();
        if self.last_advance == Some(now) {
            return None;
        }
        self.last_advance = Some(now);
        let (Some(awake), Some(end), Some(tau_rel)) = (self.t_awake, self.t_end, self.tau_rel)
        else {
            return None;
        };
        if awake <= now && now < end {
            // Fetch ciphertexts that became ready and broadcast them.
            let triples = ftle.retrieve(self.id, ctx);
            for (rho_v, ct, _tau) in triples {
                let Some(rho) = rho_v.as_bytes() else {
                    continue;
                };
                let Some(entry) = self.pend.iter_mut().find(|e| e.rho == rho && !e.broadcast)
                else {
                    continue;
                };
                entry.broadcast = true;
                let m_bytes = entry.msg.encode();
                let eta = ro.query_bytes(Caller::Party(self.id), &entry.rho, m_bytes.len());
                let y: Vec<u8> = m_bytes.iter().zip(eta.iter()).map(|(a, b)| a ^ b).collect();
                let wire = sbc_wire(&ct, tau_rel, &y);
                ubc.broadcast(self.id, wire, ctx);
            }
        }
        if now == tau_rel {
            if let Some(plan) = plan.filter(|p| p.round == now) {
                if plan.warmed {
                    ro.replay_warmed_queries(&plan.ro_queries);
                } else {
                    ro.absorb_party_queries(&plan.ro_queries);
                }
                return Some(plan.cmd);
            }
            let mut out = Vec::new();
            for (ct_enc, y) in self.rec.entries_encoded() {
                let resp = match ftle.dec_peek_encoded(ct_enc, tau_rel as i64, ctx.time()) {
                    Some(r) => r,
                    None => continue, // unknown ciphertext: ⊥, skipped
                };
                let DecResponse::Message(rho_v) = resp else {
                    continue;
                };
                let Some(rho) = rho_v.as_bytes() else {
                    continue;
                };
                let eta = ro.query_bytes(Caller::Party(self.id), rho, y.len());
                let m_bytes: Vec<u8> = y.iter().zip(eta.iter()).map(|(a, b)| a ^ b).collect();
                out.push(Value::decode(&m_bytes).unwrap_or(Value::Bytes(m_bytes)));
            }
            out.sort();
            return Some(Command::new("Broadcast", Value::List(out)));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_broadcast::ubc::func::UbcFunc;
    use sbc_primitives::drbg::Drbg;
    use sbc_uc::clock::GlobalClock;
    use sbc_uc::corruption::CorruptionTracker;

    const PHI: u64 = 3;
    const DELTA: u64 = 2;
    const TLE_DELAY: u64 = 1;

    struct Fx {
        clock: GlobalClock,
        rng: Drbg,
        leaks: Vec<sbc_uc::world::Leak>,
        corr: CorruptionTracker,
    }

    impl Fx {
        fn new(n: usize) -> Self {
            Fx {
                clock: GlobalClock::new(PartyId::all(n)),
                rng: Drbg::from_seed(b"sbcp"),
                leaks: Vec::new(),
                corr: CorruptionTracker::new(n),
            }
        }
        fn ctx(&mut self) -> HybridCtx<'_> {
            HybridCtx {
                clock: &mut self.clock,
                rng: &mut self.rng,
                leaks: &mut self.leaks,
                corr: &mut self.corr,
            }
        }
    }

    struct Stack {
        fx: Fx,
        parties: Vec<SbcParty>,
        ubc: UbcFunc,
        ftle: TleFunc,
        ro: RandomOracle,
    }

    impl Stack {
        fn new(n: usize) -> Self {
            Stack {
                fx: Fx::new(n),
                parties: (0..n as u32)
                    .map(|i| {
                        SbcParty::new(
                            PartyId(i),
                            PHI,
                            DELTA,
                            TLE_DELAY,
                            Drbg::from_seed(format!("p{i}").as_bytes()),
                        )
                    })
                    .collect(),
                ubc: UbcFunc::new(n, Drbg::from_seed(b"ubc-tags")),
                ftle: TleFunc::new(1, TLE_DELAY, Drbg::from_seed(b"tle-tags")),
                ro: RandomOracle::new(Drbg::from_seed(b"fro")),
            }
        }

        fn input(&mut self, p: u32, msg: Value) {
            let mut ctx = self.fx.ctx();
            self.parties[p as usize].on_input(msg, &mut self.ubc, &mut self.ftle, &mut ctx);
        }

        /// Advances every party once and ticks the clock; returns outputs.
        fn round(&mut self) -> Vec<(u32, Command)> {
            let n = self.parties.len();
            let mut outputs = Vec::new();
            for i in 0..n {
                let out = {
                    let mut ctx = self.fx.ctx();
                    self.parties[i].on_advance(
                        &mut self.ubc,
                        &mut self.ftle,
                        &mut self.ro,
                        &mut ctx,
                    )
                };
                if let Some(cmd) = out {
                    outputs.push((i as u32, cmd));
                }
                let ds = {
                    let mut ctx = self.fx.ctx();
                    self.ubc.advance_clock(PartyId(i as u32), &mut ctx)
                };
                for d in ds {
                    let mut ctx = self.fx.ctx();
                    self.parties[d.to.index()].on_ubc_deliver(
                        &d.cmd.value,
                        &mut self.ftle,
                        &mut ctx,
                    );
                }
                self.fx.clock.advance_party(PartyId(i as u32));
            }
            outputs
        }
    }

    #[test]
    fn end_to_end_single_sender() {
        let mut s = Stack::new(3);
        s.input(0, Value::bytes(b"simultaneous"));
        let mut all = Vec::new();
        for _ in 0..(PHI + DELTA + 2) {
            all.extend(s.round());
        }
        // Every party outputs the same singleton vector at τ_rel.
        assert_eq!(all.len(), 3);
        for (_, cmd) in &all {
            assert_eq!(
                cmd.value.as_list().unwrap(),
                &[Value::bytes(b"simultaneous")]
            );
        }
    }

    #[test]
    fn all_parties_agree_on_times() {
        let mut s = Stack::new(3);
        s.input(1, Value::U64(5));
        s.round();
        for p in &s.parties {
            assert_eq!(p.tau_rel(), Some(PHI + DELTA), "woken in round 0");
        }
    }

    #[test]
    fn multi_sender_all_messages_delivered_sorted() {
        let mut s = Stack::new(3);
        s.input(0, Value::bytes(b"zulu"));
        s.round(); // wake-up spreads; period = [0, 3)
        s.input(1, Value::bytes(b"alpha"));
        s.input(2, Value::bytes(b"mike"));
        let mut all = Vec::new();
        for _ in 0..(PHI + DELTA + 2) {
            all.extend(s.round());
        }
        assert_eq!(all.len(), 3);
        for (_, cmd) in &all {
            let msgs = cmd.value.as_list().unwrap();
            assert_eq!(
                msgs,
                &[
                    Value::bytes(b"alpha"),
                    Value::bytes(b"mike"),
                    Value::bytes(b"zulu")
                ],
                "lexicographic order"
            );
        }
    }

    #[test]
    fn late_input_ignored() {
        let mut s = Stack::new(2);
        s.input(0, Value::bytes(b"on-time"));
        // Rounds 0,1: wake-up + broadcast. t_end = 3, tle_delay = 1 →
        // inputs from round 2 on cannot complete.
        s.round();
        s.round();
        s.input(1, Value::bytes(b"too-late"));
        let mut all = Vec::new();
        for _ in 0..(PHI + DELTA + 2) {
            all.extend(s.round());
        }
        for (_, cmd) in &all {
            assert_eq!(cmd.value.as_list().unwrap(), &[Value::bytes(b"on-time")]);
        }
    }

    #[test]
    fn replayed_wire_not_duplicated() {
        // Feed the same (c, τ, y) twice into a recipient: one output.
        let mut s = Stack::new(2);
        s.input(0, Value::bytes(b"once"));
        s.round(); // round 0: wake-up flush, enc
                   // Extract the wire from the UBC leak after broadcast (round 1).
        s.round();
        let wire =
            s.fx.leaks
                .iter()
                .rev()
                .find_map(|l| {
                    let items = l.cmd.value.as_list()?;
                    if items.len() == 3 && items[1].as_list().map(|w| w.len()) == Some(3) {
                        Some(items[1].clone())
                    } else {
                        None
                    }
                })
                .expect("broadcast wire leaked");
        {
            let mut ctx = s.fx.ctx();
            s.parties[1].on_ubc_deliver(&wire, &mut s.ftle, &mut ctx);
        }
        let mut all = Vec::new();
        for _ in 0..(PHI + DELTA) {
            all.extend(s.round());
        }
        let p1_out = all.iter().find(|(p, _)| *p == 1).unwrap();
        assert_eq!(p1_out.1.value.as_list().unwrap().len(), 1, "replay dropped");
    }

    #[test]
    fn partial_collision_wires_dropped() {
        // Either key replayed — the same ciphertext under a fresh mask, or
        // the same mask under a fresh ciphertext — is a replay. The hash
        // sets must keep the OR semantics of the old linear scan.
        let mut log = WireLog::new();
        assert!(log.insert(Value::bytes(b"ct-a"), b"y-a".to_vec()));
        assert!(!log.insert(Value::bytes(b"ct-a"), b"y-b".to_vec()));
        assert!(!log.insert(Value::bytes(b"ct-b"), b"y-a".to_vec()));
        assert!(log.insert(Value::bytes(b"ct-b"), b"y-b".to_vec()));
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
        log.clear();
        assert!(log.is_empty());
        // A cleared log accepts previously seen keys again (fresh period).
        assert!(log.insert(Value::bytes(b"ct-a"), b"y-a".to_vec()));
    }

    #[test]
    fn wire_log_caches_one_canonical_encoding_per_entry() {
        // The release round probes F_TLE by canonical ciphertext encoding;
        // the log computes that encoding exactly once, at insertion, and
        // the cached bytes must stay equal to `ct.encode()` entry for
        // entry, in arrival order — including across a clear (period
        // turnover re-encodes from scratch).
        let mut log = WireLog::new();
        let cts = [Value::bytes(b"ct-a"), Value::list([Value::U64(7)])];
        assert!(log.insert(cts[0].clone(), b"y-a".to_vec()));
        assert!(log.insert(cts[1].clone(), b"y-b".to_vec()));
        // A rejected replay must not grow the encoding cache.
        assert!(!log.insert(cts[0].clone(), b"y-fresh".to_vec()));
        let encoded: Vec<(Vec<u8>, Vec<u8>)> = log
            .entries_encoded()
            .map(|(enc, y)| (enc.to_vec(), y.to_vec()))
            .collect();
        assert_eq!(encoded.len(), log.len());
        for ((enc, y), (ct, y2)) in encoded.iter().zip(log.entries()) {
            assert_eq!(enc, &ct.encode(), "cached encoding is canonical");
            assert_eq!(y.as_slice(), y2, "cache iterates in arrival order");
        }
        log.clear();
        assert!(log.entries_encoded().next().is_none());
        assert!(log.insert(cts[0].clone(), b"y-a".to_vec()));
        assert_eq!(log.entries_encoded().count(), 1);
    }

    #[test]
    fn planned_release_is_bit_identical_to_inline_release() {
        // Drive two identical stacks to the release round; release one
        // inline and one through plan_release + on_advance_planned. The
        // outputs and the oracle state (query counts included) must match.
        fn drive_to_release(s: &mut Stack) {
            s.input(0, Value::bytes(b"zulu"));
            s.round();
            s.input(1, Value::bytes(b"alpha"));
            for _ in 0..(PHI + DELTA - 1) {
                assert!(s.round().is_empty());
            }
        }
        let (mut inline, mut planned) = (Stack::new(3), Stack::new(3));
        drive_to_release(&mut inline);
        drive_to_release(&mut planned);
        let inline_out = inline.round();

        let now = planned.fx.clock.read();
        let n = planned.parties.len();
        let plans: Vec<Option<ReleasePlan>> = planned
            .parties
            .iter()
            .map(|p| p.plan_release(now, &planned.ftle, &planned.ro))
            .collect();
        let mut planned_out = Vec::new();
        for (i, plan) in plans.clone().into_iter().enumerate().take(n) {
            let out = {
                let mut ctx = planned.fx.ctx();
                planned.parties[i].on_advance_planned(
                    &mut planned.ubc,
                    &mut planned.ftle,
                    &mut planned.ro,
                    &mut ctx,
                    plan,
                )
            };
            if let Some(cmd) = out {
                planned_out.push((i as u32, cmd));
            }
            planned.fx.clock.advance_party(PartyId(i as u32));
        }
        assert!(plans.iter().all(|p| p.is_some()), "all parties planned");
        assert_eq!(planned_out, inline_out);
        assert_eq!(planned.ro.query_count(), inline.ro.query_count());
        // Plans are round-stamped: a stale plan must be ignored, not replayed.
        let stale = plans[0].clone().unwrap();
        inline.round();
        let mut ctx = inline.fx.ctx();
        assert!(inline.parties[0]
            .on_advance_planned(
                &mut inline.ubc,
                &mut inline.ftle,
                &mut inline.ro,
                &mut ctx,
                Some(stale)
            )
            .is_none());
    }

    #[test]
    fn no_output_before_tau_rel() {
        let mut s = Stack::new(2);
        s.input(0, Value::U64(1));
        for round in 0..(PHI + DELTA) {
            let outs = s.round();
            assert!(outs.is_empty(), "round {round}: nothing before τ_rel");
        }
        let outs = s.round();
        assert_eq!(outs.len(), 2);
    }
}
