//! The structured error type shared by every fallible entry point of the
//! crate: parameter validation ([`crate::worlds::SbcParams::validate`]),
//! backend construction ([`crate::worlds::SbcBackend::from_params`]), and
//! the whole session surface ([`crate::api::SbcSession`]).

use std::fmt;

/// Errors of the fallible session API.
///
/// Every public [`SbcSession`](crate::api::SbcSession) entry point returns
/// one of these instead of panicking; match on the variant to distinguish
/// caller mistakes (`InvalidParams`, `PartyOutOfRange`, `SubmitAfterClose`,
/// …) from internal faults (`Internal`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SbcError {
    /// The parameters violate Theorem 2's constraints (`Φ > delay`,
    /// `∆ > α_TLE`) or are degenerate (`n = 0`).
    InvalidParams {
        /// Which constraint failed.
        reason: &'static str,
    },
    /// A party index `≥ n` was used.
    PartyOutOfRange {
        /// The offending index.
        party: u32,
        /// The session size.
        n: usize,
    },
    /// An honest-path operation targeted a corrupted party (or a party was
    /// corrupted twice).
    CorruptedParty {
        /// The corrupted party.
        party: u32,
    },
    /// Corrupting another party would leave no honest party (`t ≤ n − 1`
    /// is the dishonest-majority budget).
    CorruptionBudgetExceeded {
        /// The party whose corruption was refused.
        party: u32,
    },
    /// An adversarial operation targeted a party that is still honest.
    HonestParty {
        /// The honest party.
        party: u32,
    },
    /// A submission arrived too late to complete before the broadcast
    /// period closes (`Cl + delay ≥ t_end`).
    SubmitAfterClose {
        /// The round of the attempted submission.
        round: u64,
        /// The period end `t_end`.
        t_end: u64,
    },
    /// An adversarial injection was attempted before any wake-up: the
    /// release time `τ_rel` is not yet agreed.
    PeriodNotOpen,
    /// A pool operation addressed an instance id that was never opened on
    /// this pool.
    UnknownInstance {
        /// The unknown instance id.
        instance: u64,
    },
    /// A pool operation addressed an instance that has already been
    /// finished (its final result was released and the instance retired).
    InstanceFinished {
        /// The finished instance id.
        instance: u64,
    },
    /// A reclamation operation (`SbcPool::prune`) addressed an instance
    /// that is still live — pruning it would silently discard an
    /// unreleased period; finish the instance first.
    InstanceLive {
        /// The live instance id.
        instance: u64,
    },
    /// A pool fast-forward (`SbcPool::resume_at`) was attempted on a pool
    /// that has already run — instances were opened or the shared clock
    /// advanced. Fast-forward is a restore-time seam: it is only valid on
    /// a freshly built pool, where setting the clock and the next
    /// instance id reproduces the original's state exactly (instance seed
    /// forks depend only on the id, and `join_at` makes catch-up O(1)).
    NotFresh {
        /// The pool's current shared-clock round.
        round: u64,
        /// Instance ids the pool has already consumed.
        opened: u64,
    },
    /// `run_epoch`/`run_to_completion` was called with nothing submitted —
    /// the period would never open and the session would spin forever.
    NoInput,
    /// The session failed to release within its round budget.
    Timeout {
        /// The exhausted budget (rounds).
        budget: u64,
    },
    /// An invariant of the underlying world machinery failed — honest
    /// parties disagreed, or a release payload was malformed.
    Internal {
        /// Human-readable description of the broken invariant.
        detail: String,
    },
    /// A backend failed to come up: its transport or other environment
    /// could not be established (a socket bind or connect refused, say).
    /// Distinct from `InvalidParams` — the parameters are fine, the
    /// machine underneath is not.
    Backend {
        /// Human-readable description of the bring-up failure.
        detail: String,
    },
}

impl fmt::Display for SbcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SbcError::InvalidParams { reason } => write!(f, "invalid SBC parameters: {reason}"),
            SbcError::PartyOutOfRange { party, n } => {
                write!(f, "party {party} out of range for a {n}-party session")
            }
            SbcError::CorruptedParty { party } => write!(f, "party {party} is corrupted"),
            SbcError::CorruptionBudgetExceeded { party } => {
                write!(f, "corrupting party {party} would leave no honest party")
            }
            SbcError::HonestParty { party } => {
                write!(
                    f,
                    "party {party} is honest (adversarial operation requires corruption)"
                )
            }
            SbcError::SubmitAfterClose { round, t_end } => {
                write!(
                    f,
                    "submission at round {round} cannot complete before t_end = {t_end}"
                )
            }
            SbcError::PeriodNotOpen => {
                write!(f, "no broadcast period is open (τ_rel not yet agreed)")
            }
            SbcError::UnknownInstance { instance } => {
                write!(f, "instance #{instance} was never opened on this pool")
            }
            SbcError::InstanceFinished { instance } => {
                write!(f, "instance #{instance} is already finished")
            }
            SbcError::InstanceLive { instance } => {
                write!(
                    f,
                    "instance #{instance} is still live (finish it before pruning)"
                )
            }
            SbcError::NotFresh { round, opened } => {
                write!(
                    f,
                    "pool is not fresh (round {round}, {opened} instances opened): fast-forward is restore-only"
                )
            }
            SbcError::NoInput => write!(f, "nothing submitted: the period would never open"),
            SbcError::Timeout { budget } => {
                write!(f, "session failed to release within {budget} rounds")
            }
            SbcError::Internal { detail } => write!(f, "internal session fault: {detail}"),
            SbcError::Backend { detail } => write!(f, "backend bring-up failed: {detail}"),
        }
    }
}

impl std::error::Error for SbcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let cases: Vec<(SbcError, &str)> = vec![
            (
                SbcError::InvalidParams {
                    reason: "need Φ > delay",
                },
                "need Φ > delay",
            ),
            (SbcError::PartyOutOfRange { party: 7, n: 2 }, "party 7"),
            (SbcError::CorruptedParty { party: 1 }, "corrupted"),
            (
                SbcError::CorruptionBudgetExceeded { party: 1 },
                "no honest party",
            ),
            (SbcError::HonestParty { party: 0 }, "honest"),
            (
                SbcError::SubmitAfterClose { round: 2, t_end: 3 },
                "t_end = 3",
            ),
            (SbcError::PeriodNotOpen, "τ_rel"),
            (SbcError::UnknownInstance { instance: 4 }, "instance #4"),
            (SbcError::InstanceFinished { instance: 7 }, "instance #7"),
            (SbcError::InstanceLive { instance: 3 }, "still live"),
            (
                SbcError::NotFresh {
                    round: 5,
                    opened: 2,
                },
                "not fresh",
            ),
            (SbcError::NoInput, "nothing submitted"),
            (SbcError::Timeout { budget: 9 }, "9 rounds"),
            (
                SbcError::Internal {
                    detail: "boom".into(),
                },
                "boom",
            ),
            (
                SbcError::Backend {
                    detail: "bind refused".into(),
                },
                "bring-up",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
