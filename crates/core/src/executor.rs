//! A persistent worker-pool executor for the two-level round scheduler —
//! std-only (channels-of-tasks via `Mutex` + `Condvar`, `std::thread`
//! workers), no external dependencies.
//!
//! # Why a persistent pool
//!
//! PR 4 parallelized the instance pool's shared clock tick with
//! `std::thread::scope`, which spawns and joins OS threads on **every
//! tick**. At tens of thousands of ticks per second the spawn/join cost
//! (~10–50µs per worker) dominates small batches — it is exactly why the
//! old `TickMode::Auto` refused to parallelize small pools. [`Executor`]
//! keeps its workers alive for the life of the pool and feeds them batches
//! through a shared queue, so a tick costs a queue push and a condvar
//! wake-up instead of thread creation.
//!
//! # The two-level schedule
//!
//! The executor implements [`ShardRunner`], the scheduling seam of
//! `sbc_uc::exec`, and serves **both levels** of work the pool produces:
//!
//! * **Across instances** — `PooledSbcWorld::tick_all` splits the live
//!   instances into contiguous id-ranges and runs each range as one job.
//! * **Across parties within one instance** — each instance job may call
//!   back into the *same* executor through `SbcWorld::tick_sharded`
//!   (`RealSbcWorld` shards its release-round compute and its delivery
//!   distribution). Nesting is deadlock-free by construction: a batch is
//!   drained by its **submitting thread** as well as by idle workers, so a
//!   batch always completes even when every worker is busy with outer
//!   jobs.
//!
//! # Safety
//!
//! Jobs borrow caller-local state (`&mut` world shards), so their closures
//! are not `'static`; handing them to persistent threads requires erasing
//! the lifetime. The erasure is sound because [`ShardRunner::run_boxed`]
//! never returns before every job of the batch has finished running (the
//! completion latch counts panicked jobs too), so no borrow captured by a
//! job can outlive the stack frame that owns it. This is the same
//! contract `std::thread::scope` enforces — amortized across calls — and
//! the only `unsafe` in the workspace; it is confined to the private
//! `erase_job_lifetime` helper below.

#![allow(unsafe_code)]

use sbc_uc::exec::ShardRunner;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A lifetime-erased job.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Erases a job's borrow lifetime so it can ride a persistent worker.
///
/// # Safety
///
/// The caller must guarantee the job has **finished executing** before any
/// borrow it captures expires. [`Executor::run_boxed`] upholds this by
/// blocking on the batch's completion latch — which counts every job,
/// including panicked ones — before returning (and before re-raising any
/// captured panic).
unsafe fn erase_job_lifetime(job: Box<dyn FnOnce() + Send + '_>) -> Task {
    // SAFETY: deferred to the caller (see above); the transmute only
    // widens the trait object's lifetime bound, layout is identical.
    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Task>(job) }
}

/// Ignore mutex poisoning: the executor's locks are only held for queue
/// pushes/pops and counter updates (jobs run *outside* the locks, wrapped
/// in `catch_unwind`), so a poisoned lock still guards consistent data.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One submitted batch of jobs: its own work queue, a completion latch,
/// and the first captured panic.
struct Batch {
    jobs: Mutex<VecDeque<Task>>,
    /// Jobs not yet finished (running or queued).
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Batch {
    /// Runs queued jobs until the batch's queue is empty. Shared by the
    /// submitting thread and any helping workers.
    fn drain(&self) {
        loop {
            let Some(job) = lock(&self.jobs).pop_front() else {
                return;
            };
            if let Err(panic) = catch_unwind(AssertUnwindSafe(job)) {
                let mut slot = lock(&self.panic);
                slot.get_or_insert(panic);
            }
            let mut pending = lock(&self.pending);
            *pending -= 1;
            if *pending == 0 {
                self.done.notify_all();
            }
        }
    }
}

/// The shared worker-facing state: a queue of batch-drain notifications.
struct Shared {
    queue: Mutex<(VecDeque<Task>, bool)>,
    ready: Condvar,
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut guard = lock(&shared.queue);
            loop {
                if let Some(t) = guard.0.pop_front() {
                    break t;
                }
                if guard.1 {
                    return; // shutdown
                }
                guard = shared
                    .ready
                    .wait(guard)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // Tasks are batch-drain notifications; panics inside jobs are
        // captured by `Batch::drain`, so the worker itself never unwinds.
        task();
    }
}

/// A persistent pool of worker threads implementing [`ShardRunner`].
///
/// Construction spawns the workers once; every
/// [`ShardRunner::run_boxed`] call after that costs a queue push per
/// helper plus one condvar broadcast. The submitting thread participates
/// in draining its own batch, so:
///
/// * a 1-thread executor degrades to the inline serial loop,
/// * nested batches (an outer job submitting an inner batch) complete
///   without any idle worker — no deadlock by construction,
/// * panics propagate to the submitter after the batch settles, matching
///   the inline-loop contract.
///
/// Dropping the executor shuts the workers down and joins them.
pub struct Executor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Executor {
    /// Spawns a pool of `threads` persistent workers (at least one).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sbc-executor-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor { shared, workers }
    }

    /// Number of persistent worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        lock(&self.shared.queue).1 = true;
        self.shared.ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl ShardRunner for Executor {
    fn run_boxed(&self, jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
        // A single job — or a pool too small for any helper to beat the
        // submitting thread, which drains the batch itself anyway — runs
        // inline: same semantics, no queue traffic.
        if jobs.len() <= 1 || self.workers.len() <= 1 {
            for job in jobs {
                job();
            }
            return;
        }
        let count = jobs.len();
        let batch = Arc::new(Batch {
            // SAFETY: `erase_job_lifetime`'s contract — this function does
            // not return (or re-raise a job panic) until the completion
            // latch below reports every job finished, so no borrow
            // captured by a job outlives the caller's frame. Leftover
            // drain notifications in the worker queue only hold the
            // (by then empty) batch through its Arc.
            jobs: Mutex::new(
                jobs.into_iter()
                    .map(|j| unsafe { erase_job_lifetime(j) })
                    .collect(),
            ),
            pending: Mutex::new(count),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        // Notify up to jobs-1 workers (the submitter takes jobs too).
        let helpers = self.workers.len().min(count - 1);
        {
            let mut guard = lock(&self.shared.queue);
            for _ in 0..helpers {
                let b = Arc::clone(&batch);
                guard.0.push_back(Box::new(move || b.drain()));
            }
        }
        self.shared.ready.notify_all();
        // Participate, then wait for jobs still running on helpers.
        batch.drain();
        {
            let mut pending = lock(&batch.pending);
            while *pending > 0 {
                pending = batch
                    .done
                    .wait(pending)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        let panic = lock(&batch.panic).take();
        if let Some(panic) = panic {
            resume_unwind(panic);
        }
    }

    fn width(&self) -> usize {
        self.workers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_uc::exec::run_shards;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_job_order() {
        let exec = Executor::new(4);
        for len in [0usize, 1, 2, 7, 64, 1000] {
            let jobs: Vec<_> = (0..len).map(|i| move || i * 3).collect();
            let out = run_shards(&exec, jobs);
            assert_eq!(out, (0..len).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn jobs_borrow_caller_state_mutably() {
        let exec = Executor::new(3);
        let mut slots = vec![0u64; 97];
        {
            let jobs: Vec<_> = slots
                .chunks_mut(10)
                .enumerate()
                .map(|(k, chunk)| {
                    move || {
                        for (i, slot) in chunk.iter_mut().enumerate() {
                            *slot = (k * 10 + i) as u64;
                        }
                    }
                })
                .collect();
            run_shards(&exec, jobs);
        }
        assert_eq!(slots, (0..97u64).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_many_batches() {
        let exec = Executor::new(2);
        let hits = AtomicUsize::new(0);
        for _ in 0..200 {
            let jobs: Vec<_> = (0..4)
                .map(|_| || hits.fetch_add(1, Ordering::Relaxed))
                .collect();
            run_shards(&exec, jobs);
        }
        assert_eq!(hits.load(Ordering::Relaxed), 800);
    }

    #[test]
    fn panics_propagate_after_the_batch_settles() {
        let exec = Executor::new(2);
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..8)
                .map(|i| {
                    let finished = &finished;
                    Box::new(move || {
                        if i == 3 {
                            panic!("executor boom");
                        }
                        finished.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            exec.run_boxed(jobs);
        }));
        assert!(result.is_err(), "job panic reaches the submitter");
        // Every non-panicking job still ran exactly once (the latch waits
        // for the whole batch before re-raising).
        assert_eq!(finished.load(Ordering::SeqCst), 7);
        // The pool survives a panicked batch.
        assert_eq!(run_shards(&exec, vec![|| 41 + 1]), vec![42]);
    }

    #[test]
    fn nested_batches_complete_even_when_all_workers_are_busy() {
        // 2 workers, 4 outer jobs each submitting an inner batch: inner
        // batches must complete by submitter participation alone.
        let exec = Executor::new(2);
        let outer: Vec<_> = (0..4)
            .map(|k| {
                let exec = &exec;
                move || {
                    let inner: Vec<_> = (0..8).map(|i| move || k * 100 + i).collect();
                    run_shards(exec, inner).iter().sum::<usize>()
                }
            })
            .collect();
        let sums = run_shards(&exec, outer);
        assert_eq!(sums, vec![28, 828, 1628, 2428]);
    }

    #[test]
    fn single_thread_executor_is_the_serial_loop() {
        let exec = Executor::new(1);
        assert_eq!(exec.threads(), 1);
        let order = Mutex::new(Vec::new());
        let jobs: Vec<_> = (0..5)
            .map(|i| {
                let order = &order;
                move || lock(order).push(i)
            })
            .collect();
        run_shards(&exec, jobs);
        assert_eq!(*lock(&order), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let exec = Executor::new(3);
        run_shards(&exec, (0..10).map(|i| move || i).collect::<Vec<_>>());
        drop(exec); // must not hang or leak threads
    }
}
