//! Instance-multiplexed simultaneous broadcast: many concurrent SBC
//! instances over one shared world stack.
//!
//! The paper's applications never run *one* broadcast: a DURS randomness
//! beacon runs overlapping epoch schedules, an election floor handles
//! parallel motions, an auction house sells concurrent lots. This module
//! provides the execution surface for that pattern:
//!
//! * [`InstanceId`] — names one SBC instance for the life of the pool
//!   (re-exported from `sbc_uc::exec`, where the instance-addressed
//!   [`PoolWorld`] trait lives).
//! * [`PooledSbcWorld`] — the world layer: many concurrent instances of
//!   any [`SbcBackend`], sharing **one clock** (a single round counter
//!   batch-steps every live instance), **one corruption state** (per-party
//!   and global across instances, exactly the UC model where the adversary
//!   corrupts a *party*, not a party-in-a-session), and **one seed** (each
//!   instance's randomness — including its random-oracle view — is a
//!   domain-separated fork keyed by instance id, the standard UC-with-
//!   joint-state session-id separation).
//! * [`SbcPool`] — the session layer: the fallible, instance-addressed
//!   sibling of [`SbcSession`](crate::api::SbcSession). `open_instance` /
//!   [`submit`](SbcPool::submit) / [`step_round`](SbcPool::step_round)
//!   (one shared clock tick for *all* live instances) /
//!   [`run_epoch`](SbcPool::run_epoch) / [`finish`](SbcPool::finish), plus
//!   the full per-instance adversarial surface.
//!
//! `SbcSession` is the single-instance special case of this module: a
//! session is an [`SbcPool`] holding exactly one instance, and — because
//! the first instance of a pool inherits the pool seed unchanged — a
//! one-instance pool reproduces a pre-pool session **bit for bit**.
//!
//! # Sharing, precisely
//!
//! | state | scope | why |
//! |---|---|---|
//! | clock round | pool-global | one `G_clock`; [`SbcPool::step_round`] ticks every live instance |
//! | corruption | per-party, pool-global | UC corruption is of a party; [`SbcPool::corrupt`] hits all instances |
//! | randomness / `F_RO` | per-instance fork | instance ids are session ids; domain separation keeps instances independent |
//! | broadcast period, epoch | per-instance | each instance opens, releases, and turns epochs over on its own schedule |
//!
//! An instance opened at pool round `T` joins the shared clock at `T` in
//! **O(1)** via [`SbcWorld::join_at`]: a fresh stack is verifiably idle, so
//! the catch-up is a clock fast-forward, bit-identical to the literal
//! `O(T·n)` idle-round replay (which remains the guarded fallback). Every
//! instance therefore reports the same time and `τ_rel`s are comparable
//! across instances, and opening instances on a long-lived pool costs the
//! same at round 0 and round 10⁶.
//!
//! # Parallel stepping, serial semantics
//!
//! One shared clock tick ([`SbcPool::step_round`] /
//! [`PooledSbcWorld::tick_all`]) runs a **two-level schedule** on the
//! pool's persistent worker-pool executor
//! ([`sbc_core::executor`](crate::executor), std-only — no external
//! dependencies, and no per-tick thread spawning):
//!
//! 1. **Across instances** — between corruption events instances are fully
//!    independent (separate backend worlds, domain-separated randomness,
//!    no shared mutable state), so the per-instance round fans out across
//!    workers.
//! 2. **Across parties within one instance** — a large-`n` instance's
//!    round further splits into a parallel compute phase (pure per-party
//!    work against an immutable round snapshot) and a serial merge phase
//!    (all clock/oracle/net mutation, in party-id order) via
//!    `SbcWorld::tick_sharded`.
//!
//! Both levels are **observation-invariant**: per-instance drains are
//! merged back in instance-id order and per-party mutations stay serial in
//! party-id order, so transcripts, outputs, and leak order are
//! bit-identical to the serial reference loop no matter how many workers
//! ran. [`TickMode`] picks the instance-level schedule (`Auto` by default:
//! serial when a tick's total work — live instances × parties — is below
//! [`TickMode::PAR_WORK_THRESHOLD`] or on a single-core host;
//! [`TickMode::Threads`] pins the worker count) and [`PartyShard`] the
//! intra-instance one; both are performance knobs only, never semantic
//! ones.
//!
//! # Example: two concurrent instances
//!
//! ```
//! use sbc_core::pool::SbcPool;
//!
//! # fn main() -> Result<(), sbc_core::api::SbcError> {
//! let mut pool = SbcPool::builder(3).seed(b"pool-docs").build()?;
//! let lot_a = pool.open_instance()?;
//! let lot_b = pool.open_instance()?;
//! pool.submit(lot_a, 0, b"bid on A")?;
//! pool.submit(lot_b, 1, b"bid on B")?;
//! // One shared clock: both lots progress per tick and release together.
//! let a = pool.run_to_completion(lot_a)?;
//! let b = pool.run_to_completion(lot_b)?;
//! assert_eq!(a.release_round, b.release_round);
//! # Ok(())
//! # }
//! ```

use crate::api::{AdversaryConfig, EpochResult, SbcResult};
use crate::error::SbcError;
use crate::executor::Executor;
use crate::protocol::sbc_wire;
use crate::worlds::{IdealSbcWorld, RealSbcWorld, SbcBackend, SbcParams};
use sbc_primitives::drbg::Drbg;
use sbc_uc::exec::{run_shards, shard_ranges, PoolWorld, SbcWorld};
use sbc_uc::ids::PartyId;
use sbc_uc::value::{Command, Value};
use sbc_uc::world::{AdvCommand, Leak};
use std::collections::{BTreeMap, BTreeSet};

pub use sbc_uc::exec::InstanceId;

/// One instance's per-tick drain: the leaks and outputs its backend world
/// produced during the round, in world order.
type InstanceDrain = (Vec<Leak>, Vec<(PartyId, Command)>);

/// How [`PooledSbcWorld::tick_all`] schedules the per-instance round work
/// of one shared clock tick.
///
/// The choice is **purely a performance knob**: instances are independent
/// between corruption events and the parallel path merges per-instance
/// drains back in instance-id order, so every mode produces bit-identical
/// transcripts, outputs, and leak order. The `sbc_pool_scaling` and
/// `sbc_party_scaling` benches assert exactly that before measuring.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TickMode {
    /// Pick automatically: parallel when a tick's **total work** — live
    /// instances × parties — reaches
    /// [`PAR_WORK_THRESHOLD`](TickMode::PAR_WORK_THRESHOLD); serial
    /// otherwise. The old heuristic counted instances alone, so a
    /// 2-instance × 512-party pool fell back to serial despite a 1024-unit
    /// tick.
    #[default]
    Auto,
    /// Always the serial reference loop (useful for profiling and as the
    /// determinism baseline).
    Serial,
    /// Fan out whenever more than one instance is live (or party sharding
    /// is on), with at least two workers even on a single-core host (so
    /// the parallel path stays exercised everywhere).
    Parallel,
    /// Explicit worker-count override: exactly this many persistent
    /// executor threads, regardless of core count or workload (0 and 1
    /// both mean serial).
    Threads(usize),
}

impl TickMode {
    /// Minimum per-tick work (live instances × parties) before
    /// [`TickMode::Auto`] fans out: below this, even a persistent-pool
    /// dispatch costs more than the tick itself. 24 is the break-even of
    /// the old 8-instance threshold at the default 3-party experiments.
    pub const PAR_WORK_THRESHOLD: usize = 24;

    /// Number of executor workers for a tick over `live` instances of `n`
    /// parties each, given `cores` (queried once at pool construction —
    /// `tick_all` is the hot path and must not pay a per-tick syscall for
    /// a constant).
    fn workers(self, live: usize, n: usize, cores: usize) -> usize {
        match self {
            TickMode::Serial => 1,
            TickMode::Parallel => cores.max(2),
            TickMode::Threads(t) => t.max(1),
            TickMode::Auto if live * n >= Self::PAR_WORK_THRESHOLD => cores,
            TickMode::Auto => 1,
        }
    }
}

/// Whether one shared clock tick also shards **within** each instance —
/// splitting the per-round party loop into a parallel compute phase and a
/// serial merge phase (see `RealSbcWorld::tick_sharded`).
///
/// Like [`TickMode`], a performance knob only: the sharded schedule is
/// bit-identical to the serial loop (pinned at `CompareLevel::Exact` by
/// `tests/pool.rs` and the `sbc_party_scaling` determinism gate). Both
/// shipped backends shard: `RealSbcWorld` splits its release round
/// plan/apply-style, and `IdealSbcWorld` shards its delivery round (see
/// `IdealSbcWorld::tick_sharded`). Backends without a sharded round (plain
/// bookkeeping stacks) run their serial step under every mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PartyShard {
    /// Shard when the instance is large enough
    /// ([`PARTY_SHARD_MIN`](PartyShard::PARTY_SHARD_MIN) parties) and more
    /// than one worker is available.
    #[default]
    Auto,
    /// Never shard within an instance.
    Serial,
    /// Always shard (with at least two workers, even on a single-core
    /// host) — how the determinism tests force the sharded schedule.
    Sharded,
}

impl PartyShard {
    /// Minimum party count before [`PartyShard::Auto`] shards an
    /// instance's round: the sharded wins are the `O(n²)`-scan phases,
    /// which need a sizable `n` to amortize the per-round dispatch.
    pub const PARTY_SHARD_MIN: usize = 64;

    /// Whether a tick over instances of `n` parties shards internally,
    /// given the instance-level `workers` choice.
    fn enabled(self, n: usize, workers: usize) -> bool {
        match self {
            PartyShard::Serial => false,
            PartyShard::Sharded => n >= 2,
            PartyShard::Auto => workers > 1 && n >= Self::PARTY_SHARD_MIN,
        }
    }
}

/// The world layer of the pool: many concurrent instances of one
/// [`SbcBackend`] behind the instance-addressed
/// [`PoolWorld`] trait.
///
/// The pool owns the shared state — the round counter and the global
/// corruption vector — and routes instance-scoped actions to the
/// per-instance backend worlds. Each instance world is built from a
/// domain-separated fork of the pool seed (`seed` itself for instance 0,
/// `seed/"instance"/id` for later ones), so a real and an ideal pool built
/// from the same seed pair up instance by instance — the property
/// [`PoolDualRun`](sbc_uc::exec::PoolDualRun) exploits for keyed
/// transcript comparison.
#[derive(Debug)]
pub struct PooledSbcWorld<W: SbcWorld> {
    params: SbcParams,
    seed: Vec<u8>,
    round: u64,
    next: u64,
    live: BTreeMap<u64, W>,
    retired: BTreeSet<u64>,
    corrupted: Vec<bool>,
    outputs: Vec<(InstanceId, PartyId, Command)>,
    leaks: Vec<(InstanceId, Leak)>,
    aborted: bool,
    tick_mode: TickMode,
    party_shard: PartyShard,
    /// The persistent worker pool, built lazily on the first parallel tick
    /// and kept for the life of the pool (amortizing thread setup across
    /// ticks — the whole point over the old per-tick `thread::scope`).
    executor: Option<Executor>,
    cores: usize,
}

impl<W: SbcBackend> PooledSbcWorld<W> {
    /// Creates an empty pool.
    ///
    /// # Errors
    ///
    /// [`SbcError::InvalidParams`] if the parameters violate Theorem 2's
    /// constraints — checked once here, so instance creation is infallible.
    pub fn new(params: SbcParams, seed: &[u8]) -> Result<Self, SbcError> {
        params.validate()?;
        Ok(PooledSbcWorld {
            params,
            seed: seed.to_vec(),
            round: 0,
            next: 0,
            live: BTreeMap::new(),
            retired: BTreeSet::new(),
            corrupted: vec![false; params.n],
            outputs: Vec::new(),
            leaks: Vec::new(),
            aborted: false,
            tick_mode: TickMode::Auto,
            party_shard: PartyShard::Auto,
            executor: None,
            cores: std::thread::available_parallelism().map_or(1, usize::from),
        })
    }

    /// Opens a new instance: builds a backend world on the instance's
    /// domain-separated seed fork, replays the global corruption state into
    /// it, and joins it to the shared clock round in O(1) via
    /// [`SbcWorld::join_at`] (a fresh stack is verifiably idle, so the
    /// fast path applies; the cost is independent of the pool round).
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`SbcBackend::from_params`] error. A failed
    /// open consumes no instance id and leaves the pool unchanged.
    pub fn open_instance(&mut self) -> Result<InstanceId, SbcError> {
        let id = self.next;
        // Instance 0 inherits the pool seed unchanged: a one-instance pool
        // is bit-for-bit the plain single-session world.
        let sub_seed = if id == 0 {
            self.seed.clone()
        } else {
            let mut s = self.seed.clone();
            s.extend_from_slice(b"/instance/");
            s.extend_from_slice(&id.to_be_bytes());
            s
        };
        let mut world = W::from_params(self.params, &sub_seed)?;
        self.next += 1;
        for p in 0..self.params.n {
            if self.corrupted[p] {
                world.adversary(AdvCommand::Corrupt(PartyId(p as u32)));
            }
        }
        world.join_at(self.round);
        self.live.insert(id, world);
        self.sync(id);
        Ok(InstanceId(id))
    }
}

impl<W: SbcWorld> PooledSbcWorld<W> {
    fn sync(&mut self, id: u64) {
        let Some(world) = self.live.get_mut(&id) else {
            return;
        };
        for leak in world.drain_leaks() {
            self.leaks.push((InstanceId(id), leak));
        }
        for (party, cmd) in world.drain_outputs() {
            self.outputs.push((InstanceId(id), party, cmd));
        }
    }

    /// Number of parties (shared by every instance).
    pub fn n(&self) -> usize {
        self.params.n
    }

    /// The experiment parameters (shared by every instance).
    pub fn params(&self) -> SbcParams {
        self.params
    }

    /// The shared clock round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Whether `instance` is live (opened and not yet closed).
    pub fn is_live(&self, instance: InstanceId) -> bool {
        self.live.contains_key(&instance.0)
    }

    /// Whether `instance` has been closed.
    pub fn is_retired(&self, instance: InstanceId) -> bool {
        self.retired.contains(&instance.0)
    }

    /// Ids of all live instances, in id order.
    pub fn live_ids(&self) -> Vec<InstanceId> {
        self.live.keys().copied().map(InstanceId).collect()
    }

    /// Borrows the backend world of a live instance — the introspection
    /// seam for backend-specific assertions (e.g. a networked backend's
    /// transport statistics) that the instance-addressed [`PoolWorld`]
    /// surface deliberately does not carry.
    pub fn instance_world(&self, instance: InstanceId) -> Option<&W> {
        self.live.get(&instance.0)
    }

    /// Number of corrupted parties.
    pub fn corrupted_count(&self) -> usize {
        self.corrupted.iter().filter(|c| **c).count()
    }

    /// Number of retired (finished, not yet forgotten) instance ids still
    /// tracked.
    pub fn retired_count(&self) -> usize {
        self.retired.len()
    }

    /// Number of release outputs buffered and not yet drained.
    pub fn buffered_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of leaks buffered and not yet drained.
    pub fn buffered_leaks(&self) -> usize {
        self.leaks.len()
    }

    /// Whether `party` is corrupted (globally, in every instance).
    pub fn party_corrupted(&self, party: PartyId) -> bool {
        (party.index()) < self.params.n && self.corrupted[party.index()]
    }

    /// Environment input to `party` of `instance` (ignored for unknown or
    /// closed instances — typed errors live at the [`SbcPool`] layer).
    pub fn input_to(&mut self, instance: InstanceId, party: PartyId, cmd: Command) {
        if let Some(world) = self.live.get_mut(&instance.0) {
            world.input(party, cmd);
        }
        self.sync(instance.0);
    }

    /// An instance-scoped adversary command (`SendAs`, `Control`).
    /// Corruption must go through [`corrupt_party`](Self::corrupt_party).
    pub fn adversary_on(&mut self, instance: InstanceId, cmd: AdvCommand) -> Value {
        let resp = match self.live.get_mut(&instance.0) {
            Some(world) => world.adversary(cmd),
            None => Value::Unit,
        };
        self.sync(instance.0);
        resp
    }

    /// Corrupts `party` in every live instance at once, recording the
    /// global corruption for instances opened later. Returns the
    /// per-instance corruption responses, or `None` if refused (already
    /// corrupted, or the dishonest-majority budget `t ≤ n − 1` is
    /// exhausted).
    ///
    /// The budget decision is taken **here**, not in the backends: a pool
    /// must be able to corrupt before any instance exists, so it mirrors
    /// the `CorruptionTracker` rule the backend worlds enforce. If a
    /// backend ever disagreed (refused after the pool accepted), its
    /// `Bool(false)` response would fail the session layer's response
    /// parse as [`SbcError::Internal`] — loud, not silent drift.
    pub fn corrupt_party(&mut self, party: PartyId) -> Option<Vec<(InstanceId, Value)>> {
        if party.index() >= self.params.n || self.corrupted[party.index()] {
            return None;
        }
        if self.corrupted_count() + 1 > self.params.n.saturating_sub(1) {
            return None;
        }
        self.corrupted[party.index()] = true;
        let ids: Vec<u64> = self.live.keys().copied().collect();
        let mut views = Vec::with_capacity(ids.len());
        for id in ids {
            let resp = self
                .live
                .get_mut(&id)
                .expect("id drawn from live set")
                .adversary(AdvCommand::Corrupt(party));
            self.sync(id);
            views.push((InstanceId(id), resp));
        }
        Some(views)
    }

    /// The current [`TickMode`].
    pub fn tick_mode(&self) -> TickMode {
        self.tick_mode
    }

    /// Sets how [`tick_all`](Self::tick_all) schedules instance stepping.
    /// Purely a performance knob: every mode is observation-equivalent.
    pub fn set_tick_mode(&mut self, mode: TickMode) {
        self.tick_mode = mode;
    }

    /// The current [`PartyShard`] policy.
    pub fn party_shard(&self) -> PartyShard {
        self.party_shard
    }

    /// Sets whether ticks also shard **within** each instance (see
    /// [`PartyShard`]). Purely a performance knob: every mode is
    /// observation-equivalent.
    pub fn set_party_shard(&mut self, shard: PartyShard) {
        self.party_shard = shard;
    }

    /// Ensures the persistent executor exists with at least `threads`
    /// workers. Growing replaces the pool (the old workers drain and join
    /// on drop); shrinking never happens — spare workers just idle.
    fn ensure_executor(&mut self, threads: usize) {
        let too_small = match &self.executor {
            Some(e) => e.threads() < threads,
            None => true,
        };
        if too_small {
            self.executor = Some(Executor::new(threads));
        }
    }

    /// One shared clock tick: every live instance runs one full round (all
    /// parties advance; backend worlds ignore corrupted ones).
    ///
    /// This is the entry point of the **two-level scheduler**. Instances
    /// are independent between corruption events, so the per-instance
    /// round work fans out across the pool's persistent
    /// [`Executor`] workers when the [`TickMode`] allows it (level 1), and
    /// each instance's own round may further shard its per-party compute
    /// through `SbcWorld::tick_sharded` on the *same* executor when the
    /// [`PartyShard`] policy allows it (level 2) — work items are
    /// effectively `(instance, party-shard)` pairs. Each worker drains its
    /// instances' leaks and outputs locally; the drains are merged back in
    /// instance-id order, making the result — transcripts, outputs, leak
    /// order — bit-identical to the serial reference loop.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from a backend world (the same panic the serial
    /// loop would have surfaced inline).
    pub fn tick_all(&mut self) {
        let live = self.live.len();
        let n = self.params.n;
        let workers = self.tick_mode.workers(live, n, self.cores);
        let shard = self.party_shard.enabled(n, workers);
        if !shard && (workers <= 1 || live <= 1) {
            // Serial reference path: the backend's own round-level `tick`
            // (which may restructure the round internally — the contract
            // is bit-identical transcripts either way).
            let ids: Vec<u64> = self.live.keys().copied().collect();
            for id in ids {
                {
                    let world = self.live.get_mut(&id).expect("id drawn from live set");
                    world.tick();
                }
                self.sync(id);
            }
        } else if live > 0 {
            // Forced sharding still needs real workers to shard across,
            // even when the instance-level choice came out serial.
            let threads = if shard { workers.max(2) } else { workers };
            self.ensure_executor(threads);
            let exec = self.executor.as_ref().expect("just ensured");
            // BTreeMap iteration is id-ordered; contiguous chunks and
            // in-order result collection keep the drain vector id-ordered.
            let mut worlds: Vec<&mut W> = self.live.values_mut().collect();
            let instance_shards = if workers > 1 { workers.min(live) } else { 1 };
            let ranges = shard_ranges(live, instance_shards);
            let mut rest = worlds.as_mut_slice();
            let mut jobs = Vec::with_capacity(ranges.len());
            for r in &ranges {
                let (chunk, tail) = rest.split_at_mut(r.len());
                rest = tail;
                jobs.push(move || {
                    chunk
                        .iter_mut()
                        .map(|world| {
                            if shard {
                                world.tick_sharded(exec);
                            } else {
                                world.tick();
                            }
                            (world.drain_leaks(), world.drain_outputs())
                        })
                        .collect::<Vec<InstanceDrain>>()
                });
            }
            let drains: Vec<InstanceDrain> = run_shards(exec, jobs).into_iter().flatten().collect();
            // Deterministic merge: exactly the per-instance leak-then-output
            // interleaving the serial loop's `sync` produces, in id order.
            let ids: Vec<u64> = self.live.keys().copied().collect();
            for (id, (leaks, outs)) in ids.into_iter().zip(drains) {
                self.leaks
                    .extend(leaks.into_iter().map(|leak| (InstanceId(id), leak)));
                self.outputs
                    .extend(outs.into_iter().map(|(p, cmd)| (InstanceId(id), p, cmd)));
            }
        }
        self.round += 1;
    }

    /// Drains buffered party outputs, keyed by instance.
    pub fn take_outputs(&mut self) -> Vec<(InstanceId, PartyId, Command)> {
        std::mem::take(&mut self.outputs)
    }

    /// Drains buffered adversary-visible leaks, keyed by instance.
    pub fn take_leaks(&mut self) -> Vec<(InstanceId, Leak)> {
        std::mem::take(&mut self.leaks)
    }

    /// The agreed release round of `instance`'s current period, once open.
    pub fn release_round_of(&self, instance: InstanceId) -> Option<u64> {
        self.live.get(&instance.0).and_then(|w| w.release_round())
    }

    /// The end of `instance`'s current broadcast period, once open.
    pub fn period_end_of(&self, instance: InstanceId) -> Option<u64> {
        self.live.get(&instance.0).and_then(|w| w.period_end())
    }

    /// Per-instance epoch turnover ([`SbcWorld::begin_new_period`]).
    pub fn begin_new_period_of(&mut self, instance: InstanceId) {
        if let Some(world) = self.live.get_mut(&instance.0) {
            world.begin_new_period();
        }
    }

    /// Retires `instance`: it stops stepping and refuses further traffic.
    /// Any simulator-abort flag it carried stays sticky on the pool.
    ///
    /// The instance's world is drained **before** removal, so leaks and
    /// outputs still buffered inside it surface through
    /// [`take_leaks`](Self::take_leaks) / [`take_outputs`](Self::take_outputs)
    /// instead of being dropped with the world — retiring is a final
    /// drain, never a silent discard.
    pub fn retire(&mut self, instance: InstanceId) {
        self.sync(instance.0);
        if let Some(world) = self.live.remove(&instance.0) {
            self.aborted |= world.would_abort();
            self.retired.insert(instance.0);
        }
    }

    /// Whether any instance — live or retired — hit a simulation-abort
    /// event.
    pub fn any_abort(&self) -> bool {
        self.aborted || self.live.values().any(|w| w.would_abort())
    }

    /// Forgets a retired instance entirely: its id leaves the retired set,
    /// so the pool no longer distinguishes it from an id that never
    /// existed. Returns whether the id was in the retired set. Ids are
    /// never reused (`next` only grows), and a sticky abort recorded at
    /// retirement survives the forget — pruning reclaims bookkeeping, it
    /// cannot launder an abort.
    pub fn forget_retired(&mut self, instance: InstanceId) -> bool {
        self.retired.remove(&instance.0)
    }
}

impl<W: SbcBackend> PoolWorld for PooledSbcWorld<W> {
    type OpenError = SbcError;
    fn n(&self) -> usize {
        PooledSbcWorld::n(self)
    }
    fn round(&self) -> u64 {
        PooledSbcWorld::round(self)
    }
    fn open_instance(&mut self) -> Result<InstanceId, SbcError> {
        PooledSbcWorld::open_instance(self)
    }
    fn live_instances(&self) -> Vec<InstanceId> {
        self.live_ids()
    }
    fn input(&mut self, instance: InstanceId, party: PartyId, cmd: Command) {
        self.input_to(instance, party, cmd);
    }
    fn adversary(&mut self, instance: InstanceId, cmd: AdvCommand) -> Value {
        self.adversary_on(instance, cmd)
    }
    fn corrupt(&mut self, party: PartyId) -> Option<Vec<(InstanceId, Value)>> {
        self.corrupt_party(party)
    }
    fn is_corrupted(&self, party: PartyId) -> bool {
        self.party_corrupted(party)
    }
    fn step_round(&mut self) {
        self.tick_all();
    }
    fn drain_outputs(&mut self) -> Vec<(InstanceId, PartyId, Command)> {
        self.take_outputs()
    }
    fn drain_leaks(&mut self) -> Vec<(InstanceId, Leak)> {
        self.take_leaks()
    }
    fn release_round(&self, instance: InstanceId) -> Option<u64> {
        self.release_round_of(instance)
    }
    fn period_end(&self, instance: InstanceId) -> Option<u64> {
        self.period_end_of(instance)
    }
    fn begin_new_period(&mut self, instance: InstanceId) {
        self.begin_new_period_of(instance);
    }
    fn close_instance(&mut self, instance: InstanceId) {
        self.retire(instance);
    }
    fn would_abort(&self) -> bool {
        self.any_abort()
    }
}

/// Builder for [`SbcPool`] — same parameter and adversary surface as
/// [`SbcSessionBuilder`](crate::api::SbcSessionBuilder), producing a pool
/// instead of a single-instance session.
#[derive(Clone, Debug)]
pub struct SbcPoolBuilder {
    params: SbcParams,
    seed: Vec<u8>,
    adversary: AdversaryConfig,
    tick_mode: TickMode,
    party_shard: PartyShard,
}

impl SbcPoolBuilder {
    /// Broadcast period span Φ (rounds) — shared by every instance.
    pub fn phi(mut self, phi: u64) -> Self {
        self.params.phi = phi;
        self
    }

    /// Delivery delay ∆ (rounds after the period ends).
    pub fn delta(mut self, delta: u64) -> Self {
        self.params.delta = delta;
        self
    }

    /// TLE leakage advantage `α_TLE`.
    pub fn tle_alpha(mut self, alpha: u64) -> Self {
        self.params.tle_alpha = alpha;
        self
    }

    /// TLE ciphertext-generation delay.
    pub fn tle_delay(mut self, delay: u64) -> Self {
        self.params.tle_delay = delay;
        self
    }

    /// Experiment seed (determines all randomness; instances run on
    /// domain-separated forks).
    pub fn seed(mut self, seed: &[u8]) -> Self {
        self.seed = seed.to_vec();
        self
    }

    /// Installs an adversary configuration.
    pub fn adversary(mut self, cfg: AdversaryConfig) -> Self {
        self.adversary = cfg;
        self
    }

    /// Sets how shared clock ticks schedule instance stepping (see
    /// [`TickMode`]; `Auto` by default). A performance knob only — every
    /// mode produces bit-identical transcripts, outputs, and leak order.
    /// Use [`TickMode::Threads`] to pin the persistent executor's worker
    /// count explicitly.
    pub fn tick_mode(mut self, mode: TickMode) -> Self {
        self.tick_mode = mode;
        self
    }

    /// Sets whether clock ticks also shard the per-party round work
    /// **within** each instance (see [`PartyShard`]; `Auto` by default).
    /// A performance knob only — every mode produces bit-identical
    /// transcripts, outputs, and leak order.
    pub fn party_shard(mut self, shard: PartyShard) -> Self {
        self.party_shard = shard;
        self
    }

    /// Convenience: corrupt `parties` (globally) at pool start.
    pub fn corrupt(mut self, parties: &[u32]) -> Self {
        self.adversary = self.adversary.corrupt(parties);
        self
    }

    /// Convenience: retain adversary-visible leaks for inspection.
    pub fn capture_leaks(mut self) -> Self {
        self.adversary = self.adversary.capture_leaks();
        self
    }

    /// Convenience: cap each instance's captured-leak buffer (see
    /// [`AdversaryConfig::leak_cap`]).
    pub fn leak_cap(mut self, cap: usize) -> Self {
        self.adversary = self.adversary.leak_cap(cap);
        self
    }

    /// Builds the pool over the real protocol stack.
    ///
    /// # Errors
    ///
    /// * [`SbcError::InvalidParams`] if the parameters violate Theorem 2's
    ///   constraints or `n = 0`.
    /// * [`SbcError::PartyOutOfRange`] if the adversary configuration
    ///   corrupts a party index `≥ n`.
    pub fn build(self) -> Result<SbcPool, SbcError> {
        self.build_backend::<RealSbcWorld>()
    }

    /// Builds the pool over the ideal world (`F_SBC + S_SBC` per
    /// instance).
    ///
    /// # Errors
    ///
    /// Same as [`build`](SbcPoolBuilder::build).
    pub fn build_ideal(self) -> Result<SbcPool<IdealSbcWorld>, SbcError> {
        self.build_backend::<IdealSbcWorld>()
    }

    /// Builds the pool over any [`SbcBackend`].
    ///
    /// # Errors
    ///
    /// Same as [`build`](SbcPoolBuilder::build).
    pub fn build_backend<W: SbcBackend>(self) -> Result<SbcPool<W>, SbcError> {
        self.params.validate()?;
        for &p in &self.adversary.corrupt_at_start {
            if p as usize >= self.params.n {
                return Err(SbcError::PartyOutOfRange {
                    party: p,
                    n: self.params.n,
                });
            }
        }
        let mut pool = SbcPool::from_parts(
            self.params,
            &self.seed,
            self.adversary.capture_leaks,
            self.adversary.leak_cap,
        )?;
        pool.set_tick_mode(self.tick_mode);
        pool.set_party_shard(self.party_shard);
        for &p in &self.adversary.corrupt_at_start {
            // Range-checked above; double entries surface as CorruptedParty.
            pool.corrupt(p)?;
        }
        Ok(pool)
    }
}

/// Per-instance session bookkeeping.
#[derive(Debug, Default)]
struct InstanceState {
    epoch: u64,
    submitted: usize,
    released: Option<SbcResult>,
    leaks: Vec<Leak>,
    /// Leaks evicted from `leaks` by the pool's leak cap (0 when
    /// uncapped): the typed overflow counter that keeps a bounded buffer
    /// honest.
    dropped_leaks: u64,
}

/// A point-in-time memory-bookkeeping census of a pool — the steady-state
/// proxy long-lived services watch to prove churn (instances opening and
/// finishing while others run) does not accumulate state.
///
/// All fields count entries, not bytes; a pool that drains and prunes
/// everything it has consumed returns to the all-zeros footprint (modulo
/// whatever is deliberately live).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolFootprint {
    /// Live (open, unfinished) instances.
    pub live: usize,
    /// Finished instances not yet pruned.
    pub retired: usize,
    /// Instances with per-instance bookkeeping still tracked (live +
    /// finished-but-unpruned).
    pub tracked: usize,
    /// Release outputs buffered in the world layer, not yet drained.
    pub buffered_outputs: usize,
    /// Leaks buffered in the world layer, not yet routed to instances.
    pub buffered_leaks: usize,
    /// Captured leaks retained across all tracked instances.
    pub captured_leaks: usize,
    /// Total leaks evicted by the leak cap across all tracked instances.
    pub dropped_leaks: u64,
}

/// A pool of concurrent simultaneous-broadcast instances over one shared
/// world stack — the instance-addressed session API.
///
/// Every method of [`SbcSession`](crate::api::SbcSession) exists here with
/// an extra leading [`InstanceId`] argument; the pool adds
/// [`open_instance`](SbcPool::open_instance) (start a new concurrent
/// instance), [`step_round`](SbcPool::step_round) (one shared clock tick
/// batch-stepping **all** live instances, returning every release that
/// tick produced), and [`finish`](SbcPool::finish) (release + retire an
/// instance). Corruption ([`corrupt`](SbcPool::corrupt)) is per-party and
/// global across instances.
///
/// See the [module docs](self) for the sharing table and the relation to
/// `SbcSession`.
#[derive(Debug)]
pub struct SbcPool<W: SbcWorld = RealSbcWorld> {
    world: PooledSbcWorld<W>,
    capture_leaks: bool,
    leak_cap: Option<usize>,
    adv_rng: Drbg,
    state: BTreeMap<u64, InstanceState>,
}

impl SbcPool {
    /// Starts building a pool for `n` parties.
    pub fn builder(n: usize) -> SbcPoolBuilder {
        SbcPoolBuilder {
            params: SbcParams::default_for(n),
            seed: b"sbc-session".to_vec(),
            adversary: AdversaryConfig::default(),
            tick_mode: TickMode::default(),
            party_shard: PartyShard::default(),
        }
    }
}

impl<W: SbcWorld> SbcPool<W> {
    pub(crate) fn from_parts(
        params: SbcParams,
        seed: &[u8],
        capture_leaks: bool,
        leak_cap: Option<usize>,
    ) -> Result<Self, SbcError>
    where
        W: SbcBackend,
    {
        let mut adv_seed = seed.to_vec();
        adv_seed.extend_from_slice(b"/session-adversary");
        Ok(SbcPool {
            world: PooledSbcWorld::new(params, seed)?,
            capture_leaks,
            leak_cap,
            adv_rng: Drbg::from_seed(&adv_seed),
            state: BTreeMap::new(),
        })
    }

    /// The experiment parameters (shared by every instance).
    pub fn params(&self) -> SbcParams {
        self.world.params()
    }

    /// The shared clock round.
    pub fn round(&self) -> u64 {
        self.world.round()
    }

    /// Fast-forwards a **fresh** pool to shared-clock round `round` with
    /// the next instance id at `next_instance` — the restore seam behind
    /// era-based checkpointing in `sbc-service`.
    ///
    /// At a checkpoint boundary every pre-boundary instance has been
    /// delivered and pruned, so the pool's entire state is the pair
    /// `(round, next)`: instance seed forks depend only on the id, a new
    /// instance catches up to any round in O(1) via `join_at`, and the
    /// session-adversary DRBG is untouched as long as no adversarial
    /// operation has consumed it. A fresh pool fast-forwarded this way
    /// therefore continues **bit-identically** to the original — for
    /// pools driven without corruption or injection (the service's
    /// discipline). Pools that have corrupted parties or consumed
    /// adversarial randomness are outside the checkpoint contract; their
    /// restore path is full journal replay.
    ///
    /// # Errors
    ///
    /// [`SbcError::NotFresh`] if the pool has already opened an instance
    /// or advanced its clock — fast-forward would silently discard that
    /// history.
    pub fn resume_at(&mut self, round: u64, next_instance: u64) -> Result<(), SbcError> {
        if self.world.round != 0
            || self.world.next != 0
            || !self.world.retired.is_empty()
            || !self.state.is_empty()
        {
            return Err(SbcError::NotFresh {
                round: self.world.round,
                opened: self.world.next,
            });
        }
        self.world.round = round;
        self.world.next = next_instance;
        Ok(())
    }

    /// Ids of all live instances, in id order.
    pub fn live_instances(&self) -> Vec<InstanceId> {
        self.world.live_ids()
    }

    /// The id the next [`open_instance`](SbcPool::open_instance) call
    /// will assign — equivalently, how many instance ids this pool has
    /// consumed. Together with [`round`](SbcPool::round) this is the
    /// complete fast-forward coordinate for [`resume_at`](SbcPool::resume_at).
    pub fn next_instance_id(&self) -> u64 {
        self.world.next
    }

    /// Whether `party` is corrupted (globally, in every instance).
    pub fn is_corrupted(&self, party: u32) -> bool {
        self.world.party_corrupted(PartyId(party))
    }

    /// Whether any instance's simulator hit a simulation-abort event
    /// (always `false` on real backends; sticky across
    /// [`finish`](SbcPool::finish)).
    pub fn would_abort(&self) -> bool {
        self.world.any_abort()
    }

    /// The current [`TickMode`] of the underlying world.
    pub fn tick_mode(&self) -> TickMode {
        self.world.tick_mode()
    }

    /// Sets how [`step_round`](SbcPool::step_round) schedules instance
    /// stepping. A performance knob only — every mode is
    /// observation-equivalent (see [`TickMode`]).
    pub fn set_tick_mode(&mut self, mode: TickMode) {
        self.world.set_tick_mode(mode);
    }

    /// The current [`PartyShard`] policy of the underlying world.
    pub fn party_shard(&self) -> PartyShard {
        self.world.party_shard()
    }

    /// Sets whether [`step_round`](SbcPool::step_round) also shards the
    /// per-party round work within each instance. A performance knob only —
    /// every mode is observation-equivalent (see [`PartyShard`]).
    pub fn set_party_shard(&mut self, shard: PartyShard) {
        self.world.set_party_shard(shard);
    }

    fn check_instance(&self, instance: InstanceId) -> Result<(), SbcError> {
        if self.world.is_live(instance) {
            Ok(())
        } else if self.world.is_retired(instance) {
            Err(SbcError::InstanceFinished {
                instance: instance.0,
            })
        } else {
            Err(SbcError::UnknownInstance {
                instance: instance.0,
            })
        }
    }

    /// Like [`check_instance`](Self::check_instance) but accepts finished
    /// instances — for read-only surfaces (captured leaks) that outlive the
    /// instance by design.
    fn check_known(&self, instance: InstanceId) -> Result<(), SbcError> {
        if self.world.is_live(instance) || self.world.is_retired(instance) {
            Ok(())
        } else {
            Err(SbcError::UnknownInstance {
                instance: instance.0,
            })
        }
    }

    fn check_party(&self, party: u32) -> Result<(), SbcError> {
        if (party as usize) >= self.params().n {
            return Err(SbcError::PartyOutOfRange {
                party,
                n: self.params().n,
            });
        }
        Ok(())
    }

    fn state_mut(&mut self, instance: InstanceId) -> &mut InstanceState {
        self.state.entry(instance.0).or_default()
    }

    fn sync_leaks(&mut self) {
        for (id, leak) in self.world.take_leaks() {
            if self.capture_leaks {
                if let Some(st) = self.state.get_mut(&id.0) {
                    match self.leak_cap {
                        // A zero cap retains nothing: count and move on.
                        Some(0) => st.dropped_leaks += 1,
                        Some(cap) => {
                            if st.leaks.len() >= cap {
                                let excess = st.leaks.len() + 1 - cap;
                                st.leaks.drain(..excess);
                                st.dropped_leaks += excess as u64;
                            }
                            st.leaks.push(leak);
                        }
                        None => st.leaks.push(leak),
                    }
                }
            }
        }
    }

    /// The zero-based epoch `instance` is currently accepting submissions
    /// for.
    ///
    /// # Errors
    ///
    /// [`SbcError::UnknownInstance`] / [`SbcError::InstanceFinished`].
    pub fn epoch(&self, instance: InstanceId) -> Result<u64, SbcError> {
        self.check_instance(instance)?;
        Ok(self.state.get(&instance.0).map(|s| s.epoch).unwrap_or(0))
    }

    /// Checks whether an honest submission by `party` to `instance` would
    /// currently be accepted, without submitting anything.
    ///
    /// # Errors
    ///
    /// The same errors [`submit`](SbcPool::submit) would return.
    pub fn check_submittable(&self, instance: InstanceId, party: u32) -> Result<(), SbcError> {
        self.check_instance(instance)?;
        self.check_party(party)?;
        if self.world.party_corrupted(PartyId(party)) {
            return Err(SbcError::CorruptedParty { party });
        }
        if let Some(t_end) = self.world.period_end_of(instance) {
            let now = self.world.round();
            if now + self.params().tle_delay >= t_end {
                return Err(SbcError::SubmitAfterClose { round: now, t_end });
            }
        }
        Ok(())
    }

    /// Submits `message` for broadcast by honest `party` in `instance`'s
    /// current epoch.
    ///
    /// # Errors
    ///
    /// * [`SbcError::UnknownInstance`] / [`SbcError::InstanceFinished`] for
    ///   a bad instance id.
    /// * [`SbcError::PartyOutOfRange`] if `party ≥ n`.
    /// * [`SbcError::CorruptedParty`] if `party` is corrupted (in every
    ///   instance — corruption is global).
    /// * [`SbcError::SubmitAfterClose`] if `instance`'s period is too far
    ///   along for the ciphertext to be ready before its `t_end`.
    pub fn submit(
        &mut self,
        instance: InstanceId,
        party: u32,
        message: &[u8],
    ) -> Result<(), SbcError> {
        self.check_submittable(instance, party)?;
        self.state_mut(instance).submitted += 1;
        self.world.input_to(
            instance,
            PartyId(party),
            Command::new("Broadcast", Value::bytes(message)),
        );
        self.sync_leaks();
        Ok(())
    }

    /// One shared clock tick: every live instance runs one full round.
    /// Returns the releases this tick produced, keyed by instance (several
    /// instances on the same schedule release on the same tick).
    ///
    /// Results are also cached per instance, so a release observed here is
    /// still visible to a later [`run_epoch`](SbcPool::run_epoch) /
    /// [`run_to_completion`](SbcPool::run_to_completion) /
    /// [`finish`](SbcPool::finish) on that instance.
    ///
    /// # Errors
    ///
    /// [`SbcError::Internal`] if honest parties of some instance released
    /// different vectors or a malformed payload — a broken world invariant.
    pub fn step_round(&mut self) -> Result<Vec<(InstanceId, SbcResult)>, SbcError> {
        self.world.tick_all();
        self.sync_leaks();
        let mut by_instance: BTreeMap<u64, Vec<(PartyId, Command)>> = BTreeMap::new();
        for (id, party, cmd) in self.world.take_outputs() {
            by_instance.entry(id.0).or_default().push((party, cmd));
        }
        let mut released = Vec::new();
        for (id, outs) in by_instance {
            let instance = InstanceId(id);
            // Outputs of a retired instance are stragglers surfaced by the
            // retirement's final drain (world-layer observables, e.g. a
            // networked backend's close notification) — never session
            // releases. Parsing them as releases would fail the whole pool
            // with `Internal` ("release without an agreed τ_rel"). Only
            // *retired* ids are skipped: an output attributed to an id that
            // was never opened is still a broken world invariant and falls
            // through to the loud `Internal` path below.
            if self.world.is_retired(instance) {
                continue;
            }
            let mut agreed: Option<Vec<Vec<u8>>> = None;
            for (party, cmd) in outs {
                let list = cmd.value.as_list().ok_or_else(|| SbcError::Internal {
                    detail: format!("{instance}: party {} released a non-list payload", party.0),
                })?;
                let messages: Vec<Vec<u8>> = list
                    .iter()
                    .map(|v| match v {
                        Value::Bytes(b) => b.clone(),
                        other => other.encode(),
                    })
                    .collect();
                match &agreed {
                    None => agreed = Some(messages),
                    Some(prev) if *prev != messages => {
                        return Err(SbcError::Internal {
                            detail: format!(
                            "{instance}: agreement violation: party {} released a different vector",
                            party.0
                        ),
                        })
                    }
                    Some(_) => {}
                }
            }
            let messages = agreed.expect("outs is non-empty");
            let release_round =
                self.world
                    .release_round_of(instance)
                    .ok_or_else(|| SbcError::Internal {
                        detail: format!("{instance}: release without an agreed τ_rel"),
                    })?;
            let result = SbcResult {
                messages,
                release_round,
                rounds: self.world.round(),
            };
            self.state_mut(instance).released = Some(result.clone());
            released.push((instance, result));
        }
        Ok(released)
    }

    fn drive_to_release(&mut self, instance: InstanceId) -> Result<SbcResult, SbcError> {
        self.check_instance(instance)?;
        if let Some(result) = self.state.get(&instance.0).and_then(|s| s.released.clone()) {
            return Ok(result);
        }
        if self.state.get(&instance.0).map_or(0, |s| s.submitted) == 0 {
            return Err(SbcError::NoInput);
        }
        let budget = self.params().phi + self.params().delta + 4;
        for _ in 0..budget {
            self.step_round()?;
            if let Some(result) = self.state.get(&instance.0).and_then(|s| s.released.clone()) {
                return Ok(result);
            }
        }
        Err(SbcError::Timeout { budget })
    }

    /// Runs shared clock ticks until `instance`'s current period releases.
    /// Every other live instance advances too — one clock. The period
    /// stays closed afterwards; use [`run_epoch`](SbcPool::run_epoch) for
    /// instances meant to host several periods, or
    /// [`finish`](SbcPool::finish) to retire the instance.
    ///
    /// # Errors
    ///
    /// * [`SbcError::UnknownInstance`] / [`SbcError::InstanceFinished`].
    /// * [`SbcError::NoInput`] if nothing was submitted to `instance` this
    ///   epoch.
    /// * [`SbcError::Timeout`] if it fails to release within `Φ + ∆ + 4`
    ///   ticks.
    /// * [`SbcError::Internal`] on a broken world invariant.
    pub fn run_to_completion(&mut self, instance: InstanceId) -> Result<SbcResult, SbcError> {
        self.drive_to_release(instance)
    }

    /// Runs `instance`'s current epoch to release and re-opens it for the
    /// next one. The shared clock, each instance's oracle stream, and the
    /// global corruption state carry over.
    ///
    /// # Errors
    ///
    /// Same as [`run_to_completion`](SbcPool::run_to_completion).
    pub fn run_epoch(&mut self, instance: InstanceId) -> Result<EpochResult, SbcError> {
        let result = self.drive_to_release(instance)?;
        let st = self.state_mut(instance);
        let epoch = st.epoch;
        st.epoch += 1;
        st.submitted = 0;
        st.released = None;
        self.world.begin_new_period_of(instance);
        Ok(EpochResult {
            epoch,
            messages: result.messages,
            release_round: result.release_round,
        })
    }

    /// Runs `instance` to release, returns its final result, and retires
    /// it: the id stays known, but every further operation on it returns
    /// [`SbcError::InstanceFinished`] — except the captured-leak readers
    /// ([`leaks`](SbcPool::leaks) / [`take_leaks`](SbcPool::take_leaks)),
    /// which keep working so that leaks surfaced by the retirement's final
    /// drain are still observable (the session-level late-drain guarantee,
    /// preserved at the pool layer).
    ///
    /// # Errors
    ///
    /// Same as [`run_to_completion`](SbcPool::run_to_completion).
    pub fn finish(&mut self, instance: InstanceId) -> Result<SbcResult, SbcError> {
        let result = self.drive_to_release(instance)?;
        // Retirement drains the world before removing it; route whatever
        // surfaced into the retained per-instance leak buffer.
        self.world.retire(instance);
        self.sync_leaks();
        Ok(result)
    }

    // ------------------------------------------------------------------
    // Adversarial surface
    // ------------------------------------------------------------------

    /// Adaptively corrupts `party` in **every** instance at once (and in
    /// every instance opened later) — per-party corruption is global
    /// across instances, as in the UC model. Returns, per live instance,
    /// the party's pending (not yet broadcast) messages.
    ///
    /// # Errors
    ///
    /// * [`SbcError::PartyOutOfRange`] if `party ≥ n`.
    /// * [`SbcError::CorruptedParty`] if `party` was already corrupted.
    /// * [`SbcError::CorruptionBudgetExceeded`] if corrupting `party` would
    ///   leave no honest party.
    pub fn corrupt(&mut self, party: u32) -> Result<Vec<(InstanceId, Vec<Value>)>, SbcError> {
        self.check_party(party)?;
        if self.world.party_corrupted(PartyId(party)) {
            return Err(SbcError::CorruptedParty { party });
        }
        let Some(views) = self.world.corrupt_party(PartyId(party)) else {
            // `party` is known honest and in range, so a refusal can only
            // be the dishonest-majority budget `t ≤ n − 1`.
            return Err(SbcError::CorruptionBudgetExceeded { party });
        };
        self.sync_leaks();
        let mut pending = Vec::with_capacity(views.len());
        for (id, resp) in views {
            match resp {
                Value::List(msgs) => pending.push((id, msgs)),
                other => {
                    return Err(SbcError::Internal {
                        detail: format!("{id}: unexpected corruption response: {other:?}"),
                    })
                }
            }
        }
        Ok(pending)
    }

    /// Sends a raw UBC wire on behalf of corrupted `party` in `instance`.
    ///
    /// # Errors
    ///
    /// * [`SbcError::UnknownInstance`] / [`SbcError::InstanceFinished`].
    /// * [`SbcError::PartyOutOfRange`] if `party ≥ n`.
    /// * [`SbcError::HonestParty`] if `party` is not corrupted.
    pub fn send_as(
        &mut self,
        instance: InstanceId,
        party: u32,
        wire: Value,
    ) -> Result<(), SbcError> {
        self.check_instance(instance)?;
        self.check_party(party)?;
        if !self.world.party_corrupted(PartyId(party)) {
            return Err(SbcError::HonestParty { party });
        }
        self.world.adversary_on(
            instance,
            AdvCommand::SendAs {
                party: PartyId(party),
                cmd: Command::new("Broadcast", wire),
            },
        );
        self.sync_leaks();
        Ok(())
    }

    /// The full adversarial-broadcast recipe on behalf of corrupted
    /// `party`, scoped to `instance`: fabricates a time-lock ciphertext,
    /// registers it with that instance's `F_TLE`, derives the mask from its
    /// `F_RO`, and sends the `(c, τ_rel, y)` wire — see
    /// [`SbcSession::inject_message`](crate::api::SbcSession::inject_message).
    ///
    /// # Errors
    ///
    /// * [`SbcError::UnknownInstance`] / [`SbcError::InstanceFinished`].
    /// * [`SbcError::PartyOutOfRange`] / [`SbcError::HonestParty`] as for
    ///   [`send_as`](SbcPool::send_as).
    /// * [`SbcError::PeriodNotOpen`] before `instance`'s first wake-up.
    /// * [`SbcError::SubmitAfterClose`] once `instance`'s period closed.
    pub fn inject_message(
        &mut self,
        instance: InstanceId,
        party: u32,
        message: &[u8],
    ) -> Result<(), SbcError> {
        self.check_instance(instance)?;
        self.check_party(party)?;
        if !self.world.party_corrupted(PartyId(party)) {
            return Err(SbcError::HonestParty { party });
        }
        let Some(tau_rel) = self.world.release_round_of(instance) else {
            return Err(SbcError::PeriodNotOpen);
        };
        let t_end = self
            .world
            .period_end_of(instance)
            .ok_or_else(|| SbcError::Internal {
                detail: format!("{instance}: τ_rel agreed without t_end"),
            })?;
        let now = self.world.round();
        if now >= t_end {
            return Err(SbcError::SubmitAfterClose { round: now, t_end });
        }
        let ct = Value::bytes(self.adv_rng.gen_bytes(64));
        let rho = self.adv_rng.gen_bytes(32);
        self.control(
            instance,
            "F_TLE",
            Command::new(
                "Insert",
                Value::list([ct.clone(), Value::bytes(&rho), Value::U64(tau_rel)]),
            ),
        )?;
        let m_bytes = Value::bytes(message).encode();
        let eta = self.control(
            instance,
            "F_RO",
            Command::new(
                "QueryBytes",
                Value::list([Value::bytes(&rho), Value::U64(m_bytes.len() as u64)]),
            ),
        )?;
        let eta = eta.as_bytes().ok_or_else(|| SbcError::Internal {
            detail: format!("{instance}: F_RO control hook returned a non-bytes mask"),
        })?;
        let y: Vec<u8> = m_bytes.iter().zip(eta.iter()).map(|(a, b)| a ^ b).collect();
        self.send_as(instance, party, sbc_wire(&ct, tau_rel, &y))
    }

    /// Raw control-channel access to one instance's functionalities
    /// (`F_TLE` `Insert`/`Leakage`, `F_RO` `QueryBytes`, …).
    ///
    /// # Errors
    ///
    /// [`SbcError::UnknownInstance`] / [`SbcError::InstanceFinished`].
    pub fn control(
        &mut self,
        instance: InstanceId,
        target: &str,
        cmd: Command,
    ) -> Result<Value, SbcError> {
        self.check_instance(instance)?;
        let resp = self.world.adversary_on(
            instance,
            AdvCommand::Control {
                target: target.to_string(),
                cmd,
            },
        );
        self.sync_leaks();
        Ok(resp)
    }

    /// The adversary's `F_TLE` leakage view of one instance.
    ///
    /// # Errors
    ///
    /// [`SbcError::UnknownInstance`] / [`SbcError::InstanceFinished`].
    pub fn tle_leakage(&mut self, instance: InstanceId) -> Result<Value, SbcError> {
        self.control(instance, "F_TLE", Command::new("Leakage", Value::Unit))
    }

    /// Adversary-visible leaks captured so far for `instance` (requires
    /// leak capture; empty otherwise). Works for live **and** finished
    /// instances: leaks surfaced by the retirement's final drain stay
    /// readable after [`finish`](SbcPool::finish).
    ///
    /// # Errors
    ///
    /// [`SbcError::UnknownInstance`].
    pub fn leaks(&self, instance: InstanceId) -> Result<&[Leak], SbcError> {
        self.check_known(instance)?;
        Ok(self
            .state
            .get(&instance.0)
            .map(|s| s.leaks.as_slice())
            .unwrap_or(&[]))
    }

    /// Drains the captured leak buffer of `instance` (live or finished —
    /// see [`leaks`](SbcPool::leaks)).
    ///
    /// # Errors
    ///
    /// [`SbcError::UnknownInstance`].
    pub fn take_leaks(&mut self, instance: InstanceId) -> Result<Vec<Leak>, SbcError> {
        self.check_known(instance)?;
        Ok(self
            .state
            .get_mut(&instance.0)
            .map(|s| std::mem::take(&mut s.leaks))
            .unwrap_or_default())
    }

    /// How many captured leaks the leak cap has evicted from `instance`'s
    /// buffer so far (always 0 when the pool is uncapped — see
    /// [`AdversaryConfig::leak_cap`](crate::api::AdversaryConfig::leak_cap)).
    /// Like [`leaks`](SbcPool::leaks), readable for live and finished
    /// instances.
    ///
    /// # Errors
    ///
    /// [`SbcError::UnknownInstance`].
    pub fn leak_overflow(&self, instance: InstanceId) -> Result<u64, SbcError> {
        self.check_known(instance)?;
        Ok(self
            .state
            .get(&instance.0)
            .map(|s| s.dropped_leaks)
            .unwrap_or(0))
    }

    /// A point-in-time census of the pool's per-instance and buffered
    /// state (see [`PoolFootprint`]). O(tracked instances); intended for
    /// steady-state flatness assertions in churn tests and service
    /// telemetry, not the hot path of every tick.
    pub fn footprint(&self) -> PoolFootprint {
        PoolFootprint {
            live: self.world.live_ids().len(),
            retired: self.world.retired_count(),
            tracked: self.state.len(),
            buffered_outputs: self.world.buffered_outputs(),
            buffered_leaks: self.world.buffered_leaks(),
            captured_leaks: self.state.values().map(|s| s.leaks.len()).sum(),
            dropped_leaks: self.state.values().map(|s| s.dropped_leaks).sum(),
        }
    }

    // ------------------------------------------------------------------
    // Retired-instance reclamation
    // ------------------------------------------------------------------

    /// Explicitly reclaims every trace of a **finished** instance: the
    /// cached release, the captured-leak buffer, and the retired-id
    /// bookkeeping. Afterwards the id is indistinguishable from one that
    /// never existed — every operation on it (this method included)
    /// returns [`SbcError::UnknownInstance`].
    ///
    /// This is the bound on long-lived services: [`finish`](SbcPool::finish)
    /// deliberately retains per-instance state (the late-drain guarantee —
    /// leaks surfaced by the retirement drain stay readable), so a
    /// million-instance pool grows without bound until the service prunes
    /// what it has consumed. Read or [`take_leaks`](SbcPool::take_leaks)
    /// anything you still need first; pruning drops it.
    ///
    /// Pruning never reclaims an instance id for reuse, and a sticky
    /// simulator-abort recorded by the instance survives
    /// ([`would_abort`](SbcPool::would_abort) stays `true`).
    ///
    /// # Errors
    ///
    /// * [`SbcError::UnknownInstance`] if `instance` was never opened (or
    ///   already pruned).
    /// * [`SbcError::InstanceLive`] if `instance` has not been finished —
    ///   pruning a live instance would silently discard an unreleased
    ///   period; [`finish`](SbcPool::finish) it first.
    pub fn prune(&mut self, instance: InstanceId) -> Result<(), SbcError> {
        self.check_known(instance)?;
        if self.world.is_live(instance) {
            return Err(SbcError::InstanceLive {
                instance: instance.0,
            });
        }
        self.world.forget_retired(instance);
        self.state.remove(&instance.0);
        Ok(())
    }

    /// [`prune`](SbcPool::prune) for every finished instance at once,
    /// returning how many were reclaimed. The idiomatic end-of-batch call
    /// for services that have already drained what they need.
    pub fn prune_finished(&mut self) -> usize {
        let finished: Vec<InstanceId> = self
            .state
            .keys()
            .map(|id| InstanceId(*id))
            .filter(|id| self.world.is_retired(*id))
            .collect();
        for id in &finished {
            self.world.forget_retired(*id);
            self.state.remove(&id.0);
        }
        finished.len()
    }
}

impl<W: SbcBackend> SbcPool<W> {
    /// Opens a new concurrent SBC instance, returning its id. The instance
    /// joins the shared clock at the current round — in O(1), via the
    /// backend's [`SbcWorld::join_at`] — and inherits the global
    /// corruption state; its randomness (including its oracle view) is an
    /// independent, domain-separated fork of the pool seed.
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`SbcBackend::from_params`] error. A
    /// failed open consumes no instance id and leaves the pool unchanged.
    pub fn open_instance(&mut self) -> Result<InstanceId, SbcError> {
        let id = self.world.open_instance()?;
        self.state.insert(id.0, InstanceState::default());
        self.sync_leaks();
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_share_one_clock() {
        let mut pool = SbcPool::builder(2).seed(b"clock").build().unwrap();
        let a = pool.open_instance().unwrap();
        pool.submit(a, 0, b"early").unwrap();
        pool.step_round().unwrap();
        pool.step_round().unwrap();
        // B opens at round 2 and joins the shared clock there.
        let b = pool.open_instance().unwrap();
        assert_eq!(pool.round(), 2);
        pool.submit(b, 1, b"late").unwrap();
        let ra = pool.run_to_completion(a).unwrap();
        let rb = pool.run_to_completion(b).unwrap();
        // A woke at round 0 → τ_rel = 5; B woke at round 2 → τ_rel = 7.
        assert_eq!(ra.release_round, 5);
        assert_eq!(rb.release_round, 2 + 3 + 2);
    }

    #[test]
    fn single_instance_pool_matches_plain_session() {
        // Instance 0 inherits the pool seed unchanged: the pool with one
        // instance reproduces SbcSession bit for bit.
        use crate::api::SbcSession;
        let mut s = SbcSession::builder(3).seed(b"bitcompat").build().unwrap();
        s.submit(0, b"one").unwrap();
        s.submit(2, b"two").unwrap();
        let expect = s.run_to_completion().unwrap();

        let mut pool = SbcPool::builder(3).seed(b"bitcompat").build().unwrap();
        let id = pool.open_instance().unwrap();
        pool.submit(id, 0, b"one").unwrap();
        pool.submit(id, 2, b"two").unwrap();
        assert_eq!(pool.run_to_completion(id).unwrap(), expect);
    }

    #[test]
    fn resume_at_continues_bit_identically_from_a_flat_boundary() {
        // Drive a pool through two delivered-and-pruned instances, then
        // fast-forward a fresh pool to the same (round, next) pair: both
        // must produce bit-identical releases from there on.
        let mut a = SbcPool::builder(2).seed(b"resume").build().unwrap();
        for k in 0..2 {
            let id = a.open_instance().unwrap();
            a.submit(id, 0, format!("m{k}").as_bytes()).unwrap();
            a.run_to_completion(id).unwrap();
            a.finish(id).unwrap();
            a.prune(id).unwrap();
        }
        assert_eq!(a.footprint(), PoolFootprint::default(), "flat boundary");
        let (round, next) = (a.round(), 2);

        let mut b = SbcPool::builder(2).seed(b"resume").build().unwrap();
        b.resume_at(round, next).unwrap();
        assert_eq!(b.round(), round);

        let ia = a.open_instance().unwrap();
        let ib = b.open_instance().unwrap();
        assert_eq!(ia, ib, "instance ids continue from the same point");
        a.submit(ia, 1, b"post-boundary").unwrap();
        b.submit(ib, 1, b"post-boundary").unwrap();
        let ra = a.run_to_completion(ia).unwrap();
        let rb = b.run_to_completion(ib).unwrap();
        assert_eq!(ra, rb, "fast-forwarded pool is bit-identical");
    }

    #[test]
    fn resume_at_refuses_a_pool_with_history() {
        let mut pool = SbcPool::builder(2).seed(b"resume-used").build().unwrap();
        pool.open_instance().unwrap();
        assert_eq!(
            pool.resume_at(7, 3),
            Err(SbcError::NotFresh {
                round: 0,
                opened: 1
            })
        );
        let mut ticked = SbcPool::builder(2).seed(b"resume-ticked").build().unwrap();
        ticked.step_round().unwrap();
        assert!(matches!(
            ticked.resume_at(7, 3),
            Err(SbcError::NotFresh { .. })
        ));
    }

    #[test]
    fn batch_release_on_one_tick() {
        let mut pool = SbcPool::builder(2).seed(b"batch").build().unwrap();
        let ids: Vec<_> = (0..4).map(|_| pool.open_instance().unwrap()).collect();
        for (k, id) in ids.iter().enumerate() {
            pool.submit(*id, (k % 2) as u32, format!("m{k}").as_bytes())
                .unwrap();
        }
        let mut releases = Vec::new();
        for _ in 0..8 {
            releases.extend(pool.step_round().unwrap());
            if releases.len() == ids.len() {
                break;
            }
        }
        assert_eq!(releases.len(), 4, "all four released");
        let rounds: Vec<u64> = releases.iter().map(|(_, r)| r.release_round).collect();
        assert!(rounds.iter().all(|r| *r == rounds[0]), "same schedule");
    }

    #[test]
    fn corruption_is_global_across_instances() {
        let mut pool = SbcPool::builder(3).seed(b"global-corr").build().unwrap();
        let a = pool.open_instance().unwrap();
        let b = pool.open_instance().unwrap();
        pool.submit(a, 1, b"pending-a").unwrap();
        let views = pool.corrupt(1).unwrap();
        assert_eq!(views.len(), 2, "one view per live instance");
        assert_eq!(views[0].1, vec![Value::bytes(b"pending-a")]);
        assert_eq!(views[1].1, Vec::<Value>::new());
        for id in [a, b] {
            assert_eq!(
                pool.submit(id, 1, b"nope"),
                Err(SbcError::CorruptedParty { party: 1 })
            );
        }
        // Instances opened after the corruption inherit it.
        let c = pool.open_instance().unwrap();
        assert_eq!(
            pool.submit(c, 1, b"nope"),
            Err(SbcError::CorruptedParty { party: 1 })
        );
        assert!(pool.is_corrupted(1));
    }

    #[test]
    fn unknown_and_finished_instances_are_typed_errors() {
        let mut pool = SbcPool::builder(2).seed(b"typed").build().unwrap();
        let ghost = InstanceId(42);
        assert_eq!(
            pool.submit(ghost, 0, b"x"),
            Err(SbcError::UnknownInstance { instance: 42 })
        );
        let id = pool.open_instance().unwrap();
        pool.submit(id, 0, b"real").unwrap();
        pool.finish(id).unwrap();
        assert_eq!(
            pool.submit(id, 0, b"late"),
            Err(SbcError::InstanceFinished { instance: 0 })
        );
        assert_eq!(
            pool.run_epoch(id),
            Err(SbcError::InstanceFinished { instance: 0 })
        );
    }

    #[test]
    fn per_instance_epochs_are_independent() {
        let mut pool = SbcPool::builder(2).seed(b"epochs").build().unwrap();
        let a = pool.open_instance().unwrap();
        let b = pool.open_instance().unwrap();
        pool.submit(a, 0, b"a0").unwrap();
        let e = pool.run_epoch(a).unwrap();
        assert_eq!(e.epoch, 0);
        // B idled through A's epoch; it still runs its own epoch 0.
        pool.submit(b, 1, b"b0").unwrap();
        assert_eq!(pool.run_epoch(b).unwrap().epoch, 0);
        assert_eq!(pool.epoch(a).unwrap(), 1);
        assert_eq!(pool.epoch(b).unwrap(), 1);
        // A's next epoch rides the same shared clock.
        pool.submit(a, 0, b"a1").unwrap();
        let e1 = pool.run_epoch(a).unwrap();
        assert_eq!(e1.epoch, 1);
        assert!(e1.release_round > e.release_round);
    }

    #[test]
    fn real_and_ideal_pools_agree() {
        fn drive<W: SbcBackend>(mut pool: SbcPool<W>) -> Vec<(InstanceId, SbcResult)> {
            let a = pool.open_instance().unwrap();
            let b = pool.open_instance().unwrap();
            pool.submit(a, 0, b"alpha").unwrap();
            pool.step_round().unwrap();
            pool.submit(b, 1, b"bravo").unwrap();
            pool.corrupt(2).unwrap();
            pool.inject_message(a, 2, b"evil-a").unwrap();
            let ra = pool.finish(a).unwrap();
            let rb = pool.finish(b).unwrap();
            assert!(!pool.would_abort());
            vec![(a, ra), (b, rb)]
        }
        let real = drive(SbcPool::builder(3).seed(b"dual-pool").build().unwrap());
        let ideal = drive(
            SbcPool::builder(3)
                .seed(b"dual-pool")
                .build_ideal()
                .unwrap(),
        );
        assert_eq!(real, ideal);
        assert!(real[0].1.messages.contains(&b"evil-a".to_vec()));
    }

    #[test]
    fn builder_corruption_applies_to_later_instances() {
        let mut pool = SbcPool::builder(3)
            .seed(b"pre-corr")
            .corrupt(&[2])
            .build()
            .unwrap();
        let a = pool.open_instance().unwrap();
        assert!(pool.is_corrupted(2));
        assert_eq!(
            pool.submit(a, 2, b"x"),
            Err(SbcError::CorruptedParty { party: 2 })
        );
        pool.submit(a, 0, b"honest").unwrap();
        assert_eq!(pool.finish(a).unwrap().messages.len(), 1);
    }

    #[test]
    fn step_round_ignores_stragglers_of_retired_instances() {
        let mut pool = SbcPool::builder(2).seed(b"straggler").build().unwrap();
        let a = pool.open_instance().unwrap();
        pool.submit(a, 0, b"done").unwrap();
        pool.finish(a).unwrap();
        let b = pool.open_instance().unwrap();
        pool.submit(b, 1, b"live").unwrap();
        // A late-buffered output surfaced by a's retirement drain (what a
        // networked backend's close notification would leave behind in the
        // pool-world output buffer).
        pool.world
            .outputs
            .push((a, PartyId(0), Command::new("Closed", Value::Unit)));
        // The straggler is a world-layer observable, not a session release:
        // b must still run to release instead of the pool failing with
        // `Internal` on the retired instance.
        let r = pool.run_to_completion(b).unwrap();
        assert_eq!(r.messages, vec![b"live".to_vec()]);
    }

    #[test]
    fn auto_tick_mode_counts_total_work_not_instances() {
        let cores = 8;
        // The PR-4 misclassification: 2 instances × 512 parties is a
        // 1024-unit tick and must fan out, even though only 2 instances
        // are live.
        assert_eq!(TickMode::Auto.workers(2, 512, cores), cores);
        // Boundary: live × n == PAR_WORK_THRESHOLD fans out, one unit
        // below stays serial.
        let t = TickMode::PAR_WORK_THRESHOLD;
        assert_eq!(TickMode::Auto.workers(2, t / 2, cores), cores);
        assert_eq!(TickMode::Auto.workers(1, t, cores), cores);
        assert_eq!(TickMode::Auto.workers(1, t - 1, cores), 1);
        assert_eq!(TickMode::Auto.workers(2, t / 2 - 1, cores), 1);
        // The old 8-instance break-even at default 3-party experiments is
        // preserved: 8 × 3 = 24 fans out, 7 × 3 = 21 does not.
        assert_eq!(TickMode::Auto.workers(8, 3, cores), cores);
        assert_eq!(TickMode::Auto.workers(7, 3, cores), 1);
        // Single-core hosts never fan out under Auto.
        assert_eq!(TickMode::Auto.workers(64, 64, 1), 1);
        // Explicit override pins the count regardless of workload.
        assert_eq!(TickMode::Threads(3).workers(1, 2, 1), 3);
        assert_eq!(TickMode::Threads(0).workers(64, 64, 8), 1);
    }

    #[test]
    fn party_shard_policy_boundaries() {
        let min = PartyShard::PARTY_SHARD_MIN;
        assert!(PartyShard::Auto.enabled(min, 4));
        assert!(!PartyShard::Auto.enabled(min - 1, 4));
        assert!(!PartyShard::Auto.enabled(min, 1), "needs workers");
        assert!(PartyShard::Sharded.enabled(2, 1), "forced mode self-arms");
        assert!(
            !PartyShard::Sharded.enabled(1, 8),
            "nothing to shard at n=1"
        );
        assert!(!PartyShard::Serial.enabled(1 << 20, 64));
    }

    #[test]
    fn forced_party_sharding_matches_serial_results() {
        // A single large-ish instance driven once serially and once with
        // intra-instance sharding forced on: identical session results.
        fn run(shard: PartyShard) -> (Vec<(InstanceId, SbcResult)>, Vec<Leak>) {
            let mut pool = SbcPool::builder(24)
                .seed(b"party-shard")
                .tick_mode(TickMode::Serial)
                .party_shard(shard)
                .capture_leaks()
                .build()
                .unwrap();
            let id = pool.open_instance().unwrap();
            for p in 0..8 {
                pool.submit(id, p, format!("m{p}").as_bytes()).unwrap();
            }
            let mut releases = Vec::new();
            for _ in 0..8 {
                releases.extend(pool.step_round().unwrap());
            }
            let leaks = pool.take_leaks(id).unwrap();
            (releases, leaks)
        }
        let serial = run(PartyShard::Serial);
        let sharded = run(PartyShard::Sharded);
        assert_eq!(serial, sharded);
        assert_eq!(serial.0.len(), 1, "released");
        assert_eq!(serial.0[0].1.messages.len(), 8);
    }

    #[test]
    fn prune_reclaims_finished_instances_only() {
        let mut pool = SbcPool::builder(2)
            .seed(b"prune")
            .capture_leaks()
            .build()
            .unwrap();
        let a = pool.open_instance().unwrap();
        let b = pool.open_instance().unwrap();
        pool.submit(a, 0, b"a").unwrap();
        pool.submit(b, 1, b"b").unwrap();
        // Live instances refuse pruning with a typed error.
        assert_eq!(pool.prune(a), Err(SbcError::InstanceLive { instance: a.0 }));
        pool.finish(a).unwrap();
        assert!(
            !pool.leaks(a).unwrap().is_empty(),
            "leaks retained by finish"
        );
        // Pruning a finished instance reclaims everything: afterwards the
        // id is indistinguishable from one that never existed.
        pool.prune(a).unwrap();
        let gone = SbcError::UnknownInstance { instance: a.0 };
        assert_eq!(pool.submit(a, 0, b"x"), Err(gone.clone()));
        assert_eq!(pool.leaks(a).unwrap_err(), gone.clone());
        assert_eq!(pool.take_leaks(a).unwrap_err(), gone.clone());
        assert_eq!(pool.epoch(a).unwrap_err(), gone.clone());
        assert_eq!(pool.prune(a), Err(gone));
        // The sibling instance is untouched and ids are never reused.
        pool.finish(b).unwrap();
        let c = pool.open_instance().unwrap();
        assert_eq!(c.0, b.0 + 1, "pruning never recycles ids");
        // prune_finished sweeps the rest (b), not the live c.
        assert_eq!(pool.prune_finished(), 1);
        assert_eq!(
            pool.epoch(b).unwrap_err(),
            SbcError::UnknownInstance { instance: b.0 }
        );
        assert_eq!(pool.epoch(c).unwrap(), 0, "live instance survives sweep");
        assert_eq!(pool.prune_finished(), 0, "idempotent");
        // Ghost ids stay typed errors.
        assert_eq!(
            pool.prune(InstanceId(99)),
            Err(SbcError::UnknownInstance { instance: 99 })
        );
    }

    #[test]
    fn leak_cap_rings_and_counts_overflow() {
        // Same scenario twice: uncapped is the reference; a cap of 2
        // retains exactly the 2 most recent leaks and counts the rest.
        let run = |cap: Option<usize>| {
            let mut b = SbcPool::builder(2).seed(b"leak-cap").capture_leaks();
            if let Some(c) = cap {
                b = b.leak_cap(c);
            }
            let mut pool = b.build().unwrap();
            let a = pool.open_instance().unwrap();
            pool.submit(a, 0, b"m0").unwrap();
            pool.submit(a, 1, b"m1").unwrap();
            pool.finish(a).unwrap();
            let leaks = pool.leaks(a).unwrap().to_vec();
            let dropped = pool.leak_overflow(a).unwrap();
            (leaks, dropped)
        };
        let (full, none_dropped) = run(None);
        assert_eq!(none_dropped, 0, "uncapped never drops");
        assert!(full.len() > 2, "scenario produces enough leaks to overflow");
        let (capped, dropped) = run(Some(2));
        assert_eq!(capped.len(), 2);
        assert_eq!(dropped, (full.len() - 2) as u64);
        // Ring semantics: survivors are the most recent, in order.
        assert_eq!(capped.as_slice(), &full[full.len() - 2..]);
        // A zero cap retains nothing and counts everything.
        let (empty, all_dropped) = run(Some(0));
        assert!(empty.is_empty());
        assert_eq!(all_dropped, full.len() as u64);
    }

    #[test]
    fn footprint_returns_to_zero_after_drain_and_prune() {
        let mut pool = SbcPool::builder(2)
            .seed(b"footprint")
            .capture_leaks()
            .build()
            .unwrap();
        assert_eq!(pool.footprint(), PoolFootprint::default());
        let a = pool.open_instance().unwrap();
        pool.submit(a, 0, b"a").unwrap();
        let mid = pool.footprint();
        assert_eq!(mid.live, 1);
        assert_eq!(mid.tracked, 1);
        pool.finish(a).unwrap();
        let done = pool.footprint();
        assert_eq!(done.live, 0);
        assert_eq!(done.retired, 1);
        assert!(done.captured_leaks > 0, "finish retains leaks");
        pool.prune(a).unwrap();
        assert_eq!(
            pool.footprint(),
            PoolFootprint::default(),
            "prune reclaims every proxy"
        );
    }

    #[test]
    fn corruption_budget_is_pool_global() {
        let mut pool = SbcPool::builder(2).seed(b"budget").build().unwrap();
        let _a = pool.open_instance().unwrap();
        pool.corrupt(0).unwrap();
        assert_eq!(
            pool.corrupt(1),
            Err(SbcError::CorruptionBudgetExceeded { party: 1 })
        );
        assert_eq!(pool.corrupt(0), Err(SbcError::CorruptedParty { party: 0 }));
        assert_eq!(
            pool.corrupt(9),
            Err(SbcError::PartyOutOfRange { party: 9, n: 2 })
        );
    }
}
