//! The simultaneous broadcast functionality `F_SBC(Φ, ∆, α)` (paper
//! Fig. 13) — the paper's central definition.
//!
//! The first `Broadcast` request opens a broadcast period of `Φ` rounds.
//! Within it, honest requests are recorded while leaking only the sender's
//! identity and the message *length* — that is **simultaneity**: no sender
//! (and no adversary) learns anything about other senders' messages before
//! choosing its own. At the period's end the honest records are finalized
//! and sorted; the simulator receives the list `α` rounds before the
//! parties, who all receive it exactly `∆` rounds after `t_end` —
//! **liveness** without full participation.

use sbc_primitives::drbg::Drbg;
use sbc_uc::hybrid::{Delivery, HybridCtx};
use sbc_uc::ids::{PartyId, Tag};
use sbc_uc::value::{Command, Value};
use std::collections::HashMap;

/// Leak source label for `F_SBC`.
pub const SBC_SOURCE: &str = "F_SBC";

/// A recorded broadcast `(tag, M, P, Cl, flag)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SbcRecord {
    /// Unique tag.
    pub tag: Tag,
    /// The message.
    pub msg: Value,
    /// The sender.
    pub sender: PartyId,
    /// Request round.
    pub requested_at: u64,
    /// Finalization flag: only flagged records are delivered.
    pub finalized: bool,
}

/// The functionality `F_SBC^{Φ,∆,α}(P)`.
#[derive(Clone, Debug)]
pub struct SbcFunc {
    n: usize,
    phi: u64,
    delta: u64,
    alpha: u64,
    records: Vec<SbcRecord>,
    t_start: Option<u64>,
    t_end: Option<u64>,
    /// Round bookkeeping for the once-per-round steps of `Advance_Clock`.
    round_seen: Option<u64>,
    finalized_done: bool,
    sim_list_sent: bool,
    last_advance: HashMap<PartyId, u64>,
    tag_rng: Drbg,
}

impl SbcFunc {
    /// Creates the functionality.
    ///
    /// # Panics
    ///
    /// Panics unless `Φ > 0` and `∆ ≥ α`.
    pub fn new(n: usize, phi: u64, delta: u64, alpha: u64, tag_rng: Drbg) -> Self {
        assert!(phi > 0, "broadcast period must be positive");
        assert!(delta >= alpha, "need ∆ ≥ α");
        SbcFunc {
            n,
            phi,
            delta,
            alpha,
            records: Vec::new(),
            t_start: None,
            t_end: None,
            round_seen: None,
            finalized_done: false,
            sim_list_sent: false,
            last_advance: HashMap::new(),
            tag_rng,
        }
    }

    /// The broadcast period span Φ.
    pub fn phi(&self) -> u64 {
        self.phi
    }

    /// The delivery delay ∆.
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// The simulator advantage α.
    pub fn alpha(&self) -> u64 {
        self.alpha
    }

    /// Start of the broadcast period, if opened.
    pub fn t_start(&self) -> Option<u64> {
        self.t_start
    }

    /// End of the broadcast period, if opened.
    pub fn t_end(&self) -> Option<u64> {
        self.t_end
    }

    /// All records (simulator view).
    pub fn records(&self) -> &[SbcRecord] {
        &self.records
    }

    /// Closes the books on a released broadcast period so the same
    /// functionality instance can host the next one — the paper's
    /// sequential multi-period composition (§6). Records, period times and
    /// the once-per-round bookkeeping are dropped; the tag stream carries
    /// over so tags stay globally fresh across epochs. The *next*
    /// `Broadcast` request opens a new period at the then-current clock
    /// round.
    pub fn begin_new_period(&mut self) {
        self.records.clear();
        self.t_start = None;
        self.t_end = None;
        self.round_seen = None;
        self.finalized_done = false;
        self.sim_list_sent = false;
        self.last_advance.clear();
    }

    /// `Broadcast` from an honest party (leaks `(tag, |M|, P)`) or from the
    /// simulator on behalf of a corrupted one (leaks `(tag, M, P)`; record
    /// enters finalized). Requests outside the period are discarded.
    /// Returns the tag if recorded.
    pub fn broadcast(
        &mut self,
        sender: PartyId,
        msg: Value,
        ctx: &mut HybridCtx<'_>,
    ) -> Option<Tag> {
        let now = ctx.time();
        if self.t_start.is_none() {
            self.t_start = Some(now);
            self.t_end = Some(now + self.phi);
        }
        let (start, end) = (self.t_start.expect("set"), self.t_end.expect("set"));
        if !(start <= now && now < end) {
            return None;
        }
        let tag = Tag::random(&mut self.tag_rng);
        let corrupted = ctx.is_corrupted(sender);
        self.records.push(SbcRecord {
            tag,
            msg: msg.clone(),
            sender,
            requested_at: now,
            finalized: corrupted,
        });
        let leak_payload = if corrupted {
            Value::list([
                Value::str("Sender"),
                Value::bytes(tag.as_bytes()),
                msg,
                Value::U64(sender.0 as u64),
            ])
        } else {
            Value::list([
                Value::str("Sender"),
                Value::bytes(tag.as_bytes()),
                Value::U64(msg.encode().len() as u64),
                Value::U64(sender.0 as u64),
            ])
        };
        ctx.leak(SBC_SOURCE, Command::new("Broadcast", leak_payload));
        Some(tag)
    }

    /// `Corruption_Request` from the simulator: unfinalized records of
    /// corrupted senders.
    pub fn corruption_request(&self, ctx: &HybridCtx<'_>) -> Vec<SbcRecord> {
        self.records
            .iter()
            .filter(|r| !r.finalized && ctx.is_corrupted(r.sender))
            .cloned()
            .collect()
    }

    /// `Allow` from the simulator: substitutes and finalizes an unfinalized
    /// record of a corrupted sender, within the broadcast period.
    pub fn allow(
        &mut self,
        tag: Tag,
        msg: Value,
        sender: PartyId,
        ctx: &mut HybridCtx<'_>,
    ) -> bool {
        let now = ctx.time();
        let Some((start, end)) = self.t_start.zip(self.t_end) else {
            return false;
        };
        if now < start || now >= end || !ctx.is_corrupted(sender) {
            return false;
        }
        let Some(rec) = self
            .records
            .iter_mut()
            .find(|r| r.tag == tag && r.sender == sender && !r.finalized)
        else {
            return false;
        };
        rec.msg = msg;
        rec.finalized = true;
        true
    }

    /// Whether the simulator's early copy of the broadcast list is
    /// available (strictly between finalization and delivery).
    fn finalize_if_due(&mut self, now: u64) {
        let Some(end) = self.t_end else { return };
        if now >= end && !self.finalized_done {
            self.finalized_done = true;
            // Records of always-honest senders are finalized; the rest are
            // dropped unless the simulator `Allow`ed them.
            for r in self.records.iter_mut() {
                if !r.finalized {
                    // sender honest throughout ⇒ finalize (the corruption
                    // state is consulted by the caller via ctx before this
                    // point; unfinalized corrupted records stay dropped).
                    r.finalized = true;
                }
            }
            self.records.sort_by(|a, b| a.msg.cmp(&b.msg));
        }
    }

    /// `Advance_Clock` from an honest party: runs the once-per-round
    /// finalization/leak schedule and delivers the message vector to the
    /// advancing party at exactly `t_end + ∆`.
    pub fn advance_clock(&mut self, party: PartyId, ctx: &mut HybridCtx<'_>) -> Vec<Delivery> {
        if ctx.is_corrupted(party) {
            return Vec::new();
        }
        let now = ctx.time();
        if self.last_advance.get(&party) == Some(&now) {
            return Vec::new();
        }
        self.last_advance.insert(party, now);
        let Some(end) = self.t_end else {
            return Vec::new();
        };
        // Once-per-round global steps (first Advance_Clock of the round).
        if self.round_seen != Some(now) {
            self.round_seen = Some(now);
            if now == end {
                // Mark honest pending records finalized — but NOT records
                // whose sender is corrupted and was never Allowed.
                let corrupted: Vec<bool> = (0..self.n)
                    .map(|i| ctx.is_corrupted(PartyId(i as u32)))
                    .collect();
                for r in self.records.iter_mut() {
                    if !r.finalized && !corrupted[r.sender.index()] {
                        r.finalized = true;
                    }
                }
                self.records.sort_by(|a, b| a.msg.cmp(&b.msg));
                self.finalized_done = true;
            }
            if now == end + self.delta - self.alpha && !self.sim_list_sent {
                self.finalize_if_due(now);
                self.sim_list_sent = true;
                let list: Vec<Value> = self
                    .records
                    .iter()
                    .filter(|r| r.finalized)
                    .map(|r| Value::pair(Value::bytes(r.tag.as_bytes()), r.msg.clone()))
                    .collect();
                ctx.leak(SBC_SOURCE, Command::new("Broadcast", Value::List(list)));
            }
        }
        if now == end + self.delta {
            let msgs: Vec<Value> = self
                .records
                .iter()
                .filter(|r| r.finalized)
                .map(|r| r.msg.clone())
                .collect();
            return vec![Delivery::new(
                party,
                Command::new("Broadcast", Value::List(msgs)),
            )];
        }
        Vec::new()
    }

    /// Whether `now` is a *pure delivery* round: the once-per-round
    /// finalization/leak schedule has already run to completion for this
    /// epoch (`finalized_done` and the simulator list leak both behind us)
    /// and `now` is exactly `t_end + ∆`, so the only effect of an honest
    /// `Advance_Clock` is handing that party a clone of the finalized
    /// message vector. `IdealSbcWorld::tick_sharded` uses this to decide
    /// when the round can be planned read-only in parallel.
    pub fn is_pure_delivery_round(&self, now: u64) -> bool {
        match self.t_end {
            Some(end) => {
                now == end + self.delta && now > end && self.finalized_done && self.sim_list_sent
            }
            None => false,
        }
    }

    /// The finalized broadcast vector in delivery order — the template every
    /// honest party receives on a pure delivery round.
    pub fn finalized_messages(&self) -> Vec<Value> {
        self.records
            .iter()
            .filter(|r| r.finalized)
            .map(|r| r.msg.clone())
            .collect()
    }

    /// Serial-merge bookkeeping for a pure delivery round: records that
    /// `party` advanced at `now` (and marks the round seen). Returns `false`
    /// if the party already advanced this round, in which case the caller
    /// must deliver nothing — mirroring [`SbcFunc::advance_clock`]'s
    /// duplicate-advance guard.
    pub fn note_advance(&mut self, party: PartyId, now: u64) -> bool {
        if self.last_advance.get(&party) == Some(&now) {
            return false;
        }
        self.last_advance.insert(party, now);
        self.round_seen = Some(now);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_uc::clock::GlobalClock;
    use sbc_uc::corruption::CorruptionTracker;

    struct Fx {
        clock: GlobalClock,
        rng: Drbg,
        leaks: Vec<sbc_uc::world::Leak>,
        corr: CorruptionTracker,
    }

    impl Fx {
        fn new(n: usize) -> Self {
            Fx {
                clock: GlobalClock::new(PartyId::all(n)),
                rng: Drbg::from_seed(b"sbc"),
                leaks: Vec::new(),
                corr: CorruptionTracker::new(n),
            }
        }
        fn ctx(&mut self) -> HybridCtx<'_> {
            HybridCtx {
                clock: &mut self.clock,
                rng: &mut self.rng,
                leaks: &mut self.leaks,
                corr: &mut self.corr,
            }
        }
        fn tick(&mut self, n: usize) {
            for i in 0..n {
                self.clock.advance_party(PartyId(i as u32));
            }
        }
    }

    fn func(n: usize) -> SbcFunc {
        SbcFunc::new(n, 3, 2, 1, Drbg::from_seed(b"sbc-tags"))
    }

    #[test]
    fn period_opens_on_first_broadcast() {
        let mut fx = Fx::new(2);
        let mut f = func(2);
        assert_eq!(f.t_start(), None);
        f.broadcast(PartyId(0), Value::U64(1), &mut fx.ctx());
        assert_eq!(f.t_start(), Some(0));
        assert_eq!(f.t_end(), Some(3));
    }

    #[test]
    fn honest_leak_hides_content() {
        let mut fx = Fx::new(2);
        let mut f = func(2);
        f.broadcast(
            PartyId(0),
            Value::bytes(b"very secret ballot"),
            &mut fx.ctx(),
        );
        let leak = fx.leaks[0].cmd.value.encode();
        let needle = b"very secret ballot";
        assert!(!leak.windows(needle.len()).any(|w| w == needle));
    }

    #[test]
    fn corrupted_leak_shows_content() {
        let mut fx = Fx::new(2);
        fx.corr.corrupt(PartyId(1), 0).unwrap();
        let mut f = func(2);
        f.broadcast(PartyId(1), Value::bytes(b"adv"), &mut fx.ctx());
        let leak = &fx.leaks[0].cmd.value;
        assert!(leak.as_list().unwrap().contains(&Value::bytes(b"adv")));
    }

    #[test]
    fn late_broadcasts_discarded() {
        let mut fx = Fx::new(1);
        let mut f = func(1);
        f.broadcast(PartyId(0), Value::U64(1), &mut fx.ctx());
        for _ in 0..3 {
            fx.tick(1);
        }
        // Cl = 3 = t_end: outside the period.
        assert!(f
            .broadcast(PartyId(0), Value::U64(2), &mut fx.ctx())
            .is_none());
        assert_eq!(f.records().len(), 1);
    }

    #[test]
    fn delivery_at_t_end_plus_delta_sorted() {
        let mut fx = Fx::new(2);
        let mut f = func(2);
        f.broadcast(PartyId(0), Value::bytes(b"zebra"), &mut fx.ctx());
        f.broadcast(PartyId(1), Value::bytes(b"apple"), &mut fx.ctx());
        // Rounds 0..=4: nothing delivered (t_end = 3, ∆ = 2 → deliver at 5).
        for round in 0..5 {
            let ds = f.advance_clock(PartyId(0), &mut fx.ctx());
            assert!(ds.is_empty(), "round {round}");
            f.advance_clock(PartyId(1), &mut fx.ctx());
            fx.tick(2);
        }
        let ds = f.advance_clock(PartyId(0), &mut fx.ctx());
        assert_eq!(ds.len(), 1);
        let msgs = ds[0].cmd.value.as_list().unwrap();
        assert_eq!(msgs[0], Value::bytes(b"apple"));
        assert_eq!(msgs[1], Value::bytes(b"zebra"));
        // Each party gets its copy on its own advance.
        let ds1 = f.advance_clock(PartyId(1), &mut fx.ctx());
        assert_eq!(ds1.len(), 1);
    }

    #[test]
    fn liveness_without_full_participation() {
        // Only one of two parties ever broadcasts; delivery still happens.
        let mut fx = Fx::new(2);
        let mut f = func(2);
        f.broadcast(PartyId(0), Value::U64(7), &mut fx.ctx());
        for _ in 0..5 {
            f.advance_clock(PartyId(0), &mut fx.ctx());
            f.advance_clock(PartyId(1), &mut fx.ctx());
            fx.tick(2);
        }
        let ds = f.advance_clock(PartyId(1), &mut fx.ctx());
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].cmd.value.as_list().unwrap().len(), 1);
    }

    #[test]
    fn simulator_gets_list_alpha_early() {
        let mut fx = Fx::new(1);
        let mut f = func(1); // t_end=3, ∆=2, α=1 → S at 4, parties at 5
        f.broadcast(PartyId(0), Value::U64(1), &mut fx.ctx());
        for _ in 0..4 {
            f.advance_clock(PartyId(0), &mut fx.ctx());
            fx.tick(1);
        }
        fx.leaks.clear();
        let ds = f.advance_clock(PartyId(0), &mut fx.ctx());
        assert!(ds.is_empty(), "round 4: no party delivery yet");
        assert_eq!(fx.leaks.len(), 1, "round 4 = t_end+∆-α: simulator list");
        fx.tick(1);
        let ds = f.advance_clock(PartyId(0), &mut fx.ctx());
        assert_eq!(ds.len(), 1, "round 5: party delivery");
    }

    #[test]
    fn unallowed_corrupted_records_dropped() {
        let mut fx = Fx::new(2);
        let mut f = func(2);
        f.broadcast(PartyId(0), Value::U64(1), &mut fx.ctx());
        f.broadcast(PartyId(1), Value::U64(2), &mut fx.ctx());
        fx.corr.corrupt(PartyId(1), 0).unwrap();
        // P1's record was honest at request time but P1 is corrupted at
        // t_end and the simulator never Allowed it → dropped.
        for _ in 0..5 {
            f.advance_clock(PartyId(0), &mut fx.ctx());
            fx.tick(2);
        }
        let ds = f.advance_clock(PartyId(0), &mut fx.ctx());
        let msgs = ds[0].cmd.value.as_list().unwrap();
        assert_eq!(msgs, &[Value::U64(1)]);
    }

    #[test]
    fn allow_substitutes_and_finalizes() {
        let mut fx = Fx::new(2);
        let mut f = func(2);
        let tag = f
            .broadcast(PartyId(1), Value::U64(2), &mut fx.ctx())
            .unwrap();
        fx.corr.corrupt(PartyId(1), 0).unwrap();
        assert!(f.allow(tag, Value::U64(99), PartyId(1), &mut fx.ctx()));
        // Double-allow fails (already finalized).
        assert!(!f.allow(tag, Value::U64(5), PartyId(1), &mut fx.ctx()));
        for _ in 0..5 {
            f.advance_clock(PartyId(0), &mut fx.ctx());
            fx.tick(2);
        }
        let ds = f.advance_clock(PartyId(0), &mut fx.ctx());
        assert_eq!(ds[0].cmd.value.as_list().unwrap(), &[Value::U64(99)]);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_phi_panics() {
        SbcFunc::new(1, 0, 2, 1, Drbg::from_seed(b"x"));
    }
}
