//! Baseline simultaneous-broadcast systems for the comparison experiments
//! (EXPERIMENTS.md, E5).
//!
//! * [`HeviaStyleSbc`] — an \[Hev06]-style SBC functionality: honest
//!   majority assumed, and termination requires **full participation**
//!   (every registered sender must submit before anything is delivered).
//!   Demonstrates the liveness gap the paper's `F_SBC` closes.
//! * [`CommitFreeChannel`] — a naive "simultaneous" channel without
//!   time-locks: senders post plaintext, the adversary sees everything as
//!   it is posted (rushing) and may submit corrupted senders' values
//!   *after* reading honest ones. Demonstrates the simultaneity gap.

use sbc_uc::ids::PartyId;
use sbc_uc::value::Value;

/// An \[Hev06]-style SBC: delivery only after *all* senders contribute, and
/// only under an honest majority.
#[derive(Clone, Debug)]
pub struct HeviaStyleSbc {
    n: usize,
    corrupted: Vec<bool>,
    submissions: Vec<Option<Value>>,
    rounds_waited: u64,
}

impl HeviaStyleSbc {
    /// Creates the baseline for `n` registered senders.
    pub fn new(n: usize) -> Self {
        HeviaStyleSbc {
            n,
            corrupted: vec![false; n],
            submissions: vec![None; n],
            rounds_waited: 0,
        }
    }

    /// Marks a sender corrupted.
    pub fn corrupt(&mut self, party: PartyId) {
        self.corrupted[party.index()] = true;
    }

    /// Whether the honest-majority assumption still holds.
    pub fn honest_majority(&self) -> bool {
        let t = self.corrupted.iter().filter(|c| **c).count();
        2 * t < self.n
    }

    /// A sender submits its message.
    pub fn submit(&mut self, party: PartyId, msg: Value) {
        self.submissions[party.index()] = Some(msg);
    }

    /// Advances one round; returns the delivered vector once *everyone*
    /// (including corrupted senders!) has submitted — the adversary can
    /// stall termination indefinitely by withholding one submission.
    pub fn advance_round(&mut self) -> Option<Vec<Value>> {
        if !self.honest_majority() {
            return None; // security void under a dishonest majority
        }
        if self.submissions.iter().all(|s| s.is_some()) {
            let mut msgs: Vec<Value> = self
                .submissions
                .iter()
                .map(|s| s.clone().expect("checked"))
                .collect();
            msgs.sort();
            Some(msgs)
        } else {
            self.rounds_waited += 1;
            None
        }
    }

    /// Rounds spent blocked on missing submissions.
    pub fn rounds_waited(&self) -> u64 {
        self.rounds_waited
    }
}

/// A naive simultaneous channel without time-locks: everything posted is
/// immediately public, so a rushing adversary reads honest messages before
/// deciding the corrupted senders' values.
#[derive(Clone, Debug, Default)]
pub struct CommitFreeChannel {
    posted: Vec<(PartyId, Value)>,
    closed: bool,
}

impl CommitFreeChannel {
    /// Creates an empty channel.
    pub fn new() -> Self {
        CommitFreeChannel::default()
    }

    /// Posts a message (instantly public).
    pub fn post(&mut self, party: PartyId, msg: Value) {
        if !self.closed {
            self.posted.push((party, msg));
        }
    }

    /// Adversary view: everything posted so far — *before* the channel
    /// closes. This is what breaks simultaneity.
    pub fn adversary_view(&self) -> &[(PartyId, Value)] {
        &self.posted
    }

    /// Closes the channel and returns the final vector.
    pub fn close(&mut self) -> Vec<(PartyId, Value)> {
        self.closed = true;
        self.posted.clone()
    }
}

/// Runs the copy-cat attack against [`CommitFreeChannel`]: the adversary
/// reads the honest message and posts a function of it. Returns `true` if
/// the attack succeeded (the corrupted message depends on the honest one).
pub fn copycat_attack_on_commit_free(honest_msg: &[u8]) -> bool {
    let mut ch = CommitFreeChannel::new();
    ch.post(PartyId(0), Value::bytes(honest_msg));
    // Rushing adversary: read, then post a derived value.
    let seen = ch.adversary_view()[0].1.clone();
    let copied = match seen {
        Value::Bytes(mut b) => {
            b.push(b'!');
            Value::Bytes(b)
        }
        other => other,
    };
    ch.post(PartyId(1), copied.clone());
    let finals = ch.close();
    let mut expected = honest_msg.to_vec();
    expected.push(b'!');
    finals[1].1 == Value::Bytes(expected)
}

/// Runs the copy-cat attack against the real SBC stack: the adversary
/// observes every leak during the broadcast period and must output the
/// corrupted sender's message before `t_end`. Returns `true` if it managed
/// to correlate (it cannot — the view is semantically hiding).
///
/// The adversary here is given the strongest feasible strategy short of
/// breaking the time-lock: it copies the *ciphertext* it saw. The replay
/// protection drops it, and any fresh ciphertext it builds necessarily
/// encodes a message chosen independently of the honest plaintext.
pub fn copycat_attack_on_sbc(seed: &[u8], honest_msg: &[u8]) -> bool {
    use crate::worlds::{RealSbcWorld, SbcParams};
    use sbc_uc::value::Command;
    use sbc_uc::world::{run_env, AdvCommand};

    let mut world = RealSbcWorld::new(SbcParams::default_for(3), seed);
    let msg = honest_msg.to_vec();
    let t = run_env(&mut world, move |env| {
        env.input(PartyId(0), Command::new("Broadcast", Value::bytes(&msg)));
        env.adversary(AdvCommand::Corrupt(PartyId(2)));
        env.advance_all();
        env.advance_all();
        // The adversary has seen (c, τ_rel, y); replay it as its own.
        env.adversary(AdvCommand::SendAs {
            party: PartyId(2),
            cmd: Command::new("Broadcast", Value::bytes(b"placeholder")),
        });
        env.idle_rounds(7);
    });
    // Attack succeeded iff some delivered vector contains a message
    // correlated with (equal to, or an extension of) the honest one beyond
    // the honest copy itself.
    let outs = t.outputs();
    outs.iter().any(|(_, _, cmd)| {
        cmd.value
            .as_list()
            .map(|msgs| {
                msgs.iter()
                    .filter(|m| {
                        m.as_bytes()
                            .map(|b| b.starts_with(honest_msg))
                            .unwrap_or(false)
                    })
                    .count()
                    > 1
            })
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hevia_baseline_blocks_without_full_participation() {
        let mut h = HeviaStyleSbc::new(3);
        h.submit(PartyId(0), Value::U64(1));
        h.submit(PartyId(1), Value::U64(2));
        // P2 (adversarial) withholds: no termination, ever.
        for _ in 0..100 {
            assert!(h.advance_round().is_none());
        }
        assert_eq!(h.rounds_waited(), 100);
        // Only full participation unblocks.
        h.submit(PartyId(2), Value::U64(3));
        assert_eq!(h.advance_round().unwrap().len(), 3);
    }

    #[test]
    fn hevia_baseline_void_under_dishonest_majority() {
        let mut h = HeviaStyleSbc::new(3);
        h.corrupt(PartyId(0));
        h.corrupt(PartyId(1));
        assert!(!h.honest_majority());
        for i in 0..3 {
            h.submit(PartyId(i), Value::U64(i as u64));
        }
        assert!(h.advance_round().is_none(), "no guarantees at t ≥ n/2");
    }

    #[test]
    fn commit_free_channel_breaks_simultaneity() {
        assert!(
            copycat_attack_on_commit_free(b"honest bid: 100"),
            "the rushing adversary correlates for free on the naive channel"
        );
    }

    #[test]
    fn sbc_resists_copycat() {
        for seed in [&b"cc-1"[..], b"cc-2", b"cc-3"] {
            assert!(
                !copycat_attack_on_sbc(seed, b"honest bid: 100"),
                "seed {seed:?}: SBC must prevent correlation"
            );
        }
    }
}
