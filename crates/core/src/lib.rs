//! # sbc-core
//!
//! **Universally composable simultaneous broadcast against a dishonest
//! majority** — the primary contribution of the reproduced paper (PODC
//! 2023, arXiv:2305.06468).
//!
//! Simultaneous broadcast (SBC) lets `n` mutually distrustful parties each
//! publish a message such that *no* sender — not even `t < n` adaptively
//! corrupted ones — can make its message depend on anyone else's. The
//! construction buys this with time-lock encryption: during an agreed
//! broadcast period everyone publishes time-locked ciphertexts, and only
//! after the period ends (plus delay ∆) does anything become readable.
//!
//! * [`func`] — the functionality `F_SBC(Φ, ∆, α)` (Fig. 13).
//! * [`protocol`] — the protocol `Π_SBC` over `F_UBC` + `F_TLE` + `F_RO`
//!   (Fig. 14).
//! * [`worlds`] — Theorem 2's real/ideal experiment worlds and simulator,
//!   both implementing the shared `sbc_uc::exec::SbcWorld` backend trait.
//! * [`error`] — the structured [`error::SbcError`] every fallible entry
//!   point returns.
//! * [`baseline`] — the comparison systems: an \[Hev06]-style
//!   full-participation SBC and a naive commit-free simultaneous channel.
//! * [`api`] — the fallible, multi-epoch [`api::SbcSession`] for running
//!   SBC periods without touching the UC machinery.
//! * [`pool`] — instance multiplexing: [`pool::SbcPool`] runs many
//!   concurrent SBC instances over one shared world stack (one clock, one
//!   global corruption state, domain-separated per-instance randomness);
//!   `SbcSession` is its single-instance special case.
//! * [`executor`] — the persistent worker-pool [`executor::Executor`]
//!   behind the pool's two-level round scheduler: work fans out across
//!   instances *and* across parties within one instance, with transcripts
//!   bit-identical to the serial loop.
//!
//! # Examples
//!
//! ```
//! use sbc_core::api::SbcSession;
//!
//! # fn main() -> Result<(), sbc_core::api::SbcError> {
//! let mut session = SbcSession::builder(4).phi(3).seed(b"docs").build()?;
//! session.submit(0, b"bid: 42")?;
//! session.submit(2, b"bid: 17")?;
//! let result = session.run_to_completion()?;
//! assert_eq!(result.messages.len(), 2);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the persistent worker-pool executor needs
// one audited `unsafe` (the scoped-task lifetime erasure documented in
// `executor`); everything else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod baseline;
pub mod error;
pub mod executor;
pub mod func;
pub mod pool;
pub mod protocol;
pub mod worlds;
