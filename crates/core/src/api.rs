//! High-level session API: run simultaneous broadcast without touching the
//! UC machinery.
//!
//! [`SbcSession`] wires the full real-world stack (`Π_SBC` over `F_UBC` +
//! `F_TLE` + `F_RO` + `G_clock`), drives the rounds, and returns the agreed
//! message vector. This is the entry point every downstream application
//! (auctions, lotteries, elections, randomness beacons) builds on.
//!
//! # The v2 contract
//!
//! * **Fallible, never panicking.** Every method that can be misused
//!   returns `Result<_, `[`SbcError`]`>`: invalid parameters are rejected
//!   at [`SbcSessionBuilder::build`], out-of-range parties and
//!   submissions after the period closed are rejected at
//!   [`SbcSession::submit`], and a session that cannot terminate reports
//!   [`SbcError::Timeout`] instead of aborting the process.
//! * **Multi-epoch.** One session runs successive broadcast periods over
//!   the same world: [`SbcSession::run_epoch`] releases the current
//!   period's vector as an [`EpochResult`] and re-opens the stack for the
//!   next one. Randomness beacons and repeated elections no longer rebuild
//!   the whole world stack per round.
//! * **Backend-pluggable.** The session is generic over the
//!   `sbc_uc::exec::SbcWorld` execution backend: `build()` runs the real
//!   protocol stack, [`SbcSessionBuilder::build_ideal`] the ideal
//!   `F_SBC + S_SBC` world, and
//!   [`SbcSessionBuilder::build_backend`] any future backend. Epoch
//!   turnover is part of the proven surface: the dual-world tests assert
//!   real-vs-ideal transcript equality across corruptions, injections and
//!   late drains for every epoch, not just the first.
//! * **Adversary as configuration.** Dishonest-majority scenarios are set
//!   up through [`AdversaryConfig`] and driven through the session's
//!   adversarial surface ([`SbcSession::corrupt`],
//!   [`SbcSession::send_as`], [`SbcSession::inject_message`],
//!   [`SbcSession::control`], leak capture) — no more poking
//!   `World::adversary` by hand in tests and benches.
//! * **The single-instance special case.** A session *is* an
//!   [`SbcPool`] holding exactly one instance: all
//!   driving logic lives in the pool layer, and because a pool's first
//!   instance inherits the pool seed unchanged, a session behaves bit for
//!   bit like a one-instance pool.
//!
//! # Which entry point do I want?
//!
//! | I want to… | Use |
//! |---|---|
//! | run **one** SBC instance (single shot, or epochs in sequence) | [`SbcSession`] |
//! | run **many concurrent** SBC instances over one shared clock / corruption state | [`SbcPool`] |
//! | run an application workload | `sbc_apps`: `DursSession`/`DursPool` (beacons), `Election`/`ElectionPool` (voting) |
//! | prove real ≈ ideal for one instance (security experiment) | `sbc_uc::exec::DualRun` over the [`SbcBackend`] worlds |
//! | prove real ≈ ideal for a whole pool, keyed by instance | `sbc_uc::exec::PoolDualRun` over [`crate::pool::PooledSbcWorld`] |
//! | implement a new execution backend | `sbc_uc::exec::SbcWorld` + [`SbcBackend`] (the pool lifts it for free) |
//!
//! # Examples
//!
//! ```
//! use sbc_core::api::SbcSession;
//!
//! # fn main() -> Result<(), sbc_core::api::SbcError> {
//! let mut session = SbcSession::builder(3).seed(b"quick").build()?;
//! session.submit(0, b"alice's sealed bid")?;
//! session.submit(1, b"bob's sealed bid")?;
//! let result = session.run_to_completion()?;
//! assert_eq!(result.messages.len(), 2);
//! assert!(result.release_round > 0);
//! # Ok(())
//! # }
//! ```
//!
//! Multi-epoch use — three beacon periods over one world stack:
//!
//! ```
//! use sbc_core::api::SbcSession;
//!
//! # fn main() -> Result<(), sbc_core::api::SbcError> {
//! let mut session = SbcSession::builder(2).seed(b"beacon").build()?;
//! for epoch in 0u64..3 {
//!     session.submit(0, format!("share-a/{epoch}").as_bytes())?;
//!     session.submit(1, format!("share-b/{epoch}").as_bytes())?;
//!     let r = session.run_epoch()?;
//!     assert_eq!(r.epoch, epoch);
//!     assert_eq!(r.messages.len(), 2);
//! }
//! # Ok(())
//! # }
//! ```

use crate::pool::{InstanceId, PartyShard, SbcPool, SbcPoolBuilder, TickMode};
use crate::worlds::{IdealSbcWorld, RealSbcWorld, SbcBackend, SbcParams};
use sbc_uc::exec::SbcWorld;
use sbc_uc::value::{Command, Value};
use sbc_uc::world::Leak;

pub use crate::error::SbcError;

/// Static adversary configuration applied when the session is built.
///
/// Dynamic adversarial actions (adaptive corruption, wire injection,
/// control-channel commands) live on [`SbcSession`] itself; this struct
/// covers what must be fixed before the first round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdversaryConfig {
    /// Parties corrupted at session start (before any input).
    pub corrupt_at_start: Vec<u32>,
    /// Retain every adversary-visible leak for inspection through
    /// [`SbcSession::leaks`] instead of discarding it.
    pub capture_leaks: bool,
    /// Cap the per-instance captured-leak buffer at this many entries,
    /// evicting the oldest and counting evictions (see
    /// `SbcPool::leak_overflow`). `None` (the default) retains everything
    /// — the behavior every indistinguishability experiment relies on;
    /// long-lived services set a cap so leak capture can stay on without
    /// growing per-instance memory without bound.
    pub leak_cap: Option<usize>,
}

impl AdversaryConfig {
    /// An empty configuration (no corruption, leaks discarded).
    pub fn new() -> Self {
        AdversaryConfig::default()
    }

    /// Corrupts `parties` at session start.
    pub fn corrupt(mut self, parties: &[u32]) -> Self {
        self.corrupt_at_start.extend_from_slice(parties);
        self
    }

    /// Retains adversary-visible leaks for inspection.
    pub fn capture_leaks(mut self) -> Self {
        self.capture_leaks = true;
        self
    }

    /// Caps each instance's captured-leak buffer at `cap` entries
    /// (oldest evicted first, evictions counted). Implies nothing about
    /// capture itself — combine with [`AdversaryConfig::capture_leaks`].
    pub fn leak_cap(mut self, cap: usize) -> Self {
        self.leak_cap = Some(cap);
        self
    }
}

/// Builder for [`SbcSession`] — a thin delegate over
/// [`SbcPoolBuilder`]: every parameter and
/// adversary option is defined once in the pool layer, and building a
/// session is building a pool and opening its single instance.
#[derive(Clone, Debug)]
pub struct SbcSessionBuilder {
    pool: SbcPoolBuilder,
}

impl SbcSessionBuilder {
    /// Broadcast period span Φ (rounds).
    pub fn phi(mut self, phi: u64) -> Self {
        self.pool = self.pool.phi(phi);
        self
    }

    /// Delivery delay ∆ (rounds after the period ends).
    pub fn delta(mut self, delta: u64) -> Self {
        self.pool = self.pool.delta(delta);
        self
    }

    /// TLE leakage advantage `α_TLE` (`leak(Cl) = Cl + α_TLE`).
    pub fn tle_alpha(mut self, alpha: u64) -> Self {
        self.pool = self.pool.tle_alpha(alpha);
        self
    }

    /// TLE ciphertext-generation delay.
    pub fn tle_delay(mut self, delay: u64) -> Self {
        self.pool = self.pool.tle_delay(delay);
        self
    }

    /// Experiment seed (determines all randomness).
    pub fn seed(mut self, seed: &[u8]) -> Self {
        self.pool = self.pool.seed(seed);
        self
    }

    /// Installs an adversary configuration.
    pub fn adversary(mut self, cfg: AdversaryConfig) -> Self {
        self.pool = self.pool.adversary(cfg);
        self
    }

    /// Sets how rounds are scheduled (see [`TickMode`]) — for a
    /// single-instance session this governs the persistent executor's
    /// worker count ([`TickMode::Threads`] pins it explicitly). A
    /// performance knob only: every mode is observation-equivalent.
    pub fn tick_mode(mut self, mode: TickMode) -> Self {
        self.pool = self.pool.tick_mode(mode);
        self
    }

    /// Sets whether rounds shard the per-party work of this session's
    /// instance across the executor's workers (see [`PartyShard`]) — the
    /// throughput knob for large-`n` single-instance sessions. A
    /// performance knob only: every mode is observation-equivalent.
    pub fn party_shard(mut self, shard: PartyShard) -> Self {
        self.pool = self.pool.party_shard(shard);
        self
    }

    /// Convenience: corrupt `parties` at session start. Delegates to
    /// [`AdversaryConfig::corrupt`] through the pool builder — the
    /// session builder keeps no parallel adversary state of its own.
    pub fn corrupt(mut self, parties: &[u32]) -> Self {
        self.pool = self.pool.corrupt(parties);
        self
    }

    /// Convenience: retain adversary-visible leaks for inspection.
    /// Delegates to [`AdversaryConfig::capture_leaks`].
    pub fn capture_leaks(mut self) -> Self {
        self.pool = self.pool.capture_leaks();
        self
    }

    /// Convenience: cap the captured-leak buffer. Delegates to
    /// [`AdversaryConfig::leak_cap`].
    pub fn leak_cap(mut self, cap: usize) -> Self {
        self.pool = self.pool.leak_cap(cap);
        self
    }

    /// Builds the session over the real protocol stack (`Π_SBC` over
    /// `F_UBC` + `F_TLE` + `F_RO` + `G_clock`).
    ///
    /// # Errors
    ///
    /// * [`SbcError::InvalidParams`] if the parameters violate Theorem 2's
    ///   constraints (`Φ > delay`, `∆ > α_TLE`) or `n = 0`.
    /// * [`SbcError::PartyOutOfRange`] if the adversary configuration
    ///   corrupts a party index `≥ n`.
    pub fn build(self) -> Result<SbcSession, SbcError> {
        self.build_backend::<RealSbcWorld>()
    }

    /// Builds the session over the ideal world (`F_SBC(Φ, ∆, α)` composed
    /// with the Theorem 2 simulator `S_SBC`). Same session code, same
    /// adversary surface, same multi-epoch driver — by Theorem 2, every
    /// observable of the two backends agrees, which the dual-world tests
    /// assert epoch by epoch.
    ///
    /// # Errors
    ///
    /// Same as [`build`](SbcSessionBuilder::build).
    pub fn build_ideal(self) -> Result<SbcSession<IdealSbcWorld>, SbcError> {
        self.build_backend::<IdealSbcWorld>()
    }

    /// Builds the session over any [`SbcBackend`] — the extension point for
    /// future execution backends (sharded, async, networked).
    ///
    /// # Errors
    ///
    /// Same as [`build`](SbcSessionBuilder::build).
    pub fn build_backend<W: SbcBackend>(self) -> Result<SbcSession<W>, SbcError> {
        // Validation, error precedence, and corrupt-at-start replay all
        // live in the pool builder; the session is its one open instance
        // (corruption recorded on the pool is replayed into the instance
        // world at open, exactly as a post-build `corrupt` call would).
        let mut pool = self.pool.build_backend::<W>()?;
        let id = pool.open_instance()?;
        Ok(SbcSession { pool, id })
    }
}

/// The outcome of a single-shot SBC run (or of one period inside a
/// multi-epoch session — see [`EpochResult`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SbcResult {
    /// The agreed message vector (lexicographically sorted), identical at
    /// every honest party.
    pub messages: Vec<Vec<u8>>,
    /// The round at which the vector was released: `τ_rel = t_awake + Φ +
    /// ∆`, taken from the parties' agreed wake-up time — correct even when
    /// outputs are drained late.
    pub release_round: u64,
    /// Total rounds executed by the session so far.
    pub rounds: u64,
}

/// The outcome of one broadcast period of a multi-epoch session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochResult {
    /// Zero-based epoch counter.
    pub epoch: u64,
    /// The agreed message vector of this epoch (lexicographically sorted).
    pub messages: Vec<Vec<u8>>,
    /// The round the vector was released (`t_awake + Φ + ∆`).
    pub release_round: u64,
}

/// A running simultaneous-broadcast session over a pluggable execution
/// backend — the real protocol stack by default, the ideal
/// `F_SBC + S_SBC` world via
/// [`build_ideal`](SbcSessionBuilder::build_ideal), or any future
/// [`SbcBackend`] via [`build_backend`](SbcSessionBuilder::build_backend).
/// Every method below is backend-agnostic: it speaks only the
/// [`SbcWorld`] trait.
///
/// The session is *multi-epoch*: after [`run_epoch`](SbcSession::run_epoch)
/// releases a period's vector, the same world (clock, random oracle,
/// corruption state) hosts the next period. Submissions made after an
/// epoch completes belong to the next epoch.
///
/// Structurally, a session is the **single-instance special case** of
/// [`SbcPool`]: it wraps a pool holding exactly one
/// instance and delegates every operation to it. Workloads that need many
/// concurrent instances (overlapping beacon schedules, parallel motions,
/// concurrent auction lots) use the pool directly.
#[derive(Debug)]
pub struct SbcSession<W: SbcWorld = RealSbcWorld> {
    pool: SbcPool<W>,
    id: InstanceId,
}

impl SbcSession {
    /// Starts building a session for `n` parties.
    pub fn builder(n: usize) -> SbcSessionBuilder {
        SbcSessionBuilder {
            pool: SbcPool::builder(n),
        }
    }
}

impl<W: SbcWorld> SbcSession<W> {
    /// The instance is opened at build time and never finished through the
    /// session surface, so instance-addressed pool calls cannot fail with
    /// `UnknownInstance`/`InstanceFinished`.
    fn live(&self) -> InstanceId {
        debug_assert!(self.pool.live_instances().contains(&self.id));
        self.id
    }

    /// The session parameters.
    pub fn params(&self) -> SbcParams {
        self.pool.params()
    }

    /// The zero-based index of the epoch currently accepting submissions.
    pub fn epoch(&self) -> u64 {
        self.pool
            .epoch(self.live())
            .expect("session instance stays live")
    }

    /// The current global-clock round.
    pub fn round(&self) -> u64 {
        self.pool.round()
    }

    /// Whether `party` is corrupted.
    pub fn is_corrupted(&self, party: u32) -> bool {
        self.pool.is_corrupted(party)
    }

    /// Checks whether an honest submission by `party` would currently be
    /// accepted, without submitting anything. Lets callers skip expensive
    /// payload construction (e.g. ballot proofs) when the submission is
    /// doomed to be rejected.
    ///
    /// # Errors
    ///
    /// The same errors [`submit`](SbcSession::submit) would return.
    pub fn check_submittable(&self, party: u32) -> Result<(), SbcError> {
        self.pool.check_submittable(self.live(), party)
    }

    /// Submits `message` for broadcast by honest party `party` in the
    /// current epoch.
    ///
    /// # Errors
    ///
    /// * [`SbcError::PartyOutOfRange`] if `party ≥ n`.
    /// * [`SbcError::CorruptedParty`] if `party` is corrupted (corrupted
    ///   inputs go through [`send_as`](SbcSession::send_as) /
    ///   [`inject_message`](SbcSession::inject_message)).
    /// * [`SbcError::SubmitAfterClose`] if the period is already too far
    ///   along for the ciphertext to be ready before `t_end`.
    pub fn submit(&mut self, party: u32, message: &[u8]) -> Result<(), SbcError> {
        self.pool.submit(self.live(), party, message)
    }

    /// Runs one full round (all honest parties advance). Returns the
    /// released message vector if this round was the release round.
    ///
    /// # Errors
    ///
    /// [`SbcError::Internal`] if honest parties released different vectors
    /// or a malformed payload — a broken world invariant.
    pub fn step_round(&mut self) -> Result<Option<SbcResult>, SbcError> {
        let id = self.live();
        let released = self.pool.step_round()?;
        Ok(released
            .into_iter()
            .find(|(i, _)| *i == id)
            .map(|(_, result)| result))
    }

    /// Runs rounds until the current period's vector is released.
    ///
    /// This is the single-shot driver: the period stays **closed**
    /// afterwards and further submissions return
    /// [`SbcError::SubmitAfterClose`]; calling it again (or after a
    /// manual [`step_round`](SbcSession::step_round) loop already saw the
    /// release) returns the same cached result. A session meant to host
    /// several periods must drive every period — including the first —
    /// with [`run_epoch`](SbcSession::run_epoch), which performs the
    /// epoch turnover this method deliberately skips.
    ///
    /// # Errors
    ///
    /// * [`SbcError::NoInput`] if nothing was submitted this epoch.
    /// * [`SbcError::Timeout`] if the stack fails to release within
    ///   `Φ + ∆ + 4` rounds.
    /// * [`SbcError::Internal`] on a broken world invariant.
    pub fn run_to_completion(&mut self) -> Result<SbcResult, SbcError> {
        self.pool.run_to_completion(self.live())
    }

    /// Runs the current epoch to release and re-opens the stack for the
    /// next one. Submissions made after this call belong to the next
    /// epoch; the global clock, random oracle, and corruption state carry
    /// over.
    ///
    /// # Errors
    ///
    /// Same as [`run_to_completion`](SbcSession::run_to_completion).
    pub fn run_epoch(&mut self) -> Result<EpochResult, SbcError> {
        self.pool.run_epoch(self.live())
    }

    // ------------------------------------------------------------------
    // Adversarial surface
    // ------------------------------------------------------------------

    /// Adaptively corrupts `party`, returning its pending (not yet
    /// broadcast) messages — the corruption-request view of Fig. 13.
    ///
    /// # Errors
    ///
    /// * [`SbcError::PartyOutOfRange`] if `party ≥ n`.
    /// * [`SbcError::CorruptedParty`] if `party` was already corrupted.
    pub fn corrupt(&mut self, party: u32) -> Result<Vec<Value>, SbcError> {
        let id = self.live();
        let views = self.pool.corrupt(party)?;
        Ok(views
            .into_iter()
            .find(|(i, _)| *i == id)
            .map(|(_, pending)| pending)
            .unwrap_or_default())
    }

    /// Sends a raw UBC wire on behalf of corrupted `party` (immediate
    /// delivery — the unfairness of `F_UBC`). The payload must be a
    /// `(c, τ_rel, y)` triple to be accepted by honest recipients; use
    /// [`inject_message`](SbcSession::inject_message) for the full
    /// fabricate-and-send recipe.
    ///
    /// # Errors
    ///
    /// * [`SbcError::PartyOutOfRange`] if `party ≥ n`.
    /// * [`SbcError::HonestParty`] if `party` is not corrupted.
    pub fn send_as(&mut self, party: u32, wire: Value) -> Result<(), SbcError> {
        self.pool.send_as(self.live(), party, wire)
    }

    /// The full adversarial-broadcast recipe on behalf of corrupted
    /// `party`: fabricates a time-lock ciphertext for a fresh `ρ`,
    /// registers it with `F_TLE` (`Insert`), derives the honest mask
    /// `η = H(ρ; |M|)` from `F_RO`, and sends `(c, τ_rel, M ⊕ η)` as the
    /// corrupted party. Honest parties will open it to `message` at
    /// `τ_rel` — but, exactly as the paper requires, the adversary had to
    /// commit to `message` *during* the period, without seeing any honest
    /// plaintext.
    ///
    /// # Errors
    ///
    /// * [`SbcError::PartyOutOfRange`] / [`SbcError::HonestParty`] as for
    ///   [`send_as`](SbcSession::send_as).
    /// * [`SbcError::PeriodNotOpen`] before the first wake-up (`τ_rel` is
    ///   not yet agreed).
    /// * [`SbcError::SubmitAfterClose`] once the period has closed.
    pub fn inject_message(&mut self, party: u32, message: &[u8]) -> Result<(), SbcError> {
        self.pool.inject_message(self.live(), party, message)
    }

    /// Raw control-channel access to the world's functionalities
    /// (`F_TLE` `Insert`/`Leakage`, `F_RO` `QueryBytes`, …) — the escape
    /// hatch for adversarial experiments the typed surface does not cover.
    pub fn control(&mut self, target: &str, cmd: Command) -> Value {
        let id = self.live();
        self.pool
            .control(id, target, cmd)
            .expect("session instance stays live")
    }

    /// The adversary's `F_TLE` leakage view (`τ ≤ Cl + α_TLE` records).
    pub fn tle_leakage(&mut self) -> Value {
        self.control("F_TLE", Command::new("Leakage", Value::Unit))
    }

    /// Whether the backend's simulator hit a simulation-abort event (the
    /// negligible-probability event of the Theorem 2 proof). Always `false`
    /// on the real backend.
    pub fn would_abort(&self) -> bool {
        self.pool.would_abort()
    }

    /// Adversary-visible leaks captured so far (requires
    /// [`AdversaryConfig::capture_leaks`]; empty otherwise).
    pub fn leaks(&self) -> &[Leak] {
        self.pool
            .leaks(self.id)
            .expect("session instance stays live")
    }

    /// Drains the captured leak buffer.
    pub fn take_leaks(&mut self) -> Vec<Leak> {
        let id = self.live();
        self.pool
            .take_leaks(id)
            .expect("session instance stays live")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_flow() {
        let mut s = SbcSession::builder(3).seed(b"api-test").build().unwrap();
        s.submit(0, b"one").unwrap();
        s.submit(1, b"two").unwrap();
        let r = s.run_to_completion().unwrap();
        assert_eq!(r.messages.len(), 2);
        assert!(r.messages.contains(&b"one".to_vec()));
        assert!(r.messages.contains(&b"two".to_vec()));
        assert_eq!(r.release_round, 3 + 2);
    }

    #[test]
    fn custom_parameters() {
        let mut s = SbcSession::builder(2)
            .phi(4)
            .delta(3)
            .seed(b"custom")
            .build()
            .unwrap();
        s.submit(0, b"m").unwrap();
        let r = s.run_to_completion().unwrap();
        assert_eq!(r.release_round, 4 + 3);
    }

    #[test]
    fn messages_sorted_deterministically() {
        let mut s = SbcSession::builder(3).seed(b"sorted").build().unwrap();
        s.submit(2, b"zzz").unwrap();
        s.submit(0, b"aaa").unwrap();
        s.submit(1, b"mmm").unwrap();
        let r = s.run_to_completion().unwrap();
        assert_eq!(
            r.messages,
            vec![b"aaa".to_vec(), b"mmm".to_vec(), b"zzz".to_vec()]
        );
    }

    #[test]
    fn single_submitter_liveness() {
        let mut s = SbcSession::builder(5).seed(b"solo").build().unwrap();
        s.submit(3, b"alone").unwrap();
        let r = s.run_to_completion().unwrap();
        assert_eq!(r.messages, vec![b"alone".to_vec()]);
    }

    #[test]
    fn empty_session_is_no_input_error() {
        let mut s = SbcSession::builder(2).seed(b"empty").build().unwrap();
        assert_eq!(s.run_to_completion(), Err(SbcError::NoInput));
    }

    #[test]
    fn out_of_range_party_is_error() {
        let mut s = SbcSession::builder(2).seed(b"oops").build().unwrap();
        assert_eq!(
            s.submit(7, b"x"),
            Err(SbcError::PartyOutOfRange { party: 7, n: 2 })
        );
    }

    #[test]
    fn invalid_params_rejected_at_build() {
        // Φ ≤ delay violates Theorem 2.
        let err = SbcSession::builder(3)
            .phi(1)
            .tle_delay(1)
            .seed(b"bad")
            .build()
            .unwrap_err();
        assert!(matches!(err, SbcError::InvalidParams { .. }));
        // ∆ ≤ α_TLE violates Theorem 2.
        let err = SbcSession::builder(3)
            .delta(1)
            .tle_alpha(1)
            .seed(b"bad2")
            .build()
            .unwrap_err();
        assert!(matches!(err, SbcError::InvalidParams { .. }));
        // n = 0 is degenerate.
        let err = SbcSession::builder(0).seed(b"bad3").build().unwrap_err();
        assert!(matches!(err, SbcError::InvalidParams { .. }));
    }

    #[test]
    fn submit_after_close_rejected() {
        let mut s = SbcSession::builder(2).seed(b"late").build().unwrap();
        s.submit(0, b"on-time").unwrap();
        // Period = [0, 3); with tle_delay = 1, submissions from round 2 on
        // cannot complete.
        for _ in 0..2 {
            s.step_round().unwrap();
        }
        let err = s.submit(1, b"too-late").unwrap_err();
        assert_eq!(err, SbcError::SubmitAfterClose { round: 2, t_end: 3 });
        let r = s.run_to_completion().unwrap();
        assert_eq!(r.messages, vec![b"on-time".to_vec()]);
    }

    #[test]
    fn release_round_correct_when_drained_late() {
        // Drive rounds manually well past τ_rel before draining: the
        // reported release round is still t_awake + Φ + ∆.
        let mut s = SbcSession::builder(2).seed(b"late-drain").build().unwrap();
        // Idle rounds first: wake-up at round 2.
        s.step_round().unwrap();
        s.step_round().unwrap();
        s.submit(0, b"m").unwrap();
        let r = s.run_to_completion().unwrap();
        assert_eq!(r.release_round, 2 + 3 + 2, "t_awake + Φ + ∆");
    }

    #[test]
    fn three_epochs_on_one_session() {
        let mut s = SbcSession::builder(3).seed(b"epochs").build().unwrap();
        for epoch in 0u64..3 {
            s.submit(0, format!("a{epoch}").as_bytes()).unwrap();
            s.submit(1, format!("b{epoch}").as_bytes()).unwrap();
            let r = s.run_epoch().unwrap();
            assert_eq!(r.epoch, epoch);
            assert_eq!(
                r.messages,
                vec![
                    format!("a{epoch}").into_bytes(),
                    format!("b{epoch}").into_bytes()
                ]
            );
        }
        assert_eq!(s.epoch(), 3);
    }

    #[test]
    fn manual_step_round_release_still_turns_epoch_over() {
        // A caller draining the release through step_round must not wedge
        // the session: run_epoch sees the cached release, turns the epoch
        // over, and the next period accepts submissions.
        let mut s = SbcSession::builder(2).seed(b"manual").build().unwrap();
        s.submit(0, b"first").unwrap();
        let manual = loop {
            if let Some(r) = s.step_round().unwrap() {
                break r;
            }
        };
        let epoch = s.run_epoch().unwrap();
        assert_eq!(epoch.messages, manual.messages);
        assert_eq!(epoch.release_round, manual.release_round);
        s.submit(1, b"second").unwrap();
        assert_eq!(s.run_epoch().unwrap().messages, vec![b"second".to_vec()]);
    }

    #[test]
    fn run_to_completion_is_idempotent_after_release() {
        let mut s = SbcSession::builder(2).seed(b"idem").build().unwrap();
        s.submit(0, b"m").unwrap();
        let first = s.run_to_completion().unwrap();
        assert_eq!(s.run_to_completion().unwrap(), first, "cached result");
    }

    #[test]
    fn corruption_budget_is_a_distinct_error() {
        // n = 2 allows t ≤ 1 corruption: the second is refused for the
        // budget, not misreported as "already corrupted".
        let mut s = SbcSession::builder(2).seed(b"budget").build().unwrap();
        s.corrupt(0).unwrap();
        assert_eq!(
            s.corrupt(1),
            Err(SbcError::CorruptionBudgetExceeded { party: 1 })
        );
        assert!(!s.is_corrupted(1), "party 1 stayed honest");
    }

    #[test]
    fn epoch_release_rounds_advance_monotonically() {
        let mut s = SbcSession::builder(2).seed(b"mono").build().unwrap();
        let mut last = 0;
        for _ in 0..3 {
            s.submit(0, b"x").unwrap();
            let r = s.run_epoch().unwrap();
            assert!(r.release_round > last, "epochs share one global clock");
            last = r.release_round;
        }
    }

    #[test]
    fn corrupt_and_inject_through_public_api() {
        let mut s = SbcSession::builder(3)
            .seed(b"adv")
            .adversary(AdversaryConfig::new().corrupt(&[2]).capture_leaks())
            .build()
            .unwrap();
        s.submit(0, b"honest").unwrap();
        // Wake the stack so τ_rel is agreed, then inject as the corrupted
        // party mid-period.
        s.step_round().unwrap();
        s.inject_message(2, b"adversarial").unwrap();
        let r = s.run_to_completion().unwrap();
        assert!(r.messages.contains(&b"honest".to_vec()));
        assert!(r.messages.contains(&b"adversarial".to_vec()));
        assert!(!s.leaks().is_empty(), "leak capture is on");
    }

    #[test]
    fn adversarial_surface_error_paths() {
        let mut s = SbcSession::builder(2).seed(b"adv-err").build().unwrap();
        assert_eq!(
            s.send_as(0, Value::Unit),
            Err(SbcError::HonestParty { party: 0 })
        );
        assert_eq!(
            s.inject_message(1, b"m"),
            Err(SbcError::HonestParty { party: 1 })
        );
        assert_eq!(
            s.corrupt(9),
            Err(SbcError::PartyOutOfRange { party: 9, n: 2 })
        );
        s.corrupt(1).unwrap();
        assert_eq!(s.corrupt(1), Err(SbcError::CorruptedParty { party: 1 }));
        assert_eq!(
            s.submit(1, b"m"),
            Err(SbcError::CorruptedParty { party: 1 })
        );
        // No wake-up yet: τ_rel unknown.
        assert_eq!(s.inject_message(1, b"m"), Err(SbcError::PeriodNotOpen));
    }

    #[test]
    fn ideal_backend_quickstart() {
        let mut s = SbcSession::builder(3)
            .seed(b"ideal-api")
            .build_ideal()
            .unwrap();
        s.submit(0, b"one").unwrap();
        s.submit(1, b"two").unwrap();
        let r = s.run_to_completion().unwrap();
        assert_eq!(r.messages.len(), 2);
        assert_eq!(r.release_round, 3 + 2);
        assert!(!s.would_abort());
    }

    #[test]
    fn real_and_ideal_backends_agree_across_adversarial_epochs() {
        // The same generic driver runs both backends: every epoch's agreed
        // vector and release round must match — Theorem 2 at session level,
        // including corruption and wire injection.
        fn drive<W: SbcWorld>(mut s: SbcSession<W>) -> (Vec<EpochResult>, bool) {
            s.corrupt(2).unwrap();
            let mut out = Vec::new();
            for epoch in 0u64..3 {
                s.submit(0, format!("a{epoch}").as_bytes()).unwrap();
                s.step_round().unwrap(); // period opens: τ_rel agreed
                s.inject_message(2, format!("evil{epoch}").as_bytes())
                    .unwrap();
                s.submit(1, format!("b{epoch}").as_bytes()).unwrap();
                out.push(s.run_epoch().unwrap());
            }
            (out, s.would_abort())
        }
        let real = drive(SbcSession::builder(3).seed(b"dual-adv").build().unwrap());
        let ideal = drive(
            SbcSession::builder(3)
                .seed(b"dual-adv")
                .build_ideal()
                .unwrap(),
        );
        assert!(!real.1 && !ideal.1, "no simulator abort");
        assert_eq!(real.0, ideal.0, "epoch results diverge");
        for (epoch, r) in real.0.iter().enumerate() {
            assert_eq!(r.messages.len(), 3, "epoch {epoch}: 2 honest + 1 injected");
            assert!(r.messages.contains(&format!("evil{epoch}").into_bytes()));
        }
    }

    #[test]
    fn build_backend_is_the_generic_entry_point() {
        use crate::worlds::IdealSbcWorld;
        let s = SbcSession::builder(2)
            .seed(b"generic")
            .build_backend::<IdealSbcWorld>()
            .unwrap();
        assert_eq!(s.params().n, 2);
        let err = SbcSession::builder(0)
            .seed(b"generic-bad")
            .build_backend::<RealSbcWorld>()
            .unwrap_err();
        assert!(matches!(err, SbcError::InvalidParams { .. }));
        // Parameter errors outrank adversary-config errors: a corrupt list
        // over degenerate params is reported as InvalidParams, not as a
        // party "out of range for a 0-party session".
        let err = SbcSession::builder(0)
            .corrupt(&[0])
            .seed(b"precedence")
            .build()
            .unwrap_err();
        assert!(matches!(err, SbcError::InvalidParams { .. }));
    }

    #[test]
    fn corruption_returns_pending_messages() {
        let mut s = SbcSession::builder(2)
            .seed(b"pend")
            .capture_leaks()
            .build()
            .unwrap();
        s.submit(0, b"secret-draft").unwrap();
        let pending = s.corrupt(0).unwrap();
        assert_eq!(pending, vec![Value::bytes(b"secret-draft")]);
    }
}
