//! High-level session API: run simultaneous broadcast without touching the
//! UC machinery.
//!
//! [`SbcSession`] wires the full real-world stack (`Π_SBC` over `F_UBC` +
//! `F_TLE` + `F_RO` + `G_clock`), drives the rounds, and returns the
//! agreed message vector. This is the entry point a downstream application
//! (auctions, lotteries, elections, randomness beacons) would use.
//!
//! # Examples
//!
//! ```
//! use sbc_core::api::SbcSession;
//!
//! let mut session = SbcSession::builder(3).seed(b"quick").build();
//! session.submit(0, b"alice's sealed bid");
//! session.submit(1, b"bob's sealed bid");
//! let result = session.run_to_completion();
//! assert_eq!(result.messages.len(), 2);
//! assert!(result.release_round > 0);
//! ```

use crate::worlds::{RealSbcWorld, SbcParams};
use sbc_uc::ids::PartyId;
use sbc_uc::value::{Command, Value};
use sbc_uc::world::World;

/// Builder for [`SbcSession`].
#[derive(Clone, Debug)]
pub struct SbcSessionBuilder {
    params: SbcParams,
    seed: Vec<u8>,
}

impl SbcSessionBuilder {
    /// Broadcast period span Φ (rounds).
    pub fn phi(mut self, phi: u64) -> Self {
        self.params.phi = phi;
        self
    }

    /// Delivery delay ∆ (rounds after the period ends).
    pub fn delta(mut self, delta: u64) -> Self {
        self.params.delta = delta;
        self
    }

    /// Experiment seed (determines all randomness).
    pub fn seed(mut self, seed: &[u8]) -> Self {
        self.seed = seed.to_vec();
        self
    }

    /// Builds the session.
    ///
    /// # Panics
    ///
    /// Panics if the parameters violate Theorem 2's constraints
    /// (`Φ > delay`, `∆ > α_TLE`).
    pub fn build(self) -> SbcSession {
        SbcSession {
            world: RealSbcWorld::new(self.params, &self.seed),
            params: self.params,
            submitted: 0,
        }
    }
}

/// The outcome of an SBC session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SbcResult {
    /// The agreed message vector (lexicographically sorted), identical at
    /// every honest party.
    pub messages: Vec<Vec<u8>>,
    /// The round at which the vector was released (`t_end + ∆`).
    pub release_round: u64,
    /// Total rounds executed.
    pub rounds: u64,
}

/// A running simultaneous-broadcast session over the real protocol stack.
#[derive(Debug)]
pub struct SbcSession {
    world: RealSbcWorld,
    params: SbcParams,
    submitted: usize,
}

impl SbcSession {
    /// Starts building a session for `n` parties.
    pub fn builder(n: usize) -> SbcSessionBuilder {
        SbcSessionBuilder { params: SbcParams::default_for(n), seed: b"sbc-session".to_vec() }
    }

    /// The session parameters.
    pub fn params(&self) -> SbcParams {
        self.params
    }

    /// Submits `message` for broadcast by party `party`.
    ///
    /// # Panics
    ///
    /// Panics if `party` is out of range.
    pub fn submit(&mut self, party: u32, message: &[u8]) {
        assert!((party as usize) < self.params.n, "party out of range");
        self.submitted += 1;
        self.world
            .input(PartyId(party), Command::new("Broadcast", Value::bytes(message)));
    }

    /// Runs one full round (all parties advance). Returns any released
    /// message vector.
    pub fn step_round(&mut self) -> Option<SbcResult> {
        for i in 0..self.params.n {
            self.world.advance(PartyId(i as u32));
        }
        let outs = self.world.drain_outputs();
        let _ = self.world.drain_leaks();
        outs.into_iter().next().map(|(_, cmd)| {
            let messages = cmd
                .value
                .as_list()
                .unwrap_or(&[])
                .iter()
                .map(|v| match v {
                    Value::Bytes(b) => b.clone(),
                    other => other.encode(),
                })
                .collect();
            SbcResult {
                messages,
                release_round: self.world.time().saturating_sub(1),
                rounds: self.world.time(),
            }
        })
    }

    /// Runs rounds until the broadcast result is released.
    ///
    /// # Panics
    ///
    /// Panics if nothing was ever submitted (the period never opens) or the
    /// session fails to terminate within `Φ + ∆ + 4` rounds of the first
    /// submission.
    pub fn run_to_completion(&mut self) -> SbcResult {
        assert!(self.submitted > 0, "submit at least one message first");
        let budget = self.params.phi + self.params.delta + 4;
        for _ in 0..budget {
            if let Some(result) = self.step_round() {
                return result;
            }
        }
        panic!("SBC session failed to terminate within {budget} rounds");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_flow() {
        let mut s = SbcSession::builder(3).seed(b"api-test").build();
        s.submit(0, b"one");
        s.submit(1, b"two");
        let r = s.run_to_completion();
        assert_eq!(r.messages.len(), 2);
        assert!(r.messages.contains(&b"one".to_vec()));
        assert!(r.messages.contains(&b"two".to_vec()));
        assert_eq!(r.release_round, 3 + 2);
    }

    #[test]
    fn custom_parameters() {
        let mut s = SbcSession::builder(2).phi(4).delta(3).seed(b"custom").build();
        s.submit(0, b"m");
        let r = s.run_to_completion();
        assert_eq!(r.release_round, 4 + 3);
    }

    #[test]
    fn messages_sorted_deterministically() {
        let mut s = SbcSession::builder(3).seed(b"sorted").build();
        s.submit(2, b"zzz");
        s.submit(0, b"aaa");
        s.submit(1, b"mmm");
        let r = s.run_to_completion();
        assert_eq!(r.messages, vec![b"aaa".to_vec(), b"mmm".to_vec(), b"zzz".to_vec()]);
    }

    #[test]
    fn single_submitter_liveness() {
        let mut s = SbcSession::builder(5).seed(b"solo").build();
        s.submit(3, b"alone");
        let r = s.run_to_completion();
        assert_eq!(r.messages, vec![b"alone".to_vec()]);
    }

    #[test]
    #[should_panic(expected = "submit at least one message")]
    fn empty_session_panics() {
        SbcSession::builder(2).seed(b"empty").build().run_to_completion();
    }

    #[test]
    #[should_panic(expected = "party out of range")]
    fn out_of_range_party_panics() {
        SbcSession::builder(2).seed(b"oops").build().submit(7, b"x");
    }
}
