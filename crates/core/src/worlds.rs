//! Real and ideal worlds for simultaneous broadcast (Theorem 2).
//!
//! * [`RealSbcWorld`] — parties run `Π_SBC` (Fig. 14) over the ideal
//!   `F_UBC`, the ideal `F_TLE(leak, delay)`, `F_RO` and `G_clock` —
//!   exactly Theorem 2's hybrid model.
//! * [`IdealSbcWorld`] — dummy parties talk to `F_SBC(Φ, ∆, α)` with
//!   `α = max(leak(Cl) − Cl) + 1`; the simulator [`SimSbc`] is the one in
//!   the body of the paper's Theorem 2 proof: it simulates the wake-up,
//!   fabricates `(c, τ_rel, y)` wires without ever seeing honest plaintexts
//!   (random `y`, functionality-shaped `c`), answers the adversary's
//!   `F_TLE` leakage queries from its mirror, and — upon receiving the
//!   broadcast list at `t_end + ∆ − α` — equivocates `F_RO` so that every
//!   `y` opens to the right message.
//!
//! Comparison level: shape equality of full transcripts plus exact
//! equality of all party outputs (the delivered message vectors and their
//! rounds) and of the `F_TLE` leakage responses.

use crate::error::SbcError;
use crate::func::SbcFunc;
use crate::protocol::{parse_sbc_wire, sbc_wire, wake_up, ParsedWire, ReleasePlan, SbcParty};
use sbc_broadcast::ubc::func::{UbcFunc, UBC_SOURCE};
use sbc_primitives::drbg::Drbg;
use sbc_tle::func::{TleFunc, TLE_SOURCE};
use sbc_uc::exec::{run_shards, shard_ranges, SbcWorld, ShardRunner};
use sbc_uc::ids::{PartyId, Tag};
use sbc_uc::ro::{Caller, RandomOracle};
use sbc_uc::value::{Command, Value};
use sbc_uc::world::{AdvCommand, Leak, World, WorldCore};

/// An [`SbcWorld`] backend constructible from experiment parameters — what
/// [`SbcSessionBuilder::build_backend`](crate::api::SbcSessionBuilder::build_backend)
/// plugs into the session layer. Implemented by [`RealSbcWorld`] (Theorem
/// 2's hybrid world) and [`IdealSbcWorld`] (`F_SBC` + `S_SBC`); any future
/// backend (sharded, async, networked) joins by implementing this pair of
/// traits.
///
/// Backends are `Send` (inherited from [`SbcWorld`]): the instance pool
/// steps independent backend worlds on persistent executor workers, so a
/// backend's whole state must be movable across threads.
pub trait SbcBackend: SbcWorld + Sized {
    /// Creates the backend.
    ///
    /// # Errors
    ///
    /// [`SbcError::InvalidParams`] if the parameters violate Theorem 2's
    /// constraints.
    fn from_params(params: SbcParams, seed: &[u8]) -> Result<Self, SbcError>;
}

/// Parameters of an SBC experiment instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SbcParams {
    /// Number of parties.
    pub n: usize,
    /// Broadcast period span Φ.
    pub phi: u64,
    /// Delivery delay ∆ (must exceed the TLE leakage advantage).
    pub delta: u64,
    /// TLE leakage advantage α_TLE (`leak(Cl) = Cl + α_TLE`).
    pub tle_alpha: u64,
    /// TLE ciphertext-generation delay.
    pub tle_delay: u64,
}

impl SbcParams {
    /// The default Theorem 2 instantiation over the ideal `F_TLE`:
    /// `Φ = 3, ∆ = 2, α_TLE = 1, delay = 1` (so `α_SBC = 2`).
    pub fn default_for(n: usize) -> Self {
        SbcParams {
            n,
            phi: 3,
            delta: 2,
            tle_alpha: 1,
            tle_delay: 1,
        }
    }

    /// The SBC simulator advantage `α = max(leak(Cl) − Cl) + 1`.
    pub fn sbc_alpha(&self) -> u64 {
        self.tle_alpha + 1
    }

    /// Validates Theorem 2's constraints.
    ///
    /// # Errors
    ///
    /// [`SbcError::InvalidParams`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), SbcError> {
        let fail = |reason| Err(SbcError::InvalidParams { reason });
        if self.n == 0 {
            return fail("need at least one party");
        }
        if self.phi <= self.tle_delay {
            return fail("need Φ > delay");
        }
        if self.delta <= self.tle_alpha {
            return fail("need ∆ > max(leak(Cl) − Cl)");
        }
        Ok(())
    }
}

/// The labelled randomness streams every Theorem 2 backend forks off the
/// experiment seed, in a fixed order. Forking mutates the parent stream,
/// so a backend must fork *all* of them in exactly this order even when it
/// discards some — [`RealSbcWorld`] discards the `F_SBC` tag and
/// equivocation streams, [`IdealSbcWorld`] uses them. Alternative
/// backends (e.g. the networked world in `sbc-net`) call
/// [`fork_world_streams`] so their functionalities and parties draw
/// bit-identical randomness from the same seed, which is what makes
/// `CompareLevel::Exact` conformance against the in-process world
/// possible at all.
#[derive(Debug)]
pub struct WorldStreams {
    /// `F_RO` answer stream.
    pub ro: Drbg,
    /// `F_UBC` broadcast-tag stream.
    pub ubc_tags: Drbg,
    /// `F_TLE` ciphertext-tag stream (the fill stream is forked off it
    /// inside `TleFunc::new`).
    pub tle_tags: Drbg,
    /// `F_SBC` tag stream (ideal world only).
    pub sbc_tags: Drbg,
    /// Per-party `ρ` streams, party-id order.
    pub parties: Vec<Drbg>,
    /// The simulator's equivocation stream (ideal world only).
    pub equiv: Drbg,
}

/// Forks the canonical [`WorldStreams`] off a world core's seed stream.
pub fn fork_world_streams(core: &mut WorldCore) -> WorldStreams {
    let ro = core.rng.fork(b"ro/fro");
    let ubc_tags = core.rng.fork(b"tags/F_UBC");
    let tle_tags = core.rng.fork(b"tags/F_TLE");
    let sbc_tags = core.rng.fork(b"tags/F_SBC");
    let parties = (0..core.n())
        .map(|i| core.rng.fork(format!("party/{i}").as_bytes()))
        .collect();
    let equiv = core.rng.fork(b"sim/equiv");
    WorldStreams {
        ro,
        ubc_tags,
        tle_tags,
        sbc_tags,
        parties,
        equiv,
    }
}

fn fork_streams(core: &mut WorldCore) -> (Drbg, Drbg, Drbg, Drbg, Vec<Drbg>, Drbg) {
    let s = fork_world_streams(core);
    (s.ro, s.ubc_tags, s.tle_tags, s.sbc_tags, s.parties, s.equiv)
}

fn leakage_response(records: &[(Value, Option<Value>, u64)]) -> Value {
    Value::List(
        records
            .iter()
            .map(|(m, c, t)| {
                Value::list([m.clone(), c.clone().unwrap_or(Value::Unit), Value::U64(*t)])
            })
            .collect(),
    )
}

/// The real world: `Π_SBC` over `F_UBC` + `F_TLE` + `F_RO` + `G_clock`.
#[derive(Debug)]
pub struct RealSbcWorld {
    core: WorldCore,
    /// Experiment parameters (exposed for harness introspection).
    pub params: SbcParams,
    parties: Vec<SbcParty>,
    ubc: UbcFunc,
    ftle: TleFunc,
    ro: RandomOracle,
    /// Reusable per-party release-plan buffer for `tick_sharded` (one slot
    /// per party, kept allocated across rounds so the release round's plan
    /// phase allocates no per-round slot vector). Always all-`None` between
    /// rounds — the merge phase `take`s every slot.
    plan_slots: Vec<Option<ReleasePlan>>,
}

impl RealSbcWorld {
    /// Creates the world.
    ///
    /// # Panics
    ///
    /// Panics if the parameters violate Theorem 2's constraints.
    pub fn new(params: SbcParams, seed: &[u8]) -> Self {
        params.validate().expect("invalid SBC parameters");
        let mut core = WorldCore::new(params.n, seed);
        let (ro_rng, ubc_tags, tle_tags, _sbc_tags, party_rngs, _equiv) = fork_streams(&mut core);
        let parties = party_rngs
            .into_iter()
            .enumerate()
            .map(|(i, rng)| {
                SbcParty::new(
                    PartyId(i as u32),
                    params.phi,
                    params.delta,
                    params.tle_delay,
                    rng,
                )
            })
            .collect();
        RealSbcWorld {
            core,
            params,
            parties,
            ubc: UbcFunc::new(params.n, ubc_tags),
            ftle: TleFunc::new(params.tle_alpha, params.tle_delay, tle_tags),
            ro: RandomOracle::new(ro_rng),
            plan_slots: Vec::new(),
        }
    }

    fn distribute(&mut self, deliveries: Vec<sbc_uc::hybrid::Delivery>) {
        for d in deliveries {
            let mut ctx = sbc_uc::hybrid::HybridCtx {
                clock: &mut self.core.clock,
                rng: &mut self.core.rng,
                leaks: &mut self.core.leaks,
                corr: &mut self.core.corr,
            };
            self.parties[d.to.index()].on_ubc_deliver(&d.cmd.value, &mut self.ftle, &mut ctx);
        }
    }

    /// Minimum flushed-message count before [`distribute_wires_sharded`]
    /// (RealSbcWorld::distribute_wires_sharded) fans recipients out —
    /// below this, shard dispatch costs more than the replay scans it
    /// saves.
    const PAR_DELIVERY_MIN: usize = 8;

    /// One party's round step, optionally with a precomputed release plan
    /// (the serial merge phase of `tick_sharded`) and a round-level
    /// deferral buffer for flushed broadcast messages. `advance` delegates
    /// here with neither, making this the single definition of the round
    /// step.
    ///
    /// The UBC flush is taken through [`UbcFunc::take_flush`] — one owned
    /// `Value` per flushed message, addressed to all of `0..n` — and the
    /// world fans each message out **by reference** in the reference
    /// delivery order (messages in flush order, recipients `0..n` within
    /// each). This replaces the old `messages × n` per-recipient
    /// `Delivery` clones, which the delivery loop only ever borrowed and
    /// dropped: at n = 1000 a broadcast round cloned every wire a thousand
    /// times for nothing.
    ///
    /// With `defer = Some(buf)`, flushed wire messages are appended to
    /// `buf` (global flush order preserved) instead of delivered inline;
    /// the sharded round flushes the buffer once, recipient-sharded, at
    /// end of round. Deferral is sound because mid-round wire receptions
    /// are inert — a wire received in round `t` is only ever *read* at the
    /// release round, and the replay-dedup depends only on each
    /// recipient's own arrival order, which deferral preserves. A batch
    /// containing a `Wake_Up` (which must take effect in flush position —
    /// it sets period times that decide whether later wires of the same
    /// round are accepted, and its `F_TLE` encryptions draw randomness in
    /// order) first flushes the buffer, then delivers serially in place,
    /// keeping the equivalence unconditional.
    fn advance_planned(
        &mut self,
        party: PartyId,
        plan: Option<ReleasePlan>,
        defer: Option<&mut Vec<Value>>,
    ) {
        if self.core.corr.is_corrupted(party) {
            return;
        }
        let out = {
            let mut ctx = sbc_uc::hybrid::HybridCtx {
                clock: &mut self.core.clock,
                rng: &mut self.core.rng,
                leaks: &mut self.core.leaks,
                corr: &mut self.core.corr,
            };
            self.parties[party.index()].on_advance_planned(
                &mut self.ubc,
                &mut self.ftle,
                &mut self.ro,
                &mut ctx,
                plan,
            )
        };
        if let Some(cmd) = out {
            self.core.outputs.push((party, cmd));
        }
        let msgs = {
            let mut ctx = self.core.ctx();
            self.ubc.take_flush(party, &mut ctx)
        };
        match defer {
            Some(buf) => {
                let wake = wake_up();
                if msgs.contains(&wake) {
                    let pending = std::mem::take(buf);
                    self.fan_out(pending);
                    self.fan_out(msgs);
                } else {
                    buf.extend(msgs);
                }
            }
            None => self.fan_out(msgs),
        }
        self.core.clock.advance_party(party);
    }

    /// Delivers each flushed broadcast message to every party in id order,
    /// by reference — the serial reference delivery loop. `Wake_Up`
    /// messages go through the full [`SbcParty::on_ubc_deliver`] (they
    /// mutate `F_TLE` and leak); wire messages are parsed and canonically
    /// encoded **once per message** and fanned out through
    /// [`SbcParty::on_wire_deliver_parsed`], so the per-recipient cost is
    /// the period check plus the replay-dedup probe.
    fn fan_out(&mut self, msgs: Vec<Value>) {
        if msgs.is_empty() {
            return;
        }
        let wake = wake_up();
        let now = self.core.clock.read();
        for msg in &msgs {
            if *msg == wake {
                for i in 0..self.parties.len() {
                    let mut ctx = sbc_uc::hybrid::HybridCtx {
                        clock: &mut self.core.clock,
                        rng: &mut self.core.rng,
                        leaks: &mut self.core.leaks,
                        corr: &mut self.core.corr,
                    };
                    self.parties[i].on_ubc_deliver(msg, &mut self.ftle, &mut ctx);
                }
            } else {
                self.deliver_wire_serial(msg, now);
            }
        }
    }

    /// Delivers one wake-up-free wire message to every party in id order,
    /// at a pinned round time: parse, encode and fingerprint once, then
    /// borrowed fan-out. Unparseable payloads are a no-op at every
    /// recipient, exactly as the per-recipient parse failure was.
    fn deliver_wire_serial(&mut self, msg: &Value, now: u64) {
        let Some(wire) = ParsedWire::parse(msg) else {
            return;
        };
        let wire = std::sync::Arc::new(wire);
        for p in self.parties.iter_mut() {
            p.on_wire_deliver_parsed(&wire, now);
        }
    }

    /// Release-round fast path shared by the serial and sharded round
    /// schedulers: computes the **first** honest party's plan, warms the
    /// oracle memo with its points, then hands a
    /// [`reissue`](ReleasePlan::reissue)d copy to every other honest party
    /// whose wire log provably matches
    /// ([`SbcParty::shares_release_view`] — a pointer compare per entry in
    /// the common case). Broadcast reaches everyone, so in an uninjected
    /// round *every* party matches and the `O(n · senders)`
    /// decrypt/unmask pipeline runs exactly once instead of `n` times —
    /// the dominant cost of a large-`n` release round.
    ///
    /// Returns `true` when every honest party got a plan; `false` leaves
    /// the unmatched slots `None` for the caller's per-party plan phase
    /// (the straggler path — unreachable under pure broadcast, kept so the
    /// fast path is an optimization, never an assumption).
    fn prefill_release_plans(&mut self, now: u64, slots: &mut [Option<ReleasePlan>]) -> bool {
        let n = self.core.n();
        let Some(fi) = (0..n).find(|&i| !self.core.corr.is_corrupted(PartyId(i as u32))) else {
            return true; // nobody honest: nothing will release
        };
        let Some(plan) = self.parties[fi].plan_release(now, &self.ftle, &self.ro) else {
            return false;
        };
        plan.warm_oracle(&mut self.ro);
        let mut all = true;
        for (i, slot) in slots.iter_mut().enumerate() {
            if i == fi || self.core.corr.is_corrupted(PartyId(i as u32)) {
                continue;
            }
            if self.parties[i].shares_release_view(&self.parties[fi], now) {
                *slot = Some(plan.reissue());
            } else {
                all = false;
            }
        }
        slots[fi] = Some(plan);
        all
    }

    /// Party-major serial batch delivery at a pinned round time: each
    /// message is parsed, canonically encoded and fingerprinted once, then
    /// every recipient walks the whole batch in flush order — its exact
    /// serial arrival order — while its own reception log stays hot in
    /// cache. Recipient-major order is what makes the `O(n²)` reception
    /// scan of a large-`n` broadcast round cache-friendly: the wire-major
    /// loop re-touches all `n` logs once per message instead.
    fn distribute_wires_serial(&mut self, msgs: &[Value], now: u64) {
        if msgs.is_empty() {
            return;
        }
        let parsed: Vec<std::sync::Arc<ParsedWire>> = msgs
            .iter()
            .filter_map(ParsedWire::parse)
            .map(std::sync::Arc::new)
            .collect();
        for party in self.parties.iter_mut() {
            for wire in &parsed {
                party.on_wire_deliver_parsed(wire, now);
            }
        }
    }

    /// [`fan_out`](RealSbcWorld::fan_out), recipient-sharded at a pinned
    /// round time: the UBC net layer's delivery loop is the other
    /// `O(n²)`-scan hot spot of a large-`n` round (every wire reaches
    /// every party, and each reception runs the replay-protection scan
    /// over everything received so far). Pure-wire deliveries touch only
    /// the receiving party's own state — no functionality, no randomness,
    /// no leaks — so recipients are independent and every recipient shard
    /// walks the same borrowed parsed-message slice in flush order, which
    /// is exactly each recipient's serial arrival order. Nothing is cloned
    /// or bucketed per recipient.
    ///
    /// Callers guarantee the batch is wake-up-free (`Wake_Up` mutates
    /// `F_TLE` and leaks — it takes the serial
    /// [`fan_out`](RealSbcWorld::fan_out) path) and pass the round the
    /// messages belong to: a sharded round defers its wire deliveries to
    /// one end-of-round fan-out, past the clock tick, so the reception
    /// time must be the round the wires were flushed in, exactly as the
    /// serial loop's in-round deliveries saw it.
    fn distribute_wires_sharded(&mut self, msgs: Vec<Value>, now: u64, shards: &dyn ShardRunner) {
        let parsed: Vec<std::sync::Arc<ParsedWire>> = msgs
            .iter()
            .filter_map(ParsedWire::parse)
            .map(std::sync::Arc::new)
            .collect();
        let parsed = parsed.as_slice();
        let ranges = shard_ranges(self.parties.len(), shards.width());
        let mut rest = self.parties.as_mut_slice();
        let mut jobs = Vec::with_capacity(ranges.len());
        for r in &ranges {
            let (chunk, tail) = rest.split_at_mut(r.len());
            rest = tail;
            jobs.push(move || {
                for party in chunk {
                    for wire in parsed {
                        party.on_wire_deliver_parsed(wire, now);
                    }
                }
            });
        }
        run_shards(shards, jobs);
    }
}

impl World for RealSbcWorld {
    fn n(&self) -> usize {
        self.core.n()
    }

    fn time(&self) -> u64 {
        self.core.clock.read()
    }

    fn input(&mut self, party: PartyId, cmd: Command) {
        if cmd.name != "Broadcast" || self.core.corr.is_corrupted(party) {
            return;
        }
        let mut ctx = sbc_uc::hybrid::HybridCtx {
            clock: &mut self.core.clock,
            rng: &mut self.core.rng,
            leaks: &mut self.core.leaks,
            corr: &mut self.core.corr,
        };
        self.parties[party.index()].on_input(cmd.value, &mut self.ubc, &mut self.ftle, &mut ctx);
    }

    fn advance(&mut self, party: PartyId) {
        self.advance_planned(party, None, None);
    }

    fn adversary(&mut self, cmd: AdvCommand) -> Value {
        match cmd {
            AdvCommand::Corrupt(p) => {
                if !self.core.corrupt(p) {
                    return Value::Bool(false);
                }
                Value::List(self.parties[p.index()].pending_messages())
            }
            AdvCommand::SendAs { party, cmd } if cmd.name == "Broadcast" => {
                if self.core.corr.is_corrupted(party) {
                    let ds = {
                        let mut ctx = self.core.ctx();
                        self.ubc.broadcast_corrupted(party, cmd.value, &mut ctx)
                    };
                    self.distribute(ds);
                }
                Value::Unit
            }
            AdvCommand::Control { target, cmd } => match (target.as_str(), cmd.name.as_str()) {
                ("F_TLE", "Insert") => {
                    let Some(items) = cmd.value.as_list() else {
                        return Value::Unit;
                    };
                    if items.len() == 3 {
                        if let (Some(_), Some(_), Some(tau)) =
                            (items[0].as_bytes(), items[1].as_bytes(), items[2].as_u64())
                        {
                            self.ftle
                                .insert_adversarial(items[0].clone(), items[1].clone(), tau);
                            return Value::Bool(true);
                        }
                    }
                    Value::Unit
                }
                ("F_TLE", "Leakage") => {
                    let recs = {
                        let ctx = self.core.ctx();
                        self.ftle.leakage(&ctx)
                    };
                    leakage_response(
                        &recs
                            .into_iter()
                            .map(|r| (r.msg, r.ct, r.tau))
                            .collect::<Vec<_>>(),
                    )
                }
                ("F_RO", "QueryBytes") => {
                    let Some(items) = cmd.value.as_list() else {
                        return Value::Unit;
                    };
                    if items.len() == 2 {
                        if let (Some(x), Some(len)) = (items[0].as_bytes(), items[1].as_u64()) {
                            return Value::Bytes(self.ro.query_bytes(
                                Caller::Adversary,
                                x,
                                len as usize,
                            ));
                        }
                    }
                    Value::Unit
                }
                _ => Value::Unit,
            },
            _ => Value::Unit,
        }
    }

    fn drain_outputs(&mut self) -> Vec<(PartyId, Command)> {
        std::mem::take(&mut self.core.outputs)
    }

    fn drain_leaks(&mut self) -> Vec<Leak> {
        std::mem::take(&mut self.core.leaks)
    }

    fn is_corrupted(&self, party: PartyId) -> bool {
        self.core.corr.is_corrupted(party)
    }
}

impl SbcWorld for RealSbcWorld {
    /// Closes the books on a released broadcast period so the same world
    /// can host another one (multi-epoch sessions): every party forgets its
    /// period state, undelivered UBC wires are dropped, and the released
    /// `F_TLE` records are pruned. The global clock, the random oracle and
    /// the corruption state carry over.
    fn begin_new_period(&mut self) {
        for p in &mut self.parties {
            p.reset_period();
        }
        self.ubc.clear_pending();
        self.ftle.clear_records();
    }

    /// The agreed release round `τ_rel = t_end + ∆` of the current period,
    /// once any party has woken up. This is the authoritative release-round
    /// value: it is correct even when the environment drains outputs late.
    fn release_round(&self) -> Option<u64> {
        self.parties.iter().find_map(|p| p.tau_rel())
    }

    /// The end of the current broadcast period `t_end = t_awake + Φ`, once
    /// any party has woken up.
    fn period_end(&self) -> Option<u64> {
        self.parties.iter().find_map(|p| p.t_end())
    }

    /// O(1) clock-offset join: when the world is verifiably idle — every
    /// party asleep with empty queues, no undelivered UBC wires, the clock
    /// at a round boundary — an idle round is a pure clock tick (no
    /// randomness, no leaks, no outputs), so the catch-up collapses to a
    /// [`GlobalClock::fast_forward`](sbc_uc::clock::GlobalClock::fast_forward).
    /// Anything short of verifiably idle falls back to the literal replay,
    /// keeping the observation-equivalence contract of
    /// [`SbcWorld::join_at`] unconditional.
    fn join_at(&mut self, round: u64) {
        let idle = self.parties.iter().all(|p| p.is_idle())
            && self.ubc.pending().is_empty()
            && !self.core.clock.mid_round();
        if idle {
            self.core.clock.fast_forward(round);
        } else {
            sbc_uc::exec::replay_join(self, round);
        }
    }

    /// Serial round with the same round-level restructurings the sharded
    /// schedule uses, run entirely on the caller's thread:
    ///
    /// 1. **Release round**: one shared release plan
    ///    (`prefill_release_plans`) — broadcast gives every honest party
    ///    an identical wire log, so the decrypt/unmask pipeline runs once
    ///    and is reissued, instead of `n` times.
    /// 2. **Broadcast rounds**: wire deliveries are deferred into one
    ///    end-of-round recipient-major batch (`distribute_wires_serial`),
    ///    keeping each recipient's log hot in cache instead of touching
    ///    all `n` logs once per message.
    ///
    /// Both restructurings are observation-equivalent to the literal
    /// per-party reference loop (`advance` in party-id order with in-place
    /// delivery) — see `advance_planned` for the deferral argument and
    /// [`SbcParty::shares_release_view`] for the plan-reuse one; the
    /// equivalence is pinned by the `tick_matches_per_party_advance_loop`
    /// test and every real-vs-ideal `Exact` gate. Mid-round states fall
    /// back to the literal loop: the round restructurings assume a round
    /// boundary.
    fn tick(&mut self) {
        let n = self.core.n();
        if n <= 1 || self.core.clock.mid_round() {
            for i in 0..n {
                let p = PartyId(i as u32);
                if !self.core.corr.is_corrupted(p) {
                    self.advance(p);
                }
            }
            return;
        }
        let now = self.core.clock.read();
        let releasing = self.release_round() == Some(now);
        let mut slots = std::mem::take(&mut self.plan_slots);
        slots.clear();
        slots.resize_with(n, || None);
        if releasing {
            // Unmatched parties keep a `None` slot and compute their
            // release inline in the loop below — the reference step.
            let _ = self.prefill_release_plans(now, &mut slots);
        }
        let mut deferred: Vec<Value> = Vec::new();
        for (i, slot) in slots.iter_mut().enumerate() {
            let p = PartyId(i as u32);
            if !self.core.corr.is_corrupted(p) {
                let plan = slot.take();
                self.advance_planned(p, plan, Some(&mut deferred));
            }
        }
        self.plan_slots = slots;
        self.distribute_wires_serial(&deferred, now);
    }

    /// Party-sharded round: the two scan-heavy hot spots of a large-`n`
    /// instance fan out across workers while every mutation stays serial in
    /// party-id order, keeping transcripts bit-identical to
    /// [`SbcWorld::tick`]:
    ///
    /// 1. **Release round** (`Cl = τ_rel`): each party's step — `Dec`-scan
    ///    of every received wire against the `F_TLE` records, mask
    ///    derivation, unmask, sort — is pure against the frozen round
    ///    snapshot ([`SbcParty::plan_release`] documents why). The shared
    ///    plan fast path (`prefill_release_plans`) normally covers every
    ///    party outright; any stragglers plan in
    ///    parallel, and the serial merge replays the observable oracle
    ///    effects in party-id order either way.
    /// 2. **Broadcast rounds**: every wire delivery of the round is
    ///    deferred (flush order preserved) into one end-of-round batch
    ///    that fans out across recipient shards — recipients are
    ///    independent, and one dispatch per round amortizes the scheduling
    ///    cost (see `advance_planned` for why deferral is
    ///    observation-equivalent).
    ///
    /// Mid-round states (some party already advanced this round) fall back
    /// to the serial reference loop: sharding assumes a round boundary.
    fn tick_sharded(&mut self, shards: &dyn ShardRunner) {
        let n = self.core.n();
        if n <= 1 || self.core.clock.mid_round() {
            return self.tick();
        }
        let now = self.core.clock.read();
        let releasing = self.release_round() == Some(now);
        // The reusable slot buffer replaces the old per-round
        // collect-per-shard + flatten pipeline: slots are written in place
        // by the shard jobs (disjoint `split_at_mut` chunks) and `take`n by
        // the merge, so a release round allocates no plan vectors at all
        // after the first (the buffer keeps its capacity across rounds).
        let mut slots = std::mem::take(&mut self.plan_slots);
        slots.clear();
        slots.resize_with(n, || None);
        if releasing && !self.prefill_release_plans(now, &mut slots) {
            // Straggler plan phase: some honest party's wire log diverged
            // from the first's (impossible under pure broadcast, possible
            // in principle), so its plan wasn't reissued — compute the
            // remaining `None` slots in parallel, exactly the old
            // every-party plan fan-out.
            let parties = &self.parties;
            let ftle = &self.ftle;
            let ro = &self.ro;
            let corr = &self.core.corr;
            let ranges = shard_ranges(n, shards.width());
            let mut rest = slots.as_mut_slice();
            let mut start = 0usize;
            let mut jobs = Vec::with_capacity(ranges.len());
            for r in &ranges {
                let (chunk, tail) = rest.split_at_mut(r.len());
                rest = tail;
                let base = start;
                start += r.len();
                jobs.push(move || {
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        let p = PartyId((base + k) as u32);
                        if slot.is_none() && !corr.is_corrupted(p) {
                            *slot = parties[base + k].plan_release(now, ftle, ro);
                        }
                    }
                });
            }
            run_shards(shards, jobs);
        }
        let mut deferred: Vec<Value> = Vec::new();
        for (i, slot) in slots.iter_mut().enumerate() {
            let p = PartyId(i as u32);
            if !self.core.corr.is_corrupted(p) {
                let plan = slot.take();
                self.advance_planned(p, plan, Some(&mut deferred));
            }
        }
        self.plan_slots = slots;
        if deferred.len() >= Self::PAR_DELIVERY_MIN {
            self.distribute_wires_sharded(deferred, now, shards);
        } else {
            // Too small to amortize a dispatch — deliver serially, still at
            // the round the wires were flushed in (the clock has ticked by
            // now; the serial loop's deliveries happened pre-tick).
            self.distribute_wires_serial(&deferred, now);
        }
    }
}

impl SbcBackend for RealSbcWorld {
    fn from_params(params: SbcParams, seed: &[u8]) -> Result<Self, SbcError> {
        params.validate()?;
        Ok(RealSbcWorld::new(params, seed))
    }
}

/// A simulated pending broadcast in `S_SBC`'s shadow state.
#[derive(Clone, Debug)]
struct SimEntry {
    sbc_tag: Tag,
    msg_len: usize,
    rho: Vec<u8>,
    ct: Option<Value>,
    y: Option<Vec<u8>>,
    enc_round: Option<u64>,
    broadcast: bool,
}

/// An adversarially inserted `F_TLE` record in the mirror.
#[derive(Clone, Debug)]
struct SimInsert {
    ct: Value,
    rho: Value,
    tau: u64,
}

/// The simulator `S_SBC` from the proof of Theorem 2.
#[derive(Debug)]
pub struct SimSbc {
    params: SbcParams,
    party_rngs: Vec<Drbg>,
    ubc_tag_rng: Drbg,
    tle_tag_rng: Drbg,
    tle_fill_rng: Drbg,
    equiv_rng: Drbg,
    queues: Vec<Vec<SimEntry>>,
    wakeup_pending: Vec<bool>,
    wakeup_sent: Vec<bool>,
    t_awake: Option<u64>,
    inserts: Vec<SimInsert>,
    seen_wires: Vec<(Value, Vec<u8>)>,
    programmed: bool,
    would_abort: bool,
}

impl SimSbc {
    fn new(
        params: SbcParams,
        party_rngs: Vec<Drbg>,
        ubc_tag_rng: Drbg,
        mut tle_tag_rng: Drbg,
        equiv_rng: Drbg,
    ) -> Self {
        let n = params.n;
        // Mirror F_TLE's internal fill fork (same derivation as TleFunc).
        let tle_fill_rng = tle_tag_rng.fork(b"fill");
        SimSbc {
            params,
            party_rngs,
            ubc_tag_rng,
            tle_tag_rng,
            tle_fill_rng,
            equiv_rng,
            queues: vec![Vec::new(); n],
            wakeup_pending: vec![false; n],
            wakeup_sent: vec![false; n],
            t_awake: None,
            inserts: Vec::new(),
            seen_wires: Vec::new(),
            programmed: false,
            would_abort: false,
        }
    }

    fn t_end(&self) -> Option<u64> {
        self.t_awake.map(|t| t + self.params.phi)
    }

    fn tau_rel(&self) -> Option<u64> {
        self.t_end().map(|t| t + self.params.delta)
    }

    fn mirror_tle_enc_leak(
        &mut self,
        party: PartyId,
        now: u64,
        entry_idx: usize,
        leaks_out: &mut Vec<Leak>,
    ) {
        let tau_rel = self.tau_rel().expect("awake");
        // Mirror the party's ρ draw and F_TLE's tag draw + Enc leak.
        let rho = self.party_rngs[party.index()].gen_bytes(32);
        let tle_tag = Tag::random(&mut self.tle_tag_rng);
        let entry = &mut self.queues[party.index()][entry_idx];
        entry.rho = rho.clone();
        entry.enc_round = Some(now);
        let rho_len = Value::bytes(&rho).encode().len();
        leaks_out.push(Leak {
            source: TLE_SOURCE.into(),
            cmd: Command::new(
                "Enc",
                Value::list([
                    Value::U64(tau_rel),
                    Value::bytes(tle_tag.as_bytes()),
                    Value::U64(now),
                    Value::U64(rho_len as u64),
                    Value::U64(party.0 as u64),
                ]),
            ),
        });
    }

    /// Handles an `F_SBC` `(Sender, tag, 0^|M|, P)` leak.
    fn on_sender_leak(
        &mut self,
        party: PartyId,
        tag: Tag,
        msg_len: usize,
        now: u64,
        leaks_out: &mut Vec<Leak>,
    ) {
        self.queues[party.index()].push(SimEntry {
            sbc_tag: tag,
            msg_len,
            rho: Vec::new(),
            ct: None,
            y: None,
            enc_round: None,
            broadcast: false,
        });
        let idx = self.queues[party.index()].len() - 1;
        if self.t_awake.is_none() {
            // Asleep: simulate the Wake_Up unfair broadcast (once per party).
            if !self.wakeup_sent[party.index()] {
                self.wakeup_sent[party.index()] = true;
                self.wakeup_pending[party.index()] = true;
                let ubc_tag = Tag::random(&mut self.ubc_tag_rng);
                leaks_out.push(Leak {
                    source: UBC_SOURCE.into(),
                    cmd: Command::new(
                        "Broadcast",
                        Value::list([
                            Value::bytes(ubc_tag.as_bytes()),
                            wake_up(),
                            Value::U64(party.0 as u64),
                        ]),
                    ),
                });
                // Mirror the tag the real F_UBC would burn for this pending
                // wake-up (emitted again at flush): remember it.
                self.queues[party.index()][idx].y = None;
            }
        } else {
            self.mirror_tle_enc_leak(party, now, idx, leaks_out);
        }
    }

    /// Simulates a party's round step.
    fn on_advance(
        &mut self,
        party: PartyId,
        now: u64,
        ro: &mut RandomOracle,
        sbc_list: Option<&[(Tag, Value)]>,
        leaks_out: &mut Vec<Leak>,
    ) {
        // Wake-up flush when this party advances with a pending wake-up.
        if self.wakeup_pending[party.index()] {
            self.wakeup_pending[party.index()] = false;
            let first_flush = self.t_awake.is_none();
            // Flush leak mirrors F_UBC's (with the same tag it used at
            // broadcast time — regenerating from the same stream order).
            let ubc_tag = Tag::random(&mut self.ubc_tag_rng);
            leaks_out.push(Leak {
                source: UBC_SOURCE.into(),
                cmd: Command::new(
                    "Broadcast",
                    Value::list([
                        Value::bytes(ubc_tag.as_bytes()),
                        wake_up(),
                        Value::U64(party.0 as u64),
                    ]),
                ),
            });
            if first_flush {
                self.t_awake = Some(now);
                // Deferred encryptions: every party's queued entries, in
                // delivery order P0..Pn-1 (F_UBC delivers to all).
                for i in 0..self.params.n {
                    let pending: Vec<usize> = (0..self.queues[i].len())
                        .filter(|&k| self.queues[i][k].enc_round.is_none())
                        .collect();
                    for k in pending {
                        self.mirror_tle_enc_leak(PartyId(i as u32), now, k, leaks_out);
                    }
                }
            }
        }
        let (Some(awake), Some(end), Some(tau_rel)) = (self.t_awake, self.t_end(), self.tau_rel())
        else {
            return;
        };
        let _ = tau_rel;
        if awake <= now && now < end {
            // Mirror F_TLE.retrieve's lazy ciphertext fill (global record
            // order = queue insertion order per owner) and the UBC
            // broadcast + flush of ready wires.
            let mut input_leaks = Vec::new();
            for k in 0..self.queues[party.index()].len() {
                let (ready, needs_fill) = {
                    let e = &self.queues[party.index()][k];
                    match e.enc_round {
                        Some(r) if !e.broadcast && now >= r + self.params.tle_delay => {
                            (true, e.ct.is_none())
                        }
                        _ => (false, e.ct.is_none()),
                    }
                };
                // F_TLE fills every retrieved-eligible record, broadcast or
                // not — mirror the fill for all eligible ones.
                let eligible = {
                    let e = &self.queues[party.index()][k];
                    matches!(e.enc_round, Some(r) if now >= r + self.params.tle_delay)
                };
                if eligible && needs_fill {
                    self.queues[party.index()][k].ct =
                        Some(Value::bytes(self.tle_fill_rng.gen_bytes(64)));
                }
                if ready {
                    let (ct, y) = {
                        let e = &mut self.queues[party.index()][k];
                        e.broadcast = true;
                        let y = self.equiv_rng.gen_bytes(e.msg_len);
                        e.y = Some(y.clone());
                        (e.ct.clone().expect("filled"), y)
                    };
                    let wire = sbc_wire(&ct, self.tau_rel().expect("awake"), &y);
                    self.seen_wires.push((ct, y.clone()));
                    let ubc_tag = Tag::random(&mut self.ubc_tag_rng);
                    input_leaks.push(Leak {
                        source: UBC_SOURCE.into(),
                        cmd: Command::new(
                            "Broadcast",
                            Value::list([
                                Value::bytes(ubc_tag.as_bytes()),
                                wire,
                                Value::U64(party.0 as u64),
                            ]),
                        ),
                    });
                }
            }
            let flush = input_leaks.clone();
            leaks_out.extend(input_leaks);
            leaks_out.extend(flush);
        }
        // Equivocation: once the functionality hands over the broadcast
        // list (at t_end + ∆ − α), program F_RO so every fabricated y opens
        // to its real message.
        if let Some(list) = sbc_list {
            if !self.programmed {
                self.programmed = true;
                for (tag, msg) in list {
                    let entry = self
                        .queues
                        .iter()
                        .flatten()
                        .find(|e| e.sbc_tag == *tag && e.y.is_some());
                    let Some(entry) = entry else { continue };
                    let y = entry.y.as_ref().expect("broadcast entries have y");
                    let m_bytes = msg.encode();
                    if m_bytes.len() != y.len() {
                        continue;
                    }
                    let eta: Vec<u8> = y.iter().zip(m_bytes.iter()).map(|(a, b)| a ^ b).collect();
                    if ro.adversary_queried_bytes(&entry.rho, eta.len()) {
                        self.would_abort = true;
                    }
                    if ro.program_bytes(&entry.rho, eta).is_err() {
                        self.would_abort = true;
                    }
                }
            }
        }
    }

    /// Mirrors the `F_TLE` leakage interface from the shadow records.
    fn tle_leakage(&mut self, now: u64) -> Value {
        let horizon = now + self.params.tle_alpha;
        let mut recs: Vec<(Value, Option<Value>, u64)> = Vec::new();
        let tau_rel = self.tau_rel();
        for q in &self.queues {
            for e in q {
                if e.enc_round.is_none() {
                    continue;
                }
                let tau = tau_rel.expect("encrypted implies awake");
                if tau <= horizon {
                    recs.push((Value::bytes(&e.rho), e.ct.clone(), tau));
                }
            }
        }
        for ins in &self.inserts {
            if ins.tau <= horizon {
                recs.push((ins.rho.clone(), Some(ins.ct.clone()), ins.tau));
            }
        }
        leakage_response(&recs)
    }

    /// Forgets the closed broadcast period — the simulator-side mirror of
    /// [`SbcParty::reset_period`] plus the `F_UBC`/`F_TLE` pruning of the
    /// real world's period turnover: shadow queues, wake-up flags, agreed
    /// times, adversarial inserts and replay-guard wires are dropped. The
    /// mirrored randomness streams carry over (exactly like the real
    /// parties' and functionalities' streams do), and the sticky
    /// `would_abort` flag survives: an abort event in any epoch taints the
    /// whole execution.
    fn begin_new_period(&mut self) {
        for q in &mut self.queues {
            q.clear();
        }
        self.wakeup_pending.iter_mut().for_each(|w| *w = false);
        self.wakeup_sent.iter_mut().for_each(|w| *w = false);
        self.t_awake = None;
        self.inserts.clear();
        self.seen_wires.clear();
        self.programmed = false;
    }

    /// Whether the simulator holds no period state: asleep, no shadow
    /// queues, no pending wake-up flushes. The ideal-world counterpart of
    /// [`SbcParty::is_idle`] — a simulated idle round then draws no
    /// randomness and emits no leaks, which is what licenses the O(1)
    /// `join_at` fast path.
    fn is_idle(&self) -> bool {
        self.t_awake.is_none()
            && self.queues.iter().all(|q| q.is_empty())
            && !self.wakeup_pending.iter().any(|w| *w)
    }
}

/// The ideal world: `F_SBC(Φ, ∆, α)` + `S_SBC`.
#[derive(Debug)]
pub struct IdealSbcWorld {
    core: WorldCore,
    fsbc: SbcFunc,
    sim: SimSbc,
    ro: RandomOracle,
    /// The broadcast list received from `F_SBC` at `t_end + ∆ − α`.
    sbc_list: Option<Vec<(Tag, Value)>>,
}

impl IdealSbcWorld {
    /// Creates the world.
    ///
    /// # Panics
    ///
    /// Panics if the parameters violate Theorem 2's constraints.
    pub fn new(params: SbcParams, seed: &[u8]) -> Self {
        params.validate().expect("invalid SBC parameters");
        let mut core = WorldCore::new(params.n, seed);
        let (ro_rng, ubc_tags, tle_tags, sbc_tags, party_rngs, equiv) = fork_streams(&mut core);
        IdealSbcWorld {
            fsbc: SbcFunc::new(
                params.n,
                params.phi,
                params.delta,
                params.sbc_alpha(),
                sbc_tags,
            ),
            sim: SimSbc::new(params, party_rngs, ubc_tags, tle_tags, equiv),
            ro: RandomOracle::new(ro_rng),
            core,
            sbc_list: None,
        }
    }

    /// Whether the simulator hit an equivocation-abort event.
    pub fn simulator_would_abort(&self) -> bool {
        self.sim.would_abort
    }
}

impl World for IdealSbcWorld {
    fn n(&self) -> usize {
        self.core.n()
    }

    fn time(&self) -> u64 {
        self.core.clock.read()
    }

    fn input(&mut self, party: PartyId, cmd: Command) {
        if cmd.name != "Broadcast" || self.core.corr.is_corrupted(party) {
            return;
        }
        let msg_len = cmd.value.encode().len();
        let now = self.core.clock.read();
        let mut scratch = Vec::new();
        let tag = {
            let mut ctx = sbc_uc::hybrid::HybridCtx {
                clock: &mut self.core.clock,
                rng: &mut self.core.rng,
                leaks: &mut scratch,
                corr: &mut self.core.corr,
            };
            self.fsbc.broadcast(party, cmd.value, &mut ctx)
        };
        if let Some(tag) = tag {
            let mut leaks = Vec::new();
            self.sim
                .on_sender_leak(party, tag, msg_len, now, &mut leaks);
            self.core.leaks.extend(leaks);
        }
    }

    fn advance(&mut self, party: PartyId) {
        if self.core.corr.is_corrupted(party) {
            return;
        }
        let now = self.core.clock.read();
        // F_SBC's once-per-round steps + delivery; its leak (the broadcast
        // list) goes to the simulator, not the environment.
        let mut scratch = Vec::new();
        let ds = {
            let mut ctx = sbc_uc::hybrid::HybridCtx {
                clock: &mut self.core.clock,
                rng: &mut self.core.rng,
                leaks: &mut scratch,
                corr: &mut self.core.corr,
            };
            self.fsbc.advance_clock(party, &mut ctx)
        };
        for leak in scratch {
            if let Some(items) = leak.cmd.value.as_list() {
                let list: Vec<(Tag, Value)> = items
                    .iter()
                    .filter_map(|pair| {
                        let p = pair.as_list()?;
                        Some((Tag::from_bytes(p[0].as_bytes()?)?, p[1].clone()))
                    })
                    .collect();
                self.sbc_list = Some(list);
            }
        }
        let mut leaks = Vec::new();
        self.sim.on_advance(
            party,
            now,
            &mut self.ro,
            self.sbc_list.as_deref(),
            &mut leaks,
        );
        self.core.leaks.extend(leaks);
        self.core.push_outputs(ds);
        self.core.clock.advance_party(party);
    }

    fn adversary(&mut self, cmd: AdvCommand) -> Value {
        let now = self.core.clock.read();
        match cmd {
            AdvCommand::Corrupt(p) => {
                if !self.core.corrupt(p) {
                    return Value::Bool(false);
                }
                // Corruption_Request: the unbroadcast pending messages.
                let recs = {
                    let ctx = self.core.ctx();
                    self.fsbc.corruption_request(&ctx)
                };
                let msgs: Vec<Value> = self.sim.queues[p.index()]
                    .iter()
                    .filter(|e| !e.broadcast)
                    .filter_map(|e| {
                        recs.iter()
                            .find(|r| r.tag == e.sbc_tag)
                            .map(|r| r.msg.clone())
                    })
                    .collect();
                // Already-broadcast records of the newly corrupted sender
                // stay committed: the simulator re-`Allow`s them unchanged
                // (their ciphertexts are already public in the real world).
                let committed: Vec<(Tag, Value)> = self.sim.queues[p.index()]
                    .iter()
                    .filter(|e| e.broadcast)
                    .filter_map(|e| {
                        recs.iter()
                            .find(|r| r.tag == e.sbc_tag)
                            .map(|r| (r.tag, r.msg.clone()))
                    })
                    .collect();
                for (tag, msg) in committed {
                    let mut ctx = self.core.ctx();
                    self.fsbc.allow(tag, msg, p, &mut ctx);
                }
                Value::List(msgs)
            }
            AdvCommand::SendAs { party, cmd } if cmd.name == "Broadcast" => {
                if !self.core.corr.is_corrupted(party) {
                    return Value::Unit;
                }
                // Mirror F_UBC's corrupted-broadcast leak.
                self.core.leaks.push(Leak {
                    source: UBC_SOURCE.into(),
                    cmd: Command::new(
                        "Broadcast",
                        Value::pair(cmd.value.clone(), Value::U64(party.0 as u64)),
                    ),
                });
                let Some((ct, tau, y)) = parse_sbc_wire(&cmd.value) else {
                    return Value::Unit;
                };
                let Some(tau_rel) = self.sim.tau_rel() else {
                    return Value::Unit;
                };
                let Some(end) = self.sim.t_end() else {
                    return Value::Unit;
                };
                if tau != tau_rel || now >= end {
                    return Value::Unit;
                }
                if self
                    .sim
                    .seen_wires
                    .iter()
                    .any(|(c, yy)| c == &ct || yy == &y)
                {
                    return Value::Unit; // replay: recipients ignore it
                }
                self.sim.seen_wires.push((ct.clone(), y.clone()));
                // Extract the adversarial message from the mirror.
                let Some(ins) = self.sim.inserts.iter().find(|i| i.ct == ct) else {
                    return Value::Unit; // unknown ciphertext → ⊥ at τ_rel
                };
                let Some(rho) = ins.rho.as_bytes() else {
                    return Value::Unit;
                };
                let eta = self.ro.query_bytes(Caller::Simulator, rho, y.len());
                let m_bytes: Vec<u8> = y.iter().zip(eta.iter()).map(|(a, b)| a ^ b).collect();
                let msg = Value::decode(&m_bytes).unwrap_or(Value::Bytes(m_bytes));
                let mut scratch = Vec::new();
                {
                    let mut ctx = sbc_uc::hybrid::HybridCtx {
                        clock: &mut self.core.clock,
                        rng: &mut self.core.rng,
                        leaks: &mut scratch,
                        corr: &mut self.core.corr,
                    };
                    self.fsbc.broadcast(party, msg, &mut ctx);
                }
                Value::Unit
            }
            AdvCommand::Control { target, cmd } => match (target.as_str(), cmd.name.as_str()) {
                ("F_TLE", "Insert") => {
                    let Some(items) = cmd.value.as_list() else {
                        return Value::Unit;
                    };
                    if items.len() == 3 {
                        if let (Some(_), Some(_), Some(tau)) =
                            (items[0].as_bytes(), items[1].as_bytes(), items[2].as_u64())
                        {
                            self.sim.inserts.push(SimInsert {
                                ct: items[0].clone(),
                                rho: items[1].clone(),
                                tau,
                            });
                            return Value::Bool(true);
                        }
                    }
                    Value::Unit
                }
                ("F_TLE", "Leakage") => self.sim.tle_leakage(now),
                ("F_RO", "QueryBytes") => {
                    let Some(items) = cmd.value.as_list() else {
                        return Value::Unit;
                    };
                    if items.len() == 2 {
                        if let (Some(x), Some(len)) = (items[0].as_bytes(), items[1].as_u64()) {
                            return Value::Bytes(self.ro.query_bytes(
                                Caller::Adversary,
                                x,
                                len as usize,
                            ));
                        }
                    }
                    Value::Unit
                }
                _ => Value::Unit,
            },
            _ => Value::Unit,
        }
    }

    fn drain_outputs(&mut self) -> Vec<(PartyId, Command)> {
        std::mem::take(&mut self.core.outputs)
    }

    fn drain_leaks(&mut self) -> Vec<Leak> {
        std::mem::take(&mut self.core.leaks)
    }

    fn is_corrupted(&self, party: PartyId) -> bool {
        self.core.corr.is_corrupted(party)
    }
}

impl SbcWorld for IdealSbcWorld {
    /// The ideal-world period turnover matching
    /// [`RealSbcWorld::begin_new_period`]: `F_SBC` forgets its records and
    /// period times, the simulator clears its shadow state (see
    /// `SimSbc::begin_new_period`), and the pending broadcast list is
    /// dropped. The global clock, the random oracle, the corruption state
    /// and every mirrored randomness stream carry over — so transcript
    /// equality with the real world extends across epoch boundaries.
    fn begin_new_period(&mut self) {
        self.fsbc.begin_new_period();
        self.sim.begin_new_period();
        self.sbc_list = None;
    }

    fn release_round(&self) -> Option<u64> {
        self.sim.tau_rel()
    }

    fn period_end(&self) -> Option<u64> {
        self.sim.t_end()
    }

    fn would_abort(&self) -> bool {
        self.sim.would_abort
    }

    /// O(1) clock-offset join, mirroring [`RealSbcWorld::join_at`]: when
    /// the simulator is idle and no broadcast list is pending, an idle
    /// ideal-world round is a pure clock tick, so the catch-up collapses
    /// to a clock fast-forward; otherwise the literal replay runs.
    fn join_at(&mut self, round: u64) {
        let idle = self.sim.is_idle() && self.sbc_list.is_none() && !self.core.clock.mid_round();
        if idle {
            self.core.clock.fast_forward(round);
        } else {
            sbc_uc::exec::replay_join(self, round);
        }
    }

    /// Plan/apply sharding of the ideal world's *delivery* round — the one
    /// round whose per-party work (cloning the finalized `n`-message vector
    /// for each of `n` parties) is both O(n²) and embarrassingly parallel.
    ///
    /// `S_SBC` threads one sequential state machine through every other
    /// round (shared mirrored randomness streams, order-coupled leaks), so
    /// those fall back to the serial [`SbcWorld::tick`]. But at
    /// `now == t_end + ∆` with `τ_rel == now` the round is provably
    /// *quiescent*: `F_SBC`'s once-per-round schedule has nothing left to
    /// do (finalization ran at `t_end`, the simulator list leaked at
    /// `t_end + ∆ − α`, and ∆ ≥ 1, α ≥ 1 make both inner branches false),
    /// the simulator's `on_advance` is a pure no-op (awake, past the
    /// broadcast window, list already programmed, no pending wake-up
    /// flushes — it draws no randomness and emits no leaks), and each
    /// honest party's advance reduces to bookkeeping plus a clone of the
    /// immutable finalized vector. The plan phase clones that template in
    /// parallel into a per-party slot vector; the merge applies the clones
    /// in party-id order, bit-identical to the serial loop
    /// (`CompareLevel::Exact` — pinned by the
    /// `ideal_sharded_matches_serial_*` tests).
    fn tick_sharded(&mut self, shards: &dyn ShardRunner) {
        let n = self.core.n();
        let now = self.core.clock.read();
        let quiescent = n > 1
            && !self.core.clock.mid_round()
            && self.sim.tau_rel() == Some(now)
            && self.fsbc.is_pure_delivery_round(now)
            && self.sbc_list.is_some()
            && self.sim.programmed
            && !self.sim.wakeup_pending.iter().any(|w| *w);
        if !quiescent {
            return self.tick();
        }
        // Plan: every honest party receives a clone of the same finalized
        // vector — clone against the immutable template, one shard per
        // contiguous party range, written into disjoint slot chunks.
        let template = self.fsbc.finalized_messages();
        let mut slots: Vec<Option<Command>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        {
            let corr = &self.core.corr;
            let template = &template;
            let ranges = shard_ranges(n, shards.width());
            let mut rest = slots.as_mut_slice();
            let mut start = 0usize;
            let mut jobs = Vec::with_capacity(ranges.len());
            for r in &ranges {
                let (chunk, tail) = rest.split_at_mut(r.len());
                rest = tail;
                let base = start;
                start += r.len();
                jobs.push(move || {
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        let p = PartyId((base + k) as u32);
                        if !corr.is_corrupted(p) {
                            *slot = Some(Command::new("Broadcast", Value::List(template.clone())));
                        }
                    }
                });
            }
            run_shards(shards, jobs);
        }
        // Merge, in party-id order: exactly the serial loop's mutations —
        // `F_SBC`'s advance bookkeeping, one delivery per honest party, one
        // clock step. No leaks: the quiescence gate guarantees the serial
        // path would emit none either.
        for (i, slot) in slots.iter_mut().enumerate() {
            let p = PartyId(i as u32);
            if self.core.corr.is_corrupted(p) {
                continue;
            }
            let Some(cmd) = slot.take() else { continue };
            if !self.fsbc.note_advance(p, now) {
                continue;
            }
            self.core
                .push_outputs(vec![sbc_uc::hybrid::Delivery::new(p, cmd)]);
            self.core.clock.advance_party(p);
        }
    }
}

impl SbcBackend for IdealSbcWorld {
    fn from_params(params: SbcParams, seed: &[u8]) -> Result<Self, SbcError> {
        params.validate()?;
        Ok(IdealSbcWorld::new(params, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_uc::exec::{CompareLevel, DualRun};
    use sbc_uc::world::{run_env, EnvDriver};

    fn params(n: usize) -> SbcParams {
        SbcParams::default_for(n)
    }

    /// Pins the round-level `tick` (shared release plan + deferred
    /// recipient-major delivery) to the literal per-party reference loop,
    /// bit for bit — outputs, leaks, and clock — across two epochs, under
    /// corruption and an adversarial wire injection (whose per-recipient
    /// `Owned` log entries exercise the byte-compare fallback of the
    /// shared-plan twin check).
    #[test]
    fn tick_matches_per_party_advance_loop() {
        let n = 6;
        fn reference_round(w: &mut RealSbcWorld, n: usize) {
            for i in 0..n {
                let p = PartyId(i as u32);
                if !w.is_corrupted(p) {
                    w.advance(p);
                }
            }
        }
        let mut a = RealSbcWorld::new(params(n), b"tick-equiv");
        let mut b = RealSbcWorld::new(params(n), b"tick-equiv");
        for epoch in 0..2 {
            for w in [&mut a, &mut b] {
                w.input(
                    PartyId(0),
                    Command::new("Broadcast", Value::bytes(b"alpha")),
                );
                w.input(
                    PartyId(2),
                    Command::new("Broadcast", Value::bytes(b"bravo")),
                );
            }
            reference_round(&mut a, n);
            b.tick();
            if epoch == 0 {
                for w in [&mut a, &mut b] {
                    w.adversary(AdvCommand::Corrupt(PartyId(5)));
                }
                let tau = a.release_round().expect("period open");
                assert_eq!(b.release_round(), Some(tau));
                for w in [&mut a, &mut b] {
                    w.adversary(AdvCommand::SendAs {
                        party: PartyId(5),
                        cmd: Command::new(
                            "Broadcast",
                            crate::protocol::sbc_wire(&Value::bytes([7u8; 48]), tau, &[9u8; 16]),
                        ),
                    });
                }
            }
            for _ in 0..10 {
                reference_round(&mut a, n);
                b.tick();
                assert_eq!(a.time(), b.time(), "clocks diverged");
                assert_eq!(a.drain_outputs(), b.drain_outputs(), "outputs diverged");
                assert_eq!(a.drain_leaks(), b.drain_leaks(), "leaks diverged");
            }
            for w in [&mut a, &mut b] {
                w.begin_new_period();
            }
        }
    }

    fn dual(n: usize, seed: &[u8]) -> DualRun<RealSbcWorld, IdealSbcWorld> {
        DualRun::new(
            RealSbcWorld::new(params(n), seed),
            IdealSbcWorld::new(params(n), seed),
            CompareLevel::ShapeAndOutputs,
        )
    }

    fn assert_theorem2<F>(n: usize, seed: &[u8], script: F)
    where
        F: Fn(&mut EnvDriver<'_>) + Copy,
    {
        sbc_uc::exec::assert_indistinguishable(
            RealSbcWorld::new(params(n), seed),
            IdealSbcWorld::new(params(n), seed),
            CompareLevel::ShapeAndOutputs,
            script,
        );
    }

    #[test]
    fn theorem2_single_sender() {
        assert_theorem2(3, b"t2-a", |env| {
            env.input(
                PartyId(0),
                Command::new("Broadcast", Value::bytes(b"lone message")),
            );
            env.idle_rounds(8);
        });
    }

    #[test]
    fn theorem2_full_participation() {
        assert_theorem2(3, b"t2-b", |env| {
            env.input(
                PartyId(0),
                Command::new("Broadcast", Value::bytes(b"foxtrot")),
            );
            env.advance_all();
            env.input(
                PartyId(1),
                Command::new("Broadcast", Value::bytes(b"bravo")),
            );
            env.input(
                PartyId(2),
                Command::new("Broadcast", Value::bytes(b"tango")),
            );
            env.idle_rounds(8);
        });
    }

    #[test]
    fn theorem2_partial_participation_liveness() {
        assert_theorem2(4, b"t2-c", |env| {
            env.input(
                PartyId(2),
                Command::new("Broadcast", Value::bytes(b"only me")),
            );
            env.idle_rounds(8);
        });
    }

    #[test]
    fn theorem2_adversary_leakage_queries() {
        assert_theorem2(3, b"t2-d", |env| {
            env.input(
                PartyId(0),
                Command::new("Broadcast", Value::bytes(b"watched")),
            );
            env.adversary(AdvCommand::Corrupt(PartyId(2)));
            for _ in 0..8 {
                env.adversary(AdvCommand::Control {
                    target: "F_TLE".into(),
                    cmd: Command::new("Leakage", Value::Unit),
                });
                env.advance_all();
            }
        });
    }

    #[test]
    fn theorem2_corruption_after_broadcast_keeps_message() {
        assert_theorem2(3, b"t2-e", |env| {
            env.input(
                PartyId(0),
                Command::new("Broadcast", Value::bytes(b"committed")),
            );
            env.advance_all(); // wake-up + enc
            env.advance_all(); // ciphertext broadcast
            env.adversary(AdvCommand::Corrupt(PartyId(0)));
            env.idle_rounds(7);
        });
    }

    #[test]
    fn theorem2_multi_epoch_turnover() {
        // Three successive broadcast periods over one dual world: the
        // ideal-world period reset must keep transcripts aligned with the
        // real world's in every epoch, not just the first.
        let mut d = dual(3, b"t2-epochs");
        for epoch in 0..3u64 {
            d.submit(PartyId(0), format!("alpha/{epoch}").as_bytes());
            d.advance_all();
            d.submit(PartyId(1), format!("bravo/{epoch}").as_bytes());
            d.idle_rounds(8);
            assert_eq!(d.release_round(), Some(epoch * 9 + 5), "τ_rel agreed");
            d.finish_epoch().unwrap_or_else(|div| panic!("{div}"));
        }
        assert_eq!(d.epoch(), 3);
    }

    #[test]
    fn theorem2_multi_epoch_with_idle_gap() {
        // An epoch whose period opens late (idle rounds first) must still
        // align: t_awake is re-agreed per epoch in both worlds.
        let mut d = dual(2, b"t2-gap");
        d.submit(PartyId(0), b"first");
        d.idle_rounds(8);
        d.finish_epoch().unwrap_or_else(|div| panic!("{div}"));
        d.idle_rounds(2); // nobody broadcasts: the new period stays closed
        assert_eq!(d.release_round(), None);
        d.submit(PartyId(1), b"second");
        d.idle_rounds(8);
        d.finish_epoch().unwrap_or_else(|div| panic!("{div}"));
    }

    #[test]
    fn delivered_at_t_end_plus_delta() {
        let mut real = RealSbcWorld::new(params(2), b"timing");
        let t = run_env(&mut real, |env| {
            env.input(PartyId(0), Command::new("Broadcast", Value::bytes(b"m")));
            env.idle_rounds(8);
        });
        let outs = t.outputs();
        assert_eq!(outs.len(), 2);
        for (round, _, cmd) in outs {
            assert_eq!(round, 3 + 2, "t_end(Φ=3) + ∆(2)");
            assert_eq!(cmd.value.as_list().unwrap(), &[Value::bytes(b"m")]);
        }
    }

    #[test]
    fn simultaneity_leakage_reveals_nothing_during_period() {
        // During the broadcast period the adversary's entire view of an
        // honest message is (c, τ_rel, y): querying F_TLE leakage returns
        // nothing until τ_rel ≤ Cl + α_TLE.
        let mut real = RealSbcWorld::new(params(2), b"sim-leak");
        run_env(&mut real, |env| {
            env.input(
                PartyId(0),
                Command::new("Broadcast", Value::bytes(b"hidden")),
            );
            env.adversary(AdvCommand::Corrupt(PartyId(1)));
            for round in 0..4 {
                let resp = env.adversary(AdvCommand::Control {
                    target: "F_TLE".into(),
                    cmd: Command::new("Leakage", Value::Unit),
                });
                let n_leaked = resp.as_list().map(|l| l.len()).unwrap_or(0);
                assert_eq!(n_leaked, 0, "round {round}: τ_rel=5 > Cl+1");
                env.advance_all();
            }
            // Round 4: τ_rel = 5 ≤ 4 + 1 → the record leaks (α head start).
            let resp = env.adversary(AdvCommand::Control {
                target: "F_TLE".into(),
                cmd: Command::new("Leakage", Value::Unit),
            });
            assert_eq!(resp.as_list().unwrap().len(), 1);
        });
    }
}
