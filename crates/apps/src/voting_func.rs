//! The ideal voting-system functionality `F_VS(Φ, ∆, α)` (paper Fig. 17) —
//! Szepieniec–Preneel's functionality adapted to the global clock and
//! adaptive corruption.
//!
//! It mirrors `F_SBC`'s lifecycle but delivers only the *tally*: votes cast
//! during the `Φ`-round casting window are hidden (the adversary sees a tag
//! and the voter identity), the result is computed at `t_tally − α` for the
//! simulator and released to each voter at `t_tally = t_end + ∆`. Votes of
//! corrupted voters may be substituted via `Allow` until the window closes;
//! per-voter quotas keep only the latest allowed ballot.

use sbc_primitives::drbg::Drbg;
use sbc_uc::hybrid::HybridCtx;
use sbc_uc::ids::{PartyId, Tag};
use sbc_uc::value::{Command, Value};
use std::collections::HashMap;

/// Leak source label for `F_VS`.
pub const VS_SOURCE: &str = "F_VS";

/// A cast-vote record `(tag, v, V, Cl, flag)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CastRecord {
    /// Unique tag.
    pub tag: Tag,
    /// The vote (candidate index).
    pub vote: u64,
    /// The voter.
    pub voter: PartyId,
    /// Cast round.
    pub cast_at: u64,
    /// Finalization flag (tallied only if set).
    pub finalized: bool,
}

/// The functionality `F_VS^{Φ,∆,α}(V)`.
#[derive(Clone, Debug)]
pub struct VotingFunc {
    phi: u64,
    delta: u64,
    alpha: u64,
    candidates: u64,
    cast: Vec<CastRecord>,
    t_start: Option<u64>,
    result: Option<Vec<u64>>,
    sim_result_sent: bool,
    round_seen: Option<u64>,
    last_advance: HashMap<PartyId, u64>,
    tag_rng: Drbg,
}

impl VotingFunc {
    /// Creates the functionality for `candidates` options.
    ///
    /// # Errors
    ///
    /// Rejects parameters unless `Φ > 0`, `∆ ≥ α` and `candidates ≥ 2`.
    pub fn new(
        phi: u64,
        delta: u64,
        alpha: u64,
        candidates: u64,
        tag_rng: Drbg,
    ) -> Result<Self, &'static str> {
        if phi == 0 {
            return Err("casting window must be positive");
        }
        if delta < alpha {
            return Err("need ∆ ≥ α");
        }
        if candidates < 2 {
            return Err("need at least two candidates");
        }
        Ok(VotingFunc {
            phi,
            delta,
            alpha,
            candidates,
            cast: Vec::new(),
            t_start: None,
            result: None,
            sim_result_sent: false,
            round_seen: None,
            last_advance: HashMap::new(),
            tag_rng,
        })
    }

    /// `Init` from the (last) authority: opens the casting window.
    pub fn init(&mut self, ctx: &mut HybridCtx<'_>) {
        if self.t_start.is_none() {
            self.t_start = Some(ctx.time());
        }
    }

    /// End of the casting window, if opened.
    pub fn t_end(&self) -> Option<u64> {
        self.t_start.map(|t| t + self.phi)
    }

    /// The tally release round `t_tally = t_end + ∆`.
    pub fn t_tally(&self) -> Option<u64> {
        self.t_end().map(|t| t + self.delta)
    }

    /// `Vote` from an honest voter (leaks `(tag, V)`) or from the simulator
    /// on behalf of a corrupted one (leaks `(tag, v, V)`; enters
    /// finalized). Invalid votes and out-of-window casts are discarded.
    pub fn vote(&mut self, voter: PartyId, vote: u64, ctx: &mut HybridCtx<'_>) -> Option<Tag> {
        let now = ctx.time();
        let (start, end) = (self.t_start?, self.t_end()?);
        if !(start <= now && now < end) || vote >= self.candidates {
            return None;
        }
        let tag = Tag::random(&mut self.tag_rng);
        let corrupted = ctx.is_corrupted(voter);
        self.cast.push(CastRecord {
            tag,
            vote,
            voter,
            cast_at: now,
            finalized: corrupted,
        });
        let payload = if corrupted {
            Value::list([
                Value::bytes(tag.as_bytes()),
                Value::U64(vote),
                Value::U64(voter.0 as u64),
            ])
        } else {
            Value::list([Value::bytes(tag.as_bytes()), Value::U64(voter.0 as u64)])
        };
        ctx.leak(VS_SOURCE, Command::new("Vote", payload));
        Some(tag)
    }

    /// `Corruption_Request`: unfinalized records of corrupted voters.
    pub fn corruption_request(&self, ctx: &HybridCtx<'_>) -> Vec<CastRecord> {
        self.cast
            .iter()
            .filter(|r| !r.finalized && ctx.is_corrupted(r.voter))
            .cloned()
            .collect()
    }

    /// `Allow`: substitute-and-finalize a corrupted voter's pending vote
    /// within the casting window.
    pub fn allow(&mut self, tag: Tag, vote: u64, voter: PartyId, ctx: &mut HybridCtx<'_>) -> bool {
        let now = ctx.time();
        let (Some(start), Some(end)) = (self.t_start, self.t_end()) else {
            return false;
        };
        if now < start || now >= end || !ctx.is_corrupted(voter) || vote >= self.candidates {
            return false;
        }
        let Some(rec) = self
            .cast
            .iter_mut()
            .find(|r| r.tag == tag && r.voter == voter && !r.finalized)
        else {
            return false;
        };
        rec.vote = vote;
        rec.finalized = true;
        true
    }

    fn compute_result(&mut self, honest: &[bool]) {
        // Honest voters' casts are guaranteed to count (Fig. 17 step 2a).
        for r in self.cast.iter_mut() {
            if !r.finalized && honest.get(r.voter.index()).copied().unwrap_or(false) {
                r.finalized = true;
            }
        }
        // Quota: one vote per voter, most recent finalized cast wins.
        let mut latest: HashMap<PartyId, (u64, u64)> = HashMap::new();
        for r in &self.cast {
            if r.finalized {
                latest.insert(r.voter, (r.cast_at, r.vote));
            }
        }
        let mut counts = vec![0u64; self.candidates as usize];
        for (_, (_, v)) in latest {
            counts[v as usize] += 1;
        }
        self.result = Some(counts);
    }

    /// `Advance_Clock` from an honest voter: computes the tally at
    /// `t_tally − α` (leaking it to the simulator) and releases it to each
    /// voter at `t_tally`.
    pub fn advance_clock(&mut self, voter: PartyId, ctx: &mut HybridCtx<'_>) -> Option<Vec<u64>> {
        if ctx.is_corrupted(voter) {
            return None;
        }
        let now = ctx.time();
        if self.last_advance.get(&voter) == Some(&now) {
            return None;
        }
        self.last_advance.insert(voter, now);
        let tally_at = self.t_tally()?;
        if self.round_seen != Some(now) {
            self.round_seen = Some(now);
            if now == tally_at - self.alpha && self.result.is_none() && !self.sim_result_sent {
                self.sim_result_sent = true;
                let max_voter = self.cast.iter().map(|r| r.voter.index()).max().unwrap_or(0);
                let honest: Vec<bool> = (0..=max_voter as u32)
                    .map(|i| !ctx.is_corrupted(PartyId(i)))
                    .collect();
                self.compute_result(&honest);
                let res = self.result.clone().expect("just computed");
                ctx.leak(
                    VS_SOURCE,
                    Command::new(
                        "Result",
                        Value::List(res.into_iter().map(Value::U64).collect()),
                    ),
                );
            }
        }
        if now == tally_at {
            return self.result.clone();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_uc::clock::GlobalClock;
    use sbc_uc::corruption::CorruptionTracker;

    struct Fx {
        clock: GlobalClock,
        rng: Drbg,
        leaks: Vec<sbc_uc::world::Leak>,
        corr: CorruptionTracker,
    }

    impl Fx {
        fn new(n: usize) -> Self {
            Fx {
                clock: GlobalClock::new(PartyId::all(n)),
                rng: Drbg::from_seed(b"fvs"),
                leaks: Vec::new(),
                corr: CorruptionTracker::new(n),
            }
        }
        fn ctx(&mut self) -> HybridCtx<'_> {
            HybridCtx {
                clock: &mut self.clock,
                rng: &mut self.rng,
                leaks: &mut self.leaks,
                corr: &mut self.corr,
            }
        }
        fn tick(&mut self, n: usize) {
            for i in 0..n {
                self.clock.advance_party(PartyId(i as u32));
            }
        }
    }

    fn func() -> VotingFunc {
        // Φ = 2, ∆ = 2, α = 1, two candidates.
        VotingFunc::new(2, 2, 1, 2, Drbg::from_seed(b"fvs-tags")).unwrap()
    }

    #[test]
    fn lifecycle_and_tally() {
        let mut fx = Fx::new(3);
        let mut f = func();
        f.init(&mut fx.ctx());
        assert_eq!(f.t_end(), Some(2));
        assert_eq!(f.t_tally(), Some(4));
        f.vote(PartyId(0), 1, &mut fx.ctx()).unwrap();
        f.vote(PartyId(1), 0, &mut fx.ctx()).unwrap();
        f.vote(PartyId(2), 1, &mut fx.ctx()).unwrap();
        // Rounds 0..3: nothing released.
        for round in 0..4u64 {
            for i in 0..3 {
                assert!(
                    f.advance_clock(PartyId(i), &mut fx.ctx()).is_none(),
                    "round {round}"
                );
            }
            fx.tick(3);
        }
        // Round 4 = t_tally: everyone gets the result.
        for i in 0..3 {
            assert_eq!(f.advance_clock(PartyId(i), &mut fx.ctx()), Some(vec![1, 2]));
        }
    }

    #[test]
    fn honest_vote_leak_hides_choice() {
        let mut fx = Fx::new(2);
        let mut f = func();
        f.init(&mut fx.ctx());
        f.vote(PartyId(0), 1, &mut fx.ctx()).unwrap();
        let items = fx.leaks[0].cmd.value.as_list().unwrap();
        assert_eq!(items.len(), 2, "tag and voter only — no vote content");
    }

    #[test]
    fn result_leaks_to_simulator_alpha_early() {
        let mut fx = Fx::new(1);
        let mut f = func(); // t_tally = 4, α = 1 → simulator sees at 3
        f.init(&mut fx.ctx());
        f.vote(PartyId(0), 1, &mut fx.ctx()).unwrap();
        for _ in 0..3 {
            f.advance_clock(PartyId(0), &mut fx.ctx());
            fx.tick(1);
        }
        fx.leaks.clear();
        assert!(
            f.advance_clock(PartyId(0), &mut fx.ctx()).is_none(),
            "round 3: no release"
        );
        assert_eq!(fx.leaks.len(), 1, "round 3 = t_tally − α: simulator result");
        assert_eq!(fx.leaks[0].cmd.name, "Result");
    }

    #[test]
    fn invalid_and_late_votes_discarded() {
        let mut fx = Fx::new(2);
        let mut f = func();
        f.init(&mut fx.ctx());
        assert!(
            f.vote(PartyId(0), 7, &mut fx.ctx()).is_none(),
            "invalid candidate"
        );
        fx.tick(2);
        fx.tick(2);
        // Cl = 2 = t_end: window closed.
        assert!(f.vote(PartyId(0), 1, &mut fx.ctx()).is_none());
    }

    #[test]
    fn corrupted_vote_substitution_until_window_closes() {
        let mut fx = Fx::new(2);
        let mut f = func();
        f.init(&mut fx.ctx());
        let tag = f.vote(PartyId(1), 0, &mut fx.ctx()).unwrap();
        fx.corr.corrupt(PartyId(1), 0).unwrap();
        assert_eq!(f.corruption_request(&fx.ctx()).len(), 1);
        assert!(f.allow(tag, 1, PartyId(1), &mut fx.ctx()));
        assert!(
            !f.allow(tag, 0, PartyId(1), &mut fx.ctx()),
            "already finalized"
        );
        for _ in 0..4 {
            f.advance_clock(PartyId(0), &mut fx.ctx());
            fx.tick(2);
        }
        assert_eq!(f.advance_clock(PartyId(0), &mut fx.ctx()), Some(vec![0, 1]));
    }

    #[test]
    fn unallowed_corrupted_vote_dropped() {
        let mut fx = Fx::new(2);
        let mut f = func();
        f.init(&mut fx.ctx());
        f.vote(PartyId(0), 1, &mut fx.ctx()).unwrap();
        f.vote(PartyId(1), 0, &mut fx.ctx()).unwrap();
        fx.corr.corrupt(PartyId(1), 0).unwrap();
        for _ in 0..4 {
            f.advance_clock(PartyId(0), &mut fx.ctx());
            fx.tick(2);
        }
        assert_eq!(
            f.advance_clock(PartyId(0), &mut fx.ctx()),
            Some(vec![0, 1]),
            "corrupted unallowed vote does not count"
        );
    }

    #[test]
    fn quota_latest_vote_counts() {
        let mut fx = Fx::new(2);
        let mut f = func();
        f.init(&mut fx.ctx());
        let t1 = f.vote(PartyId(1), 0, &mut fx.ctx()).unwrap();
        fx.corr.corrupt(PartyId(1), 0).unwrap();
        f.allow(t1, 0, PartyId(1), &mut fx.ctx());
        fx.tick(2);
        // Second (adversarial) vote in round 1 — latest finalized wins.
        let t2 = f.vote(PartyId(1), 1, &mut fx.ctx()).unwrap();
        f.allow(t2, 1, PartyId(1), &mut fx.ctx());
        for _ in 0..3 {
            f.advance_clock(PartyId(0), &mut fx.ctx());
            fx.tick(2);
        }
        assert_eq!(f.advance_clock(PartyId(0), &mut fx.ctx()), Some(vec![0, 1]));
    }

    #[test]
    fn bad_params_rejected() {
        assert!(VotingFunc::new(2, 2, 1, 1, Drbg::from_seed(b"x")).is_err());
        assert!(VotingFunc::new(0, 2, 1, 2, Drbg::from_seed(b"x")).is_err());
        assert!(VotingFunc::new(2, 1, 2, 2, Drbg::from_seed(b"x")).is_err());
    }
}
