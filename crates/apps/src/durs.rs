//! Delayed uniform random string (DURS) generation — paper §6.1.
//!
//! Each party contributes λ bits of randomness through simultaneous
//! broadcast; the agreed string is the XOR of all valid contributions.
//! Simultaneity is exactly what makes the beacon unbiasable: no
//! contributor — however many parties are corrupted — can choose its share
//! as a function of the others'.
//!
//! * [`DursFunc`] — the functionality `F_DURS(∆, α)` (Fig. 15).
//! * [`DursSession`] — the protocol `Π_DURS` (Fig. 16) over the real SBC
//!   stack, exposed as a fallible, **multi-epoch** session: one session
//!   produces a fresh beacon output per epoch
//!   ([`DursSession::run_epoch`]) without rebuilding the world stack.
//! * [`DursPool`] — many concurrent beacon **streams** over one shared
//!   SBC pool: overlapping epoch schedules (stream A can be mid-period
//!   while stream B opens or releases) on one clock, one corruption
//!   state, and independent per-stream randomness.
//! * [`NaiveBeacon`] — the commit-free XOR beacon baseline, with the
//!   classic last-revealer bias attack.

use sbc_core::api::{SbcError, SbcSession};
use sbc_core::pool::{InstanceId, SbcPool};
use sbc_core::worlds::{IdealSbcWorld, RealSbcWorld, SbcBackend};
use sbc_primitives::drbg::Drbg;
use sbc_uc::exec::SbcWorld;
use sbc_uc::hybrid::HybridCtx;
use sbc_uc::ids::PartyId;
use std::collections::{BTreeMap, HashMap};

/// Byte length of the generated string (λ = 256 bits).
pub const URS_LEN: usize = 32;

/// The functionality `F_DURS(∆, α)` (Fig. 15): a single uniform string,
/// delivered `∆` rounds after the first request; the simulator may read it
/// `α` rounds early.
#[derive(Clone, Debug)]
pub struct DursFunc {
    delta: u64,
    alpha: u64,
    urs: Option<Vec<u8>>,
    t_start: Option<u64>,
    waiting: HashMap<PartyId, ()>,
}

impl DursFunc {
    /// Creates the functionality.
    ///
    /// # Errors
    ///
    /// Rejects parameters with `∆ < α` (the simulator head start cannot
    /// exceed the delivery delay).
    pub fn new(delta: u64, alpha: u64) -> Result<Self, &'static str> {
        if delta < alpha {
            return Err("need ∆ ≥ α");
        }
        Ok(DursFunc {
            delta,
            alpha,
            urs: None,
            t_start: None,
            waiting: HashMap::new(),
        })
    }

    /// `URS` request from an honest party: samples the string on first use,
    /// records the requester, and answers once `∆` rounds have elapsed.
    pub fn request(&mut self, party: PartyId, ctx: &mut HybridCtx<'_>) -> Option<Vec<u8>> {
        let now = ctx.time();
        if self.urs.is_none() {
            self.urs = Some(ctx.rng.gen_bytes(URS_LEN));
        }
        self.waiting.insert(party, ());
        let start = *self.t_start.get_or_insert(now);
        if now >= start + self.delta {
            self.urs.clone()
        } else {
            None
        }
    }

    /// Simulator request: available `α` rounds early.
    pub fn request_simulator(&mut self, ctx: &mut HybridCtx<'_>) -> Option<Vec<u8>> {
        let now = ctx.time();
        let start = self.t_start?;
        if now + self.alpha >= start + self.delta {
            self.urs.clone()
        } else {
            None
        }
    }

    /// `Advance_Clock` delivery: parties that requested earlier receive the
    /// string at exactly `t_start + ∆`.
    pub fn advance_clock(&mut self, party: PartyId, ctx: &mut HybridCtx<'_>) -> Option<Vec<u8>> {
        let now = ctx.time();
        let start = self.t_start?;
        if now == start + self.delta && self.waiting.contains_key(&party) {
            self.urs.clone()
        } else {
            None
        }
    }
}

/// The result of one DURS period.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DursResult {
    /// The agreed uniform string (XOR of all contributions).
    pub urs: Vec<u8>,
    /// Number of contributions combined.
    pub contributions: usize,
    /// The release round.
    pub release_round: u64,
}

/// `Π_DURS` (Fig. 16) over a pluggable SBC backend — the real stack by
/// default, the ideal `F_SBC + S_SBC` world via
/// [`new_ideal`](DursSession::new_ideal): every participating party
/// contributes λ random bits via simultaneous broadcast; the output is
/// their XOR. The session is multi-epoch: after
/// [`run_epoch`](DursSession::run_epoch) releases a beacon value, the same
/// stack accepts the next round of contributions.
#[derive(Debug)]
pub struct DursSession<W: SbcWorld = RealSbcWorld> {
    sbc: SbcSession<W>,
    n: usize,
    rng: Drbg,
    contributed: Vec<bool>,
}

fn xor_fold(messages: &[Vec<u8>]) -> (Vec<u8>, usize) {
    let mut urs = vec![0u8; URS_LEN];
    let mut contributions = 0;
    for m in messages {
        if m.len() != URS_LEN {
            continue; // non-λ-bit strings are discarded (Fig. 16)
        }
        contributions += 1;
        for (acc, b) in urs.iter_mut().zip(m.iter()) {
            *acc ^= b;
        }
    }
    (urs, contributions)
}

impl DursSession {
    /// Creates a session for `n` parties over the real SBC stack.
    ///
    /// # Errors
    ///
    /// Propagates [`SbcError`] from the underlying session builder
    /// (degenerate `n`, invalid default parameters).
    pub fn new(n: usize, seed: &[u8]) -> Result<Self, SbcError> {
        Self::over_backend(n, seed)
    }
}

impl DursSession<IdealSbcWorld> {
    /// Creates a session over the ideal world (`F_SBC` + simulator): by
    /// Theorem 2 its beacon outputs match [`new`](DursSession::new)'s
    /// epoch for epoch — asserted by the dual-backend tests.
    ///
    /// # Errors
    ///
    /// As for [`new`](DursSession::new).
    pub fn new_ideal(n: usize, seed: &[u8]) -> Result<Self, SbcError> {
        Self::over_backend(n, seed)
    }
}

impl<W: SbcBackend> DursSession<W> {
    /// Creates a session for `n` parties over any SBC backend.
    ///
    /// # Errors
    ///
    /// As for [`new`](DursSession::new).
    pub fn over_backend(n: usize, seed: &[u8]) -> Result<Self, SbcError> {
        let mut label = b"durs/".to_vec();
        label.extend_from_slice(seed);
        Ok(DursSession {
            sbc: SbcSession::builder(n).seed(seed).build_backend::<W>()?,
            n,
            rng: Drbg::from_seed(&label),
            contributed: vec![false; n],
        })
    }
}

impl<W: SbcWorld> DursSession<W> {
    /// Party `p` contributes fresh randomness (idempotent per party and
    /// epoch).
    ///
    /// # Errors
    ///
    /// Propagates [`SbcError`] (out-of-range party, corrupted party,
    /// period already closed).
    pub fn contribute(&mut self, p: u32) -> Result<(), SbcError> {
        if (p as usize) >= self.n {
            return Err(SbcError::PartyOutOfRange {
                party: p,
                n: self.n,
            });
        }
        if self.contributed[p as usize] {
            return Ok(());
        }
        // Reject doomed contributions before forking: `fork` ratchets the
        // session DRBG, and a failed call must not shift the shares of
        // every later epoch (seed-reproducibility of beacon outputs).
        self.sbc.check_submittable(p)?;
        let mut party_rng = self
            .rng
            .fork(format!("contrib/{}/{p}", self.sbc.epoch()).as_bytes());
        let rho = party_rng.gen_bytes(URS_LEN);
        self.sbc.submit(p, &rho)?;
        self.contributed[p as usize] = true;
        Ok(())
    }

    /// Adversarial contribution with a *chosen* (non-random) share — used
    /// by the bias experiments.
    ///
    /// # Errors
    ///
    /// Propagates [`SbcError`] as for [`contribute`](DursSession::contribute).
    pub fn contribute_chosen(&mut self, p: u32, share: &[u8; URS_LEN]) -> Result<(), SbcError> {
        if (p as usize) >= self.n {
            return Err(SbcError::PartyOutOfRange {
                party: p,
                n: self.n,
            });
        }
        if self.contributed[p as usize] {
            return Ok(());
        }
        self.sbc.submit(p, share)?;
        self.contributed[p as usize] = true;
        Ok(())
    }

    /// Runs the current beacon period to release, XORs all valid λ-bit
    /// contributions, and re-opens the stack for the next epoch.
    ///
    /// # Errors
    ///
    /// [`SbcError::NoInput`] if nobody contributed this epoch; otherwise
    /// as for [`SbcSession::run_epoch`].
    pub fn run_epoch(&mut self) -> Result<DursResult, SbcError> {
        let epoch = self.sbc.run_epoch()?;
        self.contributed = vec![false; self.n];
        let (urs, contributions) = xor_fold(&epoch.messages);
        Ok(DursResult {
            urs,
            contributions,
            release_round: epoch.release_round,
        })
    }

    /// Single-shot convenience: runs one period and consumes the session.
    ///
    /// # Errors
    ///
    /// As for [`run_epoch`](DursSession::run_epoch).
    pub fn finish(mut self) -> Result<DursResult, SbcError> {
        self.run_epoch()
    }

    /// Number of registered parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The epoch currently accepting contributions.
    pub fn epoch(&self) -> u64 {
        self.sbc.epoch()
    }
}

/// Many concurrent DURS beacon **streams** over one shared SBC pool.
///
/// A beacon service rarely runs a single schedule: block randomness, epoch
/// randomness, and per-committee draws all tick at different cadences.
/// `DursPool` runs each schedule as one SBC instance ("stream") of an
/// [`SbcPool`]: every stream produces its own sequence of beacon values
/// ([`run_epoch`](DursPool::run_epoch)), all streams share one clock (a
/// stream's epoch run advances every other stream too, so schedules
/// genuinely overlap), corruption is global across streams, and each
/// stream's contributions come from an independent, domain-separated
/// randomness fork.
#[derive(Debug)]
pub struct DursPool<W: SbcWorld = RealSbcWorld> {
    pool: SbcPool<W>,
    rng: Drbg,
    /// Per-stream "already contributed this epoch" flags.
    contributed: BTreeMap<u64, Vec<bool>>,
}

impl DursPool {
    /// Creates a pool of beacon streams for `n` parties over the real SBC
    /// stack.
    ///
    /// # Errors
    ///
    /// Propagates [`SbcError`] from the pool builder (degenerate `n`,
    /// invalid default parameters).
    pub fn new(n: usize, seed: &[u8]) -> Result<Self, SbcError> {
        Self::over_backend(n, seed)
    }
}

impl DursPool<IdealSbcWorld> {
    /// Creates a pool of beacon streams over the ideal world (`F_SBC` +
    /// simulator per stream): by UC composition its outputs match
    /// [`new`](DursPool::new)'s stream for stream and epoch for epoch.
    ///
    /// # Errors
    ///
    /// As for [`new`](DursPool::new).
    pub fn new_ideal(n: usize, seed: &[u8]) -> Result<Self, SbcError> {
        Self::over_backend(n, seed)
    }
}

impl<W: SbcBackend> DursPool<W> {
    /// Creates a pool of beacon streams over any SBC backend.
    ///
    /// # Errors
    ///
    /// As for [`new`](DursPool::new).
    pub fn over_backend(n: usize, seed: &[u8]) -> Result<Self, SbcError> {
        let mut label = b"durs-pool/".to_vec();
        label.extend_from_slice(seed);
        Ok(DursPool {
            pool: SbcPool::builder(n).seed(seed).build_backend::<W>()?,
            rng: Drbg::from_seed(&label),
            contributed: BTreeMap::new(),
        })
    }

    /// Opens a new beacon stream, joining the shared clock at the current
    /// round (in O(1) — stream opening cost is independent of how long the
    /// pool has been running).
    ///
    /// # Errors
    ///
    /// Propagates [`SbcError`] from [`SbcPool::open_instance`].
    pub fn open_stream(&mut self) -> Result<InstanceId, SbcError> {
        let id = self.pool.open_instance()?;
        self.contributed.insert(id.0, vec![false; self.n()]);
        Ok(id)
    }
}

impl<W: SbcWorld> DursPool<W> {
    /// Number of registered parties (shared by every stream).
    pub fn n(&self) -> usize {
        self.pool.params().n
    }

    /// The shared clock round.
    pub fn round(&self) -> u64 {
        self.pool.round()
    }

    /// The epoch `stream` is currently accepting contributions for.
    ///
    /// # Errors
    ///
    /// [`SbcError::UnknownInstance`] / [`SbcError::InstanceFinished`].
    pub fn epoch(&self, stream: InstanceId) -> Result<u64, SbcError> {
        self.pool.epoch(stream)
    }

    /// Party `p` contributes fresh randomness to `stream` (idempotent per
    /// stream, party, and epoch).
    ///
    /// # Errors
    ///
    /// Propagates [`SbcError`] (bad stream id, out-of-range party,
    /// corrupted party, period already closed).
    pub fn contribute(&mut self, stream: InstanceId, p: u32) -> Result<(), SbcError> {
        // Validate the stream, the party range, and closed-period cases
        // before touching the flags or the DRBG: a failed call must not
        // shift later shares.
        self.pool.check_submittable(stream, p)?;
        // A live instance opened directly on `sbc()` is adopted as a
        // stream here (flags created lazily) — no panic paths.
        let n = self.n();
        let flags = self
            .contributed
            .entry(stream.0)
            .or_insert_with(|| vec![false; n]);
        if flags[p as usize] {
            return Ok(());
        }
        let epoch = self.pool.epoch(stream)?;
        let mut party_rng = self
            .rng
            .fork(format!("contrib/{}/{epoch}/{p}", stream.0).as_bytes());
        let rho = party_rng.gen_bytes(URS_LEN);
        self.pool.submit(stream, p, &rho)?;
        flags[p as usize] = true;
        Ok(())
    }

    /// One shared clock tick for **all** streams — the low-level driver for
    /// genuinely interleaved schedules.
    ///
    /// # Errors
    ///
    /// As for [`SbcPool::step_round`].
    pub fn step_round(&mut self) -> Result<(), SbcError> {
        self.pool.step_round()?;
        Ok(())
    }

    /// Runs `stream`'s current beacon period to release (every other
    /// stream advances on the shared clock meanwhile), XORs its valid
    /// λ-bit contributions, and re-opens the stream for its next epoch.
    ///
    /// # Errors
    ///
    /// [`SbcError::NoInput`] if nobody contributed to `stream` this epoch;
    /// otherwise as for [`SbcPool::run_epoch`].
    pub fn run_epoch(&mut self, stream: InstanceId) -> Result<DursResult, SbcError> {
        let epoch = self.pool.run_epoch(stream)?;
        if let Some(flags) = self.contributed.get_mut(&stream.0) {
            flags.iter_mut().for_each(|f| *f = false);
        }
        let (urs, contributions) = xor_fold(&epoch.messages);
        Ok(DursResult {
            urs,
            contributions,
            release_round: epoch.release_round,
        })
    }

    /// The underlying SBC pool — the adversarial surface (global
    /// corruption, per-stream injection, leakage probes) for beacon
    /// experiments.
    pub fn sbc(&mut self) -> &mut SbcPool<W> {
        &mut self.pool
    }

    /// Runs `stream` to release and retires it; the final beacon value is
    /// returned and the stream id stays unusable afterwards.
    ///
    /// # Errors
    ///
    /// As for [`run_epoch`](DursPool::run_epoch).
    pub fn finish_stream(&mut self, stream: InstanceId) -> Result<DursResult, SbcError> {
        let result = self.pool.finish(stream)?;
        self.contributed.remove(&stream.0);
        let (urs, contributions) = xor_fold(&result.messages);
        Ok(DursResult {
            urs,
            contributions,
            release_round: result.release_round,
        })
    }
}

/// The naive commit-free XOR beacon: shares are public the moment they are
/// posted, so the last revealer fully controls the output.
#[derive(Clone, Debug, Default)]
pub struct NaiveBeacon {
    shares: Vec<Vec<u8>>,
}

impl NaiveBeacon {
    /// Creates an empty beacon.
    pub fn new() -> Self {
        NaiveBeacon::default()
    }

    /// Posts a share (instantly public).
    pub fn post(&mut self, share: Vec<u8>) {
        self.shares.push(share);
    }

    /// Adversary view of all posted shares.
    pub fn view(&self) -> &[Vec<u8>] {
        &self.shares
    }

    /// Current XOR of all posted shares.
    pub fn combined(&self) -> Vec<u8> {
        let mut acc = vec![0u8; URS_LEN];
        for s in &self.shares {
            if s.len() == URS_LEN {
                for (a, b) in acc.iter_mut().zip(s.iter()) {
                    *a ^= b;
                }
            }
        }
        acc
    }
}

/// The last-revealer attack on the naive beacon: the adversary waits for
/// every honest share, then posts the share that forces the beacon output
/// to `target`. Returns the resulting beacon output (always `target`).
pub fn last_revealer_attack(honest_shares: &[[u8; URS_LEN]], target: &[u8; URS_LEN]) -> Vec<u8> {
    let mut beacon = NaiveBeacon::new();
    for s in honest_shares {
        beacon.post(s.to_vec());
    }
    // Rushing adversary: combine the public view and cancel it.
    let current = beacon.combined();
    let mut forced = [0u8; URS_LEN];
    for i in 0..URS_LEN {
        forced[i] = current[i] ^ target[i];
    }
    beacon.post(forced.to_vec());
    beacon.combined()
}

/// Attempts the same attack against DURS over real SBC: the adversary
/// contributes last, after observing every leak of the broadcast period.
/// Its share cannot depend on the honest shares (they are time-locked), so
/// the output retains the honest parties' entropy. Returns `(output,
/// target_hit)`.
///
/// # Errors
///
/// Propagates [`SbcError`] from the session (should not occur for these
/// fixed parameters).
pub fn last_revealer_attack_on_durs(
    seed: &[u8],
    target: &[u8; URS_LEN],
) -> Result<(Vec<u8>, bool), SbcError> {
    // The adversary's best strategy within the model: contribute any value
    // chosen independently of the (hidden) honest shares.
    let mut session = DursSession::new(3, seed)?;
    session.contribute(0)?;
    session.contribute(1)?;
    // Adversarial third party: chooses its share with full knowledge of the
    // public view so far — which reveals nothing about the honest ρ's.
    session.contribute_chosen(2, target)?;
    let result = session.finish()?;
    let hit = result.urs == target;
    Ok((result.urs, hit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_uc::clock::GlobalClock;
    use sbc_uc::corruption::CorruptionTracker;

    #[test]
    fn func_single_string_for_everyone() {
        let mut clock = GlobalClock::new(PartyId::all(2));
        let mut rng = Drbg::from_seed(b"durs-f");
        let mut leaks = Vec::new();
        let mut corr = CorruptionTracker::new(2);
        let mut f = DursFunc::new(3, 1).unwrap();
        {
            let mut ctx = HybridCtx {
                clock: &mut clock,
                rng: &mut rng,
                leaks: &mut leaks,
                corr: &mut corr,
            };
            assert!(f.request(PartyId(0), &mut ctx).is_none(), "too early");
            assert!(f.request_simulator(&mut ctx).is_none(), "α=1 < ∆=3");
        }
        for _ in 0..2 {
            clock.advance_party(PartyId(0));
            clock.advance_party(PartyId(1));
        }
        {
            let mut ctx = HybridCtx {
                clock: &mut clock,
                rng: &mut rng,
                leaks: &mut leaks,
                corr: &mut corr,
            };
            // Cl = 2 = ∆ - α: simulator gets it, parties don't.
            assert!(f.request_simulator(&mut ctx).is_some());
            assert!(f.request(PartyId(1), &mut ctx).is_none());
        }
        clock.advance_party(PartyId(0));
        clock.advance_party(PartyId(1));
        let mut ctx = HybridCtx {
            clock: &mut clock,
            rng: &mut rng,
            leaks: &mut leaks,
            corr: &mut corr,
        };
        let urs0 = f.advance_clock(PartyId(0), &mut ctx).unwrap();
        let urs1 = f.request(PartyId(1), &mut ctx).unwrap();
        assert_eq!(urs0, urs1);
        assert_eq!(urs0.len(), URS_LEN);
    }

    #[test]
    fn durs_all_parties_agree() {
        let mut s = DursSession::new(3, b"agree").unwrap();
        for p in 0..3 {
            s.contribute(p).unwrap();
        }
        let r = s.finish().unwrap();
        assert_eq!(r.contributions, 3);
        assert_eq!(r.urs.len(), URS_LEN);
        assert_ne!(r.urs, vec![0u8; URS_LEN]);
    }

    #[test]
    fn durs_deterministic_per_seed() {
        let run = |seed: &[u8]| {
            let mut s = DursSession::new(2, seed).unwrap();
            s.contribute(0).unwrap();
            s.contribute(1).unwrap();
            s.finish().unwrap().urs
        };
        assert_eq!(run(b"seed-a"), run(b"seed-a"));
        assert_ne!(run(b"seed-a"), run(b"seed-b"));
    }

    #[test]
    fn durs_partial_participation() {
        let mut s = DursSession::new(4, b"partial").unwrap();
        s.contribute(1).unwrap();
        let r = s.finish().unwrap();
        assert_eq!(r.contributions, 1, "terminates without full participation");
    }

    #[test]
    fn durs_multi_epoch_beacon() {
        // One session, three beacon periods: fresh contributions, fresh
        // outputs, monotone release rounds.
        let mut s = DursSession::new(3, b"multi").unwrap();
        let mut outputs = Vec::new();
        let mut last_round = 0;
        for epoch in 0u64..3 {
            assert_eq!(s.epoch(), epoch);
            for p in 0..3 {
                s.contribute(p).unwrap();
            }
            let r = s.run_epoch().unwrap();
            assert_eq!(r.contributions, 3);
            assert!(r.release_round > last_round);
            last_round = r.release_round;
            outputs.push(r.urs);
        }
        assert_ne!(outputs[0], outputs[1], "per-epoch shares are fresh");
        assert_ne!(outputs[1], outputs[2]);
    }

    #[test]
    fn durs_real_and_ideal_backends_agree_per_epoch() {
        // The beacon over the ideal world (F_SBC + S_SBC) produces the
        // same output, contribution count and release round as over the
        // real stack, epoch for epoch — Theorem 2 at the application
        // layer, through the backend-generic session only.
        fn drive<W: SbcWorld>(mut s: DursSession<W>) -> Vec<DursResult> {
            (0..3)
                .map(|_| {
                    for p in 0..3 {
                        s.contribute(p).unwrap();
                    }
                    s.run_epoch().unwrap()
                })
                .collect()
        }
        let real = drive(DursSession::new(3, b"dual-beacon").unwrap());
        let ideal = drive(DursSession::new_ideal(3, b"dual-beacon").unwrap());
        assert_eq!(real, ideal);
    }

    #[test]
    fn durs_empty_epoch_is_no_input() {
        let mut s = DursSession::new(2, b"empty").unwrap();
        assert_eq!(s.run_epoch(), Err(SbcError::NoInput));
    }

    #[test]
    fn durs_out_of_range_contributor() {
        let mut s = DursSession::new(2, b"range").unwrap();
        assert_eq!(
            s.contribute(5),
            Err(SbcError::PartyOutOfRange { party: 5, n: 2 })
        );
    }

    #[test]
    fn naive_beacon_fully_biasable() {
        let target = [0x42u8; URS_LEN];
        let honest = [[0x11u8; URS_LEN], [0x77u8; URS_LEN]];
        let out = last_revealer_attack(&honest, &target);
        assert_eq!(out, target.to_vec(), "the last revealer forces any output");
    }

    #[test]
    fn durs_not_biasable_by_last_revealer() {
        let target = [0x42u8; URS_LEN];
        let mut hits = 0;
        for seed in [&b"b1"[..], b"b2", b"b3", b"b4"] {
            let (_, hit) = last_revealer_attack_on_durs(seed, &target).unwrap();
            hits += hit as u32;
        }
        assert_eq!(hits, 0, "2^-256 events don't happen");
    }

    #[test]
    fn output_bits_roughly_uniform() {
        // Aggregate bit balance over several independent runs.
        let mut ones = 0u32;
        let mut total = 0u32;
        for i in 0..8u8 {
            let mut s = DursSession::new(2, &[b'u', i]).unwrap();
            s.contribute(0).unwrap();
            s.contribute(1).unwrap();
            let urs = s.finish().unwrap().urs;
            for byte in urs {
                ones += byte.count_ones();
                total += 8;
            }
        }
        let ratio = ones as f64 / total as f64;
        assert!((0.40..=0.60).contains(&ratio), "bit ratio {ratio}");
    }

    #[test]
    fn func_invalid_params() {
        assert!(DursFunc::new(1, 2).is_err(), "∆ < α rejected");
    }

    #[test]
    fn durs_pool_overlapping_schedules() {
        // Two beacon streams on offset schedules over one shared world:
        // stream B opens while stream A is mid-period, and both keep
        // producing independent values on one clock.
        let mut pool = DursPool::new(3, b"overlap").unwrap();
        let a = pool.open_stream().unwrap();
        for p in 0..3 {
            pool.contribute(a, p).unwrap();
        }
        pool.step_round().unwrap();
        pool.step_round().unwrap();
        // A is mid-period; B joins the shared clock at round 2.
        let b = pool.open_stream().unwrap();
        assert_eq!(pool.round(), 2);
        for p in 0..3 {
            pool.contribute(b, p).unwrap();
        }
        let ra0 = pool.run_epoch(a).unwrap();
        let rb0 = pool.run_epoch(b).unwrap();
        assert_eq!(ra0.contributions, 3);
        assert_eq!(rb0.contributions, 3);
        assert_ne!(ra0.urs, rb0.urs, "streams are independent");
        assert!(rb0.release_round > ra0.release_round, "offset schedules");
        // Next epochs continue interleaved on the same shared clock.
        for p in 0..3 {
            pool.contribute(a, p).unwrap();
            pool.contribute(b, p).unwrap();
        }
        let ra1 = pool.run_epoch(a).unwrap();
        let rb1 = pool.run_epoch(b).unwrap();
        assert_ne!(ra1.urs, ra0.urs, "fresh shares per epoch");
        assert_ne!(rb1.urs, rb0.urs);
        assert_eq!(pool.epoch(a).unwrap(), 2);
        assert_eq!(pool.epoch(b).unwrap(), 2);
    }

    #[test]
    fn durs_pool_adopts_streams_opened_on_the_raw_pool() {
        // An instance opened through the sbc() escape hatch is not known
        // to the stream bookkeeping yet: contribute must adopt it (typed
        // errors only, never a panic).
        let mut pool = DursPool::new(2, b"raw-stream").unwrap();
        let foreign = pool.sbc().open_instance().unwrap();
        pool.contribute(foreign, 0).unwrap();
        pool.contribute(foreign, 0).unwrap(); // idempotent after adoption
        pool.contribute(foreign, 1).unwrap();
        let r = pool.run_epoch(foreign).unwrap();
        assert_eq!(r.contributions, 2);
    }

    #[test]
    fn durs_pool_real_and_ideal_backends_agree() {
        fn drive<W: SbcBackend>(mut pool: DursPool<W>) -> Vec<DursResult> {
            let a = pool.open_stream().unwrap();
            let b = pool.open_stream().unwrap();
            let mut out = Vec::new();
            for _ in 0..2 {
                for p in 0..3 {
                    pool.contribute(a, p).unwrap();
                    pool.contribute(b, p).unwrap();
                }
                out.push(pool.run_epoch(a).unwrap());
                out.push(pool.run_epoch(b).unwrap());
            }
            out
        }
        let real = drive(DursPool::new(3, b"dual-streams").unwrap());
        let ideal = drive(DursPool::new_ideal(3, b"dual-streams").unwrap());
        assert_eq!(real, ideal);
    }

    #[test]
    fn durs_pool_corruption_is_global_across_streams() {
        let mut pool = DursPool::new(3, b"pool-corr").unwrap();
        let a = pool.open_stream().unwrap();
        let b = pool.open_stream().unwrap();
        // Corrupt party 2 through the underlying pool world: it cannot
        // contribute to either stream.
        pool.sbc().corrupt(2).unwrap();
        assert_eq!(
            pool.contribute(a, 2),
            Err(SbcError::CorruptedParty { party: 2 })
        );
        assert_eq!(
            pool.contribute(b, 2),
            Err(SbcError::CorruptedParty { party: 2 })
        );
        // The remaining honest parties still finish both streams.
        for p in 0..2 {
            pool.contribute(a, p).unwrap();
            pool.contribute(b, p).unwrap();
        }
        assert_eq!(pool.finish_stream(a).unwrap().contributions, 2);
        assert_eq!(pool.finish_stream(b).unwrap().contributions, 2);
        // Finished streams are typed errors.
        assert_eq!(
            pool.contribute(a, 0),
            Err(SbcError::InstanceFinished { instance: a.0 })
        );
    }
}
