//! Delayed uniform random string (DURS) generation — paper §6.1.
//!
//! Each party contributes λ bits of randomness through simultaneous
//! broadcast; the agreed string is the XOR of all valid contributions.
//! Simultaneity is exactly what makes the beacon unbiasable: no
//! contributor — however many parties are corrupted — can choose its share
//! as a function of the others'.
//!
//! * [`DursFunc`] — the functionality `F_DURS(∆, α)` (Fig. 15).
//! * [`DursSession`] — the protocol `Π_DURS` (Fig. 16) over the real SBC
//!   stack, exposed as a session API.
//! * [`NaiveBeacon`] — the commit-free XOR beacon baseline, with the
//!   classic last-revealer bias attack.

use sbc_core::api::{SbcResult, SbcSession};
use sbc_primitives::drbg::Drbg;
use sbc_uc::hybrid::HybridCtx;
use sbc_uc::ids::PartyId;
use std::collections::HashMap;

/// Byte length of the generated string (λ = 256 bits).
pub const URS_LEN: usize = 32;

/// The functionality `F_DURS(∆, α)` (Fig. 15): a single uniform string,
/// delivered `∆` rounds after the first request; the simulator may read it
/// `α` rounds early.
#[derive(Clone, Debug)]
pub struct DursFunc {
    delta: u64,
    alpha: u64,
    urs: Option<Vec<u8>>,
    t_start: Option<u64>,
    waiting: HashMap<PartyId, ()>,
}

impl DursFunc {
    /// Creates the functionality.
    ///
    /// # Panics
    ///
    /// Panics unless `∆ ≥ α`.
    pub fn new(delta: u64, alpha: u64) -> Self {
        assert!(delta >= alpha, "need ∆ ≥ α");
        DursFunc { delta, alpha, urs: None, t_start: None, waiting: HashMap::new() }
    }

    /// `URS` request from an honest party: samples the string on first use,
    /// records the requester, and answers once `∆` rounds have elapsed.
    pub fn request(&mut self, party: PartyId, ctx: &mut HybridCtx<'_>) -> Option<Vec<u8>> {
        let now = ctx.time();
        if self.urs.is_none() {
            self.urs = Some(ctx.rng.gen_bytes(URS_LEN));
        }
        self.waiting.insert(party, ());
        let start = *self.t_start.get_or_insert(now);
        if now >= start + self.delta {
            self.urs.clone()
        } else {
            None
        }
    }

    /// Simulator request: available `α` rounds early.
    pub fn request_simulator(&mut self, ctx: &mut HybridCtx<'_>) -> Option<Vec<u8>> {
        let now = ctx.time();
        let start = self.t_start?;
        if now + self.alpha >= start + self.delta {
            self.urs.clone()
        } else {
            None
        }
    }

    /// `Advance_Clock` delivery: parties that requested earlier receive the
    /// string at exactly `t_start + ∆`.
    pub fn advance_clock(&mut self, party: PartyId, ctx: &mut HybridCtx<'_>) -> Option<Vec<u8>> {
        let now = ctx.time();
        let start = self.t_start?;
        if now == start + self.delta && self.waiting.contains_key(&party) {
            self.urs.clone()
        } else {
            None
        }
    }
}

/// The result of a DURS run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DursResult {
    /// The agreed uniform string (XOR of all contributions).
    pub urs: Vec<u8>,
    /// Number of contributions combined.
    pub contributions: usize,
    /// The release round.
    pub release_round: u64,
}

/// `Π_DURS` (Fig. 16) over the real SBC stack: every participating party
/// contributes λ random bits via simultaneous broadcast; the output is
/// their XOR.
#[derive(Debug)]
pub struct DursSession {
    sbc: SbcSession,
    n: usize,
    rng: Drbg,
    contributed: Vec<bool>,
}

impl DursSession {
    /// Creates a session for `n` parties.
    pub fn new(n: usize, seed: &[u8]) -> Self {
        let mut label = b"durs/".to_vec();
        label.extend_from_slice(seed);
        DursSession {
            sbc: SbcSession::builder(n).seed(seed).build(),
            n,
            rng: Drbg::from_seed(&label),
            contributed: vec![false; n],
        }
    }

    /// Party `p` contributes fresh randomness (idempotent per party).
    pub fn contribute(&mut self, p: u32) {
        if self.contributed[p as usize] {
            return;
        }
        self.contributed[p as usize] = true;
        let mut party_rng = self.rng.fork(format!("contrib/{p}").as_bytes());
        let rho = party_rng.gen_bytes(URS_LEN);
        self.sbc.submit(p, &rho);
    }

    /// Adversarial contribution with a *chosen* (non-random) share — used
    /// by the bias experiments.
    pub fn contribute_chosen(&mut self, p: u32, share: &[u8; URS_LEN]) {
        if self.contributed[p as usize] {
            return;
        }
        self.contributed[p as usize] = true;
        self.sbc.submit(p, share);
    }

    /// Runs to completion and XORs all valid λ-bit contributions.
    ///
    /// # Panics
    ///
    /// Panics if nobody contributed.
    pub fn finish(mut self) -> DursResult {
        let SbcResult { messages, release_round, .. } = self.sbc.run_to_completion();
        let mut urs = vec![0u8; URS_LEN];
        let mut contributions = 0;
        for m in &messages {
            if m.len() != URS_LEN {
                continue; // non-λ-bit strings are discarded (Fig. 16)
            }
            contributions += 1;
            for (acc, b) in urs.iter_mut().zip(m.iter()) {
                *acc ^= b;
            }
        }
        DursResult { urs, contributions, release_round }
    }

    /// Number of registered parties.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// The naive commit-free XOR beacon: shares are public the moment they are
/// posted, so the last revealer fully controls the output.
#[derive(Clone, Debug, Default)]
pub struct NaiveBeacon {
    shares: Vec<Vec<u8>>,
}

impl NaiveBeacon {
    /// Creates an empty beacon.
    pub fn new() -> Self {
        NaiveBeacon::default()
    }

    /// Posts a share (instantly public).
    pub fn post(&mut self, share: Vec<u8>) {
        self.shares.push(share);
    }

    /// Adversary view of all posted shares.
    pub fn view(&self) -> &[Vec<u8>] {
        &self.shares
    }

    /// Current XOR of all posted shares.
    pub fn combined(&self) -> Vec<u8> {
        let mut acc = vec![0u8; URS_LEN];
        for s in &self.shares {
            if s.len() == URS_LEN {
                for (a, b) in acc.iter_mut().zip(s.iter()) {
                    *a ^= b;
                }
            }
        }
        acc
    }
}

/// The last-revealer attack on the naive beacon: the adversary waits for
/// every honest share, then posts the share that forces the beacon output
/// to `target`. Returns the resulting beacon output (always `target`).
pub fn last_revealer_attack(honest_shares: &[[u8; URS_LEN]], target: &[u8; URS_LEN]) -> Vec<u8> {
    let mut beacon = NaiveBeacon::new();
    for s in honest_shares {
        beacon.post(s.to_vec());
    }
    // Rushing adversary: combine the public view and cancel it.
    let current = beacon.combined();
    let mut forced = [0u8; URS_LEN];
    for i in 0..URS_LEN {
        forced[i] = current[i] ^ target[i];
    }
    beacon.post(forced.to_vec());
    beacon.combined()
}

/// Attempts the same attack against DURS over real SBC: the adversary
/// contributes last, after observing every leak of the broadcast period.
/// Its share cannot depend on the honest shares (they are time-locked), so
/// the output retains the honest parties' entropy. Returns `(output,
/// target_hit)`.
pub fn last_revealer_attack_on_durs(seed: &[u8], target: &[u8; URS_LEN]) -> (Vec<u8>, bool) {
    // The adversary's best strategy within the model: contribute any value
    // chosen independently of the (hidden) honest shares.
    let mut session = DursSession::new(3, seed);
    session.contribute(0);
    session.contribute(1);
    // Adversarial third party: chooses its share with full knowledge of the
    // public view so far — which reveals nothing about the honest ρ's.
    session.contribute_chosen(2, target);
    let result = session.finish();
    let hit = &result.urs == target;
    (result.urs, hit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_uc::clock::GlobalClock;
    use sbc_uc::corruption::CorruptionTracker;

    #[test]
    fn func_single_string_for_everyone() {
        let mut clock = GlobalClock::new(PartyId::all(2));
        let mut rng = Drbg::from_seed(b"durs-f");
        let mut leaks = Vec::new();
        let mut corr = CorruptionTracker::new(2);
        let mut f = DursFunc::new(3, 1);
        let mut ctx = HybridCtx { clock: &mut clock, rng: &mut rng, leaks: &mut leaks, corr: &mut corr };
        assert!(f.request(PartyId(0), &mut ctx).is_none(), "too early");
        assert!(f.request_simulator(&mut ctx).is_none(), "α=1 < ∆=3");
        drop(ctx);
        for _ in 0..2 {
            clock.advance_party(PartyId(0));
            clock.advance_party(PartyId(1));
        }
        let mut ctx = HybridCtx { clock: &mut clock, rng: &mut rng, leaks: &mut leaks, corr: &mut corr };
        // Cl = 2 = ∆ - α: simulator gets it, parties don't.
        assert!(f.request_simulator(&mut ctx).is_some());
        assert!(f.request(PartyId(1), &mut ctx).is_none());
        drop(ctx);
        clock.advance_party(PartyId(0));
        clock.advance_party(PartyId(1));
        let mut ctx = HybridCtx { clock: &mut clock, rng: &mut rng, leaks: &mut leaks, corr: &mut corr };
        let urs0 = f.advance_clock(PartyId(0), &mut ctx).unwrap();
        let urs1 = f.request(PartyId(1), &mut ctx).unwrap();
        assert_eq!(urs0, urs1);
        assert_eq!(urs0.len(), URS_LEN);
    }

    #[test]
    fn durs_all_parties_agree() {
        let mut s = DursSession::new(3, b"agree");
        for p in 0..3 {
            s.contribute(p);
        }
        let r = s.finish();
        assert_eq!(r.contributions, 3);
        assert_eq!(r.urs.len(), URS_LEN);
        assert_ne!(r.urs, vec![0u8; URS_LEN]);
    }

    #[test]
    fn durs_deterministic_per_seed() {
        let run = |seed: &[u8]| {
            let mut s = DursSession::new(2, seed);
            s.contribute(0);
            s.contribute(1);
            s.finish().urs
        };
        assert_eq!(run(b"seed-a"), run(b"seed-a"));
        assert_ne!(run(b"seed-a"), run(b"seed-b"));
    }

    #[test]
    fn durs_partial_participation() {
        let mut s = DursSession::new(4, b"partial");
        s.contribute(1);
        let r = s.finish();
        assert_eq!(r.contributions, 1, "terminates without full participation");
    }

    #[test]
    fn naive_beacon_fully_biasable() {
        let target = [0x42u8; URS_LEN];
        let honest = [[0x11u8; URS_LEN], [0x77u8; URS_LEN]];
        let out = last_revealer_attack(&honest, &target);
        assert_eq!(out, target.to_vec(), "the last revealer forces any output");
    }

    #[test]
    fn durs_not_biasable_by_last_revealer() {
        let target = [0x42u8; URS_LEN];
        let mut hits = 0;
        for seed in [&b"b1"[..], b"b2", b"b3", b"b4"] {
            let (_, hit) = last_revealer_attack_on_durs(seed, &target);
            hits += hit as u32;
        }
        assert_eq!(hits, 0, "2^-256 events don't happen");
    }

    #[test]
    fn output_bits_roughly_uniform() {
        // Aggregate bit balance over several independent runs.
        let mut ones = 0u32;
        let mut total = 0u32;
        for i in 0..8u8 {
            let mut s = DursSession::new(2, &[b'u', i]);
            s.contribute(0);
            s.contribute(1);
            let urs = s.finish().urs;
            for byte in urs {
                ones += byte.count_ones();
                total += 8;
            }
        }
        let ratio = ones as f64 / total as f64;
        assert!((0.40..=0.60).contains(&ratio), "bit ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "∆ ≥ α")]
    fn func_invalid_params() {
        DursFunc::new(1, 2);
    }
}
