//! Self-tallying e-voting without a trusted control voter — paper §6.2.
//!
//! The \[SP15]/\[KY02] paradigm: authorities deal each voter `V_i` additive
//! shares `x_{i,j}` with `Σ_i x_{i,j} = 0`, so the voter exponents satisfy
//! `Σ_i x_i = 0`. A ballot is `b_i = r^{x_i} · g^{e(v_i)}` with a
//! disjunctive Chaum–Pedersen proof that it encodes an allowable vote under
//! the registered verification key `w_i = w^{x_i}`. Because the blinders
//! cancel, *anyone* can tally: `Π_i b_i = g^{Σ e(v_i)}` and a small
//! discrete log recovers the per-candidate counts (packed base `n+1`).
//!
//! Fairness — no partial tallies before the end of the casting phase — is
//! the reason prior systems needed a trusted "control voter" who casts a
//! dummy ballot last. Here ballots are cast through **simultaneous
//! broadcast**: nothing opens until the casting period is over, so the
//! control voter disappears (the paper's Fig. 18 modification).

use sbc_core::api::{SbcError, SbcSession};
use sbc_core::pool::{InstanceId, SbcPool};
use sbc_primitives::bigint::U256;
use sbc_primitives::drbg::Drbg;
use sbc_primitives::group::{Element, Scalar, SchnorrGroup};
use sbc_primitives::sigma::{dleq_or_prove, dleq_or_verify, DleqOrProof};
use sbc_uc::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Election setup produced by `F_SKG`/`F_PKG`: the group, the bases, and
/// the per-voter key material.
#[derive(Clone, Debug)]
pub struct ElectionSetup {
    /// The underlying group.
    pub group: SchnorrGroup,
    /// The ballot blinding base `r` (public random seed element).
    pub r: Element,
    /// The verification base `w`.
    pub w: Element,
    /// Per-voter secret exponents `x_i` (held by the voters).
    secrets: Vec<Scalar>,
    /// Per-voter verification keys `w_i = w^{x_i}` (public).
    pub verification_keys: Vec<Element>,
    /// Number of candidates.
    pub candidates: usize,
    /// Number of voters.
    pub voters: usize,
}

/// Error cases of setup, casting, and tallying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VotingError {
    /// A ballot failed proof or key verification.
    InvalidBallot(usize),
    /// A voter index out of range.
    VoterOutOfRange(usize),
    /// A candidate index out of range.
    CandidateOutOfRange(usize),
    /// The product's discrete log exceeded the tally bound.
    TallyOverflow,
    /// Malformed wire data.
    Malformed,
    /// The underlying SBC session failed.
    Sbc(SbcError),
}

impl fmt::Display for VotingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VotingError::InvalidBallot(i) => write!(f, "ballot {i} failed verification"),
            VotingError::VoterOutOfRange(v) => write!(f, "voter {v} out of range"),
            VotingError::CandidateOutOfRange(c) => write!(f, "candidate {c} out of range"),
            VotingError::TallyOverflow => write!(f, "tally exceeded decodable bound"),
            VotingError::Malformed => write!(f, "malformed ballot encoding"),
            VotingError::Sbc(e) => write!(f, "SBC session failure: {e}"),
        }
    }
}

impl std::error::Error for VotingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VotingError::Sbc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SbcError> for VotingError {
    fn from(e: SbcError) -> Self {
        VotingError::Sbc(e)
    }
}

impl ElectionSetup {
    /// Runs the authority key-dealing of Fig. 18 (`F_PKG` + `F_SKG`):
    /// `n_auth` authorities each deal shares summing to zero over the
    /// voters; scrutineers verify `Π_i w^{x_{i,j}} = 1` per authority.
    ///
    /// # Panics
    ///
    /// Panics unless `voters ≥ 1`, `candidates ≥ 2` and `n_auth ≥ 1`.
    pub fn generate(
        group: SchnorrGroup,
        voters: usize,
        candidates: usize,
        n_auth: usize,
        rng: &mut Drbg,
    ) -> Self {
        assert!(voters >= 1 && candidates >= 2 && n_auth >= 1);
        let r = group.hash_to_element(b"election-seed-r");
        let w = group.hash_to_element(b"election-base-w");
        let mut secrets = vec![Scalar(U256::ZERO); voters];
        for j in 0..n_auth {
            // Authority j: shares x_{1,j}, …, x_{n,j} with Σ_i x_{i,j} = 0.
            let mut acc = Scalar(U256::ZERO);
            let mut shares = Vec::with_capacity(voters);
            for _ in 0..voters - 1 {
                let s = group.random_scalar(rng);
                acc = group.scalar_add(&acc, &s);
                shares.push(s);
            }
            shares.push(group.scalar_neg(&acc));
            // Scrutineer check: the published w^{x_{i,j}} multiply to 1.
            let mut prod = group.one();
            for s in &shares {
                prod = group.mul(&prod, &group.exp(&w, s));
            }
            assert_eq!(prod, group.one(), "authority {j} dealt inconsistent shares");
            for (i, s) in shares.iter().enumerate() {
                secrets[i] = group.scalar_add(&secrets[i], s);
            }
        }
        let verification_keys = secrets.iter().map(|x| group.exp(&w, x)).collect();
        ElectionSetup {
            group,
            r,
            w,
            secrets,
            verification_keys,
            candidates,
            voters,
        }
    }

    /// The voter's secret exponent (only the voter itself may call this).
    pub fn secret_of(&self, voter: usize) -> Scalar {
        self.secrets[voter]
    }

    /// Derives the setup for casting period `epoch`: the same electorate
    /// (keys, candidates) over a **fresh blinding base**
    /// `r_e = H("election-seed-r/epoch/e")`. Because `Σ_i x_i = 0`, the
    /// blinders `r_e^{x_i}` still cancel in the tally; rotating the base
    /// per epoch means (1) a ballot published in one period fails proof
    /// verification in every other one (the proof statements involve
    /// `r_e`), and (2) `b = r_e^{x} · g^{e(v)}` is no longer deterministic
    /// per `(voter, candidate)` across periods, so vote equality between
    /// motions does not leak. Epoch 0 is the base setup itself.
    pub fn for_epoch(&self, epoch: u64) -> ElectionSetup {
        if epoch == 0 {
            return self.clone();
        }
        let mut label = b"election-seed-r/epoch/".to_vec();
        label.extend_from_slice(&epoch.to_be_bytes());
        let mut next = self.clone();
        next.r = self.group.hash_to_element(&label);
        next
    }

    /// Sanity invariant: the secrets sum to zero (what makes self-tallying
    /// possible).
    pub fn secrets_sum_to_zero(&self) -> bool {
        let mut acc = Scalar(U256::ZERO);
        for s in &self.secrets {
            acc = self.group.scalar_add(&acc, s);
        }
        acc.0.is_zero()
    }

    /// The packed tally exponent of candidate `c`: `(voters+1)^c`.
    fn candidate_exponent(&self, c: usize) -> Scalar {
        let base = self.voters as u64 + 1;
        let mut e = Scalar(U256::ONE);
        for _ in 0..c {
            e = self.group.scalar_mul(&e, &self.group.scalar_from_u64(base));
        }
        e
    }
}

/// A cast ballot: the blinded vote plus its validity proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ballot {
    /// The voter index.
    pub voter: usize,
    /// `b = r^{x_i} · g^{e(v)}`.
    pub value: Element,
    /// Disjunctive proof that `b` encodes an allowable vote under `w_i`.
    pub proof: DleqOrProof,
}

impl Ballot {
    /// Creates a ballot for `vote ∈ {0, …, candidates-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `vote` is out of range.
    pub fn cast(setup: &ElectionSetup, voter: usize, vote: usize, rng: &mut Drbg) -> Ballot {
        assert!(vote < setup.candidates, "vote out of range");
        let grp = &setup.group;
        let x = setup.secret_of(voter);
        let ge = grp.exp(&grp.generator(), &setup.candidate_exponent(vote));
        let value = grp.mul(&grp.exp(&setup.r, &x), &ge);
        // Candidate statements: for each candidate c, knowledge of x with
        // w_i = w^x ∧ b/g^{e(c)} = r^x.
        let targets: Vec<(Element, Element)> = (0..setup.candidates)
            .map(|c| {
                let gc = grp.exp(&grp.generator(), &setup.candidate_exponent(c));
                (
                    setup.verification_keys[voter],
                    grp.mul(&value, &grp.inv(&gc)),
                )
            })
            .collect();
        let ctx = ballot_context(setup, voter);
        let proof = dleq_or_prove(grp, &setup.w, &setup.r, &targets, vote, &x, &ctx, rng);
        Ballot {
            voter,
            value,
            proof,
        }
    }

    /// Verifies the ballot against the public election setup.
    pub fn verify(&self, setup: &ElectionSetup) -> bool {
        if self.voter >= setup.voters {
            return false;
        }
        let grp = &setup.group;
        if !grp.is_element(&self.value) {
            return false;
        }
        let targets: Vec<(Element, Element)> = (0..setup.candidates)
            .map(|c| {
                let gc = grp.exp(&grp.generator(), &setup.candidate_exponent(c));
                (
                    setup.verification_keys[self.voter],
                    grp.mul(&self.value, &grp.inv(&gc)),
                )
            })
            .collect();
        let ctx = ballot_context(setup, self.voter);
        dleq_or_verify(grp, &setup.w, &setup.r, &targets, &ctx, &self.proof)
    }

    /// Serializes the ballot for the SBC wire.
    pub fn to_value(&self) -> Value {
        let el = |e: &Element| Value::bytes(e.0.to_be_bytes());
        let sc = |s: &Scalar| Value::bytes(s.0.to_be_bytes());
        Value::list([
            Value::U64(self.voter as u64),
            el(&self.value),
            Value::List(
                self.proof
                    .commitments
                    .iter()
                    .map(|(a, b)| Value::pair(el(a), el(b)))
                    .collect(),
            ),
            Value::List(self.proof.challenges.iter().map(sc).collect()),
            Value::List(self.proof.responses.iter().map(sc).collect()),
        ])
    }

    /// Parses a ballot off the SBC wire.
    pub fn from_value(v: &Value) -> Option<Ballot> {
        let items = v.as_list()?;
        if items.len() != 5 {
            return None;
        }
        let el = |v: &Value| -> Option<Element> {
            let b: [u8; 32] = v.as_bytes()?.try_into().ok()?;
            Some(Element(U256::from_be_bytes(&b)))
        };
        let sc = |v: &Value| -> Option<Scalar> {
            let b: [u8; 32] = v.as_bytes()?.try_into().ok()?;
            Some(Scalar(U256::from_be_bytes(&b)))
        };
        let voter = items[0].as_u64()? as usize;
        let value = el(&items[1])?;
        let commitments: Option<Vec<(Element, Element)>> = items[2]
            .as_list()?
            .iter()
            .map(|p| {
                let pair = p.as_list()?;
                Some((el(&pair[0])?, el(&pair[1])?))
            })
            .collect();
        let challenges: Option<Vec<Scalar>> = items[3].as_list()?.iter().map(sc).collect();
        let responses: Option<Vec<Scalar>> = items[4].as_list()?.iter().map(sc).collect();
        Some(Ballot {
            voter,
            value,
            proof: DleqOrProof {
                commitments: commitments?,
                challenges: challenges?,
                responses: responses?,
            },
        })
    }
}

fn ballot_context(setup: &ElectionSetup, voter: usize) -> Vec<u8> {
    let mut ctx = b"stvs-ballot".to_vec();
    ctx.extend_from_slice(&(voter as u64).to_be_bytes());
    ctx.extend_from_slice(&setup.r.0.to_be_bytes());
    ctx.extend_from_slice(&setup.w.0.to_be_bytes());
    ctx
}

/// Self-tallies a set of ballots: verifies each, enforces one ballot per
/// voter (first valid counts), multiplies and decodes the packed counts.
///
/// # Errors
///
/// Returns [`VotingError::TallyOverflow`] if the product's discrete log is
/// not decodable within the bound (cannot happen for valid ballots).
pub fn self_tally(setup: &ElectionSetup, ballots: &[Ballot]) -> Result<Vec<u64>, VotingError> {
    let grp = &setup.group;
    let mut seen = vec![false; setup.voters];
    let mut product = grp.one();
    let mut counted = 0usize;
    for b in ballots {
        if !b.verify(setup) {
            continue; // invalid ballots are publicly discardable
        }
        if seen[b.voter] {
            continue; // quota: one ballot per voter
        }
        seen[b.voter] = true;
        counted += 1;
        product = grp.mul(&product, &b.value);
    }
    // Σ x_i over *all* voters is 0; with partial participation the blinders
    // of absent voters are missing, so tally on the residual blinder:
    // compensate by multiplying r^{-Σ_{absent} x_absent}... which only the
    // absent voters could provide. The paper's model tallies when all cast;
    // for partial participation the missing blinders must be opened by the
    // authorities. Here: compensate using setup knowledge (authority role).
    let mut missing = Scalar(U256::ZERO);
    for (i, s) in seen.iter().enumerate() {
        if !*s {
            missing = grp.scalar_add(&missing, &setup.secret_of(i));
        }
    }
    product = grp.mul(&product, &grp.exp(&setup.r, &missing));
    let _ = counted;
    // Decode g^T with T = Σ_c count_c · (n+1)^c by brute force.
    let base = setup.voters as u64 + 1;
    let bound = base.pow(setup.candidates as u32).saturating_sub(1);
    let t = grp
        .brute_force_dlog(&grp.generator(), &product, bound)
        .ok_or(VotingError::TallyOverflow)?;
    let mut counts = Vec::with_capacity(setup.candidates);
    let mut rest = t;
    for _ in 0..setup.candidates {
        counts.push(rest % base);
        rest /= base;
    }
    Ok(counts)
}

/// The election outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElectionResult {
    /// Per-candidate vote counts.
    pub counts: Vec<u64>,
    /// Number of ballots accepted.
    pub ballots_accepted: usize,
    /// The round the tally became computable.
    pub tally_round: u64,
}

/// A self-tallying election run over the real SBC stack (the Fig. 18
/// protocol with the bulletin board + control voter replaced by `F_SBC`).
///
/// The election is *repeatable*: after
/// [`finish_epoch`](Election::finish_epoch) tallies a casting period, the
/// same registered electorate (same key material, same SBC world) can run
/// the next period — e.g. successive board motions — without rebuilding
/// the stack.
#[derive(Debug)]
pub struct Election {
    /// The current period's setup (epoch-rotated blinding base).
    setup: ElectionSetup,
    /// The epoch-0 base setup the per-period setups derive from.
    base_setup: ElectionSetup,
    sbc: SbcSession,
    rng: Drbg,
    cast: Vec<bool>,
}

impl Election {
    /// Creates an election over the given group.
    ///
    /// # Errors
    ///
    /// Propagates [`SbcError`] from the session builder (degenerate voter
    /// count).
    pub fn new(
        group: SchnorrGroup,
        voters: usize,
        candidates: usize,
        seed: &[u8],
    ) -> Result<Self, VotingError> {
        let mut label = b"stvs/".to_vec();
        label.extend_from_slice(seed);
        let mut rng = Drbg::from_seed(&label);
        let base_setup = ElectionSetup::generate(group, voters, candidates, 3, &mut rng);
        Ok(Election {
            setup: base_setup.clone(),
            base_setup,
            sbc: SbcSession::builder(voters).seed(seed).build()?,
            rng,
            cast: vec![false; voters],
        })
    }

    /// The public setup of the **current** casting period. The blinding
    /// base rotates every period (see [`ElectionSetup::for_epoch`]), so
    /// ballots from one motion neither verify nor correlate in another.
    pub fn setup(&self) -> &ElectionSetup {
        &self.setup
    }

    /// Voter `v` casts a vote for candidate `c` through the SBC channel
    /// (first cast per voter and period counts).
    ///
    /// # Errors
    ///
    /// [`VotingError::VoterOutOfRange`] / [`VotingError::CandidateOutOfRange`]
    /// on bad indices; [`VotingError::Sbc`] if the casting period already
    /// closed.
    pub fn vote(&mut self, voter: usize, candidate: usize) -> Result<(), VotingError> {
        if voter >= self.setup.voters {
            return Err(VotingError::VoterOutOfRange(voter));
        }
        if candidate >= self.setup.candidates {
            return Err(VotingError::CandidateOutOfRange(candidate));
        }
        if self.cast[voter] {
            return Ok(());
        }
        // Reject doomed casts (closed period, corrupted voter) before
        // paying for the proof: a failed vote must neither waste the
        // DLEQ-OR exponentiations nor perturb the ballot RNG stream.
        self.sbc.check_submittable(voter as u32)?;
        let ballot = Ballot::cast(&self.setup, voter, candidate, &mut self.rng);
        self.sbc.submit(voter as u32, &ballot.to_value().encode())?;
        self.cast[voter] = true;
        Ok(())
    }

    fn tally_messages(
        &self,
        messages: &[Vec<u8>],
        round: u64,
    ) -> Result<ElectionResult, VotingError> {
        let ballots: Vec<Ballot> = messages
            .iter()
            .filter_map(|m| Ballot::from_value(&Value::decode(m)?))
            .collect();
        let accepted = ballots.iter().filter(|b| b.verify(&self.setup)).count();
        let counts = self_tally(&self.setup, &ballots)?;
        Ok(ElectionResult {
            counts,
            ballots_accepted: accepted,
            tally_round: round,
        })
    }

    /// Runs the current casting period + release, self-tallies, and
    /// re-opens the stack for the next period with the same electorate.
    ///
    /// # Errors
    ///
    /// [`VotingError::Sbc`] if nobody cast a ballot or the stack failed;
    /// [`VotingError::TallyOverflow`] if the tally is undecodable.
    pub fn finish_epoch(&mut self) -> Result<ElectionResult, VotingError> {
        let epoch = self.sbc.run_epoch()?;
        self.cast = vec![false; self.setup.voters];
        let result = self.tally_messages(&epoch.messages, epoch.release_round);
        // Rotate the blinding base for the next motion: replayed ballots
        // from this period will fail verification there.
        self.setup = self.base_setup.for_epoch(self.sbc.epoch());
        result
    }

    /// Single-shot convenience: tallies one casting period and consumes
    /// the election.
    ///
    /// # Errors
    ///
    /// As for [`finish_epoch`](Election::finish_epoch).
    pub fn finish(mut self) -> Result<ElectionResult, VotingError> {
        self.finish_epoch()
    }
}

/// Per-motion state of an [`ElectionPool`].
#[derive(Debug)]
struct MotionState {
    setup: ElectionSetup,
    cast: Vec<bool>,
}

/// Parallel motions: one registered electorate voting on several questions
/// **concurrently**, each motion a separate SBC instance of one shared
/// pool.
///
/// A boardroom rarely votes sequentially — several motions are tabled and
/// their casting periods overlap. `ElectionPool` runs each motion as one
/// instance of an [`SbcPool`]: the electorate (key material) is shared,
/// every motion gets its own rotated blinding base (so ballots neither
/// replay nor correlate across motions, exactly as with sequential
/// epochs), the casting periods share one clock, and a corrupted voter is
/// corrupted in every motion at once.
#[derive(Debug)]
pub struct ElectionPool {
    /// The epoch-0 base setup the per-motion setups derive from.
    base_setup: ElectionSetup,
    pool: SbcPool,
    rng: Drbg,
    motions: BTreeMap<u64, MotionState>,
}

impl ElectionPool {
    /// Creates a motion pool over the given group: one electorate, ready
    /// to table concurrent motions.
    ///
    /// # Errors
    ///
    /// Propagates [`SbcError`] from the pool builder (degenerate voter
    /// count).
    pub fn new(
        group: SchnorrGroup,
        voters: usize,
        candidates: usize,
        seed: &[u8],
    ) -> Result<Self, VotingError> {
        let mut label = b"stvs-pool/".to_vec();
        label.extend_from_slice(seed);
        let mut rng = Drbg::from_seed(&label);
        let base_setup = ElectionSetup::generate(group, voters, candidates, 3, &mut rng);
        Ok(ElectionPool {
            base_setup,
            pool: SbcPool::builder(voters).seed(seed).build()?,
            rng,
            motions: BTreeMap::new(),
        })
    }

    /// Tables a new motion: opens an SBC instance for its casting period
    /// and derives the motion's setup (the blinding base is rotated by the
    /// motion id, so ballots of concurrent motions neither cross-verify
    /// nor correlate). Opening joins the shared clock in O(1), so tabling
    /// a motion costs the same however long the floor has been sitting.
    ///
    /// # Errors
    ///
    /// [`VotingError::Sbc`] if the pool could not open the instance.
    pub fn open_motion(&mut self) -> Result<InstanceId, VotingError> {
        let id = self.pool.open_instance()?;
        self.motions.insert(
            id.0,
            MotionState {
                setup: self.base_setup.for_epoch(id.0),
                cast: vec![false; self.base_setup.voters],
            },
        );
        Ok(id)
    }

    /// The public setup of one motion.
    ///
    /// # Errors
    ///
    /// [`VotingError::Sbc`] with the instance error for bad motion ids.
    pub fn setup_of(&self, motion: InstanceId) -> Result<&ElectionSetup, VotingError> {
        match self.motions.get(&motion.0) {
            Some(m) => Ok(&m.setup),
            None => Err(VotingError::Sbc(SbcError::UnknownInstance {
                instance: motion.0,
            })),
        }
    }

    /// Voter `v` casts a vote for candidate `c` on `motion` (first cast
    /// per voter and motion counts). Concurrent motions do not interfere:
    /// the same voter can cast on every open motion in the same round.
    ///
    /// # Errors
    ///
    /// [`VotingError::VoterOutOfRange`] / [`VotingError::CandidateOutOfRange`]
    /// on bad indices; [`VotingError::Sbc`] for bad motion ids, corrupted
    /// voters, or an already-closed casting period.
    pub fn vote(
        &mut self,
        motion: InstanceId,
        voter: usize,
        candidate: usize,
    ) -> Result<(), VotingError> {
        if voter >= self.base_setup.voters {
            return Err(VotingError::VoterOutOfRange(voter));
        }
        if candidate >= self.base_setup.candidates {
            return Err(VotingError::CandidateOutOfRange(candidate));
        }
        // Reject doomed casts (bad motion, closed period, corrupted voter)
        // before paying for the proof or perturbing the ballot RNG stream.
        self.pool.check_submittable(motion, voter as u32)?;
        // A live pool instance opened behind our back (through `sbc()`) is
        // not a motion: typed error, not a panic.
        let Some(m) = self.motions.get_mut(&motion.0) else {
            return Err(VotingError::Sbc(SbcError::UnknownInstance {
                instance: motion.0,
            }));
        };
        if m.cast[voter] {
            return Ok(());
        }
        let ballot = Ballot::cast(&m.setup, voter, candidate, &mut self.rng);
        self.pool
            .submit(motion, voter as u32, &ballot.to_value().encode())?;
        m.cast[voter] = true;
        Ok(())
    }

    /// One shared clock tick for **all** open motions.
    ///
    /// # Errors
    ///
    /// As for [`SbcPool::step_round`].
    pub fn step_round(&mut self) -> Result<(), VotingError> {
        self.pool.step_round()?;
        Ok(())
    }

    /// Runs `motion`'s casting period to release (all concurrent motions
    /// advance on the shared clock), self-tallies, and closes the motion.
    ///
    /// # Errors
    ///
    /// [`VotingError::Sbc`] if nobody cast a ballot or the stack failed;
    /// [`VotingError::TallyOverflow`] if the tally is undecodable.
    pub fn tally_motion(&mut self, motion: InstanceId) -> Result<ElectionResult, VotingError> {
        if !self.motions.contains_key(&motion.0) {
            // Let the pool classify unknown/retired ids precisely; a live
            // instance opened behind our back (through `sbc()`) is not a
            // motion — typed error either way, never a panic, and the
            // foreign instance is left untouched.
            self.pool.epoch(motion)?;
            return Err(VotingError::Sbc(SbcError::UnknownInstance {
                instance: motion.0,
            }));
        }
        let result = self.pool.finish(motion)?;
        let m = self
            .motions
            .remove(&motion.0)
            .expect("membership checked above; finish does not touch the map");
        let ballots: Vec<Ballot> = result
            .messages
            .iter()
            .filter_map(|bytes| Ballot::from_value(&Value::decode(bytes)?))
            .collect();
        let accepted = ballots.iter().filter(|b| b.verify(&m.setup)).count();
        let counts = self_tally(&m.setup, &ballots)?;
        Ok(ElectionResult {
            counts,
            ballots_accepted: accepted,
            tally_round: result.release_round,
        })
    }

    /// The underlying SBC pool — the adversarial surface (global voter
    /// corruption, injection, leakage probes) for election experiments.
    pub fn sbc(&mut self) -> &mut SbcPool {
        &mut self.pool
    }
}

/// Baseline: the \[SP15] bulletin board, where ballots are public on
/// posting. Without the trusted control voter, partial tallies leak during
/// the casting phase — the fairness failure SBC removes.
#[derive(Debug)]
pub struct BulletinBoardElection {
    setup: ElectionSetup,
    rng: Drbg,
    posted: Vec<Ballot>,
}

impl BulletinBoardElection {
    /// Creates the baseline election.
    pub fn new(group: SchnorrGroup, voters: usize, candidates: usize, seed: &[u8]) -> Self {
        let mut label = b"bb/".to_vec();
        label.extend_from_slice(seed);
        let mut rng = Drbg::from_seed(&label);
        let setup = ElectionSetup::generate(group, voters, candidates, 3, &mut rng);
        BulletinBoardElection {
            setup,
            rng,
            posted: Vec::new(),
        }
    }

    /// The public setup.
    pub fn setup(&self) -> &ElectionSetup {
        &self.setup
    }

    /// Casts a vote directly onto the public board.
    pub fn vote(&mut self, voter: usize, candidate: usize) {
        let ballot = Ballot::cast(&self.setup, voter, candidate, &mut self.rng);
        self.posted.push(ballot);
    }

    /// The fairness failure: anyone can compute a partial tally mid-phase
    /// once (board-visible) ballots are in, because the missing blinders
    /// can be brute-compensated by... the authorities — or, with all-but-
    /// one cast, by simple enumeration over the last voter's options.
    /// Returns the partial tally over the cast ballots.
    pub fn partial_tally(&self) -> Result<Vec<u64>, VotingError> {
        self_tally(&self.setup, &self.posted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> SchnorrGroup {
        SchnorrGroup::tiny()
    }

    #[test]
    fn setup_invariants() {
        let mut rng = Drbg::from_seed(b"setup");
        let s = ElectionSetup::generate(group(), 4, 2, 3, &mut rng);
        assert!(s.secrets_sum_to_zero());
        assert_eq!(s.verification_keys.len(), 4);
        for (i, vk) in s.verification_keys.iter().enumerate() {
            assert_eq!(*vk, s.group.exp(&s.w, &s.secret_of(i)));
        }
    }

    #[test]
    fn ballot_round_trip_and_verify() {
        let mut rng = Drbg::from_seed(b"ballot");
        let s = ElectionSetup::generate(group(), 3, 3, 2, &mut rng);
        for vote in 0..3 {
            let b = Ballot::cast(&s, 1, vote, &mut rng);
            assert!(b.verify(&s), "vote {vote}");
            let parsed = Ballot::from_value(&b.to_value()).unwrap();
            assert_eq!(parsed, b);
            assert!(parsed.verify(&s));
        }
    }

    #[test]
    fn ballot_with_wrong_key_rejected() {
        let mut rng = Drbg::from_seed(b"wrongkey");
        let s = ElectionSetup::generate(group(), 3, 2, 2, &mut rng);
        let mut b = Ballot::cast(&s, 0, 1, &mut rng);
        b.voter = 1; // claims to be voter 1 but used voter 0's exponent
        assert!(!b.verify(&s));
    }

    #[test]
    fn out_of_range_vote_value_rejected() {
        // A ballot encoding a non-candidate exponent cannot produce a valid
        // OR proof.
        let mut rng = Drbg::from_seed(b"range");
        let s = ElectionSetup::generate(group(), 3, 2, 2, &mut rng);
        let grp = &s.group;
        let x = s.secret_of(0);
        // b = r^x · g^{7} — 7 is not a candidate exponent.
        let bad_val = grp.mul(
            &grp.exp(&s.r, &x),
            &grp.exp(&grp.generator(), &grp.scalar_from_u64(7)),
        );
        let targets: Vec<(Element, Element)> = (0..2)
            .map(|c| {
                let gc = grp.exp(&grp.generator(), &s.candidate_exponent(c));
                (s.verification_keys[0], grp.mul(&bad_val, &grp.inv(&gc)))
            })
            .collect();
        let proof = dleq_or_prove(
            grp,
            &s.w,
            &s.r,
            &targets,
            0,
            &x,
            &ballot_context(&s, 0),
            &mut rng,
        );
        let b = Ballot {
            voter: 0,
            value: bad_val,
            proof,
        };
        assert!(!b.verify(&s));
    }

    #[test]
    fn tally_correct_full_participation() {
        let mut rng = Drbg::from_seed(b"tally");
        let s = ElectionSetup::generate(group(), 5, 3, 2, &mut rng);
        let votes = [0usize, 1, 1, 2, 1];
        let ballots: Vec<Ballot> = votes
            .iter()
            .enumerate()
            .map(|(i, &v)| Ballot::cast(&s, i, v, &mut rng))
            .collect();
        let counts = self_tally(&s, &ballots).unwrap();
        assert_eq!(counts, vec![1, 3, 1]);
    }

    #[test]
    fn tally_ignores_invalid_and_duplicate_ballots() {
        let mut rng = Drbg::from_seed(b"dups");
        let s = ElectionSetup::generate(group(), 3, 2, 2, &mut rng);
        let mut ballots = vec![
            Ballot::cast(&s, 0, 1, &mut rng),
            Ballot::cast(&s, 1, 0, &mut rng),
            Ballot::cast(&s, 2, 1, &mut rng),
        ];
        // Duplicate from voter 0 (ignored) and a forged one (ignored).
        ballots.push(Ballot::cast(&s, 0, 0, &mut rng));
        let mut forged = Ballot::cast(&s, 1, 1, &mut rng);
        forged.voter = 2;
        ballots.push(forged);
        let counts = self_tally(&s, &ballots).unwrap();
        assert_eq!(counts, vec![1, 2]);
    }

    #[test]
    fn election_over_sbc_end_to_end() {
        let mut e = Election::new(group(), 3, 2, b"e2e").unwrap();
        e.vote(0, 1).unwrap();
        e.vote(1, 1).unwrap();
        e.vote(2, 0).unwrap();
        let r = e.finish().unwrap();
        assert_eq!(r.counts, vec![1, 2]);
        assert_eq!(r.ballots_accepted, 3);
        assert_eq!(r.tally_round, 3 + 2, "tally only after t_end + ∆");
    }

    #[test]
    fn election_partial_participation() {
        let mut e = Election::new(group(), 4, 2, b"partial").unwrap();
        e.vote(0, 1).unwrap();
        e.vote(3, 0).unwrap();
        let r = e.finish().unwrap();
        assert_eq!(r.counts, vec![1, 1], "no control voter needed to terminate");
    }

    #[test]
    fn election_out_of_range_indices_rejected() {
        let mut e = Election::new(group(), 3, 2, b"bad-idx").unwrap();
        assert_eq!(e.vote(7, 0), Err(VotingError::VoterOutOfRange(7)));
        assert_eq!(e.vote(0, 5), Err(VotingError::CandidateOutOfRange(5)));
    }

    #[test]
    fn epoch_rotation_blocks_ballot_replay() {
        let mut rng = Drbg::from_seed(b"replay");
        let s0 = ElectionSetup::generate(group(), 3, 2, 2, &mut rng);
        let s1 = s0.for_epoch(1);
        // A motion-0 ballot is public after its tally; it must not verify
        // under the next motion's rotated base.
        let old = Ballot::cast(&s0, 1, 1, &mut rng);
        assert!(old.verify(&s0));
        assert!(!old.verify(&s1), "replayed ballot rejected in epoch 1");
        // Same (voter, candidate) under different epochs: different
        // ballot values, so vote equality across motions does not leak.
        let fresh = Ballot::cast(&s1, 1, 1, &mut rng);
        assert_ne!(old.value, fresh.value);
        // The rotated base still self-tallies (blinders cancel: Σx = 0).
        let ballots: Vec<Ballot> = (0..3)
            .map(|v| Ballot::cast(&s1, v, v % 2, &mut rng))
            .collect();
        assert_eq!(self_tally(&s1, &ballots).unwrap(), vec![2, 1]);
    }

    #[test]
    fn repeated_elections_on_one_stack() {
        // Two successive motions, one electorate, one SBC world.
        let mut e = Election::new(group(), 3, 2, b"repeat").unwrap();
        e.vote(0, 1).unwrap();
        e.vote(1, 0).unwrap();
        e.vote(2, 1).unwrap();
        let first = e.finish_epoch().unwrap();
        assert_eq!(first.counts, vec![1, 2]);
        // Next period: fresh casts, different outcome.
        e.vote(0, 0).unwrap();
        e.vote(1, 0).unwrap();
        e.vote(2, 1).unwrap();
        let second = e.finish_epoch().unwrap();
        assert_eq!(second.counts, vec![2, 1]);
        assert!(second.tally_round > first.tally_round);
    }

    #[test]
    fn parallel_motions_tally_independently() {
        // Three motions tabled at once: every voter casts on all three in
        // the same casting period, and each motion tallies its own counts.
        let mut pool = ElectionPool::new(group(), 3, 2, b"motions").unwrap();
        let m1 = pool.open_motion().unwrap();
        let m2 = pool.open_motion().unwrap();
        let m3 = pool.open_motion().unwrap();
        let votes = [
            (m1, [1usize, 1, 0]),
            (m2, [0usize, 0, 0]),
            (m3, [1usize, 0, 1]),
        ];
        for (motion, per_voter) in &votes {
            for (voter, candidate) in per_voter.iter().enumerate() {
                pool.vote(*motion, voter, *candidate).unwrap();
            }
        }
        let r1 = pool.tally_motion(m1).unwrap();
        let r2 = pool.tally_motion(m2).unwrap();
        let r3 = pool.tally_motion(m3).unwrap();
        assert_eq!(r1.counts, vec![1, 2]);
        assert_eq!(r2.counts, vec![3, 0]);
        assert_eq!(r3.counts, vec![1, 2]);
        assert_eq!(r1.ballots_accepted, 3);
        // Concurrent motions share the clock: same schedule, same tally
        // round.
        assert_eq!(r1.tally_round, r2.tally_round);
        assert_eq!(r2.tally_round, r3.tally_round);
    }

    #[test]
    fn parallel_motions_do_not_cross_verify() {
        // A ballot published for one motion must fail verification under a
        // concurrently open motion's setup (rotated blinding base).
        let mut pool = ElectionPool::new(group(), 3, 2, b"cross").unwrap();
        let m1 = pool.open_motion().unwrap();
        let m2 = pool.open_motion().unwrap();
        let s1 = pool.setup_of(m1).unwrap().clone();
        let s2 = pool.setup_of(m2).unwrap().clone();
        let mut rng = Drbg::from_seed(b"cross-ballots");
        let b1 = Ballot::cast(&s1, 0, 1, &mut rng);
        assert!(b1.verify(&s1));
        assert!(!b1.verify(&s2), "no replay across concurrent motions");
        // Same voter, same candidate, different motions: different ballot
        // values, so vote equality across motions does not leak.
        let b2 = Ballot::cast(&s2, 0, 1, &mut rng);
        assert_ne!(b1.value, b2.value);
    }

    #[test]
    fn motion_pool_corruption_and_typed_errors() {
        let mut pool = ElectionPool::new(group(), 3, 2, b"pool-adv").unwrap();
        let m1 = pool.open_motion().unwrap();
        let m2 = pool.open_motion().unwrap();
        // Corrupting a voter hits every open motion.
        pool.sbc().corrupt(2).unwrap();
        for m in [m1, m2] {
            assert!(matches!(
                pool.vote(m, 2, 0),
                Err(VotingError::Sbc(SbcError::CorruptedParty { party: 2 }))
            ));
        }
        pool.vote(m1, 0, 1).unwrap();
        pool.vote(m1, 1, 0).unwrap();
        pool.vote(m2, 0, 0).unwrap();
        pool.vote(m2, 1, 0).unwrap();
        let r1 = pool.tally_motion(m1).unwrap();
        assert_eq!(r1.counts, vec![1, 1]);
        // A tallied motion is a typed error, as is an unknown one.
        assert!(matches!(
            pool.vote(m1, 0, 0),
            Err(VotingError::Sbc(SbcError::InstanceFinished { .. }))
        ));
        assert!(matches!(
            pool.tally_motion(InstanceId(99)),
            Err(VotingError::Sbc(SbcError::UnknownInstance { instance: 99 }))
        ));
        assert_eq!(pool.tally_motion(m2).unwrap().counts, vec![2, 0]);
    }

    #[test]
    fn foreign_pool_instances_are_not_motions() {
        // An instance opened through the sbc() escape hatch is live in the
        // pool but is not a motion: vote and tally_motion return typed
        // errors (never panic) and leave the foreign instance untouched.
        let mut pool = ElectionPool::new(group(), 3, 2, b"foreign").unwrap();
        let foreign = pool.sbc().open_instance().unwrap();
        assert!(matches!(
            pool.vote(foreign, 0, 0),
            Err(VotingError::Sbc(SbcError::UnknownInstance { .. }))
        ));
        assert!(matches!(
            pool.tally_motion(foreign),
            Err(VotingError::Sbc(SbcError::UnknownInstance { .. }))
        ));
        // The foreign instance is still live and usable through sbc().
        pool.sbc().submit(foreign, 0, b"raw").unwrap();
        assert_eq!(pool.sbc().finish(foreign).unwrap().messages.len(), 1);
        // And a real motion still works alongside it.
        let m = pool.open_motion().unwrap();
        pool.vote(m, 0, 1).unwrap();
        assert_eq!(pool.tally_motion(m).unwrap().counts, vec![0, 1]);
    }

    #[test]
    fn bulletin_board_leaks_partial_tallies() {
        // The fairness failure of the baseline: with 2 of 3 ballots posted,
        // the partial tally is already computable mid-phase.
        let mut bb = BulletinBoardElection::new(group(), 3, 2, b"bb");
        bb.vote(0, 1);
        bb.vote(1, 1);
        let partial = bb.partial_tally().unwrap();
        assert_eq!(partial, vec![0, 2], "partial results leak before close");
    }
}
