//! # sbc-apps
//!
//! The paper's two applications of simultaneous broadcast (§6), both built
//! on the [`sbc_core::api::SbcSession`] public API:
//!
//! * [`durs`] — delayed uniform random string generation (Figs. 15–16,
//!   Theorem 3): an unbiasable XOR randomness beacon, multi-epoch via
//!   [`sbc_core::api::SbcSession::run_epoch`] so one stack serves a whole
//!   beacon schedule. The naive commit-free beacon baseline, with its
//!   last-revealer attack, is included for the comparison experiments.
//! * [`voting_func`] — the ideal voting-system functionality `F_VS` (Fig. 17).
//! * [`voting`] — self-tallying elections (Fig. 18, Theorem 4):
//!   Kiayias–Yung/\[SP15]-style exponent-blinded ballots with disjunctive
//!   Chaum–Pedersen validity proofs, cast through SBC so that no partial
//!   tallies leak and no trusted control voter is needed. The bulletin
//!   board baseline demonstrates the fairness failure SBC removes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durs;
pub mod voting;
pub mod voting_func;
