//! # sbc-tle
//!
//! Time-lock encryption for the `sbc` workspace — the first *adaptively*
//! UC-secure TLE construction (paper §4, Theorem 1), built from the
//! Astrolabous scheme \[ALZ21] over fair broadcast:
//!
//! * [`ciphertext`] — the `(c1, c2, c3)` ciphertext: Astrolabous puzzle of
//!   `ρ`, masked message `M ⊕ H(ρ)`, and binding commitment `H(ρ ‖ M)`.
//! * [`func`] — the functionality `F_TLE(leak, delay)` (Fig. 7) with
//!   `leak(Cl) = Cl + α` and `delay = ∆ + 1`.
//! * [`protocol`] — `Π_TLE` (Fig. 12) with the `ENCRYPT&SOLVE` round
//!   scheduler that shares each round's `q` wrapper batches between fresh
//!   puzzle generation (parallel) and all live puzzle solving (one
//!   sequential link per batch per solver).
//! * [`worlds`] — the Theorem 1 real/ideal experiment worlds and simulator.
//!
//! # Examples
//!
//! ```
//! use sbc_tle::protocol::{difficulty_for, TleParty};
//! use sbc_uc::ids::PartyId;
//! use sbc_primitives::drbg::Drbg;
//!
//! // Encrypt "towards" round 10 from round 0 over a ∆=2 fair broadcast:
//! assert_eq!(difficulty_for(10, 0, 2), 7); // 7 rounds of sequential work
//! let mut party = TleParty::new(PartyId(0), 4, 2, Drbg::from_seed(b"doc"));
//! assert!(party.on_enc(sbc_uc::value::Value::bytes(b"msg"), 10, 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ciphertext;
pub mod func;
pub mod protocol;
pub mod worlds;
