//! The time-lock encryption functionality `F_TLE(leak, delay)` (paper
//! Fig. 7).
//!
//! The functionality records `(M, c, τ, tag, Cl, P)` tuples. Honest
//! encryptions enter with `c = Null`; the simulator supplies ciphertexts
//! via `Update` (it never sees the plaintext before `leak` allows).
//! `Retrieve` returns a party's own encryptions once `delay` rounds old;
//! `Dec` enforces the time-lock (`More_Time` before `τ`), asks the
//! simulator to decrypt unknown (adversarial) ciphertexts, and rejects
//! ambiguous ones.
//!
//! The leakage function is `leak(Cl) = Cl + α`: the adversary may read any
//! recorded plaintext whose decryption time is at most `α` rounds ahead —
//! exactly the head start fair broadcast gives it (Theorem 1).

use sbc_uc::hybrid::HybridCtx;
use sbc_uc::ids::{PartyId, Tag};
use sbc_uc::value::Value;
use std::collections::HashMap;

/// A recorded tuple `(M, c, τ, tag, Cl, P)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TleRecord {
    /// The plaintext.
    pub msg: Value,
    /// The ciphertext (None = `Null`, awaiting the simulator's `Update`).
    pub ct: Option<Value>,
    /// Decryption time.
    pub tau: u64,
    /// Record tag (None for adversarial insertions).
    pub tag: Option<Tag>,
    /// Round of the encryption request.
    pub requested_at: u64,
    /// The encryptor (None for adversarial insertions).
    pub owner: Option<PartyId>,
}

/// Responses of the `Dec` interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecResponse {
    /// The plaintext.
    Message(Value),
    /// `Cl < τ` (or the true decryption time): wait.
    MoreTime,
    /// `Cl ≥ τ_dec > τ`: the claimed time is inconsistent.
    InvalidTime,
    /// Failure (`⊥`): negative time, unknown or ambiguous ciphertext.
    Bottom,
}

impl DecResponse {
    /// Canonical wire encoding of the response.
    pub fn to_value(&self) -> Value {
        match self {
            DecResponse::Message(m) => Value::pair(Value::str("Message"), m.clone()),
            DecResponse::MoreTime => Value::str("More_Time"),
            DecResponse::InvalidTime => Value::str("Invalid_Time"),
            DecResponse::Bottom => Value::str("\u{22a5}"),
        }
    }
}

/// Leak source label for `F_TLE`.
pub const TLE_SOURCE: &str = "F_TLE";

/// The functionality `F_TLE^{leak,delay}(P)`.
///
/// The record set carries three lookup indices so the per-round interfaces
/// stay ~linear in the number of *relevant* records instead of scanning
/// every tuple ever recorded: [`retrieve`](TleFunc::retrieve) walks only
/// the caller's own records (`by_owner`), [`dec_peek`](TleFunc::dec_peek)
/// resolves a ciphertext in O(matching) (`by_ct`, keyed on the canonical
/// ciphertext encoding), and `Update` resolves its tag in O(1)
/// (`by_tag`). Index maintenance is append-only — records are never
/// removed except by [`clear_records`](TleFunc::clear_records), which
/// drops the indices with them — so index vectors stay in record order
/// and every indexed path observes records in exactly the order the old
/// linear scans did.
#[derive(Clone, Debug)]
pub struct TleFunc {
    alpha: u64,
    delay: u64,
    records: Vec<TleRecord>,
    /// Record indices owned by each party, in record order.
    by_owner: HashMap<u32, Vec<usize>>,
    /// Record indices per canonical ciphertext encoding, in record order.
    /// A record enters when its ciphertext is set (at push time for
    /// adversarial/simulator tuples, at `Update`/fill time for honest
    /// ones); a ciphertext is set at most once per record.
    by_ct: HashMap<Vec<u8>, Vec<usize>>,
    /// Record index per honest tag (tags are unique per record).
    by_tag: HashMap<[u8; 16], usize>,
    tag_rng: sbc_primitives::drbg::Drbg,
    /// Stream used to fill ciphertexts the simulator never set (Fig. 7
    /// `Retrieve` step 1); dedicated so simulators can mirror it.
    fill_rng: sbc_primitives::drbg::Drbg,
}

impl TleFunc {
    /// Creates the functionality with `leak(Cl) = Cl + alpha` and the given
    /// ciphertext-generation `delay`.
    pub fn new(alpha: u64, delay: u64, mut tag_rng: sbc_primitives::drbg::Drbg) -> Self {
        let fill_rng = tag_rng.fork(b"fill");
        TleFunc {
            alpha,
            delay,
            records: Vec::new(),
            by_owner: HashMap::new(),
            by_ct: HashMap::new(),
            by_tag: HashMap::new(),
            tag_rng,
            fill_rng,
        }
    }

    /// Indexes record `idx` under its (just set) ciphertext.
    fn index_ct(by_ct: &mut HashMap<Vec<u8>, Vec<usize>>, ct: &Value, idx: usize) {
        by_ct.entry(ct.encode()).or_default().push(idx);
    }

    /// The leakage head start α.
    pub fn alpha(&self) -> u64 {
        self.alpha
    }

    /// The ciphertext-generation delay.
    pub fn delay(&self) -> u64 {
        self.delay
    }

    /// All records (simulator view).
    pub fn records(&self) -> &[TleRecord] {
        &self.records
    }

    /// Drops every recorded tuple. Used by multi-epoch drivers when a
    /// broadcast period is fully released: keeping the dead records would
    /// only grow `Retrieve`/`Dec` scans without changing any output.
    pub fn clear_records(&mut self) {
        self.records.clear();
        self.by_owner.clear();
        self.by_ct.clear();
        self.by_tag.clear();
    }

    /// `Enc` from an honest party. Returns the tag, or `None` for `τ < 0`
    /// (the caller translates to `⊥`). Leaks `(Enc, τ, tag, Cl, 0^|M|, P)`
    /// to the adversary (Fig. 7).
    pub fn enc(
        &mut self,
        party: PartyId,
        msg: Value,
        tau: i64,
        ctx: &mut HybridCtx<'_>,
    ) -> Option<Tag> {
        if tau < 0 {
            return None;
        }
        let tag = Tag::random(&mut self.tag_rng);
        let msg_len = msg.encode().len();
        let idx = self.records.len();
        self.records.push(TleRecord {
            msg,
            ct: None,
            tau: tau as u64,
            tag: Some(tag),
            requested_at: ctx.time(),
            owner: Some(party),
        });
        self.by_owner.entry(party.0).or_default().push(idx);
        self.by_tag.insert(tag.0, idx);
        ctx.leak(
            TLE_SOURCE,
            sbc_uc::value::Command::new(
                "Enc",
                Value::list([
                    Value::U64(tau as u64),
                    Value::bytes(tag.as_bytes()),
                    Value::U64(ctx.time()),
                    Value::U64(msg_len as u64),
                    Value::U64(party.0 as u64),
                ]),
            ),
        );
        Some(tag)
    }

    /// `Update` from the simulator: attaches ciphertexts to `Null` records.
    pub fn update_ciphertexts(&mut self, updates: &[(Value, Tag)]) {
        for (ct, tag) in updates {
            let Some(&idx) = self.by_tag.get(&tag.0) else {
                continue;
            };
            let rec = &mut self.records[idx];
            if rec.ct.is_none() {
                rec.ct = Some(ct.clone());
                Self::index_ct(&mut self.by_ct, ct, idx);
            }
        }
    }

    /// `Update` from the simulator: inserts decrypted adversarial tuples.
    pub fn insert_adversarial(&mut self, ct: Value, msg: Value, tau: u64) {
        let idx = self.records.len();
        Self::index_ct(&mut self.by_ct, &ct, idx);
        self.records.push(TleRecord {
            msg,
            ct: Some(ct),
            tau,
            tag: None,
            requested_at: 0,
            owner: None,
        });
    }

    /// `Retrieve` from `party`: its own encryptions at least `delay` rounds
    /// old, as `(M, c, τ)` triples. Records whose ciphertext the simulator
    /// never set are filled with functionality-sampled randomness (Fig. 7
    /// step 1 of `Retrieve`).
    pub fn retrieve(
        &mut self,
        party: PartyId,
        ctx: &mut HybridCtx<'_>,
    ) -> Vec<(Value, Value, u64)> {
        let now = ctx.time();
        let mut out = Vec::new();
        // Only the caller's own records are visited — record order is
        // preserved because the owner index is append-ordered.
        let indices = self.by_owner.get(&party.0).cloned().unwrap_or_default();
        for idx in indices {
            let rec = &mut self.records[idx];
            if now.saturating_sub(rec.requested_at) < self.delay {
                continue;
            }
            let filled = rec.ct.is_none();
            let fill = &mut self.fill_rng;
            let ct = rec
                .ct
                .get_or_insert_with(|| Value::bytes(fill.gen_bytes(64)))
                .clone();
            if filled {
                Self::index_ct(&mut self.by_ct, &ct, idx);
            }
            out.push((rec.msg.clone(), ct, rec.tau));
        }
        out
    }

    /// `Dec` for a known ciphertext; returns `None` when the functionality
    /// must ask the simulator (unknown ciphertext).
    pub fn dec(&mut self, ct: &Value, tau: i64, ctx: &HybridCtx<'_>) -> Option<DecResponse> {
        self.dec_peek(ct, tau, ctx.time())
    }

    /// Read-only `Dec`: byte-identical to [`dec`](TleFunc::dec) (which
    /// delegates here) but usable from a shared reference at a caller-
    /// supplied clock reading. `Dec` never mutates the record set, so
    /// parallel per-party release compute can run it against an immutable
    /// snapshot of the functionality.
    ///
    /// This form encodes the ciphertext before probing; callers holding the
    /// canonical encoding already (the release pipeline caches it per
    /// received wire) use [`dec_peek_encoded`](TleFunc::dec_peek_encoded)
    /// directly and skip the re-encode.
    pub fn dec_peek(&self, ct: &Value, tau: i64, now: u64) -> Option<DecResponse> {
        self.dec_peek_encoded(&ct.encode(), tau, now)
    }

    /// [`dec_peek`](TleFunc::dec_peek) keyed on the **pre-encoded**
    /// canonical ciphertext bytes — the allocation-free probe behind both
    /// `Dec` forms. The index map is keyed on canonical encodings, so a
    /// borrowed `&[u8]` probes it directly; the candidate records are
    /// visited through the index vector without collecting them, so a
    /// probe allocates nothing beyond the response it returns. The release
    /// pipeline encodes each received ciphertext once (at wire-log
    /// insertion) and probes with the cached bytes instead of re-encoding
    /// the same `Value` once per (party, sender) pair per release round.
    pub fn dec_peek_encoded(&self, ct_enc: &[u8], tau: i64, now: u64) -> Option<DecResponse> {
        if tau < 0 {
            return Some(DecResponse::Bottom);
        }
        let tau = tau as u64;
        if now < tau {
            return Some(DecResponse::MoreTime);
        }
        // O(matching) by-ciphertext lookup; the index vector is in record
        // order, so the probe sees exactly the old linear scan's view.
        let indices: &[usize] = match self.by_ct.get(ct_enc) {
            Some(v) => v,
            None => &[],
        };
        let Some(&first_idx) = indices.first() else {
            return None; // ask the simulator
        };
        let first = &self.records[first_idx];
        // Ambiguity: two different plaintexts for one ciphertext.
        if indices.iter().any(|&i| {
            let r = &self.records[i];
            r.msg != first.msg && tau >= r.tau.max(first.tau)
        }) {
            return Some(DecResponse::Bottom);
        }
        if tau >= first.tau {
            Some(DecResponse::Message(first.msg.clone()))
        } else if now < first.tau {
            Some(DecResponse::MoreTime)
        } else {
            Some(DecResponse::InvalidTime)
        }
    }

    /// Records the simulator's answer for an unknown ciphertext and returns
    /// the response (Fig. 7 `Dec`, "no tuple recorded" branch).
    pub fn dec_with_simulator_answer(&mut self, ct: Value, tau: u64, msg: Value) -> DecResponse {
        let idx = self.records.len();
        Self::index_ct(&mut self.by_ct, &ct, idx);
        self.records.push(TleRecord {
            msg: msg.clone(),
            ct: Some(ct),
            tau,
            tag: None,
            requested_at: 0,
            owner: None,
        });
        DecResponse::Message(msg)
    }

    /// `Leakage` to the simulator: every `(M, c, τ)` with `τ ≤ leak(Cl)`,
    /// plus all records of corrupted owners.
    pub fn leakage(&self, ctx: &HybridCtx<'_>) -> Vec<TleRecord> {
        let horizon = ctx.time() + self.alpha;
        self.records
            .iter()
            .filter(|r| r.tau <= horizon || r.owner.map(|p| ctx.is_corrupted(p)).unwrap_or(false))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_primitives::drbg::Drbg;
    use sbc_uc::clock::GlobalClock;
    use sbc_uc::corruption::CorruptionTracker;

    struct Fx {
        clock: GlobalClock,
        rng: Drbg,
        leaks: Vec<sbc_uc::world::Leak>,
        corr: CorruptionTracker,
    }

    impl Fx {
        fn new(n: usize) -> Self {
            Fx {
                clock: GlobalClock::new(PartyId::all(n)),
                rng: Drbg::from_seed(b"ftle"),
                leaks: Vec::new(),
                corr: CorruptionTracker::new(n),
            }
        }
        fn ctx(&mut self) -> HybridCtx<'_> {
            HybridCtx {
                clock: &mut self.clock,
                rng: &mut self.rng,
                leaks: &mut self.leaks,
                corr: &mut self.corr,
            }
        }
        fn tick(&mut self, n: usize) {
            for i in 0..n {
                self.clock.advance_party(PartyId(i as u32));
            }
        }
    }

    fn func() -> TleFunc {
        // leak(Cl) = Cl + 2, delay = 3 (the ∆=2 instantiation of Thm. 1).
        TleFunc::new(2, 3, Drbg::from_seed(b"ftle-tags"))
    }

    #[test]
    fn negative_tau_rejected() {
        let mut fx = Fx::new(1);
        let mut f = func();
        assert!(f
            .enc(PartyId(0), Value::U64(1), -1, &mut fx.ctx())
            .is_none());
        assert_eq!(
            f.dec(&Value::bytes(b"c"), -5, &fx.ctx()),
            Some(DecResponse::Bottom)
        );
    }

    #[test]
    fn retrieve_respects_delay_and_ownership() {
        let mut fx = Fx::new(2);
        let mut f = func();
        let tag = f
            .enc(PartyId(0), Value::bytes(b"m"), 10, &mut fx.ctx())
            .unwrap();
        f.update_ciphertexts(&[(Value::bytes(b"ct"), tag)]);
        assert!(
            f.retrieve(PartyId(0), &mut fx.ctx()).is_empty(),
            "before delay"
        );
        for _ in 0..3 {
            fx.tick(2);
        }
        let r = f.retrieve(PartyId(0), &mut fx.ctx());
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, Value::bytes(b"m"));
        assert_eq!(r[0].1, Value::bytes(b"ct"));
        assert!(
            f.retrieve(PartyId(1), &mut fx.ctx()).is_empty(),
            "not the owner"
        );
    }

    #[test]
    fn retrieve_fills_missing_ciphertexts() {
        let mut fx = Fx::new(1);
        let mut f = func();
        f.enc(PartyId(0), Value::U64(1), 10, &mut fx.ctx()).unwrap();
        for _ in 0..3 {
            fx.tick(1);
        }
        let r = f.retrieve(PartyId(0), &mut fx.ctx());
        assert_eq!(r.len(), 1);
        assert!(
            r[0].1.as_bytes().is_some(),
            "functionality sampled a ciphertext"
        );
    }

    #[test]
    fn dec_time_lock_enforced() {
        let mut fx = Fx::new(1);
        let mut f = func();
        let tag = f
            .enc(PartyId(0), Value::bytes(b"secret"), 2, &mut fx.ctx())
            .unwrap();
        let ct = Value::bytes(b"ct");
        f.update_ciphertexts(&[(ct.clone(), tag)]);
        assert_eq!(
            f.dec(&ct, 2, &fx.ctx()),
            Some(DecResponse::MoreTime),
            "Cl=0 < τ=2"
        );
        fx.tick(1);
        fx.tick(1);
        assert_eq!(
            f.dec(&ct, 2, &fx.ctx()),
            Some(DecResponse::Message(Value::bytes(b"secret")))
        );
    }

    #[test]
    fn dec_invalid_time() {
        let mut fx = Fx::new(1);
        let mut f = func();
        let tag = f.enc(PartyId(0), Value::U64(1), 2, &mut fx.ctx()).unwrap();
        let ct = Value::bytes(b"ct");
        f.update_ciphertexts(&[(ct.clone(), tag)]);
        fx.tick(1);
        fx.tick(1);
        fx.tick(1);
        // Claimed τ=1 < true τ_dec=2 ≤ Cl=3 → Invalid_Time.
        assert_eq!(f.dec(&ct, 1, &fx.ctx()), Some(DecResponse::InvalidTime));
    }

    #[test]
    fn unknown_ciphertext_asks_simulator() {
        let mut fx = Fx::new(1);
        let mut f = func();
        let ct = Value::bytes(b"adversarial");
        assert_eq!(f.dec(&ct, 0, &fx.ctx()), None);
        let resp = f.dec_with_simulator_answer(ct.clone(), 0, Value::bytes(b"extracted"));
        assert_eq!(resp, DecResponse::Message(Value::bytes(b"extracted")));
        // Now recorded: future decs answer directly.
        assert_eq!(
            f.dec(&ct, 0, &fx.ctx()),
            Some(DecResponse::Message(Value::bytes(b"extracted")))
        );
    }

    #[test]
    fn ambiguous_ciphertext_rejected() {
        let mut fx = Fx::new(1);
        let mut f = func();
        let ct = Value::bytes(b"dup");
        f.insert_adversarial(ct.clone(), Value::U64(1), 0);
        f.insert_adversarial(ct.clone(), Value::U64(2), 0);
        assert_eq!(f.dec(&ct, 0, &fx.ctx()), Some(DecResponse::Bottom));
    }

    #[test]
    fn leakage_respects_horizon() {
        let mut fx = Fx::new(2);
        let mut f = func(); // α = 2
        f.enc(PartyId(0), Value::bytes(b"near"), 2, &mut fx.ctx())
            .unwrap();
        f.enc(PartyId(0), Value::bytes(b"far"), 9, &mut fx.ctx())
            .unwrap();
        f.enc(
            PartyId(1),
            Value::bytes(b"corrupted-owner"),
            9,
            &mut fx.ctx(),
        )
        .unwrap();
        fx.corr.corrupt(PartyId(1), 0).unwrap();
        let ctx = fx.ctx();
        let leaked = f.leakage(&ctx);
        // τ=2 ≤ 0+2 leaks; τ=9 doesn't; corrupted owner's does.
        assert_eq!(leaked.len(), 2);
        assert!(leaked.iter().any(|r| r.msg == Value::bytes(b"near")));
        assert!(leaked
            .iter()
            .any(|r| r.msg == Value::bytes(b"corrupted-owner")));
    }

    #[test]
    fn indexes_track_fill_update_and_clear() {
        let mut fx = Fx::new(2);
        let mut f = func();
        // Honest record, ciphertext attached by Update: dec resolves via
        // the by-ct index.
        let tag = f
            .enc(PartyId(0), Value::bytes(b"m0"), 0, &mut fx.ctx())
            .unwrap();
        f.update_ciphertexts(&[(Value::bytes(b"ct0"), tag)]);
        // A second Update on the same tag must not re-index or overwrite.
        f.update_ciphertexts(&[(Value::bytes(b"ct-other"), tag)]);
        assert_eq!(
            f.dec(&Value::bytes(b"ct0"), 0, &fx.ctx()),
            Some(DecResponse::Message(Value::bytes(b"m0")))
        );
        assert_eq!(f.dec(&Value::bytes(b"ct-other"), 0, &fx.ctx()), None);
        // Honest record whose ciphertext the functionality fills at
        // Retrieve time: the filled ciphertext becomes decryptable.
        f.enc(PartyId(1), Value::bytes(b"m1"), 0, &mut fx.ctx())
            .unwrap();
        for _ in 0..3 {
            fx.tick(2);
        }
        let filled = f.retrieve(PartyId(1), &mut fx.ctx());
        assert_eq!(filled.len(), 1);
        let filled_ct = filled[0].1.clone();
        assert_eq!(
            f.dec(&filled_ct, 0, &fx.ctx()),
            Some(DecResponse::Message(Value::bytes(b"m1")))
        );
        // clear_records drops the indices with the records: the old
        // ciphertexts become unknown again and retrieval is empty.
        f.clear_records();
        assert_eq!(f.dec(&Value::bytes(b"ct0"), 0, &fx.ctx()), None);
        assert_eq!(f.dec(&filled_ct, 0, &fx.ctx()), None);
        assert!(f.retrieve(PartyId(1), &mut fx.ctx()).is_empty());
        // Fresh records after a clear index from scratch.
        f.insert_adversarial(Value::bytes(b"ct2"), Value::U64(7), 0);
        assert_eq!(
            f.dec(&Value::bytes(b"ct2"), 0, &fx.ctx()),
            Some(DecResponse::Message(Value::U64(7)))
        );
    }

    #[test]
    fn encoded_probe_matches_value_probe_on_every_branch() {
        // dec_peek delegates to dec_peek_encoded; a caller probing with the
        // cached canonical encoding must see the same response as one
        // probing with the Value, on every response branch — that is what
        // licenses the release pipeline to encode each received ciphertext
        // exactly once (at wire-log insertion) instead of once per
        // (party, sender) probe.
        let mut fx = Fx::new(1);
        let mut f = func();
        let known = Value::bytes(b"known-ct");
        f.insert_adversarial(known.clone(), Value::bytes(b"m"), 2);
        let dup = Value::bytes(b"dup-ct");
        f.insert_adversarial(dup.clone(), Value::U64(1), 0);
        f.insert_adversarial(dup.clone(), Value::U64(2), 0);
        let unknown = Value::bytes(b"unknown-ct");
        for _ in 0..3 {
            fx.tick(1);
        }
        let now = fx.clock.read();
        let cases: [(&Value, i64); 6] = [
            (&known, -1),             // Bottom (negative τ)
            (&known, now as i64 + 1), // MoreTime (Cl < τ)
            (&known, 2),              // Message
            (&known, 1),              // InvalidTime (τ < τ_dec ≤ Cl)
            (&dup, 0),                // Bottom (ambiguous)
            (&unknown, 0),            // None (ask the simulator)
        ];
        for (ct, tau) in cases {
            let enc = ct.encode();
            assert_eq!(
                f.dec_peek_encoded(&enc, tau, now),
                f.dec_peek(ct, tau, now),
                "ct={ct:?} tau={tau}"
            );
        }
        // The probe key is borrowed: a plain byte slice (no owned Vec key,
        // no Value round-trip) resolves against the canonical-encoding map.
        let enc = known.encode();
        let borrowed: &[u8] = &enc;
        assert_eq!(
            f.dec_peek_encoded(borrowed, 2, now),
            Some(DecResponse::Message(Value::bytes(b"m")))
        );
    }

    #[test]
    fn dec_response_encodings_distinct() {
        let vals = [
            DecResponse::Message(Value::U64(1)).to_value(),
            DecResponse::MoreTime.to_value(),
            DecResponse::InvalidTime.to_value(),
            DecResponse::Bottom.to_value(),
        ];
        for i in 0..vals.len() {
            for j in i + 1..vals.len() {
                assert_ne!(vals[i], vals[j]);
            }
        }
    }
}
