//! The adaptively secure TLE protocol `Π_TLE` (paper Fig. 12) over fair
//! broadcast.
//!
//! An encryptor turns `Enc(M, τ)` into a ciphertext `(c1, c2, c3)` with
//! time-lock difficulty `τ_dec = τ − (Cl + ∆ + 1)` and broadcasts `(c, τ)`
//! through `F_FBC`; every party starts solving every received puzzle
//! immediately, spending its `q` wrapper batches per round across all live
//! solvers plus its own fresh encryptions (`ENCRYPT&SOLVE`). The `c3`
//! commitment `H(ρ ‖ M)` is rechecked at decryption so adversarial
//! ciphertexts bind to one plaintext.

use crate::ciphertext::{tle_wire, TleCiphertext};
use crate::func::DecResponse;
use sbc_primitives::astrolabous::{ast_dec, ast_enc_with_hashes, xor_mask};
use sbc_primitives::drbg::Drbg;
use sbc_primitives::hashchain::{ChainSolver, Element};
use sbc_uc::ids::PartyId;
use sbc_uc::ro::{Caller, RandomOracle};
use sbc_uc::value::Value;
use sbc_uc::wrapper::{QueryWrapper, WrapperClient};

/// An `L_rec` entry.
#[derive(Clone, Debug)]
struct RecEntry {
    msg: Value,
    ct: Option<TleCiphertext>,
    tau: u64,
    enc_round: u64,
    broadcast: bool,
}

/// An `L_puzzle` entry.
#[derive(Clone, Debug)]
struct PuzzleEntry {
    ct: TleCiphertext,
    tau: u64,
    solver: ChainSolver,
}

/// Per-party state of `Π_TLE`.
#[derive(Clone, Debug)]
pub struct TleParty {
    id: PartyId,
    q: u32,
    delta: u64,
    rng: Drbg,
    rec: Vec<RecEntry>,
    puzzles: Vec<PuzzleEntry>,
    last_advance: Option<u64>,
}

/// Computes the difficulty for a requested decryption time (Fig. 12
/// `ENCRYPT&SOLVE` step 1a, clamped to at least one round).
pub fn difficulty_for(tau: u64, now: u64, delta: u64) -> u64 {
    tau.saturating_sub(now + delta + 1).max(1)
}

impl TleParty {
    /// Creates party state over an `F_FBC(∆, ·)` channel with `q` wrapper
    /// batches per round.
    pub fn new(id: PartyId, q: u32, delta: u64, rng: Drbg) -> Self {
        TleParty {
            id,
            q,
            delta,
            rng,
            rec: Vec::new(),
            puzzles: Vec::new(),
            last_advance: None,
        }
    }

    /// The party identity.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// `Enc(M, τ)` input. Returns `false` for `τ < 0` (caller outputs `⊥`).
    pub fn on_enc(&mut self, msg: Value, tau: i64, now: u64) -> bool {
        if tau < 0 {
            return false;
        }
        self.rec.push(RecEntry {
            msg,
            ct: None,
            tau: tau as u64,
            enc_round: now,
            broadcast: false,
        });
        true
    }

    /// Registers a `(c, τ)` pair delivered by fair broadcast (Fig. 12
    /// `Advance_Clock` step 2): starts a solver for its puzzle.
    pub fn on_fbc_deliver(&mut self, ct: TleCiphertext, tau: u64) {
        if let Ok(solver) = ChainSolver::new(&ct.c1.chain) {
            self.puzzles.push(PuzzleEntry { ct, tau, solver });
        }
    }

    /// Number of puzzles currently being solved (unsolved).
    pub fn unsolved(&self) -> usize {
        self.puzzles.iter().filter(|p| !p.solver.is_done()).count()
    }

    /// The `ENCRYPT&SOLVE` procedure plus broadcast staging (Fig. 12
    /// `Advance_Clock` steps 3–4). Returns the `(c, τ)` wires to hand to
    /// fair broadcast.
    pub fn encrypt_and_solve(
        &mut self,
        now: u64,
        wrapper: &mut QueryWrapper,
        ro_star: &mut RandomOracle,
        ro: &mut RandomOracle,
        client: WrapperClient,
    ) -> Vec<Value> {
        if self.last_advance == Some(now) {
            return Vec::new();
        }
        self.last_advance = Some(now);

        // Step 1: chain randomness for every unencrypted record.
        let todo: Vec<usize> = (0..self.rec.len())
            .filter(|&i| self.rec[i].ct.is_none())
            .collect();
        let rand_sets: Vec<Vec<Element>> = todo
            .iter()
            .map(|&i| {
                let tau_dec = difficulty_for(self.rec[i].tau, now, self.delta);
                let len = (tau_dec * self.q as u64) as usize;
                (0..len)
                    .map(|_| {
                        let b = self.rng.gen_bytes(32);
                        let mut e = [0u8; 32];
                        e.copy_from_slice(&b);
                        e
                    })
                    .collect()
            })
            .collect();
        let mut hash_sets: Vec<Vec<Element>> = vec![Vec::new(); todo.len()];

        // Step 2: the q batches — puzzle generation is parallel (Q_0);
        // solving is one sequential link per live solver per batch.
        enum Slot {
            Enc(usize),
            Solve(usize),
        }
        for j in 0..self.q {
            let mut batch: Vec<Vec<u8>> = Vec::new();
            let mut slots: Vec<Slot> = Vec::new();
            if j == 0 {
                for (ti, rs) in rand_sets.iter().enumerate() {
                    for r in rs {
                        batch.push(r.to_vec());
                        slots.push(Slot::Enc(ti));
                    }
                }
            }
            for (pi, p) in self.puzzles.iter().enumerate() {
                if !p.solver.is_done() {
                    if let Some(qr) = p.solver.next_query() {
                        batch.push(qr.to_vec());
                        slots.push(Slot::Solve(pi));
                    }
                }
            }
            if batch.is_empty() {
                continue;
            }
            let Ok(responses) = wrapper.evaluate(ro_star, now, client, &batch) else {
                return Vec::new();
            };
            for (slot, resp) in slots.into_iter().zip(responses) {
                match slot {
                    Slot::Enc(ti) => hash_sets[ti].push(resp),
                    Slot::Solve(pi) => {
                        self.puzzles[pi].solver.feed(resp);
                    }
                }
            }
        }

        // Step 3: build ciphertexts for the fresh encryptions.
        for (k, &i) in todo.iter().enumerate() {
            let tau_dec = difficulty_for(self.rec[i].tau, now, self.delta);
            let rho = self.rng.gen_bytes(32);
            let c1 =
                ast_enc_with_hashes(&rho, tau_dec, &rand_sets[k], &hash_sets[k], &mut self.rng);
            let caller = match client {
                WrapperClient::Party(p) => Caller::Party(p),
                WrapperClient::Corrupted => Caller::Adversary,
            };
            let eta = ro.query(caller, &rho);
            let m_bytes = self.rec[i].msg.encode();
            let c2 = xor_mask(&eta, &m_bytes);
            let mut commit_in = rho.clone();
            commit_in.extend_from_slice(&m_bytes);
            let c3 = ro.query(caller, &commit_in);
            self.rec[i].ct = Some(TleCiphertext { c1, c2, c3 });
        }

        // Step 4: stage broadcasts for everything encrypted but unsent.
        let mut wires = Vec::new();
        for rec in self.rec.iter_mut() {
            if let Some(ct) = &rec.ct {
                if !rec.broadcast {
                    rec.broadcast = true;
                    wires.push(tle_wire(ct, rec.tau));
                }
            }
        }
        wires
    }

    /// `Retrieve` input: own `(M, c, τ)` triples at least `∆ + 1` rounds
    /// old (Fig. 12 `Retrieve`).
    pub fn retrieve(&self, now: u64) -> Vec<(Value, Value, u64)> {
        self.rec
            .iter()
            .filter(|r| r.broadcast && now.saturating_sub(r.enc_round) > self.delta)
            .filter_map(|r| {
                r.ct.as_ref()
                    .map(|ct| (r.msg.clone(), ct.to_value(), r.tau))
            })
            .collect()
    }

    /// `Dec(c, τ)` input (Fig. 12 `Dec`).
    pub fn dec(&self, ct_value: &Value, tau: i64, now: u64, ro: &mut RandomOracle) -> DecResponse {
        if tau < 0 {
            return DecResponse::Bottom;
        }
        let tau = tau as u64;
        if now < tau {
            return DecResponse::MoreTime;
        }
        let Some(ct) = TleCiphertext::from_value(ct_value) else {
            return DecResponse::Bottom;
        };
        let Some(entry) = self.puzzles.iter().find(|p| p.ct == ct) else {
            return DecResponse::Bottom;
        };
        // Fig. 12 Dec step 5a: a claimed time below the recorded decryption
        // time is More_Time while that time is ahead, Invalid_Time once it
        // has passed.
        if tau < entry.tau {
            return if now < entry.tau {
                DecResponse::MoreTime
            } else {
                DecResponse::InvalidTime
            };
        }
        if !entry.solver.is_done() {
            // Adversarially over-hard puzzle: the witness does not exist yet.
            return DecResponse::MoreTime;
        }
        let Ok(rho) = ast_dec(&ct.c1, entry.solver.witness()) else {
            return DecResponse::Bottom;
        };
        let eta = ro.query(Caller::Party(self.id), &rho);
        let m_bytes = xor_mask(&eta, &ct.c2);
        let mut commit_in = rho.clone();
        commit_in.extend_from_slice(&m_bytes);
        let c3_check = ro.query(Caller::Party(self.id), &commit_in);
        if c3_check != ct.c3 {
            return DecResponse::Bottom;
        }
        match Value::decode(&m_bytes) {
            Some(m) => DecResponse::Message(m),
            None => DecResponse::Message(Value::Bytes(m_bytes)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ciphertext::parse_tle_wire;

    const Q: u32 = 3;
    const DELTA: u64 = 2;

    fn party(i: u32) -> TleParty {
        TleParty::new(
            PartyId(i),
            Q,
            DELTA,
            Drbg::from_seed(format!("p{i}").as_bytes()),
        )
    }

    fn oracles() -> (QueryWrapper, RandomOracle, RandomOracle) {
        (
            QueryWrapper::new(Q),
            RandomOracle::new(Drbg::from_seed(b"star")),
            RandomOracle::new(Drbg::from_seed(b"fro")),
        )
    }

    #[test]
    fn difficulty_formula() {
        assert_eq!(difficulty_for(10, 0, 2), 7);
        assert_eq!(difficulty_for(3, 0, 2), 1, "clamped to one round");
        assert_eq!(difficulty_for(0, 5, 2), 1);
    }

    #[test]
    fn enc_produces_wire_with_correct_difficulty() {
        let (mut w, mut rs, mut ro) = oracles();
        let mut p = party(0);
        assert!(p.on_enc(Value::bytes(b"msg"), 10, 0));
        let wires = p.encrypt_and_solve(
            0,
            &mut w,
            &mut rs,
            &mut ro,
            WrapperClient::Party(PartyId(0)),
        );
        assert_eq!(wires.len(), 1);
        let (ct, tau) = parse_tle_wire(&wires[0]).unwrap();
        assert_eq!(tau, 10);
        assert_eq!(ct.c1.tau_dec, 7);
        assert_eq!(ct.c1.chain.len(), (7 * Q as u64 + 1) as usize);
    }

    #[test]
    fn negative_tau_rejected() {
        let mut p = party(0);
        assert!(!p.on_enc(Value::U64(1), -1, 0));
    }

    #[test]
    fn end_to_end_solve_and_dec() {
        let (mut w, mut rs, mut ro) = oracles();
        let mut alice = party(0);
        let mut bob = party(1);
        let tau = 6i64; // now=0, ∆=2 → τ_dec = 3
        alice.on_enc(Value::bytes(b"time capsule"), tau, 0);
        let wires = alice.encrypt_and_solve(
            0,
            &mut w,
            &mut rs,
            &mut ro,
            WrapperClient::Party(PartyId(0)),
        );
        let (ct, t) = parse_tle_wire(&wires[0]).unwrap();
        // Delivered to Bob ∆ = 2 rounds later:
        bob.on_fbc_deliver(ct.clone(), t);
        // Before τ: More_Time regardless of solving state.
        assert_eq!(
            bob.dec(&ct.to_value(), tau, 2, &mut ro),
            DecResponse::MoreTime
        );
        // Solve: τ_dec = 3 rounds of q batches.
        for round in 2..5 {
            bob.encrypt_and_solve(
                round,
                &mut w,
                &mut rs,
                &mut ro,
                WrapperClient::Party(PartyId(1)),
            );
        }
        assert_eq!(bob.unsolved(), 0);
        assert_eq!(
            bob.dec(&ct.to_value(), tau, tau as u64, &mut ro),
            DecResponse::Message(Value::bytes(b"time capsule"))
        );
    }

    #[test]
    fn solving_takes_exactly_tau_dec_rounds() {
        let (mut w, mut rs, mut ro) = oracles();
        let mut alice = party(0);
        let mut bob = party(1);
        alice.on_enc(Value::U64(7), 10, 0); // τ_dec = 7
        let wires = alice.encrypt_and_solve(
            0,
            &mut w,
            &mut rs,
            &mut ro,
            WrapperClient::Party(PartyId(0)),
        );
        let (ct, t) = parse_tle_wire(&wires[0]).unwrap();
        bob.on_fbc_deliver(ct, t);
        let mut rounds = 0;
        let mut round = 2;
        while bob.unsolved() > 0 {
            bob.encrypt_and_solve(
                round,
                &mut w,
                &mut rs,
                &mut ro,
                WrapperClient::Party(PartyId(1)),
            );
            round += 1;
            rounds += 1;
            assert!(rounds <= 8, "should finish in τ_dec = 7 rounds");
        }
        assert_eq!(rounds, 7);
    }

    #[test]
    fn concurrent_puzzles_share_budget() {
        // Two puzzles of difficulty 2 received in the same round both
        // complete after 2 rounds (each batch steps both solvers).
        let (mut w, mut rs, mut ro) = oracles();
        let mut alice = party(0);
        let mut bob = party(1);
        alice.on_enc(Value::U64(1), 5, 0);
        alice.on_enc(Value::U64(2), 5, 0);
        let wires = alice.encrypt_and_solve(
            0,
            &mut w,
            &mut rs,
            &mut ro,
            WrapperClient::Party(PartyId(0)),
        );
        assert_eq!(wires.len(), 2);
        for wtp in &wires {
            let (ct, t) = parse_tle_wire(wtp).unwrap();
            bob.on_fbc_deliver(ct, t);
        }
        bob.encrypt_and_solve(
            2,
            &mut w,
            &mut rs,
            &mut ro,
            WrapperClient::Party(PartyId(1)),
        );
        assert_eq!(bob.unsolved(), 2, "difficulty 2: one round is not enough");
        bob.encrypt_and_solve(
            3,
            &mut w,
            &mut rs,
            &mut ro,
            WrapperClient::Party(PartyId(1)),
        );
        assert_eq!(bob.unsolved(), 0);
    }

    #[test]
    fn retrieve_after_delta_plus_one() {
        let (mut w, mut rs, mut ro) = oracles();
        let mut p = party(0);
        p.on_enc(Value::bytes(b"mine"), 9, 0);
        p.encrypt_and_solve(
            0,
            &mut w,
            &mut rs,
            &mut ro,
            WrapperClient::Party(PartyId(0)),
        );
        assert!(p.retrieve(DELTA).is_empty(), "too early");
        let r = p.retrieve(DELTA + 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, Value::bytes(b"mine"));
        assert_eq!(r[0].2, 9);
    }

    #[test]
    fn tampered_commitment_rejected() {
        let (mut w, mut rs, mut ro) = oracles();
        let mut alice = party(0);
        let mut bob = party(1);
        alice.on_enc(Value::U64(5), 5, 0);
        let wires = alice.encrypt_and_solve(
            0,
            &mut w,
            &mut rs,
            &mut ro,
            WrapperClient::Party(PartyId(0)),
        );
        let (mut ct, t) = parse_tle_wire(&wires[0]).unwrap();
        ct.c3[0] ^= 1;
        bob.on_fbc_deliver(ct.clone(), t);
        for round in 2..4 {
            bob.encrypt_and_solve(
                round,
                &mut w,
                &mut rs,
                &mut ro,
                WrapperClient::Party(PartyId(1)),
            );
        }
        assert_eq!(bob.dec(&ct.to_value(), 5, 5, &mut ro), DecResponse::Bottom);
    }

    #[test]
    fn unknown_ciphertext_bottom() {
        let (_, _, mut ro) = oracles();
        let p = party(0);
        assert_eq!(
            p.dec(&Value::bytes(b"unknown"), 0, 1, &mut ro),
            DecResponse::Bottom
        );
        assert_eq!(
            p.dec(&Value::bytes(b"x"), -2, 1, &mut ro),
            DecResponse::Bottom
        );
    }
}
