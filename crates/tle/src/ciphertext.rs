//! The Π_TLE ciphertext `c = (c1, c2, c3)` (paper Fig. 12).
//!
//! * `c1` — the Astrolabous time-lock encryption of a random value `ρ`;
//! * `c2` — the message masked with `η = F_RO(ρ)`;
//! * `c3` — the commitment `F_RO(ρ ‖ M)` checked at decryption (this is
//!   what makes adversarial ciphertexts bind to a unique plaintext).

use sbc_primitives::astrolabous::AstCiphertext;
use sbc_uc::value::Value;
use std::fmt;

/// A Π_TLE ciphertext.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TleCiphertext {
    /// Time-lock encryption of `ρ`.
    pub c1: AstCiphertext,
    /// `M ⊕ H(ρ)` (keystream-expanded).
    pub c2: Vec<u8>,
    /// `H(ρ ‖ M)` commitment.
    pub c3: [u8; 32],
}

impl fmt::Debug for TleCiphertext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TleCiphertext({:?}, |c2|={}B)", self.c1, self.c2.len())
    }
}

impl TleCiphertext {
    /// Serializes the ciphertext.
    pub fn to_bytes(&self) -> Vec<u8> {
        let c1 = self.c1.to_bytes();
        let mut out = Vec::with_capacity(8 + c1.len() + 8 + self.c2.len() + 32);
        out.extend_from_slice(&(c1.len() as u64).to_be_bytes());
        out.extend_from_slice(&c1);
        out.extend_from_slice(&(self.c2.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.c2);
        out.extend_from_slice(&self.c3);
        out
    }

    /// Parses a serialized ciphertext.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let read_u64 = |b: &[u8], pos: &mut usize| -> Option<u64> {
            let v = u64::from_be_bytes(b.get(*pos..*pos + 8)?.try_into().ok()?);
            *pos += 8;
            Some(v)
        };
        let c1_len = read_u64(bytes, &mut pos)? as usize;
        if c1_len > bytes.len() {
            return None;
        }
        let c1 = AstCiphertext::from_bytes(bytes.get(pos..pos + c1_len)?)?;
        pos += c1_len;
        let c2_len = read_u64(bytes, &mut pos)? as usize;
        if c2_len > bytes.len() {
            return None;
        }
        let c2 = bytes.get(pos..pos + c2_len)?.to_vec();
        pos += c2_len;
        let c3: [u8; 32] = bytes.get(pos..pos + 32)?.try_into().ok()?;
        pos += 32;
        if pos != bytes.len() {
            return None;
        }
        Some(TleCiphertext { c1, c2, c3 })
    }

    /// Wraps the ciphertext as a [`Value`] (for wires and responses).
    pub fn to_value(&self) -> Value {
        Value::bytes(self.to_bytes())
    }

    /// Unwraps a [`Value`] ciphertext.
    pub fn from_value(v: &Value) -> Option<Self> {
        Self::from_bytes(v.as_bytes()?)
    }
}

/// Encodes the `(c, τ)` pair broadcast through fair broadcast.
pub fn tle_wire(ct: &TleCiphertext, tau: u64) -> Value {
    Value::pair(ct.to_value(), Value::U64(tau))
}

/// Parses a `(c, τ)` pair off the fair-broadcast wire.
pub fn parse_tle_wire(v: &Value) -> Option<(TleCiphertext, u64)> {
    let items = v.as_list()?;
    if items.len() != 2 {
        return None;
    }
    Some((TleCiphertext::from_value(&items[0])?, items[1].as_u64()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_primitives::astrolabous::ast_enc;
    use sbc_primitives::drbg::Drbg;
    use sbc_primitives::sha256::Sha256;

    fn sample() -> TleCiphertext {
        let h = |x: &[u8]| Sha256::digest(x);
        let mut rng = Drbg::from_seed(b"ct");
        TleCiphertext {
            c1: ast_enc(&h, b"rho-bytes-here", 2, 3, &mut rng),
            c2: vec![1, 2, 3, 4, 5],
            c3: [7u8; 32],
        }
    }

    #[test]
    fn bytes_round_trip() {
        let ct = sample();
        assert_eq!(TleCiphertext::from_bytes(&ct.to_bytes()), Some(ct));
    }

    #[test]
    fn value_round_trip() {
        let ct = sample();
        assert_eq!(TleCiphertext::from_value(&ct.to_value()), Some(ct));
    }

    #[test]
    fn wire_round_trip() {
        let ct = sample();
        let wire = tle_wire(&ct, 9);
        assert_eq!(parse_tle_wire(&wire), Some((ct, 9)));
    }

    #[test]
    fn malformed_rejected() {
        assert!(TleCiphertext::from_bytes(&[]).is_none());
        assert!(TleCiphertext::from_bytes(&[0u8; 12]).is_none());
        let mut b = sample().to_bytes();
        b.push(0);
        assert!(TleCiphertext::from_bytes(&b).is_none());
        assert!(parse_tle_wire(&Value::U64(1)).is_none());
    }
}
