//! Real and ideal worlds for time-lock encryption (Theorem 1).
//!
//! * [`RealTleWorld`] — parties run `Π_TLE` (Fig. 12) over the ideal
//!   `F_FBC(∆, α)`, `W_q(F*_RO)`, `F_RO` and `G_clock`.
//! * [`IdealTleWorld`] — dummy parties talk to `F_TLE(leak, delay)` with
//!   `leak(Cl) = Cl + α` and `delay = ∆ + 1`; the simulator [`SimTle`]
//!   fabricates ciphertexts of the right shape without ever seeing a
//!   plaintext before the leakage function allows, and decrypts adversarial
//!   ciphertexts itself (it controls the oracles).
//!
//! Comparison level: ciphertext *contents* in the two worlds are
//! computationally indistinguishable but not bitwise equal (`c2`/`c3`
//! depend on the plaintext, which the simulator provably does not have), so
//! the Theorem 1 experiments assert **shape equality** of full transcripts
//! (event order, rounds, sources, payload lengths) plus **exact equality**
//! of every `Dec`/timing response — the observables the functionality
//! pins down.

use crate::ciphertext::{parse_tle_wire, TleCiphertext};
use crate::func::{DecResponse, TleFunc};
use crate::protocol::{difficulty_for, TleParty};
use sbc_broadcast::fbc::func::FbcFunc;
use sbc_primitives::astrolabous::{ast_dec, ast_enc_with_hashes, xor_mask};
use sbc_primitives::drbg::Drbg;
use sbc_primitives::hashchain::{ChainSolver, Element};
use sbc_uc::ids::{PartyId, Tag};
use sbc_uc::ro::{Caller, RandomOracle};
use sbc_uc::value::{Command, Value};
use sbc_uc::world::{AdvCommand, Leak, World, WorldCore};
use sbc_uc::wrapper::{QueryWrapper, WrapperClient};

/// Fair-broadcast delay beneath Π_TLE in these worlds.
pub const TLE_DELTA: u64 = 2;
/// Fair-broadcast simulator advantage beneath Π_TLE.
pub const TLE_ALPHA: u64 = 2;

fn fork_streams(core: &mut WorldCore) -> (Drbg, Drbg, Drbg, Drbg, Vec<Drbg>) {
    let ro_star = core.rng.fork(b"ro/star");
    let ro = core.rng.fork(b"ro/fro");
    let fbc_tags = core.rng.fork(b"tags/F_FBC");
    let tle_tags = core.rng.fork(b"tags/F_TLE");
    let parties = (0..core.n())
        .map(|i| core.rng.fork(format!("party/{i}").as_bytes()))
        .collect();
    (ro_star, ro, fbc_tags, tle_tags, parties)
}

fn parse_enc(v: &Value) -> Option<(Value, i64)> {
    let items = v.as_list()?;
    if items.len() != 2 {
        return None;
    }
    Some((items[0].clone(), items[1].as_i64()?))
}

fn parse_dec(v: &Value) -> Option<(Value, i64)> {
    parse_enc(v)
}

fn encrypted_output(triples: Vec<(Value, Value, u64)>) -> Command {
    Command::new(
        "Encrypted",
        Value::List(
            triples
                .into_iter()
                .map(|(m, c, t)| Value::list([m, c, Value::U64(t)]))
                .collect(),
        ),
    )
}

/// The real world: `Π_TLE` over `F_FBC` + `W_q(F*_RO)` + `F_RO` + `G_clock`.
#[derive(Debug)]
pub struct RealTleWorld {
    core: WorldCore,
    parties: Vec<TleParty>,
    ffbc: FbcFunc,
    wrapper: QueryWrapper,
    ro_star: RandomOracle,
    ro: RandomOracle,
}

impl RealTleWorld {
    /// Creates the world (`q` wrapper batches per round).
    pub fn new(n: usize, q: u32, seed: &[u8]) -> Self {
        let mut core = WorldCore::new(n, seed);
        let (ro_star_rng, ro_rng, fbc_tags, _tle_tags, party_rngs) = fork_streams(&mut core);
        let parties = party_rngs
            .into_iter()
            .enumerate()
            .map(|(i, rng)| TleParty::new(PartyId(i as u32), q, TLE_DELTA, rng))
            .collect();
        RealTleWorld {
            core,
            parties,
            ffbc: FbcFunc::new(n, TLE_DELTA, TLE_ALPHA, fbc_tags),
            wrapper: QueryWrapper::new(q),
            ro_star: RandomOracle::new(ro_star_rng),
            ro: RandomOracle::new(ro_rng),
        }
    }
}

impl World for RealTleWorld {
    fn n(&self) -> usize {
        self.core.n()
    }

    fn time(&self) -> u64 {
        self.core.clock.read()
    }

    fn input(&mut self, party: PartyId, cmd: Command) {
        if self.core.corr.is_corrupted(party) {
            return;
        }
        let now = self.core.clock.read();
        match cmd.name.as_str() {
            "Enc" => {
                if let Some((msg, tau)) = parse_enc(&cmd.value) {
                    let ok = self.parties[party.index()].on_enc(msg, tau, now);
                    let resp = if ok {
                        Command::new("Encrypting", Value::Unit)
                    } else {
                        Command::new("Enc", Value::str("\u{22a5}"))
                    };
                    self.core.outputs.push((party, resp));
                }
            }
            "Retrieve" => {
                let triples = self.parties[party.index()].retrieve(now);
                self.core.outputs.push((party, encrypted_output(triples)));
            }
            "Dec" => {
                if let Some((ct, tau)) = parse_dec(&cmd.value) {
                    let resp = self.parties[party.index()].dec(&ct, tau, now, &mut self.ro);
                    self.core
                        .outputs
                        .push((party, Command::new("Dec", resp.to_value())));
                }
            }
            _ => {}
        }
    }

    fn advance(&mut self, party: PartyId) {
        if self.core.corr.is_corrupted(party) {
            return;
        }
        let now = self.core.clock.read();
        // Step 1–2: receive delayed fair-broadcast ciphertexts.
        let ds = {
            let mut ctx = self.core.ctx();
            self.ffbc.advance_clock(party, &mut ctx)
        };
        for d in ds {
            if let Some((ct, tau)) = parse_tle_wire(&d.cmd.value) {
                self.parties[party.index()].on_fbc_deliver(ct, tau);
            }
        }
        // Step 3: ENCRYPT&SOLVE; step 4: broadcast fresh ciphertexts.
        let wires = self.parties[party.index()].encrypt_and_solve(
            now,
            &mut self.wrapper,
            &mut self.ro_star,
            &mut self.ro,
            WrapperClient::Party(party),
        );
        for w in wires {
            let mut ctx = self.core.ctx();
            self.ffbc.broadcast(party, w, &mut ctx);
        }
        self.core.clock.advance_party(party);
    }

    fn adversary(&mut self, cmd: AdvCommand) -> Value {
        match cmd {
            AdvCommand::Corrupt(p) => Value::Bool(self.core.corrupt(p)),
            AdvCommand::SendAs { party, cmd } if cmd.name == "Broadcast" => {
                if self.core.corr.is_corrupted(party) {
                    let mut ctx = self.core.ctx();
                    self.ffbc.broadcast(party, cmd.value, &mut ctx);
                }
                Value::Unit
            }
            _ => Value::Unit,
        }
    }

    fn drain_outputs(&mut self) -> Vec<(PartyId, Command)> {
        std::mem::take(&mut self.core.outputs)
    }

    fn drain_leaks(&mut self) -> Vec<Leak> {
        std::mem::take(&mut self.core.leaks)
    }

    fn is_corrupted(&self, party: PartyId) -> bool {
        self.core.corr.is_corrupted(party)
    }
}

/// One simulated pending encryption awaiting ciphertext fabrication.
#[derive(Clone, Debug)]
struct SimEnc {
    tag: Tag,
    tau: u64,
    msg_len: usize,
}

/// The simulator `S_TLE` (Theorem 1, Appendix C): fabricates ciphertext
/// shells `(c1, c2, c3)` with real puzzles of random values but random
/// `c2`/`c3` (it has no plaintext), and solves adversarial ciphertexts
/// itself when `F_TLE` asks.
#[derive(Debug)]
pub struct SimTle {
    q: u32,
    delta: u64,
    party_rngs: Vec<Drbg>,
    fbc_tag_rng: Drbg,
    equiv_rng: Drbg,
    queues: Vec<Vec<SimEnc>>,
}

impl SimTle {
    fn new(q: u32, delta: u64, party_rngs: Vec<Drbg>, fbc_tag_rng: Drbg, equiv_rng: Drbg) -> Self {
        let n = party_rngs.len();
        SimTle {
            q,
            delta,
            party_rngs,
            fbc_tag_rng,
            equiv_rng,
            queues: vec![Vec::new(); n],
        }
    }

    fn on_enc_leak(&mut self, party: PartyId, tag: Tag, tau: u64, msg_len: usize) {
        self.queues[party.index()].push(SimEnc { tag, tau, msg_len });
    }

    /// Mirrors `ENCRYPT&SOLVE` for a party's queued encryptions, emitting
    /// the `F_FBC` leaks the real adversary would see and returning the
    /// `(ciphertext, tag)` updates for `F_TLE`.
    fn honest_advance(
        &mut self,
        party: PartyId,
        now: u64,
        ro_star: &mut RandomOracle,
        leaks_out: &mut Vec<Leak>,
    ) -> Vec<(Value, Tag)> {
        let entries = std::mem::take(&mut self.queues[party.index()]);
        if entries.is_empty() {
            return Vec::new();
        }
        // Mirror step 1: all chain randomness first.
        let rand_sets: Vec<Vec<Element>> = entries
            .iter()
            .map(|e| {
                let tau_dec = difficulty_for(e.tau, now, self.delta);
                let len = (tau_dec * self.q as u64) as usize;
                (0..len)
                    .map(|_| {
                        let b = self.party_rngs[party.index()].gen_bytes(32);
                        let mut el = [0u8; 32];
                        el.copy_from_slice(&b);
                        el
                    })
                    .collect()
            })
            .collect();
        let mut updates = Vec::new();
        for (e, rs) in entries.iter().zip(rand_sets.iter()) {
            let tau_dec = difficulty_for(e.tau, now, self.delta);
            let hashes: Vec<Element> = rs
                .iter()
                .map(|r| ro_star.query(Caller::Simulator, r))
                .collect();
            let rho = self.party_rngs[party.index()].gen_bytes(32);
            let c1 = ast_enc_with_hashes(
                &rho,
                tau_dec,
                rs,
                &hashes,
                &mut self.party_rngs[party.index()],
            );
            // Extended encryption (Appendix C): c2, c3 are random — the
            // simulator has no plaintext yet.
            let c2 = self.equiv_rng.gen_bytes(e.msg_len);
            let c3_raw = self.equiv_rng.gen_bytes(32);
            let mut c3 = [0u8; 32];
            c3.copy_from_slice(&c3_raw);
            let ct = TleCiphertext { c1, c2, c3 };
            // Mirror the F_FBC (tag, sender) leak of the real broadcast.
            let fbc_tag = Tag::random(&mut self.fbc_tag_rng);
            leaks_out.push(Leak {
                source: sbc_broadcast::fbc::func::FBC_SOURCE.into(),
                cmd: Command::new(
                    "Broadcast",
                    Value::pair(Value::bytes(fbc_tag.as_bytes()), Value::U64(party.0 as u64)),
                ),
            });
            updates.push((ct.to_value(), e.tag));
        }
        updates
    }

    /// Decrypts an adversarial ciphertext (free oracle access) and returns
    /// `(message, effective decryption time)` for insertion into `F_TLE`.
    fn extract(
        &mut self,
        wire: &Value,
        now: u64,
        ro_star: &mut RandomOracle,
        ro: &mut RandomOracle,
    ) -> Option<(Value, Value, u64)> {
        let (ct, wire_tau) = parse_tle_wire(wire)?;
        let mut solver = ChainSolver::new(&ct.c1.chain).ok()?;
        while let Some(qr) = solver.next_query() {
            let h = ro_star.query(Caller::Simulator, &qr);
            solver.feed(h);
        }
        let rho = ast_dec(&ct.c1, solver.witness()).ok()?;
        let eta = ro.query(Caller::Simulator, &rho);
        let m_bytes = xor_mask(&eta, &ct.c2);
        let mut commit_in = rho.clone();
        commit_in.extend_from_slice(&m_bytes);
        if ro.query(Caller::Simulator, &commit_in) != ct.c3 {
            return None; // fails the binding check → ⊥ everywhere
        }
        let msg = Value::decode(&m_bytes).unwrap_or(Value::Bytes(m_bytes));
        // Effective decryption time: delivery + solving rounds, at least the
        // claimed wire time.
        let steps = ct.c1.chain.len() as u64 - 1;
        let solve_done = now + self.delta + steps.div_ceil(self.q as u64);
        Some((ct.to_value(), msg, wire_tau.max(solve_done)))
    }
}

/// The ideal world: `F_TLE(leak(Cl)=Cl+α, delay=∆+1)` + `S_TLE`.
#[derive(Debug)]
pub struct IdealTleWorld {
    core: WorldCore,
    ftle: TleFunc,
    sim: SimTle,
    /// Mirrors the real wrapper so adversarial metering matches.
    #[allow(dead_code)]
    wrapper: QueryWrapper,
    ro_star: RandomOracle,
    ro: RandomOracle,
}

impl IdealTleWorld {
    /// Creates the world (`q` wrapper batches per round).
    pub fn new(n: usize, q: u32, seed: &[u8]) -> Self {
        let mut core = WorldCore::new(n, seed);
        let (ro_star_rng, ro_rng, fbc_tags, tle_tags, party_rngs) = fork_streams(&mut core);
        let equiv_rng = core.rng.fork(b"sim/equiv");
        IdealTleWorld {
            core,
            ftle: TleFunc::new(TLE_ALPHA, TLE_DELTA + 1, tle_tags),
            sim: SimTle::new(q, TLE_DELTA, party_rngs, fbc_tags, equiv_rng),
            wrapper: QueryWrapper::new(q),
            ro_star: RandomOracle::new(ro_star_rng),
            ro: RandomOracle::new(ro_rng),
        }
    }
}

impl World for IdealTleWorld {
    fn n(&self) -> usize {
        self.core.n()
    }

    fn time(&self) -> u64 {
        self.core.clock.read()
    }

    fn input(&mut self, party: PartyId, cmd: Command) {
        if self.core.corr.is_corrupted(party) {
            return;
        }
        match cmd.name.as_str() {
            "Enc" => {
                if let Some((msg, tau)) = parse_enc(&cmd.value) {
                    let msg_len = msg.encode().len();
                    // F_TLE's Enc leak is addressed to the simulator, which
                    // shows the real-world adversary nothing at Enc time.
                    let mut scratch = Vec::new();
                    let tag = {
                        let mut ctx = sbc_uc::hybrid::HybridCtx {
                            clock: &mut self.core.clock,
                            rng: &mut self.core.rng,
                            leaks: &mut scratch,
                            corr: &mut self.core.corr,
                        };
                        self.ftle.enc(party, msg, tau, &mut ctx)
                    };
                    let resp = match tag {
                        Some(tag) => {
                            // F_TLE's (τ, tag, Cl, 0^|M|, P) leak goes to S.
                            self.sim.on_enc_leak(party, tag, tau as u64, msg_len);
                            Command::new("Encrypting", Value::Unit)
                        }
                        None => Command::new("Enc", Value::str("\u{22a5}")),
                    };
                    self.core.outputs.push((party, resp));
                }
            }
            "Retrieve" => {
                let triples = {
                    let mut ctx = self.core.ctx();
                    self.ftle.retrieve(party, &mut ctx)
                };
                self.core.outputs.push((party, encrypted_output(triples)));
            }
            "Dec" => {
                if let Some((ct, tau)) = parse_dec(&cmd.value) {
                    let resp = {
                        let ctx = self.core.ctx();
                        self.ftle.dec(&ct, tau, &ctx)
                    };
                    let resp = match resp {
                        Some(r) => r,
                        // Unknown ciphertext: ask the simulator. Anything it
                        // cannot validly decrypt is ⊥, matching the real
                        // parties' c3 check.
                        None => DecResponse::Bottom,
                    };
                    self.core
                        .outputs
                        .push((party, Command::new("Dec", resp.to_value())));
                }
            }
            _ => {}
        }
    }

    fn advance(&mut self, party: PartyId) {
        if self.core.corr.is_corrupted(party) {
            return;
        }
        let now = self.core.clock.read();
        let mut leaks = Vec::new();
        let updates = self
            .sim
            .honest_advance(party, now, &mut self.ro_star, &mut leaks);
        self.core.leaks.extend(leaks);
        let tagged: Vec<(Value, Tag)> = updates;
        self.ftle.update_ciphertexts(&tagged);
        self.core.clock.advance_party(party);
    }

    fn adversary(&mut self, cmd: AdvCommand) -> Value {
        match cmd {
            AdvCommand::Corrupt(p) => Value::Bool(self.core.corrupt(p)),
            AdvCommand::SendAs { party, cmd } if cmd.name == "Broadcast" => {
                if self.core.corr.is_corrupted(party) {
                    let now = self.core.clock.read();
                    // Mirror the F_FBC leak of the real broadcast.
                    let fbc_tag = Tag::random(&mut self.sim.fbc_tag_rng);
                    self.core.leaks.push(Leak {
                        source: sbc_broadcast::fbc::func::FBC_SOURCE.into(),
                        cmd: Command::new(
                            "Broadcast",
                            Value::pair(
                                Value::bytes(fbc_tag.as_bytes()),
                                Value::U64(party.0 as u64),
                            ),
                        ),
                    });
                    if let Some((ct, msg, tau_eff)) =
                        self.sim
                            .extract(&cmd.value, now, &mut self.ro_star, &mut self.ro)
                    {
                        self.ftle.insert_adversarial(ct, msg, tau_eff);
                    }
                }
                Value::Unit
            }
            _ => Value::Unit,
        }
    }

    fn drain_outputs(&mut self) -> Vec<(PartyId, Command)> {
        std::mem::take(&mut self.core.outputs)
    }

    fn drain_leaks(&mut self) -> Vec<Leak> {
        std::mem::take(&mut self.core.leaks)
    }

    fn is_corrupted(&self, party: PartyId) -> bool {
        self.core.corr.is_corrupted(party)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_uc::trace::EventKind;
    use sbc_uc::world::{run_env, EnvDriver};

    const Q: u32 = 3;

    /// Shape equality of full transcripts plus exact equality of every
    /// `Dec`/`Encrypting` response (the plaintext observables).
    fn assert_theorem1<F>(n: usize, seed: &[u8], script: F)
    where
        F: Fn(&mut EnvDriver<'_>) + Copy,
    {
        let mut real = RealTleWorld::new(n, Q, seed);
        let mut ideal = IdealTleWorld::new(n, Q, seed);
        let t_real = run_env(&mut real, script);
        let t_ideal = run_env(&mut ideal, script);
        assert_eq!(
            t_real.shape_digest(),
            t_ideal.shape_digest(),
            "shape diverges:\nREAL:\n{t_real}\nIDEAL:\n{t_ideal}"
        );
        let decs = |t: &sbc_uc::trace::Transcript| -> Vec<(u64, PartyId, Value)> {
            t.events
                .iter()
                .filter_map(|e| match &e.kind {
                    EventKind::Output { party, cmd } if cmd.name == "Dec" => {
                        Some((e.round, *party, cmd.value.clone()))
                    }
                    _ => None,
                })
                .collect()
        };
        assert_eq!(decs(&t_real), decs(&t_ideal), "Dec responses diverge");
    }

    fn enc_cmd(msg: &[u8], tau: i64) -> Command {
        Command::new("Enc", Value::pair(Value::bytes(msg), Value::I64(tau)))
    }

    #[test]
    fn theorem1_encrypt_retrieve_decrypt() {
        assert_theorem1(2, b"t1-a", |env| {
            env.input(PartyId(0), enc_cmd(b"the future message", 6));
            env.idle_rounds(4);
            // Retrieve own record (delay = ∆+1 = 3 rounds after request).
            let r = env.input_collect(PartyId(0), Command::new("Retrieve", Value::Unit));
            let enc = r[0].value.as_list().unwrap();
            assert_eq!(enc.len(), 1, "one encrypted record");
            let ct = enc[0].as_list().unwrap()[1].clone();
            // Too early to decrypt:
            env.input(
                PartyId(1),
                Command::new("Dec", Value::pair(ct.clone(), Value::I64(6))),
            );
            env.idle_rounds(2);
            // τ = 6 reached: everyone can decrypt.
            env.input(
                PartyId(1),
                Command::new("Dec", Value::pair(ct.clone(), Value::I64(6))),
            );
            env.input(
                PartyId(0),
                Command::new("Dec", Value::pair(ct, Value::I64(6))),
            );
        });
    }

    #[test]
    fn theorem1_negative_time_and_unknown_ct() {
        assert_theorem1(2, b"t1-b", |env| {
            env.input(PartyId(0), enc_cmd(b"x", -3));
            env.input(
                PartyId(1),
                Command::new("Dec", Value::pair(Value::bytes(b"junk"), Value::I64(0))),
            );
            env.idle_rounds(1);
        });
    }

    #[test]
    fn theorem1_invalid_time_claims() {
        assert_theorem1(2, b"t1-c", |env| {
            env.input(PartyId(0), enc_cmd(b"late-claim", 8));
            env.idle_rounds(4);
            let r = env.input_collect(PartyId(0), Command::new("Retrieve", Value::Unit));
            let ct = r[0].value.as_list().unwrap()[0].as_list().unwrap()[1].clone();
            env.idle_rounds(5); // Cl = 9 > τ = 8
                                // Claimed τ' = 5 < true τ = 8 ≤ Cl → Invalid_Time in both worlds.
            env.input(
                PartyId(1),
                Command::new("Dec", Value::pair(ct, Value::I64(5))),
            );
        });
    }

    #[test]
    fn theorem1_multiple_encryptors() {
        assert_theorem1(3, b"t1-d", |env| {
            env.input(PartyId(0), enc_cmd(b"from zero", 7));
            env.input(PartyId(1), enc_cmd(b"from one", 8));
            env.advance_all();
            env.input(PartyId(2), enc_cmd(b"from two", 9));
            env.idle_rounds(9);
            for p in 0..3u32 {
                env.input(PartyId(p), Command::new("Retrieve", Value::Unit));
            }
        });
    }

    #[test]
    fn real_world_cross_party_decryption() {
        // A message encrypted by P0 is decryptable by P1 exactly at τ.
        let mut real = RealTleWorld::new(2, Q, b"cross");
        let t = run_env(&mut real, |env| {
            env.input(PartyId(0), enc_cmd(b"crossing", 6));
            env.idle_rounds(4);
            let r = env.input_collect(PartyId(0), Command::new("Retrieve", Value::Unit));
            let ct = r[0].value.as_list().unwrap()[0].as_list().unwrap()[1].clone();
            env.idle_rounds(2); // Cl = 6 = τ
            let d = env.input_collect(
                PartyId(1),
                Command::new("Dec", Value::pair(ct, Value::I64(6))),
            );
            assert_eq!(
                d[0].value,
                DecResponse::Message(Value::bytes(b"crossing")).to_value()
            );
        });
        assert!(!t.outputs().is_empty());
    }

    #[test]
    fn wrapper_prevents_early_decryption() {
        // Even spending its full shared budget, the adversary cannot have
        // the puzzle before the honest parties: difficulty τ_dec batches of
        // q are required, and W_q grants q per round.
        let mut real = RealTleWorld::new(2, Q, b"seq");
        run_env(&mut real, |env| {
            env.input(PartyId(0), enc_cmd(b"sealed", 7));
            env.idle_rounds(4);
            let r = env.input_collect(PartyId(0), Command::new("Retrieve", Value::Unit));
            let ct = r[0].value.as_list().unwrap()[0].as_list().unwrap()[1].clone();
            // Cl = 4 < τ = 7: everyone gets More_Time.
            let d = env.input_collect(
                PartyId(1),
                Command::new("Dec", Value::pair(ct, Value::I64(7))),
            );
            assert_eq!(d[0].value, DecResponse::MoreTime.to_value());
        });
    }
}
