//! Service observability: latency histograms and the stats snapshot.
//!
//! Latency is measured in **rounds** (submit tick → release round), the
//! deterministic unit every backend shares — wall-clock throughput is the
//! bench harness's job, not the service's. The histogram is fixed-bucket
//! (one bucket per round up to [`LatencyHistogram::BUCKETS`], plus an
//! overflow bucket) so recording is O(1), allocation-free, and identical
//! across a snapshot/restore cycle.
//!
//! Real-socket backends reintroduce wall time as an observable, so the
//! service can *optionally* keep a second, wall-clock submit→release view
//! (`ServiceConfig::record_wall_clock`). It lives in a log₂-bucketed
//! microsecond histogram ([`WallHistogram`]) and surfaces as
//! [`ServiceStats::wall`]. Unlike the rounds view it is **not** part of
//! the deterministic state: it is never serialized into snapshots, and
//! `wall` is `None` unless recording was explicitly enabled.

/// Fixed-bucket submit→release latency histogram over rounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// `buckets[r]` counts submissions that released `r` rounds after
    /// submit; the last bucket absorbs everything `≥ BUCKETS - 1`.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0; Self::BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// Number of fixed buckets (rounds 0..=62, plus one overflow bucket).
    /// Far above any reachable submit→release distance for sane `Φ + ∆`:
    /// a submission admitted immediately releases within `Φ + ∆ + 1`.
    pub const BUCKETS: usize = 64;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one submission that released `rounds` after submit.
    pub fn record(&mut self, rounds: u64) {
        let idx = (rounds as usize).min(Self::BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += rounds;
        self.max = self.max.max(rounds);
    }

    /// Number of recorded submissions.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile latency in rounds (`q` in 0..=100): the smallest
    /// bucket whose cumulative count reaches `q%` of the total. Returns 0
    /// on an empty histogram.
    pub fn quantile(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Ceiling so quantile(100) is the last non-empty bucket.
        let target = (self.count * q).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (idx, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return idx as u64;
            }
        }
        (Self::BUCKETS - 1) as u64
    }

    /// The raw state behind the histogram, in serialization order:
    /// `(buckets, count, sum, max)`. Checkpoint encoding reads this; the
    /// summary API stays the only public view.
    pub(crate) fn raw_parts(&self) -> (&[u64], u64, u64, u64) {
        (&self.buckets, self.count, self.sum, self.max)
    }

    /// Rebuilds a histogram from its raw state. `None` when the bucket
    /// vector is not exactly [`Self::BUCKETS`] long — a decoded
    /// checkpoint with the wrong arity is a bad snapshot, not a panic.
    pub(crate) fn from_raw_parts(
        buckets: Vec<u64>,
        count: u64,
        sum: u64,
        max: u64,
    ) -> Option<Self> {
        if buckets.len() != Self::BUCKETS {
            return None;
        }
        Some(LatencyHistogram {
            buckets,
            count,
            sum,
            max,
        })
    }

    /// Collapses the histogram into the summary carried by
    /// [`ServiceStats`].
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50: self.quantile(50),
            p90: self.quantile(90),
            p99: self.quantile(99),
            max: self.max,
            mean_milli: (self.sum * 1000).checked_div(self.count).unwrap_or(0),
        }
    }
}

/// Percentile summary of submit→release latency, in rounds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Submissions measured.
    pub count: u64,
    /// Median latency (rounds).
    pub p50: u64,
    /// 90th-percentile latency (rounds).
    pub p90: u64,
    /// 99th-percentile latency (rounds).
    pub p99: u64,
    /// Worst observed latency (rounds).
    pub max: u64,
    /// Mean latency in milli-rounds (mean × 1000, integer — the stats
    /// surface stays `Eq` and bit-stable across snapshot/restore).
    pub mean_milli: u64,
}

/// Log₂-bucketed wall-clock submit→release histogram over microseconds.
///
/// Bucket `0` counts sub-microsecond releases; bucket `b ≥ 1` covers
/// `[2^(b-1), 2^b)` µs. Recording is O(1) and allocation-free, like the
/// rounds histogram, but the recorded values come from `Instant` — they
/// are observational, never replayed, never snapshotted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WallHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for WallHistogram {
    fn default() -> Self {
        WallHistogram {
            buckets: vec![0; Self::BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl WallHistogram {
    /// One bucket per power-of-two microsecond band: bucket 63 absorbs
    /// everything from ~73 000 years up, so there is no reachable
    /// overflow.
    pub const BUCKETS: usize = 64;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        WallHistogram::default()
    }

    fn bucket_of(micros: u64) -> usize {
        match micros {
            0 => 0,
            us => (64 - us.leading_zeros() as usize).min(Self::BUCKETS - 1),
        }
    }

    /// Records one submission that released `micros` µs after submit.
    pub fn record(&mut self, micros: u64) {
        self.buckets[Self::bucket_of(micros)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(micros);
        self.max = self.max.max(micros);
    }

    /// Number of recorded submissions.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile latency in µs (`q` in 0..=100), reported as the
    /// upper bound of the smallest bucket whose cumulative count reaches
    /// `q%`, clamped to the observed maximum. Returns 0 on an empty
    /// histogram.
    pub fn quantile(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count * q).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (idx, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                // Bucket b covers [2^(b-1), 2^b): report just under its
                // upper edge, but never past the recorded max.
                let upper = if idx == 0 { 0 } else { (1u64 << idx) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Collapses the histogram into the summary carried by
    /// [`ServiceStats::wall`].
    pub fn summary(&self) -> WallLatencySummary {
        WallLatencySummary {
            count: self.count,
            p50_us: self.quantile(50),
            p90_us: self.quantile(90),
            p99_us: self.quantile(99),
            max_us: self.max,
            mean_us: self.sum.checked_div(self.count).unwrap_or(0),
        }
    }
}

/// Percentile summary of wall-clock submit→release latency, in µs.
///
/// Quantiles are log₂-bucket upper bounds (clamped to the observed
/// maximum), so read them as "at most" figures with ~2× resolution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WallLatencySummary {
    /// Submissions measured.
    pub count: u64,
    /// Median latency (µs, bucket upper bound).
    pub p50_us: u64,
    /// 90th-percentile latency (µs, bucket upper bound).
    pub p90_us: u64,
    /// 99th-percentile latency (µs, bucket upper bound).
    pub p99_us: u64,
    /// Worst observed latency (µs, exact).
    pub max_us: u64,
    /// Mean latency (µs, integer-truncated).
    pub mean_us: u64,
}

/// A point-in-time census of the service: counters, peaks, and the
/// latency summary. Obtained from `SbcService::stats`; every field is a
/// deterministic function of the accepted operation history.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Submissions accepted into the queue.
    pub accepted: u64,
    /// Submissions refused with `QueueFull`.
    pub rejected: u64,
    /// Submissions that hit a closing window and were re-queued into the
    /// next instance (the late-arrival path).
    pub deferred: u64,
    /// Release records handed to sinks or drained by the caller.
    pub delivered: u64,
    /// Pool instances opened.
    pub opened: u64,
    /// Pool instances finished (released + retired).
    pub finished: u64,
    /// Pool instances pruned (bookkeeping reclaimed).
    pub pruned: u64,
    /// Clock ticks driven.
    pub ticks: u64,
    /// Most instances simultaneously live.
    pub peak_live: usize,
    /// Deepest the ingress queue has been.
    pub peak_queue: usize,
    /// Submissions currently queued (all classes).
    pub queued: usize,
    /// Instances currently live.
    pub live: usize,
    /// Captured leaks evicted by the pool's leak cap (bounded-memory
    /// mode's typed overflow counter, accumulated across pruned
    /// instances).
    pub leak_overflow: u64,
    /// The shared clock round.
    pub round: u64,
    /// The service's era: how many times the operation journal has been
    /// folded into a checkpoint (0 for a never-checkpointed service).
    pub era: u64,
    /// The shared-clock round of the last checkpoint boundary (0 at era
    /// 0).
    pub checkpoint_round: u64,
    /// Operations in the post-checkpoint journal tail — what a snapshot
    /// taken now would have to replay. Era-based checkpointing keeps
    /// this O(current era) instead of O(lifetime).
    pub journal_ops: u64,
    /// Era folds performed by the `ServiceConfig::checkpoint_every`
    /// auto-checkpoint policy; manual folds are not counted. Like the
    /// policy itself it is excluded from snapshots, so a restored
    /// service restarts at 0 — mask it in determinism comparisons
    /// alongside `snapshot_bytes` when the policy is armed.
    pub auto_folds: u64,
    /// Bytes of the most recent snapshot image produced by (or restored
    /// into) this service; 0 until one exists. **Observational only**:
    /// like `wall`, it is excluded from snapshots and is the one
    /// non-`wall` field that may differ between a live service and its
    /// restored twin — mask it in determinism comparisons.
    pub snapshot_bytes: u64,
    /// Submit→release latency summary (rounds).
    pub latency: LatencySummary,
    /// Wall-clock submit→release latency summary (µs). `None` unless the
    /// service was built with `ServiceConfig::record_wall_clock` — the
    /// field is observational, excluded from snapshots, and a restored
    /// service always reports `None` until re-enabled.
    pub wall: Option<WallLatencySummary>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(50), 0);
        assert_eq!(h.summary(), LatencySummary::default());
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let mut h = LatencyHistogram::new();
        for r in [5u64, 5, 5, 6, 7, 7, 9, 9, 9, 40] {
            h.record(r);
        }
        let s = h.summary();
        assert_eq!(s.count, 10);
        assert_eq!(s.p50, 7);
        assert_eq!(s.p90, 9);
        assert_eq!(s.p99, 40);
        assert_eq!(s.max, 40);
        assert_eq!(s.mean_milli, 10200);
    }

    #[test]
    fn overflow_bucket_absorbs_the_tail() {
        let mut h = LatencyHistogram::new();
        h.record(10_000);
        assert_eq!(h.quantile(50), (LatencyHistogram::BUCKETS - 1) as u64);
        assert_eq!(h.summary().max, 10_000);
    }

    #[test]
    fn wall_histogram_buckets_by_log2_micros() {
        let mut h = WallHistogram::new();
        assert_eq!(h.summary(), WallLatencySummary::default());
        for us in [0u64, 1, 3, 100, 100, 1_000, 1_000_000] {
            h.record(us);
        }
        let s = h.summary();
        assert_eq!(s.count, 7);
        assert_eq!(s.max_us, 1_000_000);
        assert_eq!(s.mean_us, (1 + 3 + 100 + 100 + 1_000 + 1_000_000) / 7);
        // 100 µs sits in bucket [64, 128): the p50 upper bound is 127.
        assert_eq!(s.p50_us, 127);
        // The top quantiles clamp to the observed maximum rather than the
        // bucket edge.
        assert_eq!(s.p99_us, 1_000_000);
        assert!(s.p90_us <= s.p99_us && s.p50_us <= s.p90_us);
    }

    #[test]
    fn wall_quantile_clamps_to_observed_max() {
        let mut h = WallHistogram::new();
        h.record(65); // bucket [64, 128), upper bound 127
        assert_eq!(h.quantile(50), 65);
        assert_eq!(h.quantile(100), 65);
        h.record(u64::MAX); // lands in the final bucket without panicking
        assert_eq!(h.summary().max_us, u64::MAX);
    }
}
