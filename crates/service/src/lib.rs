//! # sbc-service
//!
//! A long-lived, epoch-structured **simultaneous-broadcast service** over
//! [`sbc_core::pool::SbcPool`] — the paper's applications (DURS randomness
//! beacons, elections, sealed-bid auctions) consumed the way they are
//! meant to be: as a continuously running submission-serving front end,
//! not a test harness.
//!
//! The service wraps a pool of concurrent SBC instances behind four
//! surfaces:
//!
//! * **Ingestion + batching** — [`SbcService::submit`] accepts client
//!   submissions (client id, payload, [`DeadlineClass`]) through a
//!   bounded three-class queue, batches them into pool instances
//!   round-robin over the party slots, admits late arrivals into the
//!   *next* instance instead of erroring, and answers saturation with a
//!   typed [`ServiceError::QueueFull`].
//! * **Epoch lifecycle** — [`SbcService::tick`] steps the shared clock,
//!   opens instances when the admission policy fires, finishes released
//!   instances, streams [`ReleaseRecord`]s to registered
//!   [`ReleaseSink`]s, and continuously prunes what has been delivered so
//!   steady-state memory is flat under churn (watch it with
//!   [`SbcService::footprint`]).
//! * **Observability** — per-submission submit→release latency in rounds,
//!   recorded off the hot path into a fixed-bucket histogram and exposed
//!   as a [`ServiceStats`] snapshot (p50/p90/p99, counters, peaks); an
//!   optional wall-clock view (`ServiceConfig::record_wall_clock`) adds a
//!   µs-grained [`WallLatencySummary`] for real-socket backends.
//! * **Era-based snapshot/restore** — [`SbcService::checkpoint`] folds
//!   the deterministic operation journal into a compact checkpoint at
//!   era boundaries (everything delivered, drained, and pruned), so
//!   [`SbcService::snapshot`] carries (checkpoint ‖ short tail) as a
//!   streaming multi-frame image through the `sbc-net` codec —
//!   `SnapshotHeader` ‖ `SnapshotChunk`× ‖ SHA-256 `SnapshotTrailer`,
//!   with [`SbcService::snapshot_to`]/[`SbcService::restore_from`]
//!   streaming straight over [`std::io`]. [`SbcService::restore`]
//!   fast-forwards a fresh pool through the checkpoint and replays only
//!   the tail, reproducing release transcripts bit-identically — a
//!   service killed mid-epoch resumes where it died, at restore cost
//!   O(current era) instead of O(lifetime).
//!
//! The service is generic over the [`sbc_core::worlds::SbcBackend`] seam:
//! the same driver runs over `RealSbcWorld` (in-process),
//! `LoopbackSbcWorld` (networked frames, ideal links), or
//! `SimNetSbcWorld` (networked frames over the adversarial simulated
//! transport).
//!
//! # Example
//!
//! ```
//! use sbc_service::{DeadlineClass, ServiceConfig, ServiceMode, SbcService};
//!
//! # fn main() -> Result<(), sbc_service::ServiceError> {
//! let cfg = ServiceConfig::new(4, ServiceMode::Beacon).seed(b"docs");
//! let mut svc: SbcService = SbcService::new(cfg)?;
//! svc.submit(7, b"entropy".to_vec(), DeadlineClass::Interactive)?;
//! while svc.stats().finished == 0 {
//!     svc.tick()?;
//! }
//! let record = svc.drain_releases().pop().expect("released");
//! assert!(record.messages.iter().any(|m| m == b"entropy"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod loadgen;
mod service;
mod snapshot;
mod stats;

pub use loadgen::{LoadGen, LoadProfile};
pub use service::{
    CheckpointEvery, DeadlineClass, Outcome, ReleaseRecord, ReleaseSink, SbcService, ServiceConfig,
    ServiceError, ServiceMode,
};
pub use stats::{
    LatencyHistogram, LatencySummary, ServiceStats, WallHistogram, WallLatencySummary,
};
