//! Seeded synthetic load: millions of distinct submitters playing against
//! the service, deterministically.
//!
//! The generator is intentionally dumb-but-reproducible: a [`Drbg`] fork
//! drives client identity, payload content, and deadline-class mix, so a
//! bench run is a pure function of its seed — two machines (or two
//! backends) fed the same profile produce the same submission stream.

use sbc_primitives::drbg::Drbg;

use crate::service::DeadlineClass;

/// Shape of the synthetic workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadProfile {
    /// Total submissions the generator will emit.
    pub total: u64,
    /// Submissions offered per tick (the arrival rate).
    pub per_tick: usize,
    /// Payload length in bytes (mode-appropriate: 32 for beacon entropy,
    /// 1 for votes, 8 for bids).
    pub payload_len: usize,
    /// Distinct client-id space (~millions of submitters).
    pub clients: u64,
    /// Percentage (0..=100) of submissions in
    /// [`DeadlineClass::Interactive`].
    pub interactive_pct: u8,
    /// Percentage (0..=100) of submissions in [`DeadlineClass::Batch`];
    /// the remainder is [`DeadlineClass::Standard`].
    pub batch_pct: u8,
}

impl LoadProfile {
    /// A beacon-shaped profile: `total` 32-byte entropy contributions
    /// from a million distinct clients, mostly standard-class.
    pub fn beacon(total: u64, per_tick: usize) -> Self {
        LoadProfile {
            total,
            per_tick,
            payload_len: 32,
            clients: 1_000_000,
            interactive_pct: 5,
            batch_pct: 25,
        }
    }
}

/// One pending synthetic submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenSubmission {
    /// Synthetic client id.
    pub client: u64,
    /// Broadcast payload.
    pub payload: Vec<u8>,
    /// Deadline class.
    pub class: DeadlineClass,
}

/// The seeded load generator. Call [`LoadGen::next_tick`] once per
/// service tick and feed the returned submissions through
/// `SbcService::submit`, re-offering on `QueueFull` if desired.
#[derive(Debug)]
pub struct LoadGen {
    profile: LoadProfile,
    rng: Drbg,
    emitted: u64,
}

impl LoadGen {
    /// Creates a generator over `profile`, seeded by `seed`.
    pub fn new(profile: LoadProfile, seed: &[u8]) -> Self {
        let mut s = seed.to_vec();
        s.extend_from_slice(b"/loadgen");
        LoadGen {
            profile,
            rng: Drbg::from_seed(&s),
            emitted: 0,
        }
    }

    /// Submissions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Whether the profile's total has been reached.
    pub fn done(&self) -> bool {
        self.emitted >= self.profile.total
    }

    /// The next tick's worth of submissions (up to `per_tick`, bounded by
    /// the remaining total).
    pub fn next_tick(&mut self) -> Vec<GenSubmission> {
        let remaining = self.profile.total.saturating_sub(self.emitted);
        let count = (self.profile.per_tick as u64).min(remaining) as usize;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.gen_one());
        }
        self.emitted += count as u64;
        out
    }

    fn gen_one(&mut self) -> GenSubmission {
        let id = u64::from_be_bytes(self.rng.gen_bytes(8).try_into().expect("8 bytes"));
        let client = id % self.profile.clients.max(1);
        let payload = self.rng.gen_bytes(self.profile.payload_len.max(1));
        let roll = self.rng.gen_bytes(1)[0] % 100;
        let class = if roll < self.profile.interactive_pct {
            DeadlineClass::Interactive
        } else if roll
            < self
                .profile
                .interactive_pct
                .saturating_add(self.profile.batch_pct)
        {
            DeadlineClass::Batch
        } else {
            DeadlineClass::Standard
        };
        GenSubmission {
            client,
            payload,
            class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let profile = LoadProfile::beacon(100, 8);
        let mut a = LoadGen::new(profile.clone(), b"gen");
        let mut b = LoadGen::new(profile, b"gen");
        while !a.done() {
            assert_eq!(a.next_tick(), b.next_tick());
        }
        assert_eq!(a.emitted(), 100);
        assert!(a.next_tick().is_empty(), "exhausted generator stays dry");
    }

    #[test]
    fn respects_total_and_rate() {
        let mut g = LoadGen::new(LoadProfile::beacon(10, 4), b"rate");
        assert_eq!(g.next_tick().len(), 4);
        assert_eq!(g.next_tick().len(), 4);
        assert_eq!(g.next_tick().len(), 2);
        assert!(g.done());
    }

    #[test]
    fn class_mix_covers_all_classes() {
        let mut g = LoadGen::new(LoadProfile::beacon(500, 500), b"mix");
        let batch = g.next_tick();
        let mut seen = [false; 3];
        for s in &batch {
            seen[s.class.tag() as usize] = true;
            assert_eq!(s.payload.len(), 32);
            assert!(s.client < 1_000_000);
        }
        assert_eq!(seen, [true; 3]);
    }
}
