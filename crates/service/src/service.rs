//! The submission-serving front end over [`SbcPool`]: bounded-queue
//! ingestion, deadline-class scheduling, the epoch-churn driver, release
//! streaming, and the deliver-before-reclaim lifecycle.
//!
//! ## Lifecycle of one submission
//!
//! 1. [`SbcService::submit`] parks it (with a ticket) in its
//!    [`DeadlineClass`] queue — or refuses with
//!    [`ServiceError::QueueFull`] when the bounded queue is saturated.
//! 2. [`SbcService::tick`] admits queued submissions into the collecting
//!    pool instance (round-robin over the `n` party slots), opening a new
//!    instance when the admission policy fires. A submission that hits a
//!    *closing* broadcast window is pushed back and admitted into the
//!    next instance — late arrivals defer, they never error.
//! 3. The instance releases on the shared clock; the service finishes it,
//!    records per-ticket submit→release latency, computes the
//!    mode-specific [`Outcome`], and streams a [`ReleaseRecord`] to every
//!    registered [`ReleaseSink`] (or parks it for
//!    [`SbcService::drain_releases`]).
//! 4. Only after the record has been handed off is the instance pruned —
//!    the service-layer mirror of the pool's retire-drains guarantee: a
//!    finished instance with an undelivered record is never reclaimed.
//!
//! Determinism: every externally observable state change is a function of
//! the accepted operation sequence (submits and ticks). That is what
//! makes the operation-journal snapshot in [`crate::snapshot`] exact.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::time::Instant;

use sbc_core::api::{SbcError, SbcResult};
use sbc_core::pool::{InstanceId, PoolFootprint, SbcPool};
use sbc_core::worlds::{RealSbcWorld, SbcBackend, SbcParams};
use sbc_primitives::sha256::Sha256;

use crate::stats::{LatencyHistogram, ServiceStats, WallHistogram};

/// How urgently a submission needs to make it into an instance.
///
/// Classes order the ingress queue, not the protocol: admission always
/// drains `Interactive` before `Standard` before `Batch`, and a pending
/// `Interactive` submission opens a new instance immediately instead of
/// waiting for a full batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeadlineClass {
    /// Latency-sensitive: triggers instance opening on its own.
    Interactive,
    /// The default: rides full batches or the flush timer.
    Standard,
    /// Throughput traffic: only admitted after everything else.
    Batch,
}

impl DeadlineClass {
    pub(crate) fn tag(self) -> u64 {
        match self {
            DeadlineClass::Interactive => 0,
            DeadlineClass::Standard => 1,
            DeadlineClass::Batch => 2,
        }
    }

    pub(crate) fn from_tag(tag: u64) -> Option<Self> {
        match tag {
            0 => Some(DeadlineClass::Interactive),
            1 => Some(DeadlineClass::Standard),
            2 => Some(DeadlineClass::Batch),
            _ => None,
        }
    }
}

/// Which application the service computes over each released batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceMode {
    /// DURS-style randomness beacon: the outcome is the XOR of the
    /// SHA-256 digests of every released message.
    Beacon,
    /// Election: each message's first byte is a candidate id; the winner
    /// is the most-voted candidate (ties to the lowest id).
    Election,
    /// Sealed-bid auction: each message's leading 8 bytes (big-endian,
    /// zero-padded for shorter payloads) are the bid; the winner is the
    /// highest bid (ties to the earliest released message).
    Auction,
}

impl ServiceMode {
    pub(crate) fn tag(self) -> u64 {
        match self {
            ServiceMode::Beacon => 0,
            ServiceMode::Election => 1,
            ServiceMode::Auction => 2,
        }
    }

    pub(crate) fn from_tag(tag: u64) -> Option<Self> {
        match tag {
            0 => Some(ServiceMode::Beacon),
            1 => Some(ServiceMode::Election),
            2 => Some(ServiceMode::Auction),
            _ => None,
        }
    }
}

/// The mode-specific result computed from one instance's simultaneous
/// release.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// XOR of the SHA-256 digests of every released message.
    Beacon([u8; 32]),
    /// Winning candidate and its vote count.
    Election {
        /// The candidate id (first payload byte) with the most votes.
        winner: u8,
        /// Votes the winner received.
        votes: u64,
    },
    /// Winning bid and where it appeared in the release vector.
    Auction {
        /// Index of the winning message in the released vector.
        winner: u64,
        /// The winning bid.
        bid: u64,
    },
}

impl Outcome {
    /// Computes the outcome of `mode` over a released message vector.
    /// Deterministic in the vector alone — the release transcript *is*
    /// the authority, so equal transcripts give equal outcomes.
    pub fn compute(mode: ServiceMode, messages: &[Vec<u8>]) -> Outcome {
        match mode {
            ServiceMode::Beacon => {
                let mut acc = [0u8; 32];
                for m in messages {
                    let d = Sha256::digest(m);
                    for (a, b) in acc.iter_mut().zip(d.iter()) {
                        *a ^= b;
                    }
                }
                Outcome::Beacon(acc)
            }
            ServiceMode::Election => {
                let mut tally = [0u64; 256];
                for m in messages {
                    if let Some(&c) = m.first() {
                        tally[c as usize] += 1;
                    }
                }
                let (winner, votes) = tally
                    .iter()
                    .enumerate()
                    .max_by_key(|(id, votes)| (**votes, usize::MAX - id))
                    .expect("tally is non-empty");
                Outcome::Election {
                    winner: winner as u8,
                    votes: *votes,
                }
            }
            ServiceMode::Auction => {
                let mut best = (0u64, 0u64);
                for (idx, m) in messages.iter().enumerate() {
                    let mut be = [0u8; 8];
                    let take = m.len().min(8);
                    be[..take].copy_from_slice(&m[..take]);
                    let bid = u64::from_be_bytes(be);
                    if bid > best.1 {
                        best = (idx as u64, bid);
                    }
                }
                Outcome::Auction {
                    winner: best.0,
                    bid: best.1,
                }
            }
        }
    }
}

/// One instance's released batch, as streamed to sinks and drained by
/// callers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReleaseRecord {
    /// The pool instance that released.
    pub instance: u64,
    /// The shared-clock round the release happened at (`τ_rel`).
    pub release_round: u64,
    /// The simultaneous release vector, exactly as the pool agreed it.
    pub messages: Vec<Vec<u8>>,
    /// The mode-specific outcome over `messages`.
    pub outcome: Outcome,
    /// Tickets of the submissions batched into this instance, in
    /// admission order.
    pub tickets: Vec<u64>,
}

/// A consumer of release records, registered with
/// [`SbcService::register_sink`]. Sinks are invoked synchronously inside
/// [`SbcService::tick`], in registration order, before the released
/// instance is reclaimed.
pub trait ReleaseSink {
    /// Called once per released instance.
    fn on_release(&mut self, record: &ReleaseRecord);
}

/// Auto-checkpoint policy: how much un-folded history the service
/// tolerates before [`SbcService::tick`] folds the journal on its own.
///
/// Each threshold arms independently (`0` disables it). Once either is
/// crossed, every subsequent tick attempts
/// [`SbcService::try_checkpoint`], so the fold lands at the **first era
/// boundary past the threshold** — a mid-epoch crossing just waits for
/// the pool to drain. Auto-folds are counted in
/// [`ServiceStats::auto_folds`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointEvery {
    /// Fold once this many instances have finished since the last
    /// checkpoint — "era" in the scheduling sense: one completed
    /// instance lifecycle. `0` disables this threshold.
    pub eras: u64,
    /// Fold once the post-checkpoint journal tail holds at least this
    /// many operations. `0` disables this threshold.
    pub journal_ops: u64,
}

/// Everything fixed at service construction. The config is part of the
/// snapshot image, so two services built from equal configs and fed equal
/// operation sequences are bit-identical.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// SBC experiment parameters shared by every instance.
    pub params: SbcParams,
    /// Pool seed (all randomness derives from it).
    pub seed: Vec<u8>,
    /// The application computed over each release.
    pub mode: ServiceMode,
    /// Bound on queued-but-unadmitted submissions across all classes;
    /// beyond it [`SbcService::submit`] answers
    /// [`ServiceError::QueueFull`].
    pub queue_cap: usize,
    /// Submissions batched into one instance before the window closes.
    pub batch_size: usize,
    /// Bound on simultaneously live instances; admission waits when
    /// reached.
    pub max_live: usize,
    /// Ticks a non-interactive submission may wait before a partial
    /// batch is opened for it anyway.
    pub flush_after: u64,
    /// Captured-leak buffer cap per instance (`None` = uncapped). The
    /// service always captures leaks; the cap keeps long-lived pools
    /// bounded, with evictions surfaced in
    /// [`ServiceStats::leak_overflow`].
    pub leak_cap: Option<usize>,
    /// Keep a wall-clock submit→release histogram alongside the rounds
    /// one, surfaced as [`ServiceStats::wall`]. Observational only: the
    /// flag and the histogram are **excluded from snapshots** (wall time
    /// is not replayable), so a restored service always starts with this
    /// off.
    pub record_wall_clock: bool,
    /// Auto-checkpoint policy (`None` = manual folds only). When set,
    /// [`SbcService::tick`] calls [`SbcService::try_checkpoint`] at the
    /// first era boundary past either [`CheckpointEvery`] threshold, so
    /// the journal — and with it snapshot size and restore time — stays
    /// bounded without the driver ever calling
    /// [`SbcService::checkpoint`]. Like `record_wall_clock` the policy
    /// is **excluded from snapshots**: replay must re-derive the folded
    /// state from the serialized checkpoint, not from re-running the
    /// policy, so a restored service starts with it off.
    pub checkpoint_every: Option<CheckpointEvery>,
}

impl ServiceConfig {
    /// A config for `n` parties in `mode`, with the defaults a long-lived
    /// service wants: 64-submission batches, 64 live instances, a
    /// 65536-deep queue, a 4-tick flush timer, and a 32-entry leak cap.
    pub fn new(n: usize, mode: ServiceMode) -> Self {
        ServiceConfig {
            params: SbcParams::default_for(n),
            seed: b"sbc-service".to_vec(),
            mode,
            queue_cap: 65_536,
            batch_size: 64,
            max_live: 64,
            flush_after: 4,
            leak_cap: Some(32),
            record_wall_clock: false,
            checkpoint_every: None,
        }
    }

    /// Replaces the experiment parameters wholesale.
    pub fn params(mut self, params: SbcParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the pool seed.
    pub fn seed(mut self, seed: &[u8]) -> Self {
        self.seed = seed.to_vec();
        self
    }

    /// Sets the ingress queue bound.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Sets the per-instance batch size.
    pub fn batch_size(mut self, size: usize) -> Self {
        self.batch_size = size.max(1);
        self
    }

    /// Sets the live-instance bound.
    pub fn max_live(mut self, live: usize) -> Self {
        self.max_live = live.max(1);
        self
    }

    /// Sets the partial-batch flush timer (ticks).
    pub fn flush_after(mut self, ticks: u64) -> Self {
        self.flush_after = ticks;
        self
    }

    /// Sets (or, with `None`, removes) the per-instance leak cap.
    pub fn leak_cap(mut self, cap: Option<usize>) -> Self {
        self.leak_cap = cap;
        self
    }

    /// Enables (or disables) the wall-clock latency view — see the
    /// [`record_wall_clock`](ServiceConfig::record_wall_clock) field for
    /// its snapshot semantics.
    pub fn record_wall_clock(mut self, on: bool) -> Self {
        self.record_wall_clock = on;
        self
    }

    /// Arms the auto-checkpoint policy — see the
    /// [`checkpoint_every`](ServiceConfig::checkpoint_every) field for
    /// its trigger and snapshot semantics.
    pub fn checkpoint_every(mut self, policy: CheckpointEvery) -> Self {
        self.checkpoint_every = Some(policy);
        self
    }
}

/// Typed service-layer failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded ingress queue is saturated — backpressure, retry after
    /// a tick.
    QueueFull {
        /// The configured queue bound.
        cap: usize,
    },
    /// **Historical — the legacy v1 format is read-only and this is no
    /// longer returned.** The retired v1 single-frame writer used this
    /// to refuse journals whose declared frame length (header + body,
    /// the quantity the codec's `Oversize` rule caps) outgrew
    /// `MAX_FRAME`. The v2 streaming format — the only writer left —
    /// chunks a payload of any size, and an over-cap *historical* v1
    /// image surfaces from [`SbcService::restore`] as
    /// [`BadSnapshot`](Self::BadSnapshot) at decode time. The variant
    /// stays so exhaustive matches over `ServiceError` keep compiling.
    SnapshotTooLarge {
        /// The declared frame length the snapshot would need.
        bytes: usize,
        /// The codec's hard frame cap (`MAX_FRAME`).
        max: usize,
    },
    /// A checkpoint was requested mid-era: pre-boundary instances are
    /// still live, or released records have not been delivered yet. A
    /// checkpoint boundary requires every pre-boundary instance
    /// delivered, drained, and pruned (pool footprint flat) — queued
    /// submissions are fine (they fold into the checkpoint), in-flight
    /// epochs are not.
    NotAtBoundary {
        /// Instances still live.
        live: usize,
        /// Released records still parked for `drain_releases`.
        parked: usize,
    },
    /// The snapshot bytes are not a valid service image.
    BadSnapshot {
        /// What failed to parse.
        detail: String,
    },
    /// A drive loop exceeded its tick budget.
    Timeout {
        /// Ticks the loop was allowed.
        budget: u64,
    },
    /// An underlying pool failure.
    Pool(SbcError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { cap } => {
                write!(f, "ingress queue full (cap {cap}): apply backpressure")
            }
            ServiceError::SnapshotTooLarge { bytes, max } => {
                write!(
                    f,
                    "snapshot is {bytes} bytes, exceeding the {max}-byte frame cap"
                )
            }
            ServiceError::NotAtBoundary { live, parked } => {
                write!(
                    f,
                    "not at an era boundary: {live} instances live, {parked} records undelivered"
                )
            }
            ServiceError::BadSnapshot { detail } => write!(f, "bad snapshot: {detail}"),
            ServiceError::Timeout { budget } => {
                write!(f, "service drive exceeded its {budget}-tick budget")
            }
            ServiceError::Pool(e) => write!(f, "pool error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<SbcError> for ServiceError {
    fn from(e: SbcError) -> Self {
        ServiceError::Pool(e)
    }
}

/// A queued-but-unadmitted submission.
#[derive(Clone, Debug)]
struct Pending {
    ticket: u64,
    payload: Vec<u8>,
    class: DeadlineClass,
    enqueued_round: u64,
    /// Wall-clock arrival, carried only when `record_wall_clock` is on.
    enqueued_at: Option<Instant>,
}

/// A submission admitted into a live instance, awaiting its release.
#[derive(Clone, Debug)]
struct InFlight {
    ticket: u64,
    enqueued_round: u64,
    enqueued_at: Option<Instant>,
}

/// One journaled external operation (see [`crate::snapshot`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    /// An accepted submission.
    Submit {
        /// Submitting client id.
        client: u64,
        /// Broadcast payload.
        payload: Vec<u8>,
        /// Deadline class it was queued under.
        class: DeadlineClass,
    },
    /// A run of consecutive driver ticks, run-length encoded: an idle
    /// service journals O(1) entries per quiet stretch instead of one
    /// per round, so snapshot size no longer grows with wall time.
    Ticks(u64),
}

/// A folded journal prefix: the complete deterministic service state at
/// an era boundary, captured when [`SbcService::checkpoint`] truncates
/// the journal.
///
/// The record is small and bounded: at a boundary every pre-boundary
/// instance has been delivered and pruned, so the pool collapses to its
/// `(round, next instance id)` fast-forward coordinate
/// ([`sbc_core::pool::SbcPool::resume_at`]) and the only service state
/// left is the queues, the counters, and the latency histogram. Restore
/// cost is O(this record + the post-boundary tail), not O(lifetime).
#[derive(Clone, Debug)]
pub(crate) struct Checkpoint {
    /// Checkpoint generation: 0 for the fresh-service base, +1 per fold.
    pub(crate) era: u64,
    /// The shared-clock round at the boundary.
    pub(crate) round: u64,
    /// The pool's next instance id at the boundary.
    pub(crate) next_instance: u64,
    /// The next submission ticket at the boundary.
    pub(crate) next_ticket: u64,
    /// Absolute counter values at the boundary (tail replay re-derives
    /// everything after).
    pub(crate) counters: Counters,
    /// The rounds-latency histogram at the boundary.
    pub(crate) hist: LatencyHistogram,
    /// Queued-but-unadmitted submissions per class, in queue order:
    /// `(ticket, payload, enqueued_round)` — the class is the queue
    /// index.
    pub(crate) queues: [Vec<(u64, Vec<u8>, u64)>; 3],
}

impl Checkpoint {
    /// The era-0 base every fresh service starts from: an empty
    /// checkpoint at round 0. Snapshot/restore treats eras uniformly —
    /// a never-checkpointed service restores through this trivial base.
    pub(crate) fn initial() -> Self {
        Checkpoint {
            era: 0,
            round: 0,
            next_instance: 0,
            next_ticket: 0,
            counters: Counters::default(),
            hist: LatencyHistogram::new(),
            queues: [Vec::new(), Vec::new(), Vec::new()],
        }
    }
}

/// The long-lived submission-serving service over one [`SbcPool`].
///
/// See the [crate docs](crate) for the submission lifecycle and the
/// full surface.
pub struct SbcService<W: SbcBackend = RealSbcWorld> {
    pub(crate) cfg: ServiceConfig,
    pool: SbcPool<W>,
    /// One FIFO per deadline class, drained in class order.
    queues: [VecDeque<Pending>; 3],
    /// The instance currently accepting admissions, with its fill count.
    collecting: Option<(InstanceId, usize)>,
    /// Per-live-instance admitted submissions.
    inflight: BTreeMap<u64, Vec<InFlight>>,
    /// Released records awaiting [`SbcService::drain_releases`].
    outbox: VecDeque<ReleaseRecord>,
    /// Finished instances whose record still sits in the outbox — never
    /// pruned until the record is drained (deliver-before-reclaim).
    undelivered: BTreeSet<u64>,
    sinks: Vec<Box<dyn ReleaseSink>>,
    /// The post-boundary operation tail — everything accepted since the
    /// last checkpoint (since birth at era 0).
    pub(crate) journal: Vec<Op>,
    /// The folded prefix the journal is relative to.
    pub(crate) checkpoint: Checkpoint,
    hist: LatencyHistogram,
    wall: WallHistogram,
    next_ticket: u64,
    live: usize,
    stats: Counters,
    /// Bytes of the most recent snapshot image produced (or restored
    /// from). Observational only — like the wall-clock view it is
    /// excluded from images and from determinism comparisons.
    snapshot_bytes: Cell<u64>,
    /// Folds performed by the [`CheckpointEvery`] policy (manual
    /// [`checkpoint`](Self::checkpoint) calls are not counted). Outside
    /// [`Counters`] on purpose: the policy is excluded from snapshots,
    /// so this count is too.
    auto_folds: u64,
}

/// The mutable counter block behind [`ServiceStats`].
#[derive(Clone, Debug, Default)]
pub(crate) struct Counters {
    pub(crate) accepted: u64,
    pub(crate) rejected: u64,
    pub(crate) deferred: u64,
    pub(crate) delivered: u64,
    pub(crate) opened: u64,
    pub(crate) finished: u64,
    pub(crate) pruned: u64,
    pub(crate) ticks: u64,
    pub(crate) peak_live: usize,
    pub(crate) peak_queue: usize,
    pub(crate) leak_overflow: u64,
}

impl<W: SbcBackend> SbcService<W> {
    /// Builds a service over a fresh pool.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Pool`] wrapping the pool's parameter validation.
    pub fn new(cfg: ServiceConfig) -> Result<Self, ServiceError> {
        let mut builder = SbcPool::builder(cfg.params.n)
            .phi(cfg.params.phi)
            .delta(cfg.params.delta)
            .tle_alpha(cfg.params.tle_alpha)
            .tle_delay(cfg.params.tle_delay)
            .seed(&cfg.seed)
            .capture_leaks();
        if let Some(cap) = cfg.leak_cap {
            builder = builder.leak_cap(cap);
        }
        let pool = builder.build_backend::<W>()?;
        Ok(SbcService {
            cfg,
            pool,
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            collecting: None,
            inflight: BTreeMap::new(),
            outbox: VecDeque::new(),
            undelivered: BTreeSet::new(),
            sinks: Vec::new(),
            journal: Vec::new(),
            checkpoint: Checkpoint::initial(),
            hist: LatencyHistogram::new(),
            wall: WallHistogram::new(),
            next_ticket: 0,
            live: 0,
            stats: Counters::default(),
            snapshot_bytes: Cell::new(0),
            auto_folds: 0,
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Registers a release sink. Sinks receive every record released
    /// *after* registration, synchronously inside [`tick`](Self::tick).
    pub fn register_sink(&mut self, sink: Box<dyn ReleaseSink>) {
        self.sinks.push(sink);
    }

    /// Accepts a submission into its deadline-class queue, returning its
    /// ticket (dense, in acceptance order — the ticket indexes the
    /// operation journal's accepted-submission sequence).
    ///
    /// # Errors
    ///
    /// [`ServiceError::QueueFull`] when the bounded queue is saturated —
    /// the typed backpressure signal; nothing is enqueued.
    pub fn submit(
        &mut self,
        client: u64,
        payload: Vec<u8>,
        class: DeadlineClass,
    ) -> Result<u64, ServiceError> {
        if self.queued() >= self.cfg.queue_cap {
            self.stats.rejected += 1;
            return Err(ServiceError::QueueFull {
                cap: self.cfg.queue_cap,
            });
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.stats.accepted += 1;
        self.journal.push(Op::Submit {
            client,
            payload: payload.clone(),
            class,
        });
        self.queues[class.tag() as usize].push_back(Pending {
            ticket,
            payload,
            class,
            enqueued_round: self.pool.round(),
            enqueued_at: self.cfg.record_wall_clock.then(Instant::now),
        });
        self.stats.peak_queue = self.stats.peak_queue.max(self.queued());
        Ok(ticket)
    }

    /// Submissions currently queued across all classes.
    pub fn queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// One driver step: admit queued submissions (opening instances when
    /// the policy fires), advance the shared clock one round, then
    /// finish, account, deliver, and reclaim whatever released.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Pool`] on a broken pool invariant; admission
    /// errors other than the deferred-window case propagate the same way.
    pub fn tick(&mut self) -> Result<(), ServiceError> {
        // Run-length encode consecutive ticks: an idle stretch of any
        // length is one journal entry.
        match self.journal.last_mut() {
            Some(Op::Ticks(count)) => *count += 1,
            _ => self.journal.push(Op::Ticks(1)),
        }
        self.stats.ticks += 1;
        self.admit()?;
        self.stats.peak_live = self.stats.peak_live.max(self.live);
        let releases = self.pool.step_round()?;
        for (id, result) in releases {
            self.on_release(id, result)?;
        }
        self.auto_checkpoint();
        Ok(())
    }

    /// The [`CheckpointEvery`] hook at the tail of every tick: once
    /// either threshold is crossed, fold at the first era boundary.
    /// This tick's own journal entry is folded with the rest — the
    /// checkpoint round already includes the round it advanced.
    fn auto_checkpoint(&mut self) {
        let Some(policy) = self.cfg.checkpoint_every else {
            return;
        };
        let eras_due = policy.eras > 0
            && self.stats.finished - self.checkpoint.counters.finished >= policy.eras;
        let journal_due = policy.journal_ops > 0 && self.journal.len() as u64 >= policy.journal_ops;
        if (eras_due || journal_due) && self.try_checkpoint() {
            self.auto_folds += 1;
        }
    }

    /// Admission: fill the collecting window, open new instances while
    /// the policy allows, defer submissions that hit a closing window.
    fn admit(&mut self) -> Result<(), ServiceError> {
        let n = self.cfg.params.n;
        loop {
            let (id, mut filled) = match self.collecting {
                Some(win) => win,
                None => {
                    if !self.should_open() {
                        return Ok(());
                    }
                    let id = self.pool.open_instance()?;
                    self.inflight.insert(id.0, Vec::new());
                    self.stats.opened += 1;
                    self.live += 1;
                    self.collecting = Some((id, 0));
                    (id, 0)
                }
            };
            while filled < self.cfg.batch_size {
                let Some(pending) = self.pop_next() else {
                    // Queue drained: the window keeps collecting on later
                    // ticks until it fills or its period closes.
                    self.collecting = Some((id, filled));
                    return Ok(());
                };
                let party = (filled % n) as u32;
                match self.pool.submit(id, party, &pending.payload) {
                    Ok(()) => {
                        self.inflight
                            .get_mut(&id.0)
                            .expect("collecting instance is tracked")
                            .push(InFlight {
                                ticket: pending.ticket,
                                enqueued_round: pending.enqueued_round,
                                enqueued_at: pending.enqueued_at,
                            });
                        filled += 1;
                    }
                    Err(SbcError::SubmitAfterClose { .. }) => {
                        // Late arrival: the window is closing. Put the
                        // submission back at the head of its class and
                        // close the window — the next loop iteration may
                        // open a fresh instance for it immediately.
                        self.stats.deferred += 1;
                        self.queues[pending.class.tag() as usize].push_front(pending);
                        self.collecting = None;
                        break;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            if self.collecting.is_some() && filled >= self.cfg.batch_size {
                // Batch full: close the window; the loop decides whether
                // the remaining queue justifies another instance.
                self.collecting = None;
            }
        }
    }

    /// Whether the admission policy opens a new instance now.
    fn should_open(&self) -> bool {
        if self.queued() == 0 || self.live >= self.cfg.max_live {
            return false;
        }
        if !self.queues[DeadlineClass::Interactive.tag() as usize].is_empty() {
            return true;
        }
        if self.queued() >= self.cfg.batch_size {
            return true;
        }
        let now = self.pool.round();
        self.queues
            .iter()
            .filter_map(|q| q.front())
            .any(|p| now.saturating_sub(p.enqueued_round) >= self.cfg.flush_after)
    }

    /// Pops the next submission in class-priority order.
    fn pop_next(&mut self) -> Option<Pending> {
        self.queues.iter_mut().find_map(VecDeque::pop_front)
    }

    /// Handles one release: finish, account latency and leak overflow,
    /// compute the outcome, deliver the record, and reclaim the instance
    /// — in exactly that order. Delivery strictly precedes pruning.
    fn on_release(&mut self, id: InstanceId, result: SbcResult) -> Result<(), ServiceError> {
        if self.collecting.map(|(c, _)| c) == Some(id) {
            // Released while still collecting (queue went quiet): the
            // window is gone with it.
            self.collecting = None;
        }
        self.pool.finish(id)?;
        self.stats.finished += 1;
        self.live -= 1;
        // Account while the instance is still tracked; pruning drops it.
        self.stats.leak_overflow += self.pool.leak_overflow(id)?;
        let inflight = self.inflight.remove(&id.0).unwrap_or_default();
        let mut tickets = Vec::with_capacity(inflight.len());
        for f in &inflight {
            self.hist
                .record(result.release_round.saturating_sub(f.enqueued_round));
            if let Some(at) = f.enqueued_at {
                self.wall.record(at.elapsed().as_micros() as u64);
            }
            tickets.push(f.ticket);
        }
        let record = ReleaseRecord {
            instance: id.0,
            release_round: result.release_round,
            outcome: Outcome::compute(self.cfg.mode, &result.messages),
            messages: result.messages,
            tickets,
        };
        if self.sinks.is_empty() {
            // No consumer yet: park the record and keep the instance
            // until `drain_releases` takes ownership of it.
            self.undelivered.insert(id.0);
            self.outbox.push_back(record);
        } else {
            for sink in &mut self.sinks {
                sink.on_release(&record);
            }
            self.stats.delivered += 1;
            self.pool.prune(id)?;
            self.stats.pruned += 1;
        }
        Ok(())
    }

    /// Takes every parked release record, reclaiming the instances they
    /// came from. With sinks registered this is usually empty — sinks
    /// consume records (and trigger reclamation) inside
    /// [`tick`](Self::tick).
    pub fn drain_releases(&mut self) -> Vec<ReleaseRecord> {
        let records: Vec<ReleaseRecord> = self.outbox.drain(..).collect();
        for rec in &records {
            self.stats.delivered += 1;
            if self.undelivered.remove(&rec.instance)
                && self.pool.prune(InstanceId(rec.instance)).is_ok()
            {
                self.stats.pruned += 1;
            }
        }
        records
    }

    /// Drives every queued and in-flight submission to release, delivers
    /// all records, and reclaims everything: afterwards the queue is
    /// empty, no instance is live, and the pool footprint is back to
    /// baseline (modulo records still parked for
    /// [`drain_releases`](Self::drain_releases), which are returned).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Timeout`] if the backlog fails to drain within a
    /// generous tick budget (a wedged pool, not a big queue).
    pub fn shutdown(&mut self) -> Result<Vec<ReleaseRecord>, ServiceError> {
        let per_cycle = self.cfg.params.phi + self.cfg.params.delta + 4;
        let cycles = (self.queued() as u64).div_ceil(self.cfg.batch_size.max(1) as u64)
            + self.live as u64
            + 2;
        let budget = cycles * per_cycle + self.cfg.flush_after + 1;
        let mut spent = 0;
        while self.queued() > 0 || self.live > 0 {
            if spent >= budget {
                return Err(ServiceError::Timeout { budget });
            }
            self.tick()?;
            spent += 1;
        }
        Ok(self.drain_releases())
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            accepted: self.stats.accepted,
            rejected: self.stats.rejected,
            deferred: self.stats.deferred,
            delivered: self.stats.delivered,
            opened: self.stats.opened,
            finished: self.stats.finished,
            pruned: self.stats.pruned,
            ticks: self.stats.ticks,
            peak_live: self.stats.peak_live,
            peak_queue: self.stats.peak_queue,
            queued: self.queued(),
            live: self.live,
            leak_overflow: self.stats.leak_overflow,
            round: self.pool.round(),
            era: self.checkpoint.era,
            checkpoint_round: self.checkpoint.round,
            journal_ops: self.journal.len() as u64,
            auto_folds: self.auto_folds,
            snapshot_bytes: self.snapshot_bytes.get(),
            latency: self.hist.summary(),
            wall: self.cfg.record_wall_clock.then(|| self.wall.summary()),
        }
    }

    /// The underlying pool's memory-bookkeeping census — the flatness
    /// proxy churn tests and benches assert on.
    pub fn footprint(&self) -> PoolFootprint {
        self.pool.footprint()
    }

    /// The shared clock round.
    pub fn round(&self) -> u64 {
        self.pool.round()
    }

    /// Instances currently live.
    pub fn live(&self) -> usize {
        self.live
    }

    /// The service's era: how many times the journal has been folded
    /// into a checkpoint (0 for a never-checkpointed service).
    pub fn era(&self) -> u64 {
        self.checkpoint.era
    }

    /// Whether the service currently sits at an era boundary: every
    /// instance opened so far has released, been delivered (or drained),
    /// and been pruned — the pool footprint is flat. Queued submissions
    /// do not block a boundary; in-flight epochs and undelivered records
    /// do.
    pub fn at_boundary(&self) -> bool {
        self.live == 0
            && self.outbox.is_empty()
            && self.undelivered.is_empty()
            && self.pool.footprint() == PoolFootprint::default()
    }

    /// Folds the journal into a compact checkpoint record and truncates
    /// it, advancing the era. After this, snapshots carry (checkpoint +
    /// post-boundary tail) instead of the journal since birth — image
    /// size and restore time become O(current era).
    ///
    /// Valid only at an era boundary ([`at_boundary`](Self::at_boundary)):
    /// with no instance live and nothing undelivered, the pool collapses
    /// to its `(round, next id)` fast-forward coordinate and the queues,
    /// counters, and histogram are the whole remaining state.
    ///
    /// # Errors
    ///
    /// [`ServiceError::NotAtBoundary`] when pre-boundary state is still
    /// in flight; the service is unchanged.
    pub fn checkpoint(&mut self) -> Result<(), ServiceError> {
        if !self.at_boundary() {
            return Err(ServiceError::NotAtBoundary {
                live: self.live,
                parked: self.outbox.len(),
            });
        }
        debug_assert!(self.collecting.is_none(), "no live instance, no window");
        debug_assert!(self.inflight.is_empty(), "no live instance, no inflight");
        let queues = [0, 1, 2].map(|i: usize| {
            self.queues[i]
                .iter()
                .map(|p| (p.ticket, p.payload.clone(), p.enqueued_round))
                .collect()
        });
        self.checkpoint = Checkpoint {
            era: self.checkpoint.era + 1,
            round: self.pool.round(),
            next_instance: self.pool.next_instance_id(),
            next_ticket: self.next_ticket,
            counters: self.stats.clone(),
            hist: self.hist.clone(),
            queues,
        };
        self.journal.clear();
        Ok(())
    }

    /// [`checkpoint`](Self::checkpoint) if the service is at an era
    /// boundary; returns whether a fold happened. The polling form for
    /// drivers that checkpoint opportunistically between epochs.
    pub fn try_checkpoint(&mut self) -> bool {
        self.at_boundary() && self.checkpoint().is_ok()
    }

    /// Restore seam: installs a decoded checkpoint into a **fresh**
    /// service — fast-forwards the pool, rebuilds the queues (wall-clock
    /// arrival times are gone; they are observational), and overlays the
    /// boundary-time counters and histogram. Tail replay then re-derives
    /// everything after the boundary.
    pub(crate) fn apply_checkpoint(&mut self, cp: Checkpoint) -> Result<(), ServiceError> {
        self.pool.resume_at(cp.round, cp.next_instance)?;
        for (i, entries) in cp.queues.iter().enumerate() {
            let class = DeadlineClass::from_tag(i as u64).expect("queue index is a valid class");
            for (ticket, payload, enqueued_round) in entries {
                self.queues[i].push_back(Pending {
                    ticket: *ticket,
                    payload: payload.clone(),
                    class,
                    enqueued_round: *enqueued_round,
                    enqueued_at: None,
                });
            }
        }
        self.next_ticket = cp.next_ticket;
        self.stats = cp.counters.clone();
        self.hist = cp.hist.clone();
        self.checkpoint = cp;
        Ok(())
    }

    /// Records the byte size of the image this service was just
    /// serialized to (or restored from) — surfaced as
    /// [`ServiceStats::snapshot_bytes`], observational only.
    pub(crate) fn note_snapshot_bytes(&self, bytes: u64) {
        self.snapshot_bytes.set(bytes);
    }

    /// Restore bookkeeping: `already_delivered` is how many of the
    /// records released during tail replay had already left the original
    /// service (delivered at capture minus delivered at the checkpoint
    /// base). Discards them from the outbox (reclaiming their instances)
    /// without recounting them as fresh deliveries, then overlays the
    /// absolute non-replayable counters.
    pub(crate) fn mark_restored(&mut self, already_delivered: u64, delivered: u64, rejected: u64) {
        for _ in 0..already_delivered {
            let Some(rec) = self.outbox.pop_front() else {
                break;
            };
            if self.undelivered.remove(&rec.instance)
                && self.pool.prune(InstanceId(rec.instance)).is_ok()
            {
                self.stats.pruned += 1;
            }
        }
        self.stats.delivered = delivered;
        self.stats.rejected = rejected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(seed: &[u8]) -> SbcService {
        SbcService::new(
            ServiceConfig::new(2, ServiceMode::Beacon)
                .seed(seed)
                .batch_size(4)
                .queue_cap(8),
        )
        .unwrap()
    }

    #[test]
    fn queue_full_is_typed_backpressure() {
        let mut s = svc(b"qfull");
        for i in 0..8 {
            s.submit(i, vec![i as u8], DeadlineClass::Batch).unwrap();
        }
        let err = s
            .submit(9, vec![9], DeadlineClass::Interactive)
            .unwrap_err();
        assert_eq!(err, ServiceError::QueueFull { cap: 8 });
        assert_eq!(s.stats().rejected, 1);
        // A tick admits a batch and frees room.
        s.tick().unwrap();
        assert!(s.queued() < 8);
        s.submit(9, vec![9], DeadlineClass::Interactive).unwrap();
    }

    #[test]
    fn classes_admit_in_priority_order() {
        let mut s = svc(b"class");
        let t_batch = s
            .submit(1, b"batch".to_vec(), DeadlineClass::Batch)
            .unwrap();
        let t_std = s
            .submit(2, b"standard".to_vec(), DeadlineClass::Standard)
            .unwrap();
        let t_int = s
            .submit(3, b"interactive".to_vec(), DeadlineClass::Interactive)
            .unwrap();
        let records = s.shutdown().unwrap();
        assert_eq!(records.len(), 1);
        // Admission order inside the instance follows class priority,
        // not arrival order.
        assert_eq!(records[0].tickets, vec![t_int, t_std, t_batch]);
    }

    #[test]
    fn submissions_release_and_latency_is_recorded() {
        let mut s = svc(b"lat");
        s.submit(1, b"m".to_vec(), DeadlineClass::Interactive)
            .unwrap();
        let records = s.shutdown().unwrap();
        assert_eq!(records.len(), 1);
        assert!(records[0].messages.iter().any(|m| m == b"m"));
        let stats = s.stats();
        assert_eq!(stats.latency.count, 1);
        // Submitted at round 0, admitted tick 1, τ_rel = Φ + ∆ past the
        // wake — a handful of rounds, well inside the fixed buckets.
        assert!(stats.latency.p50 > 0 && stats.latency.p50 < 20);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.pruned, 1);
    }

    #[test]
    fn wall_clock_view_is_opt_in() {
        // Off (the default): the wall field stays None even after
        // releases.
        let mut s = svc(b"wall-off");
        s.submit(1, b"m".to_vec(), DeadlineClass::Interactive)
            .unwrap();
        s.shutdown().unwrap();
        assert_eq!(s.stats().wall, None);

        // On: every released submission lands in the wall histogram too.
        let mut s = SbcService::<sbc_core::worlds::RealSbcWorld>::new(
            ServiceConfig::new(2, ServiceMode::Beacon)
                .seed(b"wall-on")
                .batch_size(2)
                .record_wall_clock(true),
        )
        .unwrap();
        s.submit(1, b"a".to_vec(), DeadlineClass::Interactive)
            .unwrap();
        s.submit(2, b"b".to_vec(), DeadlineClass::Standard).unwrap();
        s.shutdown().unwrap();
        let stats = s.stats();
        let wall = stats.wall.expect("wall view enabled");
        assert_eq!(wall.count, stats.latency.count);
        assert_eq!(wall.count, 2);
        assert!(wall.p50_us <= wall.p90_us && wall.p90_us <= wall.p99_us);
        assert!(wall.max_us >= wall.p99_us || wall.max_us >= wall.mean_us);
    }

    /// Drives `cycle` submissions to release and drains them, returning
    /// the deepest journal tail observed along the way.
    fn drain_cycle(s: &mut SbcService, cycle: u64) -> u64 {
        let mut max_journal = 0;
        s.submit(cycle, vec![cycle as u8], DeadlineClass::Interactive)
            .unwrap();
        s.tick().unwrap();
        s.submit(100 + cycle, vec![cycle as u8], DeadlineClass::Interactive)
            .unwrap();
        while s.live() > 0 || s.queued() > 0 {
            s.tick().unwrap();
            max_journal = max_journal.max(s.stats().journal_ops);
        }
        s.drain_releases();
        // The first post-drain tick sits at an era boundary: an armed
        // policy past its threshold folds here.
        s.tick().unwrap();
        max_journal.max(s.stats().journal_ops)
    }

    #[test]
    fn auto_checkpoint_bounds_the_journal() {
        let mut s = SbcService::new(
            ServiceConfig::new(2, ServiceMode::Beacon)
                .seed(b"auto-fold")
                .batch_size(2)
                .checkpoint_every(CheckpointEvery {
                    eras: 0,
                    journal_ops: 4,
                }),
        )
        .unwrap();
        let mut max_journal = 0;
        for cycle in 0..12 {
            max_journal = max_journal.max(drain_cycle(&mut s, cycle));
        }
        // The long-lived service folded itself every cycle: the tail
        // never outgrew the threshold by more than one epoch's worth of
        // operations (the crossing has to wait for the boundary).
        assert!(s.era() >= 11, "era {}", s.era());
        assert_eq!(s.stats().auto_folds, s.era(), "every fold was automatic");
        assert!(max_journal <= 8, "journal peaked at {max_journal} ops");
        assert!(s.stats().journal_ops <= 1, "tail is freshly folded");

        // An unarmed twin fed the same operations never folds: the
        // journal grows without bound.
        let mut twin = SbcService::new(
            ServiceConfig::new(2, ServiceMode::Beacon)
                .seed(b"auto-fold")
                .batch_size(2),
        )
        .unwrap();
        let mut twin_max = 0;
        for cycle in 0..12 {
            twin_max = twin_max.max(drain_cycle(&mut twin, cycle));
        }
        assert_eq!(twin.era(), 0);
        assert_eq!(twin.stats().auto_folds, 0);
        assert!(twin_max > max_journal);
    }

    #[test]
    fn auto_checkpoint_era_threshold_spans_epochs() {
        let mut s = SbcService::new(
            ServiceConfig::new(2, ServiceMode::Beacon)
                .seed(b"auto-eras")
                .batch_size(2)
                .checkpoint_every(CheckpointEvery {
                    eras: 3,
                    journal_ops: 0,
                }),
        )
        .unwrap();
        for cycle in 0..6 {
            drain_cycle(&mut s, cycle);
            // Folds land only at every third finished instance; the
            // boundaries in between leave the journal alone.
            assert_eq!(s.era(), (cycle + 1) / 3, "after cycle {cycle}");
            if s.era() == 0 {
                assert!(s.stats().journal_ops > 0, "unfolded tail persists");
            }
        }
        assert_eq!(s.stats().auto_folds, 2);

        // The policy is config-only: it never enters the wire format, so
        // the restored twin comes back with manual folds only — but the
        // folded era itself survives the round trip.
        let restored = SbcService::<RealSbcWorld>::restore(&s.snapshot().unwrap()).unwrap();
        assert_eq!(restored.config().checkpoint_every, None);
        assert_eq!(restored.era(), s.era());
        assert_eq!(restored.stats().auto_folds, 0);
    }

    #[test]
    fn outcome_election_and_auction() {
        let votes = [vec![2u8], vec![1], vec![2], vec![7]];
        assert_eq!(
            Outcome::compute(ServiceMode::Election, &votes),
            Outcome::Election {
                winner: 2,
                votes: 2
            }
        );
        // Tie at one vote each goes to the lowest candidate id.
        let tie = [vec![5u8], vec![3]];
        assert_eq!(
            Outcome::compute(ServiceMode::Election, &tie),
            Outcome::Election {
                winner: 3,
                votes: 1
            }
        );
        let bids = [
            9u64.to_be_bytes().to_vec(),
            42u64.to_be_bytes().to_vec(),
            vec![0, 1], // short payload: zero-padded tail
        ];
        assert_eq!(
            Outcome::compute(ServiceMode::Auction, &bids),
            Outcome::Auction {
                winner: 2,
                bid: u64::from_be_bytes([0, 1, 0, 0, 0, 0, 0, 0])
            }
        );
    }

    #[test]
    fn beacon_outcome_is_order_insensitive_xor() {
        let a = Outcome::compute(ServiceMode::Beacon, &[b"x".to_vec(), b"y".to_vec()]);
        let b = Outcome::compute(ServiceMode::Beacon, &[b"y".to_vec(), b"x".to_vec()]);
        assert_eq!(a, b);
        assert_ne!(a, Outcome::compute(ServiceMode::Beacon, &[b"x".to_vec()]));
    }

    #[test]
    fn error_display_renders() {
        for e in [
            ServiceError::QueueFull { cap: 4 },
            ServiceError::SnapshotTooLarge { bytes: 9, max: 5 },
            ServiceError::NotAtBoundary { live: 2, parked: 1 },
            ServiceError::BadSnapshot { detail: "d".into() },
            ServiceError::Timeout { budget: 3 },
            ServiceError::Pool(SbcError::NoInput),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
