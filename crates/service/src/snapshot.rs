//! Snapshot/restore: the service as a deterministic operation journal,
//! framed through the `sbc-net` codec.
//!
//! ## Why a journal, not a state dump
//!
//! Every externally observable state transition of [`SbcService`] is a
//! deterministic function of the *accepted operation sequence* — the
//! interleaving of accepted submissions and driver ticks. All pool
//! randomness derives from the seeded DRBG, admission and batching
//! decisions are pure functions of (queue, pool round, config), and
//! latency is measured in rounds. So the journal of accepted operations,
//! plus the config it runs under, **is** the state: replaying it from a
//! fresh service reproduces the pool, the queues, the in-flight epoch,
//! the histogram, and — the property the conformance test pins down —
//! release transcripts bit-identical to the uninterrupted original.
//!
//! The only facts the replay cannot rederive are the ones that left the
//! service (records already delivered to sinks or drained — the restored
//! run must not re-deliver them) and the ones that never entered it
//! (submissions rejected with `QueueFull` touch a counter but not the
//! journal). Those two numbers ride alongside the journal.
//!
//! ## Wire format
//!
//! One [`Frame`] with `FrameKind::Snapshot`, `Env → Env`, `sent_at` = the
//! shared-clock round at capture. The body is
//!
//! ```text
//! List[ Str("sbc-service/v1"),
//!       List[n, Φ, ∆, α, delay]          (U64s)
//!       Bytes(seed),
//!       U64(mode),
//!       List[queue_cap, batch_size, max_live, flush_after, leak_cap+1|0],
//!       U64(delivered), U64(rejected),
//!       List[op…] ]                      (op = List[0] tick
//!                                         | List[1, client, Bytes, class])
//! ```
//!
//! The frame inherits the codec's hostile-input guarantees: versioned
//! magic, the `MAX_FRAME` size cap (a journal that outgrows it is a typed
//! [`ServiceError::SnapshotTooLarge`] at capture time, not a corrupt
//! image at restore time), and typed decode errors surfaced as
//! [`ServiceError::BadSnapshot`].

use sbc_core::worlds::{SbcBackend, SbcParams};
use sbc_net::codec::MAX_FRAME;
use sbc_net::{Endpoint, Frame, FrameKind};
use sbc_uc::value::Value;

use crate::service::{DeadlineClass, Op, SbcService, ServiceConfig, ServiceError, ServiceMode};

/// The version string leading every snapshot body.
const VERSION_TAG: &str = "sbc-service/v1";

fn bad(detail: impl Into<String>) -> ServiceError {
    ServiceError::BadSnapshot {
        detail: detail.into(),
    }
}

fn field(list: &[Value], idx: usize, what: &str) -> Result<Value, ServiceError> {
    list.get(idx)
        .cloned()
        .ok_or_else(|| bad(format!("missing field {idx} ({what})")))
}

fn as_u64(v: &Value, what: &str) -> Result<u64, ServiceError> {
    v.as_u64()
        .ok_or_else(|| bad(format!("{what}: expected U64")))
}

impl<W: SbcBackend> SbcService<W> {
    /// Serializes the service into one codec frame (the wire format is
    /// documented at the top of `snapshot.rs`).
    ///
    /// # Errors
    ///
    /// [`ServiceError::SnapshotTooLarge`] if the journal no longer fits
    /// the codec's frame cap — snapshot earlier, or accept that this
    /// service's history has outgrown single-frame images.
    pub fn snapshot(&self) -> Result<Vec<u8>, ServiceError> {
        let cfg = self.config();
        let ops: Vec<Value> = self
            .journal
            .iter()
            .map(|op| match op {
                Op::Tick => Value::list([Value::U64(0)]),
                Op::Submit {
                    client,
                    payload,
                    class,
                } => Value::list([
                    Value::U64(1),
                    Value::U64(*client),
                    Value::bytes(payload),
                    Value::U64(class.tag()),
                ]),
            })
            .collect();
        let body = Value::list([
            Value::str(VERSION_TAG),
            Value::list([
                Value::U64(cfg.params.n as u64),
                Value::U64(cfg.params.phi),
                Value::U64(cfg.params.delta),
                Value::U64(cfg.params.tle_alpha),
                Value::U64(cfg.params.tle_delay),
            ]),
            Value::bytes(&cfg.seed),
            Value::U64(cfg.mode.tag()),
            Value::list([
                Value::U64(cfg.queue_cap as u64),
                Value::U64(cfg.batch_size as u64),
                Value::U64(cfg.max_live as u64),
                Value::U64(cfg.flush_after),
                Value::U64(cfg.leak_cap.map_or(0, |c| c as u64 + 1)),
            ]),
            Value::U64(self.stats().delivered),
            Value::U64(self.stats().rejected),
            Value::List(ops),
        ]);
        let frame = Frame {
            from: Endpoint::Env,
            to: Endpoint::Env,
            sent_at: self.round(),
            kind: FrameKind::Snapshot(body),
        };
        let bytes = frame.encode();
        // The cap applies to the *declared* length — everything after the
        // 4-byte outer prefix — which is exactly what the codec's
        // `Oversize` rule checks at decode time. Guarding on the same
        // quantity means every image this returns is one `restore` will
        // accept, boundary included.
        let declared = bytes.len() - 4;
        if declared > MAX_FRAME {
            return Err(ServiceError::SnapshotTooLarge {
                bytes: declared,
                max: MAX_FRAME,
            });
        }
        Ok(bytes)
    }

    /// Rebuilds a service from a [`snapshot`](Self::snapshot) image by
    /// replaying its operation journal against a fresh pool.
    ///
    /// The restored service has **no sinks** — re-register them; records
    /// the original had already delivered are not re-delivered, and
    /// records that were still parked are parked again, in order.
    ///
    /// # Errors
    ///
    /// * [`ServiceError::BadSnapshot`] for anything that fails to decode
    ///   as a v1 service image (including codec-level corruption).
    /// * [`ServiceError::Pool`] if replay itself fails — impossible for a
    ///   journal captured from a healthy service.
    pub fn restore(bytes: &[u8]) -> Result<Self, ServiceError> {
        let frame = Frame::decode(bytes).map_err(|e| bad(format!("frame: {e}")))?;
        let FrameKind::Snapshot(body) = frame.kind else {
            return Err(bad("not a Snapshot frame"));
        };
        let fields = body.as_list().ok_or_else(|| bad("body: expected List"))?;
        let version = field(fields, 0, "version")?;
        if version.as_str() != Some(VERSION_TAG) {
            return Err(bad(format!("unsupported version {version:?}")));
        }

        let pv = field(fields, 1, "params")?;
        let pl = pv.as_list().ok_or_else(|| bad("params: expected List"))?;
        if pl.len() != 5 {
            return Err(bad("params: expected 5 fields"));
        }
        let params = SbcParams {
            n: as_u64(&pl[0], "n")? as usize,
            phi: as_u64(&pl[1], "phi")?,
            delta: as_u64(&pl[2], "delta")?,
            tle_alpha: as_u64(&pl[3], "tle_alpha")?,
            tle_delay: as_u64(&pl[4], "tle_delay")?,
        };
        let seed = field(fields, 2, "seed")?;
        let seed = seed.as_bytes().ok_or_else(|| bad("seed: expected Bytes"))?;
        let mode = ServiceMode::from_tag(as_u64(&field(fields, 3, "mode")?, "mode")?)
            .ok_or_else(|| bad("mode: unknown tag"))?;
        let tv = field(fields, 4, "tuning")?;
        let tl = tv.as_list().ok_or_else(|| bad("tuning: expected List"))?;
        if tl.len() != 5 {
            return Err(bad("tuning: expected 5 fields"));
        }
        let leak_cap = match as_u64(&tl[4], "leak_cap")? {
            0 => None,
            c => Some((c - 1) as usize),
        };
        let cfg = ServiceConfig {
            params,
            seed: seed.to_vec(),
            mode,
            queue_cap: as_u64(&tl[0], "queue_cap")? as usize,
            batch_size: as_u64(&tl[1], "batch_size")? as usize,
            max_live: as_u64(&tl[2], "max_live")? as usize,
            flush_after: as_u64(&tl[3], "flush_after")?,
            leak_cap,
            // Deliberately not part of the wire format: wall time is not
            // replayable, so a restored service starts with the
            // wall-clock view off (and `ServiceStats::wall` = None).
            record_wall_clock: false,
        };
        let delivered = as_u64(&field(fields, 5, "delivered")?, "delivered")?;
        let rejected = as_u64(&field(fields, 6, "rejected")?, "rejected")?;
        let ops_v = field(fields, 7, "ops")?;
        let ops = ops_v.as_list().ok_or_else(|| bad("ops: expected List"))?;

        let mut svc = SbcService::<W>::new(cfg)?;
        for (i, op) in ops.iter().enumerate() {
            let op = op
                .as_list()
                .ok_or_else(|| bad(format!("op {i}: expected List")))?;
            match as_u64(
                op.first().ok_or_else(|| bad(format!("op {i}: empty")))?,
                "op tag",
            )? {
                0 => svc.tick()?,
                1 => {
                    if op.len() != 4 {
                        return Err(bad(format!("op {i}: submit arity")));
                    }
                    let client = as_u64(&op[1], "client")?;
                    let payload = op[2]
                        .as_bytes()
                        .ok_or_else(|| bad(format!("op {i}: payload")))?
                        .to_vec();
                    let class = DeadlineClass::from_tag(as_u64(&op[3], "class")?)
                        .ok_or_else(|| bad(format!("op {i}: unknown class")))?;
                    // The original accepted this op, and acceptance is a
                    // deterministic function of the prefix — replay
                    // accepts it too; a refusal means a corrupt journal.
                    svc.submit(client, payload, class)
                        .map_err(|e| bad(format!("op {i}: replay refused: {e}")))?;
                }
                t => return Err(bad(format!("op {i}: unknown tag {t}"))),
            }
        }
        svc.mark_restored(delivered, rejected);
        Ok(svc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{DeadlineClass, ServiceMode};

    type Service = SbcService<sbc_core::worlds::RealSbcWorld>;

    fn seeded() -> Service {
        Service::new(
            ServiceConfig::new(3, ServiceMode::Election)
                .seed(b"snap")
                .batch_size(3),
        )
        .unwrap()
    }

    #[test]
    fn snapshot_restore_round_trips_mid_epoch() {
        let mut a = seeded();
        a.submit(1, vec![4], DeadlineClass::Standard).unwrap();
        a.submit(2, vec![4], DeadlineClass::Standard).unwrap();
        a.tick().unwrap();
        a.tick().unwrap(); // mid-epoch: instance live, nothing released
        assert_eq!(a.stats().finished, 0);
        let image = a.snapshot().unwrap();
        let mut b = Service::restore(&image).unwrap();
        assert_eq!(a.round(), b.round());
        assert_eq!(a.stats(), b.stats());
        // Both runs, continued identically, release identically.
        let ra = a.shutdown().unwrap();
        let rb = b.shutdown().unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn restore_does_not_redeliver_consumed_records() {
        let mut a = seeded();
        a.submit(1, vec![1], DeadlineClass::Interactive).unwrap();
        while a.stats().finished == 0 {
            a.tick().unwrap();
        }
        let first = a.drain_releases();
        assert_eq!(first.len(), 1);
        a.submit(2, vec![2], DeadlineClass::Interactive).unwrap();
        while a.stats().finished < 2 {
            a.tick().unwrap();
        }
        // Second record still parked; first already consumed.
        let image = a.snapshot().unwrap();
        let mut b = Service::restore(&image).unwrap();
        let parked = b.drain_releases();
        assert_eq!(parked.len(), 1);
        assert_eq!(parked, a.drain_releases());
        assert_eq!(b.stats().delivered, 2);
    }

    #[test]
    fn snapshot_cap_guard_trips_exactly_at_the_frame_cap() {
        // Measure the fixed journal overhead with an empty payload, then
        // pick payload sizes landing the declared frame length exactly on
        // MAX_FRAME and one byte past it — Value::Bytes encoding is
        // linear in the payload with slope exactly 1, so the arithmetic
        // is exact.
        let base = {
            let mut s = seeded();
            s.submit(1, vec![], DeadlineClass::Standard).unwrap();
            s.snapshot().unwrap().len() - 4
        };
        let fit = MAX_FRAME - base;

        let mut s = seeded();
        s.submit(1, vec![0xab; fit], DeadlineClass::Standard)
            .unwrap();
        let image = s.snapshot().expect("declared length exactly at the cap");
        assert_eq!(image.len() - 4, MAX_FRAME);
        // The boundary image is not just accepted by the guard — it
        // round-trips through the codec, which caps the same quantity.
        let restored = Service::restore(&image).unwrap();
        assert_eq!(restored.stats(), s.stats());

        let mut s = seeded();
        s.submit(1, vec![0xab; fit + 1], DeadlineClass::Standard)
            .unwrap();
        assert_eq!(
            s.snapshot().unwrap_err(),
            ServiceError::SnapshotTooLarge {
                bytes: MAX_FRAME + 1,
                max: MAX_FRAME,
            },
            "one byte past the cap is the typed guard, not a codec fault"
        );
    }

    #[test]
    fn garbage_and_wrong_frames_are_typed_errors() {
        assert!(matches!(
            Service::restore(b"junk"),
            Err(ServiceError::BadSnapshot { .. })
        ));
        let not_snapshot = Frame {
            from: Endpoint::Env,
            to: Endpoint::Env,
            sent_at: 0,
            kind: FrameKind::Tick,
        }
        .encode();
        assert!(matches!(
            Service::restore(&not_snapshot),
            Err(ServiceError::BadSnapshot { .. })
        ));
        let wrong_version = Frame {
            from: Endpoint::Env,
            to: Endpoint::Env,
            sent_at: 0,
            kind: FrameKind::Snapshot(Value::list([Value::str("sbc-service/v9")])),
        }
        .encode();
        assert!(matches!(
            Service::restore(&wrong_version),
            Err(ServiceError::BadSnapshot { .. })
        ));
    }
}
