//! Snapshot/restore: the service as a folded checkpoint plus a
//! deterministic operation tail, streamed through the `sbc-net` codec.
//!
//! ## Why checkpoint + tail, not a lifetime journal
//!
//! Every externally observable state transition of [`SbcService`] is a
//! deterministic function of the *accepted operation sequence* — the
//! interleaving of accepted submissions and driver ticks. All pool
//! randomness derives from the seeded DRBG, admission and batching
//! decisions are pure functions of (queue, pool round, config), and
//! latency is measured in rounds. So the journal of accepted operations,
//! plus the config it runs under, **is** the state — but a journal since
//! birth grows without bound, and so would snapshot size and restore
//! time.
//!
//! Era-based checkpointing bounds both. At an era boundary (every
//! instance delivered, drained, and pruned — [`SbcService::checkpoint`])
//! the pool collapses to its `(round, next instance id)` fast-forward
//! coordinate, so the journal prefix folds into a compact checkpoint
//! record: clock round, next ids, queue contents, counters, and the
//! latency histogram. A snapshot then carries (checkpoint ‖
//! post-boundary tail); restore rebuilds a fresh pool, fast-forwards it
//! through [`sbc_core::pool::SbcPool::resume_at`], and replays only the
//! tail. Image size and restore work are O(current era), independent of
//! lifetime.
//!
//! The only facts replay cannot rederive are the ones that left the
//! service (records already delivered to sinks or drained — the restored
//! run must not re-deliver them) and the ones that never entered it
//! (submissions rejected with `QueueFull` touch a counter but not the
//! journal). Those ride alongside the tail as absolute counters.
//!
//! ## Wire format (v2, streaming)
//!
//! A multi-frame stream — `SnapshotHeader` ‖ `SnapshotChunk`× ‖
//! `SnapshotTrailer` with a SHA-256 digest — produced by
//! [`sbc_net::codec::encode_snapshot_stream`]. Chunking removes the
//! single-frame `MAX_FRAME` ceiling: a payload of any size encodes, so
//! [`ServiceError::SnapshotTooLarge`] is unreachable from
//! [`SbcService::snapshot`]. The chunked payload is the canonical
//! [`Value`] encoding of
//!
//! ```text
//! List[ Str("sbc-service/v2"),
//!       List[n, Φ, ∆, α, delay]          (U64s)
//!       Bytes(seed),
//!       U64(mode),
//!       List[queue_cap, batch_size, max_live, flush_after, leak_cap+1|0],
//!       U64(delivered), U64(rejected),    (absolute, at capture)
//!       List[era, round, next_instance, next_ticket,   (the checkpoint)
//!            List[11 counters],
//!            List[List[bucket…], count, sum, max],     (histogram)
//!            List[queue × 3]],  (queue = List[List[ticket, Bytes, round]…])
//!       List[op…] ]              (op = List[0, count]     tick run
//!                                  | List[1, client, Bytes, class])
//! ```
//!
//! The legacy v1 single-`Snapshot`-frame format (lifetime journal, no
//! checkpoint, `List[0]` per tick) is **read-only**: the v1 writer is
//! retired and v2 streaming is the only encoder, but old images stay
//! decodable by [`SbcService::restore`], which sniffs the format off the
//! leading frame. The codec's single-frame `MAX_FRAME` ceiling now
//! exists only on that read path.

use std::io;

use sbc_core::worlds::{SbcBackend, SbcParams};
use sbc_net::codec::{
    decode_snapshot_stream, encode_snapshot_stream, read_snapshot_stream, write_snapshot_stream,
    SnapshotStream, SnapshotStreamError,
};
use sbc_net::{Frame, FrameKind};
use sbc_uc::value::Value;

use crate::service::{
    Checkpoint, Counters, DeadlineClass, Op, SbcService, ServiceConfig, ServiceError, ServiceMode,
};
use crate::stats::LatencyHistogram;

/// The version string leading a legacy v1 snapshot body.
const VERSION_TAG_V1: &str = "sbc-service/v1";
/// The version string leading a v2 streaming snapshot payload.
const VERSION_TAG_V2: &str = "sbc-service/v2";

fn bad(detail: impl Into<String>) -> ServiceError {
    ServiceError::BadSnapshot {
        detail: detail.into(),
    }
}

fn stream_err(e: SnapshotStreamError) -> ServiceError {
    bad(format!("snapshot stream: {e}"))
}

fn field(list: &[Value], idx: usize, what: &str) -> Result<Value, ServiceError> {
    list.get(idx)
        .cloned()
        .ok_or_else(|| bad(format!("missing field {idx} ({what})")))
}

fn as_u64(v: &Value, what: &str) -> Result<u64, ServiceError> {
    v.as_u64()
        .ok_or_else(|| bad(format!("{what}: expected U64")))
}

/// The config portion of a snapshot body — identical in v1 and v2:
/// fields 1 (params), 2 (seed), 3 (mode), 4 (tuning).
fn config_values(cfg: &ServiceConfig) -> [Value; 4] {
    [
        Value::list([
            Value::U64(cfg.params.n as u64),
            Value::U64(cfg.params.phi),
            Value::U64(cfg.params.delta),
            Value::U64(cfg.params.tle_alpha),
            Value::U64(cfg.params.tle_delay),
        ]),
        Value::bytes(&cfg.seed),
        Value::U64(cfg.mode.tag()),
        Value::list([
            Value::U64(cfg.queue_cap as u64),
            Value::U64(cfg.batch_size as u64),
            Value::U64(cfg.max_live as u64),
            Value::U64(cfg.flush_after),
            Value::U64(cfg.leak_cap.map_or(0, |c| c as u64 + 1)),
        ]),
    ]
}

/// Parses fields 1–4 of a snapshot body back into a [`ServiceConfig`].
fn parse_config(fields: &[Value]) -> Result<ServiceConfig, ServiceError> {
    let pv = field(fields, 1, "params")?;
    let pl = pv.as_list().ok_or_else(|| bad("params: expected List"))?;
    if pl.len() != 5 {
        return Err(bad("params: expected 5 fields"));
    }
    let params = SbcParams {
        n: as_u64(&pl[0], "n")? as usize,
        phi: as_u64(&pl[1], "phi")?,
        delta: as_u64(&pl[2], "delta")?,
        tle_alpha: as_u64(&pl[3], "tle_alpha")?,
        tle_delay: as_u64(&pl[4], "tle_delay")?,
    };
    let seed = field(fields, 2, "seed")?;
    let seed = seed.as_bytes().ok_or_else(|| bad("seed: expected Bytes"))?;
    let mode = ServiceMode::from_tag(as_u64(&field(fields, 3, "mode")?, "mode")?)
        .ok_or_else(|| bad("mode: unknown tag"))?;
    let tv = field(fields, 4, "tuning")?;
    let tl = tv.as_list().ok_or_else(|| bad("tuning: expected List"))?;
    if tl.len() != 5 {
        return Err(bad("tuning: expected 5 fields"));
    }
    let leak_cap = match as_u64(&tl[4], "leak_cap")? {
        0 => None,
        c => Some((c - 1) as usize),
    };
    Ok(ServiceConfig {
        params,
        seed: seed.to_vec(),
        mode,
        queue_cap: as_u64(&tl[0], "queue_cap")? as usize,
        batch_size: as_u64(&tl[1], "batch_size")? as usize,
        max_live: as_u64(&tl[2], "max_live")? as usize,
        flush_after: as_u64(&tl[3], "flush_after")?,
        leak_cap,
        // Deliberately not part of the wire format: wall time is not
        // replayable, so a restored service starts with the wall-clock
        // view off (and `ServiceStats::wall` = None).
        record_wall_clock: false,
        // Also excluded: replay must rebuild folded state from the
        // serialized checkpoint, never by re-running the auto-fold
        // policy mid-replay — a restored service starts with it off.
        checkpoint_every: None,
    })
}

/// Encodes the checkpoint record (body field 7 of a v2 image).
fn checkpoint_value(cp: &Checkpoint) -> Value {
    let c = &cp.counters;
    let (buckets, count, sum, max) = cp.hist.raw_parts();
    let queues = cp
        .queues
        .iter()
        .map(|q| {
            Value::List(
                q.iter()
                    .map(|(ticket, payload, round)| {
                        Value::list([
                            Value::U64(*ticket),
                            Value::bytes(payload),
                            Value::U64(*round),
                        ])
                    })
                    .collect(),
            )
        })
        .collect();
    Value::list([
        Value::U64(cp.era),
        Value::U64(cp.round),
        Value::U64(cp.next_instance),
        Value::U64(cp.next_ticket),
        Value::list([
            Value::U64(c.accepted),
            Value::U64(c.rejected),
            Value::U64(c.deferred),
            Value::U64(c.delivered),
            Value::U64(c.opened),
            Value::U64(c.finished),
            Value::U64(c.pruned),
            Value::U64(c.ticks),
            Value::U64(c.peak_live as u64),
            Value::U64(c.peak_queue as u64),
            Value::U64(c.leak_overflow),
        ]),
        Value::list([
            Value::List(buckets.iter().map(|b| Value::U64(*b)).collect()),
            Value::U64(count),
            Value::U64(sum),
            Value::U64(max),
        ]),
        Value::List(queues),
    ])
}

/// Parses the checkpoint record of a v2 image.
fn parse_checkpoint(v: &Value) -> Result<Checkpoint, ServiceError> {
    let cp = v
        .as_list()
        .ok_or_else(|| bad("checkpoint: expected List"))?;
    if cp.len() != 7 {
        return Err(bad("checkpoint: expected 7 fields"));
    }
    let cv = cp[4]
        .as_list()
        .ok_or_else(|| bad("checkpoint counters: expected List"))?;
    if cv.len() != 11 {
        return Err(bad("checkpoint counters: expected 11 fields"));
    }
    let counters = Counters {
        accepted: as_u64(&cv[0], "accepted")?,
        rejected: as_u64(&cv[1], "rejected")?,
        deferred: as_u64(&cv[2], "deferred")?,
        delivered: as_u64(&cv[3], "delivered")?,
        opened: as_u64(&cv[4], "opened")?,
        finished: as_u64(&cv[5], "finished")?,
        pruned: as_u64(&cv[6], "pruned")?,
        ticks: as_u64(&cv[7], "ticks")?,
        peak_live: as_u64(&cv[8], "peak_live")? as usize,
        peak_queue: as_u64(&cv[9], "peak_queue")? as usize,
        leak_overflow: as_u64(&cv[10], "leak_overflow")?,
    };
    let hv = cp[5]
        .as_list()
        .ok_or_else(|| bad("checkpoint histogram: expected List"))?;
    if hv.len() != 4 {
        return Err(bad("checkpoint histogram: expected 4 fields"));
    }
    let buckets = hv[0]
        .as_list()
        .ok_or_else(|| bad("histogram buckets: expected List"))?
        .iter()
        .map(|b| as_u64(b, "histogram bucket"))
        .collect::<Result<Vec<u64>, _>>()?;
    let hist = LatencyHistogram::from_raw_parts(
        buckets,
        as_u64(&hv[1], "histogram count")?,
        as_u64(&hv[2], "histogram sum")?,
        as_u64(&hv[3], "histogram max")?,
    )
    .ok_or_else(|| bad("histogram: wrong bucket arity"))?;
    let qv = cp[6]
        .as_list()
        .ok_or_else(|| bad("checkpoint queues: expected List"))?;
    if qv.len() != 3 {
        return Err(bad("checkpoint queues: expected 3 classes"));
    }
    let mut queues = [Vec::new(), Vec::new(), Vec::new()];
    for (i, q) in qv.iter().enumerate() {
        let entries = q
            .as_list()
            .ok_or_else(|| bad(format!("queue {i}: expected List")))?;
        for e in entries {
            let e = e
                .as_list()
                .ok_or_else(|| bad(format!("queue {i} entry: expected List")))?;
            if e.len() != 3 {
                return Err(bad(format!("queue {i} entry: expected 3 fields")));
            }
            queues[i].push((
                as_u64(&e[0], "queue ticket")?,
                e[1].as_bytes()
                    .ok_or_else(|| bad(format!("queue {i} payload: expected Bytes")))?
                    .to_vec(),
                as_u64(&e[2], "queue round")?,
            ));
        }
    }
    Ok(Checkpoint {
        era: as_u64(&cp[0], "era")?,
        round: as_u64(&cp[1], "round")?,
        next_instance: as_u64(&cp[2], "next_instance")?,
        next_ticket: as_u64(&cp[3], "next_ticket")?,
        counters,
        hist,
        queues,
    })
}

impl<W: SbcBackend> SbcService<W> {
    /// The v2 snapshot payload: config, absolute delivered/rejected, the
    /// checkpoint record, and the post-checkpoint operation tail.
    fn snapshot_payload(&self) -> Vec<u8> {
        let ops: Vec<Value> = self
            .journal
            .iter()
            .map(|op| match op {
                Op::Ticks(count) => Value::list([Value::U64(0), Value::U64(*count)]),
                Op::Submit {
                    client,
                    payload,
                    class,
                } => Value::list([
                    Value::U64(1),
                    Value::U64(*client),
                    Value::bytes(payload),
                    Value::U64(class.tag()),
                ]),
            })
            .collect();
        let [params, seed, mode, tuning] = config_values(self.config());
        Value::list([
            Value::str(VERSION_TAG_V2),
            params,
            seed,
            mode,
            tuning,
            Value::U64(self.stats().delivered),
            Value::U64(self.stats().rejected),
            checkpoint_value(&self.checkpoint),
            Value::List(ops),
        ])
        .encode()
    }

    /// Serializes the service into a v2 streaming snapshot (header ‖
    /// chunks ‖ digest trailer — the wire format is documented at the top
    /// of `snapshot.rs`). Any journal size encodes: unlike the retired
    /// legacy v1 single-frame format there is no size cap, so this never
    /// returns [`ServiceError::SnapshotTooLarge`].
    ///
    /// The image carries the current checkpoint plus the post-boundary
    /// tail — [`checkpoint`](Self::checkpoint) at era boundaries to keep
    /// it (and restore time) O(current era).
    pub fn snapshot(&self) -> Result<Vec<u8>, ServiceError> {
        let bytes = encode_snapshot_stream(self.era(), self.round(), &self.snapshot_payload());
        self.note_snapshot_bytes(bytes.len() as u64);
        Ok(bytes)
    }

    /// Streams a v2 snapshot into any [`io::Write`] — a file, a socket —
    /// frame by frame, without materializing the full image. Returns the
    /// bytes written.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadSnapshot`] carrying the writer's I/O failure.
    pub fn snapshot_to<Wr: io::Write>(&self, w: &mut Wr) -> Result<usize, ServiceError> {
        let written = write_snapshot_stream(w, self.era(), self.round(), &self.snapshot_payload())
            .map_err(stream_err)?;
        self.note_snapshot_bytes(written as u64);
        Ok(written)
    }

    /// Rebuilds a service from a snapshot image — v2 streaming
    /// ([`snapshot`](Self::snapshot)) or a legacy v1 single-frame image
    /// (the retired writer's read-only format), sniffed from the leading
    /// frame.
    ///
    /// The restored service has **no sinks** — re-register them; records
    /// the original had already delivered are not re-delivered, and
    /// records that were still parked are parked again, in order.
    ///
    /// # Errors
    ///
    /// * [`ServiceError::BadSnapshot`] for anything that fails to decode
    ///   as a service image — including every typed stream malformation
    ///   (truncation, dropped or reordered chunks, digest mismatch), whose
    ///   description it carries.
    /// * [`ServiceError::Pool`] if replay itself fails — impossible for a
    ///   journal captured from a healthy service.
    pub fn restore(bytes: &[u8]) -> Result<Self, ServiceError> {
        let svc = match decode_snapshot_stream(bytes) {
            Ok(stream) => Self::restore_stream(&stream),
            // A legacy image leads with a `Snapshot` frame where a v2
            // stream has its header — fall through to the v1 decoder.
            Err(SnapshotStreamError::UnexpectedFrame {
                found: "Snapshot", ..
            }) => Self::restore_v1(bytes),
            Err(e) => Err(stream_err(e)),
        }?;
        svc.note_snapshot_bytes(bytes.len() as u64);
        Ok(svc)
    }

    /// Rebuilds a service from a v2 snapshot stream read off any
    /// [`io::Read`] — the inverse of [`snapshot_to`](Self::snapshot_to).
    /// The reader is left positioned right after the trailer.
    ///
    /// # Errors
    ///
    /// As [`restore`](Self::restore), with reader I/O failures surfacing
    /// as [`ServiceError::BadSnapshot`] too.
    pub fn restore_from<R: io::Read>(r: &mut R) -> Result<Self, ServiceError> {
        let stream = read_snapshot_stream(r).map_err(stream_err)?;
        let svc = Self::restore_stream(&stream)?;
        svc.note_snapshot_bytes(stream.payload.len() as u64);
        Ok(svc)
    }

    /// Decodes and replays a v2 payload: fresh pool, fast-forward through
    /// the checkpoint, replay the tail, settle delivery bookkeeping.
    fn restore_stream(stream: &SnapshotStream) -> Result<Self, ServiceError> {
        let body =
            Value::decode(&stream.payload).ok_or_else(|| bad("payload: not a canonical Value"))?;
        let fields = body.as_list().ok_or_else(|| bad("body: expected List"))?;
        let version = field(fields, 0, "version")?;
        if version.as_str() != Some(VERSION_TAG_V2) {
            return Err(bad(format!("unsupported version {version:?}")));
        }
        let cfg = parse_config(fields)?;
        let delivered = as_u64(&field(fields, 5, "delivered")?, "delivered")?;
        let rejected = as_u64(&field(fields, 6, "rejected")?, "rejected")?;
        let cp = parse_checkpoint(&field(fields, 7, "checkpoint")?)?;
        if cp.era != stream.era {
            return Err(bad(format!(
                "era mismatch: header says {}, checkpoint says {}",
                stream.era, cp.era
            )));
        }
        let ops_v = field(fields, 8, "ops")?;
        let ops = ops_v.as_list().ok_or_else(|| bad("ops: expected List"))?;

        let mut svc = SbcService::<W>::new(cfg)?;
        let base_delivered = cp.counters.delivered;
        if delivered < base_delivered {
            return Err(bad("delivered regressed below the checkpoint base"));
        }
        svc.apply_checkpoint(cp)?;
        svc.replay_ops(ops)?;
        svc.mark_restored(delivered - base_delivered, delivered, rejected);
        Ok(svc)
    }

    /// Decodes and replays a legacy v1 single-frame image: fresh pool,
    /// whole-journal replay from birth.
    fn restore_v1(bytes: &[u8]) -> Result<Self, ServiceError> {
        let frame = Frame::decode(bytes).map_err(|e| bad(format!("frame: {e}")))?;
        let FrameKind::Snapshot(body) = frame.kind else {
            return Err(bad("not a Snapshot frame"));
        };
        let fields = body.as_list().ok_or_else(|| bad("body: expected List"))?;
        let version = field(fields, 0, "version")?;
        if version.as_str() != Some(VERSION_TAG_V1) {
            return Err(bad(format!("unsupported version {version:?}")));
        }
        let cfg = parse_config(fields)?;
        let delivered = as_u64(&field(fields, 5, "delivered")?, "delivered")?;
        let rejected = as_u64(&field(fields, 6, "rejected")?, "rejected")?;
        let ops_v = field(fields, 7, "ops")?;
        let ops = ops_v.as_list().ok_or_else(|| bad("ops: expected List"))?;

        let mut svc = SbcService::<W>::new(cfg)?;
        svc.replay_ops(ops)?;
        svc.mark_restored(delivered, delivered, rejected);
        Ok(svc)
    }

    /// Replays a decoded operation list. Accepts both tick spellings:
    /// `List[0]` (one tick, the pre-RLE v1 form) and `List[0, count]`
    /// (a run — [`Op::Ticks`]).
    fn replay_ops(&mut self, ops: &[Value]) -> Result<(), ServiceError> {
        for (i, op) in ops.iter().enumerate() {
            let op = op
                .as_list()
                .ok_or_else(|| bad(format!("op {i}: expected List")))?;
            match as_u64(
                op.first().ok_or_else(|| bad(format!("op {i}: empty")))?,
                "op tag",
            )? {
                0 => {
                    let count = match op.len() {
                        1 => 1,
                        2 => as_u64(&op[1], "tick count")?,
                        _ => return Err(bad(format!("op {i}: tick arity"))),
                    };
                    for _ in 0..count {
                        self.tick()?;
                    }
                }
                1 => {
                    if op.len() != 4 {
                        return Err(bad(format!("op {i}: submit arity")));
                    }
                    let client = as_u64(&op[1], "client")?;
                    let payload = op[2]
                        .as_bytes()
                        .ok_or_else(|| bad(format!("op {i}: payload")))?
                        .to_vec();
                    let class = DeadlineClass::from_tag(as_u64(&op[3], "class")?)
                        .ok_or_else(|| bad(format!("op {i}: unknown class")))?;
                    // The original accepted this op, and acceptance is a
                    // deterministic function of the prefix — replay
                    // accepts it too; a refusal means a corrupt journal.
                    self.submit(client, payload, class)
                        .map_err(|e| bad(format!("op {i}: replay refused: {e}")))?;
                }
                t => return Err(bad(format!("op {i}: unknown tag {t}"))),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{DeadlineClass, ServiceMode};
    use crate::stats::ServiceStats;
    use sbc_net::codec::MAX_FRAME;
    use sbc_net::Endpoint;

    type Service = SbcService<sbc_core::worlds::RealSbcWorld>;

    /// The retired v1 single-frame writer, kept test-side only: old
    /// deployments produced exactly this image, and the reader path must
    /// keep restoring it. Era-0 only — v1 carries a birth-relative
    /// journal, which a folded service no longer has.
    fn v1_image(svc: &Service) -> Vec<u8> {
        assert_eq!(svc.era(), 0, "v1 images are birth-relative");
        let ops: Vec<Value> = svc
            .journal
            .iter()
            .flat_map(|op| match op {
                // v1 had no tick run-length: one `List[0]` per tick.
                Op::Ticks(count) => {
                    vec![Value::list([Value::U64(0)]); *count as usize]
                }
                Op::Submit {
                    client,
                    payload,
                    class,
                } => vec![Value::list([
                    Value::U64(1),
                    Value::U64(*client),
                    Value::bytes(payload),
                    Value::U64(class.tag()),
                ])],
            })
            .collect();
        let [params, seed, mode, tuning] = config_values(svc.config());
        Frame {
            from: Endpoint::Env,
            to: Endpoint::Env,
            sent_at: svc.round(),
            kind: FrameKind::Snapshot(Value::list([
                Value::str(VERSION_TAG_V1),
                params,
                seed,
                mode,
                tuning,
                Value::U64(svc.stats().delivered),
                Value::U64(svc.stats().rejected),
                Value::List(ops),
            ])),
        }
        .encode()
    }

    fn seeded() -> Service {
        Service::new(
            ServiceConfig::new(3, ServiceMode::Election)
                .seed(b"snap")
                .batch_size(3),
        )
        .unwrap()
    }

    /// `snapshot_bytes` is observational (it records image sizes, which
    /// legitimately differ between a live service and its restored twin);
    /// every determinism comparison masks it.
    fn replayable(stats: &ServiceStats) -> ServiceStats {
        ServiceStats {
            snapshot_bytes: 0,
            ..stats.clone()
        }
    }

    #[test]
    fn snapshot_restore_round_trips_mid_epoch() {
        let mut a = seeded();
        a.submit(1, vec![4], DeadlineClass::Standard).unwrap();
        a.submit(2, vec![4], DeadlineClass::Standard).unwrap();
        a.tick().unwrap();
        a.tick().unwrap(); // mid-epoch: instance live, nothing released
        assert_eq!(a.stats().finished, 0);
        let image = a.snapshot().unwrap();
        let mut b = Service::restore(&image).unwrap();
        assert_eq!(a.round(), b.round());
        assert_eq!(replayable(&a.stats()), replayable(&b.stats()));
        // Both runs, continued identically, release identically.
        let ra = a.shutdown().unwrap();
        let rb = b.shutdown().unwrap();
        assert_eq!(ra, rb);
        assert_eq!(replayable(&a.stats()), replayable(&b.stats()));
    }

    #[test]
    fn restore_does_not_redeliver_consumed_records() {
        let mut a = seeded();
        a.submit(1, vec![1], DeadlineClass::Interactive).unwrap();
        while a.stats().finished == 0 {
            a.tick().unwrap();
        }
        let first = a.drain_releases();
        assert_eq!(first.len(), 1);
        a.submit(2, vec![2], DeadlineClass::Interactive).unwrap();
        while a.stats().finished < 2 {
            a.tick().unwrap();
        }
        // Second record still parked; first already consumed.
        let image = a.snapshot().unwrap();
        let mut b = Service::restore(&image).unwrap();
        let parked = b.drain_releases();
        assert_eq!(parked.len(), 1);
        assert_eq!(parked, a.drain_releases());
        assert_eq!(b.stats().delivered, 2);
    }

    #[test]
    fn checkpointed_snapshot_round_trips_and_shrinks() {
        let mut a = seeded();
        // Era 1: one full epoch (a whole batch of payload-carrying
        // submissions), delivered and drained, then folded. The fold
        // drops the delivered payloads from the image entirely — only
        // counters and the histogram remember them.
        for client in 0..3u64 {
            a.submit(client, vec![client as u8; 64], DeadlineClass::Standard)
                .unwrap();
        }
        while a.stats().finished == 0 {
            a.tick().unwrap();
        }
        a.drain_releases();
        let full_journal_image = a.snapshot().unwrap();
        assert!(a.try_checkpoint(), "drained service is at a boundary");
        assert_eq!(a.era(), 1);
        assert_eq!(a.stats().journal_ops, 0);
        // Short tail after the fold.
        a.submit(2, vec![2], DeadlineClass::Standard).unwrap();
        a.tick().unwrap();

        let image = a.snapshot().unwrap();
        assert!(
            image.len() < full_journal_image.len(),
            "checkpointed image ({}B) should undercut the pre-fold full-journal one ({}B)",
            image.len(),
            full_journal_image.len()
        );
        let mut b = Service::restore(&image).unwrap();
        assert_eq!(b.era(), 1);
        assert_eq!(replayable(&a.stats()), replayable(&b.stats()));
        assert_eq!(a.shutdown().unwrap(), b.shutdown().unwrap());
        assert_eq!(replayable(&a.stats()), replayable(&b.stats()));
    }

    #[test]
    fn snapshot_to_and_restore_from_stream_through_io() {
        let mut a = seeded();
        a.submit(1, vec![7], DeadlineClass::Standard).unwrap();
        a.tick().unwrap();
        let mut buf = Vec::new();
        let written = a.snapshot_to(&mut buf).unwrap();
        assert_eq!(written, buf.len());
        assert_eq!(a.stats().snapshot_bytes, written as u64);
        // The reader stops at the trailer: trailing connection traffic
        // survives.
        buf.extend_from_slice(b"tail");
        let mut cursor = std::io::Cursor::new(&buf[..]);
        let mut b = Service::restore_from(&mut cursor).unwrap();
        assert_eq!(&buf[cursor.position() as usize..], b"tail");
        assert_eq!(replayable(&a.stats()), replayable(&b.stats()));
        assert_eq!(a.shutdown().unwrap(), b.shutdown().unwrap());
    }

    #[test]
    fn legacy_v1_images_still_restore() {
        let mut a = seeded();
        a.submit(1, vec![4], DeadlineClass::Standard).unwrap();
        a.tick().unwrap();
        a.tick().unwrap();
        let image = v1_image(&a);
        let mut b = Service::restore(&image).unwrap();
        assert_eq!(replayable(&a.stats()), replayable(&b.stats()));
        assert_eq!(a.shutdown().unwrap(), b.shutdown().unwrap());
    }

    #[test]
    fn legacy_frame_cap_survives_on_the_read_path_only() {
        // The v1 writer (and with it the write-side SnapshotTooLarge
        // guard) is retired; the MAX_FRAME ceiling lives on only in the
        // codec's decode-time Oversize rule. The arithmetic is exact
        // because Value::Bytes encoding is linear in the payload with
        // slope 1 — measure the fixed overhead with an empty payload,
        // then land the declared frame length exactly on MAX_FRAME and
        // one byte past it.
        let base = {
            let mut s = seeded();
            s.submit(1, vec![], DeadlineClass::Standard).unwrap();
            v1_image(&s).len() - 4
        };
        let fit = MAX_FRAME - base;

        let mut s = seeded();
        s.submit(1, vec![0xab; fit], DeadlineClass::Standard)
            .unwrap();
        let image = v1_image(&s);
        assert_eq!(image.len() - 4, MAX_FRAME);
        // A boundary-sized historical image still round-trips.
        let restored = Service::restore(&image).unwrap();
        assert_eq!(replayable(&restored.stats()), replayable(&s.stats()));

        let mut s = seeded();
        s.submit(1, vec![0xab; fit + 1], DeadlineClass::Standard)
            .unwrap();
        let err = Service::restore(&v1_image(&s))
            .err()
            .expect("an over-cap v1 frame must fail to decode");
        assert!(matches!(&err, ServiceError::BadSnapshot { .. }), "{err}");
        // The same oversized journal streams fine through the v2 path —
        // the only writer left has no size cap.
        let image = s.snapshot().expect("v2 has no size cap");
        let restored = Service::restore(&image).unwrap();
        assert_eq!(replayable(&restored.stats()), replayable(&s.stats()));
    }

    #[test]
    fn garbage_and_wrong_frames_are_typed_errors() {
        assert!(matches!(
            Service::restore(b"junk"),
            Err(ServiceError::BadSnapshot { .. })
        ));
        let not_snapshot = Frame {
            from: Endpoint::Env,
            to: Endpoint::Env,
            sent_at: 0,
            kind: FrameKind::Tick,
        }
        .encode();
        assert!(matches!(
            Service::restore(&not_snapshot),
            Err(ServiceError::BadSnapshot { .. })
        ));
        let wrong_version = Frame {
            from: Endpoint::Env,
            to: Endpoint::Env,
            sent_at: 0,
            kind: FrameKind::Snapshot(Value::list([Value::str("sbc-service/v9")])),
        }
        .encode();
        assert!(matches!(
            Service::restore(&wrong_version),
            Err(ServiceError::BadSnapshot { .. })
        ));
    }

    #[test]
    fn corrupted_streams_are_typed_errors() {
        let mut a = seeded();
        a.submit(1, vec![9], DeadlineClass::Standard).unwrap();
        a.tick().unwrap();
        let image = a.snapshot().unwrap();

        // Flip a payload byte deep inside the chunk: the digest catches
        // it before the Value decoder ever runs.
        let mut corrupt = image.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x01;
        let err = Service::restore(&corrupt)
            .err()
            .expect("corrupt image must fail");
        assert!(matches!(&err, ServiceError::BadSnapshot { .. }), "{err}");

        // Truncation (a dropped trailer) is typed too.
        let err = Service::restore(&image[..image.len() - 10])
            .err()
            .expect("truncated image must fail");
        assert!(matches!(&err, ServiceError::BadSnapshot { .. }), "{err}");
    }
}
