//! The versioned, length-prefixed wire format.
//!
//! A [`Frame`] is every message that crosses a party boundary in the
//! networked world. On the wire it is
//!
//! ```text
//! ┌─────────┬───────┬─────────┬──────┬──────┬────┬─────────┬──────────┬──────┐
//! │ len u32 │ magic │ version │ kind │ from │ to │ sent_at │ body len │ body │
//! │         │ "SB"  │  1 B    │ 1 B  │ 5 B  │ 5 B│  8 B    │  u32     │  …   │
//! └─────────┴───────┴─────────┴──────┴──────┴────┴─────────┴──────────┴──────┘
//! ```
//!
//! with all integers big-endian, endpoints as a tag byte plus a `u32`
//! party index, and the body a canonical [`Value`] encoding shaped per
//! [`FrameKind`]. The outer length prefix covers everything after itself,
//! so frames concatenate into a stream ([`Frame::decode_prefix`]).
//!
//! The decoder treats its input as hostile: every way a frame can be
//! malformed — truncation, a lying length prefix, an unknown kind or
//! endpoint tag, an oversized claim, a body that does not decode or has
//! the wrong shape — maps to a typed [`CodecError`] variant. Decoding
//! never panics and never allocates more than the input's own length.

use sbc_primitives::sha256::Sha256;
use sbc_uc::value::Value;
use std::fmt;
use std::io;

/// Magic bytes opening every frame.
pub const MAGIC: [u8; 2] = *b"SB";

/// The current wire-format version.
pub const VERSION: u8 = 1;

/// Hard cap on the encoded size of a single frame (header + body). A
/// length prefix claiming more is rejected up front ([`CodecError::
/// Oversize`]) so a hostile peer cannot make the decoder reserve memory
/// it never sends.
pub const MAX_FRAME: usize = 1 << 24;

/// Fixed header length after the outer length prefix: magic (2) +
/// version (1) + kind tag (1) + from (5) + to (5) + sent_at (8) +
/// body length (4).
const HEADER_LEN: usize = 26;

/// A frame address: the environment, the functionality host, or a party.
///
/// The functionality host plays the hybrid functionalities (`F_UBC`,
/// `F_TLE`, `F_RO`) of the UC experiment; in a deployment it would be the
/// trusted-setup/service side of the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The environment (submissions in, release outputs back).
    Env,
    /// The functionality host.
    Host,
    /// Party `i`.
    Party(u32),
}

impl Endpoint {
    fn encode_into(self, out: &mut Vec<u8>) {
        match self {
            Endpoint::Env => {
                out.push(0);
                out.extend_from_slice(&0u32.to_be_bytes());
            }
            Endpoint::Host => {
                out.push(1);
                out.extend_from_slice(&0u32.to_be_bytes());
            }
            Endpoint::Party(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_be_bytes());
            }
        }
    }

    fn decode(bytes: &[u8]) -> Result<Endpoint, CodecError> {
        let tag = bytes[0];
        let idx = u32::from_be_bytes(bytes[1..5].try_into().expect("5-byte endpoint"));
        match tag {
            0 => Ok(Endpoint::Env),
            1 => Ok(Endpoint::Host),
            2 => Ok(Endpoint::Party(idx)),
            _ => Err(CodecError::UnknownEndpoint { tag }),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Env => write!(f, "env"),
            Endpoint::Host => write!(f, "host"),
            Endpoint::Party(i) => write!(f, "party/{i}"),
        }
    }
}

/// The payload of a [`Frame`] — one variant per protocol message class
/// crossing a party boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Environment → party: a `(sid, Broadcast, M)` submission.
    Submit(Value),
    /// Environment → party: the round advance (the `G_clock` tick).
    Tick,
    /// Party → host: an unfair-broadcast request (`Wake_Up` or a wire).
    Cast(Value),
    /// Host → party: a UBC delivery, carrying the originating sender.
    Deliver {
        /// The broadcasting party.
        origin: u32,
        /// The broadcast payload (`Wake_Up` or a `(c, τ_rel, y)` wire).
        payload: Value,
    },
    /// Party → host: time-lock encrypt `ρ` towards `τ` (the TLE share of
    /// a pending broadcast).
    TleEnc {
        /// The mask seed `ρ` (as a `Value::Bytes`).
        rho: Value,
        /// The release time the ciphertext opens at.
        tau: u64,
    },
    /// Party → host: fetch the ciphertexts that became ready.
    TleRetrieve,
    /// Host → party: the ready `(ρ, c, τ)` triples.
    TleTriples(Value),
    /// Party → host: decrypt `c` towards `τ`.
    TleDec {
        /// The ciphertext.
        ct: Value,
        /// The claimed release time.
        tau: u64,
    },
    /// Host → party: the decryption response (`Unit` for an unknown
    /// ciphertext, otherwise `DecResponse::to_value`).
    TleDecResp(Value),
    /// Party → host: an `F_RO` variable-length query.
    RoQuery {
        /// The query point.
        x: Vec<u8>,
        /// Requested output length in bytes.
        len: u64,
    },
    /// Host → party: the oracle answer.
    RoAnswer(Vec<u8>),
    /// Party → environment: the release-round output vector.
    Output(Value),
    /// Service ↔ storage: a serialized service/pool snapshot image
    /// (`sbc-service` persistence rides the same versioned framing as
    /// the protocol wires). **Legacy single-frame format** — bounded by
    /// [`MAX_FRAME`], kept decodable for old images; new snapshots are
    /// the streaming [`FrameKind::SnapshotHeader`] /
    /// [`FrameKind::SnapshotChunk`] / [`FrameKind::SnapshotTrailer`]
    /// sequence, which has no size ceiling.
    Snapshot(Value),
    /// Opens a streaming multi-frame snapshot: the format version, the
    /// service era the image was captured in, and how many
    /// [`FrameKind::SnapshotChunk`] frames follow before the trailer.
    SnapshotHeader {
        /// Snapshot format version (see [`SNAPSHOT_STREAM_VERSION`]).
        version: u64,
        /// The capturing service's era (checkpoint generation).
        era: u64,
        /// Number of chunk frames in the stream.
        chunks: u64,
    },
    /// One payload chunk of a streaming snapshot, at most
    /// [`SNAPSHOT_CHUNK_BYTES`] bytes so every frame stays far under
    /// [`MAX_FRAME`]. Chunks carry their position so reordering and
    /// duplication are detectable.
    SnapshotChunk {
        /// Zero-based position of this chunk in the stream.
        index: u64,
        /// The chunk's slice of the snapshot payload.
        data: Vec<u8>,
    },
    /// Closes a streaming snapshot with the SHA-256 digest of the whole
    /// stream (header fields and concatenated chunk payloads), so a
    /// truncated, spliced, or bit-flipped stream fails restore with a
    /// typed error instead of replaying a corrupt history.
    SnapshotTrailer {
        /// `SHA-256(domain ‖ version ‖ era ‖ chunks ‖ payload)`.
        digest: [u8; 32],
    },
}

impl FrameKind {
    fn tag(&self) -> u8 {
        match self {
            FrameKind::Submit(_) => 0,
            FrameKind::Tick => 1,
            FrameKind::Cast(_) => 2,
            FrameKind::Deliver { .. } => 3,
            FrameKind::TleEnc { .. } => 4,
            FrameKind::TleRetrieve => 5,
            FrameKind::TleTriples(_) => 6,
            FrameKind::TleDec { .. } => 7,
            FrameKind::TleDecResp(_) => 8,
            FrameKind::RoQuery { .. } => 9,
            FrameKind::RoAnswer(_) => 10,
            FrameKind::Output(_) => 11,
            FrameKind::Snapshot(_) => 12,
            FrameKind::SnapshotHeader { .. } => 13,
            FrameKind::SnapshotChunk { .. } => 14,
            FrameKind::SnapshotTrailer { .. } => 15,
        }
    }

    fn name(tag: u8) -> &'static str {
        match tag {
            0 => "Submit",
            1 => "Tick",
            2 => "Cast",
            3 => "Deliver",
            4 => "TleEnc",
            5 => "TleRetrieve",
            6 => "TleTriples",
            7 => "TleDec",
            8 => "TleDecResp",
            9 => "RoQuery",
            10 => "RoAnswer",
            11 => "Output",
            12 => "Snapshot",
            13 => "SnapshotHeader",
            14 => "SnapshotChunk",
            15 => "SnapshotTrailer",
            _ => "?",
        }
    }

    fn body(&self) -> Value {
        match self {
            FrameKind::Submit(v) | FrameKind::Cast(v) => v.clone(),
            FrameKind::Tick | FrameKind::TleRetrieve => Value::Unit,
            FrameKind::Deliver { origin, payload } => {
                Value::pair(Value::U64(u64::from(*origin)), payload.clone())
            }
            FrameKind::TleEnc { rho, tau } => Value::pair(rho.clone(), Value::U64(*tau)),
            FrameKind::TleTriples(v)
            | FrameKind::TleDecResp(v)
            | FrameKind::Output(v)
            | FrameKind::Snapshot(v) => v.clone(),
            FrameKind::TleDec { ct, tau } => Value::pair(ct.clone(), Value::U64(*tau)),
            FrameKind::RoQuery { x, len } => Value::pair(Value::bytes(x), Value::U64(*len)),
            FrameKind::RoAnswer(b) => Value::bytes(b),
            FrameKind::SnapshotHeader {
                version,
                era,
                chunks,
            } => Value::list([Value::U64(*version), Value::U64(*era), Value::U64(*chunks)]),
            FrameKind::SnapshotChunk { index, data } => {
                Value::pair(Value::U64(*index), Value::bytes(data))
            }
            FrameKind::SnapshotTrailer { digest } => Value::bytes(digest),
        }
    }

    fn from_body(tag: u8, body: Value) -> Result<FrameKind, CodecError> {
        let bad = || CodecError::BadPayload {
            kind: Self::name(tag),
        };
        let unpair = |body: &Value| -> Result<(Value, Value), CodecError> {
            match body.as_list() {
                Some([a, b]) => Ok((a.clone(), b.clone())),
                _ => Err(bad()),
            }
        };
        match tag {
            0 => Ok(FrameKind::Submit(body)),
            1 => match body {
                Value::Unit => Ok(FrameKind::Tick),
                _ => Err(bad()),
            },
            2 => Ok(FrameKind::Cast(body)),
            3 => {
                let (origin, payload) = unpair(&body)?;
                let origin = origin
                    .as_u64()
                    .and_then(|o| u32::try_from(o).ok())
                    .ok_or_else(bad)?;
                Ok(FrameKind::Deliver { origin, payload })
            }
            4 => {
                let (rho, tau) = unpair(&body)?;
                rho.as_bytes().ok_or_else(bad)?;
                let tau = tau.as_u64().ok_or_else(bad)?;
                Ok(FrameKind::TleEnc { rho, tau })
            }
            5 => match body {
                Value::Unit => Ok(FrameKind::TleRetrieve),
                _ => Err(bad()),
            },
            6 => Ok(FrameKind::TleTriples(body)),
            7 => {
                let (ct, tau) = unpair(&body)?;
                let tau = tau.as_u64().ok_or_else(bad)?;
                Ok(FrameKind::TleDec { ct, tau })
            }
            8 => Ok(FrameKind::TleDecResp(body)),
            9 => {
                let (x, len) = unpair(&body)?;
                let x = x.as_bytes().ok_or_else(bad)?.to_vec();
                let len = len.as_u64().ok_or_else(bad)?;
                Ok(FrameKind::RoQuery { x, len })
            }
            10 => match body {
                Value::Bytes(b) => Ok(FrameKind::RoAnswer(b)),
                _ => Err(bad()),
            },
            11 => Ok(FrameKind::Output(body)),
            12 => Ok(FrameKind::Snapshot(body)),
            13 => match body.as_list() {
                Some([version, era, chunks]) => {
                    let version = version.as_u64().ok_or_else(bad)?;
                    let era = era.as_u64().ok_or_else(bad)?;
                    let chunks = chunks.as_u64().ok_or_else(bad)?;
                    Ok(FrameKind::SnapshotHeader {
                        version,
                        era,
                        chunks,
                    })
                }
                _ => Err(bad()),
            },
            14 => {
                let (index, data) = unpair(&body)?;
                let index = index.as_u64().ok_or_else(bad)?;
                let data = data.as_bytes().ok_or_else(bad)?.to_vec();
                Ok(FrameKind::SnapshotChunk { index, data })
            }
            15 => {
                let digest: [u8; 32] = body
                    .as_bytes()
                    .and_then(|b| b.try_into().ok())
                    .ok_or_else(bad)?;
                Ok(FrameKind::SnapshotTrailer { digest })
            }
            _ => Err(CodecError::UnknownKind { tag }),
        }
    }
}

/// One wire message of the networked world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Sender endpoint.
    pub from: Endpoint,
    /// Recipient endpoint.
    pub to: Endpoint,
    /// The round the frame was sent in (`G_clock` time at the sender).
    pub sent_at: u64,
    /// The message.
    pub kind: FrameKind,
}

impl Frame {
    /// Encodes the frame, including the outer length prefix.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.kind.body().encode();
        let mut out = Vec::with_capacity(4 + HEADER_LEN + body.len());
        out.extend_from_slice(&((HEADER_LEN + body.len()) as u32).to_be_bytes());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.kind.tag());
        self.from.encode_into(&mut out);
        self.to.encode_into(&mut out);
        out.extend_from_slice(&self.sent_at.to_be_bytes());
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes exactly one frame; trailing bytes are an error.
    ///
    /// # Errors
    ///
    /// A [`CodecError`] naming the first malformation found. Never panics.
    pub fn decode(bytes: &[u8]) -> Result<Frame, CodecError> {
        let (frame, used) = Frame::decode_prefix(bytes)?;
        if used != bytes.len() {
            return Err(CodecError::TrailingBytes {
                extra: bytes.len() - used,
            });
        }
        Ok(frame)
    }

    /// Decodes one frame off the front of a byte stream, returning it and
    /// the number of bytes consumed (length prefix included).
    ///
    /// # Errors
    ///
    /// A [`CodecError`] naming the first malformation found. Never panics.
    pub fn decode_prefix(bytes: &[u8]) -> Result<(Frame, usize), CodecError> {
        let need = |needed: usize, have: usize| CodecError::Truncated { needed, have };
        if bytes.len() < 4 {
            return Err(need(4, bytes.len()));
        }
        let declared = u32::from_be_bytes(bytes[..4].try_into().expect("4-byte prefix")) as usize;
        if declared > MAX_FRAME {
            return Err(CodecError::Oversize {
                len: declared,
                max: MAX_FRAME,
            });
        }
        if declared < HEADER_LEN {
            return Err(CodecError::LengthMismatch {
                declared,
                actual: HEADER_LEN,
            });
        }
        let total = 4 + declared;
        if bytes.len() < total {
            return Err(need(total, bytes.len()));
        }
        let frame = &bytes[4..total];
        if frame[..2] != MAGIC {
            return Err(CodecError::BadMagic {
                found: [frame[0], frame[1]],
            });
        }
        if frame[2] != VERSION {
            return Err(CodecError::UnsupportedVersion { found: frame[2] });
        }
        let kind_tag = frame[3];
        let from = Endpoint::decode(&frame[4..9])?;
        let to = Endpoint::decode(&frame[9..14])?;
        let sent_at = u64::from_be_bytes(frame[14..22].try_into().expect("8-byte sent_at"));
        let body_len =
            u32::from_be_bytes(frame[22..HEADER_LEN].try_into().expect("4-byte body len")) as usize;
        if HEADER_LEN + body_len != declared {
            return Err(CodecError::LengthMismatch {
                declared,
                actual: HEADER_LEN + body_len,
            });
        }
        let body = Value::decode(&frame[HEADER_LEN..]).ok_or(CodecError::BadPayload {
            kind: FrameKind::name(kind_tag),
        })?;
        let kind = FrameKind::from_body(kind_tag, body)?;
        Ok((
            Frame {
                from,
                to,
                sent_at,
                kind,
            },
            total,
        ))
    }
}

/// The snapshot-stream format version spoken by
/// [`encode_snapshot_stream`] (and asserted by the decoders). Version 1
/// is the legacy single-frame [`FrameKind::Snapshot`] image.
pub const SNAPSHOT_STREAM_VERSION: u64 = 2;

/// Payload bytes carried per [`FrameKind::SnapshotChunk`]: 1 MiB, far
/// under [`MAX_FRAME`] once framing overhead is added, so a stream of
/// any total size decodes frame by frame in bounded memory.
pub const SNAPSHOT_CHUNK_BYTES: usize = 1 << 20;

/// Domain-separation prefix for the trailer digest.
const SNAPSHOT_DIGEST_DOMAIN: &[u8] = b"sbc-net/snapshot-stream";

/// A decoded streaming snapshot: the era and clock round it was captured
/// at, and the reassembled payload the chunks carried.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotStream {
    /// The capturing service's era (from the header frame).
    pub era: u64,
    /// The shared-clock round at capture (the header frame's `sent_at`).
    pub sent_at: u64,
    /// The concatenated chunk payloads, digest-verified.
    pub payload: Vec<u8>,
}

/// Every way a streaming snapshot can fail to decode. Like
/// [`CodecError`], the decoders return the first malformation found and
/// never panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotStreamError {
    /// A frame of the stream failed to decode at the codec layer.
    Frame(CodecError),
    /// The stream produced a well-formed frame of the wrong kind where a
    /// header, chunk, or trailer was required (also the shape a lying
    /// chunk count takes: the trailer shows up while chunks are still
    /// owed, or a chunk shows up where the trailer belongs).
    UnexpectedFrame {
        /// The frame kind the stream position required.
        expected: &'static str,
        /// The frame kind actually found.
        found: &'static str,
    },
    /// The header claims a snapshot format this decoder does not speak.
    UnsupportedVersion {
        /// The version the header declared.
        found: u64,
    },
    /// A chunk arrived out of position — reordered, duplicated, or
    /// skipped.
    ChunkOutOfOrder {
        /// The index the stream position required.
        expected: u64,
        /// The index the chunk carried.
        found: u64,
    },
    /// The trailer digest does not match the received header + chunk
    /// sequence: the payload was corrupted or spliced in transit.
    DigestMismatch,
    /// Bytes remain after the trailer where the stream was expected to
    /// end exactly.
    TrailingData {
        /// How many bytes were left over.
        extra: usize,
    },
    /// The underlying reader or writer failed (the `std::io` error
    /// rendered to text — `io::Error` is neither `Clone` nor `Eq`).
    Io {
        /// The rendered I/O error.
        detail: String,
    },
}

impl fmt::Display for SnapshotStreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotStreamError::Frame(e) => write!(f, "snapshot stream frame: {e}"),
            SnapshotStreamError::UnexpectedFrame { expected, found } => {
                write!(f, "snapshot stream expected {expected}, found {found}")
            }
            SnapshotStreamError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot format version {found} (speak {SNAPSHOT_STREAM_VERSION})"
                )
            }
            SnapshotStreamError::ChunkOutOfOrder { expected, found } => {
                write!(f, "snapshot chunk {found} where chunk {expected} belongs")
            }
            SnapshotStreamError::DigestMismatch => {
                write!(f, "snapshot stream digest mismatch: payload corrupted")
            }
            SnapshotStreamError::TrailingData { extra } => {
                write!(f, "{extra} trailing bytes after snapshot trailer")
            }
            SnapshotStreamError::Io { detail } => write!(f, "snapshot stream i/o: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotStreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotStreamError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for SnapshotStreamError {
    fn from(e: CodecError) -> Self {
        SnapshotStreamError::Frame(e)
    }
}

/// The trailer digest: SHA-256 over the domain tag, the header fields,
/// and the full payload — any bit of the stream that matters is covered.
fn snapshot_digest(era: u64, chunks: u64, payload: &[u8]) -> [u8; 32] {
    Sha256::digest_parts(&[
        SNAPSHOT_DIGEST_DOMAIN,
        &SNAPSHOT_STREAM_VERSION.to_be_bytes(),
        &era.to_be_bytes(),
        &chunks.to_be_bytes(),
        payload,
    ])
}

fn kind_label(kind: &FrameKind) -> &'static str {
    FrameKind::name(kind.tag())
}

/// The frame sequence of a streaming snapshot: one header, `⌈len /
/// SNAPSHOT_CHUNK_BYTES⌉` chunks, one digest trailer — all `Env → Env`
/// with `sent_at` as the capture round.
fn snapshot_stream_frames(era: u64, sent_at: u64, payload: &[u8]) -> Vec<Frame> {
    let at = |kind| Frame {
        from: Endpoint::Env,
        to: Endpoint::Env,
        sent_at,
        kind,
    };
    let chunks: Vec<&[u8]> = payload.chunks(SNAPSHOT_CHUNK_BYTES).collect();
    let count = chunks.len() as u64;
    let mut frames = Vec::with_capacity(chunks.len() + 2);
    frames.push(at(FrameKind::SnapshotHeader {
        version: SNAPSHOT_STREAM_VERSION,
        era,
        chunks: count,
    }));
    for (index, data) in chunks.into_iter().enumerate() {
        frames.push(at(FrameKind::SnapshotChunk {
            index: index as u64,
            data: data.to_vec(),
        }));
    }
    frames.push(at(FrameKind::SnapshotTrailer {
        digest: snapshot_digest(era, count, payload),
    }));
    frames
}

/// Encodes `payload` as a streaming multi-frame snapshot
/// (header ‖ chunks ‖ digest trailer), concatenated into one byte
/// string. Any payload size encodes — chunking removes the single-frame
/// [`MAX_FRAME`] ceiling the legacy [`FrameKind::Snapshot`] format has.
pub fn encode_snapshot_stream(era: u64, sent_at: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    for frame in snapshot_stream_frames(era, sent_at, payload) {
        out.extend_from_slice(&frame.encode());
    }
    out
}

/// Streams a snapshot frame by frame into any [`io::Write`] — a file, a
/// socket, a TCP lane. Returns the bytes written.
///
/// # Errors
///
/// [`SnapshotStreamError::Io`] carrying the writer's error.
pub fn write_snapshot_stream<Wr: io::Write>(
    w: &mut Wr,
    era: u64,
    sent_at: u64,
    payload: &[u8],
) -> Result<usize, SnapshotStreamError> {
    let mut written = 0;
    for frame in snapshot_stream_frames(era, sent_at, payload) {
        let bytes = frame.encode();
        w.write_all(&bytes).map_err(|e| SnapshotStreamError::Io {
            detail: e.to_string(),
        })?;
        written += bytes.len();
    }
    w.flush().map_err(|e| SnapshotStreamError::Io {
        detail: e.to_string(),
    })?;
    Ok(written)
}

/// Reassembles the stream from already-decoded frames, enforcing order,
/// count, and the trailer digest. `frames` yields one frame per call.
fn assemble_snapshot_stream<E>(
    mut next_frame: impl FnMut() -> Result<Frame, E>,
) -> Result<SnapshotStream, SnapshotStreamError>
where
    SnapshotStreamError: From<E>,
{
    let first = next_frame()?;
    let FrameKind::SnapshotHeader {
        version,
        era,
        chunks,
    } = first.kind
    else {
        return Err(SnapshotStreamError::UnexpectedFrame {
            expected: "SnapshotHeader",
            found: kind_label(&first.kind),
        });
    };
    if version != SNAPSHOT_STREAM_VERSION {
        return Err(SnapshotStreamError::UnsupportedVersion { found: version });
    }
    let sent_at = first.sent_at;
    let mut payload = Vec::new();
    for expected in 0..chunks {
        let frame = next_frame()?;
        match frame.kind {
            FrameKind::SnapshotChunk { index, data } => {
                if index != expected {
                    return Err(SnapshotStreamError::ChunkOutOfOrder {
                        expected,
                        found: index,
                    });
                }
                payload.extend_from_slice(&data);
            }
            other => {
                return Err(SnapshotStreamError::UnexpectedFrame {
                    expected: "SnapshotChunk",
                    found: kind_label(&other),
                })
            }
        }
    }
    let last = next_frame()?;
    let FrameKind::SnapshotTrailer { digest } = last.kind else {
        return Err(SnapshotStreamError::UnexpectedFrame {
            expected: "SnapshotTrailer",
            found: kind_label(&last.kind),
        });
    };
    if digest != snapshot_digest(era, chunks, &payload) {
        return Err(SnapshotStreamError::DigestMismatch);
    }
    Ok(SnapshotStream {
        era,
        sent_at,
        payload,
    })
}

/// Decodes a complete streaming snapshot from a byte string, verifying
/// frame order, chunk count, and the trailer digest. The stream must end
/// exactly at the trailer.
///
/// # Errors
///
/// A [`SnapshotStreamError`] naming the first malformation found
/// (truncation, reordering, a lying chunk count, a digest mismatch, or
/// trailing bytes). Never panics.
pub fn decode_snapshot_stream(bytes: &[u8]) -> Result<SnapshotStream, SnapshotStreamError> {
    let mut off = 0usize;
    let stream = assemble_snapshot_stream(|| -> Result<Frame, CodecError> {
        let (frame, used) = Frame::decode_prefix(&bytes[off..])?;
        off += used;
        Ok(frame)
    })?;
    if off != bytes.len() {
        return Err(SnapshotStreamError::TrailingData {
            extra: bytes.len() - off,
        });
    }
    Ok(stream)
}

/// Reads one streaming snapshot from any [`io::Read`] — the inverse of
/// [`write_snapshot_stream`]. Stops right after the trailer, leaving the
/// reader positioned at whatever follows (so snapshots compose with
/// other traffic on the same connection).
///
/// # Errors
///
/// A [`SnapshotStreamError`]: `Io` for reader failures (including
/// truncation — the stream ends mid-frame), otherwise the same typed
/// malformations as [`decode_snapshot_stream`].
pub fn read_snapshot_stream<R: io::Read>(r: &mut R) -> Result<SnapshotStream, SnapshotStreamError> {
    assemble_snapshot_stream(|| read_frame(r))
}

/// Reads exactly one length-prefixed frame off a reader.
fn read_frame<R: io::Read>(r: &mut R) -> Result<Frame, SnapshotStreamError> {
    let io_err = |e: io::Error| SnapshotStreamError::Io {
        detail: e.to_string(),
    };
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix).map_err(io_err)?;
    let declared = u32::from_be_bytes(prefix) as usize;
    if declared > MAX_FRAME {
        return Err(CodecError::Oversize {
            len: declared,
            max: MAX_FRAME,
        }
        .into());
    }
    let mut buf = vec![0u8; 4 + declared];
    buf[..4].copy_from_slice(&prefix);
    r.read_exact(&mut buf[4..]).map_err(io_err)?;
    Ok(Frame::decode(&buf)?)
}

/// Every way a frame can fail to decode. The decoder returns the first
/// malformation it finds; it never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ends before the declared frame does.
    Truncated {
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The frame does not open with the `"SB"` magic.
    BadMagic {
        /// The two bytes found instead.
        found: [u8; 2],
    },
    /// A version this decoder does not speak.
    UnsupportedVersion {
        /// The version byte found.
        found: u8,
    },
    /// An unknown frame-kind tag.
    UnknownKind {
        /// The kind tag found.
        tag: u8,
    },
    /// An unknown endpoint tag in the address fields.
    UnknownEndpoint {
        /// The endpoint tag found.
        tag: u8,
    },
    /// The outer length prefix disagrees with the header's body length.
    LengthMismatch {
        /// The outer prefix's claim.
        declared: usize,
        /// The length implied by the header.
        actual: usize,
    },
    /// The length prefix claims more than [`MAX_FRAME`].
    Oversize {
        /// The claimed length.
        len: usize,
        /// The cap.
        max: usize,
    },
    /// The body is not a canonical `Value`, or has the wrong shape for
    /// the frame kind.
    BadPayload {
        /// The frame kind whose shape was violated.
        kind: &'static str,
    },
    /// Bytes remain after a complete frame where exactly one was expected.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            CodecError::BadMagic { found } => {
                write!(
                    f,
                    "bad magic 0x{:02x}{:02x} (want \"SB\")",
                    found[0], found[1]
                )
            }
            CodecError::UnsupportedVersion { found } => {
                write!(f, "unsupported wire version {found} (speak {VERSION})")
            }
            CodecError::UnknownKind { tag } => write!(f, "unknown frame kind tag {tag}"),
            CodecError::UnknownEndpoint { tag } => write!(f, "unknown endpoint tag {tag}"),
            CodecError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "length prefix mismatch: declared {declared}, header implies {actual}"
                )
            }
            CodecError::Oversize { len, max } => {
                write!(f, "frame claims {len} bytes, cap is {max}")
            }
            CodecError::BadPayload { kind } => {
                write!(f, "malformed payload for {kind} frame")
            }
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Network-layer errors of the networked backend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// A frame failed to decode (source-chained to the [`CodecError`]).
    Codec(CodecError),
    /// A frame was addressed to a party outside the experiment.
    UnknownParty {
        /// The out-of-range party index.
        party: u32,
        /// The number of parties in the experiment.
        n: usize,
    },
    /// A socket operation failed (the `std::io` error rendered to text —
    /// `io::Error` is neither `Clone` nor `Eq`, and the typed surface is).
    Io {
        /// The operation that failed (`"bind"`, `"connect"`, `"write"`, …).
        op: &'static str,
        /// The rendered I/O error.
        detail: String,
    },
    /// A read or write deadline (derived from the round bound ∆) expired
    /// before the peer caught up.
    Timeout {
        /// The operation whose deadline expired.
        op: &'static str,
        /// The deadline that was exceeded, in milliseconds.
        millis: u64,
    },
    /// A link stayed down through every reconnect attempt.
    LinkDown {
        /// The lane whose link is down (e.g. `"control"`, `"data:2"`).
        lane: String,
        /// Reconnect attempts made before giving up.
        attempts: u32,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Codec(_) => write!(f, "undecodable frame dropped by transport"),
            NetError::UnknownParty { party, n } => {
                write!(f, "frame addressed to party {party}, experiment has {n}")
            }
            NetError::Io { op, detail } => write!(f, "socket {op} failed: {detail}"),
            NetError::Timeout { op, millis } => {
                write!(f, "{op} deadline expired after {millis} ms")
            }
            NetError::LinkDown { lane, attempts } => {
                write!(f, "link {lane} down after {attempts} reconnect attempts")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Codec(e) => Some(e),
            NetError::UnknownParty { .. }
            | NetError::Io { .. }
            | NetError::Timeout { .. }
            | NetError::LinkDown { .. } => None,
        }
    }
}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> Self {
        NetError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame {
            from: Endpoint::Party(3),
            to: Endpoint::Host,
            sent_at: 7,
            kind: FrameKind::TleEnc {
                rho: Value::bytes(b"rho-bytes"),
                tau: 5,
            },
        }
    }

    #[test]
    fn round_trip_every_kind() {
        let kinds = vec![
            FrameKind::Submit(Value::bytes(b"m")),
            FrameKind::Tick,
            FrameKind::Cast(Value::str("Wake_Up")),
            FrameKind::Deliver {
                origin: 2,
                payload: Value::list([Value::bytes(b"c"), Value::U64(5), Value::bytes(b"y")]),
            },
            FrameKind::TleEnc {
                rho: Value::bytes(b"r"),
                tau: 9,
            },
            FrameKind::TleRetrieve,
            FrameKind::TleTriples(Value::list([])),
            FrameKind::TleDec {
                ct: Value::bytes(b"c"),
                tau: 9,
            },
            FrameKind::TleDecResp(Value::Unit),
            FrameKind::RoQuery {
                x: b"x".to_vec(),
                len: 32,
            },
            FrameKind::RoAnswer(vec![1, 2, 3]),
            FrameKind::Output(Value::list([Value::bytes(b"out")])),
            FrameKind::Snapshot(Value::list([Value::str("sbc-service/v1"), Value::U64(7)])),
            FrameKind::SnapshotHeader {
                version: SNAPSHOT_STREAM_VERSION,
                era: 3,
                chunks: 2,
            },
            FrameKind::SnapshotChunk {
                index: 1,
                data: vec![0xCD; 48],
            },
            FrameKind::SnapshotTrailer { digest: [0x5A; 32] },
        ];
        for kind in kinds {
            let f = Frame {
                from: Endpoint::Env,
                to: Endpoint::Party(0),
                sent_at: 1,
                kind,
            };
            assert_eq!(Frame::decode(&f.encode()), Ok(f.clone()), "{f:?}");
        }
    }

    #[test]
    fn stream_decoding() {
        let a = sample();
        let b = Frame {
            sent_at: 8,
            ..sample()
        };
        let mut stream = a.encode();
        stream.extend_from_slice(&b.encode());
        let (fa, used) = Frame::decode_prefix(&stream).unwrap();
        let (fb, used2) = Frame::decode_prefix(&stream[used..]).unwrap();
        assert_eq!((fa, fb), (a, b));
        assert_eq!(used + used2, stream.len());
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let enc = sample().encode();
        for cut in 0..enc.len() {
            let err = Frame::decode(&enc[..cut]);
            assert!(
                matches!(err, Err(CodecError::Truncated { .. })),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn header_malformations() {
        let mut bad_magic = sample().encode();
        bad_magic[4] = b'X';
        assert!(matches!(
            Frame::decode(&bad_magic),
            Err(CodecError::BadMagic { .. })
        ));

        let mut bad_version = sample().encode();
        bad_version[6] = 99;
        assert_eq!(
            Frame::decode(&bad_version),
            Err(CodecError::UnsupportedVersion { found: 99 })
        );

        let mut bad_kind = sample().encode();
        bad_kind[7] = 200;
        assert_eq!(
            Frame::decode(&bad_kind),
            Err(CodecError::UnknownKind { tag: 200 })
        );

        let mut bad_endpoint = sample().encode();
        bad_endpoint[8] = 9;
        assert_eq!(
            Frame::decode(&bad_endpoint),
            Err(CodecError::UnknownEndpoint { tag: 9 })
        );
    }

    #[test]
    fn lying_lengths() {
        let enc = sample().encode();
        let mut lying = enc.clone();
        lying[..4].copy_from_slice(&((enc.len() - 4 + 1) as u32).to_be_bytes());
        assert!(matches!(
            Frame::decode(&lying),
            Err(CodecError::Truncated { .. }) | Err(CodecError::LengthMismatch { .. })
        ));

        let mut oversize = enc.clone();
        oversize[..4].copy_from_slice(&(MAX_FRAME as u32 + 1).to_be_bytes());
        assert!(matches!(
            Frame::decode(&oversize),
            Err(CodecError::Oversize { .. })
        ));

        let mut trailing = enc;
        trailing.push(0);
        assert_eq!(
            Frame::decode(&trailing),
            Err(CodecError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn wrong_shape_body_rejected() {
        // A TleEnc frame whose body is not a (rho, tau) pair.
        let f = Frame {
            from: Endpoint::Host,
            to: Endpoint::Party(0),
            sent_at: 0,
            kind: FrameKind::RoAnswer(vec![1]),
        };
        let mut enc = f.encode();
        enc[7] = 4; // relabel as TleEnc; body stays a bare Bytes
        assert_eq!(
            Frame::decode(&enc),
            Err(CodecError::BadPayload { kind: "TleEnc" })
        );
    }

    #[test]
    fn snapshot_stream_round_trips_across_chunk_boundaries() {
        // Empty, sub-chunk, exactly one chunk, and multi-chunk payloads
        // all round-trip with the era and capture round intact.
        for len in [
            0usize,
            1,
            SNAPSHOT_CHUNK_BYTES - 1,
            SNAPSHOT_CHUNK_BYTES,
            SNAPSHOT_CHUNK_BYTES + 1,
            2 * SNAPSHOT_CHUNK_BYTES + 17,
        ] {
            let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let bytes = encode_snapshot_stream(9, 41, &payload);
            let stream =
                decode_snapshot_stream(&bytes).unwrap_or_else(|e| panic!("len={len}: {e}"));
            assert_eq!(stream.era, 9);
            assert_eq!(stream.sent_at, 41);
            assert_eq!(stream.payload, payload, "len={len}");
        }
    }

    #[test]
    fn snapshot_stream_io_writer_reader_round_trip() {
        let payload = vec![7u8; SNAPSHOT_CHUNK_BYTES + 300];
        let mut buf = Vec::new();
        let written = write_snapshot_stream(&mut buf, 2, 11, &payload).unwrap();
        assert_eq!(written, buf.len());
        assert_eq!(buf, encode_snapshot_stream(2, 11, &payload));
        // The reader stops exactly at the trailer: trailing traffic on
        // the same stream is untouched.
        buf.extend_from_slice(b"next-message");
        let mut cursor = io::Cursor::new(&buf);
        let stream = read_snapshot_stream(&mut cursor).unwrap();
        assert_eq!(stream.payload, payload);
        let rest = &buf[cursor.position() as usize..];
        assert_eq!(rest, b"next-message");
    }

    #[test]
    fn snapshot_stream_corruptions_are_typed() {
        let payload = vec![3u8; 100];
        let good = encode_snapshot_stream(1, 5, &payload);

        // Bit flip inside a chunk payload: the digest catches it.
        let (_, header_len) = Frame::decode_prefix(&good).unwrap();
        let mut flipped = good.clone();
        // Chunk body layout: List tag (1) + count (8) + U64 index (9) +
        // Bytes tag/len (9) = 27 bytes before the data itself.
        let target = header_len + 4 + HEADER_LEN + 27 + 40; // inside chunk 0's data

        flipped[target] ^= 0x01;
        assert_eq!(
            decode_snapshot_stream(&flipped),
            Err(SnapshotStreamError::DigestMismatch)
        );

        // Truncation mid-stream is a typed frame error.
        assert!(matches!(
            decode_snapshot_stream(&good[..good.len() - 10]),
            Err(SnapshotStreamError::Frame(CodecError::Truncated { .. }))
        ));

        // Trailing bytes after the trailer.
        let mut padded = good.clone();
        padded.push(0);
        assert_eq!(
            decode_snapshot_stream(&padded),
            Err(SnapshotStreamError::TrailingData { extra: 1 })
        );

        // A non-snapshot frame where the header belongs.
        let tick = Frame {
            from: Endpoint::Env,
            to: Endpoint::Env,
            sent_at: 0,
            kind: FrameKind::Tick,
        }
        .encode();
        assert_eq!(
            decode_snapshot_stream(&tick),
            Err(SnapshotStreamError::UnexpectedFrame {
                expected: "SnapshotHeader",
                found: "Tick",
            })
        );
    }

    #[test]
    fn net_error_source_chain() {
        let e = NetError::from(CodecError::UnknownKind { tag: 7 });
        let dyn_err: &dyn std::error::Error = &e;
        assert!(dyn_err.source().is_some());
    }
}
