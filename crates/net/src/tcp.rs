//! Real sockets under the three-plane [`Transport`] seam: a std-only
//! (`std::net`, no async runtime) TCP backend speaking the existing
//! length-prefixed [`Frame`] encoding on the wire.
//!
//! # Topology
//!
//! A [`TcpHarness`] owns one nonblocking listener and the accept side of
//! **one socket per link**: a control lane, one rpc lane per party, and
//! one data lane per party — `2n + 1` lanes for an `n`-party experiment.
//! The matching [`TcpTransport`] owns the connect side of every lane plus
//! the shared per-plane mailboxes; every frame a world posts really
//! traverses the OS loopback stack (connect, write, accept, read) before
//! it can be received.
//!
//! # Deadlines and reconnects
//!
//! Read/write deadlines derive from the round bound ∆
//! ([`TcpConfig::from_delta`]): a round's worth of traffic must land
//! within the deadline or the receive side gives up on the gap, counts a
//! [`TransportStats::timeouts`], and lets the clock move on — a silent
//! peer degrades to the typed [`NetError::Timeout`] path
//! ([`TcpTransport::await_synced`]), never a hang. A dropped connection
//! is survived by per-link reconnect with capped exponential backoff:
//! the writer re-establishes the lane and retransmits the whole frame,
//! while the reader discards the partial tail of the dead socket and
//! drains it to EOF before promoting the replacement, so frame order is
//! preserved across the drop. A link that stays down through every
//! attempt is the typed [`NetError::LinkDown`].
//!
//! # Determinism and conformance
//!
//! Per-lane TCP byte streams preserve write order, receives are gated on
//! per-lane sent/received counters (a frame handed to `send` is visible
//! to the very next `recv_*`, matching the in-process world's synchrony
//! assumption), and a data frame's due round is its own `sent_at` — the
//! round the world stamped at post time, which is exactly [`Loopback`]'s
//! due-at-send-round schedule. [`TcpSbcWorld`] is therefore held to
//! `CompareLevel::Exact` transcript equality against `RealSbcWorld` in
//! `tests/net_conformance.rs`, over real OS sockets.
//!
//! [`Loopback`]: crate::transport::Loopback

use crate::codec::{CodecError, Frame, NetError};
use crate::transport::{plane_of, Mailboxes, Plane, Transport, TransportStats};
use crate::world::{NetProfile, NetSbcWorld};
use sbc_core::error::SbcError;
use sbc_core::worlds::SbcParams;
use std::collections::{HashSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Lane-identification preamble magic, written once per connection.
const PREAMBLE_MAGIC: [u8; 4] = *b"SBTC";
/// Preamble length: magic plus a big-endian `u32` lane id.
const PREAMBLE_LEN: usize = 8;
/// How long `admit` waits for a preamble to trail its accept.
const PREAMBLE_WAIT: Duration = Duration::from_secs(2);

/// Lanes of an `n`-party experiment: control, `n` rpc, `n` data.
fn lane_count(n: usize) -> usize {
    1 + 2 * n
}

/// The lane a classified frame rides.
fn lane_of_plane(plane: &Plane, n: usize) -> usize {
    match plane {
        Plane::Control => 0,
        Plane::Rpc(p) => 1 + *p as usize,
        Plane::Data { to, .. } => 1 + n + *to as usize,
    }
}

/// Human-readable lane name for typed errors.
fn lane_name(lane: usize, n: usize) -> String {
    if lane == 0 {
        "control".to_string()
    } else if lane <= n {
        format!("rpc:{}", lane - 1)
    } else {
        format!("data:{}", lane - 1 - n)
    }
}

fn io_err(op: &'static str) -> impl Fn(std::io::Error) -> NetError {
    move |e| NetError::Io {
        op,
        detail: e.to_string(),
    }
}

/// Tuning knobs of the TCP transport. Every duration is wall-clock: the
/// protocol's rounds are logical, but a socket needs real deadlines.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Read/write deadline: how long a receive waits for in-flight frames
    /// (and a write waits for buffer space) before giving up.
    pub io_deadline: Duration,
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Reconnect attempts before a dead link becomes
    /// [`NetError::LinkDown`].
    pub reconnect_attempts: u32,
    /// First reconnect backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl TcpConfig {
    /// Deadlines derived from the round bound ∆: a base allowance plus a
    /// per-round margin, so worlds with longer delivery bounds get
    /// proportionally more wall-clock slack before a link is declared
    /// silent.
    pub fn from_delta(delta: u64) -> Self {
        TcpConfig {
            io_deadline: Duration::from_millis(200 + 100 * delta),
            connect_timeout: Duration::from_secs(2),
            reconnect_attempts: 5,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
        }
    }

    /// Overrides the read/write deadline (tests use short ones).
    pub fn io_deadline(mut self, d: Duration) -> Self {
        self.io_deadline = d;
        self
    }

    /// Overrides the reconnect budget.
    pub fn reconnect_attempts(mut self, attempts: u32) -> Self {
        self.reconnect_attempts = attempts;
        self
    }
}

/// The accept side of one lane.
#[derive(Debug, Default)]
struct LaneRx {
    /// The live accepted socket, nonblocking.
    reader: Option<TcpStream>,
    /// Reconnected sockets waiting for the old reader to drain to EOF —
    /// promotion order preserves frame order across a drop.
    pending: VecDeque<TcpStream>,
    /// Stream-reassembly buffer (partial frames across reads).
    buf: Vec<u8>,
    /// Complete frames read off this lane.
    received: u64,
    /// Undecodable bytes appeared mid-stream: the connection was dropped
    /// and the counter gap conceded, so receives never wait on it.
    poisoned: bool,
}

/// The connect side of one lane.
#[derive(Debug, Default)]
struct LaneTx {
    writer: Option<TcpStream>,
    /// Complete frames written to this lane.
    sent: u64,
    /// Whether this lane has ever been connected — separates the lazy
    /// first connect from a genuine reconnect in the stats.
    connected_once: bool,
}

/// Owns the listener, the accept loop, and the read side of every lane.
/// Usually constructed and consumed by [`TcpTransport::local`]; separate
/// so tests (and future multi-process splits) can hold the passive side
/// explicitly.
#[derive(Debug)]
pub struct TcpHarness {
    listener: TcpListener,
    addr: SocketAddr,
    rx: Vec<LaneRx>,
}

impl TcpHarness {
    /// Binds a loopback listener for an `n`-party experiment.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the OS refuses the bind.
    pub fn bind(n: usize) -> Result<Self, NetError> {
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(io_err("bind"))?;
        listener.set_nonblocking(true).map_err(io_err("bind"))?;
        let addr = listener.local_addr().map_err(io_err("bind"))?;
        Ok(TcpHarness {
            listener,
            addr,
            rx: (0..lane_count(n)).map(|_| LaneRx::default()).collect(),
        })
    }

    /// The address lanes connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accepts every queued connection and files it under the lane named
    /// by its preamble. Connections with a bad preamble are dropped.
    fn accept_pending(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = self.admit(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    /// Reads a connection's lane preamble and files it.
    fn admit(&mut self, stream: TcpStream) -> Result<(), NetError> {
        // The preamble may trail the accept by a scheduler tick; read it
        // with a short blocking timeout before going nonblocking.
        stream.set_nonblocking(false).map_err(io_err("accept"))?;
        stream
            .set_read_timeout(Some(PREAMBLE_WAIT))
            .map_err(io_err("accept"))?;
        let mut pre = [0u8; PREAMBLE_LEN];
        (&stream).read_exact(&mut pre).map_err(io_err("accept"))?;
        if pre[..4] != PREAMBLE_MAGIC {
            return Err(NetError::Io {
                op: "accept",
                detail: "bad lane preamble".to_string(),
            });
        }
        let lane = u32::from_be_bytes(pre[4..8].try_into().expect("4-byte lane id")) as usize;
        if lane >= self.rx.len() {
            return Err(NetError::Io {
                op: "accept",
                detail: format!("lane {lane} out of range"),
            });
        }
        stream.set_nonblocking(true).map_err(io_err("accept"))?;
        let slot = &mut self.rx[lane];
        if slot.reader.is_none() && slot.pending.is_empty() {
            slot.reader = Some(stream);
        } else {
            // A reconnect: the old socket drains to EOF first so frames
            // already written on it land before the replacement's.
            slot.pending.push_back(stream);
        }
        Ok(())
    }
}

/// Which fault the test harness injects on a lane's next write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FaultMode {
    /// Write half the frame, kill the connection, then reconnect and
    /// retransmit — the recoverable mid-frame disconnect.
    Break,
    /// Write half the frame and go silent (the frame still counts as
    /// written): only the receive deadline unsticks the peer.
    Stall,
}

/// Injected fault state, shared between a [`TcpTransport`] and the
/// [`TcpFaultHandle`]s cloned off it.
#[derive(Debug, Default)]
struct FaultPlan {
    break_once: HashSet<usize>,
    stall_once: HashSet<usize>,
    /// Lanes simulating an unreachable peer: every connect attempt fails
    /// until the lane is restored.
    down: HashSet<usize>,
}

/// A cloneable handle that injects link faults into a running
/// [`TcpTransport`] — the conformance tests kill connections mid-epoch
/// through this while still demanding `Exact` transcript equality.
#[derive(Clone, Debug)]
pub struct TcpFaultHandle {
    plan: Arc<Mutex<FaultPlan>>,
    lanes: usize,
}

impl TcpFaultHandle {
    /// Breaks one lane's link mid-frame on its next write; the transport
    /// reconnects and retransmits.
    pub fn break_lane(&self, lane: usize) {
        self.plan
            .lock()
            .expect("fault plan")
            .break_once
            .insert(lane);
    }

    /// Breaks every lane's link mid-frame on its next write.
    pub fn break_all_links(&self) {
        let mut plan = self.plan.lock().expect("fault plan");
        for lane in 0..self.lanes {
            plan.break_once.insert(lane);
        }
    }

    /// Makes one lane's peer go silent mid-frame on its next write: the
    /// frame is half-delivered and never completed, so only the receive
    /// deadline recovers.
    pub fn stall_lane(&self, lane: usize) {
        self.plan
            .lock()
            .expect("fault plan")
            .stall_once
            .insert(lane);
    }

    /// Simulates an unreachable peer: the lane's link drops and every
    /// reconnect attempt fails until [`restore_lane`](Self::restore_lane).
    pub fn take_lane_down(&self, lane: usize) {
        self.plan.lock().expect("fault plan").down.insert(lane);
    }

    /// Heals a lane taken down by [`take_lane_down`](Self::take_lane_down).
    pub fn restore_lane(&self, lane: usize) {
        self.plan.lock().expect("fault plan").down.remove(&lane);
    }
}

/// The real-socket [`Transport`]: one TCP connection per lane over OS
/// loopback, ∆-derived deadlines, per-link reconnect with capped backoff.
/// See the [module docs](self) for the full delivery model.
#[derive(Debug)]
pub struct TcpTransport {
    n: usize,
    delta: u64,
    cfg: TcpConfig,
    harness: TcpHarness,
    tx: Vec<LaneTx>,
    boxes: Mailboxes,
    faults: Arc<Mutex<FaultPlan>>,
}

impl TcpTransport {
    /// Binds a loopback harness for the self-contained single-process
    /// topology every in-repo consumer uses. Both socket ends live in
    /// this object, but every frame still crosses the OS socket stack.
    /// Lanes connect lazily on first write, so an `n`-party world costs
    /// one listener up front and sockets only for the lanes it uses.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if binding the listener fails.
    pub fn local(n: usize, delta: u64, cfg: TcpConfig) -> Result<Self, NetError> {
        let harness = TcpHarness::bind(n)?;
        Ok(TcpTransport {
            n,
            delta,
            cfg,
            harness,
            tx: (0..lane_count(n)).map(|_| LaneTx::default()).collect(),
            boxes: Mailboxes::new(n),
            faults: Arc::new(Mutex::new(FaultPlan::default())),
        })
    }

    /// A handle for injecting link faults (kills, stalls, outages) into
    /// this transport while it runs.
    pub fn fault_handle(&self) -> TcpFaultHandle {
        TcpFaultHandle {
            plan: Arc::clone(&self.faults),
            lanes: lane_count(self.n),
        }
    }

    /// The lane id of the control plane.
    pub fn control_lane(&self) -> usize {
        0
    }

    /// The lane id of `party`'s rpc plane.
    pub fn rpc_lane(&self, party: u32) -> usize {
        1 + party as usize
    }

    /// The lane id of `party`'s data plane.
    pub fn data_lane(&self, party: u32) -> usize {
        1 + self.n + party as usize
    }

    /// The harness address (tests connect raw sockets here).
    pub fn addr(&self) -> SocketAddr {
        self.harness.addr()
    }

    /// Connects one lane: TCP to the harness, nodelay, write deadline,
    /// and the identifying preamble.
    fn connect_lane(&self, lane: usize) -> std::io::Result<TcpStream> {
        if self.faults.lock().expect("fault plan").down.contains(&lane) {
            return Err(std::io::Error::new(
                ErrorKind::ConnectionRefused,
                "simulated outage",
            ));
        }
        let stream = TcpStream::connect_timeout(&self.harness.addr(), self.cfg.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(self.cfg.io_deadline))?;
        let mut pre = [0u8; PREAMBLE_LEN];
        pre[..4].copy_from_slice(&PREAMBLE_MAGIC);
        pre[4..].copy_from_slice(&(lane as u32).to_be_bytes());
        (&stream).write_all(&pre)?;
        Ok(stream)
    }

    /// Writes one whole frame on `lane`, reconnecting with capped backoff
    /// on failure and retransmitting from the start of the frame.
    fn write_frame(&mut self, lane: usize, bytes: &[u8]) -> Result<(), NetError> {
        match self.take_fault(lane) {
            Some(FaultMode::Break) => {
                // A mid-frame kill: half the frame lands, the socket dies
                // (FIN). Fall through to the reconnect path, which
                // retransmits the frame whole.
                if let Some(w) = self.tx[lane].writer.as_mut() {
                    let _ = w.write_all(&bytes[..bytes.len() / 2]);
                    let _ = w.flush();
                    let _ = w.shutdown(Shutdown::Both);
                }
                self.tx[lane].writer = None;
            }
            Some(FaultMode::Stall) => {
                // A peer gone silent mid-frame: half the frame lands and
                // the connection stays open but carries nothing more, so
                // no EOF ever tells the reader the rest is not coming —
                // only the receive deadline recovers. The caller counts
                // the frame as written (it believes its write succeeded).
                if let Some(w) = self.tx[lane].writer.as_mut() {
                    let _ = w.write_all(&bytes[..bytes.len() / 2]);
                    let _ = w.flush();
                }
                return Ok(());
            }
            None => {}
        }
        let mut attempts = 0u32;
        loop {
            if self.tx[lane].writer.is_none() {
                match self.connect_lane(lane) {
                    Ok(w) => {
                        self.tx[lane].writer = Some(w);
                        if self.tx[lane].connected_once {
                            self.boxes.stats.reconnects += 1;
                        }
                        self.tx[lane].connected_once = true;
                    }
                    Err(_) => {
                        attempts += 1;
                        if attempts > self.cfg.reconnect_attempts {
                            return Err(NetError::LinkDown {
                                lane: lane_name(lane, self.n),
                                attempts: self.cfg.reconnect_attempts,
                            });
                        }
                        std::thread::sleep(self.backoff(attempts));
                        continue;
                    }
                }
            }
            let w = self.tx[lane].writer.as_mut().expect("writer just ensured");
            match w.write_all(bytes).and_then(|()| w.flush()) {
                Ok(()) => return Ok(()),
                Err(_) => {
                    // The connection died (possibly mid-frame). Drop it;
                    // the reader discards the partial tail at EOF and the
                    // next iteration retransmits the whole frame.
                    self.tx[lane].writer = None;
                    attempts += 1;
                    if attempts > self.cfg.reconnect_attempts {
                        return Err(NetError::LinkDown {
                            lane: lane_name(lane, self.n),
                            attempts: self.cfg.reconnect_attempts,
                        });
                    }
                    std::thread::sleep(self.backoff(attempts));
                }
            }
        }
    }

    fn backoff(&self, attempt: u32) -> Duration {
        let base = self.cfg.backoff_base.saturating_mul(1 << attempt.min(16));
        base.min(self.cfg.backoff_cap)
    }

    fn take_fault(&mut self, lane: usize) -> Option<FaultMode> {
        let mut plan = self.faults.lock().expect("fault plan");
        if plan.stall_once.remove(&lane) {
            Some(FaultMode::Stall)
        } else if plan.break_once.remove(&lane) {
            Some(FaultMode::Break)
        } else {
            None
        }
    }

    /// One nonblocking pump: accept queued connections, then read every
    /// lane's socket, reassembling and routing complete frames.
    fn pump(&mut self) {
        self.harness.accept_pending();
        for lane in 0..self.harness.rx.len() {
            self.pump_lane(lane);
        }
    }

    /// Reads one lane until it would block, routing complete frames into
    /// the mailboxes. EOF discards a partial frame (the writer
    /// retransmits it whole on its reconnected socket) and promotes the
    /// next pending connection.
    fn pump_lane(&mut self, lane: usize) {
        let delta = self.delta;
        let n = self.n;
        let slot = &mut self.harness.rx[lane];
        let boxes = &mut self.boxes;
        loop {
            let Some(reader) = slot.reader.as_mut() else {
                match slot.pending.pop_front() {
                    Some(s) => {
                        slot.buf.clear();
                        slot.reader = Some(s);
                        continue;
                    }
                    None => return,
                }
            };
            let mut chunk = [0u8; 4096];
            match reader.read(&mut chunk) {
                Ok(0) => {
                    // EOF: the peer end closed. A partial frame in the
                    // buffer was cut mid-write; discard it — the writer
                    // retransmits the whole frame after reconnecting.
                    slot.reader = None;
                    slot.buf.clear();
                }
                Ok(k) => {
                    slot.buf.extend_from_slice(&chunk[..k]);
                    loop {
                        match Frame::decode_prefix(&slot.buf) {
                            Ok((frame, used)) => {
                                let bytes: Vec<u8> = slot.buf[..used].to_vec();
                                slot.buf.drain(..used);
                                slot.received += 1;
                                match plane_of(&frame, delta, n) {
                                    Ok(Plane::Control) => boxes.control.push_back(bytes),
                                    Ok(Plane::Rpc(p)) => boxes.rpc[p as usize].push_back(bytes),
                                    // A data frame is due at its own
                                    // `sent_at`: the round the world
                                    // stamped at post time, reproducing
                                    // Loopback's due-at-send-round
                                    // schedule.
                                    Ok(Plane::Data { to, .. }) => {
                                        boxes.push_data(to, frame.sent_at, bytes);
                                    }
                                    // Unroutable frames were rejected at
                                    // send; raw external writers can
                                    // still produce them.
                                    Err(_) => boxes.stats.dropped += 1,
                                }
                            }
                            Err(CodecError::Truncated { .. }) => break,
                            Err(_) => {
                                // Garbage mid-stream: frame boundaries
                                // are unrecoverable on this connection.
                                // Drop it and concede the lane so
                                // receives never wait on poisoned links.
                                boxes.stats.decode_errors += 1;
                                boxes.stats.dropped += 1;
                                if let Some(r) = slot.reader.take() {
                                    let _ = r.shutdown(Shutdown::Both);
                                }
                                slot.buf.clear();
                                slot.poisoned = true;
                                break;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(_) => {
                    slot.reader = None;
                    slot.buf.clear();
                }
            }
        }
    }

    /// Whether every lane has received everything written to it.
    fn counters_synced(&self) -> bool {
        (0..self.tx.len()).all(|l| {
            let rx = &self.harness.rx[l];
            rx.poisoned || rx.received >= self.tx[l].sent
        })
    }

    /// Pumps until every written frame has arrived or the deadline
    /// expires. Returns whether the lanes synced; on expiry the gap is
    /// conceded (the loss is final) so later receives don't stall again.
    fn sync_with_deadline(&mut self) -> bool {
        self.pump();
        if self.counters_synced() {
            return true;
        }
        let deadline = Instant::now() + self.cfg.io_deadline;
        loop {
            std::thread::sleep(Duration::from_micros(50));
            self.pump();
            if self.counters_synced() {
                return true;
            }
            if Instant::now() >= deadline {
                self.boxes.stats.timeouts += 1;
                // Concede the gap: the missing frames are lost for good.
                // Tear down each lagging lane's sockets so no stale
                // half-frame bytes poison later traffic — the next send
                // reconnects fresh and the lane carries frames again.
                for l in 0..self.tx.len() {
                    let sent = self.tx[l].sent;
                    let rx = &mut self.harness.rx[l];
                    if rx.received < sent {
                        rx.received = sent;
                        rx.buf.clear();
                        rx.reader = None;
                        self.tx[l].writer = None;
                    }
                }
                return false;
            }
        }
    }

    /// Blocks (bounded by the ∆-derived deadline) until every frame
    /// handed to [`send`](Transport::send) has arrived.
    ///
    /// The `recv_*` methods call this internally and deliver whatever is
    /// there; this entry point is for callers that need the typed
    /// deadline signal itself.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] if the deadline expired with frames still
    /// missing — the gap is conceded, so the next receive returns
    /// immediately with what survived.
    pub fn await_synced(&mut self) -> Result<(), NetError> {
        if self.sync_with_deadline() {
            Ok(())
        } else {
            Err(NetError::Timeout {
                op: "recv",
                millis: self.cfg.io_deadline.as_millis() as u64,
            })
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, bytes: Vec<u8>, _now: u64) -> Result<(), NetError> {
        // Classification (and its counting) happens once, here; the data
        // plane's due round travels inside the frame as `sent_at`, which
        // the world stamps with the sending round.
        let (_, plane) = self.boxes.classify(&bytes, self.delta, self.n)?;
        let lane = lane_of_plane(&plane, self.n);
        match self.write_frame(lane, &bytes) {
            Ok(()) => {
                self.tx[lane].sent += 1;
                Ok(())
            }
            Err(e) => {
                // Degrade, don't hang: the frame is lost and counted, the
                // lane counters never wait for it, and the caller gets
                // the typed error.
                self.boxes.stats.dropped += 1;
                Err(e)
            }
        }
    }

    fn recv_control(&mut self) -> Vec<Vec<u8>> {
        self.sync_with_deadline();
        self.boxes.drain_control()
    }

    fn recv_rpc(&mut self, party: u32) -> Vec<Vec<u8>> {
        self.sync_with_deadline();
        self.boxes.drain_rpc(party)
    }

    fn recv_data(&mut self, party: u32, now: u64) -> Vec<Vec<u8>> {
        self.sync_with_deadline();
        self.boxes.drain_data(party, now)
    }

    fn set_corrupted(&mut self, _party: u32) {
        // Like Loopback: corrupted-sender drops are SimNet's knob, and
        // sit outside the Exact conformance envelope.
    }

    fn clear_in_flight(&mut self) {
        self.sync_with_deadline();
        self.boxes.clear();
    }

    fn idle(&self) -> bool {
        self.boxes.idle() && self.counters_synced()
    }

    fn stats(&self) -> TransportStats {
        self.boxes.stats
    }
}

/// Real loopback sockets under the standard profile seam: every instance
/// binds its own harness and speaks TCP to itself through the OS.
#[derive(Debug)]
pub struct TcpProfile;

impl NetProfile for TcpProfile {
    fn transport(params: &SbcParams, _seed: &[u8]) -> Result<Box<dyn Transport>, SbcError> {
        let t = TcpTransport::local(params.n, params.delta, TcpConfig::from_delta(params.delta))
            .map_err(|e| SbcError::Backend {
                detail: e.to_string(),
            })?;
        Ok(Box::new(t))
    }
}

/// The networked world over real OS loopback sockets — plugs into
/// `SbcSession`/`SbcPool` via `build_backend::<TcpSbcWorld>()` like every
/// other backend, and is pinned to `CompareLevel::Exact` against
/// `RealSbcWorld` in `tests/net_conformance.rs`.
pub type TcpSbcWorld = NetSbcWorld<TcpProfile>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Endpoint, FrameKind};
    use sbc_uc::value::Value;

    fn test_cfg() -> TcpConfig {
        TcpConfig::from_delta(2).io_deadline(Duration::from_millis(150))
    }

    fn wire_frame(to: u32, origin: u32, now: u64, tau: u64, tag: u8) -> Vec<u8> {
        Frame {
            from: Endpoint::Host,
            to: Endpoint::Party(to),
            sent_at: now,
            kind: FrameKind::Deliver {
                origin,
                payload: Value::list([
                    Value::bytes([tag; 4]),
                    Value::U64(tau),
                    Value::bytes([tag ^ 0xff; 4]),
                ]),
            },
        }
        .encode()
    }

    fn control_frame(to: u32, now: u64) -> Vec<u8> {
        Frame {
            from: Endpoint::Env,
            to: Endpoint::Party(to),
            sent_at: now,
            kind: FrameKind::Tick,
        }
        .encode()
    }

    #[test]
    fn frames_cross_real_sockets_per_plane() {
        let mut t = TcpTransport::local(2, 2, test_cfg()).unwrap();
        let c = control_frame(0, 1);
        let r = Frame {
            from: Endpoint::Host,
            to: Endpoint::Party(1),
            sent_at: 1,
            kind: FrameKind::RoAnswer(vec![7; 8]),
        }
        .encode();
        let d = wire_frame(1, 0, 3, 9, 1);
        t.send(c.clone(), 1).unwrap();
        t.send(r.clone(), 1).unwrap();
        t.send(d.clone(), 3).unwrap();
        assert_eq!(t.recv_control(), vec![c]);
        assert_eq!(t.recv_rpc(1), vec![r]);
        assert_eq!(t.recv_data(1, 3), vec![d]);
        assert!(t.idle());
        let s = t.stats();
        assert_eq!((s.sent, s.delivered), (3, 3));
        assert_eq!(s.timeouts, 0);
    }

    #[test]
    fn send_order_is_delivery_order_per_lane() {
        let mut t = TcpTransport::local(2, 2, test_cfg()).unwrap();
        let frames: Vec<Vec<u8>> = (0..20).map(|i| wire_frame(1, 0, 3, 9, i)).collect();
        for f in &frames {
            t.send(f.clone(), 3).unwrap();
        }
        assert_eq!(t.recv_data(1, 3), frames);
        assert!(t.idle());
    }

    #[test]
    fn mid_frame_disconnect_reconnects_and_resumes_cleanly() {
        let mut t = TcpTransport::local(2, 2, test_cfg()).unwrap();
        let handle = t.fault_handle();
        let lane = t.data_lane(1);
        let frames: Vec<Vec<u8>> = (0..3).map(|i| wire_frame(1, 0, 3, 9, i)).collect();
        t.send(frames[0].clone(), 3).unwrap();
        // The next write dies halfway through the frame; the transport
        // must reconnect and retransmit it whole.
        handle.break_lane(lane);
        t.send(frames[1].clone(), 3).unwrap();
        t.send(frames[2].clone(), 3).unwrap();
        assert_eq!(t.recv_data(1, 3), frames, "order preserved across drop");
        let s = t.stats();
        assert!(s.reconnects >= 1, "reconnect happened: {s:?}");
        assert_eq!(s.timeouts, 0, "no deadline needed: {s:?}");
        assert_eq!(s.decode_errors, 0, "no torn frame decoded: {s:?}");
        assert!(t.idle());
    }

    #[test]
    fn read_deadline_expiry_is_typed_timeout_not_a_hang() {
        let mut t = TcpTransport::local(2, 2, test_cfg()).unwrap();
        let handle = t.fault_handle();
        handle.stall_lane(t.control_lane());
        // The peer goes silent halfway through this frame.
        t.send(control_frame(0, 1), 1).unwrap();
        let started = Instant::now();
        let err = t.await_synced().unwrap_err();
        assert!(
            matches!(err, NetError::Timeout { op: "recv", .. }),
            "{err:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "deadline bounded the wait"
        );
        assert_eq!(t.stats().timeouts, 1);
        // The gap is conceded: later receives return immediately and the
        // half-frame never surfaces.
        let started = Instant::now();
        assert!(t.recv_control().is_empty());
        assert!(started.elapsed() < Duration::from_millis(100));
        assert_eq!(t.stats().timeouts, 1, "no repeated stall");
    }

    #[test]
    fn slow_partial_writer_never_corrupts_frame_boundaries() {
        let mut t = TcpTransport::local(2, 2, test_cfg()).unwrap();
        // A raw peer dribbling two frames byte by byte on the control
        // lane, with the transport pumping between every byte.
        let mut raw = TcpStream::connect(t.addr()).unwrap();
        let mut pre = [0u8; PREAMBLE_LEN];
        pre[..4].copy_from_slice(&PREAMBLE_MAGIC);
        pre[4..].copy_from_slice(&(t.control_lane() as u32).to_be_bytes());
        raw.write_all(&pre).unwrap();
        let a = control_frame(0, 1);
        let b = control_frame(1, 2);
        let stream_bytes: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        let mut got = Vec::new();
        for byte in &stream_bytes[..stream_bytes.len() - 1] {
            raw.write_all(&[*byte]).unwrap();
            raw.flush().unwrap();
            got.extend(t.recv_control());
        }
        assert!(got.len() < 2, "second frame incomplete until its last byte");
        raw.write_all(&[stream_bytes[stream_bytes.len() - 1]])
            .unwrap();
        raw.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while got.len() < 2 && Instant::now() < deadline {
            got.extend(t.recv_control());
        }
        assert_eq!(got, vec![a, b], "both frames intact and in order");
        assert_eq!(t.stats().decode_errors, 0);
    }

    #[test]
    fn dead_link_exhausts_reconnects_into_typed_link_down_then_heals() {
        let cfg = test_cfg().reconnect_attempts(2);
        let mut t = TcpTransport::local(2, 2, cfg).unwrap();
        let handle = t.fault_handle();
        let lane = t.data_lane(0);
        handle.take_lane_down(lane);
        // Lanes connect lazily, so the first send walks the connect path
        // straight into the outage.
        let err = t.send(wire_frame(0, 1, 3, 9, 1), 3).unwrap_err();
        assert_eq!(
            err,
            NetError::LinkDown {
                lane: "data:0".to_string(),
                attempts: 2
            }
        );
        assert!(t.stats().dropped >= 1, "lost frame counted");
        // The outage heals; the lane carries frames again.
        handle.restore_lane(lane);
        let f = wire_frame(0, 1, 4, 9, 2);
        t.send(f.clone(), 4).unwrap();
        assert_eq!(t.recv_data(0, 4), vec![f]);
    }

    #[test]
    fn garbage_on_a_lane_poisons_it_without_stalling_others() {
        let mut t = TcpTransport::local(2, 2, test_cfg()).unwrap();
        let mut raw = TcpStream::connect(t.addr()).unwrap();
        let mut pre = [0u8; PREAMBLE_LEN];
        pre[..4].copy_from_slice(&PREAMBLE_MAGIC);
        pre[4..].copy_from_slice(&(t.rpc_lane(0) as u32).to_be_bytes());
        raw.write_all(&pre).unwrap();
        raw.write_all(&[0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0])
            .unwrap();
        raw.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while t.stats().decode_errors == 0 && Instant::now() < deadline {
            let _ = t.recv_rpc(0);
        }
        assert_eq!(t.stats().decode_errors, 1, "garbage counted, not panicked");
        // Other lanes still work.
        let c = control_frame(0, 1);
        t.send(c.clone(), 1).unwrap();
        assert_eq!(t.recv_control(), vec![c]);
    }

    #[test]
    fn tcp_world_runs_a_period_end_to_end() {
        use sbc_uc::ids::PartyId;
        use sbc_uc::world::World;
        let params = SbcParams::default_for(3);
        let mut w = TcpSbcWorld::new(params, b"tcp-seed").expect("valid params");
        w.input(
            PartyId(0),
            sbc_uc::value::Command::new("Broadcast", Value::bytes(b"m0")),
        );
        for _ in 0..(params.phi + params.delta + 2) {
            use sbc_uc::exec::SbcWorld;
            w.tick();
        }
        let outs = w.drain_outputs();
        assert_eq!(outs.len(), 3, "every party outputs at τ_rel");
        let stats = w.transport_stats();
        assert!(stats.sent > 0 && stats.delivered > 0 && stats.bytes > 0);
        assert_eq!(stats.decode_errors, 0);
        assert_eq!(stats.timeouts, 0);
    }
}
