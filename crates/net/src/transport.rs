//! The delivery seam of the networked world.
//!
//! A [`Transport`] moves encoded [`Frame`]s between endpoints. Frames
//! fall into three planes, classified by the transport itself (it decodes
//! what it carries — and drops, counting, what does not decode):
//!
//! * **control** — submissions, ticks, casts, functionality requests and
//!   `Wake_Up` deliveries. These model the atomic environment/party/
//!   functionality interactions of the UC experiment: FIFO per
//!   destination, delivered the moment the destination is pumped.
//! * **rpc** — functionality responses back to a party, on a dedicated
//!   per-party lane so an in-flight request/response exchange can never
//!   interleave with queued deliveries.
//! * **data** — `(c, τ_rel, y)` wire deliveries between parties. This is
//!   the plane the adversary owns: [`SimNet`] delays, reorders,
//!   duplicates, partitions and (for corrupted senders) drops here,
//!   subject to the protocol's ∆-bounded delivery guarantee — every data
//!   frame is due strictly before the period end `t_end = τ_rel − ∆`
//!   parsed off its own payload, so chaos never changes what the
//!   protocol decides.
//!
//! [`Loopback`] delivers the data plane with zero latency in send order —
//! bit-compatible with the in-process world's inline delivery loop.

use crate::codec::{Endpoint, Frame, FrameKind, NetError};
use sbc_primitives::drbg::Drbg;
use std::collections::VecDeque;

/// Counters every transport keeps; the bench report and the conformance
/// tests read these to prove the adversarial schedule actually fired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames accepted for delivery.
    pub sent: u64,
    /// Frames handed to a receiver.
    pub delivered: u64,
    /// Encoded bytes accepted.
    pub bytes: u64,
    /// Data frames scheduled later than their send round.
    pub delayed: u64,
    /// Data frames delivered out of send order within a drain.
    pub reordered: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Frames dropped (corrupted-sender drops and undecodable input).
    pub dropped: u64,
    /// Rounds of extra deferral forced by partitions.
    pub partition_deferrals: u64,
    /// Frames rejected because they did not decode.
    pub decode_errors: u64,
    /// Read/write deadlines that expired before the peer caught up
    /// (socket transports only; in-process transports never time out).
    pub timeouts: u64,
    /// Connections re-established after a mid-stream drop (socket
    /// transports only).
    pub reconnects: u64,
}

/// A frame mover between endpoints. Implementations must be
/// deterministic: the same sends in the same order produce the same
/// delivery schedule (the conformance harness replays seeds).
pub trait Transport: Send + std::fmt::Debug {
    /// Accepts an encoded frame for delivery. The transport decodes it to
    /// classify and schedule; input that does not decode is dropped and
    /// counted, and the typed error returned.
    ///
    /// # Errors
    ///
    /// [`NetError::Codec`] if the frame does not decode;
    /// [`NetError::UnknownParty`] if it addresses a party outside the
    /// experiment. Either way the frame is not queued.
    fn send(&mut self, bytes: Vec<u8>, now: u64) -> Result<(), NetError>;

    /// Drains all control-plane frames, in global send order. Frames
    /// carry their own destination; the caller dispatches.
    fn recv_control(&mut self) -> Vec<Vec<u8>>;

    /// Drains the rpc lane of one party (functionality responses), FIFO.
    fn recv_rpc(&mut self, party: u32) -> Vec<Vec<u8>>;

    /// Drains the data-plane frames for `party` that are due at or before
    /// round `now`, in schedule order.
    fn recv_data(&mut self, party: u32, now: u64) -> Vec<Vec<u8>>;

    /// Marks a party corrupted (a [`SimNet`] with
    /// [`SimConfig::drop_from_corrupted`] starts dropping its casts).
    fn set_corrupted(&mut self, party: u32);

    /// Drops every in-flight frame (period turnover — the in-process
    /// world's `clear_pending`).
    fn clear_in_flight(&mut self);

    /// Whether no frame is queued anywhere.
    fn idle(&self) -> bool;

    /// The running counters.
    fn stats(&self) -> TransportStats;
}

/// Classification of a decoded frame, shared by every transport.
pub(crate) enum Plane {
    Control,
    Rpc(u32),
    /// A party-to-party wire: recipient, origin, and the period end
    /// `t_end = τ_rel − ∆` parsed off the payload (the delivery deadline).
    Data {
        to: u32,
        origin: u32,
        end: u64,
    },
}

/// Classifies a decoded frame onto its plane without touching any
/// counters — the shared routing rule of every transport (the TCP
/// transport classifies twice per frame, on send and on socket arrival,
/// and must count it only once).
pub(crate) fn plane_of(frame: &Frame, delta: u64, n: usize) -> Result<Plane, NetError> {
    let check = |party: u32| -> Result<u32, NetError> {
        if (party as usize) < n {
            Ok(party)
        } else {
            Err(NetError::UnknownParty { party, n })
        }
    };
    match (&frame.kind, frame.to) {
        // Functionality responses ride the dedicated rpc lane.
        (
            FrameKind::TleTriples(_) | FrameKind::TleDecResp(_) | FrameKind::RoAnswer(_),
            Endpoint::Party(p),
        ) => Ok(Plane::Rpc(check(p)?)),
        // A wire delivery is data-plane; anything else addressed to a
        // party (Wake_Up deliveries, submissions, ticks, responses)
        // is control. A Deliver whose payload is not a parseable
        // `(c, τ, y)` triple is control too: the in-process world
        // delivers it immediately and the recipient discards it.
        (FrameKind::Deliver { origin, payload }, Endpoint::Party(p)) => {
            match wire_release_time(payload) {
                Some(tau) => Ok(Plane::Data {
                    to: check(p)?,
                    origin: *origin,
                    end: tau.saturating_sub(delta),
                }),
                None => {
                    check(p)?;
                    Ok(Plane::Control)
                }
            }
        }
        (_, Endpoint::Party(p)) => {
            check(p)?;
            Ok(Plane::Control)
        }
        _ => Ok(Plane::Control),
    }
}

/// Shared mailbox state: per-plane queues plus counters.
#[derive(Debug, Default)]
pub(crate) struct Mailboxes {
    pub(crate) control: VecDeque<Vec<u8>>,
    pub(crate) rpc: Vec<VecDeque<Vec<u8>>>,
    /// Per-party data queue: `(due_round, seq, bytes)`, kept in
    /// `(due, seq)` order.
    data: Vec<Vec<(u64, u64, Vec<u8>)>>,
    seq: u64,
    pub(crate) stats: TransportStats,
}

impl Mailboxes {
    pub(crate) fn new(n: usize) -> Self {
        Mailboxes {
            control: VecDeque::new(),
            rpc: vec![VecDeque::new(); n],
            data: vec![Vec::new(); n],
            seq: 0,
            stats: TransportStats::default(),
        }
    }

    /// Decodes and classifies an incoming frame, counting it as accepted.
    /// `delta` recovers the delivery deadline from a wire's own `τ_rel`.
    pub(crate) fn classify(
        &mut self,
        bytes: &[u8],
        delta: u64,
        n: usize,
    ) -> Result<(Frame, Plane), NetError> {
        let frame = match Frame::decode(bytes) {
            Ok(f) => f,
            Err(e) => {
                self.stats.decode_errors += 1;
                self.stats.dropped += 1;
                return Err(e.into());
            }
        };
        let plane = plane_of(&frame, delta, n)?;
        self.stats.sent += 1;
        self.stats.bytes += bytes.len() as u64;
        Ok((frame, plane))
    }

    pub(crate) fn push_data(&mut self, to: u32, due: u64, bytes: Vec<u8>) {
        let seq = self.seq;
        self.seq += 1;
        let q = &mut self.data[to as usize];
        let at = q.partition_point(|&(d, s, _)| (d, s) <= (due, seq));
        q.insert(at, (due, seq, bytes));
    }

    pub(crate) fn drain_data(&mut self, party: u32, now: u64) -> Vec<Vec<u8>> {
        let q = &mut self.data[party as usize];
        let upto = q.partition_point(|&(d, _, _)| d <= now);
        let out: Vec<Vec<u8>> = q.drain(..upto).map(|(_, _, b)| b).collect();
        self.stats.delivered += out.len() as u64;
        out
    }

    pub(crate) fn drain_control(&mut self) -> Vec<Vec<u8>> {
        let out: Vec<Vec<u8>> = self.control.drain(..).collect();
        self.stats.delivered += out.len() as u64;
        out
    }

    pub(crate) fn drain_rpc(&mut self, party: u32) -> Vec<Vec<u8>> {
        let out: Vec<Vec<u8>> = self.rpc[party as usize].drain(..).collect();
        self.stats.delivered += out.len() as u64;
        out
    }

    pub(crate) fn clear(&mut self) {
        self.control.clear();
        for q in &mut self.rpc {
            q.clear();
        }
        for q in &mut self.data {
            q.clear();
        }
    }

    pub(crate) fn idle(&self) -> bool {
        self.control.is_empty()
            && self.rpc.iter().all(|q| q.is_empty())
            && self.data.iter().all(|q| q.is_empty())
    }
}

/// Extracts `τ_rel` from a `(c, τ_rel, y)` wire payload, if it is one.
fn wire_release_time(payload: &sbc_uc::value::Value) -> Option<u64> {
    let items = payload.as_list()?;
    if items.len() != 3 {
        return None;
    }
    items[0].as_bytes()?;
    items[2].as_bytes()?;
    items[1].as_u64()
}

/// The in-process reference transport: every plane delivers with zero
/// latency in send order — bit-compatible with the in-process world's
/// inline delivery loop (and hence with the `SyncNet` staging discipline
/// of `sbc_uc::net`, which also preserves per-recipient send order
/// within a round).
#[derive(Debug)]
pub struct Loopback {
    n: usize,
    delta: u64,
    boxes: Mailboxes,
}

impl Loopback {
    /// A loopback for an `n`-party experiment with delivery bound `delta`.
    pub fn new(n: usize, delta: u64) -> Self {
        Loopback {
            n,
            delta,
            boxes: Mailboxes::new(n),
        }
    }
}

impl Transport for Loopback {
    fn send(&mut self, bytes: Vec<u8>, now: u64) -> Result<(), NetError> {
        let (_, plane) = self.boxes.classify(&bytes, self.delta, self.n)?;
        match plane {
            Plane::Control => self.boxes.control.push_back(bytes),
            Plane::Rpc(p) => self.boxes.rpc[p as usize].push_back(bytes),
            Plane::Data { to, .. } => self.boxes.push_data(to, now, bytes),
        }
        Ok(())
    }

    fn recv_control(&mut self) -> Vec<Vec<u8>> {
        self.boxes.drain_control()
    }

    fn recv_rpc(&mut self, party: u32) -> Vec<Vec<u8>> {
        self.boxes.drain_rpc(party)
    }

    fn recv_data(&mut self, party: u32, now: u64) -> Vec<Vec<u8>> {
        self.boxes.drain_data(party, now)
    }

    fn set_corrupted(&mut self, _party: u32) {}

    fn clear_in_flight(&mut self) {
        self.boxes.clear();
    }

    fn idle(&self) -> bool {
        self.boxes.idle()
    }

    fn stats(&self) -> TransportStats {
        self.boxes.stats
    }
}

/// Knobs of the deterministic adversarial network.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Delivery bound ∆ of the experiment (recovers each wire's deadline).
    pub delta: u64,
    /// Maximum extra per-link latency in rounds, drawn per data frame
    /// from the seeded schedule; effective latency is always clamped so
    /// the frame lands before its period end (the ∆ bound).
    pub max_latency: u64,
    /// Permute same-round delivery batches.
    pub reorder: bool,
    /// Duplicate every k-th data frame (0 disables).
    pub duplicate_every: u64,
    /// Drop data frames whose origin is corrupted.
    pub drop_from_corrupted: bool,
    /// Partition cycle length in rounds (0 disables partitions).
    pub partition_period: u64,
    /// Rounds per cycle a recipient link is down. Frames due in a
    /// partitioned round defer to the heal round — but never past the
    /// frame's period-end deadline, so partitions always heal before the
    /// release round.
    pub partition_len: u64,
}

impl SimConfig {
    /// The seeded adversarial schedule the conformance gate runs under:
    /// latency up to ∆, reorder on, every 3rd frame duplicated, a
    /// 5-round partition cycle with 2-round outages. Corrupted-sender
    /// drops stay off — dropping changes the received-wire sets and is
    /// exercised by its own tests, outside the `Exact` envelope.
    pub fn adversarial(delta: u64) -> Self {
        SimConfig {
            delta,
            max_latency: delta,
            reorder: true,
            duplicate_every: 3,
            drop_from_corrupted: false,
            partition_period: 5,
            partition_len: 2,
        }
    }

    /// No chaos at all: a `SimNet` that behaves like [`Loopback`].
    pub fn quiet(delta: u64) -> Self {
        SimConfig {
            delta,
            max_latency: 0,
            reorder: false,
            duplicate_every: 0,
            drop_from_corrupted: false,
            partition_period: 0,
            partition_len: 0,
        }
    }
}

/// The deterministic adversarial network: a seeded schedule injects
/// per-link latency (within ∆), reorder, duplication, corrupted-sender
/// drops and transient partitions on the data plane. Control and rpc
/// frames model the UC experiment's atomic interactions and are never
/// touched — the adversary owns the party-to-party network, not the
/// functionality interfaces.
#[derive(Debug)]
pub struct SimNet {
    n: usize,
    cfg: SimConfig,
    rng: Drbg,
    boxes: Mailboxes,
    corrupted: Vec<bool>,
    data_sends: u64,
}

impl SimNet {
    /// A simulated net over `n` parties driven by `seed`.
    pub fn new(n: usize, cfg: SimConfig, seed: &[u8]) -> Self {
        SimNet {
            n,
            cfg,
            rng: Drbg::from_seed(seed),
            boxes: Mailboxes::new(n),
            corrupted: vec![false; n],
            data_sends: 0,
        }
    }

    /// Whether `party`'s inbound link is down in `round`.
    fn partitioned(&self, party: u32, round: u64) -> bool {
        if self.cfg.partition_period == 0 {
            return false;
        }
        // Stagger outages across recipients so partitions are per-link.
        (round + u64::from(party) * 3) % self.cfg.partition_period < self.cfg.partition_len
    }

    /// Schedules one data frame: seeded latency, partition deferral, and
    /// the hard period-end clamp that keeps every delivery inside the ∆
    /// bound (`due < end`, i.e. before `t_end`, i.e. partitions heal
    /// before the release round).
    fn schedule(&mut self, to: u32, now: u64, end: u64) -> u64 {
        let deadline = end.saturating_sub(1).max(now);
        let lat = if self.cfg.max_latency == 0 {
            0
        } else {
            u64::from(self.rng.gen_bytes(1)[0]) % (self.cfg.max_latency + 1)
        };
        let mut due = (now + lat).min(deadline);
        if due > now {
            self.boxes.stats.delayed += 1;
        }
        while self.partitioned(to, due) && due < deadline {
            due += 1;
            self.boxes.stats.partition_deferrals += 1;
        }
        due
    }
}

impl Transport for SimNet {
    fn send(&mut self, bytes: Vec<u8>, now: u64) -> Result<(), NetError> {
        let (_, plane) = self.boxes.classify(&bytes, self.cfg.delta, self.n)?;
        match plane {
            Plane::Control => self.boxes.control.push_back(bytes),
            Plane::Rpc(p) => self.boxes.rpc[p as usize].push_back(bytes),
            Plane::Data { to, origin, end } => {
                if self.cfg.drop_from_corrupted
                    && (origin as usize) < self.n
                    && self.corrupted[origin as usize]
                {
                    self.boxes.stats.dropped += 1;
                    return Ok(());
                }
                self.data_sends += 1;
                let due = self.schedule(to, now, end);
                let duplicate = self.cfg.duplicate_every != 0
                    && self.data_sends.is_multiple_of(self.cfg.duplicate_every);
                if duplicate {
                    let copy_due = (due + 1).min(end.saturating_sub(1)).max(due);
                    self.boxes.stats.duplicated += 1;
                    self.boxes.push_data(to, copy_due, bytes.clone());
                }
                self.boxes.push_data(to, due, bytes);
            }
        }
        Ok(())
    }

    fn recv_control(&mut self) -> Vec<Vec<u8>> {
        self.boxes.drain_control()
    }

    fn recv_rpc(&mut self, party: u32) -> Vec<Vec<u8>> {
        self.boxes.drain_rpc(party)
    }

    fn recv_data(&mut self, party: u32, now: u64) -> Vec<Vec<u8>> {
        let mut out = self.boxes.drain_data(party, now);
        if self.cfg.reorder && out.len() > 1 {
            // Seeded Fisher-Yates over the due batch. Wire receptions are
            // inert until the release round, and the replay dedup is
            // order-insensitive for distinct wires, so this is inside the
            // conformance envelope.
            let mut permuted = false;
            for i in (1..out.len()).rev() {
                let j = (u64::from(self.rng.gen_bytes(1)[0]) % (i as u64 + 1)) as usize;
                if i != j {
                    out.swap(i, j);
                    permuted = true;
                }
            }
            if permuted {
                self.boxes.stats.reordered += out.len() as u64;
            }
        }
        out
    }

    fn set_corrupted(&mut self, party: u32) {
        if (party as usize) < self.n {
            self.corrupted[party as usize] = true;
        }
    }

    fn clear_in_flight(&mut self) {
        self.boxes.clear();
    }

    fn idle(&self) -> bool {
        self.boxes.idle()
    }

    fn stats(&self) -> TransportStats {
        self.boxes.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbc_uc::value::Value;

    fn wire_frame(to: u32, origin: u32, tau: u64, tag: u8) -> Vec<u8> {
        Frame {
            from: Endpoint::Host,
            to: Endpoint::Party(to),
            sent_at: 0,
            kind: FrameKind::Deliver {
                origin,
                payload: Value::list([
                    Value::bytes([tag; 4]),
                    Value::U64(tau),
                    Value::bytes([tag ^ 0xff; 4]),
                ]),
            },
        }
        .encode()
    }

    #[test]
    fn loopback_delivers_in_send_order() {
        let mut t = Loopback::new(2, 2);
        t.send(wire_frame(1, 0, 9, 1), 3).unwrap();
        t.send(wire_frame(1, 0, 9, 2), 3).unwrap();
        let got = t.recv_data(1, 3);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], wire_frame(1, 0, 9, 1));
        assert!(t.idle());
    }

    #[test]
    fn garbage_is_dropped_and_counted_not_panicked() {
        let mut t = Loopback::new(2, 2);
        let err = t.send(vec![0xde, 0xad, 0xbe, 0xef, 1, 2, 3], 0);
        assert!(matches!(err, Err(NetError::Codec(_))));
        assert_eq!(t.stats().decode_errors, 1);
        assert!(t.idle());
    }

    #[test]
    fn out_of_range_party_rejected() {
        let mut t = Loopback::new(2, 2);
        let err = t.send(wire_frame(7, 0, 9, 1), 0);
        assert_eq!(err, Err(NetError::UnknownParty { party: 7, n: 2 }));
    }

    #[test]
    fn simnet_delivers_everything_before_period_end() {
        let cfg = SimConfig::adversarial(2);
        let mut t = SimNet::new(4, cfg, b"sched");
        // 40 wires towards τ_rel = 9 (end = 7), sent in round 3.
        for i in 0..40u8 {
            t.send(wire_frame(u32::from(i % 4), 0, 9, i), 3).unwrap();
        }
        let mut got = 0;
        for round in 3..7 {
            for p in 0..4 {
                got += t.recv_data(p, round).len();
            }
        }
        let s = t.stats();
        // Everything (plus duplicates) lands strictly before end = 7.
        assert_eq!(got as u64, 40 + s.duplicated);
        assert!(t.idle());
        assert!(s.delayed > 0, "latency injected: {s:?}");
        assert!(s.duplicated > 0, "duplication injected: {s:?}");
        assert!(s.partition_deferrals > 0, "partitions injected: {s:?}");
    }

    #[test]
    fn simnet_is_deterministic() {
        let run = || {
            let mut t = SimNet::new(4, SimConfig::adversarial(2), b"sched");
            for i in 0..20u8 {
                t.send(wire_frame(u32::from(i % 4), 0, 9, i), 3).unwrap();
            }
            let mut order = Vec::new();
            for round in 3..7 {
                for p in 0..4 {
                    order.extend(t.recv_data(p, round));
                }
            }
            (order, t.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn simnet_drops_corrupted_senders_when_configured() {
        let mut cfg = SimConfig::quiet(2);
        cfg.drop_from_corrupted = true;
        let mut t = SimNet::new(2, cfg, b"s");
        t.set_corrupted(0);
        t.send(wire_frame(1, 0, 9, 1), 3).unwrap();
        t.send(wire_frame(1, 1, 9, 2), 3).unwrap();
        let got = t.recv_data(1, 6);
        assert_eq!(got.len(), 1, "corrupted sender's wire dropped");
        assert_eq!(t.stats().dropped, 1);
    }
}
